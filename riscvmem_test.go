package riscvmem_test

import (
	"context"
	"strings"
	"testing"

	"riscvmem"
)

func TestDevicesFacade(t *testing.T) {
	devs := riscvmem.Devices()
	if len(devs) != 4 {
		t.Fatalf("Devices() = %d entries", len(devs))
	}
	for _, d := range devs {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		got, err := riscvmem.DeviceByName(d.Name)
		if err != nil || got.Name != d.Name {
			t.Errorf("DeviceByName(%q) = %v, %v", d.Name, got.Name, err)
		}
	}
	if _, err := riscvmem.DeviceByName("PDP-11"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestKernelFacades(t *testing.T) {
	dev := riscvmem.MangoPiD1()

	m, err := riscvmem.RunStream(dev, riscvmem.StreamConfig{Test: riscvmem.StreamTriad, Elems: 1024, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Best <= 0 {
		t.Error("stream reported no bandwidth")
	}

	tr, err := riscvmem.RunTranspose(dev, riscvmem.TransposeConfig{
		N: 128, Variant: riscvmem.TransposeBlocking, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Seconds <= 0 {
		t.Error("transpose took no time")
	}

	bl, err := riscvmem.RunBlur(dev, riscvmem.BlurConfig{
		W: 24, H: 20, C: 3, F: 5, Variant: riscvmem.BlurOneD, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if bl.Seconds <= 0 {
		t.Error("blur took no time")
	}
}

func TestVariantEnumerations(t *testing.T) {
	if len(riscvmem.StreamTests()) != 4 {
		t.Error("expected 4 STREAM tests")
	}
	if len(riscvmem.TransposeVariants()) != 5 {
		t.Error("expected 5 transpose variants")
	}
	if len(riscvmem.BlurVariants()) != 5 {
		t.Error("expected 5 blur variants")
	}
}

func TestCustomMachineKernel(t *testing.T) {
	// The raw Machine/Core API used by examples/customdevice.
	m, err := riscvmem.NewMachine(riscvmem.VisionFive())
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.NewF64(4096)
	if err != nil {
		t.Fatal(err)
	}
	res := m.ParallelFor(2, a.Len(), riscvmem.Static, 0, func(c *riscvmem.Core, i int) {
		a.Store(c, i, float64(i))
	})
	if res.Cycles <= 0 {
		t.Fatal("no simulated time")
	}
	for i, v := range a.Data {
		if v != float64(i) {
			t.Fatalf("a[%d] = %v", i, v)
		}
	}
}

func TestSuiteFacade(t *testing.T) {
	suite := riscvmem.NewSuite(riscvmem.Options{
		Scale:   64,
		Devices: []riscvmem.Device{riscvmem.MangoPiD1()},
		Reps:    1,
	})
	rows, err := suite.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 1 device × 2 sizes × 5 variants
		t.Fatalf("Fig2 rows = %d", len(rows))
	}
	bw, err := suite.DRAMBandwidth(riscvmem.MangoPiD1())
	if err != nil {
		t.Fatal(err)
	}
	if bw <= 0 {
		t.Error("no DRAM bandwidth")
	}
}

func TestPaperConstants(t *testing.T) {
	if riscvmem.PaperMatrixSmall != 8192 || riscvmem.PaperMatrixLarge != 16384 {
		t.Error("matrix constants drifted from §4.2")
	}
	if riscvmem.PaperImageW != 2544 || riscvmem.PaperImageH != 2027 ||
		riscvmem.PaperImageC != 3 || riscvmem.PaperFilter != 19 {
		t.Error("image constants drifted from §4.3")
	}
}

func TestRunnerFacade(t *testing.T) {
	// The Workload/Runner surface: batch a device × workload cross-product,
	// a deprecated wrapper, and a registered custom workload, and check the
	// unified Result agrees with the legacy per-kernel path bit for bit.
	dev := riscvmem.MangoPiD1()
	runner := riscvmem.NewRunner(riscvmem.RunnerOptions{})
	ctx := context.Background()

	jobs := riscvmem.Jobs([]riscvmem.Device{dev}, []riscvmem.Workload{
		riscvmem.StreamWorkload(riscvmem.StreamConfig{Test: riscvmem.StreamTriad, Elems: 1024, Reps: 1}),
		riscvmem.TransposeWorkload(riscvmem.TransposeConfig{
			N: 128, Variant: riscvmem.TransposeBlocking, Verify: true}),
		riscvmem.BlurWorkload(riscvmem.BlurConfig{
			W: 24, H: 20, C: 3, F: 5, Variant: riscvmem.BlurOneD, Verify: true}),
	})
	results, err := runner.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}

	legacyStream, err := riscvmem.RunStream(dev, riscvmem.StreamConfig{
		Test: riscvmem.StreamTriad, Elems: 1024, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Bandwidth != legacyStream.Best || results[0].Mem != legacyStream.Mem {
		t.Errorf("stream workload diverges from deprecated wrapper: %v vs %v",
			results[0].Bandwidth, legacyStream.Best)
	}
	legacyTr, err := riscvmem.RunTranspose(dev, riscvmem.TransposeConfig{
		N: 128, Variant: riscvmem.TransposeBlocking, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Seconds != legacyTr.Seconds || results[1].Cycles != legacyTr.Cycles {
		t.Errorf("transpose workload %.9f s, deprecated wrapper %.9f s",
			results[1].Seconds, legacyTr.Seconds)
	}
	if results[1].Workload != "transpose/Blocking" || results[1].Device != "MangoPi" {
		t.Errorf("result identification: %q on %q", results[1].Workload, results[1].Device)
	}

	// Custom workloads: registry + WorkloadFunc + RunOne. Registration is
	// process-global with no unregister, so repeated in-process runs
	// (go test -count=2) see a duplicate — tolerated below.
	err = riscvmem.Register(riscvmem.WorkloadFunc("facade/touch",
		func(ctx context.Context, m *riscvmem.Machine) (riscvmem.Result, error) {
			a, err := m.NewF64(512)
			if err != nil {
				return riscvmem.Result{}, err
			}
			res := m.RunSeq(func(c *riscvmem.Core) {
				for i := 0; i < a.Len(); i++ {
					a.Store(c, i, 1)
				}
			})
			return riscvmem.Result{Cycles: res.Cycles, Seconds: res.Seconds(m.Spec())}, nil
		}))
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	w, err := riscvmem.WorkloadByName("facade/touch")
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.RunOne(ctx, dev, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Workload != "facade/touch" {
		t.Errorf("custom workload result %+v", res)
	}
	names := riscvmem.RegisteredWorkloads()
	found := false
	for _, n := range names {
		found = found || n == "facade/touch"
	}
	if !found {
		t.Errorf("RegisteredWorkloads() = %v", names)
	}
}

func TestWorkloadSpecFacade(t *testing.T) {
	spec, err := riscvmem.ParseWorkloadSpec("stream:test=TRIAD,elems=4096,reps=1")
	if err != nil {
		t.Fatal(err)
	}
	back, err := riscvmem.ParseWorkloadSpec(spec.String())
	if err != nil || !back.Equal(spec) {
		t.Fatalf("round trip: %+v, %v", back, err)
	}
	w, err := riscvmem.NewWorkloadFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "stream/TRIAD" {
		t.Errorf("Name = %q", w.Name())
	}
	if _, err := riscvmem.ParseWorkload("transpose/Blocking"); err != nil {
		t.Errorf("shorthand: %v", err)
	}
	if _, err := riscvmem.ParseWorkload("warp:speed=9"); err == nil ||
		!strings.Contains(err.Error(), "kernels:") {
		t.Errorf("unknown kernel error = %v", err)
	}
	kernels := riscvmem.Kernels()
	if len(kernels) < 3 {
		t.Errorf("Kernels() = %v", kernels)
	}
}

func TestServiceFacade(t *testing.T) {
	svc := riscvmem.NewService(riscvmem.ServiceOptions{})
	resp, err := svc.Batch(context.Background(), riscvmem.BatchRequest{
		Devices: []string{"MangoPi"},
		Workloads: []riscvmem.WorkloadSpec{
			riscvmem.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Seconds <= 0 {
		t.Fatalf("service batch: %+v", resp)
	}
	if h := riscvmem.NewServiceHandler(svc); h == nil {
		t.Fatal("nil handler")
	}
	sres, err := svc.Sweep(context.Background(), riscvmem.SweepRequest{
		Device: "MangoPi", Axes: []string{"maxinflight=base,2"},
		Workloads: []riscvmem.WorkloadSpec{
			riscvmem.MustParseWorkloadSpec("transpose:variant=Naive,n=64"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Results) != 2 {
		t.Fatalf("service sweep: %+v", sres)
	}
}
