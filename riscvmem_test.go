package riscvmem_test

import (
	"testing"

	"riscvmem"
)

func TestDevicesFacade(t *testing.T) {
	devs := riscvmem.Devices()
	if len(devs) != 4 {
		t.Fatalf("Devices() = %d entries", len(devs))
	}
	for _, d := range devs {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		got, err := riscvmem.DeviceByName(d.Name)
		if err != nil || got.Name != d.Name {
			t.Errorf("DeviceByName(%q) = %v, %v", d.Name, got.Name, err)
		}
	}
	if _, err := riscvmem.DeviceByName("PDP-11"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestKernelFacades(t *testing.T) {
	dev := riscvmem.MangoPiD1()

	m, err := riscvmem.RunStream(dev, riscvmem.StreamConfig{Test: riscvmem.StreamTriad, Elems: 1024, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Best <= 0 {
		t.Error("stream reported no bandwidth")
	}

	tr, err := riscvmem.RunTranspose(dev, riscvmem.TransposeConfig{
		N: 128, Variant: riscvmem.TransposeBlocking, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Seconds <= 0 {
		t.Error("transpose took no time")
	}

	bl, err := riscvmem.RunBlur(dev, riscvmem.BlurConfig{
		W: 24, H: 20, C: 3, F: 5, Variant: riscvmem.BlurOneD, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if bl.Seconds <= 0 {
		t.Error("blur took no time")
	}
}

func TestVariantEnumerations(t *testing.T) {
	if len(riscvmem.StreamTests()) != 4 {
		t.Error("expected 4 STREAM tests")
	}
	if len(riscvmem.TransposeVariants()) != 5 {
		t.Error("expected 5 transpose variants")
	}
	if len(riscvmem.BlurVariants()) != 5 {
		t.Error("expected 5 blur variants")
	}
}

func TestCustomMachineKernel(t *testing.T) {
	// The raw Machine/Core API used by examples/customdevice.
	m, err := riscvmem.NewMachine(riscvmem.VisionFive())
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.NewF64(4096)
	if err != nil {
		t.Fatal(err)
	}
	res := m.ParallelFor(2, a.Len(), riscvmem.Static, 0, func(c *riscvmem.Core, i int) {
		a.Store(c, i, float64(i))
	})
	if res.Cycles <= 0 {
		t.Fatal("no simulated time")
	}
	for i, v := range a.Data {
		if v != float64(i) {
			t.Fatalf("a[%d] = %v", i, v)
		}
	}
}

func TestSuiteFacade(t *testing.T) {
	suite := riscvmem.NewSuite(riscvmem.Options{
		Scale:   64,
		Devices: []riscvmem.Device{riscvmem.MangoPiD1()},
		Reps:    1,
	})
	rows, err := suite.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 1 device × 2 sizes × 5 variants
		t.Fatalf("Fig2 rows = %d", len(rows))
	}
	bw, err := suite.DRAMBandwidth(riscvmem.MangoPiD1())
	if err != nil {
		t.Fatal(err)
	}
	if bw <= 0 {
		t.Error("no DRAM bandwidth")
	}
}

func TestPaperConstants(t *testing.T) {
	if riscvmem.PaperMatrixSmall != 8192 || riscvmem.PaperMatrixLarge != 16384 {
		t.Error("matrix constants drifted from §4.2")
	}
	if riscvmem.PaperImageW != 2544 || riscvmem.PaperImageH != 2027 ||
		riscvmem.PaperImageC != 3 || riscvmem.PaperFilter != 19 {
		t.Error("image constants drifted from §4.3")
	}
}
