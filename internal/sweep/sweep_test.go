package sweep

import (
	"context"
	"strings"
	"testing"

	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/prefetch"
	"riscvmem/internal/run"
	"riscvmem/internal/units"
)

func TestParseAxis(t *testing.T) {
	ax := MustParseAxis("maxinflight=1,2, 4 ,base")
	if ax.Name != "maxinflight" || len(ax.Points) != 4 {
		t.Fatalf("axis = %+v", ax)
	}
	if ax.Points[3].Apply != nil || ax.Points[3].Label != "base" {
		t.Error("base value did not compile to the identity point")
	}
	spec := ax.Points[2].Apply(machine.MangoPiD1())
	if spec.Mem.MaxInflight != 4 {
		t.Errorf("maxinflight point applied %d", spec.Mem.MaxInflight)
	}

	l2 := MustParseAxis("l2=off,128KiB,1MiB")
	if got := l2.Points[0].Apply(machine.VisionFive()); got.Mem.L2 != nil {
		t.Error("l2=off left the L2 in place")
	}
	if got := l2.Points[2].Apply(machine.MangoPiD1()); got.Mem.L2 == nil ||
		got.Mem.L2.Cache.Size != units.MiB {
		t.Error("l2=1MiB did not install a 1 MiB L2")
	}

	for _, bad := range []string{
		"", "maxinflight", "maxinflight=", "bogus=1", "maxinflight=zero",
		"maxinflight=0", "l2=tiny", "policy=MRU", "preframp=maybe",
		"missoverlap=-1", "maxinflight=2,2", "pref=on",
	} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) succeeded", bad)
		}
	}
	// Every documented axis name parses.
	for _, s := range []string{
		"l2=off", "maxinflight=4", "l1ways=8", "channels=2", "dramlat=80",
		"missoverlap=0.5", "prefdist=16", "preframp=off", "pref=off", "policy=FIFO",
	} {
		if _, err := ParseAxis(s); err != nil {
			t.Errorf("ParseAxis(%q): %v", s, err)
		}
	}
	if len(AxisNames()) != len(axisParsers) {
		t.Error("AxisNames out of sync")
	}
}

func TestExpand(t *testing.T) {
	base := machine.MangoPiD1()
	cells, err := Expand(base, []Axis{
		MustParseAxis("maxinflight=base,4"),
		MustParseAxis("l2=base,128KiB"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("%d cells, want 4", len(cells))
	}
	// First axis outermost; the all-base cell is untouched.
	if !cells[0].Base || cells[0].Spec.Name != "MangoPi" {
		t.Errorf("cell 0 = %+v", cells[0])
	}
	if cells[0].Spec.Identity() != base.Identity() {
		t.Error("base cell's spec diverged from the preset")
	}
	wantNames := []string{
		"MangoPi",
		"MangoPi[l2=128KiB]",
		"MangoPi[maxinflight=4]",
		"MangoPi[maxinflight=4,l2=128KiB]",
	}
	for i, want := range wantNames {
		if cells[i].Spec.Name != want {
			t.Errorf("cell %d name = %q, want %q", i, cells[i].Spec.Name, want)
		}
		if len(cells[i].Labels) != 2 {
			t.Errorf("cell %d labels = %v", i, cells[i].Labels)
		}
		if err := cells[i].Spec.Validate(); err != nil {
			t.Errorf("cell %d: %v", i, err)
		}
	}
	// All four identities are distinct — no pooled-machine or cached-result
	// sharing between cells.
	ids := map[any]int{}
	for i, c := range cells {
		if j, dup := ids[c.Spec.Identity()]; dup {
			t.Errorf("cells %d and %d share an identity", j, i)
		}
		ids[c.Spec.Identity()] = i
	}
	// The combined cell carries both mutations.
	last := cells[3].Spec
	if last.Mem.MaxInflight != 4 || last.Mem.L2 == nil || last.Mem.L2.Cache.Size != 128*units.KiB {
		t.Errorf("combined cell spec = %+v", last.Mem)
	}
	// And the base preset was never mutated in place.
	if base.Mem.L2 != nil || base.Mem.MaxInflight != 8 {
		t.Error("Expand mutated the base preset")
	}
}

func TestExpandRejectsPrefetchAxesOnFactorySpecs(t *testing.T) {
	custom := machine.MangoPiD1()
	custom.Mem.Prefetch = nil
	custom.Mem.NewPrefetcher = func() prefetch.Prefetcher {
		return prefetch.NewStride(prefetch.StrideConfig{LineSize: 64, Streams: 4,
			TrainThreshold: 2, InitDistance: 1, MaxDistance: 2})
	}
	if _, err := Expand(custom, []Axis{MustParseAxis("prefdist=2,8")}); err == nil {
		t.Error("prefdist axis accepted on a factory-built prefetcher")
	}
	if _, err := Expand(custom, []Axis{MustParseAxis("maxinflight=2,8")}); err != nil {
		t.Errorf("unrelated axis rejected: %v", err)
	}
	// Programmatically built axes get the same protection by setting
	// MutatesPrefetcher (exported for exactly this reason).
	prog := Axis{Name: "mydist", MutatesPrefetcher: true, Points: []Point{
		{Label: "2", Apply: func(s machine.Spec) machine.Spec { return s.WithPrefetchDistance(2) }},
	}}
	if _, err := Expand(custom, []Axis{prog}); err == nil {
		t.Error("programmatic prefetch axis accepted on a factory-built prefetcher")
	}
	if _, err := Expand(machine.MangoPiD1(), []Axis{{Name: "empty"}}); err == nil {
		t.Error("empty axis accepted")
	}
}

// TestExpandRejectsDuplicateAxes: a repeated -axis flag must not let the
// later declaration silently override the earlier one while the row labels
// claim both applied.
func TestExpandRejectsDuplicateAxes(t *testing.T) {
	_, err := Expand(machine.MangoPiD1(), []Axis{
		MustParseAxis("l2=off"),
		MustParseAxis("l2=1MiB"),
	})
	if err == nil || !strings.Contains(err.Error(), "declared twice") {
		t.Errorf("duplicate axis error = %v", err)
	}
}

// TestExpandRejectsPrefOffCrossedWithPrefetchAxes: crossing pref=off with a
// prefetcher-mutating axis would produce cells whose prefdist/preframp label
// took no effect (the prefetcher is gone), silently duplicating results
// under different labels — in either axis order.
func TestExpandRejectsPrefOffCrossedWithPrefetchAxes(t *testing.T) {
	_, err := Expand(machine.MangoPiD1(), []Axis{
		MustParseAxis("pref=base,off"),
		MustParseAxis("prefdist=2,32"),
	})
	if err == nil || !strings.Contains(err.Error(), "disabled the prefetcher") {
		t.Errorf("pref=off before prefdist: err = %v", err)
	}
	_, err = Expand(machine.MangoPiD1(), []Axis{
		MustParseAxis("prefdist=2,32"),
		MustParseAxis("pref=base,off"),
	})
	if err == nil || !strings.Contains(err.Error(), "disabled the prefetcher") {
		t.Errorf("prefdist before pref=off: err = %v", err)
	}
	// The base-only combination stays legal: no mutating prefetch point
	// ever lands on a prefetcher-less spec.
	if _, err := Expand(machine.MangoPiD1(), []Axis{
		MustParseAxis("pref=base,off"),
		MustParseAxis("preframp=base"),
	}); err != nil {
		t.Errorf("all-base prefetch axis rejected: %v", err)
	}
}

func TestRunComputesBaseRelativeDeltas(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Base:      machine.MangoPiD1(),
		Axes:      []Axis{MustParseAxis("l2=base,1MiB")},
		Workloads: []run.Workload{run.Transpose(transpose.Config{N: 256, Variant: transpose.Naive})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCell) != 2 {
		t.Fatalf("%d rows, want 2", len(res.PerCell))
	}
	baseRow, l2Row := res.PerCell[0], res.PerCell[1]
	if !baseRow.Cell.Base || l2Row.Cell.Base {
		t.Fatalf("cell order: %+v", res.Cells)
	}
	if baseRow.Speedup != 1 || baseRow.BandwidthVsBase != 1 {
		t.Errorf("base cell deltas = %v, %v, want 1, 1", baseRow.Speedup, baseRow.BandwidthVsBase)
	}
	// The paper's core ablation: a naive transposition working set that
	// misses the D1's L1 must get faster when the device gains a 1 MiB L2.
	if l2Row.Speedup <= 1 {
		t.Errorf("adding an L2 to the D1 did not speed up naive transpose: speedup %v", l2Row.Speedup)
	}
	if l2Row.Result.Mem.L2Hits == 0 {
		t.Error("L2 cell shows no L2 activity")
	}
	if got := res.BaseResults[0]; got != baseRow.Result {
		t.Errorf("BaseResults mismatch: %+v", got)
	}
}

// TestRunDistinguishesSameNameWorkloads is the regression test for the
// base-delta lookup: two workloads sharing a Name (same kernel/variant,
// different config) must each be compared against their own base result,
// not whichever one a name-keyed lookup kept.
func TestRunDistinguishesSameNameWorkloads(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Base: machine.MangoPiD1(),
		Axes: []Axis{MustParseAxis("maxinflight=base,4")},
		Workloads: []run.Workload{
			run.Transpose(transpose.Config{N: 64, Variant: transpose.Naive}),
			run.Transpose(transpose.Config{N: 256, Variant: transpose.Naive}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range res.PerCell {
		if cr.Cell.Base && (cr.Speedup != 1 || cr.BandwidthVsBase != 1) {
			t.Errorf("base cell of %s (N from seconds %.3g) has deltas %v, %v — wrong base denominator",
				cr.Result.Workload, cr.Result.Seconds, cr.Speedup, cr.BandwidthVsBase)
		}
	}
	if res.BaseResults[0].Seconds >= res.BaseResults[1].Seconds {
		t.Error("positional base results collapsed: N=64 should be faster than N=256")
	}
}

func TestRunWithoutBasePointStillHasReference(t *testing.T) {
	// Neither axis value is "base": the reference cell is synthesized and
	// excluded from the grid, but deltas are still base-relative.
	res, err := Run(context.Background(), Config{
		Base:      machine.MangoPiD1(),
		Axes:      []Axis{MustParseAxis("maxinflight=1,2")},
		Workloads: []run.Workload{run.Transpose(transpose.Config{N: 128})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || len(res.PerCell) != 2 {
		t.Fatalf("grid = %d cells, %d rows", len(res.Cells), len(res.PerCell))
	}
	for _, cr := range res.PerCell {
		if cr.Cell.Base {
			t.Error("synthetic reference cell leaked into the grid")
		}
		if cr.Speedup <= 0 {
			t.Errorf("cell %v: speedup %v", cr.Cell.Labels, cr.Speedup)
		}
	}
	if len(res.BaseResults) != 1 || res.BaseResults[0].Seconds <= 0 {
		t.Error("missing base reference results")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{Base: machine.MangoPiD1()}); err == nil {
		t.Error("sweep with no workloads accepted")
	}
	// An invalid mutated spec (l1ways that break the set count) surfaces as
	// a per-cell error, identified by the cell's name.
	_, err := Run(context.Background(), Config{
		Base:      machine.XeonServer(),
		Axes:      []Axis{MustParseAxis("l1ways=5")},
		Workloads: []run.Workload{run.Transpose(transpose.Config{N: 64})},
	})
	if err == nil || !strings.Contains(err.Error(), "Xeon[l1ways=5]") {
		t.Errorf("invalid cell error = %v", err)
	}
}

func TestTable(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Base: machine.MangoPiD1(),
		Axes: []Axis{
			MustParseAxis("maxinflight=base,2"),
			MustParseAxis("pref=base,off"),
		},
		Workloads: []run.Workload{run.Transpose(transpose.Config{N: 128})},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Table()
	wantHeaders := []string{"maxinflight", "pref", "Workload", "Seconds", "Speedup", "Bandwidth", "BW×base"}
	if len(tb.Headers) != len(wantHeaders) {
		t.Fatalf("headers = %v", tb.Headers)
	}
	for i, h := range wantHeaders {
		if tb.Headers[i] != h {
			t.Errorf("header %d = %q, want %q", i, tb.Headers[i], h)
		}
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tb.Rows))
	}
	if tb.Rows[0][0] != "base" || tb.Rows[3][1] != "off" {
		t.Errorf("axis columns wrong: %v", tb.Rows)
	}
	out := tb.String() // must render without panicking, aligned
	if !strings.Contains(out, "Sweep: MangoPi") {
		t.Errorf("title missing in:\n%s", out)
	}
}
