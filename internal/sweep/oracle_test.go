package sweep

import (
	"context"
	"testing"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/run"
)

// oracleWorkloads is a kernel mix covering all three built-in adapters.
func oracleWorkloads() []run.Workload {
	return []run.Workload{
		run.Stream(stream.Config{Test: stream.Copy, Elems: 1500, Reps: 2}),
		run.Transpose(transpose.Config{N: 128, Variant: transpose.Blocking, Verify: true}),
		run.Blur(blur.Config{W: 48, H: 32, C: 3, F: 5, Variant: blur.OneD, Verify: true}),
	}
}

// TestEmptyMutationSweepBitIdentical is the sweep oracle the memoization
// claim rests on: a sweep whose axes are all at "base" mutates nothing, so
// its (only) cell must reproduce the base preset bit-for-bit — simulated
// cycles, seconds, bandwidth, and every Mem counter — against an
// independent, cache-disabled runner on a fresh machine. With that
// equivalence pinned, serving a repeated cell from the cache is provably
// exact: the cached value IS the only value the simulator can produce.
func TestEmptyMutationSweepBitIdentical(t *testing.T) {
	for _, base := range machine.All() {
		res, err := Run(context.Background(), Config{
			Base: base,
			Axes: []Axis{
				MustParseAxis("l2=base"),
				MustParseAxis("maxinflight=base"),
				MustParseAxis("preframp=base"),
			},
			Workloads: oracleWorkloads(),
		})
		if err != nil {
			t.Fatalf("%s: %v", base.Name, err)
		}
		if len(res.PerCell) != len(oracleWorkloads()) {
			t.Fatalf("%s: %d rows", base.Name, len(res.PerCell))
		}
		cold := run.New(run.Options{Parallelism: 1, DisableCache: true})
		for i, w := range oracleWorkloads() {
			want, err := cold.RunOne(context.Background(), base, w)
			if err != nil {
				t.Fatal(err)
			}
			got := res.PerCell[i]
			if !got.Cell.Base {
				t.Fatalf("%s: cell %d is not the base cell", base.Name, i)
			}
			if got.Result != want {
				t.Errorf("%s / %s: empty-mutation sweep diverges from the base preset:\n got %+v\nwant %+v",
					base.Name, w.Name(), got.Result, want)
			}
			if got.Speedup != 1 {
				t.Errorf("%s / %s: base speedup = %v", base.Name, w.Name(), got.Speedup)
			}
		}
	}
}

// TestSweepRerunHitsCache: re-running an identical sweep on a shared runner
// performs zero new simulations, and overlapping sweeps share their common
// cells.
func TestSweepRerunHitsCache(t *testing.T) {
	r := run.New(run.Options{})
	cfg := Config{
		Base:      machine.MangoPiD1(),
		Axes:      []Axis{MustParseAxis("maxinflight=base,2,4")},
		Workloads: []run.Workload{run.Transpose(transpose.Config{N: 128})},
		Runner:    r,
	}
	first, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, coldMisses := r.CacheStats()
	if coldMisses != 3 {
		t.Fatalf("cold sweep simulated %d cells, want 3", coldMisses)
	}
	again, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := r.CacheStats(); misses != coldMisses {
		t.Errorf("identical sweep re-run simulated %d new cells, want 0", misses-coldMisses)
	}
	for i := range first.PerCell {
		if first.PerCell[i].Result != again.PerCell[i].Result {
			t.Errorf("row %d: cached sweep replay diverged", i)
		}
	}
	// An overlapping sweep re-simulates only its new cells.
	wider := cfg
	wider.Axes = []Axis{MustParseAxis("maxinflight=base,2,4,16")}
	if _, err := Run(context.Background(), wider); err != nil {
		t.Fatal(err)
	}
	if _, misses := r.CacheStats(); misses != coldMisses+1 {
		t.Errorf("overlapping sweep simulated %d new cells, want 1", misses-coldMisses)
	}
}
