// The sweep axis grammar: "name=v1,v2,..." strings — the -axis flag of
// cmd/sweep — compiled into Axis values over the machine package's spec
// mutation helpers.
package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"riscvmem/internal/cache"
	"riscvmem/internal/machine"
	"riscvmem/internal/units"
)

// axisParsers maps axis names to per-value point compilers. Every axis also
// accepts the literal value "base", meaning "leave the parameter at the
// preset's value" (handled in ParseAxis before the compiler runs).
var axisParsers = map[string]func(value string) (Point, error){
	// l2=off removes the L2 (and L3); l2=<size> sets (or adds) an L2 of
	// that capacity, e.g. l2=128KiB, l2=1MiB.
	"l2": func(v string) (Point, error) {
		if strings.EqualFold(v, "off") {
			return Point{Label: "off", Apply: machine.Spec.WithoutL2}, nil
		}
		size, err := units.ParseBytes(v)
		if err != nil || size <= 0 {
			return Point{}, fmt.Errorf("want off, base or a size like 128KiB")
		}
		return Point{Label: v, Apply: func(s machine.Spec) machine.Spec {
			return s.WithL2(size)
		}}, nil
	},
	// maxinflight=<n>: per-core MSHR count (outstanding fills).
	"maxinflight": intAxis(func(s machine.Spec, n int) machine.Spec {
		return s.WithMaxInflight(n)
	}),
	// l1ways=<n>: L1 associativity (must keep the set count a power of two).
	"l1ways": intAxis(func(s machine.Spec, n int) machine.Spec {
		return s.WithL1Ways(n)
	}),
	// channels=<n>: independent DRAM channels.
	"channels": intAxis(func(s machine.Spec, n int) machine.Spec {
		return s.WithDRAMChannels(n)
	}),
	// dramlat=<cycles>: fixed DRAM access latency in core cycles.
	"dramlat": floatAxis(func(s machine.Spec, v float64) machine.Spec {
		return s.WithDRAMLatency(v)
	}),
	// missoverlap=<f>: exposed-miss-latency factor in (0,1].
	"missoverlap": floatAxis(func(s machine.Spec, v float64) machine.Spec {
		return s.WithMissOverlap(v)
	}),
	// prefdist=<n>: stride prefetcher maximum look-ahead distance.
	"prefdist": intAxis(func(s machine.Spec, n int) machine.Spec {
		return s.WithPrefetchDistance(n)
	}),
	// preframp=on|off: automatic prefetch-distance ramping.
	"preframp": func(v string) (Point, error) {
		switch strings.ToLower(v) {
		case "on":
			return Point{Label: "on", Apply: func(s machine.Spec) machine.Spec {
				return s.WithPrefetchRamp(true)
			}}, nil
		case "off":
			return Point{Label: "off", Apply: func(s machine.Spec) machine.Spec {
				return s.WithPrefetchRamp(false)
			}}, nil
		}
		return Point{}, fmt.Errorf("want on, off or base")
	},
	// pref=off: disable data prefetching entirely.
	"pref": func(v string) (Point, error) {
		if !strings.EqualFold(v, "off") {
			return Point{}, fmt.Errorf("want off or base")
		}
		return Point{Label: "off", Apply: machine.Spec.WithoutPrefetcher}, nil
	},
	// policy=LRU|Random|FIFO|PLRU: replacement policy for every cache level.
	"policy": func(v string) (Point, error) {
		for _, p := range []cache.Policy{cache.LRU, cache.Random, cache.FIFO, cache.PLRU} {
			if strings.EqualFold(v, p.String()) {
				p := p
				return Point{Label: p.String(), Apply: func(s machine.Spec) machine.Spec {
					return s.WithPolicy(p)
				}}, nil
			}
		}
		return Point{}, fmt.Errorf("want LRU, Random, FIFO, PLRU or base")
	},
}

func intAxis(apply func(machine.Spec, int) machine.Spec) func(string) (Point, error) {
	return func(v string) (Point, error) {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return Point{}, fmt.Errorf("want a positive integer or base")
		}
		return Point{Label: v, Apply: func(s machine.Spec) machine.Spec {
			return apply(s, n)
		}}, nil
	}
}

func floatAxis(apply func(machine.Spec, float64) machine.Spec) func(string) (Point, error) {
	return func(v string) (Point, error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return Point{}, fmt.Errorf("want a positive number or base")
		}
		return Point{Label: v, Apply: func(s machine.Spec) machine.Spec {
			return apply(s, f)
		}}, nil
	}
}

// AxisNames lists the grammar's axis names, sorted.
func AxisNames() []string {
	names := make([]string, 0, len(axisParsers))
	for name := range axisParsers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParseAxis compiles one "name=v1,v2,..." axis declaration. The value
// "base" is accepted on every axis and leaves the parameter at the preset's
// value (the resulting cell row is the reference the deltas are computed
// against when every axis is at base).
func ParseAxis(s string) (Axis, error) {
	name, values, ok := strings.Cut(s, "=")
	name = strings.TrimSpace(strings.ToLower(name))
	if !ok || name == "" || strings.TrimSpace(values) == "" {
		return Axis{}, fmt.Errorf("sweep: axis %q: want name=v1,v2,... (axes: %s)",
			s, strings.Join(AxisNames(), ", "))
	}
	parse, ok := axisParsers[name]
	if !ok {
		return Axis{}, fmt.Errorf("sweep: unknown axis %q (axes: %s)",
			name, strings.Join(AxisNames(), ", "))
	}
	ax := Axis{
		Name:              name,
		MutatesPrefetcher: name == "prefdist" || name == "preframp",
	}
	seen := map[string]bool{}
	for _, raw := range strings.Split(values, ",") {
		v := strings.TrimSpace(raw)
		var p Point
		if strings.EqualFold(v, "base") {
			p = Base()
		} else {
			var err error
			if p, err = parse(v); err != nil {
				return Axis{}, fmt.Errorf("sweep: axis %s: bad value %q: %v", name, v, err)
			}
		}
		if seen[p.Label] {
			return Axis{}, fmt.Errorf("sweep: axis %s: duplicate value %q", name, p.Label)
		}
		seen[p.Label] = true
		ax.Points = append(ax.Points, p)
	}
	return ax, nil
}

// MustParseAxis is ParseAxis but panics on error; for tests and examples
// with literal axis strings.
func MustParseAxis(s string) Axis {
	ax, err := ParseAxis(s)
	if err != nil {
		panic(err)
	}
	return ax
}

// ParseAxes compiles a list of axis declarations — the wire form a
// SweepRequest carries.
func ParseAxes(strs []string) ([]Axis, error) {
	axes := make([]Axis, len(strs))
	for i, s := range strs {
		ax, err := ParseAxis(s)
		if err != nil {
			return nil, err
		}
		axes[i] = ax
	}
	return axes, nil
}
