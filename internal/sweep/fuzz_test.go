package sweep_test

import (
	"testing"

	"riscvmem/internal/sweep"
)

// FuzzParseAxis drives the "name=v1,v2,..." sweep-axis grammar with
// arbitrary input. The parser must never panic, and any axis it accepts
// must be well-formed: a known name, at least one point, and unique
// point labels (duplicates would collide as sweep cell coordinates).
func FuzzParseAxis(f *testing.F) {
	for _, seed := range []string{
		"",
		"l2=256KiB,1MiB",
		"l2=off,base",
		"prefdist=base,4,8",
		"preframp=on,off",
		"pref=none",
		"policy=lru",
		"dramlat=80,120.5",
		"maxinflight=1,2,4,8",
		"l2=",
		"=256KiB",
		"unknownaxis=1",
		"l2=256KiB,256KiB",
		"L2 = 256KiB , base",
		"dramlat=-1",
		"maxinflight=0x10",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ax, err := sweep.ParseAxis(s)
		if err != nil {
			return
		}
		if ax.Name == "" {
			t.Fatalf("accepted %q with empty axis name", s)
		}
		if len(ax.Points) == 0 {
			t.Fatalf("accepted %q with no points", s)
		}
		seen := map[string]bool{}
		for _, p := range ax.Points {
			if p.Apply == nil && p.Label != "base" {
				// Base() is the one sanctioned nil-Apply point (identity).
				t.Fatalf("accepted %q with a nil Apply on point %q", s, p.Label)
			}
			if seen[p.Label] {
				t.Fatalf("accepted %q with duplicate point label %q", s, p.Label)
			}
			seen[p.Label] = true
		}
	})
}
