// Package sweep runs declarative device-parameter ablations: named axes
// that mutate a base machine.Spec — L2 present/size, MSHR count, prefetcher
// distance/ramp, miss overlap, DRAM channels/latency, cache ways/policy —
// expanded into the full axis cross-product and executed as one batch on the
// memoized run.Runner.
//
// The paper's most interesting claims are ablation-shaped: the Mango Pi's
// missing L2, the VisionFive's ramping prefetcher crowding out demand
// traffic on a starved channel (Fig. 6), MSHR-bounded streaming bandwidth.
// This package turns each of those "what if?" questions into one declaration:
//
//	res, err := sweep.Run(ctx, sweep.Config{
//	    Base: machine.MangoPiD1(),
//	    Axes: []sweep.Axis{
//	        sweep.MustParseAxis("l2=base,128KiB,1MiB"),
//	        sweep.MustParseAxis("maxinflight=1,8,16"),
//	    },
//	    Workloads: []run.Workload{run.Transpose(transpose.Config{N: 512})},
//	})
//
// Every cell reports its speedup and bandwidth ratio against the base cell
// (the unmutated preset) running the same workload. A cell whose axis points
// are all "base" leaves the Spec untouched — byte-for-byte the preset — so
// its results are bit-identical to a direct run of the preset (pinned by the
// package's oracle test), and the memoized Runner makes overlapping sweeps
// and re-runs nearly free: identical cells simulate exactly once.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package sweep

import (
	"context"
	"fmt"
	"strings"

	"riscvmem/internal/machine"
	"riscvmem/internal/metrics"
	"riscvmem/internal/report"
	"riscvmem/internal/run"
)

// Point is one value of an axis: a label for reporting plus the spec
// mutation it stands for. A nil Apply is the distinguished "base" point — it
// leaves the spec untouched.
type Point struct {
	Label string
	Apply func(machine.Spec) machine.Spec
}

// Base returns the identity point, labelled "base".
func Base() Point { return Point{Label: "base"} }

// Axis is one named sweep dimension.
type Axis struct {
	Name   string
	Points []Point
	// MutatesPrefetcher declares that this axis's points rewrite the
	// declarative stride-prefetcher config (as prefdist/preframp do).
	// Such mutations silently no-op on specs without one (custom
	// NewPrefetcher factories, or a prefetcher removed by another axis),
	// so Expand rejects those combinations instead of producing
	// misleadingly labelled duplicate cells. Set it on programmatically
	// built axes whose Apply uses WithPrefetchDistance/WithPrefetchRamp
	// to get the same protection as the parsed grammar.
	MutatesPrefetcher bool
}

// Cell is one point of the expanded cross-product.
type Cell struct {
	// Labels holds one "axis=value" entry per axis, in axis order.
	Labels []string
	// Spec is the mutated device. For the base cell it is byte-for-byte the
	// base preset — same Name, same Identity — which is what makes the
	// empty-mutation sweep bit-identical to a direct preset run.
	Spec machine.Spec
	// Base reports that every axis took its base point.
	Base bool
}

// Expand builds the full axis cross-product over the base spec, first axis
// outermost. Mutated cells are renamed "Base[axis=value,...]" (listing only
// the non-base points) so results, pool keys and error messages stay
// readable; the all-base cell keeps the spec untouched.
func Expand(base machine.Spec, axes []Axis) ([]Cell, error) {
	seen := map[string]bool{}
	for _, ax := range axes {
		if len(ax.Points) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Name)
		}
		if seen[ax.Name] {
			// A duplicate axis would silently let the later declaration
			// override the earlier one while the labels claim both applied.
			return nil, fmt.Errorf("sweep: axis %q declared twice", ax.Name)
		}
		seen[ax.Name] = true
		if ax.MutatesPrefetcher && !base.HasDeclarativePrefetcher() {
			return nil, fmt.Errorf("sweep: axis %q requires a declarative prefetcher config (machine.Spec.Mem.Prefetch), but device %s uses a custom factory",
				ax.Name, base.Name)
		}
	}
	type partial struct {
		cell Cell
		muts []string // labels of the non-base points, for the cell name
		// declLabel remembers the first mutating point taken on a
		// declarative-prefetcher axis, to diagnose cells where a later (or
		// earlier) pref=off made that mutation a silent no-op.
		declLabel string
	}
	parts := []partial{{cell: Cell{Spec: base, Base: true}}}
	for _, ax := range axes {
		next := make([]partial, 0, len(parts)*len(ax.Points))
		for _, pc := range parts {
			for _, p := range ax.Points {
				label := ax.Name + "=" + p.Label
				nc := partial{
					cell: Cell{
						Labels: append(append([]string{}, pc.cell.Labels...), label),
						Spec:   pc.cell.Spec,
						Base:   pc.cell.Base && p.Apply == nil,
					},
					muts:      pc.muts,
					declLabel: pc.declLabel,
				}
				if p.Apply != nil {
					if ax.MutatesPrefetcher && !nc.cell.Spec.HasDeclarativePrefetcher() {
						return nil, fmt.Errorf("sweep: cell [%s]: axis %s has nothing to mutate — an earlier axis disabled the prefetcher",
							strings.Join(nc.cell.Labels, ","), ax.Name)
					}
					nc.cell.Spec = p.Apply(nc.cell.Spec)
					nc.muts = append(append([]string{}, pc.muts...), label)
					if ax.MutatesPrefetcher && nc.declLabel == "" {
						nc.declLabel = label
					}
				}
				next = append(next, nc)
			}
		}
		parts = next
	}
	cells := make([]Cell, len(parts))
	for i, pc := range parts {
		if pc.declLabel != "" && !pc.cell.Spec.HasDeclarativePrefetcher() {
			// A later axis (pref=off) erased the prefetcher this cell's
			// earlier mutation targeted; the row would be labelled with a
			// distance/ramp that took no effect.
			return nil, fmt.Errorf("sweep: cell [%s]: %s took no effect — a later axis disabled the prefetcher",
				strings.Join(pc.cell.Labels, ","), pc.declLabel)
		}
		cells[i] = pc.cell
		if !pc.cell.Base {
			cells[i].Spec = pc.cell.Spec.Renamed(
				fmt.Sprintf("%s[%s]", base.Name, strings.Join(pc.muts, ",")))
		}
	}
	return cells, nil
}

// Config describes one sweep.
type Config struct {
	// Base is the preset every cell mutates.
	Base machine.Spec
	// Axes are the sweep dimensions; their cross-product is the cell grid.
	// No axes means a single (base) cell.
	Axes []Axis
	// Workloads run in every cell.
	Workloads []run.Workload
	// Runner executes the batch; nil builds a fresh memoized runner.
	// Passing a shared runner lets overlapping sweeps reuse each other's
	// cached cells.
	Runner *run.Runner
	// OnProgress, when set, observes each cell×workload job as it
	// completes (serially, in completion order) — the hook async transports
	// stream partial sweep progress through. Base-relative deltas are only
	// computable once the whole grid (and its base cell) is in, so progress
	// carries raw per-job results; the deltas arrive with the final
	// Results.
	OnProgress func(run.Progress)
}

// CellResult is one (cell, workload) measurement with its base-relative
// deltas.
type CellResult struct {
	Cell   Cell
	Result run.Result
	// Speedup is how many times faster this cell ran the workload than the
	// base cell (>1: the mutation helps; exactly 1 for the base cell).
	Speedup float64
	// BandwidthVsBase is the cell's achieved bandwidth over the base
	// cell's, the utilization delta of the §3.3 metric under a shared
	// mandatory byte count (0 when the workload reports no bandwidth).
	BandwidthVsBase float64
}

// Results is the outcome of one sweep.
type Results struct {
	Base  machine.Spec
	Axes  []Axis
	Cells []Cell
	// PerCell holds one row per (cell, workload), cells outermost, in
	// expansion × workload order.
	PerCell []CellResult
	// BaseResults holds the base cell's Result per workload, in
	// Config.Workloads order — the denominator of every delta. Positional
	// (not name-keyed), so workloads sharing a Name but differing in
	// config keep their own base.
	BaseResults []run.Result
}

// Run expands the sweep and executes every cell × workload as one batch on
// the (memoized, pooled) runner. The base cell is always measured — it is
// part of every expansion — and each cell's deltas are computed against it.
func Run(ctx context.Context, cfg Config) (*Results, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("sweep: no workloads")
	}
	cells, err := Expand(cfg.Base, cfg.Axes)
	if err != nil {
		return nil, err
	}
	baseIdx := -1
	for i, c := range cells {
		if c.Base {
			baseIdx = i
			break
		}
	}
	if baseIdx < 0 {
		// Every axis omitted the base point; append a reference cell so
		// deltas remain well-defined. It is not part of the reported grid.
		cells = append(cells, Cell{Spec: cfg.Base, Base: true})
		baseIdx = len(cells) - 1
	}
	r := cfg.Runner
	if r == nil {
		r = run.New(run.Options{})
	}
	jobs := make([]run.Job, 0, len(cells)*len(cfg.Workloads))
	for _, c := range cells {
		for _, w := range cfg.Workloads {
			jobs = append(jobs, run.Job{Device: c.Spec, Workload: w})
		}
	}
	results, err := r.RunWithProgress(ctx, jobs, cfg.OnProgress)
	if err != nil {
		return nil, fmt.Errorf("sweep on %s: %w", cfg.Base.Name, err)
	}
	res := &Results{
		Base: cfg.Base, Axes: cfg.Axes,
		BaseResults: make([]run.Result, len(cfg.Workloads)),
	}
	for wi := range cfg.Workloads {
		res.BaseResults[wi] = results[baseIdx*len(cfg.Workloads)+wi]
	}
	reported := cells
	if baseIdx == len(cells)-1 && !containsBasePoint(cfg.Axes) && len(cfg.Axes) > 0 {
		reported = cells[:len(cells)-1] // drop the synthetic reference cell
	}
	res.Cells = reported
	for ci, c := range reported {
		for wi := range cfg.Workloads {
			got := results[ci*len(cfg.Workloads)+wi]
			base := res.BaseResults[wi]
			bwRatio := 0.0
			if base.Bandwidth > 0 {
				bwRatio = float64(got.Bandwidth) / float64(base.Bandwidth)
			}
			res.PerCell = append(res.PerCell, CellResult{
				Cell:            c,
				Result:          got,
				Speedup:         metrics.Speedup(base.Seconds, got.Seconds),
				BandwidthVsBase: bwRatio,
			})
		}
	}
	return res, nil
}

// containsBasePoint reports whether any expansion cell can be all-base,
// i.e. every axis carries a base point.
func containsBasePoint(axes []Axis) bool {
	for _, ax := range axes {
		hasBase := false
		for _, p := range ax.Points {
			if p.Apply == nil {
				hasBase = true
				break
			}
		}
		if !hasBase {
			return false
		}
	}
	return true
}

// Table renders the sweep as a report.Table: one axis column per dimension,
// then the workload and its absolute and base-relative numbers.
func (r *Results) Table() report.Table {
	var axisNames []string
	for _, ax := range r.Axes {
		axisNames = append(axisNames, ax.Name)
	}
	t := report.Table{
		Title: fmt.Sprintf("Sweep: %s × {%s} (%d cells)",
			r.Base.Name, strings.Join(axisNames, ", "), len(r.Cells)),
		Headers: append(append([]string{}, axisNames...),
			"Workload", "Seconds", "Speedup", "Bandwidth", "BW×base"),
	}
	for _, cr := range r.PerCell {
		row := make([]string, 0, len(t.Headers))
		for _, lab := range cr.Cell.Labels {
			_, val, _ := strings.Cut(lab, "=")
			row = append(row, val)
		}
		row = append(row,
			cr.Result.Workload,
			fmt.Sprintf("%.6g", cr.Result.Seconds),
			fmt.Sprintf("%.3f", cr.Speedup),
			cr.Result.Bandwidth.String(),
			fmt.Sprintf("%.3f", cr.BandwidthVsBase),
		)
		t.Rows = append(t.Rows, row)
	}
	return t
}
