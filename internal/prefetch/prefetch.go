// Package prefetch models hardware data prefetchers.
//
// The paper's two RISC-V devices differ in exactly this component (§3.1):
// the Allwinner D1's C906 core prefetches "forward and backward consecutive
// and stride-based with stride less or equal 16 cache lines", while the
// JH7100's U74 cores prefetch "forward and backward stride-based with large
// strides and automatically increased prefetch distance". Both behaviours —
// and the Gaussian-blur result where prefetching *hurts* the bandwidth-starved
// VisionFive board (§4.3) — fall out of the Stride model here combined with
// the DRAM channel occupancy model in internal/dram.
//
// Prefetchers are trained on demand-access line addresses and emit candidate
// line addresses; the memory hierarchy decides whether a candidate is already
// resident or in flight and charges channel time for real fills.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package prefetch

import (
	"math/bits"

	"riscvmem/internal/units"
)

// Prefetcher observes the demand-access stream of one core and proposes
// lines to fetch ahead of it.
type Prefetcher interface {
	// Observe records a demand access to the given line-aligned byte address
	// and appends any prefetch candidates (line-aligned byte addresses) to
	// out, returning the extended slice. The lineSize is fixed at
	// construction.
	Observe(lineAddr uint64, out []uint64) []uint64
	// Reset clears all training state.
	Reset()
}

// None is the absent prefetcher (e.g. for ablation benchmarks).
type None struct{}

// Observe implements Prefetcher; it never proposes anything.
func (None) Observe(_ uint64, out []uint64) []uint64 { return out }

// Reset implements Prefetcher.
func (None) Reset() {}

// NextLine prefetches the next Degree consecutive lines on every observed
// access — the classic instruction-side scheme (the C906 prefetches "the next
// consecutive cache line" for instructions). Kept mostly for ablations on the
// data side.
type NextLine struct {
	LineSize int64
	Degree   int // how many lines ahead; 0 behaves as 1
	last     uint64
	warm     bool
}

// NewNextLine returns a next-line prefetcher for the given line size.
func NewNextLine(lineSize int64, degree int) *NextLine {
	if degree < 1 {
		degree = 1
	}
	return &NextLine{LineSize: lineSize, Degree: degree}
}

// Observe implements Prefetcher.
func (p *NextLine) Observe(lineAddr uint64, out []uint64) []uint64 {
	// Only fire when the stream moves to a new line; repeated accesses to
	// the same line must not multiply traffic.
	if p.warm && p.last == lineAddr {
		return out
	}
	p.warm = true
	p.last = lineAddr
	for i := 1; i <= p.Degree; i++ {
		out = append(out, lineAddr+uint64(i)*uint64(p.LineSize))
	}
	return out
}

// Reset implements Prefetcher.
func (p *NextLine) Reset() { p.warm = false; p.last = 0 }

// StrideConfig parameterizes a Stride prefetcher.
type StrideConfig struct {
	LineSize int64
	// Streams is the number of concurrent access streams tracked (the table
	// size). Typical hardware tracks 4–16.
	Streams int
	// MaxStrideLines bounds the detectable stride in lines; 0 means
	// unbounded ("large strides" on the U74). The C906 uses 16.
	MaxStrideLines int64
	// MatchWindowLines is how close (in lines) an access must be to a
	// tracked stream's predicted position to be considered part of it.
	MatchWindowLines int64
	// TrainThreshold is the number of consecutive same-stride observations
	// before prefetches are issued.
	TrainThreshold int
	// InitDistance and MaxDistance bound the prefetch look-ahead, in strides.
	// When Ramp is true, the distance doubles on each confident observation
	// until MaxDistance ("automatically increased prefetch distance", U74);
	// otherwise it stays at InitDistance.
	InitDistance int
	MaxDistance  int
	Ramp         bool
}

// withDefaults fills zero fields with reasonable hardware-ish values.
func (c StrideConfig) withDefaults() StrideConfig {
	if c.Streams == 0 {
		c.Streams = 8
	}
	if c.MatchWindowLines == 0 {
		c.MatchWindowLines = 512
	}
	if c.TrainThreshold == 0 {
		c.TrainThreshold = 2
	}
	if c.InitDistance == 0 {
		c.InitDistance = 1
	}
	if c.MaxDistance == 0 {
		c.MaxDistance = c.InitDistance
	}
	return c
}

type stream struct {
	lastLine int64 // line index (addr / lineSize)
	stride   int64 // in lines; 0 = untrained
	conf     int
	distance int
	lastUse  uint64
	valid    bool
}

// Stride is a multi-stream stride-directed prefetcher supporting forward and
// backward strides, bounded or unbounded stride magnitude, and optional
// distance ramping.
type Stride struct {
	cfg StrideConfig
	// lineShift is log2(LineSize) when it is a power of two (the common
	// case: divide/multiply by shifting), else 0 with pow2Line false.
	lineShift uint
	pow2Line  bool
	table     []stream
	// validMask mirrors the streams' valid bits so the match scan skips
	// empty slots without touching their memory (tables are ≤64 streams).
	validMask uint64
	clock     uint64
	// lastMatch is the table index the most recent Observe matched (updated
	// against), or -1 when it allocated a new stream instead; consumed by
	// SteadyAt.
	lastMatch int
	// Issued counts candidate lines proposed since construction/Reset.
	Issued uint64
}

// NewStride returns a stride prefetcher with the given configuration.
func NewStride(cfg StrideConfig) *Stride {
	cfg = cfg.withDefaults()
	p := &Stride{cfg: cfg, table: make([]stream, cfg.Streams), lastMatch: -1}
	if units.IsPow2(cfg.LineSize) {
		p.lineShift, p.pow2Line = units.Log2(cfg.LineSize), true
	}
	return p
}

// LineSize returns the configured line size (callers batching observations,
// like hier.AccessLines, must match their line units against it).
func (p *Stride) LineSize() int64 { return p.cfg.LineSize }

// Observe implements Prefetcher.
func (p *Stride) Observe(lineAddr uint64, out []uint64) []uint64 {
	var line int64
	if p.pow2Line {
		line = int64(lineAddr >> p.lineShift)
	} else {
		line = int64(lineAddr / uint64(p.cfg.LineSize))
	}
	p.clock++

	// Find the tracked stream closest to this access. Tables of ≤64 streams
	// (all presets) scan only the live slots via the validity mask; the
	// ascending bit order preserves the lowest-index tie-break.
	best, bestDist := -1, p.cfg.MatchWindowLines+1
	if len(p.table) <= 64 {
		for live := p.validMask; live != 0; live &= live - 1 {
			i := bits.TrailingZeros64(live)
			s := &p.table[i]
			d := line - s.lastLine
			if d < 0 {
				d = -d
			}
			if d <= p.cfg.MatchWindowLines && d < bestDist {
				best, bestDist = i, d
			}
		}
	} else {
		for i := range p.table {
			s := &p.table[i]
			if !s.valid {
				continue
			}
			d := line - s.lastLine
			if d < 0 {
				d = -d
			}
			if d <= p.cfg.MatchWindowLines && d < bestDist {
				best, bestDist = i, d
			}
		}
	}

	if best < 0 {
		// Allocate a new stream over the least recently used slot.
		p.lastMatch = -1
		victim := 0
		for i := range p.table {
			if !p.table[i].valid {
				victim = i
				break
			}
			if p.table[i].lastUse < p.table[victim].lastUse {
				victim = i
			}
		}
		p.table[victim] = stream{lastLine: line, distance: p.cfg.InitDistance, lastUse: p.clock, valid: true}
		p.validMask |= 1 << uint(victim)
		return out
	}

	p.lastMatch = best
	s := &p.table[best]
	s.lastUse = p.clock
	delta := line - s.lastLine
	if delta == 0 {
		return out // same line; nothing learned
	}
	s.lastLine = line

	tooBig := p.cfg.MaxStrideLines > 0 && (delta > p.cfg.MaxStrideLines || delta < -p.cfg.MaxStrideLines)
	if tooBig || delta != s.stride {
		// New or rejected stride: retrain.
		if tooBig {
			s.stride, s.conf = 0, 0
		} else {
			s.stride, s.conf = delta, 1
		}
		s.distance = p.cfg.InitDistance
		return out
	}

	// Confirmed stride.
	s.conf++
	if s.conf < p.cfg.TrainThreshold {
		return out
	}
	if p.cfg.Ramp && s.distance < p.cfg.MaxDistance {
		s.distance *= 2
		if s.distance > p.cfg.MaxDistance {
			s.distance = p.cfg.MaxDistance
		}
	}
	// Propose the window [line+stride, line+stride*distance]. The hierarchy
	// drops lines that are already resident or in flight, so steady state
	// issues ~one new line per observation.
	for k := 1; k <= s.distance; k++ {
		next := line + s.stride*int64(k)
		if next < 0 {
			break
		}
		if p.pow2Line {
			out = append(out, uint64(next)<<p.lineShift)
		} else {
			out = append(out, uint64(next)*uint64(p.cfg.LineSize))
		}
		p.Issued++
	}
	return out
}

// Reset implements Prefetcher.
func (p *Stride) Reset() {
	for i := range p.table {
		p.table[i] = stream{}
	}
	p.validMask = 0
	p.clock = 0
	p.lastMatch = -1
	p.Issued = 0
}

// Steady is a fast-forward handle over one tracked stream in confirmed
// forward unit-stride state, used by the batched miss pipeline
// (hier.AccessLines) to apply the per-observation state transition without
// re-running stream matching or re-materializing the candidate window.
// Advance is exactly equivalent to Observe for the observations it accepts;
// the equivalence argument lives with SteadyAt.
type Steady struct {
	p *Stride
	s *stream
	// stop is the first line index at which another tracked stream could
	// capture (distance 0) or win a tie (distance 1, lower table index)
	// against this stream's distance-1 match; the caller must fall back to
	// Observe at or beyond it. Lines strictly below stop are guaranteed to
	// match s exactly as Observe would.
	stop int64
}

// Stop returns the first line index Advance must not be called with.
func (st *Steady) Stop() int64 { return st.stop }

// SteadyAt returns a Steady handle when the most recent Observe call — whose
// line argument must be passed here — matched a stream that is now in
// confirmed +1-line-stride state with training complete (conf at or past the
// threshold, so every further confirmation proposes candidates). ok is false
// otherwise, and the caller keeps using Observe.
//
// Exactness: between Observes only the matched stream s mutates (the table
// is per-core private, and Advance mutates nothing else), so every other
// stream's position is frozen while the handle is live. Observing line+1
// next finds s at distance 1; Observe would pick another stream j over s
// only if j sits at distance 0 (strictly closer), or at distance 1 with a
// lower table index (the ascending scan keeps the first of equal distances).
// Both conditions depend only on j's frozen position p_j, giving a precise
// per-j interference set {p_j} ∪ {p_j−1, p_j+1 if j < idx(s)}; stop is the
// minimum of those sets above line. Below stop, Observe's match, stride
// confirmation (delta 1 is never "too big": MaxStrideLines is 0 or ≥ 1),
// ramp rule and window [line+1, line+distance] are all forced, which is
// exactly what Advance applies.
func (p *Stride) SteadyAt(line int64) (Steady, bool) {
	if p.lastMatch < 0 || p.cfg.MatchWindowLines < 1 {
		return Steady{}, false
	}
	s := &p.table[p.lastMatch]
	if s.stride != 1 || s.conf < p.cfg.TrainThreshold || s.lastLine != line {
		return Steady{}, false
	}
	stop := int64(1)<<62 - 1
	for live := p.validMask; live != 0; live &= live - 1 {
		j := bits.TrailingZeros64(live)
		if j == p.lastMatch {
			continue
		}
		// j interferes when it captures outright (distance 0, at p_j) or —
		// for lower table indices, which win distance-1 ties — when it sits
		// one line off (p_j±1). Take the smallest such line above ours.
		pj, at := p.table[j].lastLine, int64(0)
		switch {
		case j < p.lastMatch && pj-1 > line:
			at = pj - 1
		case pj > line:
			at = pj
		case j < p.lastMatch && pj+1 > line:
			at = pj + 1
		default:
			continue
		}
		if at < stop {
			stop = at
		}
	}
	return Steady{p: p, s: s, stop: stop}, true
}

// Advance consumes one observation of line, which must be the previous
// observation's line+1 and strictly below Stop (the caller checks both; the
// demand-miss stream it serves advances one line at a time by construction).
// It applies Observe's exact transition — clock, recency, confidence, the
// distance ramp and the Issued accounting — and returns the current prefetch
// distance d: the candidate window is [line+1, line+d], of which the caller
// materializes only the lines beyond its already-in-flight tail.
func (st *Steady) Advance(line int64) int {
	p, s := st.p, st.s
	p.clock++
	s.lastUse = p.clock
	s.lastLine = line
	s.conf++
	if p.cfg.Ramp && s.distance < p.cfg.MaxDistance {
		s.distance *= 2
		if s.distance > p.cfg.MaxDistance {
			s.distance = p.cfg.MaxDistance
		}
	}
	p.Issued += uint64(s.distance)
	return s.distance
}
