package prefetch

import (
	"testing"
	"testing/quick"
)

const line = 64

func observeAll(p Prefetcher, addrs []uint64) []uint64 {
	var out []uint64
	for _, a := range addrs {
		out = p.Observe(a, out)
	}
	return out
}

func TestNoneNeverPrefetches(t *testing.T) {
	var p None
	out := p.Observe(0, nil)
	out = p.Observe(64, out)
	if len(out) != 0 {
		t.Fatalf("None proposed %v", out)
	}
	p.Reset() // must not panic
}

func TestNextLine(t *testing.T) {
	p := NewNextLine(line, 1)
	out := p.Observe(0, nil)
	if len(out) != 1 || out[0] != line {
		t.Fatalf("Observe(0) = %v, want [64]", out)
	}
	// Re-touching the same line must not fire again.
	out = p.Observe(0, nil)
	if len(out) != 0 {
		t.Fatalf("repeat observation fired: %v", out)
	}
	out = p.Observe(2*line, nil)
	if len(out) != 1 || out[0] != 3*line {
		t.Fatalf("Observe(128) = %v, want [192]", out)
	}
}

func TestNextLineDegree(t *testing.T) {
	p := NewNextLine(line, 3)
	out := p.Observe(0, nil)
	want := []uint64{64, 128, 192}
	if len(out) != len(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
	// Degree < 1 behaves as 1.
	if NewNextLine(line, 0).Degree != 1 {
		t.Fatal("degree clamp failed")
	}
}

func TestStrideDetectsUnitForward(t *testing.T) {
	p := NewStride(StrideConfig{LineSize: line, TrainThreshold: 2})
	// Lines 0,1,2,...: after the training threshold, each access proposes
	// the next line.
	var fired []uint64
	for i := 0; i < 6; i++ {
		fired = p.Observe(uint64(i*line), fired)
	}
	if len(fired) == 0 {
		t.Fatal("unit-stride stream never trained")
	}
	// First proposal must be ahead of the access that triggered it.
	if fired[0] <= 2*line {
		t.Fatalf("first prefetch %d not ahead of trained stream", fired[0])
	}
}

func TestStrideDetectsBackward(t *testing.T) {
	p := NewStride(StrideConfig{LineSize: line, TrainThreshold: 2})
	var fired []uint64
	for i := 20; i >= 10; i-- {
		fired = p.Observe(uint64(i*line), fired)
	}
	if len(fired) == 0 {
		t.Fatal("backward stream never trained")
	}
	// Proposals must move downward.
	if fired[0] >= 20*line {
		t.Fatalf("backward prefetch went forward: %d", fired[0])
	}
}

func TestStrideRespectsMaxStride(t *testing.T) {
	big := NewStride(StrideConfig{LineSize: line, MaxStrideLines: 16, TrainThreshold: 2, MatchWindowLines: 4096})
	var fired []uint64
	// Stride of 32 lines exceeds the 16-line bound: never prefetch.
	for i := 0; i < 20; i++ {
		fired = big.Observe(uint64(i*32*line), fired)
	}
	if len(fired) != 0 {
		t.Fatalf("stride beyond bound fired %d prefetches", len(fired))
	}
	// Stride of 8 lines is within bounds: must fire.
	ok := NewStride(StrideConfig{LineSize: line, MaxStrideLines: 16, TrainThreshold: 2, MatchWindowLines: 4096})
	fired = nil
	for i := 0; i < 20; i++ {
		fired = ok.Observe(uint64(i*8*line), fired)
	}
	if len(fired) == 0 {
		t.Fatal("stride within bound never fired")
	}
}

func TestStrideUnboundedAllowsLargeStrides(t *testing.T) {
	p := NewStride(StrideConfig{LineSize: line, MaxStrideLines: 0, TrainThreshold: 2, MatchWindowLines: 4096})
	var fired []uint64
	for i := 0; i < 20; i++ {
		fired = p.Observe(uint64(i*32*line), fired)
	}
	if len(fired) == 0 {
		t.Fatal("unbounded prefetcher rejected a 32-line stride")
	}
}

func TestStrideRampsDistance(t *testing.T) {
	ramp := NewStride(StrideConfig{LineSize: line, TrainThreshold: 2, InitDistance: 1, MaxDistance: 8, Ramp: true})
	flat := NewStride(StrideConfig{LineSize: line, TrainThreshold: 2, InitDistance: 1, MaxDistance: 8, Ramp: false})
	addrs := make([]uint64, 40)
	for i := range addrs {
		addrs[i] = uint64(i * line)
	}
	r := observeAll(ramp, addrs)
	f := observeAll(flat, addrs)
	if len(r) <= len(f) {
		t.Fatalf("ramping produced %d candidates, flat %d; want ramp > flat", len(r), len(f))
	}
}

func TestStrideRetrainsOnStrideChange(t *testing.T) {
	p := NewStride(StrideConfig{LineSize: line, TrainThreshold: 2})
	var fired []uint64
	for i := 0; i < 8; i++ {
		fired = p.Observe(uint64(i*line), fired)
	}
	n := len(fired)
	if n == 0 {
		t.Fatal("never trained")
	}
	// Change stride to 3 within the match window; the very next observation
	// must not fire (confidence reset).
	fired = p.Observe(uint64(7*line+3*line), fired)
	if len(fired) != n {
		t.Fatalf("fired immediately after stride change: %d -> %d", n, len(fired))
	}
}

func TestStrideSameLineNoTraining(t *testing.T) {
	p := NewStride(StrideConfig{LineSize: line, TrainThreshold: 1})
	var fired []uint64
	for i := 0; i < 10; i++ {
		fired = p.Observe(0, fired)
	}
	if len(fired) != 0 {
		t.Fatalf("same-line accesses fired %d prefetches", len(fired))
	}
}

func TestStrideTracksMultipleStreams(t *testing.T) {
	p := NewStride(StrideConfig{LineSize: line, TrainThreshold: 2, MatchWindowLines: 64})
	var fired []uint64
	// Two interleaved unit-stride streams far apart.
	const gap = 1 << 20
	for i := 0; i < 10; i++ {
		fired = p.Observe(uint64(i*line), fired)
		fired = p.Observe(uint64(gap+i*line), fired)
	}
	// Both streams should be trained: proposals near 0 and near gap.
	var lo, hi bool
	for _, a := range fired {
		if a < gap/2 {
			lo = true
		} else {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatalf("streams trained: low=%v high=%v, want both", lo, hi)
	}
}

func TestStrideReset(t *testing.T) {
	p := NewStride(StrideConfig{LineSize: line, TrainThreshold: 2})
	var fired []uint64
	for i := 0; i < 8; i++ {
		fired = p.Observe(uint64(i*line), fired)
	}
	p.Reset()
	if p.Issued != 0 {
		t.Fatal("Issued not cleared by Reset")
	}
	// After reset the next observation allocates fresh and must not fire.
	if out := p.Observe(uint64(8*line), nil); len(out) != 0 {
		t.Fatalf("fired right after reset: %v", out)
	}
}

// Property: proposals are always line-aligned and never equal to the
// observed line.
func TestPropertyProposalsLineAligned(t *testing.T) {
	f := func(raw []uint16) bool {
		p := NewStride(StrideConfig{LineSize: line, TrainThreshold: 1, MaxDistance: 4, Ramp: true})
		for _, r := range raw {
			a := uint64(r) * line
			for _, c := range p.Observe(a, nil) {
				if c%line != 0 || c == a {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSteadyAdvanceEquivalence drives two identical Stride prefetchers down
// a unit-stride demand stream — one through Observe every time, one
// switching to the SteadyAt/Advance fast-forward as soon as it engages — and
// requires identical issue accounting, window depths and post-stream
// behaviour (training state, via the candidates a subsequent pattern draws).
func TestSteadyAdvanceEquivalence(t *testing.T) {
	for _, cfg := range []StrideConfig{
		{LineSize: 64, Streams: 8, MaxStrideLines: 16, TrainThreshold: 2, InitDistance: 2, MaxDistance: 8},
		{LineSize: 64, Streams: 8, TrainThreshold: 2, InitDistance: 1, MaxDistance: 8, Ramp: true},
		{LineSize: 64, Streams: 16, TrainThreshold: 2, InitDistance: 4, MaxDistance: 32, Ramp: true},
	} {
		ref := NewStride(cfg)
		fast := NewStride(cfg)
		// A parked foreign stream ahead of the run exercises the stop bound.
		ref.Observe(500*64, nil)
		fast.Observe(500*64, nil)

		var steady *Steady
		engaged := 0
		for line := int64(1); line < 600; line++ {
			refOut := ref.Observe(uint64(line*64), nil)
			var fastOut []uint64
			if steady != nil && line < steady.Stop() {
				engaged++
				d := steady.Advance(line)
				// Reconstruct the window Observe materializes.
				for k := 1; k <= d; k++ {
					fastOut = append(fastOut, uint64((line+int64(k))*64))
				}
			} else {
				steady = nil
				fastOut = fast.Observe(uint64(line*64), nil)
				if s, ok := fast.SteadyAt(line); ok {
					steady = &s
				}
			}
			if len(refOut) != len(fastOut) {
				t.Fatalf("cfg %+v line %d: window size diverges: got %d want %d", cfg, line, len(fastOut), len(refOut))
			}
			for i := range refOut {
				if refOut[i] != fastOut[i] {
					t.Fatalf("cfg %+v line %d: candidate %d diverges: got %#x want %#x", cfg, line, i, fastOut[i], refOut[i])
				}
			}
		}
		if engaged == 0 {
			t.Fatalf("cfg %+v: steady fast path never engaged", cfg)
		}
		if ref.Issued != fast.Issued {
			t.Errorf("cfg %+v: Issued diverges: got %d want %d", cfg, fast.Issued, ref.Issued)
		}
		// Post-stream: a fresh pattern must train identically on both.
		for line := int64(2000); line < 2010; line++ {
			a := ref.Observe(uint64(line*64), nil)
			b := fast.Observe(uint64(line*64), nil)
			if len(a) != len(b) {
				t.Fatalf("cfg %+v: post-stream behaviour diverges at %d", cfg, line)
			}
		}
	}
}
