package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tiny returns a 2-set, 2-way cache with 64-byte lines (256 B total) so that
// eviction sequences can be computed by hand.
func tiny(p Policy) *Cache {
	return MustNew(Config{Name: "t", Size: 256, Ways: 2, LineSize: 64, Policy: p, Seed: 42})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero", Size: 0, Ways: 1, LineSize: 64},
		{Name: "negline", Size: 128, Ways: 2, LineSize: -64},
		{Name: "npot-line", Size: 96, Ways: 1, LineSize: 48},
		{Name: "indivisible", Size: 100, Ways: 2, LineSize: 16},
		{Name: "npot-sets", Size: 3 * 64 * 2, Ways: 2, LineSize: 64},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q unexpectedly valid", cfg.Name)
		}
	}
	good := Config{Name: "l1", Size: 32 << 10, Ways: 4, LineSize: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("config %q: %v", good.Name, err)
	}
	if got, want := good.Sets(), int64(128); got != want {
		t.Errorf("Sets() = %d, want %d", got, want)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Name: "bad", Size: 7, Ways: 1, LineSize: 3}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}

func TestHitMissSequence(t *testing.T) {
	c := tiny(LRU)
	// Addresses 0 and 256 map to set 0 (line 0 and line 4), 64 to set 1.
	if r := c.Access(0, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(8, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	if r := c.Access(64, false); r.Hit {
		t.Fatal("different-set cold access hit")
	}
	if r := c.Access(256, false); r.Hit {
		t.Fatal("cold access to second way hit")
	}
	// Set 0 now holds lines {0, 256}; both should hit.
	if !c.Access(0, false).Hit || !c.Access(256, false).Hit {
		t.Fatal("resident lines missed")
	}
	if got := c.Stats.Hits; got != 3 {
		t.Fatalf("Stats.Hits = %d, want 3", got)
	}
	if got := c.Stats.Misses; got != 3 {
		t.Fatalf("Stats.Misses = %d, want 3", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny(LRU)
	c.Access(0, false)   // set 0, way 0
	c.Access(256, false) // set 0, way 1
	c.Access(0, false)   // 0 is now most recent
	r := c.Access(512, false)
	if r.Hit {
		t.Fatal("conflicting access hit")
	}
	if !r.EvictedValid || r.Evicted != 256 {
		t.Fatalf("evicted %#x (valid=%v), want 256", r.Evicted, r.EvictedValid)
	}
	if c.Probe(256) {
		t.Fatal("evicted line still present")
	}
	if !c.Probe(0) || !c.Probe(512) {
		t.Fatal("expected lines not present")
	}
}

func TestFIFOEvictsInsertionOrder(t *testing.T) {
	c := tiny(FIFO)
	c.Access(0, false)
	c.Access(256, false)
	c.Access(0, false) // recency must NOT protect 0 under FIFO
	r := c.Access(512, false)
	if !r.EvictedValid || r.Evicted != 0 {
		t.Fatalf("FIFO evicted %#x, want 0", r.Evicted)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := tiny(LRU)
	c.Access(0, true) // dirty
	c.Access(256, false)
	r := c.Access(512, false) // evicts 0, which is dirty
	if !r.EvictedValid || !r.EvictedDirty {
		t.Fatalf("expected dirty eviction, got %+v", r)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// A clean line must not report a writeback.
	r = c.Access(768, false)
	if r.EvictedDirty {
		t.Fatalf("clean eviction reported dirty: %+v", r)
	}
}

func TestInstallDoesNotCountDemand(t *testing.T) {
	c := tiny(LRU)
	c.Install(0, false)
	if c.Stats.Accesses() != 0 {
		t.Fatalf("Install counted as demand access: %+v", c.Stats)
	}
	if !c.Access(0, false).Hit {
		t.Fatal("installed line missed")
	}
}

func TestInstallRefreshesExistingLine(t *testing.T) {
	c := tiny(LRU)
	c.Access(0, false)
	c.Access(256, false)
	c.Install(0, false) // 0 becomes most recent
	r := c.Access(512, false)
	if r.Evicted != 256 {
		t.Fatalf("evicted %#x, want 256 after refresh", r.Evicted)
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny(LRU)
	c.Access(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Probe(0) {
		t.Fatal("line survived invalidation")
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Fatal("double invalidation reported present")
	}
}

func TestRandomPolicyIsDeterministic(t *testing.T) {
	run := func() []uint64 {
		c := tiny(Random)
		var evictions []uint64
		for i := 0; i < 64; i++ {
			r := c.Access(uint64(i)*512, false)
			if r.EvictedValid {
				evictions = append(evictions, r.Evicted)
			}
		}
		return evictions
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("eviction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("eviction %d differs: %#x vs %#x", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("expected at least one eviction")
	}
}

func TestPLRUCoversAllWays(t *testing.T) {
	c := MustNew(Config{Name: "p", Size: 4 * 64, Ways: 4, LineSize: 64, Policy: PLRU})
	// Fill all 4 ways of the single set... wait: 4 ways * 64B = 256B = size,
	// so one set. Touch each line, then force evictions and check each way
	// can become a victim over time.
	for i := 0; i < 4; i++ {
		c.Access(uint64(i)*64*1, false)
	}
	seen := map[uint64]bool{}
	for i := 4; i < 64; i++ {
		r := c.Access(uint64(i)*64, false)
		if r.EvictedValid {
			seen[r.Evicted%256/64] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("PLRU only ever evicted ways %v", seen)
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := tiny(LRU)
	c.Access(0, true)
	c.Access(512, false)
	c.Reset()
	if c.Stats != (Stats{}) {
		t.Fatalf("stats not cleared: %+v", c.Stats)
	}
	if c.ValidLines() != 0 {
		t.Fatal("lines survived reset")
	}
	if c.Access(0, false).Hit {
		t.Fatal("hit after reset")
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty stats hit rate != 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{LRU: "LRU", Random: "random", FIFO: "FIFO", PLRU: "PLRU", Policy(9): "Policy(9)"}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

// Property: the number of valid lines never exceeds capacity, and a line
// reported evicted is really gone, for random access streams on all policies.
func TestPropertyCapacityInvariant(t *testing.T) {
	for _, p := range []Policy{LRU, Random, FIFO, PLRU} {
		p := p
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			c := MustNew(Config{Name: "q", Size: 2 << 10, Ways: 4, LineSize: 64, Policy: p, Seed: uint64(seed) + 1})
			capacity := int(c.Config().Size / c.Config().LineSize)
			for i := 0; i < 2000; i++ {
				addr := uint64(rng.Intn(1 << 16))
				r := c.Access(addr, rng.Intn(2) == 0)
				if c.ValidLines() > capacity {
					return false
				}
				if r.EvictedValid && c.Probe(r.Evicted) {
					return false
				}
				if !c.Probe(addr) { // accessed line must now be resident
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("policy %v: %v", p, err)
		}
	}
}

// Property: an LRU cache with a working set no larger than one set's ways
// never misses after the first touch (rehearsal of the blocking argument
// used by the transposition kernel).
func TestPropertyLRUNoCapacityMissesWithinWays(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(Config{Name: "w", Size: 8 << 10, Ways: 8, LineSize: 64, Policy: LRU})
		// Pick up to 8 distinct lines that all map to the same set.
		sets := c.Config().Sets()
		set := uint64(rng.Intn(int(sets)))
		lines := make([]uint64, 8)
		for i := range lines {
			lines[i] = (uint64(i)*uint64(sets) + set) * 64
		}
		for _, a := range lines {
			c.Access(a, false)
		}
		miss := 0
		for i := 0; i < 500; i++ {
			a := lines[rng.Intn(len(lines))]
			if !c.Access(a, false).Hit {
				miss++
			}
		}
		return miss == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := MustNew(Config{Name: "l1", Size: 32 << 10, Ways: 4, LineSize: 64, Policy: LRU})
	c.Access(0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, false)
	}
}

func BenchmarkAccessMissStream(b *testing.B) {
	c := MustNew(Config{Name: "l1", Size: 32 << 10, Ways: 4, LineSize: 64, Policy: LRU})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*64, false)
	}
}

// TestAccessLineEquivalence pins AccessLine with caller-buffered statistics
// (plus one AddStats flush) to the plain Access path: identical Results,
// replacement state and final counters on a mixed random workload, for every
// policy.
func TestAccessLineEquivalence(t *testing.T) {
	for _, pol := range []Policy{LRU, Random, FIFO, PLRU} {
		cfg := Config{Name: "t", Size: 4096, Ways: 4, LineSize: 64, Policy: pol, Seed: 7}
		ref := MustNew(cfg)
		got := MustNew(cfg)
		var buf Stats
		rnd := uint64(0x1234567)
		for i := 0; i < 5000; i++ {
			rnd ^= rnd << 13
			rnd ^= rnd >> 7
			rnd ^= rnd << 17
			addr := (rnd % 512) * 64
			write := rnd&1 == 0
			r1 := ref.Access(addr, write)
			r2 := got.AccessLine(addr>>6, write, &buf)
			if r1 != r2 {
				t.Fatalf("%v: access %d diverges: got %+v want %+v", pol, i, r2, r1)
			}
		}
		got.AddStats(buf)
		if got.Stats != ref.Stats {
			t.Errorf("%v: stats diverge: got %+v want %+v", pol, got.Stats, ref.Stats)
		}
		if got.ValidLines() != ref.ValidLines() {
			t.Errorf("%v: valid lines diverge", pol)
		}
	}
}
