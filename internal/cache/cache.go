// Package cache implements a set-associative cache timing model.
//
// The model is structural, not functional: it tracks tags, validity, dirt and
// recency so that hit/miss/writeback sequences are exact for a given access
// stream, while the actual data payload lives elsewhere (the simulator keeps
// kernel data in ordinary Go slices). Write-back and write-allocate policies
// match the devices studied in the paper; replacement is pluggable because
// the paper's devices differ exactly there (LRU-like on the C906 and the
// x86/ARM parts, random replacement on the SiFive U74's L1 and L2).
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package cache

import (
	"fmt"

	"riscvmem/internal/units"
)

// Policy selects the replacement policy of a cache.
type Policy int

const (
	// LRU evicts the least recently used way.
	LRU Policy = iota
	// Random evicts a pseudo-randomly chosen way (deterministically seeded;
	// the U74's "random re-placement policy" from the paper's §3.1).
	Random
	// FIFO evicts ways in insertion order.
	FIFO
	// PLRU is tree-based pseudo-LRU, the common hardware approximation.
	PLRU
)

// String returns the conventional short name of the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case Random:
		return "random"
	case FIFO:
		return "FIFO"
	case PLRU:
		return "PLRU"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config describes one cache level.
type Config struct {
	Name     string // e.g. "L1D", used in error and stats reporting
	Size     int64  // total capacity in bytes
	Ways     int    // associativity; Ways == Size/LineSize means fully associative
	LineSize int64  // bytes per line
	Policy   Policy
	Seed     uint64 // PRNG seed for Random; ignored otherwise
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int64 { return c.Size / (int64(c.Ways) * c.LineSize) }

// Validate checks the configuration for structural consistency.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: size, line size and ways must be positive", c.Name)
	}
	if !units.IsPow2(c.LineSize) {
		return fmt.Errorf("cache %s: line size %d is not a power of two", c.Name, c.LineSize)
	}
	if c.Size%(int64(c.Ways)*c.LineSize) != 0 {
		return fmt.Errorf("cache %s: size %d is not divisible by ways*line (%d*%d)",
			c.Name, c.Size, c.Ways, c.LineSize)
	}
	if !units.IsPow2(c.Sets()) {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, c.Sets())
	}
	return nil
}

// Stats accumulates access counts for one cache instance.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions
	Installs   uint64 // lines brought in (demand misses + explicit installs)
}

// Accesses returns the total number of demand accesses observed.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns hits/accesses, or 0 when no accesses were made.
func (s Stats) HitRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Hits) / float64(a)
	}
	return 0
}

// line packs one cache line's metadata into two words so a set scan loads
// half the memory of a field-per-flag layout and the tag+valid match is a
// single masked compare: meta holds tag<<2 | dirty<<1 | valid, used holds
// the LRU timestamp / FIFO sequence.
type line struct {
	meta uint64
	used uint64
}

const (
	lineValid = 1 << 0
	lineDirty = 1 << 1
	tagShift  = 2
)

// memoEntries sizes the direct-mapped way memo; a power of two.
const memoEntries = 256

// wayMemo remembers which way last held a line so repeated accesses to hot
// lines skip the associative scan. It is purely an accelerator: every use
// re-validates the way against the authoritative tag state, so hit/miss
// outcomes, replacement decisions and statistics are identical with or
// without it.
type wayMemo struct {
	key uint64 // line number + 1; 0 means empty
	way int32
}

// Cache is one set-associative cache level. All sets live in one contiguous
// line array (set s occupies lines[s*ways : (s+1)*ways]) so the per-access
// path costs a single indirection.
type Cache struct {
	cfg       Config
	lines     []line   // all sets, contiguous
	plru      []uint64 // per-set PLRU tree bits
	seq       []uint64 // per-set FIFO insertion counters
	ways      int
	lineShift uint
	setShift  uint
	setMask   uint64
	clock     uint64 // global recency counter
	rng       uint64 // xorshift state for Random
	memo      [memoEntries]wayMemo
	Stats     Stats
}

// Result reports the outcome of a demand access.
type Result struct {
	Hit bool
	// Evicted is the line-aligned byte address of the victim when a valid
	// line was displaced by this access; EvictedValid reports whether a
	// victim existed and EvictedDirty whether it requires a writeback.
	Evicted      uint64
	EvictedValid bool
	EvictedDirty bool
}

// New builds a cache from cfg. It returns an error when cfg is inconsistent.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	return &Cache{
		cfg:       cfg,
		lines:     make([]line, nsets*int64(cfg.Ways)),
		plru:      make([]uint64, nsets),
		seq:       make([]uint64, nsets),
		ways:      cfg.Ways,
		lineShift: units.Log2(cfg.LineSize),
		setShift:  units.Log2(nsets),
		setMask:   uint64(nsets - 1),
		rng:       cfg.Seed | 1, // xorshift state must be nonzero
	}, nil
}

// MustNew is New but panics on configuration errors; used for the fixed
// device presets which are validated by tests.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int64 { return c.cfg.LineSize }

// find returns the index into c.lines holding line number ln, consulting the
// way memo before falling back to the associative scan, or -1 on a miss.
// base is the set's first index (set*ways); tag the line's tag.
func (c *Cache) find(base int, ln, tag uint64) int {
	want := tag<<tagShift | lineValid
	m := &c.memo[ln&(memoEntries-1)]
	if m.key == ln+1 {
		if c.lines[base+int(m.way)].meta&^lineDirty == want {
			return base + int(m.way)
		}
	}
	set := c.lines[base : base+c.ways]
	for i := range set {
		if set[i].meta&^lineDirty == want {
			m.key, m.way = ln+1, int32(i)
			return base + i
		}
	}
	return -1
}

// findScan is find without the way-memo probe, for callers whose lookups
// have no temporal locality (prefetch residency checks): a cold memo line
// costs a host cache miss and never hits there.
func (c *Cache) findScan(base int, tag uint64) int {
	want := tag<<tagShift | lineValid
	set := c.lines[base : base+c.ways]
	for i := range set {
		if set[i].meta&^lineDirty == want {
			return base + i
		}
	}
	return -1
}

// Access performs a demand read or write of the line containing addr,
// allocating on miss (write-allocate) and reporting any eviction. It is
// fused twice over: one tag lookup both detects the hit and applies the
// recency/dirty update (no Probe-then-Access pair), and on a miss the same
// scan has already located the install victim (first invalid way, or the
// LRU/FIFO minimum) so no second walk runs.
func (c *Cache) Access(addr uint64, write bool) Result {
	return c.access(addr>>c.lineShift, write, &c.Stats)
}

// AccessLine is Access for a precomputed line number with caller-buffered
// statistics: the hit/miss/writeback/install counts accumulate into *st
// instead of c.Stats, so a line run (hier.AccessLines) applies them as one
// bulk AddStats at the end instead of per access. Timing, replacement state
// and the Result are identical to Access; callers that pass a private st
// must AddStats it back before the counters are observed.
func (c *Cache) AccessLine(ln uint64, write bool, st *Stats) Result {
	return c.access(ln, write, st)
}

// AddStats folds caller-buffered access counts (from AccessLine) into the
// cache's statistics.
func (c *Cache) AddStats(st Stats) {
	c.Stats.Hits += st.Hits
	c.Stats.Misses += st.Misses
	c.Stats.Writebacks += st.Writebacks
	c.Stats.Installs += st.Installs
}

// access is the fused demand path shared by Access and AccessLine.
func (c *Cache) access(ln uint64, write bool, st *Stats) Result {
	set, tag := int(ln&c.setMask), ln>>c.setShift
	base := set * c.ways
	c.clock++
	want := tag<<tagShift | lineValid
	m := &c.memo[ln&(memoEntries-1)]
	if m.key == ln+1 {
		if l := &c.lines[base+int(m.way)]; l.meta&^lineDirty == want {
			if c.cfg.Policy != FIFO { // FIFO ignores recency on hit
				l.used = c.clock
			}
			if write {
				l.meta |= lineDirty
			}
			c.touchPLRU(set, int(m.way))
			st.Hits++
			return Result{Hit: true}
		}
	}
	lines := c.lines[base : base+c.ways]
	victim, minUsed, invalidAt := -1, ^uint64(0), -1
	for i := range lines {
		l := &lines[i]
		if l.meta&^lineDirty == want {
			m.key, m.way = ln+1, int32(i)
			if c.cfg.Policy != FIFO {
				l.used = c.clock
			}
			if write {
				l.meta |= lineDirty
			}
			c.touchPLRU(set, i)
			st.Hits++
			return Result{Hit: true}
		}
		if l.meta&lineValid == 0 {
			if invalidAt < 0 {
				invalidAt = i
			}
		} else if l.used < minUsed {
			victim, minUsed = i, l.used
		}
	}
	st.Misses++
	if invalidAt >= 0 { // the first invalid way always wins, as in install
		victim = invalidAt
	} else if c.cfg.Policy == Random || c.cfg.Policy == PLRU {
		victim = c.pickVictim(set)
	}
	return c.installAt(set, victim, tag, write, st)
}

// installAt installs into a pre-selected victim way (from access's fused
// scan), identical to install's LRU/FIFO choice.
func (c *Cache) installAt(set, victim int, tag uint64, dirty bool, st *Stats) Result {
	base := set * c.ways
	var res Result
	if v := &c.lines[base+victim]; v.meta&lineValid != 0 {
		res.EvictedValid = true
		res.EvictedDirty = v.meta&lineDirty != 0
		res.Evicted = ((v.meta >> tagShift << c.setShift) | uint64(set)) << c.lineShift
		if res.EvictedDirty {
			st.Writebacks++
		}
	}
	meta := tag<<tagShift | lineValid
	if dirty {
		meta |= lineDirty
	}
	c.seq[set]++
	c.lines[base+victim] = line{meta: meta, used: c.clock}
	if c.cfg.Policy == FIFO {
		c.lines[base+victim].used = c.seq[set]
	}
	ln := tag<<c.setShift | uint64(set)
	c.memo[ln&(memoEntries-1)] = wayMemo{key: ln + 1, way: int32(victim)}
	c.touchPLRU(set, victim)
	st.Installs++
	return res
}

// Probe reports whether the line containing addr is present, without
// changing any replacement state.
func (c *Cache) Probe(addr uint64) bool {
	ln := addr >> c.lineShift
	set, tag := int(ln&c.setMask), ln>>c.setShift
	return c.findScan(set*c.ways, tag) >= 0
}

// Install brings the line containing addr into the cache without counting a
// demand access (used for prefetch fills). It reports the eviction exactly
// like Access. Installing an already-present line refreshes its recency.
func (c *Cache) Install(addr uint64, dirty bool) Result {
	ln := addr >> c.lineShift
	set, tag := int(ln&c.setMask), ln>>c.setShift
	base := set * c.ways
	c.clock++
	if i := c.find(base, ln, tag); i >= 0 {
		l := &c.lines[i]
		if c.cfg.Policy != FIFO {
			l.used = c.clock
		}
		if dirty {
			l.meta |= lineDirty
		}
		c.touchPLRU(set, i-base)
		return Result{Hit: true}
	}
	return c.install(set, tag, dirty)
}

// Invalidate drops the line containing addr if present, reporting whether it
// was dirty (the caller owns the resulting writeback traffic).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	ln := addr >> c.lineShift
	set, tag := int(ln&c.setMask), ln>>c.setShift
	if i := c.find(set*c.ways, ln, tag); i >= 0 {
		c.lines[i].meta &^= lineValid
		return true, c.lines[i].meta&lineDirty != 0
	}
	return false, false
}

// Reset empties the cache and zeroes the statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.plru {
		c.plru[i] = 0
		c.seq[i] = 0
	}
	c.clock = 0
	c.rng = c.cfg.Seed | 1
	c.memo = [memoEntries]wayMemo{}
	c.Stats = Stats{}
}

// ValidLines counts currently valid lines (used by capacity invariant tests).
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].meta&lineValid != 0 {
			n++
		}
	}
	return n
}

func (c *Cache) install(set int, tag uint64, dirty bool) Result {
	base := set * c.ways
	victim := -1
	switch c.cfg.Policy {
	case Random, PLRU:
		for i := base; i < base+c.ways; i++ {
			if c.lines[i].meta&lineValid == 0 {
				victim = i - base
				break
			}
		}
		if victim < 0 {
			victim = c.pickVictim(set)
		}
	default:
		// LRU and FIFO evict the minimum `used` stamp; one pass finds the
		// first invalid way or, failing that, that victim.
		min := ^uint64(0)
		for i := base; i < base+c.ways; i++ {
			if c.lines[i].meta&lineValid == 0 {
				victim = i - base
				break
			}
			if c.lines[i].used < min {
				victim, min = i-base, c.lines[i].used
			}
		}
	}
	return c.installAt(set, victim, tag, dirty, &c.Stats)
}

func (c *Cache) pickVictim(set int) int {
	switch c.cfg.Policy {
	case Random:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(c.ways))
	default:
		return c.plruVictim(set)
	}
}

// touchPLRU updates the PLRU tree bits so that `way` becomes protected.
func (c *Cache) touchPLRU(set, way int) {
	if c.cfg.Policy != PLRU {
		return
	}
	bits := c.plru[set]
	node := 1
	lo, hi := 0, c.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			bits |= 1 << uint(node) // point away: right
			node = node * 2
			hi = mid
		} else {
			bits &^= 1 << uint(node) // point away: left
			node = node*2 + 1
			lo = mid
		}
	}
	c.plru[set] = bits
}

// plruVictim walks the tree bits toward the unprotected leaf.
func (c *Cache) plruVictim(set int) int {
	bits := c.plru[set]
	node := 1
	lo, hi := 0, c.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bits&(1<<uint(node)) != 0 {
			// bit set means "left was recent": victim on the right
			node = node*2 + 1
			lo = mid
		} else {
			node = node * 2
			hi = mid
		}
	}
	return lo
}
