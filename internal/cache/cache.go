// Package cache implements a set-associative cache timing model.
//
// The model is structural, not functional: it tracks tags, validity, dirt and
// recency so that hit/miss/writeback sequences are exact for a given access
// stream, while the actual data payload lives elsewhere (the simulator keeps
// kernel data in ordinary Go slices). Write-back and write-allocate policies
// match the devices studied in the paper; replacement is pluggable because
// the paper's devices differ exactly there (LRU-like on the C906 and the
// x86/ARM parts, random replacement on the SiFive U74's L1 and L2).
package cache

import (
	"fmt"

	"riscvmem/internal/units"
)

// Policy selects the replacement policy of a cache.
type Policy int

const (
	// LRU evicts the least recently used way.
	LRU Policy = iota
	// Random evicts a pseudo-randomly chosen way (deterministically seeded;
	// the U74's "random re-placement policy" from the paper's §3.1).
	Random
	// FIFO evicts ways in insertion order.
	FIFO
	// PLRU is tree-based pseudo-LRU, the common hardware approximation.
	PLRU
)

// String returns the conventional short name of the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case Random:
		return "random"
	case FIFO:
		return "FIFO"
	case PLRU:
		return "PLRU"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config describes one cache level.
type Config struct {
	Name     string // e.g. "L1D", used in error and stats reporting
	Size     int64  // total capacity in bytes
	Ways     int    // associativity; Ways == Size/LineSize means fully associative
	LineSize int64  // bytes per line
	Policy   Policy
	Seed     uint64 // PRNG seed for Random; ignored otherwise
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int64 { return c.Size / (int64(c.Ways) * c.LineSize) }

// Validate checks the configuration for structural consistency.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: size, line size and ways must be positive", c.Name)
	}
	if !units.IsPow2(c.LineSize) {
		return fmt.Errorf("cache %s: line size %d is not a power of two", c.Name, c.LineSize)
	}
	if c.Size%(int64(c.Ways)*c.LineSize) != 0 {
		return fmt.Errorf("cache %s: size %d is not divisible by ways*line (%d*%d)",
			c.Name, c.Size, c.Ways, c.LineSize)
	}
	if !units.IsPow2(c.Sets()) {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, c.Sets())
	}
	return nil
}

// Stats accumulates access counts for one cache instance.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions
	Installs   uint64 // lines brought in (demand misses + explicit installs)
}

// Accesses returns the total number of demand accesses observed.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns hits/accesses, or 0 when no accesses were made.
func (s Stats) HitRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Hits) / float64(a)
	}
	return 0
}

type line struct {
	tag   uint64
	used  uint64 // LRU timestamp / FIFO sequence
	valid bool
	dirty bool
}

type set struct {
	lines []line
	plru  uint64 // tree bits for PLRU
	seq   uint64 // FIFO insertion counter
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg       Config
	sets      []set
	lineShift uint
	setShift  uint
	setMask   uint64
	clock     uint64 // global recency counter
	rng       uint64 // xorshift state for Random
	Stats     Stats
}

// Result reports the outcome of a demand access.
type Result struct {
	Hit bool
	// Evicted is the line-aligned byte address of the victim when a valid
	// line was displaced by this access; EvictedValid reports whether a
	// victim existed and EvictedDirty whether it requires a writeback.
	Evicted      uint64
	EvictedValid bool
	EvictedDirty bool
}

// New builds a cache from cfg. It returns an error when cfg is inconsistent.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	c := &Cache{
		cfg:       cfg,
		sets:      make([]set, nsets),
		lineShift: units.Log2(cfg.LineSize),
		setShift:  units.Log2(nsets),
		setMask:   uint64(nsets - 1),
		rng:       cfg.Seed | 1, // xorshift state must be nonzero
	}
	for i := range c.sets {
		c.sets[i].lines = make([]line, cfg.Ways)
	}
	return c, nil
}

// MustNew is New but panics on configuration errors; used for the fixed
// device presets which are validated by tests.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int64 { return c.cfg.LineSize }

// lineAddr maps a byte address to its line-aligned address.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

func (c *Cache) locate(addr uint64) (idx int, tag uint64) {
	ln := addr >> c.lineShift
	return int(ln & c.setMask), ln >> c.setShift
}

// Access performs a demand read or write of the line containing addr,
// allocating on miss (write-allocate) and reporting any eviction.
func (c *Cache) Access(addr uint64, write bool) Result {
	idx, tag := c.locate(addr)
	s := &c.sets[idx]
	c.clock++
	for i := range s.lines {
		l := &s.lines[i]
		if l.valid && l.tag == tag {
			if c.cfg.Policy != FIFO { // FIFO ignores recency on hit
				l.used = c.clock
			}
			if write {
				l.dirty = true
			}
			c.touchPLRU(s, i)
			c.Stats.Hits++
			return Result{Hit: true}
		}
	}
	c.Stats.Misses++
	return c.install(idx, tag, write)
}

// Probe reports whether the line containing addr is present, without
// changing any replacement state.
func (c *Cache) Probe(addr uint64) bool {
	idx, tag := c.locate(addr)
	s := &c.sets[idx]
	for i := range s.lines {
		if s.lines[i].valid && s.lines[i].tag == tag {
			return true
		}
	}
	return false
}

// Install brings the line containing addr into the cache without counting a
// demand access (used for prefetch fills). It reports the eviction exactly
// like Access. Installing an already-present line refreshes its recency.
func (c *Cache) Install(addr uint64, dirty bool) Result {
	idx, tag := c.locate(addr)
	s := &c.sets[idx]
	c.clock++
	for i := range s.lines {
		l := &s.lines[i]
		if l.valid && l.tag == tag {
			if c.cfg.Policy != FIFO {
				l.used = c.clock
			}
			l.dirty = l.dirty || dirty
			c.touchPLRU(s, i)
			return Result{Hit: true}
		}
	}
	return c.install(idx, tag, dirty)
}

// Invalidate drops the line containing addr if present, reporting whether it
// was dirty (the caller owns the resulting writeback traffic).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	idx, tag := c.locate(addr)
	s := &c.sets[idx]
	for i := range s.lines {
		l := &s.lines[i]
		if l.valid && l.tag == tag {
			l.valid = false
			return true, l.dirty
		}
	}
	return false, false
}

// Reset empties the cache and zeroes the statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i].lines {
			c.sets[i].lines[j] = line{}
		}
		c.sets[i].plru = 0
		c.sets[i].seq = 0
	}
	c.clock = 0
	c.rng = c.cfg.Seed | 1
	c.Stats = Stats{}
}

// ValidLines counts currently valid lines (used by capacity invariant tests).
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.sets {
		for j := range c.sets[i].lines {
			if c.sets[i].lines[j].valid {
				n++
			}
		}
	}
	return n
}

func (c *Cache) install(idx int, tag uint64, dirty bool) Result {
	s := &c.sets[idx]
	victim := -1
	for i := range s.lines {
		if !s.lines[i].valid {
			victim = i
			break
		}
	}
	var res Result
	if victim < 0 {
		victim = c.pickVictim(s)
		v := &s.lines[victim]
		res.EvictedValid = true
		res.EvictedDirty = v.dirty
		res.Evicted = ((v.tag << c.setShift) | uint64(idx)) << c.lineShift
		if v.dirty {
			c.Stats.Writebacks++
		}
	}
	s.seq++
	s.lines[victim] = line{tag: tag, used: c.clock, valid: true, dirty: dirty}
	if c.cfg.Policy == FIFO {
		s.lines[victim].used = s.seq
	}
	c.touchPLRU(s, victim)
	c.Stats.Installs++
	return res
}

func (c *Cache) pickVictim(s *set) int {
	switch c.cfg.Policy {
	case Random:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(len(s.lines)))
	case PLRU:
		return plruVictim(s)
	default: // LRU and FIFO both evict the minimum `used` stamp
		victim, min := 0, s.lines[0].used
		for i := 1; i < len(s.lines); i++ {
			if s.lines[i].used < min {
				victim, min = i, s.lines[i].used
			}
		}
		return victim
	}
}

// touchPLRU updates the PLRU tree bits so that `way` becomes protected.
func (c *Cache) touchPLRU(s *set, way int) {
	if c.cfg.Policy != PLRU {
		return
	}
	n := len(s.lines)
	node := 1
	lo, hi := 0, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			s.plru |= 1 << uint(node) // point away: right
			node = node * 2
			hi = mid
		} else {
			s.plru &^= 1 << uint(node) // point away: left
			node = node*2 + 1
			lo = mid
		}
	}
}

// plruVictim walks the tree bits toward the unprotected leaf.
func plruVictim(s *set) int {
	n := len(s.lines)
	node := 1
	lo, hi := 0, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.plru&(1<<uint(node)) != 0 {
			// bit set means "left was recent": victim on the right
			node = node*2 + 1
			lo = mid
		} else {
			node = node * 2
			hi = mid
		}
	}
	return lo
}
