package report

import (
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"Device", "Time"}}
	tb.Add("Xeon", "1.5")
	tb.Add("RaspberryPi4", "12")
	out := tb.String()
	if !strings.Contains(out, "T\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d: %q", len(lines), out)
		}
	}
	// Columns align: "Time" starts at the same offset in header and rows.
	hdr := lines[1]
	off := strings.Index(hdr, "Time")
	for _, ln := range lines[3:] {
		cell := ln[off:]
		if !strings.HasPrefix(cell, "1.5") && !strings.HasPrefix(cell, "12") {
			t.Errorf("misaligned row: %q", ln)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	var b strings.Builder
	CSV(&b, []string{"a", "b"}, [][]string{{"x,y", `he said "hi"`}})
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestChartBarsScale(t *testing.T) {
	c := Chart{Title: "bw", Unit: "GB/s", Width: 10}
	c.Add("big", 10, "")
	c.Add("half", 5, "note")
	c.Add("zero", 0, "")
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	count := func(s string) int { return strings.Count(s, "█") }
	if count(lines[1]) != 10 {
		t.Errorf("max bar = %d blocks, want 10", count(lines[1]))
	}
	if got := count(lines[2]); got != 5 {
		t.Errorf("half bar = %d blocks, want 5", got)
	}
	if count(lines[3]) != 0 {
		t.Error("zero bar not empty")
	}
	if !strings.Contains(lines[2], "(note)") {
		t.Error("missing note")
	}
}

func TestChartLogHintCompresses(t *testing.T) {
	lin := Chart{Width: 60}
	lin.Add("a", 1000, "")
	lin.Add("b", 1, "")
	log := Chart{Width: 60, LogHint: true}
	log.Add("a", 1000, "")
	log.Add("b", 1, "")
	nbar := func(c Chart) int {
		lines := strings.Split(c.String(), "\n")
		return strings.Count(lines[1], "█")
	}
	if nbar(log) <= nbar(lin) {
		t.Errorf("log scaling did not widen the small bar: log=%d lin=%d", nbar(log), nbar(lin))
	}
}

func TestRound4(t *testing.T) {
	cases := map[float64]float64{
		1234.6:    1235,
		12.345678: 12.35,
		0.0123456: 0.0123,
	}
	for in, want := range cases {
		if got := round4(in); got != want {
			t.Errorf("round4(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestJSON(t *testing.T) {
	var b strings.Builder
	err := JSON(&b, []string{"device", "note"}, [][]string{
		{"Xeon", `says "hi", ok`},
		{"MangoPi"},                  // short row: missing cells become empty strings
		{"VisionFive", "x", "extra"}, // long row: extras kept under colN keys, like CSV
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []map[string]string
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("emitted invalid JSON: %v\n%s", err, b.String())
	}
	want := []map[string]string{
		{"device": "Xeon", "note": `says "hi", ok`},
		{"device": "MangoPi", "note": ""},
		{"device": "VisionFive", "note": "x", "col3": "extra"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JSON = %v, want %v", got, want)
	}
	// Header order must be preserved in the serialized objects.
	if !strings.Contains(b.String(), `"device": "Xeon", "note"`) {
		t.Errorf("header order not preserved:\n%s", b.String())
	}
}

func TestEmit(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"a"}, Rows: [][]string{{"1"}}}
	for _, format := range []string{"", "table", "csv", "json"} {
		var b strings.Builder
		if err := Emit(&b, format, tb); err != nil {
			t.Errorf("Emit(%q): %v", format, err)
		}
		if !strings.Contains(b.String(), "1") {
			t.Errorf("Emit(%q) lost the row:\n%s", format, b.String())
		}
	}
	if err := Emit(io.Discard, "xml", tb); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestTableRaggedRows is the regression test for the ragged-row panic: the
// width pass guarded i < len(widths) but line() indexed widths[i] unguarded,
// so any row wider than the header crashed Render.
func TestTableRaggedRows(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.Add("1")                                    // shorter than the header
	tb.Add("1", "2", "an-extra-wide-cell", "tail") // wider than the header
	tb.Add("longer-than-header", "2")
	out := tb.String() // must not panic
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	// lines: 0 header, 1 separator, 2 short row, 3 ragged row, 4 long row.
	if !strings.Contains(lines[3], "an-extra-wide-cell") {
		t.Errorf("extra cells dropped: %q", lines[3])
	}
	// Alignment still holds for the named columns: "b" and the row cells
	// under it start at the same offset.
	off := strings.Index(lines[0], "b")
	if lines[3][off] != '2' || lines[4][off] != '2' {
		t.Errorf("misaligned ragged table:\n%s", out)
	}
	// The separator spans the widened table.
	if w := len(lines[1]); w < len(strings.TrimRight(lines[3], " "))-6 {
		t.Errorf("separator width %d too short for rows: %q", w, out)
	}

	// Degenerate tables render without panicking too.
	empty := Table{}
	_ = empty.String()
	headerless := Table{Rows: [][]string{{"just", "cells"}}}
	if !strings.Contains(headerless.String(), "just") {
		t.Error("headerless table lost its rows")
	}
}

// TestCSVQuotesCarriageReturn: \r must be quoted like \n (RFC 4180), or a
// bare carriage return silently splits the record in many readers.
func TestCSVQuotesCarriageReturn(t *testing.T) {
	var b strings.Builder
	CSV(&b, []string{"a"}, [][]string{{"line\rbreak"}, {"crlf\r\nbreak"}})
	want := "a\n\"line\rbreak\"\n\"crlf\r\nbreak\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}
