// Package report renders experiment results as aligned text tables, ASCII
// bar charts (the terminal stand-ins for the paper's figures), CSV, and
// JSON.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Render writes the table to w. Ragged rows are handled: rows shorter than
// the header leave trailing columns empty, and rows wider than the header
// get their extra cells rendered under width-fitted (unnamed) columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			wd := len(c)
			if i < len(widths) { // always true after the width pass; belt and braces
				wd = widths[i]
			}
			fmt.Fprintf(w, "%-*s", wd, c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	total := len(widths)*2 - 2
	if total < 0 {
		total = 0
	}
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes headers and rows as comma-separated values, quoting cells that
// contain commas, quotes or line breaks (\n or \r — bare carriage returns
// corrupt unquoted records just like newlines do, RFC 4180 §2).
func CSV(w io.Writer, headers []string, rows [][]string) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n\r") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(headers)
	for _, r := range rows {
		writeRow(r)
	}
}

// Emit renders the table's headers and rows in the given format: "table"
// (aligned text, the default), "csv", or "json". The title is printed only
// in table form.
func Emit(w io.Writer, format string, t Table) error {
	switch format {
	case "", "table":
		t.Render(w)
		return nil
	case "csv":
		CSV(w, t.Headers, t.Rows)
		return nil
	case "json":
		return JSON(w, t.Headers, t.Rows)
	}
	return fmt.Errorf("report: unknown format %q (want table, csv or json)", format)
}

// JSON writes rows as a JSON array of objects keyed by the headers,
// preserving header order within each object. All values are emitted as
// strings, mirroring the CSV encoding: cells missing from a short row
// become empty strings, and cells beyond the headers are kept (not
// dropped, matching CSV) under synthesized "colN" keys.
func JSON(w io.Writer, headers []string, rows [][]string) error {
	quote := func(s string) string {
		b, err := json.Marshal(s)
		if err != nil { // cannot happen for strings; keep the emitter total
			return `""`
		}
		return string(b)
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for ri, row := range rows {
		var b strings.Builder
		b.WriteString("  {")
		n := len(headers)
		if len(row) > n {
			n = len(row)
		}
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			key := fmt.Sprintf("col%d", i+1)
			if i < len(headers) {
				key = headers[i]
			}
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			b.WriteString(quote(key))
			b.WriteString(": ")
			b.WriteString(quote(cell))
		}
		b.WriteString("}")
		if ri < len(rows)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// Item is one bar of a Chart.
type Item struct {
	Label string
	Value float64
	Note  string // printed after the value, e.g. a speedup annotation
}

// Chart is a horizontal ASCII bar chart, the terminal rendering used for
// the paper's figures.
type Chart struct {
	Title string
	Unit  string // printed after each value
	Width int    // bar width in characters; 0 → 40
	// LogHint compresses huge ranges: when true, bars scale by log10.
	LogHint bool
	Items   []Item
}

// Add appends one bar.
func (c *Chart) Add(label string, value float64, note string) {
	c.Items = append(c.Items, Item{Label: label, Value: value, Note: note})
}

// String renders the chart.
func (c *Chart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	labelW := 0
	maxV := 0.0
	for _, it := range c.Items {
		if len(it.Label) > labelW {
			labelW = len(it.Label)
		}
		if it.Value > maxV {
			maxV = it.Value
		}
	}
	scale := func(v float64) int {
		if maxV <= 0 || v <= 0 {
			return 0
		}
		f := v / maxV
		if c.LogHint {
			// Map [maxV/1e6, maxV] to (0,1] logarithmically.
			f = 1 + math.Log10(v/maxV)/6
			if f < 0 {
				f = 0
			}
		}
		n := int(f*float64(width) + 0.5)
		if n > width {
			n = width
		}
		if n == 0 && v > 0 {
			n = 1
		}
		return n
	}
	for _, it := range c.Items {
		bar := strings.Repeat("█", scale(it.Value))
		fmt.Fprintf(w, "  %-*s |%-*s %g %s", labelW, it.Label, width, bar, round4(it.Value), c.Unit)
		if it.Note != "" {
			fmt.Fprintf(w, "  (%s)", it.Note)
		}
		fmt.Fprintln(w)
	}
}

func round4(v float64) float64 {
	switch {
	case v >= 1000:
		return float64(int64(v + 0.5))
	case v >= 1:
		return float64(int64(v*100+0.5)) / 100
	default:
		return float64(int64(v*10000+0.5)) / 10000
	}
}
