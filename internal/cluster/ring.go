package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over the live workers. Each worker
// contributes ringReplicas virtual points; a cell's shard key — the
// concatenation of the device's canonical IdentityString and the
// workload's CacheKey, exactly the persistent memo store's coordinates —
// maps to the first point clockwise from the key's hash.
//
// Two properties matter here:
//
//   - Affinity: identical cells always land on the same worker while
//     membership is stable, so a repeated cell is deduplicated
//     cluster-wide by that worker's singleflight, and a re-run finds that
//     worker's memo store warm.
//   - Stability under churn: when a worker joins or leaves, only the keys
//     adjacent to its points move — the rest of the cluster's warm caches
//     stay warm.
//
// The hash is FNV-1a, not maphash: the mapping must be deterministic
// across processes and coordinator restarts (a restarted coordinator
// should route cells to the workers whose disk caches already hold them).
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker string
}

// ringReplicas is the virtual-point count per worker: enough to spread a
// handful of workers evenly, cheap enough to rebuild on every membership
// change.
const ringReplicas = 64

// hashKey maps a shard key onto the ring's key space.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// buildRing constructs the ring over the given worker IDs. An empty worker
// set yields an empty ring (owner returns "").
func buildRing(workers []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(workers)*ringReplicas)}
	for _, w := range workers {
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hashKey(fmt.Sprintf("%s#%d", w, i)),
				worker: w,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break by worker ID so the mapping is deterministic even on
		// the (vanishing) chance of a 64-bit hash collision.
		return r.points[a].worker < r.points[b].worker
	})
	return r
}

// owner returns the worker owning the shard key, or "" on an empty ring.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise
	}
	return r.points[i].worker
}
