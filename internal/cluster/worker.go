package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"riscvmem/internal/cluster/protocol"
	"riscvmem/internal/machine"
	"riscvmem/internal/run"
	"riscvmem/internal/service"
)

// WorkerOptions configures a worker agent.
type WorkerOptions struct {
	// ID is the worker's ring identity; required. A stable ID across
	// restarts keeps the worker's shard assignment — and with it, its warm
	// disk cache — intact.
	ID string
	// Addr is the worker's own service address, informational only.
	Addr string
	// Service executes the assigned cells; required. Everything the
	// standalone daemon does per request — admission, pooling, the tiered
	// memo store, drain — applies to assignments unchanged.
	Service *service.Service
	// API is the coordinator: the Coordinator itself in-process, a Client
	// over HTTP. Required.
	API API
	// MaxConcurrent bounds assignments executing at once; each one takes a
	// service admission slot. 0 → 2.
	MaxConcurrent int
	// PollWait is the long-poll hold time per Poll call. 0 → 30s.
	PollWait time.Duration
	// FlushRows is how many completed rows accumulate before a RowReturn
	// is sent mid-assignment (the final return always flushes the rest).
	// 0 → 16.
	FlushRows int
	// Logf receives operational log lines. Nil discards them.
	Logf func(format string, args ...any)
}

// Worker is the agent side of the control plane: it registers with the
// coordinator, heartbeats on the advertised interval, long-polls for cell
// assignments, executes them through its Service, and streams rows back.
// Run blocks until its context ends; cancelling the context is the
// worker's drain signal (announce departure, let the coordinator requeue
// anything unfinished).
type Worker struct {
	opt  WorkerOptions
	hbMS atomic.Int64 // advertised heartbeat interval, ms

	// Agent-side counters for /metrics (the worker's service metrics cover
	// execution; these cover the control-plane conversation).
	registrations    atomic.Uint64 // successful registrations (first join + rejoins)
	returnsAbandoned atomic.Uint64 // RowReturn calls given up after transport retries
	rowsAbandoned    atomic.Uint64 // rows those abandoned calls carried
	cellFailures     atomic.Uint64 // panics contained and attributed to cells
}

// WriteMetrics renders the worker agent's control-plane counters in
// Prometheus text exposition format; the worker's HTTP server appends this
// to its service /metrics page.
func (w *Worker) WriteMetrics(out io.Writer) error {
	var b strings.Builder
	ccounter(&b, "simd_cluster_worker_registrations_total",
		"Successful registrations with the coordinator (first join and rejoins).", w.registrations.Load())
	ccounter(&b, "simd_cluster_worker_returns_abandoned_total",
		"RowReturn calls abandoned after exhausting transport retries.", w.returnsAbandoned.Load())
	ccounter(&b, "simd_cluster_worker_rows_abandoned_total",
		"Rows carried by abandoned RowReturn calls (requeued by the coordinator at lease expiry).", w.rowsAbandoned.Load())
	ccounter(&b, "simd_cluster_worker_cell_failures_total",
		"Panics contained in assignment execution and reported as cell failures.", w.cellFailures.Load())
	_, err := io.WriteString(out, b.String())
	return err
}

// NewWorker builds a worker agent.
func NewWorker(opt WorkerOptions) (*Worker, error) {
	if opt.ID == "" {
		return nil, errors.New("cluster: worker needs an ID")
	}
	if opt.Service == nil {
		return nil, errors.New("cluster: worker needs a Service")
	}
	if opt.API == nil {
		return nil, errors.New("cluster: worker needs a coordinator API")
	}
	if opt.MaxConcurrent <= 0 {
		opt.MaxConcurrent = 2
	}
	if opt.PollWait <= 0 {
		opt.PollWait = 30 * time.Second
	}
	if opt.FlushRows <= 0 {
		opt.FlushRows = 16
	}
	return &Worker{opt: opt}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.opt.Logf != nil {
		w.opt.Logf(format, args...)
	}
}

// Run is the worker's lifecycle: register, then heartbeat and poll until
// ctx ends, then announce drain and wait for in-flight assignments to
// unwind. Returns nil on a clean ctx-driven shutdown; the only error is a
// ctx that died before the first successful registration.
func (w *Worker) Run(ctx context.Context) error {
	if _, err := w.register(ctx); err != nil {
		return err
	}
	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		w.heartbeatLoop(ctx, hbStop)
	}()

	var wg sync.WaitGroup
	sem := make(chan struct{}, w.opt.MaxConcurrent)
	for ctx.Err() == nil {
		start := time.Now()
		resp, err := w.opt.API.Poll(ctx, protocol.PollRequest{
			WorkerID: w.opt.ID,
			WaitMS:   w.opt.PollWait.Milliseconds(),
		})
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			w.logf("cluster: worker %s: poll failed: %v", w.opt.ID, err)
			sleepCtx(ctx, 250*time.Millisecond)
			continue
		}
		if resp.Reregister {
			if _, err := w.register(ctx); err != nil {
				break
			}
			continue
		}
		if resp.Assignment == nil {
			// An instant empty answer (injected dispatch fault) must not
			// turn the poll loop into a spin; a normal empty answer already
			// waited out PollWait.
			if time.Since(start) < 5*time.Millisecond {
				sleepCtx(ctx, 5*time.Millisecond)
			}
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(a *protocol.Assignment) {
			defer wg.Done()
			defer func() { <-sem }()
			w.execute(ctx, a)
		}(resp.Assignment)
	}

	close(hbStop)
	hbDone.Wait()
	// Announce departure on a fresh context (ctx is dead) so unfinished
	// cells requeue immediately instead of waiting out the lease.
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	if resp, err := w.opt.API.DrainWorker(dctx, protocol.DrainRequest{WorkerID: w.opt.ID}); err != nil {
		w.logf("cluster: worker %s: drain announce failed (lease will expire): %v", w.opt.ID, err)
	} else if resp.Requeued > 0 {
		w.logf("cluster: worker %s: drained, %d cell(s) requeued", w.opt.ID, resp.Requeued)
	}
	cancel()
	wg.Wait()
	return nil
}

// register announces the worker, retrying with full-jitter exponential
// backoff until it succeeds or ctx ends (the coordinator may simply not be
// up yet). Full jitter — sleep uniform in [0, backoff], double the cap —
// matters at fleet scale: after a coordinator restart every worker's
// heartbeat says Reregister at once, and a bare exponential would march
// them all back into the register endpoint in synchronized waves.
func (w *Worker) register(ctx context.Context) (protocol.RegisterResponse, error) {
	backoff := 100 * time.Millisecond
	for {
		resp, err := w.opt.API.Register(ctx, protocol.RegisterRequest{WorkerID: w.opt.ID, Addr: w.opt.Addr})
		if err == nil {
			w.hbMS.Store(resp.HeartbeatMS)
			w.registrations.Add(1)
			return resp, nil
		}
		if ctx.Err() != nil {
			return protocol.RegisterResponse{}, ctx.Err()
		}
		w.logf("cluster: worker %s: register failed, retrying: %v", w.opt.ID, err)
		sleepCtx(ctx, time.Duration(rand.Int64N(int64(backoff)+1)))
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// heartbeatLoop beats on the advertised interval until stopped. Failed
// beats are logged and retried on schedule — a blackholed control channel
// is exactly what the lease mechanism exists for; the worker's job is to
// keep trying, the coordinator's to decide it is lost.
func (w *Worker) heartbeatLoop(ctx context.Context, stop <-chan struct{}) {
	for {
		iv := time.Duration(w.hbMS.Load()) * time.Millisecond
		if iv <= 0 {
			iv = time.Second
		}
		timer := time.NewTimer(iv)
		select {
		case <-stop:
			timer.Stop()
			return
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
		resp, err := w.opt.API.Heartbeat(ctx, protocol.HeartbeatRequest{WorkerID: w.opt.ID})
		if err != nil {
			w.logf("cluster: worker %s: heartbeat failed: %v", w.opt.ID, err)
			continue
		}
		if resp.Reregister {
			// The coordinator forgot us (restart, or it declared us lost);
			// rejoin — our in-flight assignments are already revoked, their
			// late returns will be rejected.
			if _, err := w.register(ctx); err != nil {
				return
			}
		}
	}
}

// execute runs one assignment: resolve its cells into jobs, execute them
// through the Service, stream rows back in chunks, and close out with the
// assignment's cache delta. A Revoked ack cancels the rest of the
// assignment — nothing else it produces will be accepted. Execution is
// bounded by the assignment's propagated deadline (the response has already
// settled past it, so finishing would be wasted cycles), and a panic
// anywhere in the execution path is contained and reported as per-cell
// failure rows — attributed to the cells, not allowed to crash the worker
// and masquerade as a worker loss.
func (w *Worker) execute(ctx context.Context, a *protocol.Assignment) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// runCtx bounds execution at the dispatch's absolute deadline; ctx (the
	// flush guard) deliberately does not carry it — the final Done return
	// must still go out after the deadline so the coordinator can close the
	// assignment out instead of waiting for our lease to lapse.
	runCtx := ctx
	if a.DeadlineMS > 0 {
		var runCancel context.CancelFunc
		runCtx, runCancel = context.WithDeadline(ctx, time.UnixMilli(a.DeadlineMS))
		defer runCancel()
	}
	var (
		mu       sync.Mutex
		pending  []protocol.Row
		revoked  bool
		produced = make(map[int]bool, len(a.Cells)) // global row indexes resolved so far
	)
	flush := func(done bool, cache *protocol.CacheDelta) {
		if ctx.Err() != nil {
			// Dying (shutdown) or revoked: ship nothing. Rows from a
			// cancelled run may be poisoned with context errors, and a final
			// cache delta would double-count cells the coordinator is about
			// to requeue and re-execute elsewhere.
			return
		}
		mu.Lock()
		rows := pending
		pending = nil
		dead := revoked
		mu.Unlock()
		if dead || (len(rows) == 0 && !done) {
			return
		}
		ret := protocol.RowReturn{
			WorkerID: w.opt.ID, AssignmentID: a.ID,
			Rows: rows, Done: done, Cache: cache,
		}
		// Retry discipline: a Revoked ack is an answer — the coordinator
		// took our assignment away, retrying would just be rejected again —
		// so stop immediately; only transport errors are worth retrying, with
		// jittered backoff, and the abandonment after the last attempt is
		// counted and logged rather than silent: undelivered rows are not
		// lost work (the coordinator requeues the cells when our lease
		// lapses, or at drain), but an operator watching a flaky network
		// needs to see it happening.
		const maxReturnAttempts = 3
		for attempt := 1; ; attempt++ {
			ack, err := w.opt.API.ReturnRows(ctx, ret)
			if err == nil {
				if ack.Revoked {
					mu.Lock()
					revoked = true
					mu.Unlock()
					cancel()
				}
				return
			}
			if ctx.Err() != nil {
				return // shutting down; drain handles the requeue
			}
			if attempt >= maxReturnAttempts {
				w.returnsAbandoned.Add(1)
				w.rowsAbandoned.Add(uint64(len(rows)))
				w.logf("cluster: worker %s: abandoning %d row(s) for %s after %d attempts (coordinator will requeue at lease expiry): %v",
					w.opt.ID, len(rows), a.ID, attempt, err)
				return
			}
			backoff := time.Duration(attempt) * 50 * time.Millisecond
			sleepCtx(ctx, backoff/2+time.Duration(rand.Int64N(int64(backoff/2)+1)))
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// Contained cell failure: report every unresolved cell as Failed
		// so the coordinator charges the cells' budgets (and eventually
		// quarantines a poison cell) instead of this worker dying and the
		// loss being charged to nothing in particular.
		w.cellFailures.Add(1)
		w.logf("cluster: worker %s: assignment %s panicked: %v", w.opt.ID, a.ID, r)
		mu.Lock()
		for _, cell := range a.Cells {
			if produced[cell.Index] {
				continue
			}
			pending = append(pending, protocol.Row{
				Index:  cell.Index,
				Failed: true,
				Error:  fmt.Sprintf("cell failed on worker %s: panic: %v", w.opt.ID, r),
			})
		}
		mu.Unlock()
		flush(true, nil)
	}()

	jobs, err := buildJobs(a)
	if err != nil {
		// The coordinator validated the request, so an unresolvable cell
		// means this worker disagrees about presets/kernels (version skew).
		// Attribute the error to every cell so the client sees it, in the
		// standalone per-row error shape.
		w.logf("cluster: worker %s: assignment %s unresolvable: %v", w.opt.ID, a.ID, err)
		mu.Lock()
		for _, cell := range a.Cells {
			produced[cell.Index] = true
			pending = append(pending, protocol.Row{Index: cell.Index, Error: err.Error()})
		}
		mu.Unlock()
		flush(true, nil)
		return
	}

	// The assignment's cache delta is counted per job from the exact
	// Progress outcomes, not from the service's before/after counter deltas
	// — those are approximate when assignments overlap on one worker, and
	// the dispatch's cluster-wide stats must never count a cell twice.
	var cacheHits, cacheMisses atomic.Uint64
	onProgress := func(p run.Progress) {
		if runCtx.Err() != nil {
			// A cancelled or deadline-cut run reports its aborted jobs as
			// failed cells (context errors); none of that is real — the
			// coordinator requeues every unreturned cell for a live worker,
			// or has already settled the response with deadline rows.
			return
		}
		switch p.Cache {
		case run.CacheHit:
			cacheHits.Add(1)
		case run.CacheMiss:
			cacheMisses.Add(1)
		}
		row := protocol.Row{Index: a.Cells[p.Index].Index, Result: p.Result}
		if p.Err != nil {
			// Mirror service.runBatch's failed-row shape: the error string
			// plus enough Result to identify the cell.
			row.Error = p.Err.Error()
			row.Result.Workload = p.Job.Workload.Name()
			row.Result.Device = p.Job.Device.Name
		}
		mu.Lock()
		produced[row.Index] = true
		pending = append(pending, row)
		n := len(pending)
		mu.Unlock()
		if n >= w.opt.FlushRows {
			flush(false, nil)
		}
	}

	resp, err := w.opt.Service.ExecuteJobs(runCtx, jobs, onProgress)
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown or revocation: the coordinator requeues
		}
		if runCtx.Err() != nil {
			// The dispatch deadline cut the run short: the response has
			// already settled with deadline rows for whatever we did not
			// finish. Close the assignment out empty so the coordinator
			// drops it now rather than at lease expiry.
			w.logf("cluster: worker %s: assignment %s abandoned at dispatch deadline", w.opt.ID, a.ID)
			flush(true, nil)
			return
		}
		// Worker-local refusal (admission, local drain): close the
		// assignment out with whatever completed; the coordinator requeues
		// the rest. The pause keeps a persistently refusing worker from
		// requeue-spinning against its own ring shard.
		w.logf("cluster: worker %s: assignment %s refused: %v", w.opt.ID, a.ID, err)
		sleepCtx(ctx, 250*time.Millisecond)
		flush(true, nil)
		return
	}
	flush(true, &protocol.CacheDelta{
		Hits:   cacheHits.Load(),
		Misses: cacheMisses.Load(),
		// Tier counters have no per-job attribution; the request-scoped
		// delta is exact for serial assignments and approximate when
		// assignments overlap on this worker (the service documents the
		// same caveat for overlapping requests).
		Tiers: resp.Cache.RequestTiers,
	})
}

// buildJobs resolves an assignment's cells into runnable jobs. Sweep cells
// index into the grid's deterministic expansion — re-derived here with the
// same planSweep the coordinator used, so both sides agree on every job.
func buildJobs(a *protocol.Assignment) ([]run.Job, error) {
	if a.Kind == "sweep" {
		if a.Sweep == nil {
			return nil, errors.New("cluster: sweep assignment without grid")
		}
		plan, err := planSweep(a.Sweep.Device, a.Sweep.Axes, a.Sweep.Workloads, 0)
		if err != nil {
			return nil, err
		}
		jobs := make([]run.Job, len(a.Cells))
		for i, cell := range a.Cells {
			if cell.SweepJob < 0 || cell.SweepJob >= len(plan.jobs) {
				return nil, fmt.Errorf("cluster: sweep job %d out of range (grid has %d)", cell.SweepJob, len(plan.jobs))
			}
			jobs[i] = plan.jobs[cell.SweepJob]
		}
		return jobs, nil
	}
	jobs := make([]run.Job, len(a.Cells))
	for i, cell := range a.Cells {
		if cell.Workload == nil {
			return nil, errors.New("cluster: batch cell without workload")
		}
		spec, err := machine.ByName(cell.Device)
		if err != nil {
			return nil, err
		}
		wl, err := run.NewWorkload(*cell.Workload)
		if err != nil {
			return nil, err
		}
		jobs[i] = run.Job{Device: spec, Workload: wl}
	}
	return jobs, nil
}

// sleepCtx sleeps for d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}
