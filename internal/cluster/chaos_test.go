//go:build faultinject

package cluster

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"riscvmem/internal/cluster/protocol"
	"riscvmem/internal/faultinject"
	"riscvmem/internal/leakcheck"
	"riscvmem/internal/run"
	"riscvmem/internal/service"
)

// chaosSweep is the grid the chaos tests replay: small enough to converge
// fast under injected faults, varied enough that cells spread across both
// workers' ring shards.
func chaosSweep() service.SweepRequest {
	return service.SweepRequest{
		Device: "MangoPi",
		Axes:   []string{"l2=base,128KiB", "maxinflight=base,2"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=TRIAD,elems=2048,reps=1"),
			run.MustParseWorkloadSpec("transpose:variant=Naive,n=96"),
		},
	}
}

// standaloneSweep computes the ground-truth response for a chaos grid.
func standaloneSweep(t *testing.T, req service.SweepRequest) *service.Response {
	t.Helper()
	want, err := service.New(service.Options{}).Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("standalone Sweep: %v", err)
	}
	return want
}

// assertSweepIdentical requires the clustered rows to match the standalone
// rows bit for bit, and the request-scoped cache stats to never count more
// cells than the grid holds (requeued work must not be double-counted; an
// undercount is legal — a dead worker's final delta dies with it).
func assertSweepIdentical(t *testing.T, got, want *service.Response, totalJobs uint64) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("cluster sweep: %d rows, standalone %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if !reflect.DeepEqual(got.Results[i], want.Results[i]) {
			t.Errorf("row %d: cluster %+v != standalone %+v", i, got.Results[i], want.Results[i])
		}
	}
	if n := got.Cache.RequestHits + got.Cache.RequestMisses; n > totalJobs {
		t.Errorf("cache stats count %d cells, more than the %d jobs: requeued work double-counted", n, totalJobs)
	}
}

// TestChaosKillWorkerMidSweep is the faultinject build of the worker-loss
// drill, with the goroutine-leak assertion wrapped around the whole
// cluster lifecycle: kill one of two workers mid-sweep, lose no rows,
// leak no goroutines.
func TestChaosKillWorkerMidSweep(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	req := chaosSweep()
	want := standaloneSweep(t, req)
	plan, err := planSweep(req.Device, req.Axes, req.Workloads, 0)
	if err != nil {
		t.Fatalf("planSweep: %v", err)
	}

	coord := New(Options{AssignmentCells: 2, Logf: t.Logf})
	w1 := startWorker(t, coord, "w1", func(o *WorkerOptions) { o.FlushRows = 1; o.MaxConcurrent = 1 })
	w2 := startWorker(t, coord, "w2", func(o *WorkerOptions) { o.FlushRows = 1; o.MaxConcurrent = 1 })
	waitForWorkers(t, coord, 2)

	respCh := make(chan *service.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := coord.Sweep(context.Background(), req)
		respCh <- resp
		errCh <- err
	}()

	// Kill w1 as soon as the sweep is moving.
	deadline := time.Now().Add(10 * time.Second)
	for {
		coord.mu.Lock()
		moving := coord.rowsAccepted > 0
		coord.mu.Unlock()
		if moving || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	w1.stop()

	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatalf("cluster sweep after worker kill: %v", err)
	}
	assertSweepIdentical(t, resp, want, uint64(len(plan.jobs)))

	coord.mu.Lock()
	accepted := coord.rowsAccepted
	coord.mu.Unlock()
	if accepted != uint64(len(plan.jobs)) {
		t.Errorf("rows accepted %d, want exactly %d (one per job)", accepted, len(plan.jobs))
	}

	w2.stop()
	coord.Close()
	assertNoLeaks()
}

// TestChaosHeartbeatBlackhole blackholes the heartbeat channel entirely:
// every beat fails at the coordinator, so workers are repeatedly declared
// lost mid-work — and repeatedly rejoin through the poll path's Reregister,
// since registration (unlike heartbeats) still works. The sweep must still
// complete bit-identical, every row delivered exactly once.
func TestChaosHeartbeatBlackhole(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	faultinject.Set(faultinject.ClusterHeartbeat, faultinject.AlwaysFail(errors.New("injected: heartbeat blackhole")))

	req := chaosSweep()
	want := standaloneSweep(t, req)
	plan, err := planSweep(req.Device, req.Axes, req.Workloads, 0)
	if err != nil {
		t.Fatalf("planSweep: %v", err)
	}

	// A lease far shorter than the sweep, so workers are guaranteed to be
	// declared lost (and to recover via Reregister) while work is in
	// flight. Their memo stores survive re-registration, so every round
	// trip makes progress and the sweep converges.
	coord := New(Options{
		HeartbeatInterval: 5 * time.Millisecond,
		Lease:             40 * time.Millisecond,
		AssignmentCells:   2,
		Logf:              t.Logf,
	})
	w1 := startWorker(t, coord, "w1", func(o *WorkerOptions) { o.FlushRows = 1; o.PollWait = 20 * time.Millisecond })
	w2 := startWorker(t, coord, "w2", func(o *WorkerOptions) { o.FlushRows = 1; o.PollWait = 20 * time.Millisecond })
	waitForWorkers(t, coord, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := coord.Sweep(ctx, req)
	if err != nil {
		t.Fatalf("cluster sweep under heartbeat blackhole: %v", err)
	}
	assertSweepIdentical(t, resp, want, uint64(len(plan.jobs)))

	if faultinject.Fired(faultinject.ClusterHeartbeat) == 0 {
		t.Error("heartbeat seam never fired: the blackhole was not exercised")
	}
	coord.mu.Lock()
	lost := coord.workersLost
	accepted := coord.rowsAccepted
	coord.mu.Unlock()
	if lost == 0 {
		t.Error("no worker was ever declared lost under a total heartbeat blackhole")
	}
	if accepted != uint64(len(plan.jobs)) {
		t.Errorf("rows accepted %d, want exactly %d (one per job) despite worker churn", accepted, len(plan.jobs))
	}

	w1.stop()
	w2.stop()
	coord.Close()
	assertNoLeaks()
}

// TestChaosRequeueFaultDivertsToPool injects a fault into the requeue path
// itself: when the draining worker's cells are requeued, the rerouting
// fails once, diverting the cells to the unassigned pool — where the
// surviving worker's next poll must pick them up. Delayed, never lost.
func TestChaosRequeueFaultDivertsToPool(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	faultinject.Set(faultinject.ClusterRequeue, faultinject.FailTimes(1, errors.New("injected: requeue fault")))

	ctx := context.Background()
	req := service.BatchRequest{
		Devices: []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=COPY,elems=2048,reps=1"),
			run.MustParseWorkloadSpec("transpose:variant=Naive,n=96"),
		},
	}
	want, err := service.New(service.Options{}).Batch(ctx, req)
	if err != nil {
		t.Fatalf("standalone Batch: %v", err)
	}

	coord := New(Options{Logf: t.Logf})

	// A hand-driven worker takes the whole batch, then drains without
	// returning anything — tripping the injected requeue fault.
	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "doomed"}); err != nil {
		t.Fatalf("register doomed: %v", err)
	}
	respCh := make(chan *service.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := coord.Batch(ctx, req)
		respCh <- resp
		errCh <- err
	}()
	poll, err := coord.Poll(ctx, protocol.PollRequest{WorkerID: "doomed", WaitMS: 5000})
	if err != nil || poll.Assignment == nil {
		t.Fatalf("poll doomed: assignment=%v err=%v", poll.Assignment, err)
	}
	if _, err := coord.DrainWorker(ctx, protocol.DrainRequest{WorkerID: "doomed"}); err != nil {
		t.Fatalf("drain doomed: %v", err)
	}
	if faultinject.Fired(faultinject.ClusterRequeue) != 1 {
		t.Fatalf("requeue seam fired %d times, want 1", faultinject.Fired(faultinject.ClusterRequeue))
	}
	coord.mu.Lock()
	pooled := len(coord.unassigned)
	coord.mu.Unlock()
	if pooled != len(want.Results) {
		t.Fatalf("%d cells in the unassigned pool after requeue fault, want %d", pooled, len(want.Results))
	}

	// A real worker joins and must drain the pool through its polls.
	w := startWorker(t, coord, "rescue", nil)
	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatalf("cluster batch after requeue fault: %v", err)
	}
	if len(resp.Results) != len(want.Results) {
		t.Fatalf("cluster batch: %d rows, standalone %d", len(resp.Results), len(want.Results))
	}
	for i := range resp.Results {
		if resp.Results[i].Result != want.Results[i].Result {
			t.Errorf("row %d: cluster %+v != standalone %+v", i, resp.Results[i].Result, want.Results[i].Result)
		}
	}

	w.stop()
	coord.Close()
	assertNoLeaks()
}

// TestChaosDispatchFaultDelaysAssignment injects failures at the dispatch
// seam: the first polls that would carry an assignment answer empty
// instead. The work must go out on a later poll — delayed, never lost.
func TestChaosDispatchFaultDelaysAssignment(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	faultinject.Set(faultinject.ClusterDispatch, faultinject.FailTimes(3, errors.New("injected: dispatch fault")))

	ctx := context.Background()
	req := service.BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=2048,reps=1")},
	}
	want, err := service.New(service.Options{}).Batch(ctx, req)
	if err != nil {
		t.Fatalf("standalone Batch: %v", err)
	}

	coord := New(Options{Logf: t.Logf})
	w := startWorker(t, coord, "w1", func(o *WorkerOptions) { o.PollWait = 50 * time.Millisecond })
	waitForWorkers(t, coord, 1)

	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	resp, err := coord.Batch(cctx, req)
	if err != nil {
		t.Fatalf("cluster batch under dispatch fault: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Result != want.Results[0].Result {
		t.Fatalf("cluster batch: %+v, want standalone %+v", resp.Results, want.Results)
	}
	if fired := faultinject.Fired(faultinject.ClusterDispatch); fired < 4 {
		t.Errorf("dispatch seam fired %d times, want ≥4 (3 injected failures + the delivering poll)", fired)
	}

	w.stop()
	coord.Close()
	assertNoLeaks()
}
