//go:build faultinject

package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"riscvmem/internal/cluster/protocol"
	"riscvmem/internal/faultinject"
	"riscvmem/internal/faultinject/chaos"
	"riscvmem/internal/leakcheck"
	"riscvmem/internal/run"
	"riscvmem/internal/service"
)

// The poison workload: a stall that never releases, registered once for
// the whole test binary (the workload registry is process-wide). Each
// execution signals poisonStarted; honorCtx makes it unwind cleanly when
// its worker is killed, so the kill is observed as a worker loss — the
// budget's charge — not as a stuck goroutine.
var poisonStarted = make(chan struct{}, 16)

func init() {
	run.MustRegister(chaos.Stall("chaospoison", poisonStarted, make(chan struct{}), true))
}

// chaosSweep is the grid the chaos tests replay: small enough to converge
// fast under injected faults, varied enough that cells spread across both
// workers' ring shards.
func chaosSweep() service.SweepRequest {
	return service.SweepRequest{
		Device: "MangoPi",
		Axes:   []string{"l2=base,128KiB", "maxinflight=base,2"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=TRIAD,elems=2048,reps=1"),
			run.MustParseWorkloadSpec("transpose:variant=Naive,n=96"),
		},
	}
}

// standaloneSweep computes the ground-truth response for a chaos grid.
func standaloneSweep(t *testing.T, req service.SweepRequest) *service.Response {
	t.Helper()
	want, err := service.New(service.Options{}).Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("standalone Sweep: %v", err)
	}
	return want
}

// assertSweepIdentical requires the clustered rows to match the standalone
// rows bit for bit, and the request-scoped cache stats to never count more
// cells than the grid holds (requeued work must not be double-counted; an
// undercount is legal — a dead worker's final delta dies with it).
func assertSweepIdentical(t *testing.T, got, want *service.Response, totalJobs uint64) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("cluster sweep: %d rows, standalone %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if !reflect.DeepEqual(got.Results[i], want.Results[i]) {
			t.Errorf("row %d: cluster %+v != standalone %+v", i, got.Results[i], want.Results[i])
		}
	}
	if n := got.Cache.RequestHits + got.Cache.RequestMisses; n > totalJobs {
		t.Errorf("cache stats count %d cells, more than the %d jobs: requeued work double-counted", n, totalJobs)
	}
}

// TestChaosKillWorkerMidSweep is the faultinject build of the worker-loss
// drill, with the goroutine-leak assertion wrapped around the whole
// cluster lifecycle: kill one of two workers mid-sweep, lose no rows,
// leak no goroutines.
func TestChaosKillWorkerMidSweep(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	req := chaosSweep()
	want := standaloneSweep(t, req)
	plan, err := planSweep(req.Device, req.Axes, req.Workloads, 0)
	if err != nil {
		t.Fatalf("planSweep: %v", err)
	}

	coord := New(Options{AssignmentCells: 2, Logf: t.Logf})
	w1 := startWorker(t, coord, "w1", func(o *WorkerOptions) { o.FlushRows = 1; o.MaxConcurrent = 1 })
	w2 := startWorker(t, coord, "w2", func(o *WorkerOptions) { o.FlushRows = 1; o.MaxConcurrent = 1 })
	waitForWorkers(t, coord, 2)

	respCh := make(chan *service.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := coord.Sweep(context.Background(), req)
		respCh <- resp
		errCh <- err
	}()

	// Kill w1 as soon as the sweep is moving.
	deadline := time.Now().Add(10 * time.Second)
	for {
		coord.mu.Lock()
		moving := coord.rowsAccepted > 0
		coord.mu.Unlock()
		if moving || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	w1.stop()

	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatalf("cluster sweep after worker kill: %v", err)
	}
	assertSweepIdentical(t, resp, want, uint64(len(plan.jobs)))

	coord.mu.Lock()
	accepted := coord.rowsAccepted
	coord.mu.Unlock()
	if accepted != uint64(len(plan.jobs)) {
		t.Errorf("rows accepted %d, want exactly %d (one per job)", accepted, len(plan.jobs))
	}

	w2.stop()
	coord.Close()
	assertNoLeaks()
}

// TestChaosHeartbeatBlackhole blackholes the heartbeat channel entirely:
// every beat fails at the coordinator, so workers are repeatedly declared
// lost mid-work — and repeatedly rejoin through the poll path's Reregister,
// since registration (unlike heartbeats) still works. The sweep must still
// complete bit-identical, every row delivered exactly once.
func TestChaosHeartbeatBlackhole(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	faultinject.Set(faultinject.ClusterHeartbeat, faultinject.AlwaysFail(errors.New("injected: heartbeat blackhole")))

	req := chaosSweep()
	want := standaloneSweep(t, req)
	plan, err := planSweep(req.Device, req.Axes, req.Workloads, 0)
	if err != nil {
		t.Fatalf("planSweep: %v", err)
	}

	// A lease far shorter than the sweep, so workers are guaranteed to be
	// declared lost (and to recover via Reregister) while work is in
	// flight. Their memo stores survive re-registration, so every round
	// trip makes progress and the sweep converges.
	coord := New(Options{
		HeartbeatInterval: 5 * time.Millisecond,
		Lease:             40 * time.Millisecond,
		AssignmentCells:   2,
		Logf:              t.Logf,
	})
	w1 := startWorker(t, coord, "w1", func(o *WorkerOptions) { o.FlushRows = 1; o.PollWait = 20 * time.Millisecond })
	w2 := startWorker(t, coord, "w2", func(o *WorkerOptions) { o.FlushRows = 1; o.PollWait = 20 * time.Millisecond })
	waitForWorkers(t, coord, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := coord.Sweep(ctx, req)
	if err != nil {
		t.Fatalf("cluster sweep under heartbeat blackhole: %v", err)
	}
	assertSweepIdentical(t, resp, want, uint64(len(plan.jobs)))

	if faultinject.Fired(faultinject.ClusterHeartbeat) == 0 {
		t.Error("heartbeat seam never fired: the blackhole was not exercised")
	}
	coord.mu.Lock()
	lost := coord.workersLost
	accepted := coord.rowsAccepted
	coord.mu.Unlock()
	if lost == 0 {
		t.Error("no worker was ever declared lost under a total heartbeat blackhole")
	}
	if accepted != uint64(len(plan.jobs)) {
		t.Errorf("rows accepted %d, want exactly %d (one per job) despite worker churn", accepted, len(plan.jobs))
	}

	w1.stop()
	w2.stop()
	coord.Close()
	assertNoLeaks()
}

// TestChaosRequeueFaultDivertsToPool injects a fault into the requeue path
// itself: when the draining worker's cells are requeued, the rerouting
// fails once, diverting the cells to the unassigned pool — where the
// surviving worker's next poll must pick them up. Delayed, never lost.
func TestChaosRequeueFaultDivertsToPool(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	faultinject.Set(faultinject.ClusterRequeue, faultinject.FailTimes(1, errors.New("injected: requeue fault")))

	ctx := context.Background()
	req := service.BatchRequest{
		Devices: []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=COPY,elems=2048,reps=1"),
			run.MustParseWorkloadSpec("transpose:variant=Naive,n=96"),
		},
	}
	want, err := service.New(service.Options{}).Batch(ctx, req)
	if err != nil {
		t.Fatalf("standalone Batch: %v", err)
	}

	coord := New(Options{Logf: t.Logf})

	// A hand-driven worker takes the whole batch, then drains without
	// returning anything — tripping the injected requeue fault.
	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "doomed"}); err != nil {
		t.Fatalf("register doomed: %v", err)
	}
	respCh := make(chan *service.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := coord.Batch(ctx, req)
		respCh <- resp
		errCh <- err
	}()
	poll, err := coord.Poll(ctx, protocol.PollRequest{WorkerID: "doomed", WaitMS: 5000})
	if err != nil || poll.Assignment == nil {
		t.Fatalf("poll doomed: assignment=%v err=%v", poll.Assignment, err)
	}
	if _, err := coord.DrainWorker(ctx, protocol.DrainRequest{WorkerID: "doomed"}); err != nil {
		t.Fatalf("drain doomed: %v", err)
	}
	if faultinject.Fired(faultinject.ClusterRequeue) != 1 {
		t.Fatalf("requeue seam fired %d times, want 1", faultinject.Fired(faultinject.ClusterRequeue))
	}
	coord.mu.Lock()
	pooled := len(coord.unassigned)
	coord.mu.Unlock()
	if pooled != len(want.Results) {
		t.Fatalf("%d cells in the unassigned pool after requeue fault, want %d", pooled, len(want.Results))
	}

	// A real worker joins and must drain the pool through its polls.
	w := startWorker(t, coord, "rescue", nil)
	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatalf("cluster batch after requeue fault: %v", err)
	}
	if len(resp.Results) != len(want.Results) {
		t.Fatalf("cluster batch: %d rows, standalone %d", len(resp.Results), len(want.Results))
	}
	for i := range resp.Results {
		if resp.Results[i].Result != want.Results[i].Result {
			t.Errorf("row %d: cluster %+v != standalone %+v", i, resp.Results[i].Result, want.Results[i].Result)
		}
	}

	w.stop()
	coord.Close()
	assertNoLeaks()
}

// TestChaosDispatchFaultDelaysAssignment injects failures at the dispatch
// seam: the first polls that would carry an assignment answer empty
// instead. The work must go out on a later poll — delayed, never lost.
func TestChaosDispatchFaultDelaysAssignment(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	faultinject.Set(faultinject.ClusterDispatch, faultinject.FailTimes(3, errors.New("injected: dispatch fault")))

	ctx := context.Background()
	req := service.BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=2048,reps=1")},
	}
	want, err := service.New(service.Options{}).Batch(ctx, req)
	if err != nil {
		t.Fatalf("standalone Batch: %v", err)
	}

	coord := New(Options{Logf: t.Logf})
	w := startWorker(t, coord, "w1", func(o *WorkerOptions) { o.PollWait = 50 * time.Millisecond })
	waitForWorkers(t, coord, 1)

	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	resp, err := coord.Batch(cctx, req)
	if err != nil {
		t.Fatalf("cluster batch under dispatch fault: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Result != want.Results[0].Result {
		t.Fatalf("cluster batch: %+v, want standalone %+v", resp.Results, want.Results)
	}
	if fired := faultinject.Fired(faultinject.ClusterDispatch); fired < 4 {
		t.Errorf("dispatch seam fired %d times, want ≥4 (3 injected failures + the delivering poll)", fired)
	}

	w.stop()
	coord.Close()
	assertNoLeaks()
}

// TestChaosPoisonCellQuarantine is the degraded-mode acceptance drill: one
// cell in a batch kills its worker on every attempt. The cluster must not
// retry it forever — after MaxCellAttempts worker losses the cell is
// quarantined, the batch completes within the request deadline with exactly
// one quarantined error row, and every innocent row is bit-identical to the
// standalone run.
func TestChaosPoisonCellQuarantine(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	// Drain stale start signals from any earlier run of this binary.
	for {
		select {
		case <-poisonStarted:
			continue
		default:
		}
		break
	}

	ctx := context.Background()
	innocents := []run.WorkloadSpec{
		run.MustParseWorkloadSpec("stream:test=COPY,elems=2048,reps=1"),
		run.MustParseWorkloadSpec("stream:test=TRIAD,elems=2048,reps=1"),
		run.MustParseWorkloadSpec("transpose:variant=Naive,n=96"),
	}
	want, err := service.New(service.Options{}).Batch(ctx, service.BatchRequest{
		Devices: []string{"MangoPi"}, Workloads: innocents,
	})
	if err != nil {
		t.Fatalf("standalone Batch: %v", err)
	}
	req := service.BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: append(append([]run.WorkloadSpec{}, innocents...), run.WorkloadSpec{Kernel: "chaospoison"}),
		Options:   service.RequestOptions{TimeoutMS: 60000},
	}
	poisonIdx := len(innocents) // one device: row index == workload index
	totalJobs := len(req.Workloads)

	coord := New(Options{MaxCellAttempts: 3, AssignmentCells: 1, Logf: t.Logf})
	tweak := func(o *WorkerOptions) { o.FlushRows = 1 }
	workers := map[string]*testWorker{
		"w1": startWorker(t, coord, "w1", tweak),
		"w2": startWorker(t, coord, "w2", tweak),
	}
	waitForWorkers(t, coord, 2)

	respCh := make(chan *service.Response, 1)
	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		resp, err := coord.Batch(ctx, req)
		respCh <- resp
		errCh <- err
	}()

	// findOwner locates the worker currently executing the poison cell.
	findOwner := func(attempt int) string {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			coord.mu.Lock()
			for id, ws := range coord.workers {
				for _, asn := range ws.delivered {
					if _, ok := asn.cells[poisonIdx]; ok {
						coord.mu.Unlock()
						return id
					}
				}
			}
			coord.mu.Unlock()
			if time.Now().After(deadline) {
				t.Fatalf("attempt %d: poison cell never found in a delivered assignment", attempt)
			}
			time.Sleep(time.Millisecond)
		}
	}

	next := 3
	for kill := 1; kill <= 3; kill++ {
		select {
		case <-poisonStarted:
		case <-time.After(20 * time.Second):
			t.Fatalf("attempt %d: poison cell never started executing", kill)
		}
		owner := findOwner(kill)
		if kill < 3 {
			// Keep the ring populated: a replacement joins before each of
			// the first two kills, so the poison always has somewhere to go.
			id := fmt.Sprintf("w%d", next)
			next++
			workers[id] = startWorker(t, coord, id, tweak)
		}
		t.Logf("attempt %d: poison running on %s, killing it", kill, owner)
		workers[owner].stop()
		delete(workers, owner)
	}

	resp, err := <-respCh, <-errCh
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cluster batch with poison cell: %v", err)
	}
	if elapsed >= 60*time.Second {
		t.Errorf("batch took %s, want completion within the 60s request deadline", elapsed)
	}
	if len(resp.Results) != totalJobs {
		t.Fatalf("cluster batch: %d rows, want %d", len(resp.Results), totalJobs)
	}
	for i := range innocents {
		if resp.Results[i].Result != want.Results[i].Result || resp.Results[i].Error != want.Results[i].Error {
			t.Errorf("innocent row %d: cluster %+v != standalone %+v", i, resp.Results[i], want.Results[i])
		}
	}
	poison := resp.Results[poisonIdx]
	if poison.Error != service.QuarantinedRowError(3) {
		t.Errorf("poison row error %q, want %q", poison.Error, service.QuarantinedRowError(3))
	}
	if poison.Result != (run.Result{}) {
		t.Errorf("poison row carries a result %+v alongside its quarantine error", poison.Result)
	}
	if kind := service.ClassifyRowError(poison.Error); kind != service.RowErrorQuarantined {
		t.Errorf("poison row classifies as %q, want %q", kind, service.RowErrorQuarantined)
	}

	coord.mu.Lock()
	accepted, quarantined, expired := coord.rowsAccepted, coord.cellsQuarantined, coord.dispatchesExpired
	coord.mu.Unlock()
	if accepted != uint64(totalJobs) {
		t.Errorf("rowsAccepted = %d, want exactly %d (quarantine row included, nothing double-counted)", accepted, totalJobs)
	}
	if quarantined != 1 {
		t.Errorf("cellsQuarantined = %d, want exactly 1", quarantined)
	}
	if expired != 0 {
		t.Errorf("dispatchesExpired = %d, want 0 (quarantine must beat the deadline)", expired)
	}

	for _, w := range workers {
		w.stop()
	}
	coord.Close()
	assertNoLeaks()
}

// TestChaosBlackholedPollsDeadlineBounded blackholes every poll at the
// flaky transport: the worker is registered and heartbeating but can never
// fetch work. A batch with a request deadline must come back on time as a
// degraded 200-style response — every row an explicit deadline error —
// rather than blocking until the caller gives up.
func TestChaosBlackholedPollsDeadlineBounded(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	faultinject.Set(faultinject.ClusterSend, faultinject.AlwaysFail(errors.New("injected: poll blackhole")))

	coord := New(Options{Logf: t.Logf})
	flaky := NewFlakyTransport(coord, FlakyOptions{Verbs: []string{VerbPoll}})
	w := startWorker(t, flaky, "w1", func(o *WorkerOptions) { o.PollWait = 20 * time.Millisecond })
	waitForWorkers(t, coord, 1)

	req := service.BatchRequest{
		Devices: []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=COPY,elems=2048,reps=1"),
			run.MustParseWorkloadSpec("transpose:variant=Naive,n=96"),
		},
		Options: service.RequestOptions{TimeoutMS: 400},
	}
	start := time.Now()
	resp, err := coord.Batch(context.Background(), req)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cluster batch under poll blackhole: %v (deadline must degrade, not error)", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("degraded response took %s, want deadline-bounded (~400ms)", elapsed)
	}
	if len(resp.Results) != len(req.Workloads) {
		t.Fatalf("degraded batch: %d rows, want %d", len(resp.Results), len(req.Workloads))
	}
	for i, row := range resp.Results {
		if kind := service.ClassifyRowError(row.Error); kind != service.RowErrorDeadline {
			t.Errorf("row %d error %q classifies as %q, want %q", i, row.Error, kind, service.RowErrorDeadline)
		}
	}
	if sent, _ := flaky.Drops(); sent == 0 {
		t.Error("no poll was ever dropped: the blackhole was not exercised")
	}
	coord.mu.Lock()
	expired := coord.dispatchesExpired
	coord.mu.Unlock()
	if expired != 1 {
		t.Errorf("dispatchesExpired = %d, want 1", expired)
	}

	w.stop()
	coord.Close()
	assertNoLeaks()
}

// TestChaosRowsDropRetries drops the first two ReturnRows requests at the
// flaky transport. The worker's flush retry loop must redeliver: the third
// attempt lands, the batch matches standalone, and nothing is abandoned.
func TestChaosRowsDropRetries(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	assertNoLeaks := leakcheck.Check(t)

	faultinject.Set(faultinject.ClusterSend, faultinject.FailTimes(2, errors.New("injected: rows dropped")))

	ctx := context.Background()
	req := service.BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=2048,reps=1")},
	}
	want, err := service.New(service.Options{}).Batch(ctx, req)
	if err != nil {
		t.Fatalf("standalone Batch: %v", err)
	}

	coord := New(Options{Logf: t.Logf})
	flaky := NewFlakyTransport(coord, FlakyOptions{Verbs: []string{VerbRows}})
	w := startWorker(t, flaky, "w1", nil)
	waitForWorkers(t, coord, 1)

	resp, err := coord.Batch(ctx, req)
	if err != nil {
		t.Fatalf("cluster batch under dropped returns: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Result != want.Results[0].Result || resp.Results[0].Error != "" {
		t.Fatalf("cluster batch: %+v, want standalone %+v", resp.Results, want.Results)
	}
	if fired := faultinject.Fired(faultinject.ClusterSend); fired != 3 {
		t.Errorf("send seam fired %d times, want 3 (2 drops + the delivering retry)", fired)
	}
	if sent, _ := flaky.Drops(); sent != 2 {
		t.Errorf("flaky transport dropped %d sends, want 2", sent)
	}
	coord.mu.Lock()
	accepted := coord.rowsAccepted
	coord.mu.Unlock()
	if accepted != 1 {
		t.Errorf("rowsAccepted = %d, want exactly 1 despite retries", accepted)
	}

	w.stop()
	coord.Close()
	assertNoLeaks()
}
