package cluster

import (
	"context"
	"testing"

	"riscvmem/internal/leakcheck"
	"riscvmem/internal/run"
	"riscvmem/internal/service"
)

// TestFlakyTransportDuplicateRowsExactlyOnce runs a batch with every
// RowReturn delivered twice — the retransmit-after-lost-ack pattern — and
// requires the response bit-identical to standalone with every row accepted
// exactly once: the duplicate's rows must bounce off the coordinator's
// per-index dedup (mid-assignment) or revocation (after Done), never count
// twice. Duplicate delivery needs no faultinject seam, so this is an
// untagged test: the invariant holds in production builds too.
func TestFlakyTransportDuplicateRowsExactlyOnce(t *testing.T) {
	assertNoLeaks := leakcheck.Check(t)
	ctx := context.Background()
	req := service.BatchRequest{
		Devices: []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=COPY,elems=2048,reps=1"),
			run.MustParseWorkloadSpec("stream:test=TRIAD,elems=2048,reps=1"),
			run.MustParseWorkloadSpec("transpose:variant=Naive,n=96"),
		},
	}
	want, err := service.New(service.Options{}).Batch(ctx, req)
	if err != nil {
		t.Fatalf("standalone Batch: %v", err)
	}

	coord := New(Options{Logf: t.Logf})
	flaky := NewFlakyTransport(coord, FlakyOptions{
		Verbs:     []string{VerbRows},
		Duplicate: func(verb string) bool { return true },
	})
	// Row-by-row flushes so duplication hits both mid-assignment returns
	// and the final Done return.
	w := startWorker(t, flaky, "w1", func(o *WorkerOptions) { o.FlushRows = 1 })
	waitForWorkers(t, coord, 1)

	resp, err := coord.Batch(ctx, req)
	if err != nil {
		t.Fatalf("cluster batch under duplicated returns: %v", err)
	}
	if len(resp.Results) != len(want.Results) {
		t.Fatalf("cluster batch: %d rows, standalone %d", len(resp.Results), len(want.Results))
	}
	for i := range resp.Results {
		if resp.Results[i].Result != want.Results[i].Result || resp.Results[i].Error != want.Results[i].Error {
			t.Errorf("row %d: cluster %+v != standalone %+v", i, resp.Results[i], want.Results[i])
		}
	}

	if flaky.Duplicates() == 0 {
		t.Error("no call was ever duplicated: the retransmit path was not exercised")
	}
	coord.mu.Lock()
	accepted := coord.rowsAccepted
	coord.mu.Unlock()
	if accepted != uint64(len(want.Results)) {
		t.Errorf("rowsAccepted = %d, want exactly %d (one per job despite duplication)", accepted, len(want.Results))
	}

	w.stop()
	coord.Close()
	assertNoLeaks()
}
