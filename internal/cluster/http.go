package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"riscvmem/internal/service"
)

// maxBodyBytes bounds request bodies, matching the service handler's cap.
const maxBodyBytes = 1 << 20

// NewCoordinatorHandler fronts a Coordinator with HTTP. The client-facing
// half is wire-compatible with the standalone daemon — a client cannot
// tell a coordinator from a simd serving the same requests:
//
//	GET  /healthz        {"status":"ok","workers":N}
//	GET  /metrics        Prometheus text exposition (see Coordinator.WriteMetrics)
//	GET  /v1/devices     device presets (identical to the standalone listing)
//	GET  /v1/workloads   kernels, params, grammar, sweep axes
//	POST /v1/batch       service.BatchRequest → service.Response, sharded over workers
//	POST /v1/sweep       service.SweepRequest → service.Response, sharded over workers
//
// The worker-facing half is the protocol package over POST + JSON:
//
//	POST /cluster/v1/register    protocol.RegisterRequest → RegisterResponse
//	POST /cluster/v1/heartbeat   protocol.HeartbeatRequest → HeartbeatResponse
//	POST /cluster/v1/poll        protocol.PollRequest → PollResponse (long-poll)
//	POST /cluster/v1/rows        protocol.RowReturn → RowAck
//	POST /cluster/v1/drain       protocol.DrainRequest → DrainResponse
//
// Errors follow the service taxonomy exactly (service.WriteError): 400 for
// validation failures, 500 otherwise. A batch whose request deadline
// expires is not an error here: it degrades to a 200 whose unfinished rows
// carry per-cell deadline errors (service.DeadlineRowError); a sweep in
// the same state returns the standalone sweep's wholesale 500 (a torn grid
// has no meaningful deltas). Only the caller's own cancelled context still
// surfaces as an error.
func NewCoordinatorHandler(c *Coordinator, logf func(format string, args ...any)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "workers": c.Workers(),
		}, logf)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := c.WriteMetrics(w); err != nil && logf != nil {
			logf("cluster: writing /metrics response: %v", err)
		}
	})
	mux.HandleFunc("GET /v1/devices", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, service.ListDevices(), logf)
	})
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, service.ListWorkloads(), logf)
	})
	mux.HandleFunc("POST /v1/batch", bridge(logf, c.Batch))
	mux.HandleFunc("POST /v1/sweep", bridge(logf, c.Sweep))
	mux.HandleFunc("POST /cluster/v1/register", bridge(logf, c.Register))
	mux.HandleFunc("POST /cluster/v1/heartbeat", bridge(logf, c.Heartbeat))
	mux.HandleFunc("POST /cluster/v1/poll", bridge(logf, c.Poll))
	mux.HandleFunc("POST /cluster/v1/rows", bridge(logf, c.ReturnRows))
	mux.HandleFunc("POST /cluster/v1/drain", bridge(logf, c.DrainWorker))
	return mux
}

// bridge adapts one (ctx, request) → (response, error) method to HTTP:
// strict JSON in, taxonomy-mapped JSON out. The request context rides
// along, so a long poll ends when the polling worker hangs up.
func bridge[Req, Resp any](logf func(string, ...any), fn func(ctx context.Context, req Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Req
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			service.WriteJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("bad request body: %v", err)}, logf)
			return
		}
		if dec.More() {
			service.WriteJSON(w, http.StatusBadRequest,
				map[string]string{"error": "bad request body: trailing data after JSON value"}, logf)
			return
		}
		resp, err := fn(r.Context(), req)
		if err != nil {
			service.WriteError(w, err, logf)
			return
		}
		service.WriteJSON(w, http.StatusOK, resp, logf)
	}
}
