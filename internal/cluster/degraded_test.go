package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"riscvmem/internal/cluster/protocol"
	"riscvmem/internal/run"
	"riscvmem/internal/service"
)

// startBatch starts a 1-device × n-workload batch in the background and
// returns channels carrying its outcome.
func startBatch(t *testing.T, coord *Coordinator, opt service.RequestOptions, specs ...string) (<-chan *service.Response, <-chan error) {
	t.Helper()
	workloads := make([]run.WorkloadSpec, len(specs))
	for i, s := range specs {
		workloads[i] = run.MustParseWorkloadSpec(s)
	}
	respCh := make(chan *service.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := coord.Batch(context.Background(), service.BatchRequest{
			Devices:   []string{"MangoPi"},
			Workloads: workloads,
			Options:   opt,
		})
		respCh <- resp
		errCh <- err
	}()
	return respCh, errCh
}

// mustPoll polls worker id and requires an assignment.
func mustPoll(t *testing.T, coord *Coordinator, id string) *protocol.Assignment {
	t.Helper()
	poll, err := coord.Poll(context.Background(), protocol.PollRequest{WorkerID: id, WaitMS: 5000})
	if err != nil || poll.Assignment == nil {
		t.Fatalf("poll %s: assignment=%v err=%v", id, poll.Assignment, err)
	}
	return poll.Assignment
}

// TestClusterQuarantineAfterRepeatedLoss drives the failure budget by hand:
// a two-cell batch where one cell's worker is lost on every attempt. After
// MaxCellAttempts losses the cell must complete as a quarantine error row
// while the sibling cell's (already accepted) row is untouched — the batch
// degrades per-cell instead of livelocking on requeue.
func TestClusterQuarantineAfterRepeatedLoss(t *testing.T) {
	ctx := context.Background()
	coord := New(Options{MaxCellAttempts: 3, Logf: t.Logf})
	defer coord.Close()

	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "v1"}); err != nil {
		t.Fatalf("register v1: %v", err)
	}
	respCh, errCh := startBatch(t, coord, service.RequestOptions{},
		"stream:test=COPY,elems=64,reps=1", "stream:test=SCALE,elems=64,reps=1")

	asn := mustPoll(t, coord, "v1")
	if len(asn.Cells) != 2 {
		t.Fatalf("assignment has %d cells, want 2", len(asn.Cells))
	}
	// The sibling (index 0) completes before the loss; it must never be
	// requeued or recharged afterwards.
	sibling := protocol.Row{Index: 0, Result: run.Result{Workload: "stream", Device: "MangoPi", Seconds: 1}}
	if _, err := coord.ReturnRows(ctx, protocol.RowReturn{
		WorkerID: "v1", AssignmentID: asn.ID, Rows: []protocol.Row{sibling},
	}); err != nil {
		t.Fatalf("return sibling: %v", err)
	}
	if _, err := coord.DrainWorker(ctx, protocol.DrainRequest{WorkerID: "v1"}); err != nil {
		t.Fatalf("drain v1: %v", err)
	}

	// Attempts 2 and 3: each new incarnation inherits only the poison cell,
	// with the attempt count echoed on the wire, and is lost in turn.
	for attempt := 1; attempt <= 2; attempt++ {
		id := "v" + string(rune('1'+attempt))
		if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: id}); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
		asn := mustPoll(t, coord, id)
		if len(asn.Cells) != 1 || asn.Cells[0].Index != 1 {
			t.Fatalf("attempt %d: assignment %+v, want only cell 1", attempt, asn.Cells)
		}
		if asn.Cells[0].Attempts != attempt {
			t.Errorf("attempt %d: cell carries Attempts=%d, want %d", attempt, asn.Cells[0].Attempts, attempt)
		}
		if _, err := coord.DrainWorker(ctx, protocol.DrainRequest{WorkerID: id}); err != nil {
			t.Fatalf("drain %s: %v", id, err)
		}
	}

	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatalf("batch after quarantine: %v", err)
	}
	if resp.Results[0].Result != sibling.Result || resp.Results[0].Error != "" {
		t.Errorf("sibling row %+v, want the accepted row unchanged", resp.Results[0])
	}
	wantErr := service.QuarantinedRowError(3)
	if resp.Results[1].Error != wantErr {
		t.Errorf("poison row error %q, want %q", resp.Results[1].Error, wantErr)
	}
	if k := service.ClassifyRowError(resp.Results[1].Error); k != service.RowErrorQuarantined {
		t.Errorf("poison row classifies as %q, want %q", k, service.RowErrorQuarantined)
	}
	if len(resp.Errors) != 1 || resp.Errors[0] != wantErr {
		t.Errorf("response errors %v, want exactly the quarantine error", resp.Errors)
	}

	coord.mu.Lock()
	quarantined, accepted, failures := coord.cellsQuarantined, coord.rowsAccepted, coord.cellFailures
	coord.mu.Unlock()
	if quarantined != 1 {
		t.Errorf("cellsQuarantined = %d, want 1", quarantined)
	}
	if accepted != 2 {
		t.Errorf("rowsAccepted = %d, want 2 (sibling + quarantine row)", accepted)
	}
	if failures != 0 {
		t.Errorf("cellFailures = %d, want 0 (losses, not contained failures)", failures)
	}
}

// TestClusterFailureRowRequeueAndBudget pins the contained-cell-failure
// path: a Failed row is never delivered to the client — it charges the
// cell's budget and requeues it; after the budget is spent the cell is
// quarantined with the last failure appended as the cause.
func TestClusterFailureRowRequeueAndBudget(t *testing.T) {
	ctx := context.Background()
	coord := New(Options{MaxCellAttempts: 3, Logf: t.Logf})
	defer coord.Close()

	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "a"}); err != nil {
		t.Fatalf("register: %v", err)
	}
	respCh, errCh := startBatch(t, coord, service.RequestOptions{}, "stream:test=COPY,elems=64,reps=1")

	for attempt := 1; attempt <= 3; attempt++ {
		asn := mustPoll(t, coord, "a")
		if got := asn.Cells[0].Attempts; got != attempt-1 {
			t.Errorf("attempt %d: cell carries Attempts=%d, want %d", attempt, got, attempt-1)
		}
		ack, err := coord.ReturnRows(ctx, protocol.RowReturn{
			WorkerID: "a", AssignmentID: asn.ID,
			Rows: []protocol.Row{{Index: 0, Failed: true, Error: "cell failed on worker a: panic: boom"}},
			Done: true,
		})
		if err != nil {
			t.Fatalf("attempt %d: return failure row: %v", attempt, err)
		}
		if ack.Accepted != 0 {
			t.Errorf("attempt %d: failure row counted as accepted (%d)", attempt, ack.Accepted)
		}
	}

	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatalf("batch after failure-row quarantine: %v", err)
	}
	got := resp.Results[0].Error
	if !strings.HasPrefix(got, service.QuarantinedRowError(3)) {
		t.Errorf("row error %q, want prefix %q", got, service.QuarantinedRowError(3))
	}
	if !strings.Contains(got, "panic: boom") {
		t.Errorf("row error %q does not carry the failure cause", got)
	}
	if k := service.ClassifyRowError(got); k != service.RowErrorQuarantined {
		t.Errorf("row classifies as %q, want %q", k, service.RowErrorQuarantined)
	}

	coord.mu.Lock()
	failures, quarantined, requeued := coord.cellFailures, coord.cellsQuarantined, coord.cellsRequeued
	coord.mu.Unlock()
	if failures != 3 {
		t.Errorf("cellFailures = %d, want 3", failures)
	}
	if quarantined != 1 {
		t.Errorf("cellsQuarantined = %d, want 1", quarantined)
	}
	if requeued != 2 {
		t.Errorf("cellsRequeued = %d, want 2 (third failure quarantines instead)", requeued)
	}
}

// TestClusterDispatchDeadlineDegrades pins the no-hang contract with no
// workers at all: a batch whose deadline expires returns promptly with
// every unfinished row carrying an explicit deadline error — not a
// transport error, and never a block in await.
func TestClusterDispatchDeadlineDegrades(t *testing.T) {
	coord := New(Options{Logf: t.Logf})
	defer coord.Close()

	start := time.Now()
	resp, err := coord.Batch(context.Background(), service.BatchRequest{
		Devices: []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=COPY,elems=64,reps=1"),
			run.MustParseWorkloadSpec("stream:test=SCALE,elems=64,reps=1"),
		},
		Options: service.RequestOptions{TimeoutMS: 200},
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline-expired batch errored (%v); want a degraded response", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("degraded response took %s; the deadline did not bound the wait", elapsed)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("degraded batch: %d rows, want 2", len(resp.Results))
	}
	for i, row := range resp.Results {
		if row.Error != service.DeadlineRowError() {
			t.Errorf("row %d error %q, want %q", i, row.Error, service.DeadlineRowError())
		}
		if k := service.ClassifyRowError(row.Error); k != service.RowErrorDeadline {
			t.Errorf("row %d classifies as %q, want %q", i, k, service.RowErrorDeadline)
		}
	}
	if len(resp.Errors) != 2 {
		t.Errorf("response errors %v, want one per unfinished row", resp.Errors)
	}

	coord.mu.Lock()
	expired := coord.dispatchesExpired
	coord.mu.Unlock()
	if expired != 1 {
		t.Errorf("dispatchesExpired = %d, want 1", expired)
	}
}

// TestClusterSweepDeadlineReturnsError pins the sweep flavor of deadline
// degradation: a torn grid has no meaningful base-relative deltas, so the
// sweep surfaces the standalone path's wholesale ExecutionError — promptly,
// never a hang.
func TestClusterSweepDeadlineReturnsError(t *testing.T) {
	coord := New(Options{Logf: t.Logf})
	defer coord.Close()

	start := time.Now()
	_, err := coord.Sweep(context.Background(), service.SweepRequest{
		Device:    "MangoPi",
		Axes:      []string{"l2=base,128KiB"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=64,reps=1")},
		Options:   service.RequestOptions{TimeoutMS: 200},
	})
	if time.Since(start) > 5*time.Second {
		t.Error("sweep deadline did not bound the wait")
	}
	var exec *service.ExecutionError
	if !errors.As(err, &exec) {
		t.Fatalf("deadline-expired sweep returned %v, want *service.ExecutionError", err)
	}
	if !strings.Contains(err.Error(), service.DeadlineRowError()) {
		t.Errorf("sweep error %q does not carry the deadline row error", err)
	}
}

// TestClusterLeaseBoundary pins the lease comparison at its edge: a
// heartbeat arriving exactly at the lease boundary keeps the worker alive
// (the contract is "silent for LONGER than the lease"); one nanosecond past
// it, the worker is lost.
func TestClusterLeaseBoundary(t *testing.T) {
	ctx := context.Background()
	// Hour-scale intervals so the background janitor cannot race the
	// hand-driven expiry below.
	coord := New(Options{HeartbeatInterval: time.Hour, Logf: t.Logf})
	defer coord.Close()
	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "edge"}); err != nil {
		t.Fatalf("register: %v", err)
	}

	// Drive expiry with crafted "now" instants relative to the recorded
	// beat (rather than backdating the beat itself, which would race the
	// real janitor's own ticks).
	coord.mu.Lock()
	beat := coord.workers["edge"].lastBeat
	coord.mu.Unlock()

	coord.expire(beat.Add(coord.opt.Lease))
	if coord.Workers() != 1 {
		t.Fatal("worker lost with its heartbeat exactly at the lease boundary")
	}

	coord.expire(beat.Add(coord.opt.Lease + time.Nanosecond))
	if coord.Workers() != 0 {
		t.Fatal("worker kept past its lease")
	}
	coord.mu.Lock()
	lost := coord.workersLost
	coord.mu.Unlock()
	if lost != 1 {
		t.Errorf("workersLost = %d, want 1", lost)
	}
}

// TestClusterReregisterRacesReturnRows pins the incarnation race: a worker
// re-registers (for example after a heartbeat's Reregister) while a
// ReturnRows for its previous incarnation's assignment is still in flight.
// The stale return must be revoked — not accepted, not dropped silently —
// and the cell must complete exactly once through the new incarnation.
func TestClusterReregisterRacesReturnRows(t *testing.T) {
	ctx := context.Background()
	coord := New(Options{Logf: t.Logf})
	defer coord.Close()

	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "a"}); err != nil {
		t.Fatalf("register: %v", err)
	}
	respCh, errCh := startBatch(t, coord, service.RequestOptions{}, "stream:test=COPY,elems=64,reps=1")
	oldAsn := mustPoll(t, coord, "a")

	// The re-registration lands first: the old incarnation's assignment is
	// revoked and its cell requeued onto the fresh incarnation.
	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "a"}); err != nil {
		t.Fatalf("re-register: %v", err)
	}

	// Now the stale in-flight return arrives, quoting the old assignment.
	staleRow := protocol.Row{Index: 0, Result: run.Result{Workload: "stale", Device: "stale", Seconds: 9}}
	ack, err := coord.ReturnRows(ctx, protocol.RowReturn{
		WorkerID: "a", AssignmentID: oldAsn.ID,
		Rows: []protocol.Row{staleRow}, Done: true,
	})
	if err != nil {
		t.Fatalf("stale return: %v", err)
	}
	if !ack.Revoked || ack.Accepted != 0 {
		t.Fatalf("stale return ack %+v, want revoked with 0 accepted", ack)
	}

	// The new incarnation completes the requeued cell; its row is the one
	// the client sees, delivered exactly once.
	newAsn := mustPoll(t, coord, "a")
	if newAsn.ID == oldAsn.ID {
		t.Fatal("new incarnation handed the revoked assignment ID")
	}
	if newAsn.Cells[0].Attempts != 1 {
		t.Errorf("requeued cell carries Attempts=%d, want 1 (charged for the lost incarnation)", newAsn.Cells[0].Attempts)
	}
	goodRow := protocol.Row{Index: 0, Result: run.Result{Workload: "stream", Device: "MangoPi", Seconds: 1.5}}
	ack, err = coord.ReturnRows(ctx, protocol.RowReturn{
		WorkerID: "a", AssignmentID: newAsn.ID,
		Rows: []protocol.Row{goodRow}, Done: true,
	})
	if err != nil || ack.Accepted != 1 || ack.Revoked {
		t.Fatalf("good return: ack %+v err=%v, want 1 accepted", ack, err)
	}

	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Result != goodRow.Result {
		t.Fatalf("batch result %+v, want the new incarnation's row", resp.Results)
	}
	coord.mu.Lock()
	accepted, revoked := coord.rowsAccepted, coord.rowsRevoked
	coord.mu.Unlock()
	if accepted != 1 || revoked != 1 {
		t.Errorf("rowsAccepted=%d rowsRevoked=%d, want 1/1 (no drop, no double delivery)", accepted, revoked)
	}
}
