// Package protocol defines the transport-agnostic messages of the riscvmem
// cluster control plane: worker registration, heartbeats, cell assignment,
// row return, and drain. Every message is a plain JSON-serializable value —
// nothing about Go closures, channels, or internal pointers on the wire —
// mirroring how service.NewHandler keeps the request facade independent of
// HTTP. The coordinator (internal/cluster.Coordinator) implements the
// server side of these messages directly as methods, so an in-process
// cluster, an httptest cluster, and a three-process deployment all speak
// exactly the same protocol; internal/cluster.Client is the HTTP binding.
//
// The conversation is strictly worker-initiated (register → heartbeat ∥
// poll → return rows → drain), so workers need no listening address and the
// coordinator never dials: one reachable endpoint is the whole topology.
//
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package protocol

import (
	"riscvmem/internal/memostore"
	"riscvmem/internal/run"
)

// RegisterRequest announces a worker to the coordinator. Re-registering an
// ID that is currently lost or draining replaces the old incarnation: the
// worker rejoins the ring fresh, with no outstanding assignments.
type RegisterRequest struct {
	// WorkerID names the worker; it is the worker's identity on the hash
	// ring, so a stable ID across restarts preserves shard affinity (and
	// with it the worker's warm memo store).
	WorkerID string `json:"worker_id"`
	// Addr is the worker's own service address, informational only (logs,
	// metrics labels): the coordinator never dials a worker.
	Addr string `json:"addr,omitempty"`
	// Capacity hints how many cells the worker wants per assignment;
	// 0 lets the coordinator choose.
	Capacity int `json:"capacity,omitempty"`
}

// RegisterResponse tells the worker its obligations.
type RegisterResponse struct {
	// HeartbeatMS is how often the worker must heartbeat.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// LeaseMS is the liveness deadline: a worker silent for longer is
	// marked lost and its unfinished cells are requeued.
	LeaseMS int64 `json:"lease_ms"`
}

// HeartbeatRequest refreshes a worker's lease. Heartbeats (and
// registration) are the only liveness signal — deliberately not polls or
// row returns, so a blackholed control channel fails fast and
// deterministically even while data still flows.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

// HeartbeatResponse acknowledges a beat. Reregister is set when the
// coordinator no longer knows the worker (it was marked lost, or the
// coordinator restarted); the worker must register again before polling.
type HeartbeatResponse struct {
	OK         bool `json:"ok"`
	Reregister bool `json:"reregister,omitempty"`
}

// PollRequest asks for work. The call long-polls: the coordinator holds it
// open up to WaitMS waiting for cells to arrive on the worker's queue.
type PollRequest struct {
	WorkerID string `json:"worker_id"`
	WaitMS   int64  `json:"wait_ms,omitempty"`
}

// PollResponse carries at most one assignment; nil means the wait expired
// with nothing queued (poll again). Reregister as in HeartbeatResponse.
type PollResponse struct {
	Assignment *Assignment `json:"assignment,omitempty"`
	Reregister bool        `json:"reregister,omitempty"`
}

// Assignment is one batch of cells for one worker. Cells of one assignment
// always belong to one dispatch (one client request), so a sweep's grid
// context is carried once, not per cell.
type Assignment struct {
	ID string `json:"id"`
	// Kind is "batch" or "sweep".
	Kind string `json:"kind"`
	// Sweep carries the grid the cells index into; nil for batch
	// assignments.
	Sweep *SweepGrid `json:"sweep,omitempty"`
	Cells []Cell     `json:"cells"`
	// DeadlineMS is the dispatch's absolute deadline (Unix milliseconds,
	// 0 = none), propagated from the client request so a worker never
	// burns cycles on cells whose response has already been settled: the
	// worker bounds its execution context at this instant and ships
	// nothing for cells it could not finish in time.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SweepGrid names a sweep's deterministic expansion: the worker re-expands
// (device, axes) locally — sweep.Expand is a pure function of them — and
// executes the cells it was assigned by job index. Shipping the recipe
// instead of the expanded machine.Spec keeps the protocol serializable
// (a Spec may carry function-valued fields) and the expansion single-source.
type SweepGrid struct {
	Device    string             `json:"device"`
	Axes      []string           `json:"axes,omitempty"`
	Workloads []run.WorkloadSpec `json:"workloads"`
}

// Cell is one unit of assignable work: a (device, workload) pair for batch
// dispatches, or a job index into the sweep grid for sweep dispatches.
// Index is the cell's row position in the client's response, assigned by
// the coordinator and echoed back with the row so reassembly is in job
// order regardless of completion order.
type Cell struct {
	Index int `json:"index"`
	// Device and Workload describe a batch cell (preset name + spec).
	Device   string            `json:"device,omitempty"`
	Workload *run.WorkloadSpec `json:"workload,omitempty"`
	// SweepJob indexes the sweep grid's job list (cells outermost,
	// workloads innermost, synthetic base cell last when the axes omit
	// base points); meaningful only for sweep assignments.
	SweepJob int `json:"sweep_job,omitempty"`
	// Attempts is how many failed attempts (worker losses, contained cell
	// failures) this cell has already survived. Informational for the
	// worker (logging a retry as a retry); the coordinator owns the count
	// and quarantines the cell when it exhausts the failure budget.
	Attempts int `json:"attempts,omitempty"`
}

// Row is one completed cell: the deterministic simulator's Result — which
// JSON round-trips bit-identically (finite float64s re-decode exactly) —
// or the cell's error.
//
// Failed distinguishes a *cell failure* from a workload error. A workload
// error (Error set, Failed false) is a final answer: the cell executed and
// its workload failed — the row is delivered to the client as-is. A failure
// row (Failed true) means the worker could not execute the cell at all —
// a panic contained in the worker's execution path, attributed to the cell
// rather than crashing the worker and looking like a worker loss. The
// coordinator charges a failure row against the cell's attempt budget and
// requeues it (or quarantines it when the budget is spent); it is never
// delivered to the client directly.
type Row struct {
	Index  int        `json:"index"`
	Result run.Result `json:"result"`
	Error  string     `json:"error,omitempty"`
	Failed bool       `json:"failed,omitempty"`
}

// RowReturn streams completed rows back to the coordinator. A worker may
// return an assignment's rows across several calls (the serialized
// progress path flushes in chunks); Done marks the final call, carrying
// the assignment-level cache delta.
type RowReturn struct {
	WorkerID     string `json:"worker_id"`
	AssignmentID string `json:"assignment_id"`
	Rows         []Row  `json:"rows,omitempty"`
	Done         bool   `json:"done,omitempty"`
	// Cache is the worker-side request delta for this assignment (set with
	// Done): how many of its cells hit the worker's memo store, per tier.
	// The coordinator aggregates accepted deltas into the response — and
	// discards revoked ones, so a requeued cell is never double-counted.
	Cache *CacheDelta `json:"cache,omitempty"`
}

// CacheDelta is the cache work one assignment caused on one worker.
type CacheDelta struct {
	Hits   uint64          `json:"hits"`
	Misses uint64          `json:"misses"`
	Tiers  memostore.Stats `json:"tiers"`
}

// RowAck acknowledges a RowReturn. Revoked tells the worker the assignment
// is no longer valid (the worker was marked lost or draining and the cells
// were requeued): the worker should abandon the assignment's remaining
// work — nothing it returns for it will be accepted.
type RowAck struct {
	Accepted int  `json:"accepted"`
	Revoked  bool `json:"revoked,omitempty"`
}

// DrainRequest announces that a worker is shutting down: the coordinator
// stops assigning to it and requeues everything it has not completed.
type DrainRequest struct {
	WorkerID string `json:"worker_id"`
}

// DrainResponse reports the requeue.
type DrainResponse struct {
	Requeued int `json:"requeued"`
}
