package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"riscvmem/internal/cluster/protocol"
	"riscvmem/internal/faultinject"
)

// Verb names a FlakyTransport can select on — the protocol's five calls,
// spelled like their HTTP paths (see http.go).
const (
	VerbRegister  = "register"
	VerbHeartbeat = "heartbeat"
	VerbPoll      = "poll"
	VerbRows      = "rows"
	VerbDrain     = "drain"
)

// FlakyOptions configures a FlakyTransport.
type FlakyOptions struct {
	// Verbs selects which protocol calls misbehave; nil or empty means all
	// of them. Names are the Verb* constants.
	Verbs []string
	// Delay is added before every selected call is delivered (a slow link).
	// The coordinator's side effects happen after the delay, so a delayed
	// call is late, not reordered against itself.
	Delay time.Duration
	// Duplicate, when non-nil and returning true for a verb, delivers the
	// selected call twice: the first response is discarded, the second is
	// returned — exactly what a retransmit-after-lost-ack looks like to the
	// coordinator, which must keep row delivery exactly-once under it.
	Duplicate func(verb string) bool
}

// FlakyTransport decorates a protocol API with a misbehaving network:
// per-verb drops (via the faultinject seams ClusterSend and ClusterRecv),
// fixed delivery delay, and duplicate delivery. It is the chaos suite's
// stand-in for the real world between worker and coordinator — packet
// loss, half-open connections, and retransmits — without touching either
// endpoint's code.
//
// Drop semantics are asymmetric on purpose, mirroring where a real network
// loses a message: a ClusterSend fault drops the request before the
// coordinator sees it (no side effects happened; the caller must retry),
// while a ClusterRecv fault drops the response after the coordinator acted
// (side effects happened; a naive retry is a duplicate — which is exactly
// the case the coordinator's per-index dedup and revocation logic must
// absorb). Delay and Duplicate work in the default build too; the drop
// seams are live only under -tags faultinject.
type FlakyTransport struct {
	inner API
	opt   FlakyOptions

	dropsSend  atomic.Uint64
	dropsRecv  atomic.Uint64
	duplicates atomic.Uint64
}

// NewFlakyTransport wraps inner with the configured misbehavior.
func NewFlakyTransport(inner API, opt FlakyOptions) *FlakyTransport {
	return &FlakyTransport{inner: inner, opt: opt}
}

// Drops reports how many requests (send) and responses (recv) were dropped.
func (f *FlakyTransport) Drops() (send, recv uint64) {
	return f.dropsSend.Load(), f.dropsRecv.Load()
}

// Duplicates reports how many calls were delivered twice.
func (f *FlakyTransport) Duplicates() uint64 { return f.duplicates.Load() }

func (f *FlakyTransport) applies(verb string) bool {
	if len(f.opt.Verbs) == 0 {
		return true
	}
	for _, v := range f.opt.Verbs {
		if v == verb {
			return true
		}
	}
	return false
}

// flakyCall routes one call through the misbehavior pipeline: delay, then
// request drop, then (optionally duplicated) delivery, then response drop.
// A free function because Go methods cannot carry type parameters.
func flakyCall[Req, Resp any](ctx context.Context, f *FlakyTransport, verb string, req Req,
	call func(context.Context, Req) (Resp, error)) (Resp, error) {
	var zero Resp
	if !f.applies(verb) {
		return call(ctx, req)
	}
	if f.opt.Delay > 0 {
		sleepCtx(ctx, f.opt.Delay)
		if err := ctx.Err(); err != nil {
			return zero, err
		}
	}
	if err := faultinject.Fire(faultinject.ClusterSend); err != nil {
		f.dropsSend.Add(1)
		return zero, fmt.Errorf("cluster: flaky transport dropped %s request: %w", verb, err)
	}
	if f.opt.Duplicate != nil && f.opt.Duplicate(verb) {
		f.duplicates.Add(1)
		// First delivery: side effects land, response vanishes (lost ack).
		// Its error, if any, vanishes with it — the retransmit below is the
		// delivery the caller observes.
		_, _ = call(ctx, req)
	}
	resp, err := call(ctx, req)
	if err != nil {
		return resp, err
	}
	if err := faultinject.Fire(faultinject.ClusterRecv); err != nil {
		f.dropsRecv.Add(1)
		return zero, fmt.Errorf("cluster: flaky transport dropped %s response: %w", verb, err)
	}
	return resp, nil
}

func (f *FlakyTransport) Register(ctx context.Context, req protocol.RegisterRequest) (protocol.RegisterResponse, error) {
	return flakyCall(ctx, f, VerbRegister, req, f.inner.Register)
}

func (f *FlakyTransport) Heartbeat(ctx context.Context, req protocol.HeartbeatRequest) (protocol.HeartbeatResponse, error) {
	return flakyCall(ctx, f, VerbHeartbeat, req, f.inner.Heartbeat)
}

func (f *FlakyTransport) Poll(ctx context.Context, req protocol.PollRequest) (protocol.PollResponse, error) {
	return flakyCall(ctx, f, VerbPoll, req, f.inner.Poll)
}

func (f *FlakyTransport) ReturnRows(ctx context.Context, req protocol.RowReturn) (protocol.RowAck, error) {
	return flakyCall(ctx, f, VerbRows, req, f.inner.ReturnRows)
}

func (f *FlakyTransport) DrainWorker(ctx context.Context, req protocol.DrainRequest) (protocol.DrainResponse, error) {
	return flakyCall(ctx, f, VerbDrain, req, f.inner.DrainWorker)
}
