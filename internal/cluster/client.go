package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"riscvmem/internal/cluster/protocol"
)

// Client is the HTTP binding of the worker-facing coordinator API: the
// exact protocol messages, POSTed as JSON to a coordinator's
// /cluster/v1/* endpoints. It implements API, so a Worker configured with
// a Client instead of a Coordinator behaves identically — the oracle test
// runs the whole cluster through httptest to pin that.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the coordinator at baseURL (scheme +
// host[:port], e.g. "http://127.0.0.1:8080"). The underlying http.Client
// carries no global timeout: the poll call is a long poll by design, and
// every call is bounded by its ctx.
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
}

// post round-trips one protocol message: JSON in, JSON out, non-2xx
// statuses surfaced as errors carrying the server's {"error": ...} text.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("cluster: reading %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("cluster: %s: HTTP %d: %s", path, resp.StatusCode, e.Error)
		}
		return fmt.Errorf("cluster: %s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("cluster: decoding %s response: %w", path, err)
	}
	return nil
}

func (c *Client) Register(ctx context.Context, req protocol.RegisterRequest) (protocol.RegisterResponse, error) {
	var resp protocol.RegisterResponse
	err := c.post(ctx, "/cluster/v1/register", req, &resp)
	return resp, err
}

func (c *Client) Heartbeat(ctx context.Context, req protocol.HeartbeatRequest) (protocol.HeartbeatResponse, error) {
	var resp protocol.HeartbeatResponse
	err := c.post(ctx, "/cluster/v1/heartbeat", req, &resp)
	return resp, err
}

func (c *Client) Poll(ctx context.Context, req protocol.PollRequest) (protocol.PollResponse, error) {
	var resp protocol.PollResponse
	err := c.post(ctx, "/cluster/v1/poll", req, &resp)
	return resp, err
}

func (c *Client) ReturnRows(ctx context.Context, req protocol.RowReturn) (protocol.RowAck, error) {
	var resp protocol.RowAck
	err := c.post(ctx, "/cluster/v1/rows", req, &resp)
	return resp, err
}

func (c *Client) DrainWorker(ctx context.Context, req protocol.DrainRequest) (protocol.DrainResponse, error) {
	var resp protocol.DrainResponse
	err := c.post(ctx, "/cluster/v1/drain", req, &resp)
	return resp, err
}
