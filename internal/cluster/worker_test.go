package cluster

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"riscvmem/internal/cluster/protocol"
	"riscvmem/internal/run"
	"riscvmem/internal/service"
)

// stubAPI is a hand-rolled coordinator for worker-side unit tests: it
// records every RowReturn and lets the test script the acks.
type stubAPI struct {
	mu      sync.Mutex
	returns []protocol.RowReturn
	calls   int
	// ack scripts ReturnRows; nil accepts everything. call is 1-based.
	ack func(call int, req protocol.RowReturn) (protocol.RowAck, error)
}

func (s *stubAPI) Register(ctx context.Context, req protocol.RegisterRequest) (protocol.RegisterResponse, error) {
	return protocol.RegisterResponse{HeartbeatMS: 1000, LeaseMS: 3000}, nil
}

func (s *stubAPI) Heartbeat(ctx context.Context, req protocol.HeartbeatRequest) (protocol.HeartbeatResponse, error) {
	return protocol.HeartbeatResponse{OK: true}, nil
}

func (s *stubAPI) Poll(ctx context.Context, req protocol.PollRequest) (protocol.PollResponse, error) {
	return protocol.PollResponse{}, nil
}

func (s *stubAPI) ReturnRows(ctx context.Context, req protocol.RowReturn) (protocol.RowAck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	s.returns = append(s.returns, req)
	if s.ack != nil {
		return s.ack(s.calls, req)
	}
	return protocol.RowAck{Accepted: len(req.Rows)}, nil
}

func (s *stubAPI) DrainWorker(ctx context.Context, req protocol.DrainRequest) (protocol.DrainResponse, error) {
	return protocol.DrainResponse{}, nil
}

func (s *stubAPI) snapshot() (int, []protocol.RowReturn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls, append([]protocol.RowReturn(nil), s.returns...)
}

// TestWorkerPanicContainment pins the tentpole's worker half: a panic
// anywhere in the execution path (here: a nil Service, standing in for any
// executor bug the runner's own recovery cannot reach) must not escape
// execute. It is contained and reported as per-cell failure rows — Failed
// set, the panic in the error, every unresolved cell covered — so the
// coordinator charges the cells' budgets instead of losing a worker.
func TestWorkerPanicContainment(t *testing.T) {
	stub := &stubAPI{}
	spec := run.MustParseWorkloadSpec("stream:test=COPY,elems=64,reps=1")
	w := &Worker{opt: WorkerOptions{ID: "frail", API: stub, FlushRows: 16, Logf: t.Logf}}
	a := &protocol.Assignment{ID: "a1", Kind: "batch", Cells: []protocol.Cell{
		{Index: 3, Device: "MangoPi", Workload: &spec},
		{Index: 7, Device: "MangoPi", Workload: &spec},
	}}

	w.execute(context.Background(), a) // must return, not panic the test

	calls, returns := stub.snapshot()
	if calls != 1 {
		t.Fatalf("ReturnRows called %d times, want 1 (single contained close-out)", calls)
	}
	ret := returns[0]
	if !ret.Done {
		t.Error("contained close-out not marked Done")
	}
	if len(ret.Rows) != 2 {
		t.Fatalf("close-out carries %d rows, want one per cell (2)", len(ret.Rows))
	}
	gotIdx := map[int]bool{}
	for _, row := range ret.Rows {
		gotIdx[row.Index] = true
		if !row.Failed {
			t.Errorf("row %d not marked Failed: %+v", row.Index, row)
		}
		if !strings.Contains(row.Error, "panic") || !strings.Contains(row.Error, "frail") {
			t.Errorf("row %d error %q: want the panic attributed to the worker", row.Index, row.Error)
		}
	}
	if !gotIdx[3] || !gotIdx[7] {
		t.Errorf("failure rows cover indexes %v, want the assignment's global indexes 3 and 7", gotIdx)
	}
	if w.cellFailures.Load() != 1 {
		t.Errorf("cellFailures = %d, want 1", w.cellFailures.Load())
	}
}

// executeAssignment runs one real single-cell assignment through a worker
// wired to the stub, returning the worker for counter assertions.
func executeAssignment(t *testing.T, stub *stubAPI) *Worker {
	t.Helper()
	spec := run.MustParseWorkloadSpec("stream:test=COPY,elems=64,reps=1")
	w, err := NewWorker(WorkerOptions{
		ID: "retrier", Service: service.New(service.Options{}), API: stub,
		FlushRows: 16, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	w.execute(context.Background(), &protocol.Assignment{
		ID: "a1", Kind: "batch",
		Cells: []protocol.Cell{{Index: 0, Device: "MangoPi", Workload: &spec}},
	})
	return w
}

// TestWorkerReturnRetryThenAbandon pins satellite behavior on the flush
// retry loop: transport errors are retried (3 attempts), and giving up is
// not silent — it is counted in the worker's metrics.
func TestWorkerReturnRetryThenAbandon(t *testing.T) {
	stub := &stubAPI{ack: func(call int, req protocol.RowReturn) (protocol.RowAck, error) {
		return protocol.RowAck{}, errors.New("injected: transport down")
	}}
	start := time.Now()
	w := executeAssignment(t, stub)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("abandonment took %s; retries must be bounded", elapsed)
	}
	calls, _ := stub.snapshot()
	if calls != 3 {
		t.Errorf("ReturnRows called %d times, want exactly 3 attempts before abandoning", calls)
	}
	if w.returnsAbandoned.Load() != 1 {
		t.Errorf("returnsAbandoned = %d, want 1", w.returnsAbandoned.Load())
	}
	if w.rowsAbandoned.Load() != 1 {
		t.Errorf("rowsAbandoned = %d, want 1", w.rowsAbandoned.Load())
	}
}

// TestWorkerReturnTransientErrorRecovers pins the complement: a transport
// error that clears before the attempts run out delivers the rows and
// abandons nothing.
func TestWorkerReturnTransientErrorRecovers(t *testing.T) {
	stub := &stubAPI{ack: func(call int, req protocol.RowReturn) (protocol.RowAck, error) {
		if call <= 2 {
			return protocol.RowAck{}, errors.New("injected: transient transport error")
		}
		return protocol.RowAck{Accepted: len(req.Rows)}, nil
	}}
	w := executeAssignment(t, stub)
	calls, returns := stub.snapshot()
	if calls != 3 {
		t.Errorf("ReturnRows called %d times, want 3 (two failures + success)", calls)
	}
	if w.returnsAbandoned.Load() != 0 {
		t.Errorf("returnsAbandoned = %d, want 0 after recovery", w.returnsAbandoned.Load())
	}
	last := returns[len(returns)-1]
	if !last.Done || len(last.Rows) != 1 || last.Rows[0].Error != "" {
		t.Errorf("delivered return %+v, want one clean Done row", last)
	}
}

// TestWorkerReturnRevokedStopsImmediately pins the Revoked half: a revoked
// ack is an answer, not a failure — the worker must stop at once (no
// retries of a rejected return, no further returns for the assignment).
func TestWorkerReturnRevokedStopsImmediately(t *testing.T) {
	stub := &stubAPI{ack: func(call int, req protocol.RowReturn) (protocol.RowAck, error) {
		return protocol.RowAck{Revoked: true}, nil
	}}
	spec := run.MustParseWorkloadSpec("stream:test=COPY,elems=64,reps=1")
	spec2 := run.MustParseWorkloadSpec("stream:test=SCALE,elems=64,reps=1")
	w, err := NewWorker(WorkerOptions{
		ID: "revoked", Service: service.New(service.Options{}), API: stub,
		FlushRows: 1, Logf: t.Logf, // flush per row: the first row trips the revocation
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	w.execute(context.Background(), &protocol.Assignment{
		ID: "a1", Kind: "batch",
		Cells: []protocol.Cell{
			{Index: 0, Device: "MangoPi", Workload: &spec},
			{Index: 1, Device: "MangoPi", Workload: &spec2},
		},
	})
	calls, _ := stub.snapshot()
	if calls != 1 {
		t.Errorf("ReturnRows called %d times after a Revoked ack, want exactly 1", calls)
	}
	if w.returnsAbandoned.Load() != 0 {
		t.Errorf("returnsAbandoned = %d, want 0 (revocation is not abandonment)", w.returnsAbandoned.Load())
	}
}
