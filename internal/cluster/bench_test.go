package cluster

import (
	"context"
	"testing"

	"riscvmem/internal/run"
	"riscvmem/internal/service"
)

// BenchmarkClusterSweep measures clustered sweep cost per cell over an
// in-process coordinator with two workers. The first sweep warms the
// workers' memo stores; the timed iterations therefore measure the control
// plane itself — routing, dispatch, row return, reassembly — plus memo
// lookups, not simulation. scripts/bench.sh records the ns/cell figure as
// cluster_sweep_ns_per_cell.
func BenchmarkClusterSweep(b *testing.B) {
	ctx := context.Background()
	req := service.SweepRequest{
		Device: "MangoPi",
		Axes:   []string{"l2=base,64KiB,128KiB,256KiB", "maxinflight=base,2"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=TRIAD,elems=4096,reps=1"),
			run.MustParseWorkloadSpec("transpose:variant=Blocking,n=128"),
		},
	}
	plan, err := planSweep(req.Device, req.Axes, req.Workloads, 0)
	if err != nil {
		b.Fatalf("planSweep: %v", err)
	}
	cells := len(plan.jobs)

	coord := New(Options{})
	defer coord.Close()
	w1 := startWorker(b, coord, "w1", nil)
	w2 := startWorker(b, coord, "w2", nil)
	defer w2.stop()
	defer w1.stop()
	waitForWorkers(b, coord, 2)

	if _, err := coord.Sweep(ctx, req); err != nil {
		b.Fatalf("warmup sweep: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.Sweep(ctx, req); err != nil {
			b.Fatalf("sweep: %v", err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*cells), "ns/cell")
}
