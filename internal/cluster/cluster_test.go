package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"riscvmem/internal/cluster/protocol"
	"riscvmem/internal/run"
	"riscvmem/internal/service"
)

// oracleSpecs mirrors the service oracle's kernel set: every built-in
// kernel in every variant, at test-sized configurations.
func oracleSpecs() []run.WorkloadSpec {
	specStrs := []string{
		"stream:test=COPY,elems=4096,reps=1",
		"stream:test=SCALE,elems=4096,reps=1",
		"stream:test=SUM,elems=4096,reps=1",
		"stream:test=TRIAD,elems=4096,reps=1",
		"transpose:variant=Naive,n=128",
		"transpose:variant=Parallel,n=128",
		"transpose:variant=Blocking,n=128",
		"transpose:variant=Manual_blocking,n=128",
		"transpose:variant=Dynamic,n=128",
		"gblur:variant=Naive,w=64,h=48,c=3,f=5",
		"gblur:variant=Unit-stride,w=64,h=48,c=3,f=5",
		"gblur:variant=1D_kernels,w=64,h=48,c=3,f=5",
		"gblur:variant=Memory,w=64,h=48,c=3,f=5",
		"gblur:variant=Parallel,w=64,h=48,c=3,f=5",
	}
	specs := make([]run.WorkloadSpec, len(specStrs))
	for i, s := range specStrs {
		specs[i] = run.MustParseWorkloadSpec(s)
	}
	return specs
}

// testWorker is one in-process worker agent with its own Service (own
// runner, own memo store — exactly one simd -mode worker process).
type testWorker struct {
	id     string
	svc    *service.Service
	cancel context.CancelFunc
	done   chan struct{}
}

// startWorker launches a worker agent against the given coordinator API
// and returns it running. stop() cancels it (the drain path) and waits.
func startWorker(t testing.TB, api API, id string, tweak func(*WorkerOptions)) *testWorker {
	t.Helper()
	svc := service.New(service.Options{})
	opt := WorkerOptions{
		ID: id, Service: svc, API: api,
		MaxConcurrent: 2,
		PollWait:      250 * time.Millisecond,
		FlushRows:     4,
		Logf:          t.Logf,
	}
	if tweak != nil {
		tweak(&opt)
	}
	w, err := NewWorker(opt)
	if err != nil {
		t.Fatalf("NewWorker(%s): %v", id, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tw := &testWorker{id: id, svc: svc, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(tw.done)
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker %s: Run: %v", id, err)
		}
	}()
	return tw
}

func (tw *testWorker) stop() {
	tw.cancel()
	<-tw.done
}

// waitForWorkers blocks until n workers are registered.
func waitForWorkers(t testing.TB, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Workers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered after 5s", c.Workers(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// postJSON round-trips one client request through the coordinator's HTTP
// front — the exact wire a real client uses.
func postJSON(t *testing.T, url string, req any) *service.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	httpResp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer httpResp.Body.Close()
	var resp service.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("POST %s: decoding (HTTP %d): %v", url, httpResp.StatusCode, err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: HTTP %d", url, httpResp.StatusCode)
	}
	return &resp
}

// TestClusterBatchOracle pins a coordinator-routed batch — over real HTTP,
// two real workers — bit-identical to the standalone service over the full
// kernel × device cross-product, with every workload requested twice:
// the duplicate cells must be deduplicated cluster-wide (the consistent
// ring sends both copies to the same worker, whose memo dedups them), and
// a warm rerun must cause zero new simulations.
func TestClusterBatchOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-product oracle")
	}
	ctx := context.Background()
	specs := oracleSpecs()
	doubled := append(append([]run.WorkloadSpec{}, specs...), specs...)
	req := service.BatchRequest{Workloads: doubled} // empty Devices = all presets

	standalone := service.New(service.Options{})
	want, err := standalone.Batch(ctx, req)
	if err != nil {
		t.Fatalf("standalone Batch: %v", err)
	}

	coord := New(Options{Logf: t.Logf})
	defer coord.Close()
	srv := httptest.NewServer(NewCoordinatorHandler(coord, t.Logf))
	defer srv.Close()
	client := NewClient(srv.URL)
	w1 := startWorker(t, client, "w1", nil)
	w2 := startWorker(t, client, "w2", nil)
	defer w2.stop()
	defer w1.stop()
	waitForWorkers(t, coord, 2)

	got := postJSON(t, srv.URL+"/v1/batch", req)
	if len(got.Results) != len(want.Results) {
		t.Fatalf("cluster batch: %d rows, standalone %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if got.Results[i].Result != want.Results[i].Result {
			t.Errorf("row %d: cluster %+v != standalone %+v", i, got.Results[i].Result, want.Results[i].Result)
		}
		if got.Results[i].Error != want.Results[i].Error {
			t.Errorf("row %d: cluster error %q != standalone %q", i, got.Results[i].Error, want.Results[i].Error)
		}
	}

	// Cluster-wide dedup: of devices × (2 × kernels) cells, only the
	// distinct devices × kernels simulate — the duplicates are memo hits on
	// their ring owner — and the sum of the two workers' own runner misses
	// accounts for every distinct cell exactly once.
	distinct := uint64(len(want.Results)) / 2
	total := uint64(len(want.Results))
	if got.Cache.RequestMisses != distinct {
		t.Errorf("cold cluster batch: %d request misses, want %d (distinct cells)", got.Cache.RequestMisses, distinct)
	}
	if got.Cache.RequestHits != total-distinct {
		t.Errorf("cold cluster batch: %d request hits, want %d (duplicate cells)", got.Cache.RequestHits, total-distinct)
	}
	_, m1 := w1.svc.Runner().CacheStats()
	_, m2 := w2.svc.Runner().CacheStats()
	if m1+m2 != distinct {
		t.Errorf("worker runner misses %d+%d = %d, want %d: some cell simulated on both workers",
			m1, m2, m1+m2, distinct)
	}

	// Warm rerun: the ring is stable, so every cell lands back on the
	// worker whose memo already holds it — zero new simulations anywhere.
	warm := postJSON(t, srv.URL+"/v1/batch", req)
	if warm.Cache.RequestMisses != 0 {
		t.Errorf("warm cluster batch: %d request misses, want 0", warm.Cache.RequestMisses)
	}
	if warm.Cache.RequestHits != total {
		t.Errorf("warm cluster batch: %d request hits, want %d", warm.Cache.RequestHits, total)
	}
	for i := range warm.Results {
		if warm.Results[i].Result != want.Results[i].Result {
			t.Errorf("warm row %d: %+v != standalone %+v", i, warm.Results[i].Result, want.Results[i].Result)
		}
	}
	if _, m := w1.svc.Runner().CacheStats(); m != m1 {
		t.Errorf("warm rerun: worker w1 simulated %d new cells, want 0", m-m1)
	}
	if _, m := w2.svc.Runner().CacheStats(); m != m2 {
		t.Errorf("warm rerun: worker w2 simulated %d new cells, want 0", m-m2)
	}
}

// TestClusterSweepOracle pins a coordinator-routed sweep — labels,
// speedups, bandwidth ratios, row order — bit-identical to the standalone
// service's sweep of the same grid.
func TestClusterSweepOracle(t *testing.T) {
	ctx := context.Background()
	req := service.SweepRequest{
		Device: "MangoPi",
		Axes:   []string{"l2=base,128KiB", "maxinflight=base,2"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=TRIAD,elems=4096,reps=1"),
			run.MustParseWorkloadSpec("transpose:variant=Blocking,n=128"),
		},
	}

	standalone := service.New(service.Options{})
	want, err := standalone.Sweep(ctx, req)
	if err != nil {
		t.Fatalf("standalone Sweep: %v", err)
	}

	coord := New(Options{Logf: t.Logf})
	defer coord.Close()
	srv := httptest.NewServer(NewCoordinatorHandler(coord, t.Logf))
	defer srv.Close()
	client := NewClient(srv.URL)
	w1 := startWorker(t, client, "w1", nil)
	w2 := startWorker(t, client, "w2", nil)
	defer w2.stop()
	defer w1.stop()
	waitForWorkers(t, coord, 2)

	got := postJSON(t, srv.URL+"/v1/sweep", req)
	if len(got.Results) != len(want.Results) {
		t.Fatalf("cluster sweep: %d rows, standalone %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if !reflect.DeepEqual(got.Results[i], want.Results[i]) {
			t.Errorf("row %d: cluster %+v != standalone %+v", i, got.Results[i], want.Results[i])
		}
	}
	if got.Cache.RequestMisses != want.Cache.RequestMisses {
		t.Errorf("cluster sweep: %d request misses, standalone %d", got.Cache.RequestMisses, want.Cache.RequestMisses)
	}
}

// TestClusterExactlyOnceUnderRevocation drives the protocol by hand to pin
// the revocation contract without any timing: a worker takes an assignment,
// drains, and then tries to return rows — those rows must be rejected as
// revoked and its cache delta discarded, while the requeued cell's row from
// the new owner is accepted exactly once.
func TestClusterExactlyOnceUnderRevocation(t *testing.T) {
	ctx := context.Background()
	coord := New(Options{Logf: t.Logf})
	defer coord.Close()

	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "a"}); err != nil {
		t.Fatalf("register a: %v", err)
	}

	respCh := make(chan *service.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := coord.Batch(ctx, service.BatchRequest{
			Devices:   []string{"MangoPi"},
			Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=64,reps=1")},
		})
		respCh <- resp
		errCh <- err
	}()

	poll, err := coord.Poll(ctx, protocol.PollRequest{WorkerID: "a", WaitMS: 5000})
	if err != nil || poll.Assignment == nil {
		t.Fatalf("poll a: assignment=%v err=%v", poll.Assignment, err)
	}
	if n := len(poll.Assignment.Cells); n != 1 {
		t.Fatalf("poll a: %d cells, want 1", n)
	}

	// The worker departs with the assignment outstanding: its cell is
	// requeued (no other worker yet → the unassigned pool) and the
	// assignment revoked.
	drain, err := coord.DrainWorker(ctx, protocol.DrainRequest{WorkerID: "a"})
	if err != nil {
		t.Fatalf("drain a: %v", err)
	}
	if drain.Requeued != 1 {
		t.Fatalf("drain a: requeued %d cells, want 1", drain.Requeued)
	}

	// The departed worker's late rows — and its cache delta — must be
	// rejected wholesale, or a cell could be double-delivered and
	// double-counted.
	staleRow := protocol.Row{Index: 0, Result: run.Result{Workload: "stale", Device: "stale", Seconds: 9}}
	ack, err := coord.ReturnRows(ctx, protocol.RowReturn{
		WorkerID: "a", AssignmentID: poll.Assignment.ID,
		Rows: []protocol.Row{staleRow}, Done: true,
		Cache: &protocol.CacheDelta{Misses: 99},
	})
	if err != nil {
		t.Fatalf("stale return: %v", err)
	}
	if !ack.Revoked || ack.Accepted != 0 {
		t.Fatalf("stale return: ack %+v, want revoked with 0 accepted", ack)
	}

	// A new worker joins, inherits the pooled cell, and its row is the one
	// the client sees.
	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "b"}); err != nil {
		t.Fatalf("register b: %v", err)
	}
	poll, err = coord.Poll(ctx, protocol.PollRequest{WorkerID: "b", WaitMS: 5000})
	if err != nil || poll.Assignment == nil {
		t.Fatalf("poll b: assignment=%v err=%v", poll.Assignment, err)
	}
	goodRow := protocol.Row{Index: 0, Result: run.Result{Workload: "stream", Device: "MangoPi", Seconds: 1.5}}
	ack, err = coord.ReturnRows(ctx, protocol.RowReturn{
		WorkerID: "b", AssignmentID: poll.Assignment.ID,
		Rows: []protocol.Row{goodRow}, Done: true,
		Cache: &protocol.CacheDelta{Hits: 0, Misses: 1},
	})
	if err != nil || ack.Accepted != 1 || ack.Revoked {
		t.Fatalf("good return: ack %+v err=%v, want 1 accepted", ack, err)
	}

	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Result != goodRow.Result {
		t.Fatalf("batch result %+v, want the new owner's row %+v", resp.Results, goodRow.Result)
	}
	if resp.Cache.RequestMisses != 1 || resp.Cache.RequestHits != 0 {
		t.Fatalf("batch cache %+v: the revoked delta leaked in", resp.Cache)
	}

	coord.mu.Lock()
	accepted, revoked, requeued := coord.rowsAccepted, coord.rowsRevoked, coord.cellsRequeued
	coord.mu.Unlock()
	if accepted != 1 || revoked != 1 || requeued != 1 {
		t.Errorf("counters accepted=%d revoked=%d requeued=%d, want 1/1/1", accepted, revoked, requeued)
	}
}

// TestClusterLeaseExpiry pins the liveness half of the contract: a worker
// that takes an assignment and then falls silent is declared lost when its
// lease lapses, and its cell completes on a later-joining worker.
func TestClusterLeaseExpiry(t *testing.T) {
	ctx := context.Background()
	coord := New(Options{HeartbeatInterval: 10 * time.Millisecond, Lease: 60 * time.Millisecond, Logf: t.Logf})
	defer coord.Close()

	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "silent"}); err != nil {
		t.Fatalf("register: %v", err)
	}
	respCh := make(chan *service.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := coord.Batch(ctx, service.BatchRequest{
			Devices:   []string{"MangoPi"},
			Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=64,reps=1")},
		})
		respCh <- resp
		errCh <- err
	}()
	poll, err := coord.Poll(ctx, protocol.PollRequest{WorkerID: "silent", WaitMS: 5000})
	if err != nil || poll.Assignment == nil {
		t.Fatalf("poll: assignment=%v err=%v", poll.Assignment, err)
	}

	// Never heartbeat: the janitor must declare the worker lost on its own.
	deadline := time.Now().Add(5 * time.Second)
	for {
		coord.mu.Lock()
		lost := coord.workersLost
		coord.mu.Unlock()
		if lost == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never declared lost after 5s of silence")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := coord.Register(ctx, protocol.RegisterRequest{WorkerID: "rescue"}); err != nil {
		t.Fatalf("register rescue: %v", err)
	}
	poll, err = coord.Poll(ctx, protocol.PollRequest{WorkerID: "rescue", WaitMS: 5000})
	if err != nil || poll.Assignment == nil {
		t.Fatalf("poll rescue: assignment=%v err=%v", poll.Assignment, err)
	}
	row := protocol.Row{Index: 0, Result: run.Result{Workload: "stream", Device: "MangoPi", Seconds: 2}}
	if _, err := coord.ReturnRows(ctx, protocol.RowReturn{
		WorkerID: "rescue", AssignmentID: poll.Assignment.ID,
		Rows: []protocol.Row{row}, Done: true,
	}); err != nil {
		t.Fatalf("return: %v", err)
	}
	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Result != row.Result {
		t.Fatalf("batch result %+v, want the rescue worker's row", resp.Results)
	}
}

// TestClusterWorkerKillMidSweep kills one of two live workers in the middle
// of a sweep — the drain path a SIGTERM takes — and requires the sweep to
// complete with rows bit-identical to the standalone service: no row lost,
// none delivered twice.
func TestClusterWorkerKillMidSweep(t *testing.T) {
	ctx := context.Background()
	req := service.SweepRequest{
		Device: "VisionFive",
		Axes:   []string{"l2=base,64KiB,256KiB,512KiB", "maxinflight=base,2"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("transpose:variant=Naive,n=128"),
			run.MustParseWorkloadSpec("gblur:variant=Naive,w=64,h=48,c=3,f=5"),
		},
	}
	standalone := service.New(service.Options{})
	want, err := standalone.Sweep(ctx, req)
	if err != nil {
		t.Fatalf("standalone Sweep: %v", err)
	}
	plan, err := planSweep(req.Device, req.Axes, req.Workloads, 0)
	if err != nil {
		t.Fatalf("planSweep: %v", err)
	}
	totalJobs := uint64(len(plan.jobs))

	// Small assignments + row-by-row streaming so the kill lands while
	// cells are genuinely outstanding on both workers.
	coord := New(Options{AssignmentCells: 2, Logf: t.Logf})
	defer coord.Close()
	workers := map[string]*testWorker{
		"w1": startWorker(t, coord, "w1", func(o *WorkerOptions) { o.FlushRows = 1; o.MaxConcurrent = 1 }),
		"w2": startWorker(t, coord, "w2", func(o *WorkerOptions) { o.FlushRows = 1; o.MaxConcurrent = 1 }),
	}
	defer func() {
		for _, w := range workers {
			w.stop()
		}
	}()
	waitForWorkers(t, coord, 2)

	respCh := make(chan *service.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := coord.Sweep(ctx, req)
		respCh <- resp
		errCh <- err
	}()

	// Wait for the sweep to be genuinely in flight, then kill whichever
	// worker still holds unfinished cells (either, if both do).
	deadline := time.Now().Add(10 * time.Second)
	victim := ""
	for victim == "" {
		coord.mu.Lock()
		if coord.rowsAccepted > 0 {
			for id, ws := range coord.workers {
				n := len(ws.queue)
				for _, asn := range ws.delivered {
					n += len(asn.cells)
				}
				if n > 0 {
					victim = id
					break
				}
			}
		}
		started := coord.rowsAccepted > 0
		coord.mu.Unlock()
		if victim != "" || time.Now().After(deadline) {
			break
		}
		if started {
			// Rows flowed but nothing is outstanding: the sweep is ending;
			// nothing left to kill. The remaining assertions still hold.
			break
		}
		time.Sleep(time.Millisecond)
	}
	if victim != "" {
		t.Logf("killing worker %s mid-sweep", victim)
		workers[victim].stop()
	}

	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatalf("cluster sweep after worker loss: %v", err)
	}
	if len(resp.Results) != len(want.Results) {
		t.Fatalf("cluster sweep: %d rows, standalone %d", len(resp.Results), len(want.Results))
	}
	for i := range resp.Results {
		if !reflect.DeepEqual(resp.Results[i], want.Results[i]) {
			t.Errorf("row %d: cluster %+v != standalone %+v", i, resp.Results[i], want.Results[i])
		}
	}

	coord.mu.Lock()
	accepted := coord.rowsAccepted
	requeued := coord.cellsRequeued
	coord.mu.Unlock()
	// Exactly-once: every job's row was accepted into the dispatch exactly
	// once, regardless of how many times its cell was handed out.
	if accepted != totalJobs {
		t.Errorf("rows accepted %d, want exactly %d (one per job)", accepted, totalJobs)
	}
	t.Logf("requeued %d cell(s) after kill", requeued)
	// Requeued cells must not be double-counted in the request's cache
	// stats: the revoked owner's delta is discarded, so the totals can
	// undercount but never exceed the job count.
	if got := resp.Cache.RequestHits + resp.Cache.RequestMisses; got > totalJobs {
		t.Errorf("cache stats count %d cells, more than the %d jobs: requeued work double-counted", got, totalJobs)
	}
}

// TestRingAffinityAndStability pins the two properties scheduling relies
// on: the key → worker mapping is deterministic across rebuilds (affinity —
// and, because the hash is FNV-1a, across processes), and removing one
// worker moves only that worker's keys (stability under churn).
func TestRingAffinityAndStability(t *testing.T) {
	workers := []string{"alpha", "beta", "gamma"}
	r1 := buildRing(workers)
	r2 := buildRing([]string{"gamma", "beta", "alpha"}) // order must not matter

	keys := make([]string, 0, 200)
	for _, spec := range oracleSpecs() {
		keys = append(keys, "dev\x00"+spec.String())
	}
	for i := 0; i < 100; i++ {
		keys = append(keys, string(rune('a'+i%26))+"\x00key")
	}

	owned := map[string]int{}
	for _, k := range keys {
		o1, o2 := r1.owner(k), r2.owner(k)
		if o1 != o2 {
			t.Fatalf("key %q: owner %q vs %q across identical rebuilds", k, o1, o2)
		}
		owned[o1]++
	}
	for _, w := range workers {
		if owned[w] == 0 {
			t.Errorf("worker %s owns no keys of %d — ring badly unbalanced", w, len(keys))
		}
	}

	shrunk := buildRing([]string{"alpha", "beta"})
	moved := 0
	for _, k := range keys {
		before, after := r1.owner(k), shrunk.owner(k)
		if before == "gamma" {
			if after == "gamma" {
				t.Fatalf("key %q still owned by removed worker", k)
			}
			moved++
			continue
		}
		if before != after {
			t.Errorf("key %q moved %s → %s though its owner never left", k, before, after)
		}
	}
	if moved == 0 {
		t.Error("removed worker owned no keys; stability not exercised")
	}

	if got := buildRing(nil).owner("anything"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
}
