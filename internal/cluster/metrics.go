package cluster

import (
	"fmt"
	"io"
	"strings"
)

// WriteMetrics renders the coordinator's control-plane metrics in
// Prometheus text exposition format — the scheduling-side counterpart of
// service.WriteMetrics (which workers keep serving on their own /metrics).
// One short lock hold snapshots everything; rendering happens outside.
func (c *Coordinator) WriteMetrics(w io.Writer) error {
	c.mu.Lock()
	workers := len(c.workers)
	queued := len(c.unassigned)
	inflight := 0
	for _, ws := range c.workers {
		queued += len(ws.queue)
		for _, asn := range ws.delivered {
			inflight += len(asn.cells)
		}
	}
	active := len(c.dispatches)
	lost, drained := c.workersLost, c.workersDrained
	requeued, accepted, revoked := c.cellsRequeued, c.rowsAccepted, c.rowsRevoked
	quarantined, failures := c.cellsQuarantined, c.cellFailures
	dispatches, expired := c.dispatchCount, c.dispatchesExpired
	c.mu.Unlock()

	var b strings.Builder
	cgauge(&b, "simd_cluster_workers",
		"Workers currently registered and within their lease.", workers)
	cgauge(&b, "simd_cluster_cells_queued",
		"Cells routed (or pooled unassigned) but not yet delivered to a worker.", queued)
	cgauge(&b, "simd_cluster_cells_inflight",
		"Cells delivered to workers and awaiting rows.", inflight)
	cgauge(&b, "simd_cluster_dispatches_active",
		"Client requests currently being assembled.", active)
	ccounter(&b, "simd_cluster_dispatches_total",
		"Client requests dispatched since start.", dispatches)
	ccounter(&b, "simd_cluster_workers_lost_total",
		"Workers marked lost after a lapsed lease.", lost)
	ccounter(&b, "simd_cluster_workers_drained_total",
		"Workers that announced drain and departed cleanly.", drained)
	ccounter(&b, "simd_cluster_cells_requeued_total",
		"Cells requeued from lost, draining, or refusing workers.", requeued)
	ccounter(&b, "simd_cluster_cells_quarantined_total",
		"Cells completed as quarantine error rows after exhausting the failure budget.", quarantined)
	ccounter(&b, "simd_cluster_cell_failures_total",
		"Contained cell failures reported by workers (panics attributed to cells).", failures)
	ccounter(&b, "simd_cluster_rows_accepted_total",
		"Rows accepted into dispatches (including quarantine error rows).", accepted)
	ccounter(&b, "simd_cluster_rows_revoked_total",
		"Rows rejected because their assignment was revoked.", revoked)
	ccounter(&b, "simd_cluster_dispatches_deadline_expired_total",
		"Dispatches that returned degraded after their request deadline expired.", expired)

	_, err := io.WriteString(w, b.String())
	return err
}

// cgauge / ccounter render one unlabelled series each; the tiny local
// duplicates of the service helpers keep the cluster package from
// exporting service's rendering internals just for ten lines.
func cgauge(b *strings.Builder, name, help string, v int) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

func ccounter(b *strings.Builder, name, help string, v uint64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}
