// Package cluster is the distributed control plane over the simulation
// service: a Coordinator that shards client requests across registered
// worker agents, and a Worker that executes its share through an ordinary
// service.Service. It is how one `simd` process becomes a fleet.
//
// The division of labor is strict. The coordinator never simulates: it
// validates requests exactly like the standalone service, splits them into
// cells, routes every cell to a worker with a consistent-hash ring keyed by
// (device IdentityString, workload CacheKey) — the persistent memo store's
// own coordinates, so identical cells always land on the same worker and
// are deduplicated cluster-wide by that worker's singleflight and warm
// memo tiers — and reassembles returned rows in job order. Workers own all
// execution state (admission, machine pool, memo store, drain), reusing
// internal/service unchanged.
//
// Liveness is lease-based: workers heartbeat on the interval the
// coordinator advertises at registration, and a worker silent past its
// lease is marked lost — its unfinished cells are requeued onto the
// surviving ring and its late row returns are revoked, so every response
// row is delivered exactly once even across worker loss. A draining worker
// (SIGTERM) announces itself and gets the same requeue, just politely.
//
// Because the simulator is deterministic and rows are reassembled in job
// order, a clustered response is bit-identical to the standalone service's
// response for the same request — pinned by this package's oracle test
// over the full kernel × device cross-product, including a worker killed
// mid-sweep.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"riscvmem/internal/cluster/protocol"
	"riscvmem/internal/faultinject"
	"riscvmem/internal/machine"
	"riscvmem/internal/memostore"
	"riscvmem/internal/metrics"
	"riscvmem/internal/run"
	"riscvmem/internal/service"
	"riscvmem/internal/sweep"
)

// API is the coordinator surface a worker speaks — the protocol's five
// messages. Coordinator implements it directly (in-process clusters,
// tests, benchmarks); Client implements it over HTTP (real deployments).
// Both bindings carry exactly the same JSON-shaped values, so a worker
// cannot tell them apart.
type API interface {
	Register(ctx context.Context, req protocol.RegisterRequest) (protocol.RegisterResponse, error)
	Heartbeat(ctx context.Context, req protocol.HeartbeatRequest) (protocol.HeartbeatResponse, error)
	Poll(ctx context.Context, req protocol.PollRequest) (protocol.PollResponse, error)
	ReturnRows(ctx context.Context, req protocol.RowReturn) (protocol.RowAck, error)
	DrainWorker(ctx context.Context, req protocol.DrainRequest) (protocol.DrainResponse, error)
}

// Options configures a Coordinator.
type Options struct {
	// HeartbeatInterval is advertised to workers at registration; 0 → 1s.
	HeartbeatInterval time.Duration
	// Lease is the liveness deadline: a worker whose last heartbeat is
	// older is marked lost and its cells requeued. 0 → 3×HeartbeatInterval.
	Lease time.Duration
	// MaxJobs bounds one request's cell count (device × workload or
	// cell × workload). 0 → 4096.
	MaxJobs int
	// AssignmentCells caps the cells handed out per poll, so one slow
	// worker cannot hoard a whole sweep. 0 → 256.
	AssignmentCells int
	// MaxCellAttempts is the per-cell failure budget: how many failed
	// attempts (worker losses while the cell was in flight, contained cell
	// failures reported by workers) one cell may accumulate before it is
	// quarantined — completed as an error row while its sibling cells
	// finish normally. Without the budget one poison cell that crashes its
	// executor would serially kill every worker in the fleet and livelock
	// the dispatch. 0 → 3.
	MaxCellAttempts int
	// DefaultTimeout / MaxTimeout mirror the service facade's request
	// timeout knobs (see service.Options); they bound how long a dispatch
	// waits for its rows.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Logf receives operational log lines (worker loss, requeues). Nil
	// discards them.
	Logf func(format string, args ...any)
}

// Coordinator schedules client requests over registered workers. Safe for
// concurrent use. Close must be called when done (it stops the liveness
// janitor and unblocks pending polls and dispatches).
type Coordinator struct {
	opt Options

	mu         sync.Mutex
	workers    map[string]*workerState
	ring       *ring
	dispatches map[string]*dispatch
	unassigned []*cellTask // cells with no live owner (empty ring, requeue fault)
	seq        uint64      // dispatch/assignment ID counter

	// Counters for /metrics, guarded by mu.
	workersLost       uint64
	workersDrained    uint64
	cellsRequeued     uint64
	cellsQuarantined  uint64
	cellFailures      uint64
	rowsAccepted      uint64
	rowsRevoked       uint64
	dispatchCount     uint64
	dispatchesExpired uint64

	closed      chan struct{}
	closeOnce   sync.Once
	janitorDone chan struct{}
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id        string
	addr      string
	lastBeat  time.Time
	queue     []*cellTask            // routed here, not yet delivered
	delivered map[string]*assignment // delivered, awaiting rows
	wake      chan struct{}          // poll wakeup, capacity 1
}

// assignment tracks one delivered cell batch until its rows are in.
type assignment struct {
	id    string
	d     *dispatch
	cells map[int]*cellTask // by global row index; emptied as rows arrive
}

// dispatch is one client request in flight: its row slots, completion
// bookkeeping, and the cache work its accepted assignments reported.
type dispatch struct {
	id    string
	kind  string // "batch" or "sweep"
	sweep *protocol.SweepGrid
	// deadline is the request's absolute deadline (zero = none), stamped
	// onto every assignment so workers stop at the same instant the
	// response settles.
	deadline time.Time

	rows      []protocol.Row
	done      []bool
	remaining int
	// outstanding counts delivered assignments not yet closed out (final
	// Done return, or revocation). The dispatch completes only when every
	// row is in AND outstanding is 0 — the final returns carry the
	// assignments' cache deltas, so completing on rows alone would race
	// the response's cache stats against its own workers.
	outstanding int
	failed      bool
	completed   bool
	doneCh      chan struct{}

	cacheHits, cacheMisses uint64
	cacheTiers             memostore.Stats
}

// cellTask is one routable unit of work: the wire cell, its dispatch, the
// shard key that pins it to a ring position, and the failed attempts it has
// accumulated against the quarantine budget.
type cellTask struct {
	d        *dispatch
	cell     protocol.Cell
	key      string
	attempts int
}

// New builds a Coordinator and starts its liveness janitor.
func New(opt Options) *Coordinator {
	if opt.HeartbeatInterval <= 0 {
		opt.HeartbeatInterval = time.Second
	}
	if opt.Lease <= 0 {
		opt.Lease = 3 * opt.HeartbeatInterval
	}
	if opt.MaxJobs <= 0 {
		opt.MaxJobs = 4096
	}
	if opt.AssignmentCells <= 0 {
		opt.AssignmentCells = 256
	}
	if opt.MaxCellAttempts <= 0 {
		opt.MaxCellAttempts = 3
	}
	c := &Coordinator{
		opt:         opt,
		workers:     map[string]*workerState{},
		ring:        buildRing(nil),
		dispatches:  map[string]*dispatch{},
		closed:      make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go c.janitor()
	return c
}

// Close stops the janitor and unblocks every pending poll and dispatch.
// Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.closed) })
	<-c.janitorDone
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// janitor periodically expires workers whose lease lapsed. The tick is a
// fraction of the lease so loss detection latency stays a small multiple
// of the configured deadline at any scale.
func (c *Coordinator) janitor() {
	defer close(c.janitorDone)
	tick := c.opt.Lease / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case now := <-t.C:
			c.expire(now)
		}
	}
}

// expire marks every worker with a lapsed lease lost and requeues its
// unfinished cells.
func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lapsed []*workerState
	for _, ws := range c.workers {
		if now.Sub(ws.lastBeat) > c.opt.Lease {
			lapsed = append(lapsed, ws)
		}
	}
	// Deterministic drop order (map iteration above is not).
	sort.Slice(lapsed, func(a, b int) bool { return lapsed[a].id < lapsed[b].id })
	for _, ws := range lapsed {
		c.workersLost++
		c.dropWorkerLocked(ws, "lost (lease expired)")
	}
}

// rebuildRingLocked rebuilds the ring over the current workers.
func (c *Coordinator) rebuildRingLocked() {
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	c.ring = buildRing(ids)
}

// wake nudges a blocked poll; non-blocking, coalescing.
func (ws *workerState) wakeUp() {
	select {
	case ws.wake <- struct{}{}:
	default:
	}
}

// scheduleLocked routes tasks to their ring owners' queues, or to the
// unassigned pool when no live worker can own them. Caller holds mu.
func (c *Coordinator) scheduleLocked(tasks []*cellTask) {
	for _, t := range tasks {
		owner := c.ring.owner(t.key)
		ws := c.workers[owner]
		if owner == "" || ws == nil {
			c.unassigned = append(c.unassigned, t)
			continue
		}
		ws.queue = append(ws.queue, t)
		ws.wakeUp()
	}
}

// reassignLocked drains the unassigned pool through the current ring.
// Caller holds mu; a no-op while the ring is empty.
func (c *Coordinator) reassignLocked() {
	if len(c.unassigned) == 0 || len(c.ring.points) == 0 {
		return
	}
	tasks := c.unassigned
	c.unassigned = nil
	c.scheduleLocked(tasks)
}

// quarantineLocked completes a cell as a quarantine error row: its failure
// budget is spent, so retrying harder would only crash more workers. The
// sibling cells of its dispatch are untouched — the response degrades
// per-cell instead of hanging. cause (optional) is the last contained cell
// failure, appended to the row error so the client sees why. Caller holds
// mu and must maybeCompleteLocked the dispatch afterwards.
func (c *Coordinator) quarantineLocked(t *cellTask, cause string) {
	d := t.d
	if d.failed || d.done[t.cell.Index] {
		return
	}
	msg := service.QuarantinedRowError(t.attempts)
	if cause != "" {
		msg += ": " + cause
	}
	d.rows[t.cell.Index] = protocol.Row{Index: t.cell.Index, Error: msg}
	d.done[t.cell.Index] = true
	d.remaining--
	c.rowsAccepted++
	c.cellsQuarantined++
	c.logf("cluster: cell %d of dispatch %s quarantined after %d failed attempt(s)",
		t.cell.Index, d.id, t.attempts)
}

// dropWorkerLocked removes a worker (lost or draining), revokes its
// delivered assignments and requeues every cell it had not completed onto
// the surviving ring. Cells that were actually in flight (delivered, not
// just queued) are charged one failed attempt; a cell whose budget is
// spent is quarantined instead of requeued — this is what stops a poison
// cell from serially killing the whole fleet. Returns the requeued cell
// count. Caller holds mu.
func (c *Coordinator) dropWorkerLocked(ws *workerState, reason string) int {
	delete(c.workers, ws.id)
	c.rebuildRingLocked()
	// Queued-but-undelivered cells requeue free of charge: the worker
	// never started them, so its loss says nothing about them.
	var tasks []*cellTask
	for _, t := range ws.queue {
		if !t.d.failed {
			tasks = append(tasks, t)
		}
	}
	var inflight []*cellTask
	touched := map[*dispatch]struct{}{}
	for _, asn := range ws.delivered {
		for _, t := range asn.cells {
			if !t.d.failed {
				inflight = append(inflight, t)
			}
		}
		asn.d.outstanding--
		touched[asn.d] = struct{}{}
	}
	ws.queue, ws.delivered = nil, nil // revoked: late returns find nothing
	// Map iteration above is unordered; charge and requeue deterministically.
	sort.Slice(inflight, func(a, b int) bool {
		if inflight[a].d.id != inflight[b].d.id {
			return inflight[a].d.id < inflight[b].d.id
		}
		return inflight[a].cell.Index < inflight[b].cell.Index
	})
	quarantined := 0
	for _, t := range inflight {
		t.attempts++
		if t.attempts >= c.opt.MaxCellAttempts {
			c.quarantineLocked(t, "")
			touched[t.d] = struct{}{}
			quarantined++
			continue
		}
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(a, b int) bool {
		if tasks[a].d.id != tasks[b].d.id {
			return tasks[a].d.id < tasks[b].d.id
		}
		return tasks[a].cell.Index < tasks[b].cell.Index
	})
	c.cellsRequeued += uint64(len(tasks))
	if len(tasks) > 0 {
		if err := faultinject.Fire(faultinject.ClusterRequeue); err != nil {
			// Injected requeue fault: divert to the pool — never drop. The
			// pool drains on the next registration or poll.
			c.unassigned = append(c.unassigned, tasks...)
		} else {
			c.scheduleLocked(tasks)
		}
	}
	// A quarantined cell may have been a dispatch's last open row; an
	// assignment-less dispatch may have been waiting on outstanding alone.
	for d := range touched {
		c.maybeCompleteLocked(d)
	}
	// Pool-bound cells (requeue fault, or empty ring) are picked up by
	// polls; wake every survivor so none sleeps through the handoff.
	for _, other := range c.workers {
		other.wakeUp()
	}
	if quarantined > 0 {
		c.logf("cluster: worker %s %s: %d cell(s) requeued, %d quarantined",
			ws.id, reason, len(tasks), quarantined)
	} else {
		c.logf("cluster: worker %s %s: %d cell(s) requeued", ws.id, reason, len(tasks))
	}
	return len(tasks)
}

// Register announces a worker (see protocol.RegisterRequest). Registering
// an ID that is already present replaces the old incarnation: its
// unfinished cells are requeued first, then the worker rejoins the ring
// fresh.
func (c *Coordinator) Register(ctx context.Context, req protocol.RegisterRequest) (protocol.RegisterResponse, error) {
	if req.WorkerID == "" {
		return protocol.RegisterResponse{}, errors.New("cluster: register with empty worker_id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.workers[req.WorkerID]; old != nil {
		c.dropWorkerLocked(old, "replaced by re-registration")
	}
	ws := &workerState{
		id:        req.WorkerID,
		addr:      req.Addr,
		lastBeat:  time.Now(),
		delivered: map[string]*assignment{},
		wake:      make(chan struct{}, 1),
	}
	c.workers[req.WorkerID] = ws
	c.rebuildRingLocked()
	c.reassignLocked()
	// Membership changed: cells queued on other workers keep their queues
	// (only the pool is rerouted — moving already-queued cells would churn
	// warm caches for no correctness gain).
	c.logf("cluster: worker %s registered (%s), %d worker(s) live", req.WorkerID, req.Addr, len(c.workers))
	return protocol.RegisterResponse{
		HeartbeatMS: c.opt.HeartbeatInterval.Milliseconds(),
		LeaseMS:     c.opt.Lease.Milliseconds(),
	}, nil
}

// Heartbeat refreshes a worker's lease. The faultinject seam models a
// control-channel blackhole: an injected error drops the beat before the
// lease is touched.
func (c *Coordinator) Heartbeat(ctx context.Context, req protocol.HeartbeatRequest) (protocol.HeartbeatResponse, error) {
	if err := faultinject.Fire(faultinject.ClusterHeartbeat); err != nil {
		return protocol.HeartbeatResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[req.WorkerID]
	if ws == nil {
		return protocol.HeartbeatResponse{Reregister: true}, nil
	}
	ws.lastBeat = time.Now()
	return protocol.HeartbeatResponse{OK: true}, nil
}

// maxPollWait caps a long poll regardless of what the worker asked for.
const maxPollWait = 60 * time.Second

// Poll hands the worker its next assignment, long-polling up to WaitMS.
// Returns an empty response when the wait expires with nothing queued.
func (c *Coordinator) Poll(ctx context.Context, req protocol.PollRequest) (protocol.PollResponse, error) {
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxPollWait {
		wait = maxPollWait
	}
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		ws := c.workers[req.WorkerID]
		if ws == nil {
			c.mu.Unlock()
			return protocol.PollResponse{Reregister: true}, nil
		}
		c.reassignLocked()
		if liveQueued(ws.queue) {
			if err := faultinject.Fire(faultinject.ClusterDispatch); err != nil {
				// Injected dispatch fault: answer empty, cells stay queued
				// for a later poll — delayed, never lost.
				c.mu.Unlock()
				return protocol.PollResponse{}, nil
			}
			if a := c.takeAssignmentLocked(ws); a != nil {
				c.mu.Unlock()
				return protocol.PollResponse{Assignment: a}, nil
			}
		}
		wake := ws.wake
		c.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			return protocol.PollResponse{}, nil
		}
		timer := time.NewTimer(remaining)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
			return protocol.PollResponse{}, nil
		case <-ctx.Done():
			timer.Stop()
			return protocol.PollResponse{}, ctx.Err()
		case <-c.closed:
			timer.Stop()
			return protocol.PollResponse{}, nil
		}
	}
}

// liveQueued reports whether the queue holds any cell of a live dispatch.
func liveQueued(queue []*cellTask) bool {
	for _, t := range queue {
		if !t.d.failed {
			return true
		}
	}
	return false
}

// takeAssignmentLocked pops one assignment off the worker's queue: the
// longest prefix of cells belonging to the first live dispatch, capped at
// AssignmentCells (an assignment carries one sweep grid, so it cannot mix
// dispatches). Cells of failed dispatches are scrubbed in passing. Caller
// holds mu; returns nil when only dead cells were queued.
func (c *Coordinator) takeAssignmentLocked(ws *workerState) *protocol.Assignment {
	var d *dispatch
	var taken []*cellTask
	rest := ws.queue[:0]
	for _, t := range ws.queue {
		switch {
		case t.d.failed:
			// dropped
		case d == nil && len(taken) < c.opt.AssignmentCells:
			d = t.d
			taken = append(taken, t)
		case t.d == d && len(taken) < c.opt.AssignmentCells:
			taken = append(taken, t)
		default:
			rest = append(rest, t)
		}
	}
	ws.queue = rest
	if d == nil {
		return nil
	}
	if len(ws.queue) > 0 {
		ws.wakeUp() // more work behind this assignment: next poll returns fast
	}
	c.seq++
	d.outstanding++
	asn := &assignment{
		id:    fmt.Sprintf("a%d", c.seq),
		d:     d,
		cells: make(map[int]*cellTask, len(taken)),
	}
	out := &protocol.Assignment{ID: asn.id, Kind: d.kind, Sweep: d.sweep}
	if !d.deadline.IsZero() {
		out.DeadlineMS = d.deadline.UnixMilli()
	}
	for _, t := range taken {
		asn.cells[t.cell.Index] = t
		cell := t.cell
		cell.Attempts = t.attempts
		out.Cells = append(out.Cells, cell)
	}
	ws.delivered[asn.id] = asn
	return out
}

// ReturnRows accepts completed rows from a worker. Rows for revoked
// assignments — the worker was marked lost or draining and its cells were
// requeued — are rejected wholesale (Revoked), which is what makes row
// delivery exactly-once under requeue: for any cell, either the original
// owner's row was accepted before revocation (the cell is complete and is
// never requeued) or it was revoked and only the new owner's row counts.
func (c *Coordinator) ReturnRows(ctx context.Context, req protocol.RowReturn) (protocol.RowAck, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[req.WorkerID]
	if ws == nil {
		c.rowsRevoked += uint64(len(req.Rows))
		return protocol.RowAck{Revoked: true}, nil
	}
	asn := ws.delivered[req.AssignmentID]
	if asn == nil {
		c.rowsRevoked += uint64(len(req.Rows))
		return protocol.RowAck{Revoked: true}, nil
	}
	accepted := 0
	quarantined := false
	for _, row := range req.Rows {
		t, ok := asn.cells[row.Index]
		if !ok {
			continue // duplicate within the assignment; already counted
		}
		delete(asn.cells, row.Index)
		d := t.d
		if d.failed || d.done[row.Index] {
			continue
		}
		if row.Failed {
			// Contained cell failure (the worker's execution wrapper caught a
			// panic and attributed it to the cell): charge the budget and
			// retry elsewhere, or quarantine when the budget is spent. Never
			// delivered to the client as-is.
			c.cellFailures++
			t.attempts++
			c.logf("cluster: cell %d of dispatch %s failed on %s (attempt %d): %s",
				row.Index, d.id, req.WorkerID, t.attempts, row.Error)
			if t.attempts >= c.opt.MaxCellAttempts {
				c.quarantineLocked(t, row.Error)
				quarantined = true
			} else {
				c.cellsRequeued++
				c.scheduleLocked([]*cellTask{t})
			}
			continue
		}
		d.rows[row.Index] = row
		d.done[row.Index] = true
		d.remaining--
		accepted++
	}
	c.rowsAccepted += uint64(accepted)
	if quarantined && !req.Done {
		// A quarantined cell may have been the dispatch's last open row and
		// this call carries no Done close-out to check for us.
		c.maybeCompleteLocked(asn.d)
	}
	if req.Done {
		if req.Cache != nil && !asn.d.failed {
			asn.d.cacheHits += req.Cache.Hits
			asn.d.cacheMisses += req.Cache.Misses
			asn.d.cacheTiers = asn.d.cacheTiers.Add(req.Cache.Tiers)
		}
		delete(ws.delivered, req.AssignmentID)
		asn.d.outstanding--
		if len(asn.cells) > 0 {
			// The worker declared the assignment finished without returning
			// every row (a worker-local failure it could not attribute to
			// cells, or the dispatch deadline cut it off); each leftover is
			// charged one failed attempt — the cell was in flight and
			// produced nothing — then requeued or quarantined.
			var leftovers []*cellTask
			for _, t := range asn.cells {
				if !t.d.failed {
					leftovers = append(leftovers, t)
				}
			}
			sort.Slice(leftovers, func(a, b int) bool { return leftovers[a].cell.Index < leftovers[b].cell.Index })
			var tasks []*cellTask
			for _, t := range leftovers {
				t.attempts++
				if t.attempts >= c.opt.MaxCellAttempts {
					c.quarantineLocked(t, "")
					continue
				}
				tasks = append(tasks, t)
			}
			c.cellsRequeued += uint64(len(tasks))
			c.scheduleLocked(tasks)
			c.logf("cluster: assignment %s finished incomplete on %s: %d cell(s) requeued",
				req.AssignmentID, req.WorkerID, len(tasks))
		}
		c.maybeCompleteLocked(asn.d)
	}
	return protocol.RowAck{Accepted: accepted}, nil
}

// maybeCompleteLocked closes a dispatch whose rows are all in and whose
// delivered assignments have all closed out (so every cache delta that
// will ever arrive has arrived). Caller holds mu.
func (c *Coordinator) maybeCompleteLocked(d *dispatch) {
	if !d.completed && !d.failed && d.remaining == 0 && d.outstanding == 0 {
		d.completed = true
		close(d.doneCh)
	}
}

// DrainWorker removes a departing worker and requeues everything it has
// not completed. The worker's already-returned rows stay accepted.
func (c *Coordinator) DrainWorker(ctx context.Context, req protocol.DrainRequest) (protocol.DrainResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[req.WorkerID]
	if ws == nil {
		return protocol.DrainResponse{}, nil
	}
	c.workersDrained++
	n := c.dropWorkerLocked(ws, "draining")
	return protocol.DrainResponse{Requeued: n}, nil
}

// Workers reports the live worker count.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// ---- client-facing request path -----------------------------------------

// shardKey builds a cell's ring coordinate: the device's canonical
// identity encoding plus the workload's cache key — exactly the persistent
// memo store's key coordinates, so cells co-locate with their cached
// results. Workloads that are not Keyed fall back to their Name (no cached
// result exists to co-locate with; the key only needs determinism).
func shardKey(spec machine.Spec, w run.Workload) string {
	id, _ := spec.IdentityString()
	wkey := w.Name()
	if kw, ok := w.(run.Keyed); ok {
		wkey = kw.CacheKey()
	}
	return id + "\x00" + wkey
}

// invalid wraps an error as the service layer's ValidationError so
// transports map it to 400 exactly like the standalone daemon.
func invalid(err error) error {
	if err == nil {
		return nil
	}
	return &service.ValidationError{Err: err}
}

// timeoutCtx mirrors service.timeoutCtx over the coordinator's options.
func (c *Coordinator) timeoutCtx(ctx context.Context, opt service.RequestOptions) (context.Context, context.CancelFunc) {
	d := c.opt.DefaultTimeout
	if opt.TimeoutMS > 0 {
		d = time.Duration(opt.TimeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return ctx, func() {}
	}
	if c.opt.MaxTimeout > 0 && d > c.opt.MaxTimeout {
		d = c.opt.MaxTimeout
	}
	return context.WithTimeout(ctx, d)
}

// newDispatch allocates a dispatch with n row slots. Caller holds mu.
func (c *Coordinator) newDispatchLocked(kind string, grid *protocol.SweepGrid, n int) *dispatch {
	c.seq++
	c.dispatchCount++
	d := &dispatch{
		id:        fmt.Sprintf("d%d", c.seq),
		kind:      kind,
		sweep:     grid,
		rows:      make([]protocol.Row, n),
		done:      make([]bool, n),
		remaining: n,
		doneCh:    make(chan struct{}),
	}
	c.dispatches[d.id] = d
	return d
}

// await blocks until the dispatch has every row, the caller's context
// ends, or the coordinator closes. On any outcome the dispatch is
// unregistered; on failure it is marked so stray cells and late rows are
// dropped.
//
// A deadline expiry is not a failure: the dispatch degrades — every row
// that arrived in time is kept, every open slot is filled with a deadline
// error row, and the caller gets the partial response instead of blocking
// forever on cells that will never land (e.g. every poll blackholed). The
// dispatch is still marked failed internally so stray queued cells are
// scrubbed and late rows revoked.
func (c *Coordinator) await(ctx context.Context, d *dispatch) error {
	var err error
	select {
	case <-d.doneCh:
	case <-ctx.Done():
		err = ctx.Err()
	case <-c.closed:
		err = errors.New("cluster: coordinator closed")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.dispatches, d.id)
	if err == nil || d.completed {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		c.dispatchesExpired++
		expired := 0
		for i, ok := range d.done {
			if !ok {
				d.rows[i] = protocol.Row{Index: i, Error: service.DeadlineRowError()}
				d.done[i] = true
				d.remaining--
				expired++
			}
		}
		d.failed = true // scrub stray cells, revoke late rows
		c.logf("cluster: dispatch %s deadline expired: %d row(s) returned degraded", d.id, expired)
		return nil
	}
	d.failed = true
	return err
}

// cacheStats renders the dispatch's aggregated per-assignment deltas as
// the response's cache stats. A clustered response is request-scoped on
// both axes: the coordinator holds no cache of its own, so lifetime
// counters of individual workers would be misleading here.
func (d *dispatch) cacheStats() service.CacheStats {
	return service.CacheStats{
		Hits: d.cacheHits, Misses: d.cacheMisses,
		RequestHits: d.cacheHits, RequestMisses: d.cacheMisses,
		Tiers: d.cacheTiers, RequestTiers: d.cacheTiers,
	}
}

// Batch executes a device × workload cross-product across the cluster,
// with service.Batch's request semantics: validation failures reject the
// call, per-cell failures land in the rows.
func (c *Coordinator) Batch(ctx context.Context, req service.BatchRequest) (*service.Response, error) {
	devices, err := resolveDeviceNames(req.Devices)
	if err != nil {
		return nil, invalid(err)
	}
	workloads := make([]run.Workload, len(req.Workloads))
	for i, spec := range req.Workloads {
		if workloads[i], err = run.NewWorkload(spec); err != nil {
			return nil, invalid(err)
		}
	}
	if len(workloads) == 0 {
		return nil, invalid(errors.New("service: request names no workloads"))
	}
	if n := len(devices) * len(workloads); n > c.opt.MaxJobs {
		return nil, invalid(fmt.Errorf("service: request is %d jobs, limit %d", n, c.opt.MaxJobs))
	}
	ctx, cancel := c.timeoutCtx(ctx, req.Options)
	defer cancel()

	c.mu.Lock()
	d := c.newDispatchLocked("batch", nil, len(devices)*len(workloads))
	if dl, ok := ctx.Deadline(); ok {
		d.deadline = dl
	}
	tasks := make([]*cellTask, 0, d.remaining)
	for di, dev := range devices {
		for wi, w := range workloads {
			spec := req.Workloads[wi]
			tasks = append(tasks, &cellTask{
				d: d,
				cell: protocol.Cell{
					Index:    di*len(workloads) + wi,
					Device:   dev.Name,
					Workload: &spec,
				},
				key: shardKey(dev, w),
			})
		}
	}
	c.scheduleLocked(tasks)
	c.mu.Unlock()

	if err := c.await(ctx, d); err != nil {
		return nil, err
	}
	resp := &service.Response{Results: make([]service.ResultRow, len(d.rows)), Cache: d.cacheStats()}
	for i, row := range d.rows {
		resp.Results[i] = service.ResultRow{Result: row.Result, Error: row.Error}
		if row.Error != "" {
			resp.Errors = append(resp.Errors, row.Error)
		}
	}
	return resp, nil
}

// Sweep executes a device-parameter ablation across the cluster: the grid
// is expanded once here (for routing keys, row count and labels) and again
// on each worker (for execution) — sweep.Expand is deterministic, so both
// see the same cells. Base-relative deltas are computed here from the
// reassembled grid, exactly as sweep.Run computes them.
func (c *Coordinator) Sweep(ctx context.Context, req service.SweepRequest) (*service.Response, error) {
	plan, err := planSweep(req.Device, req.Axes, req.Workloads, c.opt.MaxJobs)
	if err != nil {
		return nil, invalid(err)
	}
	ctx, cancel := c.timeoutCtx(ctx, req.Options)
	defer cancel()

	grid := &protocol.SweepGrid{Device: req.Device, Axes: req.Axes, Workloads: req.Workloads}
	c.mu.Lock()
	d := c.newDispatchLocked("sweep", grid, len(plan.jobs))
	if dl, ok := ctx.Deadline(); ok {
		d.deadline = dl
	}
	tasks := make([]*cellTask, len(plan.jobs))
	for j, job := range plan.jobs {
		tasks[j] = &cellTask{
			d:    d,
			cell: protocol.Cell{Index: j, SweepJob: j},
			key:  shardKey(job.Device, job.Workload),
		}
	}
	c.scheduleLocked(tasks)
	c.mu.Unlock()

	if err := c.await(ctx, d); err != nil {
		return nil, err
	}
	for _, row := range d.rows {
		if row.Error != "" {
			// Mirror the standalone sweep path: any cell failure aborts the
			// sweep wholesale — base-relative deltas over a torn grid would
			// be meaningless.
			return nil, &service.ExecutionError{Err: fmt.Errorf("sweep on %s: %s", req.Device, row.Error)}
		}
	}
	W := len(plan.workloads)
	resp := &service.Response{Results: make([]service.ResultRow, 0, plan.reported*W), Cache: d.cacheStats()}
	for ci := 0; ci < plan.reported; ci++ {
		for wi := 0; wi < W; wi++ {
			got := d.rows[ci*W+wi].Result
			base := d.rows[plan.baseIdx*W+wi].Result
			bwRatio := 0.0
			if base.Bandwidth > 0 {
				bwRatio = float64(got.Bandwidth) / float64(base.Bandwidth)
			}
			resp.Results = append(resp.Results, service.ResultRow{
				Result:          got,
				Cell:            plan.cells[ci].Labels,
				Speedup:         metrics.Speedup(base.Seconds, got.Seconds),
				BandwidthVsBase: bwRatio,
			})
		}
	}
	return resp, nil
}

// resolveDeviceNames maps preset names to specs; empty means all presets
// (service.resolveDevices' convention).
func resolveDeviceNames(names []string) ([]machine.Spec, error) {
	if len(names) == 0 {
		return machine.All(), nil
	}
	out := make([]machine.Spec, len(names))
	for i, name := range names {
		spec, err := machine.ByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = spec
	}
	return out, nil
}

// sweepPlan is a sweep grid's deterministic expansion: the job list both
// the coordinator (routing, reassembly, deltas) and every worker
// (execution) derive independently from the same (device, axes, workloads)
// recipe.
type sweepPlan struct {
	base      machine.Spec
	cells     []sweep.Cell // reported grid first, synthetic base cell (if any) last
	reported  int          // cells visible in the response
	baseIdx   int          // index of the base cell in cells
	workloads []run.Workload
	jobs      []run.Job // cells outermost, workloads innermost
}

// planSweep validates and expands a sweep grid, replicating sweep.Run's
// cell layout: when no axis carries a base point, a synthetic base cell is
// appended (it is simulated for the deltas' denominator but not reported).
// maxJobs > 0 bounds the grid from the axis point counts BEFORE expanding
// (Expand deep-clones a Spec per cell); workers pass 0 — the coordinator
// already bounded the grid they are re-deriving.
func planSweep(device string, axes []string, specs []run.WorkloadSpec, maxJobs int) (*sweepPlan, error) {
	if device == "" {
		return nil, errors.New("service: sweep request names no device")
	}
	base, err := machine.ByName(device)
	if err != nil {
		return nil, err
	}
	parsed, err := sweep.ParseAxes(axes)
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, errors.New("service: request names no workloads")
	}
	workloads := make([]run.Workload, len(specs))
	for i, spec := range specs {
		if workloads[i], err = run.NewWorkload(spec); err != nil {
			return nil, err
		}
	}
	if maxJobs > 0 {
		cellCount := 1
		for _, ax := range parsed {
			if len(ax.Points) == 0 {
				continue // Expand reports the precise error
			}
			cellCount *= len(ax.Points)
			if cellCount > maxJobs {
				return nil, fmt.Errorf("service: sweep is at least %d cells, limit %d jobs", cellCount, maxJobs)
			}
		}
		if n := cellCount * len(workloads); n > maxJobs {
			return nil, fmt.Errorf("service: sweep is %d jobs, limit %d", n, maxJobs)
		}
	}
	cells, err := sweep.Expand(base, parsed)
	if err != nil {
		return nil, err
	}
	plan := &sweepPlan{base: base, reported: len(cells), baseIdx: -1, workloads: workloads}
	for i, c := range cells {
		if c.Base {
			plan.baseIdx = i
			break
		}
	}
	if plan.baseIdx < 0 {
		cells = append(cells, sweep.Cell{Spec: base, Base: true})
		plan.baseIdx = len(cells) - 1
	}
	plan.cells = cells
	plan.jobs = make([]run.Job, 0, len(cells)*len(workloads))
	for _, c := range cells {
		for _, w := range workloads {
			plan.jobs = append(plan.jobs, run.Job{Device: c.Spec, Workload: w})
		}
	}
	return plan, nil
}
