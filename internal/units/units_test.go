package units

import (
	"math"
	"testing"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512 B"},
		{Bytes(32 * KiB), "32 KiB"},
		{Bytes(1536 * KiB), "1.5 MiB"},
		{Bytes(GiB), "1 GiB"},
		{Bytes(8 * GiB), "8 GiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBytesPerSecString(t *testing.T) {
	cases := []struct {
		in   BytesPerSec
		want string
	}{
		{12.34e9, "12.34 GB/s"},
		{800e6, "800.00 MB/s"},
		{999, "999 B/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("BytesPerSec(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
	if got := BytesPerSec(2.5e9).GBps(); got != 2.5 {
		t.Errorf("GBps = %v, want 2.5", got)
	}
}

func TestSecondsAndBandwidth(t *testing.T) {
	// 1e9 cycles at 1 GHz is exactly one second.
	if got := Seconds(1e9, 1.0); got != 1.0 {
		t.Errorf("Seconds = %v, want 1", got)
	}
	// 3.4 GHz: 3.4e9 cycles = 1 s.
	if got := Seconds(3.4e9, 3.4); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Seconds = %v, want 1", got)
	}
	// 16 GB moved in 1e9 cycles @ 1 GHz = 16 GB/s.
	bw := Bandwidth(16e9, 1e9, 1.0)
	if math.Abs(bw.GBps()-16.0) > 1e-9 {
		t.Errorf("Bandwidth = %v, want 16 GB/s", bw)
	}
	if Bandwidth(100, 0, 1.0) != 0 {
		t.Error("zero-time bandwidth should be 0")
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int64{1, 2, 4, 64, 1 << 30} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []int64{0, -2, 3, 6, 96, 100} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int64]uint{1: 0, 2: 1, 64: 6, 128: 7, 1 << 20: 20}
	for in, want := range cases {
		if got := Log2(in); got != want {
			t.Errorf("Log2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"64":       64,
		"64B":      64,
		"128KiB":   128 * KiB,
		"128 KiB":  128 * KiB,
		"128kib":   128 * KiB,
		"1MiB":     MiB,
		"1.5 MiB":  MiB + MiB/2,
		"2GiB":     2 * GiB,
		" 32 KiB ": 32 * KiB,
	}
	for in, want := range good {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "KiB", "12XB", "1.0000001KiB", "12 34", "-64KiB", "-1"} {
		if got, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) = %d, want error", in, got)
		}
	}
	// Round-trips with Bytes.String for the sizes sweeps use.
	for _, v := range []int64{64, 32 * KiB, 128 * KiB, MiB, MiB + MiB/2, GiB} {
		got, err := ParseBytes(Bytes(v).String())
		if err != nil || got != v {
			t.Errorf("round-trip %s = %d, %v; want %d", Bytes(v), got, err, v)
		}
	}
}
