package units_test

import (
	"testing"

	"riscvmem/internal/units"
)

// FuzzParseBytes drives the byte-count grammar ("64", "128KiB", "1.5 MiB")
// with arbitrary input. The parser must never panic; accepted values must
// be non-negative, and whenever Bytes.String renders the count exactly (an
// integer multiple of the unit it picks), the rendering must parse back to
// the same count — the doc promises ParseBytes inverts Bytes.String.
func FuzzParseBytes(f *testing.F) {
	for _, seed := range []string{
		"",
		"0",
		"64",
		"7 B",
		"128KiB",
		"1.5 MiB",
		"2GiB",
		" 32 kib ",
		"-1",
		"0.5",
		"1e3",
		"1e309",
		"NaN",
		"Inf",
		"9223372036854775807",
		"8GiBGiB",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := units.ParseBytes(s)
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatalf("ParseBytes(%q) = %d, negative", s, n)
		}
		// The unit String picks: largest of GiB/MiB/KiB not exceeding n,
		// else plain bytes.
		unit := int64(1)
		switch {
		case n >= units.GiB:
			unit = units.GiB
		case n >= units.MiB:
			unit = units.MiB
		case n >= units.KiB:
			unit = units.KiB
		}
		if n%unit != 0 {
			return // rendered with a rounded decimal; round trip is lossy by design
		}
		rendered := units.Bytes(n).String()
		back, err := units.ParseBytes(rendered)
		if err != nil {
			t.Fatalf("ParseBytes(%q) = %d, but its exact rendering %q does not parse: %v", s, n, rendered, err)
		}
		if back != n {
			t.Fatalf("round trip drifted: %q -> %d -> %q -> %d", s, n, rendered, back)
		}
	})
}
