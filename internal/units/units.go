// Package units provides the small value types shared across the simulator:
// byte counts, bandwidths, and conversions between core cycles and seconds.
//
// All simulator timing is carried in floating-point core cycles; this package
// owns the conversion to wall-clock seconds (via the device frequency) and the
// human-readable formatting used by the reporting layer. Bandwidths follow the
// STREAM convention of decimal units (1 GB/s = 1e9 bytes per second).
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Common byte quantities, in the binary (capacity) sense used for cache and
// RAM sizes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// Bytes is a byte count with readable formatting.
type Bytes int64

// String renders the count with a binary suffix, e.g. "32 KiB" or "1.5 GiB".
func (b Bytes) String() string {
	switch v := int64(b); {
	case v >= GiB:
		return trimUnit(float64(v)/float64(GiB), "GiB")
	case v >= MiB:
		return trimUnit(float64(v)/float64(MiB), "MiB")
	case v >= KiB:
		return trimUnit(float64(v)/float64(KiB), "KiB")
	default:
		return fmt.Sprintf("%d B", v)
	}
}

// ParseBytes parses a human-readable byte count — "64", "128KiB", "1.5 MiB",
// "2GiB" — into bytes. Suffixes are the binary units KiB/MiB/GiB (case-
// insensitive, optional space, optional trailing "B" alone for plain bytes);
// fractional values must still resolve to a whole number of bytes. It is the
// inverse of Bytes.String and the size parser of the sweep axis grammar.
func ParseBytes(s string) (int64, error) {
	text := strings.TrimSpace(s)
	mult := int64(1)
	lower := strings.ToLower(text)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"gib", GiB}, {"mib", MiB}, {"kib", KiB}, {"b", 1}} {
		if strings.HasSuffix(lower, u.suffix) {
			mult = u.mult
			text = strings.TrimSpace(text[:len(text)-len(u.suffix)])
			break
		}
	}
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse byte count %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative byte count %q", s)
	}
	bytes := v * float64(mult)
	if bytes != float64(int64(bytes)) {
		return 0, fmt.Errorf("units: %q is not a whole number of bytes", s)
	}
	return int64(bytes), nil
}

func trimUnit(v float64, unit string) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d %s", int64(v), unit)
	}
	return fmt.Sprintf("%.1f %s", v, unit)
}

// BytesPerSec is a bandwidth in bytes per second (decimal units when
// formatted, matching STREAM's reporting convention).
type BytesPerSec float64

// GBps returns the bandwidth in decimal gigabytes per second.
func (r BytesPerSec) GBps() float64 { return float64(r) / 1e9 }

// String renders the bandwidth as "12.34 GB/s" (or MB/s below 1 GB/s).
func (r BytesPerSec) String() string {
	switch v := float64(r); {
	case v >= 1e9:
		return fmt.Sprintf("%.2f GB/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f MB/s", v/1e6)
	default:
		return fmt.Sprintf("%.0f B/s", v)
	}
}

// Cycles is a duration measured in core clock cycles. The simulator uses
// float64 cycles throughout so fractional costs (e.g. amortized loop
// overhead, SIMD lanes) compose without rounding drift.
type Cycles = float64

// Seconds converts a cycle count at the given core frequency (GHz) to
// wall-clock seconds.
func Seconds(c Cycles, freqGHz float64) float64 {
	return c / (freqGHz * 1e9)
}

// Bandwidth computes achieved bandwidth for `bytes` moved over `c` cycles at
// the given frequency.
func Bandwidth(bytes int64, c Cycles, freqGHz float64) BytesPerSec {
	if c <= 0 {
		return 0
	}
	return BytesPerSec(float64(bytes) / Seconds(c, freqGHz))
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

// Log2 returns floor(log2(v)) for v > 0.
func Log2(v int64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
