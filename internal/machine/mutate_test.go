package machine

import (
	"testing"

	"riscvmem/internal/cache"
	"riscvmem/internal/prefetch"
	"riscvmem/internal/units"
)

func TestCloneIsDeep(t *testing.T) {
	base := XeonServer()
	c := base.Clone()
	c.Mem.L2.Cache.Size *= 2
	c.Mem.L3.Cache.Size *= 2
	c.Mem.JTLB.Entries = 1
	c.Mem.Prefetch.MaxDistance = 999
	if base.Mem.L2.Cache.Size != XeonServer().Mem.L2.Cache.Size ||
		base.Mem.L3.Cache.Size != XeonServer().Mem.L3.Cache.Size ||
		base.Mem.JTLB.Entries != XeonServer().Mem.JTLB.Entries ||
		base.Mem.Prefetch.MaxDistance != XeonServer().Mem.Prefetch.MaxDistance {
		t.Error("mutating a clone changed the original spec")
	}
	if base.Identity() != base.Clone().Identity() {
		t.Error("Clone perturbed identity-relevant state")
	}
}

func TestRenamed(t *testing.T) {
	s := MangoPiD1().Renamed("MangoPi-L2")
	if s.Name != "MangoPi-L2" {
		t.Fatalf("Name = %q", s.Name)
	}
	if s.Identity() == MangoPiD1().Identity() {
		t.Error("renamed spec shares the base identity")
	}
	// Everything but the name is untouched.
	s.Name = "MangoPi"
	if s.Identity() != MangoPiD1().Identity() {
		t.Error("Renamed changed more than the name")
	}
}

// TestMutationHelpersValidateAndDistinguish pins the contract every sweep
// axis relies on: each helper yields a spec that (a) still validates, (b) has
// an identity distinct from its base even though the Name is unchanged — so
// the pooled runner and the result cache can never hand a mutated cell the
// base cell's machines or results.
func TestMutationHelpersValidateAndDistinguish(t *testing.T) {
	mutations := map[string]func(Spec) Spec{
		"WithL2":               func(s Spec) Spec { return s.WithL2(512 * units.KiB) },
		"WithoutL2":            func(s Spec) Spec { return s.WithoutL2() },
		"WithMaxInflight":      func(s Spec) Spec { return s.WithMaxInflight(3) },
		"WithMissOverlap":      func(s Spec) Spec { return s.WithMissOverlap(0.33) },
		"WithDRAMChannels":     func(s Spec) Spec { return s.WithDRAMChannels(16) },
		"WithDRAMLatency":      func(s Spec) Spec { return s.WithDRAMLatency(555) },
		"WithL1Ways":           func(s Spec) Spec { return s.WithL1Ways(s.Mem.L1.Ways * 2) },
		"WithPolicy":           func(s Spec) Spec { return s.WithPolicy(cache.FIFO) },
		"WithPrefetchDistance": func(s Spec) Spec { return s.WithPrefetchDistance(64) },
		"WithPrefetchRamp":     func(s Spec) Spec { return s.WithPrefetchRamp(!s.Mem.Prefetch.Ramp) },
		"WithoutPrefetcher":    func(s Spec) Spec { return s.WithoutPrefetcher() },
	}
	for _, base := range All() {
		for name, mutate := range mutations {
			if name == "WithoutL2" && base.Mem.L2 == nil {
				continue // dropping an absent L2 is the identity mutation
			}
			got := mutate(base)
			if err := got.Validate(); err != nil {
				t.Errorf("%s on %s: invalid spec: %v", name, base.Name, err)
			}
			if got.Identity() == base.Identity() {
				t.Errorf("%s on %s: identity unchanged", name, base.Name)
			}
			if got.Name != base.Name {
				t.Errorf("%s on %s: helper changed the Name to %q", name, base.Name, got.Name)
			}
			if err := base.Validate(); err != nil {
				t.Errorf("%s on %s: mutated the base spec: %v", name, base.Name, err)
			}
		}
	}
}

func TestWithL2OnDeviceWithoutL2(t *testing.T) {
	s := MangoPiD1().WithL2(128 * units.KiB)
	if s.Mem.L2 == nil {
		t.Fatal("WithL2 did not add an L2")
	}
	if s.Mem.L2.Cache.Size != 128*units.KiB || !s.Mem.L2.Shared {
		t.Errorf("L2 = %+v", s.Mem.L2)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if MangoPiD1().Mem.L2 != nil {
		t.Error("WithL2 mutated the preset")
	}
}

func TestWithL2RefitsWays(t *testing.T) {
	// Xeon's 20-way L2 cannot tile 128 KiB into a power-of-two set count;
	// the helper must re-fit the associativity rather than hand Validate a
	// broken spec.
	s := XeonServer().WithL2(128 * units.KiB)
	if err := s.Validate(); err != nil {
		t.Fatalf("re-fit failed: %v", err)
	}
	if s.Mem.L2.Cache.Size != 128*units.KiB {
		t.Errorf("size = %d", s.Mem.L2.Cache.Size)
	}
	// The original 20 ways must survive when they still fit (1.25 MiB does).
	if keep := XeonServer().WithL2(1280 * 2 * units.KiB); keep.Mem.L2.Cache.Ways != 20 {
		t.Errorf("ways not kept on a compatible resize: %d", keep.Mem.L2.Cache.Ways)
	}
}

func TestWithoutL2DropsL3(t *testing.T) {
	s := XeonServer().WithoutL2()
	if s.Mem.L2 != nil || s.Mem.L3 != nil {
		t.Error("WithoutL2 left outer levels behind")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchHelpersRequireDeclarativeConfig(t *testing.T) {
	custom := MangoPiD1()
	custom.Mem.Prefetch = nil
	custom.Mem.NewPrefetcher = func() prefetch.Prefetcher {
		return prefetch.NewStride(prefetch.StrideConfig{LineSize: 64, Streams: 4,
			TrainThreshold: 2, InitDistance: 1, MaxDistance: 2})
	}
	if custom.HasDeclarativePrefetcher() {
		t.Fatal("factory-built spec claims a declarative prefetcher")
	}
	if got := custom.WithPrefetchDistance(64); got.Identity() != custom.Identity() {
		t.Error("WithPrefetchDistance modified a factory-built prefetcher")
	}
	if !MangoPiD1().HasDeclarativePrefetcher() {
		t.Error("preset lacks a declarative prefetcher")
	}
	if got := MangoPiD1().WithPrefetchDistance(1); got.Mem.Prefetch.InitDistance != 1 {
		t.Errorf("InitDistance not clamped: %d", got.Mem.Prefetch.InitDistance)
	}
}

// TestIdentityPrefetcherFactoryCaveat pins the documented caveat: two custom
// NewPrefetcher closures created at the same source location but capturing
// different state compare equal by code pointer, so Identity alone cannot
// tell them apart — such variants need distinct Names (or the declarative
// Mem.Prefetch config, which the following assertion shows is compared by
// value and has no such blind spot).
func TestIdentityPrefetcherFactoryCaveat(t *testing.T) {
	if specWithFactoryDistance(2).Identity() != specWithFactoryDistance(32).Identity() {
		t.Error("caveat no longer holds — closures are now distinguished; update the Identity docs")
	}
	// The declarative path distinguishes the same variation by value.
	if MangoPiD1().WithPrefetchDistance(2).Identity() == MangoPiD1().WithPrefetchDistance(32).Identity() {
		t.Error("declarative prefetch configs with different distances share an identity")
	}
}

// specWithFactoryDistance builds the closure at one fixed source location.
// noinline keeps the compiler from constant-specializing the closure body per
// call site, which would (accidentally, and only for constant arguments)
// give the two variants distinct code pointers.
//
//go:noinline
func specWithFactoryDistance(dist int) Spec {
	s := MangoPiD1()
	s.Mem.Prefetch = nil
	s.Mem.NewPrefetcher = func() prefetch.Prefetcher {
		return prefetch.NewStride(prefetch.StrideConfig{LineSize: 64, Streams: 4,
			TrainThreshold: 2, InitDistance: 1, MaxDistance: dist})
	}
	return s
}
