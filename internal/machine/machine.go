// Package machine defines the four devices of the paper's §3.1 as parameter
// presets for the simulator, plus helpers to build custom devices.
//
// Each preset encodes the microarchitectural facts the paper lists —
// pipeline issue width, cache geometry and replacement policy, TLB shapes,
// prefetcher style, memory channels — with service rates and latencies
// calibrated so that simulated STREAM bandwidth lands in the ballpark the
// paper's Fig. 1 reports (the *ordering* and rough ratios between devices are
// what the downstream experiments rely on; see DESIGN.md §5).
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package machine

import (
	"fmt"
	"reflect"
	"strings"

	"riscvmem/internal/cache"
	"riscvmem/internal/dram"
	"riscvmem/internal/hier"
	"riscvmem/internal/prefetch"
	"riscvmem/internal/tlb"
	"riscvmem/internal/units"
)

// Spec is a complete device description.
type Spec struct {
	Name  string // short id, e.g. "MangoPi"
	CPU   string // marketing name of the SoC/CPU
	ISA   string // e.g. "RV64GCV"
	Cores int
	// FreqGHz is the core clock; all simulator cycle counts convert to
	// seconds through it.
	FreqGHz  float64
	RAMBytes int64

	// IssueWidth is the superscalar width used to cost integer/address
	// work: n abstract ops take n/IssueWidth cycles.
	IssueWidth int
	// FlopsPerCycle is scalar floating-point throughput per core.
	FlopsPerCycle float64
	// AutoVecBytes is the SIMD register width the device's compiler
	// auto-vectorizes with (0 when the paper's toolchain emitted scalar
	// code, as it did for both RISC-V boards).
	AutoVecBytes int

	// Mem is the full memory-system composition.
	Mem hier.Config
}

// Validate checks the spec (including the embedded memory configuration).
func (s Spec) Validate() error {
	if s.Cores <= 0 || s.FreqGHz <= 0 || s.RAMBytes <= 0 {
		return fmt.Errorf("machine %s: cores, frequency and RAM must be positive", s.Name)
	}
	if s.IssueWidth <= 0 || s.FlopsPerCycle <= 0 {
		return fmt.Errorf("machine %s: issue width and flop rate must be positive", s.Name)
	}
	if s.AutoVecBytes < 0 {
		return fmt.Errorf("machine %s: negative SIMD width", s.Name)
	}
	if s.Cores != s.Mem.Cores {
		return fmt.Errorf("machine %s: %d cores but memory system built for %d", s.Name, s.Cores, s.Mem.Cores)
	}
	return s.Mem.Validate()
}

// NewHierarchy instantiates the device's memory system.
func (s Spec) NewHierarchy() *hier.Hierarchy { return hier.MustNew(s.Mem) }

// identity is the comparable projection of a Spec used by Identity.
type identity struct {
	name, cpu, isa string
	cores          int
	freqGHz        float64
	ramBytes       int64
	issueWidth     int
	flopsPerCycle  float64
	autoVecBytes   int

	memCores     int
	lineSize     int64
	l1           cache.Config
	l1HitCycles  float64
	l2, l3       hier.Level
	hasL2, hasL3 bool
	utlb         tlb.Config
	jtlb         tlb.Config
	hasJTLB      bool
	jtlbPenalty  float64
	walkLevels   int
	walkCycles   float64
	dram         dram.Config
	missOverlap  float64
	maxInflight  int
	prefFactory  uintptr
	pref         prefetch.StrideConfig
	hasPref      bool
}

// Identity returns a comparable value that distinguishes device
// parameterizations: two Specs yield equal identities only when every
// simulation-relevant parameter matches. The pooled runner (internal/run)
// keys machine reuse on this, so a modified preset never shares pooled
// machines with its base even if the Name was left unchanged.
//
// One caveat: a custom prefetcher factory (Mem.NewPrefetcher) is a function
// and is compared by code pointer. Closures created at the same source
// location but capturing different state are indistinguishable — give such
// variants distinct Names, or use the declarative Mem.Prefetch config, which
// is compared by value (all built-in presets and every sweep axis use it, so
// they are always distinguished).
func (s Spec) Identity() any {
	id := identity{
		name: s.Name, cpu: s.CPU, isa: s.ISA,
		cores: s.Cores, freqGHz: s.FreqGHz, ramBytes: s.RAMBytes,
		issueWidth: s.IssueWidth, flopsPerCycle: s.FlopsPerCycle, autoVecBytes: s.AutoVecBytes,

		memCores: s.Mem.Cores, lineSize: s.Mem.LineSize,
		l1: s.Mem.L1, l1HitCycles: s.Mem.L1HitCycles,
		jtlbPenalty: s.Mem.JTLBPenalty, utlb: s.Mem.UTLB,
		walkLevels: s.Mem.WalkLevels, walkCycles: s.Mem.WalkCycles,
		dram: s.Mem.DRAM, missOverlap: s.Mem.MissOverlap, maxInflight: s.Mem.MaxInflight,
	}
	if s.Mem.L2 != nil {
		id.hasL2, id.l2 = true, *s.Mem.L2
	}
	if s.Mem.L3 != nil {
		id.hasL3, id.l3 = true, *s.Mem.L3
	}
	if s.Mem.JTLB != nil {
		id.hasJTLB, id.jtlb = true, *s.Mem.JTLB
	}
	if s.Mem.NewPrefetcher != nil {
		id.prefFactory = reflect.ValueOf(s.Mem.NewPrefetcher).Pointer()
	} else if s.Mem.Prefetch != nil {
		// The declarative config only takes effect when no factory is set
		// (mirroring hier construction), so fold it in under the same
		// condition — and by value, so mutated sweeps are distinguished.
		id.hasPref, id.pref = true, *s.Mem.Prefetch
	}
	return id
}

// IdentityString renders the spec's Identity as a canonical string — the
// device coordinate of the persistent memo store's key. Two specs yield
// equal strings exactly when their Identities are equal: the string is the
// Go-syntax rendering of the identity projection, which names every field,
// quotes (and escapes) every string, and renders floats in shortest
// round-trip form, so it is deterministic across processes and never
// ambiguous across field boundaries.
//
// persistable is false when the spec carries a custom prefetcher factory
// (Mem.NewPrefetcher): such an identity embeds a code pointer that is only
// meaningful inside this process, so the encoding must not be used as a
// cross-process cache key — the memo store keeps those entries in the
// memory tier only (memostore.Key.Volatile).
//
// Note the encoding is *stability-critical downward only*: changing it (or
// the identity struct it mirrors) silently orphans persisted cache entries,
// which is safe — orphaned entries are simply re-simulated — but wasteful,
// so treat the format with the same care as a model-version bump.
func (s Spec) IdentityString() (id string, persistable bool) {
	return fmt.Sprintf("%#v", s.Identity()), s.Mem.NewPrefetcher == nil
}

// Fits reports whether a working set of the given size fits in device RAM
// (with a small allowance for the OS, mirroring the paper's observation that
// the 16384² matrix "does not fit in memory" of the 1 GiB Mango Pi).
func (s Spec) Fits(bytes int64) bool {
	return bytes <= s.RAMBytes-s.RAMBytes/8
}

// PeakDRAMBandwidth returns the aggregate raw DRAM bandwidth.
func (s Spec) PeakDRAMBandwidth() units.BytesPerSec {
	return s.Mem.DRAM.PeakBandwidth(s.FreqGHz)
}

// String summarizes the device.
func (s Spec) String() string {
	return fmt.Sprintf("%s (%s, %d× %s @ %.1f GHz, %s RAM)",
		s.Name, s.CPU, s.Cores, s.ISA, s.FreqGHz, units.Bytes(s.RAMBytes))
}

const (
	lineSize  = 64
	pageShift = 12
)

// MangoPiD1 models the Mango Pi MQ-Pro: Allwinner D1, one XuanTie C906
// in-order single-issue core at 1 GHz, 1 GB DDR3L, and — decisively for the
// paper's results — no L2 cache at all, with an L1 whose bandwidth is only a
// modest improvement over DRAM (Fig. 1 discussion).
func MangoPiD1() Spec {
	return Spec{
		Name: "MangoPi", CPU: "Allwinner D1 (XuanTie C906)", ISA: "RV64IMAFDCV",
		Cores: 1, FreqGHz: 1.0, RAMBytes: 1 * units.GiB,
		IssueWidth: 1, FlopsPerCycle: 1, AutoVecBytes: 0,
		Mem: hier.Config{
			Cores:    1,
			LineSize: lineSize,
			L1: cache.Config{Name: "L1D", Size: 32 * units.KiB, Ways: 4,
				LineSize: lineSize, Policy: cache.LRU},
			L1HitCycles: 2.0, // ≈0.5 loads/cycle → ~4 GB/s of 8-byte loads
			UTLB:        tlb.Config{Name: "D-uTLB", Entries: 10, Ways: 10, PageShift: pageShift},
			JTLB:        &tlb.Config{Name: "jTLB", Entries: 128, Ways: 2, PageShift: pageShift},
			JTLBPenalty: 8,
			WalkLevels:  3, WalkCycles: 60, // walks go to DRAM: no L2 to catch PTEs
			DRAM: dram.Config{Name: "DDR3L", Channels: 1, BytesPerCycle: 2.0,
				LatencyCycles: 100, LineBytes: lineSize},
			MissOverlap: 1.0, // stalling in-order pipeline
			MaxInflight: 8,
			// §3.1: forward/backward consecutive and stride-based with
			// stride ≤ 16 cache lines.
			Prefetch: &prefetch.StrideConfig{
				LineSize: lineSize, Streams: 8, MaxStrideLines: 16,
				TrainThreshold: 2, InitDistance: 2, MaxDistance: 8, Ramp: false,
			},
		},
	}
}

// VisionFive models the StarFive VisionFive v1: JH7100 with two SiFive U74
// dual-issue in-order cores at 1 GHz and 8 GB LPDDR4 behind a severely
// reduced memory channel (the lowest DRAM bandwidth of all four devices in
// Fig. 1). L1 and L2 use the U74's random replacement policy; the prefetcher
// handles large strides and ramps its distance, which backfires when the
// starved channel cannot keep up (Fig. 6 "Unit-stride" discussion).
func VisionFive() Spec {
	return Spec{
		Name: "VisionFive", CPU: "StarFive JH7100 (SiFive U74)", ISA: "RV64IMAFDCB",
		Cores: 2, FreqGHz: 1.0, RAMBytes: 8 * units.GiB,
		IssueWidth: 2, FlopsPerCycle: 1, AutoVecBytes: 0,
		Mem: hier.Config{
			Cores:    2,
			LineSize: lineSize,
			L1: cache.Config{Name: "L1D", Size: 32 * units.KiB, Ways: 4,
				LineSize: lineSize, Policy: cache.Random, Seed: 0x5eed},
			L1HitCycles: 1.0, // dual-issue: ~1 load/cycle
			L2: &hier.Level{
				Cache: cache.Config{Name: "L2", Size: 128 * units.KiB, Ways: 8,
					LineSize: lineSize, Policy: cache.Random, Seed: 0xf00d},
				HitCycles: 22, Shared: true,
			},
			UTLB:        tlb.Config{Name: "DTLB", Entries: 40, Ways: 40, PageShift: pageShift},
			JTLB:        &tlb.Config{Name: "L2TLB", Entries: 512, Ways: 1, PageShift: pageShift},
			JTLBPenalty: 10,
			WalkLevels:  3, WalkCycles: 30,
			DRAM: dram.Config{Name: "LPDDR4", Channels: 2, BytesPerCycle: 0.5,
				LatencyCycles: 140, LineBytes: lineSize},
			MissOverlap: 1.0,
			MaxInflight: 6,
			// §3.1: forward and backward stride-based prefetch with large
			// strides and automatically increased prefetch distance.
			Prefetch: &prefetch.StrideConfig{
				LineSize: lineSize, Streams: 8, MaxStrideLines: 0,
				TrainThreshold: 2, InitDistance: 1, MaxDistance: 8, Ramp: true,
			},
		},
	}
}

// RaspberryPi4 models the Raspberry Pi 4B: four out-of-order Cortex-A72
// cores at 1.5 GHz with a shared 1 MiB L2 and LPDDR4 whose bandwidth towers
// over both RISC-V boards (Fig. 1) — while its *utilization* of that
// bandwidth in the transposition study is surprisingly low (Fig. 3).
func RaspberryPi4() Spec {
	return Spec{
		Name: "RaspberryPi4", CPU: "Broadcom BCM2711 (Cortex-A72)", ISA: "ARMv8-A",
		Cores: 4, FreqGHz: 1.5, RAMBytes: 4 * units.GiB,
		IssueWidth: 3, FlopsPerCycle: 2, AutoVecBytes: 16, // NEON
		Mem: hier.Config{
			Cores:    4,
			LineSize: lineSize,
			L1: cache.Config{Name: "L1D", Size: 32 * units.KiB, Ways: 2,
				LineSize: lineSize, Policy: cache.LRU},
			L1HitCycles: 0.5, // 2 loads/cycle
			L2: &hier.Level{
				Cache: cache.Config{Name: "L2", Size: 1 * units.MiB, Ways: 16,
					LineSize: lineSize, Policy: cache.LRU},
				HitCycles: 30, Shared: true,
			},
			UTLB:        tlb.Config{Name: "L1DTLB", Entries: 32, Ways: 32, PageShift: pageShift},
			JTLB:        &tlb.Config{Name: "L2TLB", Entries: 512, Ways: 4, PageShift: pageShift},
			JTLBPenalty: 7,
			WalkLevels:  3, WalkCycles: 25,
			DRAM: dram.Config{Name: "LPDDR4", Channels: 1, BytesPerCycle: 4.0,
				LatencyCycles: 230, LineBytes: lineSize},
			MissOverlap: 0.55, // modest out-of-order miss overlap
			MaxInflight: 8,
			Prefetch: &prefetch.StrideConfig{
				LineSize: lineSize, Streams: 8, MaxStrideLines: 0,
				TrainThreshold: 2, InitDistance: 2, MaxDistance: 16, Ramp: true,
			},
		},
	}
}

// XeonServer models the paper's reference platform: one socket of an Intel
// Xeon 4310T (10 Ice Lake cores, up to 3.4 GHz, private 1.25 MiB L2 per
// core, 15 MiB shared L3, many DDR4 channels). The paper pins work to the
// first socket to avoid NUMA, so a single-socket model suffices.
func XeonServer() Spec {
	return Spec{
		Name: "Xeon", CPU: "Intel Xeon 4310T (Ice Lake)", ISA: "x86-64 AVX-512",
		Cores: 10, FreqGHz: 3.4, RAMBytes: 64 * units.GiB,
		IssueWidth: 5, FlopsPerCycle: 2, AutoVecBytes: 64, // AVX-512
		Mem: hier.Config{
			Cores:    10,
			LineSize: lineSize,
			L1: cache.Config{Name: "L1D", Size: 48 * units.KiB, Ways: 12,
				LineSize: lineSize, Policy: cache.PLRU},
			L1HitCycles: 0.5,
			L2: &hier.Level{
				Cache: cache.Config{Name: "L2", Size: 1280 * units.KiB, Ways: 20,
					LineSize: lineSize, Policy: cache.PLRU},
				HitCycles: 14, Shared: false, // private per core
			},
			L3: &hier.Level{
				// 15 ways keeps the true 15 MiB capacity with a power-of-two
				// set count (the die's 12-way slices hash non-power-of-two).
				Cache: cache.Config{Name: "L3", Size: 15 * units.MiB, Ways: 15,
					LineSize: lineSize, Policy: cache.PLRU},
				HitCycles: 42, Shared: true,
			},
			UTLB:        tlb.Config{Name: "DTLB", Entries: 64, Ways: 4, PageShift: pageShift},
			JTLB:        &tlb.Config{Name: "STLB", Entries: 1536, Ways: 12, PageShift: pageShift},
			JTLBPenalty: 7,
			WalkLevels:  3, WalkCycles: 20,
			DRAM: dram.Config{Name: "DDR4", Channels: 8, BytesPerCycle: 2.0,
				LatencyCycles: 270, LineBytes: lineSize},
			MissOverlap: 0.22, // deep out-of-order window, many MSHRs
			MaxInflight: 12,
			Prefetch: &prefetch.StrideConfig{
				LineSize: lineSize, Streams: 16, MaxStrideLines: 0,
				TrainThreshold: 2, InitDistance: 4, MaxDistance: 32, Ramp: true,
			},
		},
	}
}

// All returns the paper's four devices in presentation order (the order the
// figures use: Xeon, Raspberry Pi, then the two RISC-V boards).
func All() []Spec {
	return []Spec{XeonServer(), RaspberryPi4(), VisionFive(), MangoPiD1()}
}

// Names returns the preset names in presentation order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// ByName returns the preset with the given Name. Names are case-sensitive;
// the error for an unknown name lists the valid ones.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("machine: unknown device %q (valid: %s)", name, strings.Join(Names(), ", "))
}
