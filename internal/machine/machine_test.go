package machine

import (
	"reflect"
	"strings"
	"testing"

	"riscvmem/internal/cache"
	"riscvmem/internal/hier"
	"riscvmem/internal/units"
)

func TestAllPresetsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestPresetCount(t *testing.T) {
	if got := len(All()); got != 4 {
		t.Fatalf("All() returned %d devices, want the paper's 4", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Xeon", "RaspberryPi4", "VisionFive", "MangoPi"} {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if s.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, s.Name)
		}
	}
	if _, err := ByName("Cray-1"); err == nil {
		t.Error("unknown device accepted")
	}
}

// TestByNameErrorPaths pins the failure behaviour cmd tools and the public
// DeviceByName facade rely on: unknown, empty, case-mismatched and
// whitespace-polluted names must all fail, the returned Spec must be zero
// (and in particular not Validate), and the error must name the valid
// presets so CLI users can self-correct.
func TestByNameErrorPaths(t *testing.T) {
	bad := []string{"", "xeon", "XEON", " Xeon", "Xeon ", "mangopi", "MangoPiD1", "Pi4", "device"}
	for _, name := range bad {
		s, err := ByName(name)
		if err == nil {
			t.Errorf("ByName(%q) unexpectedly succeeded with %q", name, s.Name)
			continue
		}
		if s.Name != "" || s.Cores != 0 {
			t.Errorf("ByName(%q) returned non-zero Spec %q alongside error", name, s.Name)
		}
		if s.Validate() == nil {
			t.Errorf("ByName(%q) error Spec validates", name)
		}
		if !strings.Contains(err.Error(), "unknown device") {
			t.Errorf("ByName(%q) error %q lacks the unknown-device marker", name, err)
		}
		for _, valid := range []string{"Xeon", "RaspberryPi4", "VisionFive", "MangoPi"} {
			if !strings.Contains(err.Error(), valid) {
				t.Errorf("ByName(%q) error %q does not list preset %s", name, err, valid)
			}
		}
	}
}

// TestIdentityCoversAllSpecFields is the drift guard for Spec.Identity: it
// pins the exact field sets of Spec and hier.Config that Identity mirrors
// into its comparable projection. Adding a field to either struct fails
// this test until the new field is (a) added to the identity struct in
// machine.go and (b) appended to the pinned list here — which is the
// reminder the pooled runner needs, since a field missing from Identity
// would let devices differing only in that field share pooled machines.
func TestIdentityCoversAllSpecFields(t *testing.T) {
	check := func(typ reflect.Type, want []string) {
		t.Helper()
		var got []string
		for i := 0; i < typ.NumField(); i++ {
			got = append(got, typ.Field(i).Name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s fields changed:\n got %v\nwant %v\nupdate Spec.Identity and this pin together",
				typ, got, want)
		}
	}
	check(reflect.TypeOf(Spec{}), []string{
		"Name", "CPU", "ISA", "Cores", "FreqGHz", "RAMBytes",
		"IssueWidth", "FlopsPerCycle", "AutoVecBytes", "Mem",
	})
	check(reflect.TypeOf(hier.Config{}), []string{
		"Cores", "LineSize", "L1", "L1HitCycles", "L2", "L3",
		"UTLB", "JTLB", "JTLBPenalty", "WalkLevels", "WalkCycles",
		"DRAM", "MissOverlap", "NewPrefetcher", "Prefetch", "MaxInflight",
	})
	// The leaf config structs (cache/tlb/dram.Config, hier.Level) are
	// embedded in the identity by value, so new fields there participate
	// in pooling equality automatically — no pin needed.
}

// TestIdentityDistinguishesVariants spot-checks the projection: identical
// presets share an identity, any parameter tweak breaks it.
func TestIdentityDistinguishesVariants(t *testing.T) {
	if VisionFive().Identity() != VisionFive().Identity() {
		t.Fatal("identical presets have distinct identities")
	}
	mutations := map[string]func(*Spec){
		"clock":         func(s *Spec) { s.FreqGHz = 2.0 },
		"dram channels": func(s *Spec) { s.Mem.DRAM.Channels = 4 },
		"L2 size":       func(s *Spec) { s.Mem.L2.Cache.Size *= 2 },
		"drop L2":       func(s *Spec) { s.Mem.L2 = nil },
		"jtlb entries":  func(s *Spec) { s.Mem.JTLB.Entries = 64 },
		"miss overlap":  func(s *Spec) { s.Mem.MissOverlap = 0.5 },
		"no prefetch":   func(s *Spec) { s.Mem.Prefetch = nil },
		"pref distance": func(s *Spec) { s.Mem.Prefetch.MaxDistance *= 2 },
		"pref ramp":     func(s *Spec) { s.Mem.Prefetch.Ramp = !s.Mem.Prefetch.Ramp },
	}
	base := VisionFive().Identity()
	for name, mutate := range mutations {
		s := VisionFive()
		if s.Mem.L2 != nil { // deep-copy the pointed-to levels before mutating
			l2 := *s.Mem.L2
			s.Mem.L2 = &l2
		}
		if s.Mem.JTLB != nil {
			j := *s.Mem.JTLB
			s.Mem.JTLB = &j
		}
		mutate(&s)
		if s.Identity() == base {
			t.Errorf("mutation %q does not change the identity", name)
		}
	}
}

// The §3.1 facts the experiments depend on.
func TestPaperFacts(t *testing.T) {
	d1 := MangoPiD1()
	if d1.Cores != 1 {
		t.Error("D1 must be single-core (why Parallel gains nothing, Fig. 2)")
	}
	if d1.Mem.L2 != nil {
		t.Error("D1 must have no L2 (Fig. 1/7 discussion)")
	}
	if d1.RAMBytes != 1*units.GiB {
		t.Error("D1 must have 1 GiB RAM (16384² skipped, Fig. 2)")
	}

	vf := VisionFive()
	if vf.Cores != 2 {
		t.Error("VisionFive has two U74 cores")
	}
	if vf.Mem.DRAM.Channels != 2 {
		t.Error("VisionFive models two memory channels (Fig. 3 discussion)")
	}
	if vf.Mem.L2 == nil || !vf.Mem.L2.Shared {
		t.Error("VisionFive L2 must exist and be shared")
	}

	pi := RaspberryPi4()
	if pi.Cores != 4 || pi.FreqGHz != 1.5 {
		t.Error("Pi 4: 4 cores at 1.5 GHz")
	}

	xeon := XeonServer()
	if xeon.Cores != 10 {
		t.Error("Xeon: 10 cores of the first socket (NUMA avoided)")
	}
	if xeon.Mem.L3 == nil || !xeon.Mem.L3.Shared {
		t.Error("Xeon needs a shared L3")
	}
	if xeon.Mem.L2.Shared {
		t.Error("Xeon L2 is private per core")
	}
	if xeon.AutoVecBytes != 64 {
		t.Error("Xeon vectorizes at AVX-512 width (the 19× blur result)")
	}
	for _, s := range []Spec{d1, vf} {
		if s.AutoVecBytes != 0 {
			t.Errorf("%s: paper's GCC emitted scalar RISC-V code", s.Name)
		}
		if s.Mem.MissOverlap != 1.0 {
			t.Errorf("%s: in-order cores expose full miss latency", s.Name)
		}
	}
}

// Fig. 1 ordering: raw DRAM bandwidth Xeon ≫ Pi4 ≫ D1 > VisionFive.
func TestDRAMBandwidthOrdering(t *testing.T) {
	bw := func(s Spec) float64 { return s.PeakDRAMBandwidth().GBps() }
	xeon, pi, vf, d1 := bw(XeonServer()), bw(RaspberryPi4()), bw(VisionFive()), bw(MangoPiD1())
	if !(xeon > pi && pi > d1 && d1 > vf) {
		t.Errorf("bandwidth ordering violated: xeon=%.1f pi=%.1f d1=%.1f vf=%.1f", xeon, pi, d1, vf)
	}
	if vf > 1.5 { // the starved channel
		t.Errorf("VisionFive peak %.2f GB/s too high for the paper's 'low bandwidth of DRAM'", vf)
	}
}

func TestFits(t *testing.T) {
	const m16384 = 16384 * 16384 * 8 // 2 GiB matrix
	if MangoPiD1().Fits(m16384) {
		t.Error("16384² must not fit on the 1 GiB Mango Pi (Fig. 2 bottom panel)")
	}
	if !VisionFive().Fits(m16384) {
		t.Error("16384² must fit on the 8 GiB VisionFive")
	}
	const m8192 = 8192 * 8192 * 8 // 512 MiB
	if !MangoPiD1().Fits(m8192) {
		t.Error("8192² must fit on the Mango Pi (Fig. 2 top panel)")
	}
}

func TestValidateRejectsBrokenSpecs(t *testing.T) {
	s := MangoPiD1()
	s.Cores = 0
	if s.Validate() == nil {
		t.Error("zero cores accepted")
	}
	s = MangoPiD1()
	s.Cores = 2 // mismatch with Mem.Cores
	if s.Validate() == nil {
		t.Error("core mismatch accepted")
	}
	s = MangoPiD1()
	s.FlopsPerCycle = 0
	if s.Validate() == nil {
		t.Error("zero flop rate accepted")
	}
	s = MangoPiD1()
	s.AutoVecBytes = -1
	if s.Validate() == nil {
		t.Error("negative SIMD width accepted")
	}
}

func TestString(t *testing.T) {
	got := MangoPiD1().String()
	for _, want := range []string{"MangoPi", "C906", "1 GiB"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

func TestNewHierarchyWorks(t *testing.T) {
	for _, s := range All() {
		h := s.NewHierarchy()
		if h.LineSize() != 64 {
			t.Errorf("%s: line size %d", s.Name, h.LineSize())
		}
		// A cold miss must complete in finite positive time.
		if done := h.MissPath(0, 0, 4096, false); done <= 0 {
			t.Errorf("%s: cold miss done = %v", s.Name, done)
		}
	}
}

// TestIdentityStringMirrorsIdentity pins the canonical device encoding the
// persistent memo store keys on: it must be deterministic, and it must
// distinguish exactly what Identity distinguishes — every mutation that
// changes the identity changes the string, and equal identities render
// equally.
func TestIdentityStringMirrorsIdentity(t *testing.T) {
	a, _ := VisionFive().IdentityString()
	b, _ := VisionFive().IdentityString()
	if a != b {
		t.Fatal("IdentityString is not deterministic")
	}
	if a == "" {
		t.Fatal("empty identity string")
	}
	if !strings.Contains(a, `"VisionFive"`) {
		t.Errorf("identity string does not quote the device name: %s", a)
	}
	mutations := map[string]func(*Spec){
		"clock":        func(s *Spec) { s.FreqGHz = 2.0 },
		"L2 size":      func(s *Spec) { s.Mem.L2.Cache.Size *= 2 },
		"drop L2":      func(s *Spec) { s.Mem.L2 = nil },
		"miss overlap": func(s *Spec) { s.Mem.MissOverlap = 0.5 },
		"no prefetch":  func(s *Spec) { s.Mem.Prefetch = nil },
		"policy":       func(s *Spec) { s.Mem.L1.Policy = cache.FIFO },
	}
	for name, mutate := range mutations {
		s := VisionFive()
		if s.Mem.L2 != nil {
			l2 := *s.Mem.L2
			s.Mem.L2 = &l2
		}
		mutate(&s)
		got, persistable := s.IdentityString()
		if !persistable {
			t.Errorf("mutation %q not persistable", name)
		}
		if got == a {
			t.Errorf("mutation %q does not change the identity string", name)
		}
	}
}

// TestIdentityStringFactorySpecsAreVolatile pins that a custom prefetcher
// factory — whose identity is a process-local code pointer — is flagged
// non-persistable, so the memo store never writes such keys to disk.
func TestIdentityStringFactorySpecsAreVolatile(t *testing.T) {
	if _, persistable := VisionFive().IdentityString(); !persistable {
		t.Fatal("preset flagged non-persistable")
	}
	s := specWithFactoryDistance(2)
	if _, persistable := s.IdentityString(); persistable {
		t.Fatal("factory-built spec flagged persistable")
	}
}
