// Spec mutation helpers: the building blocks of device-parameter ablations.
//
// Each helper deep-copies the spec and changes exactly one parameter, so a
// sweep (internal/sweep) can compose them freely without aliasing the base
// preset. None of them touch Name — Spec.Identity distinguishes the mutants
// from their base by the changed parameters themselves — but sweeps rename
// their cells anyway for readable reporting.
package machine

import (
	"riscvmem/internal/cache"
	"riscvmem/internal/hier"
	"riscvmem/internal/units"
)

// Clone returns a deep copy of the spec: the optional pointer-typed memory
// components (L2, L3, second-level TLB, declarative prefetcher) are copied,
// so mutating the clone never aliases the original.
func (s Spec) Clone() Spec {
	if s.Mem.L2 != nil {
		l2 := *s.Mem.L2
		s.Mem.L2 = &l2
	}
	if s.Mem.L3 != nil {
		l3 := *s.Mem.L3
		s.Mem.L3 = &l3
	}
	if s.Mem.JTLB != nil {
		j := *s.Mem.JTLB
		s.Mem.JTLB = &j
	}
	if s.Mem.Prefetch != nil {
		p := *s.Mem.Prefetch
		s.Mem.Prefetch = &p
	}
	return s
}

// Renamed returns a copy with the given Name (the other parameters, and so
// the simulated behaviour, are unchanged).
func (s Spec) Renamed(name string) Spec {
	s = s.Clone()
	s.Name = name
	return s
}

// l2ways picks an associativity for an L2 of the given size: the level's
// current ways when they still divide the capacity into a power-of-two set
// count, otherwise the largest power-of-two associativity that does.
func l2ways(current int, size, lineSize int64) int {
	valid := func(w int) bool {
		return w > 0 && size%(int64(w)*lineSize) == 0 && units.IsPow2(size/(int64(w)*lineSize))
	}
	if valid(current) {
		return current
	}
	for w := 32; w >= 1; w /= 2 {
		if valid(w) {
			return w
		}
	}
	return 1
}

// WithL2 returns a copy whose L2 has the given capacity. A device that
// already has an L2 keeps its policy and latency and changes capacity only
// (associativity is re-fit when the old way count no longer divides the new
// size evenly). A device without one — the Mango Pi's defining gap — gains a
// shared LRU L2 with the VisionFive's 22-cycle latency, the "what if the D1
// had an L2?" ablation.
func (s Spec) WithL2(size int64) Spec {
	s = s.Clone()
	if s.Mem.L2 == nil {
		s.Mem.L2 = &hier.Level{
			Cache: cache.Config{Name: "L2", Size: size, Ways: 8,
				LineSize: s.Mem.LineSize, Policy: cache.LRU},
			HitCycles: 22, Shared: true,
		}
	}
	s.Mem.L2.Cache.Size = size
	s.Mem.L2.Cache.Ways = l2ways(s.Mem.L2.Cache.Ways, size, s.Mem.LineSize)
	return s
}

// WithoutL2 returns a copy with no L2 — and therefore no L3, since an L3
// without an L2 is structurally invalid.
func (s Spec) WithoutL2() Spec {
	s = s.Clone()
	s.Mem.L2, s.Mem.L3 = nil, nil
	return s
}

// WithMaxInflight returns a copy whose per-core MSHR count (concurrent
// outstanding fills) is n — the knob behind the paper's MSHR-bounded
// streaming-bandwidth observation.
func (s Spec) WithMaxInflight(n int) Spec {
	s = s.Clone()
	s.Mem.MaxInflight = n
	return s
}

// WithMissOverlap returns a copy with the given miss-overlap factor (1.0 =
// fully stalling in-order core, smaller = more out-of-order miss overlap).
func (s Spec) WithMissOverlap(f float64) Spec {
	s = s.Clone()
	s.Mem.MissOverlap = f
	return s
}

// WithDRAMChannels returns a copy with n independent DRAM channels.
func (s Spec) WithDRAMChannels(n int) Spec {
	s = s.Clone()
	s.Mem.DRAM.Channels = n
	return s
}

// WithDRAMLatency returns a copy with the given fixed DRAM access latency in
// core cycles.
func (s Spec) WithDRAMLatency(cycles float64) Spec {
	s = s.Clone()
	s.Mem.DRAM.LatencyCycles = cycles
	return s
}

// WithL1Ways returns a copy whose L1 associativity is n. The caller is
// responsible for picking an n that keeps the set count a power of two
// (Validate rejects others).
func (s Spec) WithL1Ways(n int) Spec {
	s = s.Clone()
	s.Mem.L1.Ways = n
	return s
}

// WithPolicy returns a copy where every cache level uses the given
// replacement policy.
func (s Spec) WithPolicy(p cache.Policy) Spec {
	s = s.Clone()
	s.Mem.L1.Policy = p
	if s.Mem.L2 != nil {
		s.Mem.L2.Cache.Policy = p
	}
	if s.Mem.L3 != nil {
		s.Mem.L3.Cache.Policy = p
	}
	return s
}

// HasDeclarativePrefetcher reports whether the spec's prefetcher is the
// declarative stride config that the prefetcher mutation helpers (and sweep
// axes) can rewrite. All built-in presets qualify; specs using a custom
// NewPrefetcher factory do not.
func (s Spec) HasDeclarativePrefetcher() bool {
	return s.Mem.NewPrefetcher == nil && s.Mem.Prefetch != nil
}

// WithPrefetchDistance returns a copy whose stride prefetcher looks ahead at
// most max strides (InitDistance is clamped down to it). It requires a
// declarative prefetcher (HasDeclarativePrefetcher); other specs are
// returned unchanged apart from the deep copy.
func (s Spec) WithPrefetchDistance(max int) Spec {
	s = s.Clone()
	if !s.HasDeclarativePrefetcher() {
		return s
	}
	s.Mem.Prefetch.MaxDistance = max
	if s.Mem.Prefetch.InitDistance > max {
		s.Mem.Prefetch.InitDistance = max
	}
	return s
}

// WithPrefetchRamp returns a copy whose stride prefetcher does (or does not)
// automatically ramp its look-ahead distance — the VisionFive behaviour that
// Fig. 6 shows crowding out demand traffic on a starved memory channel. Like
// WithPrefetchDistance it requires a declarative prefetcher.
func (s Spec) WithPrefetchRamp(ramp bool) Spec {
	s = s.Clone()
	if !s.HasDeclarativePrefetcher() {
		return s
	}
	s.Mem.Prefetch.Ramp = ramp
	return s
}

// WithoutPrefetcher returns a copy with data prefetching disabled entirely.
func (s Spec) WithoutPrefetcher() Spec {
	s = s.Clone()
	s.Mem.NewPrefetcher = nil
	s.Mem.Prefetch = nil
	return s
}
