package run

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/memostore"
	"riscvmem/internal/prefetch"
)

// openTestStore builds a tiered store over dir, failing the test on error.
func openTestStore(t *testing.T, dir string) *memostore.Tiered {
	t.Helper()
	store, err := OpenStore(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// memoFiles lists every persisted entry under dir (quarantine and temp
// files excluded), so corruption tests can damage them in place.
func memoFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "quarantine" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".memo") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestPersistDiskWarmOracle is the acceptance test for the persistent tier:
// a cold run persists the full kernel×device cross-product, and a fresh
// Runner in a "restarted process" (new store, same directory, empty memory
// tier) serves the whole batch from disk with zero new simulations and
// bit-identical Results.
func TestPersistDiskWarmOracle(t *testing.T) {
	jobs := crossProduct()
	dir := t.TempDir()

	cold, err := New(Options{Parallelism: 4, Store: openTestStore(t, dir)}).
		Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(memoFiles(t, dir)); got != len(jobs) {
		t.Fatalf("cold run persisted %d entries, want %d (every cell is persistable)", got, len(jobs))
	}

	warmRunner := New(Options{Parallelism: 4, Store: openTestStore(t, dir)})
	warm, err := warmRunner.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := warmRunner.CacheStats()
	if misses != 0 {
		t.Errorf("restarted runner simulated %d cells, want 0 (all on disk)", misses)
	}
	if hits != uint64(len(jobs)) {
		t.Errorf("restarted runner hits = %d, want %d", hits, len(jobs))
	}
	ts := warmRunner.TierStats()
	if ts.DiskHits != uint64(len(jobs)) {
		t.Errorf("disk hits = %d, want %d (every cell served from the disk tier)", ts.DiskHits, len(jobs))
	}
	if ts.DiskCorrupt != 0 || ts.DiskWriteErrors != 0 {
		t.Errorf("clean warm run reported corruption/write errors: %+v", ts)
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Errorf("job %d: disk-warm result diverges from cold:\n got %+v\nwant %+v", i, warm[i], cold[i])
		}
	}

	// A second pass on the same runner must come from the promoted memory
	// tier — the disk is not re-read for hot keys.
	if _, err := warmRunner.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if again := warmRunner.TierStats(); again.DiskHits != ts.DiskHits {
		t.Errorf("second warm pass re-read the disk tier: disk hits %d -> %d", ts.DiskHits, again.DiskHits)
	}
}

// TestPersistCorruptionRecovery damages half the persisted entries —
// alternating truncation and bit-flips — and pins that a restarted Runner
// still returns results bit-identical to the cold run: damaged entries are
// quarantined, counted, and transparently re-simulated.
func TestPersistCorruptionRecovery(t *testing.T) {
	jobs := crossProduct()[:16] // one device's worth is plenty here
	dir := t.TempDir()

	cold, err := New(Options{Parallelism: 4, Store: openTestStore(t, dir)}).
		Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	files := memoFiles(t, dir)
	if len(files) != len(jobs) {
		t.Fatalf("persisted %d entries, want %d", len(files), len(jobs))
	}
	damaged := 0
	for i, path := range files {
		if i%2 != 0 {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case damaged%2 == 0 && len(data) > 4: // truncate mid-entry
			data = data[:len(data)/2]
		default: // flip a bit inside the payload
			data[len(data)/2] ^= 0x40
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}

	warmRunner := New(Options{Parallelism: 4, Store: openTestStore(t, dir)})
	warm, err := warmRunner.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Errorf("job %d: post-corruption result diverges from cold:\n got %+v\nwant %+v", i, warm[i], cold[i])
		}
	}
	_, misses := warmRunner.CacheStats()
	if misses != uint64(damaged) {
		t.Errorf("re-simulated %d cells, want exactly the %d damaged ones", misses, damaged)
	}
	ts := warmRunner.TierStats()
	if ts.DiskCorrupt != uint64(damaged) {
		t.Errorf("disk corrupt count = %d, want %d", ts.DiskCorrupt, damaged)
	}
	if ts.DiskHits != uint64(len(jobs)-damaged) {
		t.Errorf("disk hits = %d, want %d (the undamaged entries)", ts.DiskHits, len(jobs)-damaged)
	}
	// Re-simulation re-persisted the damaged cells: a third process sees a
	// fully healed store.
	healed := New(Options{Parallelism: 4, Store: openTestStore(t, dir)})
	if _, err := healed.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if _, m := healed.CacheStats(); m != 0 {
		t.Errorf("healed store still re-simulated %d cells", m)
	}
}

// TestPersistVolatileSpecStaysOffDisk pins the persistability gate: a spec
// with a custom prefetcher factory (process-local function pointer in its
// identity) is memoized in memory but never written to disk — a restarted
// process must re-simulate rather than trust a pointer-derived key.
func TestPersistVolatileSpecStaysOffDisk(t *testing.T) {
	spec := machine.MangoPiD1()
	spec.Name = "volatile-pref"
	spec.Mem.NewPrefetcher = func() prefetch.Prefetcher { return prefetch.None{} }
	w := Transpose(transpose.Config{N: 64, Variant: transpose.Naive})
	dir := t.TempDir()

	r := New(Options{Parallelism: 1, Store: openTestStore(t, dir)})
	for i := 0; i < 2; i++ {
		if _, err := r.RunOne(context.Background(), spec, w); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := r.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("hits, misses = %d, %d; want 1, 1 (memory tier still memoizes)", hits, misses)
	}
	if ts := r.TierStats(); ts.DiskWrites != 0 {
		t.Errorf("volatile cell was persisted: %d disk writes", ts.DiskWrites)
	}
	if files := memoFiles(t, dir); len(files) != 0 {
		t.Errorf("found %d entries on disk, want none", len(files))
	}

	restarted := New(Options{Parallelism: 1, Store: openTestStore(t, dir)})
	if _, err := restarted.RunOne(context.Background(), spec, w); err != nil {
		t.Fatal(err)
	}
	if _, misses := restarted.CacheStats(); misses != 1 {
		t.Errorf("restarted process misses = %d, want 1 (volatile cell re-simulated)", misses)
	}
}
