package run

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/sim"
)

// TestCacheKeyGolden pins the canonical CacheKey strings of the built-in
// adapters. These are memoization identities: changing one silently
// invalidates (or worse, collides) warm caches, so any change here must be
// deliberate.
func TestCacheKeyGolden(t *testing.T) {
	cases := []struct {
		w    Workload
		want string
	}{
		// Unset Cores/ScaleBy normalize to their documented defaults, so the
		// key matches an explicitly defaulted config.
		{Stream(stream.Config{Test: stream.Triad, Elems: 65536, Reps: 2}),
			"stream:cores=1,elems=65536,reps=2,scaleby=1,test=TRIAD"},
		{Stream(stream.Config{Test: stream.Triad, Elems: 65536, Cores: 1, Reps: 2, ScaleBy: 1}),
			"stream:cores=1,elems=65536,reps=2,scaleby=1,test=TRIAD"},
		{Stream(stream.Config{Test: stream.Copy, Elems: 4096, Cores: 2, Reps: 1, ScaleBy: 4}),
			"stream:cores=2,elems=4096,reps=1,scaleby=4,test=COPY"},
		{Transpose(transpose.Config{N: 512, Variant: transpose.Blocking}),
			"transpose:block=0,n=512,variant=Blocking,verify=false"},
		{Transpose(transpose.Config{N: 1024, Variant: transpose.ManualBlocking, Block: 16, Verify: true}),
			"transpose:block=16,n=1024,variant=Manual_blocking,verify=true"},
		{Blur(blur.Config{W: 636, H: 507, C: 3, F: 19, Variant: blur.Memory}),
			"gblur:c=3,f=19,h=507,variant=Memory,verify=false,w=636"},
	}
	for _, tc := range cases {
		kw, ok := tc.w.(Keyed)
		if !ok {
			t.Fatalf("%s does not implement Keyed", tc.w.Name())
		}
		if got := kw.CacheKey(); got != tc.want {
			t.Errorf("%s CacheKey = %q, want %q", tc.w.Name(), got, tc.want)
		}
	}
}

// TestCacheKeyDeterminism asserts the key is identical across repeated,
// independently constructed computations — the property the fmt "%+v" keys
// could not guarantee across struct refactors, and which map-ordered
// rendering would break within a single process.
func TestCacheKeyDeterminism(t *testing.T) {
	build := func() string {
		return Blur(blur.Config{W: 100, H: 50, C: 3, F: 5, Variant: blur.OneD}).(Keyed).CacheKey()
	}
	want := build()
	for i := 0; i < 100; i++ {
		if got := build(); got != want {
			t.Fatalf("iteration %d: CacheKey %q != %q", i, got, want)
		}
	}
}

// TestCanonicalSpecCoversAllConfigFields guards the canonical encoders
// against silently dropping a config field: adding a field to a kernel
// Config must fail here until the corresponding *Spec function (and so the
// CacheKey) learns about it.
func TestCanonicalSpecCoversAllConfigFields(t *testing.T) {
	cases := []struct {
		name   string
		fields int
		spec   WorkloadSpec
	}{
		{"stream", reflect.TypeOf(stream.Config{}).NumField(), StreamSpec(stream.Config{})},
		{"transpose", reflect.TypeOf(transpose.Config{}).NumField(), TransposeSpec(transpose.Config{})},
		{"gblur", reflect.TypeOf(blur.Config{}).NumField(), BlurSpec(blur.Config{})},
	}
	for _, tc := range cases {
		if got := len(tc.spec.Params); got != tc.fields {
			t.Errorf("%s: canonical spec has %d params but Config has %d fields — a field is missing from the encoding (or a param is stale)",
				tc.name, got, tc.fields)
		}
	}
}

// TestParseWorkloadSpecRoundTrip is the grammar property test:
// ParseWorkloadSpec(spec.String()) == spec, over the canonical encodings of
// randomized built-in configs and hand-written specs.
func TestParseWorkloadSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var specs []WorkloadSpec
	for i := 0; i < 50; i++ {
		specs = append(specs,
			StreamSpec(stream.Config{
				Test:  stream.Tests()[rng.Intn(4)],
				Elems: rng.Intn(1 << 20), Cores: rng.Intn(16),
				Reps: rng.Intn(10), ScaleBy: rng.Intn(8),
			}),
			TransposeSpec(transpose.Config{
				N: rng.Intn(4096), Variant: transpose.Variants()[rng.Intn(5)],
				Block: rng.Intn(64), Verify: rng.Intn(2) == 0,
			}),
			BlurSpec(blur.Config{
				W: rng.Intn(4096), H: rng.Intn(4096), C: 1 + rng.Intn(4),
				F: 1 + 2*rng.Intn(15), Variant: blur.Variants()[rng.Intn(5)],
				Verify: rng.Intn(2) == 0,
			}),
		)
	}
	specs = append(specs,
		WorkloadSpec{Kernel: "mykernel"},
		WorkloadSpec{Kernel: "mykernel", Params: map[string]string{"a": "1", "b": "x"}},
	)
	for _, spec := range specs {
		s := spec.String()
		back, err := ParseWorkloadSpec(s)
		if err != nil {
			t.Fatalf("ParseWorkloadSpec(%q): %v", s, err)
		}
		if !back.Equal(spec) {
			t.Errorf("round trip %q: got %+v, want %+v", s, back, spec)
		}
		if back.String() != s {
			t.Errorf("re-render of %q: got %q", s, back.String())
		}
	}
}

// TestParseWorkloadSpecGrammar covers the grammar forms and normalization.
func TestParseWorkloadSpecGrammar(t *testing.T) {
	cases := []struct {
		in   string
		want WorkloadSpec
	}{
		{"stream", WorkloadSpec{Kernel: "stream"}},
		{"STREAM:Test=triad, Elems=100", WorkloadSpec{Kernel: "stream",
			Params: map[string]string{"test": "triad", "elems": "100"}}},
		{"stream/TRIAD", WorkloadSpec{Kernel: "stream",
			Params: map[string]string{"test": "TRIAD"}}},
		{"transpose/Blocking", WorkloadSpec{Kernel: "transpose",
			Params: map[string]string{"variant": "Blocking"}}},
		{"gblur/Memory", WorkloadSpec{Kernel: "gblur",
			Params: map[string]string{"variant": "Memory"}}},
		// An unknown prefix keeps the slash AND its case: custom registry
		// names may legitimately contain both ("chase/8MiB").
		{"chase/8MiB", WorkloadSpec{Kernel: "chase/8MiB"}},
		{"  transpose:n=256,variant=Naive  ", WorkloadSpec{Kernel: "transpose",
			Params: map[string]string{"n": "256", "variant": "Naive"}}},
	}
	for _, tc := range cases {
		got, err := ParseWorkloadSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseWorkloadSpec(%q): %v", tc.in, err)
		}
		if !got.Equal(tc.want) {
			t.Errorf("ParseWorkloadSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestParseWorkloadSpecErrors covers the malformed-spec error paths; every
// message must carry the grammar so the CLI user can self-correct.
func TestParseWorkloadSpecErrors(t *testing.T) {
	for _, in := range []string{
		"", "  ", ":", ":a=b", "stream:", "stream:elems", "stream:=4",
		"stream:elems=", "stream:elems=1,elems=2", "stream/",
	} {
		_, err := ParseWorkloadSpec(in)
		if err == nil {
			t.Errorf("ParseWorkloadSpec(%q): expected error", in)
			continue
		}
		if !strings.Contains(err.Error(), "kernel[:key=value") &&
			!strings.Contains(err.Error(), "variant") &&
			!strings.Contains(err.Error(), "duplicate") {
			t.Errorf("ParseWorkloadSpec(%q) error %q does not mention the grammar", in, err)
		}
	}
}

// TestNewWorkloadErrors covers unknown kernels, unknown parameters and bad
// values: errors must list the registered kernels (or the accepted keys)
// and the grammar, matching the machine.ByName error style.
func TestNewWorkloadErrors(t *testing.T) {
	_, err := NewWorkload(WorkloadSpec{Kernel: "nope"})
	if err == nil {
		t.Fatal("unknown kernel: expected error")
	}
	for _, want := range []string{"stream", "transpose", "gblur", "grammar"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-kernel error %q does not mention %q", err, want)
		}
	}

	_, err = NewWorkload(MustParseWorkloadSpec("stream:elmes=4096"))
	if err == nil {
		t.Fatal("unknown parameter: expected error")
	}
	for _, want := range []string{"elmes", "accepted", "elems"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-parameter error %q does not mention %q", err, want)
		}
	}

	_, err = NewWorkload(MustParseWorkloadSpec("stream:elems=many"))
	if err == nil || !strings.Contains(err.Error(), "integer") {
		t.Errorf("bad int error = %v, want mention of integer", err)
	}

	_, err = NewWorkload(MustParseWorkloadSpec("stream:test=WRONG"))
	if err == nil || !strings.Contains(err.Error(), "TRIAD") {
		t.Errorf("bad test error = %v, want the valid test list", err)
	}

	_, err = NewWorkload(MustParseWorkloadSpec("transpose:variant=Zigzag"))
	if err == nil || !strings.Contains(err.Error(), "Blocking") {
		t.Errorf("bad variant error = %v, want the valid variant list", err)
	}

	// A registered (non-factory) workload resolves by bare name but rejects
	// parameters.
	w := NewFunc("spec-test-custom", func(ctx context.Context, m *sim.Machine) (Result, error) {
		return Result{}, nil
	})
	if err := Register(w); err != nil {
		t.Fatal(err)
	}
	got, err := NewWorkload(WorkloadSpec{Kernel: "spec-test-custom"})
	if err != nil || got.Name() != "spec-test-custom" {
		t.Fatalf("registry fallback: %v, %v", got, err)
	}
	if _, err := NewWorkload(WorkloadSpec{Kernel: "spec-test-custom",
		Params: map[string]string{"x": "1"}}); err == nil {
		t.Error("params on a registered workload: expected error")
	}

	// A mixed-case registered name survives the parse → resolve round trip
	// (the parser must not lowercase names that are not factory kernels).
	mixed := NewFunc("spec-test-Mixed/8MiB", func(ctx context.Context, m *sim.Machine) (Result, error) {
		return Result{}, nil
	})
	if err := Register(mixed); err != nil {
		t.Fatal(err)
	}
	got, err = ParseWorkload("spec-test-Mixed/8MiB")
	if err != nil || got.Name() != "spec-test-Mixed/8MiB" {
		t.Errorf("mixed-case registered name: %v, %v", got, err)
	}
}

// TestNewWorkloadBuildsEquivalentConfigs pins that the factory path and the
// direct-config path produce workloads with identical identities (Name and
// CacheKey) when given the same parameters.
func TestNewWorkloadBuildsEquivalentConfigs(t *testing.T) {
	cases := []struct {
		specStr string
		direct  Workload
	}{
		{"stream:test=triad,elems=65536,cores=1,reps=2,scaleby=1",
			Stream(stream.Config{Test: stream.Triad, Elems: 65536, Cores: 1, Reps: 2, ScaleBy: 1})},
		{"transpose:variant=manual_blocking,n=256,block=8,verify=true",
			Transpose(transpose.Config{Variant: transpose.ManualBlocking, N: 256, Block: 8, Verify: true})},
		{"gblur:variant=1d_kernels,w=100,h=80,c=2,f=5",
			Blur(blur.Config{Variant: blur.OneD, W: 100, H: 80, C: 2, F: 5})},
	}
	for _, tc := range cases {
		w, err := ParseWorkload(tc.specStr)
		if err != nil {
			t.Fatalf("ParseWorkload(%q): %v", tc.specStr, err)
		}
		if w.Name() != tc.direct.Name() {
			t.Errorf("%q: Name %q != direct %q", tc.specStr, w.Name(), tc.direct.Name())
		}
		if got, want := w.(Keyed).CacheKey(), tc.direct.(Keyed).CacheKey(); got != want {
			t.Errorf("%q: CacheKey %q != direct %q", tc.specStr, got, want)
		}
	}
}

// TestWorkloadSpecJSON round-trips both JSON forms (object and grammar
// string) and pins the marshaled shape.
func TestWorkloadSpecJSON(t *testing.T) {
	spec := MustParseWorkloadSpec("stream:test=TRIAD,elems=4096")
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back WorkloadSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(spec) {
		t.Errorf("object round trip: %+v != %+v", back, spec)
	}

	var fromString WorkloadSpec
	if err := json.Unmarshal([]byte(`"stream:test=TRIAD,elems=4096"`), &fromString); err != nil {
		t.Fatal(err)
	}
	if !fromString.Equal(spec) {
		t.Errorf("string form: %+v != %+v", fromString, spec)
	}

	var bad WorkloadSpec
	if err := json.Unmarshal([]byte(`"stream:elems="`), &bad); err == nil {
		t.Error("malformed string spec: expected error")
	}

	// Mixed-case keys in the object form normalize to lowercase.
	var mixed WorkloadSpec
	if err := json.Unmarshal([]byte(`{"kernel":"Stream","params":{"Test":"TRIAD"}}`), &mixed); err != nil {
		t.Fatal(err)
	}
	if mixed.Kernel != "stream" || mixed.Params["test"] != "TRIAD" {
		t.Errorf("normalization: %+v", mixed)
	}

	// Object-form validation: misspelled fields, case-colliding keys and
	// reserved characters fail loudly instead of silently running defaults
	// (or rendering a canonical string that parses to a different spec).
	for _, in := range []string{
		`{"kernel":"stream","parms":{"elems":"9"}}`,
		`{"kernel":"stream","params":{"Elems":"100","elems":"200"}}`,
		`{"kernel":"k","params":{"a":"1,b=2"}}`,
		`{"kernel":"k:v","params":{"a":"1"}}`,
		`{"kernel":""}`,
	} {
		var s WorkloadSpec
		if err := json.Unmarshal([]byte(in), &s); err == nil {
			t.Errorf("unmarshal %s: expected error, got %+v", in, s)
		}
	}
}

// TestNewWorkloadValidatesHandBuiltSpecs pins that reserved characters in
// hand-built specs are rejected before they can poison a canonical string
// or cache key.
func TestNewWorkloadValidatesHandBuiltSpecs(t *testing.T) {
	for _, spec := range []WorkloadSpec{
		{Kernel: ""},
		{Kernel: "a,b"},
		{Kernel: "stream", Params: map[string]string{"elems": "1,cores=2"}},
		{Kernel: "stream", Params: map[string]string{"el=ems": "1"}},
		{Kernel: "stream", Params: map[string]string{"elems": ""}},
	} {
		if _, err := NewWorkload(spec); err == nil {
			t.Errorf("NewWorkload(%+v): expected validation error", spec)
		}
	}
}

// TestKernelsListing asserts the built-ins are registered with docs.
func TestKernelsListing(t *testing.T) {
	infos := Kernels()
	byName := map[string]KernelInfo{}
	for _, k := range infos {
		byName[k.Kernel] = k
	}
	for _, want := range []string{"stream", "transpose", "gblur"} {
		k, ok := byName[want]
		if !ok {
			t.Fatalf("kernel %q not registered (have %v)", want, infos)
		}
		if k.Summary == "" || k.Params == "" || k.VariantKey == "" {
			t.Errorf("kernel %q underdocumented: %+v", want, k)
		}
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Kernel >= infos[i].Kernel {
			t.Errorf("Kernels() not sorted: %q before %q", infos[i-1].Kernel, infos[i].Kernel)
		}
	}
}
