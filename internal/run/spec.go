package run

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// WorkloadSpec is a workload as data: a kernel name plus string parameters.
// It is the wire-format identity of a job — parseable from the CLI grammar
//
//	kernel[:key=value,key=value,...]     e.g. stream:test=TRIAD,elems=65536
//	kernel/variant                       shorthand, e.g. transpose/Blocking
//
// (mirroring the sweep-axis grammar), marshalable to/from JSON, and — once
// canonicalized — the stable string every built-in workload derives its
// memoization CacheKey from. Keys are case-insensitive (stored lowercase);
// values are kernel-defined. Neither may contain ',' or '=' (there is no
// escaping in the grammar); '/' and ':' are reserved in kernel names.
type WorkloadSpec struct {
	Kernel string            `json:"kernel"`
	Params map[string]string `json:"params,omitempty"`
}

// String renders the spec in the canonical grammar: the kernel name, then
// the parameters sorted by key — so two equal specs always render
// identically, independent of map iteration or construction order. The
// output parses back to an equal spec (ParseWorkloadSpec(s.String()) == s).
func (s WorkloadSpec) String() string {
	if len(s.Params) == 0 {
		return s.Kernel
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Kernel)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	return b.String()
}

// Equal reports whether two specs denote the same kernel and parameters.
func (s WorkloadSpec) Equal(o WorkloadSpec) bool {
	if s.Kernel != o.Kernel || len(s.Params) != len(o.Params) {
		return false
	}
	for k, v := range s.Params {
		if ov, ok := o.Params[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// With returns a copy of the spec with the parameter set (added or
// replaced). The receiver is not modified.
func (s WorkloadSpec) With(key, value string) WorkloadSpec {
	p := make(map[string]string, len(s.Params)+1)
	for k, v := range s.Params {
		p[k] = v
	}
	p[strings.ToLower(key)] = value
	return WorkloadSpec{Kernel: s.Kernel, Params: p}
}

// UnmarshalJSON accepts either the object form {"kernel":...,"params":{...}}
// or a plain grammar string ("stream:test=TRIAD,elems=65536") — the latter
// keeps hand-written requests terse.
func (s *WorkloadSpec) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var str string
		if err := json.Unmarshal(data, &str); err != nil {
			return err
		}
		spec, err := ParseWorkloadSpec(str)
		if err != nil {
			return err
		}
		*s = spec
		return nil
	}
	type plain WorkloadSpec // drop methods to avoid recursion
	var p plain
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields() // typos ("parms") fail loudly, matching the transport
	if err := dec.Decode(&p); err != nil {
		return err
	}
	p.Kernel = canonicalKernelName(strings.TrimSpace(p.Kernel))
	if len(p.Params) > 0 {
		norm := make(map[string]string, len(p.Params))
		for k, v := range p.Params {
			lk := strings.ToLower(k)
			if _, dup := norm[lk]; dup {
				// Folding would silently keep a map-iteration-dependent one
				// of the two values; reject like the grammar's duplicate
				// check does.
				return fmt.Errorf("run: workload spec: duplicate parameter %q (keys fold to lowercase)", lk)
			}
			norm[lk] = v
		}
		p.Params = norm
	}
	spec := WorkloadSpec(p)
	if err := spec.validate(); err != nil {
		return err
	}
	*s = spec
	return nil
}

// validate enforces the structural rules the grammar guarantees but
// hand-built and JSON-decoded specs could violate: a non-empty kernel name
// without grammar metacharacters, and no ',' or '=' in parameter keys or
// values (there is no escaping, so such a spec would render a canonical
// string that parses back to a different spec — and could collide with
// another spec's cache key).
func (s WorkloadSpec) validate() error {
	if s.Kernel == "" {
		return fmt.Errorf("run: workload spec with empty kernel name (want %s)", SpecGrammar)
	}
	if strings.ContainsAny(s.Kernel, ":,=") {
		return fmt.Errorf("run: kernel name %q contains a reserved character (':', ',' or '=')", s.Kernel)
	}
	for k, v := range s.Params {
		if k == "" || strings.ContainsAny(k, ",=") {
			return fmt.Errorf("run: workload spec %s: parameter key %q is empty or contains ',' or '='", s.Kernel, k)
		}
		if v == "" || strings.ContainsAny(v, ",=") {
			return fmt.Errorf("run: workload spec %s: parameter %s value %q is empty or contains ',' or '='", s.Kernel, k, v)
		}
	}
	return nil
}

// SpecGrammar is the one-line workload spec grammar, carried by every spec
// error and by the service discovery document.
const SpecGrammar = "kernel[:key=value,key=value,...] or kernel/variant"

// canonicalKernelName normalizes a bare workload name: factory kernel names
// are lowercase and matched case-insensitively, but a name that is not a
// registered kernel is kept verbatim — registered custom workloads (e.g.
// "chase/8MiB") resolve by exact name through the workload registry.
func canonicalKernelName(name string) string {
	lower := strings.ToLower(name)
	if lower == name {
		return name
	}
	if _, ok := lookupKernel(lower); ok {
		return lower
	}
	return name
}

// ParseWorkloadSpec parses the CLI grammar into a WorkloadSpec.
//
//	stream:test=TRIAD,elems=65536   explicit parameters
//	transpose/Blocking              shorthand for the kernel's variant key
//	gblur                           bare kernel (all defaults)
//	chase/8MiB                      a registered custom workload's name
//
// Factory kernel names are matched case-insensitively (and stored
// lowercase); a name that is not a registered kernel is kept verbatim,
// since registered custom workloads resolve by exact name. Parameter keys
// are lowercased; values keep their case (kernels resolve them
// case-insensitively where that makes sense). The kernel/variant shorthand
// expands through the spec-factory registry: when the prefix names a
// registered kernel with a variant key, the suffix becomes that parameter;
// otherwise the whole string is kept as a (custom registry) kernel name.
func ParseWorkloadSpec(s string) (WorkloadSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return WorkloadSpec{}, fmt.Errorf("run: empty workload spec (want %s)", SpecGrammar)
	}
	kernel, rest, hasParams := strings.Cut(s, ":")
	kernel = strings.TrimSpace(kernel)
	if !hasParams {
		// Maybe the kernel/variant shorthand. Only expand when the prefix is
		// a registered kernel that declares a variant key — "chase/8MiB" is a
		// legitimate custom workload name.
		if prefix, variant, ok := strings.Cut(kernel, "/"); ok {
			if info, found := lookupKernel(strings.ToLower(prefix)); found && info.info.VariantKey != "" {
				variant = strings.TrimSpace(variant)
				if variant == "" {
					return WorkloadSpec{}, fmt.Errorf("run: workload spec %q: empty variant (want %s)", s, SpecGrammar)
				}
				return WorkloadSpec{
					Kernel: strings.ToLower(prefix),
					Params: map[string]string{info.info.VariantKey: variant},
				}, nil
			}
		}
		spec := WorkloadSpec{Kernel: canonicalKernelName(kernel)}
		if err := spec.validate(); err != nil {
			return WorkloadSpec{}, err
		}
		return spec, nil
	}
	if kernel == "" {
		return WorkloadSpec{}, fmt.Errorf("run: workload spec %q: empty kernel name (want %s)", s, SpecGrammar)
	}
	if strings.TrimSpace(rest) == "" {
		return WorkloadSpec{}, fmt.Errorf("run: workload spec %q: empty parameter list (want %s)", s, SpecGrammar)
	}
	spec := WorkloadSpec{Kernel: canonicalKernelName(kernel), Params: map[string]string{}}
	for _, kv := range strings.Split(rest, ",") {
		key, value, ok := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		if !ok || key == "" || value == "" {
			return WorkloadSpec{}, fmt.Errorf("run: workload spec %q: bad parameter %q (want %s)", s, kv, SpecGrammar)
		}
		if _, dup := spec.Params[key]; dup {
			return WorkloadSpec{}, fmt.Errorf("run: workload spec %q: duplicate parameter %q", s, key)
		}
		spec.Params[key] = value
	}
	// The split on ':' leaves ',' and '=' possible in the kernel (and in
	// the no-colon path above); validate like the JSON decoder does so no
	// entry point builds a spec whose canonical string is ambiguous.
	if err := spec.validate(); err != nil {
		return WorkloadSpec{}, err
	}
	return spec, nil
}

// MustParseWorkloadSpec is ParseWorkloadSpec but panics on error; for tests
// and examples with literal specs.
func MustParseWorkloadSpec(s string) WorkloadSpec {
	spec, err := ParseWorkloadSpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// KernelInfo documents one spec-buildable kernel for listings (/v1/workloads,
// CLI error messages) and drives the kernel/variant shorthand.
type KernelInfo struct {
	// Kernel is the grammar name, lowercase ("stream").
	Kernel string `json:"kernel"`
	// Summary is a one-line description.
	Summary string `json:"summary"`
	// Params documents the accepted parameters, human-readable.
	Params string `json:"params"`
	// VariantKey is the parameter the "kernel/value" shorthand sets
	// ("test" for stream, "variant" for transpose and gblur); empty
	// disables the shorthand for this kernel.
	VariantKey string `json:"variant_key,omitempty"`
}

// SpecFactory builds a Workload from a parsed spec. The factory must reject
// unknown parameter keys (use the params helper) so typos fail loudly
// instead of silently running defaults.
type SpecFactory func(spec WorkloadSpec) (Workload, error)

type kernelEntry struct {
	info  KernelInfo
	build SpecFactory
}

// The process-wide kernel (spec factory) registry, guarded by the same
// mutex as the workload registry — both are read on every service request.
var kernels = map[string]kernelEntry{}

// RegisterSpecFactory adds a kernel to the process-wide spec registry: a
// name → (Params) → Workload constructor, plus the documentation that
// listings and error messages surface. It errors on a nil factory, an empty
// or non-lowercase kernel name, reserved characters, or a duplicate.
func RegisterSpecFactory(info KernelInfo, build SpecFactory) error {
	if build == nil {
		return fmt.Errorf("run: register nil spec factory")
	}
	if info.Kernel == "" {
		return fmt.Errorf("run: register spec factory with empty kernel name")
	}
	if info.Kernel != strings.ToLower(info.Kernel) || strings.ContainsAny(info.Kernel, ":/,= \t") {
		return fmt.Errorf("run: kernel name %q must be lowercase without ':', '/', ',', '=' or spaces", info.Kernel)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := kernels[info.Kernel]; dup {
		return fmt.Errorf("run: kernel %q already registered", info.Kernel)
	}
	kernels[info.Kernel] = kernelEntry{info: info, build: build}
	return nil
}

// MustRegisterSpecFactory is RegisterSpecFactory but panics on error; for
// package init blocks.
func MustRegisterSpecFactory(info KernelInfo, build SpecFactory) {
	if err := RegisterSpecFactory(info, build); err != nil {
		panic(err)
	}
}

func lookupKernel(name string) (kernelEntry, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := kernels[name]
	return e, ok
}

// Kernels lists the registered spec-buildable kernels, sorted by name.
func Kernels() []KernelInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]KernelInfo, 0, len(kernels))
	for _, e := range kernels {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

// NewWorkload materializes a spec: the kernel's factory builds the workload
// from the parameters. Specs whose kernel is not factory-registered fall
// back to the process-wide workload registry (custom workloads registered
// under a plain name take no parameters). The error for an unknown kernel
// lists the registered kernels, the registered workload names, and the
// grammar — everything needed to fix the request.
func NewWorkload(spec WorkloadSpec) (Workload, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if e, ok := lookupKernel(strings.ToLower(spec.Kernel)); ok {
		w, err := e.build(spec)
		if err != nil {
			return nil, fmt.Errorf("run: workload %q: %w (params: %s)", spec.String(), err, e.info.Params)
		}
		return w, nil
	}
	if w, err := Lookup(spec.Kernel); err == nil {
		if len(spec.Params) > 0 {
			return nil, fmt.Errorf("run: workload %q is a registered workload and takes no parameters (got %s)",
				spec.Kernel, spec.String())
		}
		return w, nil
	}
	kernelNames := make([]string, 0, len(Kernels()))
	for _, k := range Kernels() {
		kernelNames = append(kernelNames, k.Kernel)
	}
	msg := fmt.Sprintf("run: unknown kernel %q (kernels: %s", spec.Kernel, strings.Join(kernelNames, ", "))
	if reg := Names(); len(reg) > 0 {
		msg += "; registered workloads: " + strings.Join(reg, ", ")
	}
	return nil, fmt.Errorf("%s; grammar: %s)", msg, SpecGrammar)
}

// ParseWorkload parses and materializes a spec string in one step — the CLI
// entry point.
func ParseWorkload(s string) (Workload, error) {
	spec, err := ParseWorkloadSpec(s)
	if err != nil {
		return nil, err
	}
	return NewWorkload(spec)
}

// params is the typed view a spec factory reads its WorkloadSpec through:
// each getter consumes one key, parse failures latch the first error, and
// finish() rejects keys no getter consumed — so a misspelled parameter
// fails with the kernel's accepted-key list instead of silently running a
// default configuration.
type params struct {
	spec WorkloadSpec
	used map[string]bool
	keys []string // accepted keys, in getter call order
	err  error
}

func newParams(spec WorkloadSpec) *params {
	return &params{spec: spec, used: map[string]bool{}}
}

func (p *params) raw(key string) (string, bool) {
	p.keys = append(p.keys, key)
	p.used[key] = true
	v, ok := p.spec.Params[key]
	return v, ok
}

func (p *params) fail(key, value, want string) {
	if p.err == nil {
		p.err = fmt.Errorf("parameter %s=%q: want %s", key, value, want)
	}
}

// str returns the string parameter or def when absent.
func (p *params) str(key, def string) string {
	if v, ok := p.raw(key); ok {
		return v
	}
	return def
}

// integer returns the int parameter or def when absent.
func (p *params) integer(key string, def int) int {
	v, ok := p.raw(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		p.fail(key, v, "an integer")
		return def
	}
	return n
}

// boolean returns the bool parameter or def when absent.
func (p *params) boolean(key string, def bool) bool {
	v, ok := p.raw(key)
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		p.fail(key, v, "a boolean (true/false)")
		return def
	}
	return b
}

// finish reports the first parse failure, or an unknown-key error listing
// the kernel's accepted keys.
func (p *params) finish() error {
	if p.err != nil {
		return p.err
	}
	var unknown []string
	for k := range p.spec.Params {
		if !p.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown parameter(s) %s (accepted: %s)",
			strings.Join(unknown, ", "), strings.Join(p.keys, ", "))
	}
	return nil
}
