// Package run is the composable workload/runner layer of the library.
//
// The paper's evaluation is a cross-product — three kernels × five variants
// × four devices — and the original per-kernel entry points (stream.Run,
// transpose.Run, blur.Run) could not express it without bespoke glue: three
// unrelated free functions, each paying full Machine construction per call.
// This package redesigns that surface around three ideas:
//
//   - Workload: anything that can execute on a *sim.Machine and report a
//     unified Result. The built-in kernels are adapted in workloads.go;
//     custom kernels implement the interface directly (or wrap a function
//     with NewFunc) and plug into every tool below.
//   - Registry: a process-wide name → Workload table (Register / Lookup /
//     Names) so third-party kernels are addressable exactly like the
//     built-ins.
//   - Runner: batch execution of []Job{Device, Workload} cross-products on
//     a pool of reusable machines (Machine.Reset instead of
//     re-construction), with host-goroutine parallelism, deterministic
//     result ordering, context cancellation, and progress callbacks.
//
// Simulated results are bit-identical whether a job runs serially on a
// fresh machine or batched on a pooled one — the oracle tests assert this
// over the full kernel×variant×device cross-product.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package run

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"riscvmem/internal/machine"
	"riscvmem/internal/metrics"
	"riscvmem/internal/sim"
	"riscvmem/internal/units"
)

// Result is the unified outcome of one workload execution: simulated time,
// logical bandwidth, and the machine's per-level cache/TLB/DRAM counters.
// Every kernel — built-in or custom — reports through this one type.
type Result struct {
	// Workload and Device identify the run (filled by the Runner when the
	// workload leaves them empty).
	Workload string `json:"workload"`
	Device   string `json:"device"`
	// Cycles is the simulated wall time of the measured region in core
	// cycles; Seconds is the same at the device's clock rate.
	Cycles  float64 `json:"cycles"`
	Seconds float64 `json:"seconds"`
	// Bytes is the kernel's logical (mandatory) data movement — the
	// numerator of the paper's §3.3 utilization metric. Zero when the
	// workload has no natural byte count.
	Bytes int64 `json:"bytes"`
	// Bandwidth is the logical bandwidth achieved: for STREAM the
	// benchmark's best (scaled) figure, otherwise Bytes over Seconds.
	Bandwidth units.BytesPerSec `json:"bandwidth"`
	// Mem holds the machine's per-level memory-system counters for the run
	// (L1/L2/L3 hits and misses, TLB activity, DRAM traffic). Workloads
	// that leave it empty get it filled by the Runner from the machine's
	// counters after the run.
	Mem sim.Summary `json:"mem"`
}

// SpeedupOver returns how many times faster r is than base (the paper's
// §3.3 speedup metric); 0 when either time is unusable.
func (r Result) SpeedupOver(base Result) float64 {
	return metrics.Speedup(base.Seconds, r.Seconds)
}

// Utilization returns the §3.3 relative memory-bandwidth utilization of the
// run against the device's achieved STREAM bandwidth, using the workload's
// mandatory byte count; 0 when the workload reported no Bytes.
func (r Result) Utilization(streamBW units.BytesPerSec) float64 {
	return metrics.Utilization(r.Bytes, r.Seconds, streamBW)
}

// Workload is one executable kernel configuration. Run executes it on the
// given machine — which the caller provides in power-on state — and reports
// a unified Result. Implementations should honour ctx at least on entry;
// the simulated regions themselves are not interruptible.
type Workload interface {
	Name() string
	Run(ctx context.Context, m *sim.Machine) (Result, error)
}

// Keyed is the optional interface behind the Runner's result memoization.
//
// A workload that implements it declares: "my Result on a given device is a
// pure function of (device parameters, CacheKey())" — true for anything that
// only drives the deterministic simulator. The Runner then caches Results
// under (Spec.Identity, CacheKey) with singleflight deduplication, so
// identical cells across batches, overlapping sweeps, and suite re-runs
// simulate exactly once (bit-identical by construction: the cached value IS
// the first run's Result).
//
// The key must cover every configuration field that can change the outcome.
// The built-in stream/transpose/blur adapters derive theirs from the
// kernel's canonical WorkloadSpec encoding (see StreamSpec et al.): an
// order-stable rendered string whose exact values are pinned by golden
// tests, so the identity survives struct-field reordering and never
// stringifies pointers by address the way a fmt "%+v" key would. Custom
// workloads should likewise name every field explicitly. Workloads with
// side effects or host-dependent results must not implement Keyed.
type Keyed interface {
	CacheKey() string
}

// funcWorkload adapts a plain function into a Workload.
type funcWorkload struct {
	name string
	fn   func(context.Context, *sim.Machine) (Result, error)
}

func (w funcWorkload) Name() string { return w.name }

func (w funcWorkload) Run(ctx context.Context, m *sim.Machine) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return w.fn(ctx, m)
}

// NewFunc wraps a function as a named Workload — the quickest way to point
// a custom kernel at the Runner and the registry.
func NewFunc(name string, fn func(context.Context, *sim.Machine) (Result, error)) Workload {
	return funcWorkload{name: name, fn: fn}
}

// The process-wide workload registry.
var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// Register adds a workload to the process-wide registry under its Name. It
// errors on a nil workload, an empty name, or a duplicate registration.
func Register(w Workload) error {
	if w == nil {
		return fmt.Errorf("run: register nil workload")
	}
	name := w.Name()
	if name == "" {
		return fmt.Errorf("run: register workload with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("run: workload %q already registered", name)
	}
	registry[name] = w
	return nil
}

// MustRegister is Register but panics on error; for package init blocks.
func MustRegister(w Workload) {
	if err := Register(w); err != nil {
		panic(err)
	}
}

// Lookup returns the registered workload with the given name.
func Lookup(name string) (Workload, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if w, ok := registry[name]; ok {
		return w, nil
	}
	return nil, fmt.Errorf("run: unknown workload %q", name)
}

// Names returns the registered workload names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Cross builds the device × workload cross-product as a job list, devices
// outermost — the paper's evaluation shape in one call.
func Cross(devices []machine.Spec, workloads []Workload) []Job {
	jobs := make([]Job, 0, len(devices)*len(workloads))
	for _, d := range devices {
		for _, w := range workloads {
			jobs = append(jobs, Job{Device: d, Workload: w})
		}
	}
	return jobs
}
