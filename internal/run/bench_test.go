package run

import (
	"context"
	"testing"

	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/machine"
)

// BenchmarkRunnerBatch measures end-to-end batched-runner throughput: one
// op is an 8-job STREAM COPY batch on the MangoPi preset, executed serially
// on one pooled machine. Parallelism is pinned to 1 so the number tracks
// per-job runner overhead (pool acquire, Machine.Reset, result plumbing)
// plus simulation cost — not the host's core count. scripts/bench.sh
// records the median in BENCH_simthroughput.json alongside the per-access
// simulator metrics.
func BenchmarkRunnerBatch(b *testing.B) {
	spec := machine.MangoPiD1()
	w := Stream(stream.Config{Test: stream.Copy, Elems: 4096, Reps: 1})
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Device: spec, Workload: w}
	}
	r := New(Options{Parallelism: 1})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(ctx, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
