package run

import (
	"context"
	"testing"

	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/machine"
)

// benchJobs builds the 8-job STREAM COPY batch both runner benchmarks use.
func benchJobs() []Job {
	spec := machine.MangoPiD1()
	w := Stream(stream.Config{Test: stream.Copy, Elems: 4096, Reps: 1})
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Device: spec, Workload: w}
	}
	return jobs
}

// BenchmarkRunnerBatch measures cold end-to-end batched-runner throughput:
// one op is an 8-job STREAM COPY batch on the MangoPi preset, executed
// serially on one pooled machine with memoization off, so every job
// simulates. Parallelism is pinned to 1 so the number tracks per-job runner
// overhead (pool acquire, Machine.Reset, result plumbing) plus simulation
// cost — not the host's core count. scripts/bench.sh records the median in
// BENCH_simthroughput.json alongside the per-access simulator metrics.
func BenchmarkRunnerBatch(b *testing.B) {
	jobs := benchJobs()
	r := New(Options{Parallelism: 1, DisableCache: true})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(ctx, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerBatchCached is BenchmarkRunnerBatch on a memoized Runner
// with a warm cache: the same 8-job batch re-executes with zero new
// simulations, so the number is pure cache-path overhead (key construction,
// map lookup, result copy). The cold/cached ratio is the payoff identical
// cells get across suite re-runs and overlapping sweeps.
func BenchmarkRunnerBatchCached(b *testing.B) {
	jobs := benchJobs()
	r := New(Options{Parallelism: 1})
	ctx := context.Background()
	if _, err := r.Run(ctx, jobs); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(ctx, jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, misses := r.CacheStats(); misses != 1 {
		b.Fatalf("cached benchmark simulated %d times, want 1", misses)
	}
}
