package run

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"riscvmem/internal/faultinject"
	"riscvmem/internal/machine"
	"riscvmem/internal/memostore"
	"riscvmem/internal/sim"
)

// Job pairs a device with a workload: one cell of an evaluation
// cross-product.
type Job struct {
	Device   machine.Spec
	Workload Workload
}

// Progress reports one completed job of a batch. Done counts completions so
// far (including this one); Index is the job's position in the submitted
// slice. Exactly one of Result/Err is meaningful. Elapsed is the host
// wall-clock time the job took (including cache lookups — a memoized job
// reports microseconds); it is observability data and never part of the
// simulated Result.
type Progress struct {
	Done, Total int
	Index       int
	Job         Job
	Result      Result
	Err         error
	Elapsed     time.Duration
	// Cache is the job's memoization outcome, mirroring the CacheStats
	// counters per job: CacheHit for a result served without a new
	// simulation (store tier or joined flight), CacheMiss for a simulation
	// actually executed for a keyed job, CacheNone for unkeyed or
	// cache-disabled jobs and for jobs that ended before reaching the
	// cache. Exact per job even when batches overlap on a shared Runner —
	// which the aggregate before/after counter deltas are not.
	Cache CacheOutcome
}

// CacheOutcome classifies one job's interaction with the memo cache.
type CacheOutcome uint8

const (
	// CacheNone: the job was unkeyed, caching was disabled, or the job
	// failed before the cache was consulted.
	CacheNone CacheOutcome = iota
	// CacheHit: the result was served without a new simulation.
	CacheHit
	// CacheMiss: a simulation was executed for this keyed job.
	CacheMiss
)

// Options configures a Runner.
type Options struct {
	// Parallelism is the number of host worker goroutines a batch uses;
	// 0 defaults to the host CPU count. Simulated results are bit-identical
	// at every setting — parallelism only changes wall-clock time.
	Parallelism int
	// OnProgress, when set, is called serially (never concurrently) after
	// each job of a batch completes.
	OnProgress func(Progress)
	// DisableCache turns off result memoization for Keyed workloads; every
	// job then simulates, as in a fresh Runner. Cacheless runs are still
	// bit-identical to cached ones — the cache only skips work.
	DisableCache bool
	// Store is the tiered memo store completed Results live in (see
	// internal/memostore): a bounded in-memory LRU, optionally over an
	// on-disk tier that survives restarts (run.OpenStore builds the
	// standard composition). Nil selects a memory-only store with the
	// default capacity — the pre-persistence behavior, now bounded.
	Store memostore.Store
}

// Runner executes jobs on a pool of reusable machines. Machines are keyed
// by the device's full parameter identity (machine.Spec.Identity) and
// restored with Machine.Reset between jobs instead of being re-constructed,
// so a batch pays at most Parallelism constructions per distinct device —
// and a modified spec never shares pooled machines with its base, even
// when the Name was left unchanged (see Identity's prefetcher-factory
// caveat).
//
// On top of pooling, the Runner memoizes Results for workloads that opt in
// through the Keyed interface: completed Results live in a tiered memo
// store (Options.Store) keyed by (CacheVersion, device identity encoding,
// workload cache key) and are deduplicated in flight, so an identical cell
// — within one batch, across batches, across overlapping sweeps, and (with
// a disk-backed store) across process restarts — simulates exactly once.
// The simulator is deterministic (pinned by the oracle tests), so a cached
// Result is bit-identical to a re-simulation, whichever tier serves it.
//
// A Runner is safe for concurrent use; the zero value is not valid, use New.
type Runner struct {
	opt   Options
	store memostore.Store
	mu    sync.Mutex // guards pool
	pool  map[any][]*sim.Machine

	// flights holds only the cells currently simulating (singleflight): the
	// first job to claim a key simulates, identical jobs arriving meanwhile
	// wait and share the outcome; a completed flight's Result moves to the
	// store and the flight is removed. Sharded by a hash of the cell key so
	// large parallel batches of distinct cells stop serializing on one
	// mutex. Counters are atomics for the same reason — a cache hit must
	// not take the runner lock just to count itself.
	flights [cacheShards]flightShard
	seed    maphash.Seed
	// devKeys memoizes machine.Spec.IdentityString per device identity: the
	// canonical encoding is a ~hundred-field rendering, computed once per
	// distinct device per process instead of once per job.
	devKeys   sync.Map      // Spec.Identity() -> devKey
	hits      atomic.Uint64 // results served without a new simulation
	misses    atomic.Uint64 // simulations actually executed for keyed jobs
	abandoned atomic.Uint64 // runs left behind by an expired job context
}

// devKey is the cached device coordinate of a cell key.
type devKey struct {
	id       string
	volatile bool
}

// cacheShards is the in-flight map's shard count; a power of two.
const cacheShards = 16

// abandonGrace is how long a cancelled job waits for its workload to
// return on its own before the run is abandoned (and its machine
// poisoned). Long enough for a cooperative workload to observe ctx.Done
// and unwind; short enough that a context-deaf stall cannot hold a batch
// hostage.
const abandonGrace = 2 * time.Millisecond

type flightShard struct {
	mu sync.Mutex
	m  map[memostore.Key]*flight
}

// shard picks the in-flight shard for a cell. Both identity coordinates
// feed the hash: sweep batches are many device cells × few workloads,
// suite batches are few devices × many workloads — hashing either alone
// would collapse one of those shapes onto a single shard.
func (r *Runner) shard(key memostore.Key) *flightShard {
	h := maphash.String(r.seed, key.Workload) ^ maphash.String(r.seed, key.Device)
	return &r.flights[h&(cacheShards-1)]
}

// cellKey builds the store key for one keyed job, memoizing the device
// coordinate (a large canonical rendering) per device identity.
func (r *Runner) cellKey(devID any, spec machine.Spec, workloadKey string) memostore.Key {
	var dk devKey
	if cached, ok := r.devKeys.Load(devID); ok {
		dk = cached.(devKey)
	} else {
		id, persistable := spec.IdentityString()
		dk = devKey{id: id, volatile: !persistable}
		r.devKeys.Store(devID, dk)
	}
	return memostore.Key{
		Version:  CacheVersion,
		Device:   dk.id,
		Workload: workloadKey,
		Volatile: dk.volatile,
	}
}

// flight is one singleflight cache slot: the first job to claim a key
// simulates and closes done; identical jobs arriving meanwhile (or later)
// wait on done and share the result.
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// New builds a Runner.
func New(opt Options) *Runner {
	r := &Runner{
		opt:   opt,
		store: opt.Store,
		pool:  map[any][]*sim.Machine{},
		seed:  maphash.MakeSeed(),
	}
	if r.store == nil {
		r.store = memostore.NewMemory(0)
	}
	for i := range r.flights {
		r.flights[i].m = map[memostore.Key]*flight{}
	}
	return r
}

// CacheStats reports the memoization counters: hits is the number of keyed
// jobs served from the cache (including jobs that joined an in-flight
// simulation), misses the number of simulations actually executed for keyed
// jobs. Unkeyed jobs appear in neither.
func (r *Runner) CacheStats() (hits, misses uint64) {
	return r.hits.Load(), r.misses.Load()
}

// TierStats reports the memo store's per-tier counters (memory LRU and,
// when configured, the on-disk tier). Jobs that joined an in-flight
// simulation appear in CacheStats hits but in no tier — they never reached
// the store.
func (r *Runner) TierStats() memostore.Stats { return r.store.Stats() }

// Store exposes the runner's memo store (for sharing it, snapshotting its
// disk tier, or reading tier stats from another layer).
func (r *Runner) Store() memostore.Store { return r.store }

// Abandoned reports how many workload runs were left behind by an expired
// or cancelled job context (see simulate). Each one may pin a goroutine
// until its workload returns; the count is the observability hook for leak
// assertions and daemon metrics.
func (r *Runner) Abandoned() uint64 { return r.abandoned.Load() }

// PoolSize reports the idle machines currently pooled across all device
// identities. The chaos suite uses it to pin the poisoning invariant:
// machines whose workload panicked or was abandoned never come back.
func (r *Runner) PoolSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ms := range r.pool {
		n += len(ms)
	}
	return n
}

// acquire pops an idle machine for the device identity, resetting it to
// power-on, or constructs one when the pool is empty.
func (r *Runner) acquire(spec machine.Spec, key any) (*sim.Machine, error) {
	if err := faultinject.Fire(faultinject.RunnerAcquire); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if ms := r.pool[key]; len(ms) > 0 {
		m := ms[len(ms)-1]
		r.pool[key] = ms[:len(ms)-1]
		r.mu.Unlock()
		m.Reset()
		return m, nil
	}
	r.mu.Unlock()
	return sim.New(spec)
}

// release returns a machine to the pool, keyed by its memoized identity.
func (r *Runner) release(m *sim.Machine) {
	key := m.Identity()
	r.mu.Lock()
	r.pool[key] = append(r.pool[key], m)
	r.mu.Unlock()
}

// runJob executes one job, serving it from the memoization cache when the
// workload is Keyed (and caching enabled) and simulating it on a pooled
// machine otherwise. The returned CacheOutcome mirrors, per job, exactly
// what the hits/misses counters recorded for it.
func (r *Runner) runJob(ctx context.Context, job Job) (Result, CacheOutcome, error) {
	if job.Workload == nil {
		return Result{}, CacheNone, errors.New("run: job with nil workload")
	}
	if err := ctx.Err(); err != nil {
		return Result{}, CacheNone, err
	}
	devID := job.Device.Identity() // computed once per job: keys both cache and pool
	kw, keyed := job.Workload.(Keyed)
	if !keyed || r.opt.DisableCache {
		res, err := r.simulate(ctx, job, devID)
		return res, CacheNone, err
	}
	key := r.cellKey(devID, job.Device, kw.CacheKey())
	sh := r.shard(key)
	for {
		sh.mu.Lock()
		if f, ok := sh.m[key]; ok {
			sh.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil && ctx.Err() == nil &&
					(errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
					// The leader's batch was cancelled but ours was not
					// (the Runner may be shared across batches); its
					// cancellation must not fail our job. The failed
					// flight was already removed, so loop and retry —
					// becoming the leader or joining a fresh flight.
					continue
				}
				// Count the hit only when the joined flight's outcome is
				// actually served — not on joins that end in a retry or in
				// this job's own cancellation.
				r.hits.Add(1)
				return f.res, CacheHit, f.err
			case <-ctx.Done():
				return Result{}, CacheNone, ctx.Err()
			}
		}
		// The store lookup happens under the shard lock, after the flight
		// check: a leader publishes its Result to the store BEFORE removing
		// its flight, so a racer always finds the cell in one of the two.
		if v, _, ok := r.store.Get(key); ok {
			if res, isResult := v.(Result); isResult {
				sh.mu.Unlock()
				r.hits.Add(1)
				return res, CacheHit, nil
			}
			// A store serving a foreign type (misconfigured codec) is
			// treated as a miss: correctness over reuse.
		}
		f := &flight{done: make(chan struct{})}
		sh.m[key] = f
		r.misses.Add(1)
		sh.mu.Unlock()
		f.res, f.err = r.simulate(ctx, job, devID)
		if f.err == nil {
			// Publish before the flight is removed (see above). Errors are
			// never stored: a later identical job retries.
			r.store.Put(key, f.res)
		}
		sh.mu.Lock()
		delete(sh.m, key)
		sh.mu.Unlock()
		// Removal precedes close so retrying waiters never re-join this
		// flight; jobs already waiting share the outcome either way.
		close(f.done)
		return f.res, CacheMiss, f.err
	}
}

// simOutcome is one finished (or aborted) workload execution.
type simOutcome struct {
	res      Result
	panicked bool
	err      error
}

// simulate executes one job on a pooled machine, honoring the job context:
// the workload runs on its own goroutine and simulate returns the moment
// ctx ends, even when the workload ignores cancellation. An abandoned run's
// machine is poisoned — the workload may still be mutating it — so it is
// never re-pooled; the stray goroutine drops it for the GC when the
// workload finally returns. (Go cannot preempt the computation itself: a
// workload that stalls forever pins one goroutine until process exit — see
// the fault taxonomy in DESIGN.md §9.)
func (r *Runner) simulate(ctx context.Context, job Job, devID any) (Result, error) {
	m, err := r.acquire(job.Device, devID)
	if err != nil {
		return Result{}, fmt.Errorf("%s on %s: %w", job.Workload.Name(), job.Device.Name, err)
	}
	outc := make(chan simOutcome, 1) // buffered: an abandoned run must not block on send
	go func() {
		var out simOutcome
		out.res, out.panicked, out.err = runWorkload(ctx, job.Workload, m)
		outc <- out
	}()
	var out simOutcome
	select {
	case out = <-outc:
	case <-ctx.Done():
		// Give a cooperative workload a moment to deliver its own
		// cancellation outcome — then its machine stays poolable. Only a
		// workload that truly ignores cancellation is abandoned.
		grace := time.NewTimer(abandonGrace)
		select {
		case out = <-outc:
			grace.Stop()
		case <-grace.C:
			r.abandoned.Add(1)
			return Result{}, fmt.Errorf("%s on %s: abandoned: %w",
				job.Workload.Name(), job.Device.Name, ctx.Err())
		}
	}
	if out.panicked {
		// The panic may have fired mid-update deep inside the simulator,
		// leaving the machine in an arbitrary partial state; discard it
		// rather than re-pool it. The panic itself becomes a per-job error
		// so the rest of the batch survives.
		return Result{}, fmt.Errorf("%s on %s: %w", job.Workload.Name(), job.Device.Name, out.err)
	}
	res, err := out.res, out.err
	if err == nil && res.Mem == (sim.Summary{}) {
		// Custom workloads rarely snapshot the counters themselves; the
		// runner owns the machine, so fill them in (a no-op for runs with
		// genuinely zero memory activity).
		res.Mem = m.Stats()
	}
	r.release(m)
	if err != nil {
		return Result{}, fmt.Errorf("%s on %s: %w", job.Workload.Name(), job.Device.Name, err)
	}
	if res.Workload == "" {
		res.Workload = job.Workload.Name()
	}
	if res.Device == "" {
		res.Device = job.Device.Name
	}
	return res, nil
}

// runWorkload invokes the workload, converting a panic into an error (with
// the panicking goroutine's stack) instead of killing the worker goroutine —
// and with it the whole process — mid-batch.
func runWorkload(ctx context.Context, w Workload, m *sim.Machine) (res Result, panicked bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, panicked = Result{}, true
			err = fmt.Errorf("workload panicked: %v\n%s", p, debug.Stack())
		}
	}()
	res, err = w.Run(ctx, m)
	return res, false, err
}

// Run executes the batch and returns one Result per job, in job order —
// results[i] always belongs to jobs[i], regardless of host scheduling. Jobs
// are independent (each runs on its own fresh-or-reset machine), so the
// simulated outcome of every job is identical to running it alone.
//
// All jobs are attempted; per-job failures are collected and returned
// joined, in job order, alongside the successful results. Cancelling ctx
// makes the remaining jobs fail with the context's error — reported as one
// collapsed error carrying the skipped-job count, not one line per
// remaining job (a cancelled 10k-job batch is 10k identical errors
// otherwise). Per-job errors stay individually visible through OnProgress
// and through RunAll.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	results, errs := r.RunAll(ctx, jobs)
	return results, joinBatchErrors(errs)
}

// RunWithProgress is Run with a per-call progress hook (see
// RunAllWithProgress).
func (r *Runner) RunWithProgress(ctx context.Context, jobs []Job, onProgress func(Progress)) ([]Result, error) {
	results, errs := r.RunAllWithProgress(ctx, jobs, onProgress)
	return results, joinBatchErrors(errs)
}

// RunAll is Run with per-job error visibility: errs[i] is nil exactly when
// results[i] is valid. Transports that report job outcomes individually
// (the service layer) use this; Run wraps it with the joined-error
// convention for in-process callers.
func (r *Runner) RunAll(ctx context.Context, jobs []Job) (results []Result, errs []error) {
	return r.RunAllWithProgress(ctx, jobs, nil)
}

// RunAllWithProgress is RunAll with a per-call progress hook, for callers
// that need batch-scoped progress on a shared Runner (the service's async
// job store streams rows through it). A nil onProgress falls back to the
// Runner-level Options.OnProgress; like it, the hook is called serially, in
// completion order.
func (r *Runner) RunAllWithProgress(ctx context.Context, jobs []Job, onProgress func(Progress)) (results []Result, errs []error) {
	results = make([]Result, len(jobs))
	errs = make([]error, len(jobs))

	workers := r.opt.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	if onProgress == nil {
		onProgress = r.opt.OnProgress
	}
	var progressMu sync.Mutex
	done := 0
	report := func(i int, elapsed time.Duration, cache CacheOutcome) {
		if onProgress == nil {
			return
		}
		progressMu.Lock()
		done++
		onProgress(Progress{
			Done: done, Total: len(jobs), Index: i,
			Job: jobs[i], Result: results[i], Err: errs[i],
			Elapsed: elapsed, Cache: cache,
		})
		progressMu.Unlock()
	}
	// Host wall-clock per job, for Progress.Elapsed only: observability
	// data (the service's kernel histograms), never simulated state.
	timeJob := func(i int) {
		start := time.Now() //simlint:allow determinism -- host-side timing feeds Progress.Elapsed (observability), never the simulated Result
		var cache CacheOutcome
		results[i], cache, errs[i] = r.runJob(ctx, jobs[i])
		report(i, time.Since(start), cache) //simlint:allow determinism -- same: host-side observability timing
	}

	if workers <= 1 {
		for i := range jobs {
			timeJob(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					timeJob(i)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	return results, errs
}

// joinBatchErrors joins per-job errors in job order, collapsing the
// context-cancellation tail — every job that failed only because the batch
// context ended — into one error with a skipped-job count. errors.Is still
// matches context.Canceled / DeadlineExceeded on the joined error.
//
// Only the bare context sentinels are collapsed: those are exactly what
// runJob returns for jobs it skipped without executing. A workload that ran
// and failed with an error merely wrapping a context error (say, its own
// internal timeout) keeps its individually identified entry.
func joinBatchErrors(errs []error) error {
	var kept []error
	var ctxErr error
	skipped := 0
	for _, err := range errs {
		switch {
		case err == nil:
		//simlint:allow ctxerr -- identity is the semantics: only the BARE sentinels runJob returns for skipped jobs collapse; wrapped context errors must keep their entries
		case err == context.Canceled || err == context.DeadlineExceeded:
			if ctxErr == nil {
				ctxErr = err
			}
			skipped++
		default:
			kept = append(kept, err)
		}
	}
	switch {
	case skipped == 1:
		kept = append(kept, ctxErr)
	case skipped > 1:
		kept = append(kept, fmt.Errorf("%d jobs skipped: %w", skipped, ctxErr))
	}
	return errors.Join(kept...)
}

// RunOne executes a single workload on a single device through the pool.
func (r *Runner) RunOne(ctx context.Context, d machine.Spec, w Workload) (Result, error) {
	res, _, err := r.runJob(ctx, Job{Device: d, Workload: w})
	return res, err
}
