package run

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"riscvmem/internal/machine"
	"riscvmem/internal/sim"
)

// Job pairs a device with a workload: one cell of an evaluation
// cross-product.
type Job struct {
	Device   machine.Spec
	Workload Workload
}

// Progress reports one completed job of a batch. Done counts completions so
// far (including this one); Index is the job's position in the submitted
// slice. Exactly one of Result/Err is meaningful.
type Progress struct {
	Done, Total int
	Index       int
	Job         Job
	Result      Result
	Err         error
}

// Options configures a Runner.
type Options struct {
	// Parallelism is the number of host worker goroutines a batch uses;
	// 0 defaults to the host CPU count. Simulated results are bit-identical
	// at every setting — parallelism only changes wall-clock time.
	Parallelism int
	// OnProgress, when set, is called serially (never concurrently) after
	// each job of a batch completes.
	OnProgress func(Progress)
}

// Runner executes jobs on a pool of reusable machines. Machines are keyed
// by the device's full parameter identity (machine.Spec.Identity) and
// restored with Machine.Reset between jobs instead of being re-constructed,
// so a batch pays at most Parallelism constructions per distinct device —
// and a modified spec never shares pooled machines with its base, even
// when the Name was left unchanged (see Identity's prefetcher-factory
// caveat).
//
// A Runner is safe for concurrent use; the zero value is not valid, use New.
type Runner struct {
	opt  Options
	mu   sync.Mutex
	pool map[any][]*sim.Machine
}

// New builds a Runner.
func New(opt Options) *Runner {
	return &Runner{opt: opt, pool: map[any][]*sim.Machine{}}
}

// acquire pops an idle machine for the device, resetting it to power-on, or
// constructs one when the pool is empty.
func (r *Runner) acquire(spec machine.Spec) (*sim.Machine, error) {
	key := spec.Identity()
	r.mu.Lock()
	if ms := r.pool[key]; len(ms) > 0 {
		m := ms[len(ms)-1]
		r.pool[key] = ms[:len(ms)-1]
		r.mu.Unlock()
		m.Reset()
		return m, nil
	}
	r.mu.Unlock()
	return sim.New(spec)
}

// release returns a machine to the pool.
func (r *Runner) release(m *sim.Machine) {
	key := m.Spec().Identity()
	r.mu.Lock()
	r.pool[key] = append(r.pool[key], m)
	r.mu.Unlock()
}

// runJob executes one job on a pooled machine.
func (r *Runner) runJob(ctx context.Context, job Job) (Result, error) {
	if job.Workload == nil {
		return Result{}, errors.New("run: job with nil workload")
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	m, err := r.acquire(job.Device)
	if err != nil {
		return Result{}, err
	}
	res, err := job.Workload.Run(ctx, m)
	if err == nil && res.Mem == (sim.Summary{}) {
		// Custom workloads rarely snapshot the counters themselves; the
		// runner owns the machine, so fill them in (a no-op for runs with
		// genuinely zero memory activity).
		res.Mem = m.Stats()
	}
	r.release(m)
	if err != nil {
		return Result{}, fmt.Errorf("%s on %s: %w", job.Workload.Name(), job.Device.Name, err)
	}
	if res.Workload == "" {
		res.Workload = job.Workload.Name()
	}
	if res.Device == "" {
		res.Device = job.Device.Name
	}
	return res, nil
}

// Run executes the batch and returns one Result per job, in job order —
// results[i] always belongs to jobs[i], regardless of host scheduling. Jobs
// are independent (each runs on its own fresh-or-reset machine), so the
// simulated outcome of every job is identical to running it alone.
//
// All jobs are attempted; per-job failures are collected and returned
// joined, in job order, alongside the successful results. Cancelling ctx
// makes the remaining jobs fail with the context's error.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))

	workers := r.opt.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var progressMu sync.Mutex
	done := 0
	report := func(i int) {
		if r.opt.OnProgress == nil {
			return
		}
		progressMu.Lock()
		done++
		r.opt.OnProgress(Progress{
			Done: done, Total: len(jobs), Index: i,
			Job: jobs[i], Result: results[i], Err: errs[i],
		})
		progressMu.Unlock()
	}

	if workers <= 1 {
		for i := range jobs {
			results[i], errs[i] = r.runJob(ctx, jobs[i])
			report(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = r.runJob(ctx, jobs[i])
					report(i)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	return results, errors.Join(errs...)
}

// RunOne executes a single workload on a single device through the pool.
func (r *Runner) RunOne(ctx context.Context, d machine.Spec, w Workload) (Result, error) {
	return r.runJob(ctx, Job{Device: d, Workload: w})
}
