package run

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/sim"
)

// unregister removes a test workload so repeated in-process runs
// (go test -count=2) do not trip the duplicate check.
func unregister(name string) {
	regMu.Lock()
	delete(registry, name)
	regMu.Unlock()
}

func TestRegistry(t *testing.T) {
	t.Cleanup(func() { unregister("test/noop") })
	w := NewFunc("test/noop", func(ctx context.Context, m *sim.Machine) (Result, error) {
		return Result{Seconds: 1}, nil
	})
	if err := Register(w); err != nil {
		t.Fatal(err)
	}
	if err := Register(w); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(nil); err == nil {
		t.Error("nil workload accepted")
	}
	if err := Register(NewFunc("", nil)); err == nil {
		t.Error("empty name accepted")
	}
	got, err := Lookup("test/noop")
	if err != nil || got.Name() != "test/noop" {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if _, err := Lookup("test/absent"); err == nil {
		t.Error("Lookup of unregistered workload succeeded")
	}
	found := false
	for _, name := range Names() {
		if name == "test/noop" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v, missing test/noop", Names())
	}
}

func TestRunnerResultOrdering(t *testing.T) {
	// Jobs whose workloads report their own index; results must come back
	// in job order regardless of completion order.
	const n = 20
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Device: machine.MangoPiD1(), Workload: NewFunc(
			fmt.Sprintf("test/idx-%d", i),
			func(ctx context.Context, m *sim.Machine) (Result, error) {
				return Result{Seconds: float64(i)}, nil
			})}
	}
	results, err := New(Options{Parallelism: 7}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Seconds != float64(i) {
			t.Errorf("results[%d].Seconds = %v, want %v", i, r.Seconds, float64(i))
		}
		if r.Workload != fmt.Sprintf("test/idx-%d", i) || r.Device != "MangoPi" {
			t.Errorf("results[%d] identification = %q on %q", i, r.Workload, r.Device)
		}
	}
}

func TestRunnerErrorsJoined(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		{Device: machine.MangoPiD1(), Workload: Transpose(transpose.Config{N: 64})},
		{Device: machine.MangoPiD1(), Workload: NewFunc("test/fail",
			func(ctx context.Context, m *sim.Machine) (Result, error) { return Result{}, boom })},
		{Device: machine.MangoPiD1(), Workload: nil},
	}
	results, err := New(Options{Parallelism: 1}).Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("batch with failing jobs returned nil error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("joined error %v does not wrap the job error", err)
	}
	if !strings.Contains(err.Error(), "test/fail on MangoPi") {
		t.Errorf("error %q lacks job identification", err)
	}
	if results[0].Seconds <= 0 {
		t.Error("successful job before the failure lost its result")
	}
}

func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	jobs := make([]Job, 10)
	for i := range jobs {
		jobs[i] = Job{Device: machine.MangoPiD1(), Workload: NewFunc(
			fmt.Sprintf("test/cancel-%d", i),
			func(ctx context.Context, m *sim.Machine) (Result, error) {
				ran++
				if ran == 3 {
					cancel()
				}
				return Result{Seconds: 1}, nil
			})}
	}
	_, err := New(Options{Parallelism: 1}).Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch error = %v, want context.Canceled", err)
	}
	if ran >= 10 {
		t.Error("cancellation did not stop remaining jobs")
	}
}

func TestRunnerProgress(t *testing.T) {
	jobs := []Job{
		{Device: machine.MangoPiD1(), Workload: Transpose(transpose.Config{N: 64})},
		{Device: machine.VisionFive(), Workload: Transpose(transpose.Config{N: 64})},
		{Device: machine.MangoPiD1(), Workload: nil},
	}
	var seen []Progress
	r := New(Options{Parallelism: 2, OnProgress: func(p Progress) { seen = append(seen, p) }})
	if _, err := r.Run(context.Background(), jobs); err == nil {
		t.Fatal("expected nil-workload error")
	}
	if len(seen) != len(jobs) {
		t.Fatalf("got %d progress callbacks for %d jobs", len(seen), len(jobs))
	}
	failures := 0
	for i, p := range seen {
		if p.Done != i+1 || p.Total != len(jobs) {
			t.Errorf("callback %d: Done/Total = %d/%d", i, p.Done, p.Total)
		}
		if p.Err != nil {
			failures++
		} else if p.Result.Seconds <= 0 {
			t.Errorf("callback %d: successful job carries no result", i)
		}
	}
	if failures != 1 {
		t.Errorf("%d failed callbacks, want 1", failures)
	}
}

// TestRunnerPoolsMachines checks that a serial batch on one device
// constructs a single machine and reuses it via Reset.
func TestRunnerPoolsMachines(t *testing.T) {
	var machines []*sim.Machine
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = Job{Device: machine.MangoPiD1(), Workload: NewFunc(
			fmt.Sprintf("test/pool-%d", i),
			func(ctx context.Context, m *sim.Machine) (Result, error) {
				if m.Now() != 0 || m.Allocated() != 0 {
					t.Errorf("machine handed out dirty: now=%v allocated=%d", m.Now(), m.Allocated())
				}
				machines = append(machines, m)
				m.MustNewF64(64) // dirty it for the next job
				m.RunSeq(func(c *sim.Core) { c.IntOps(1) })
				return Result{Seconds: 1}, nil
			})}
	}
	r := New(Options{Parallelism: 1})
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(machines); i++ {
		if machines[i] != machines[0] {
			t.Errorf("job %d got a different machine instance; pool did not reuse", i)
		}
	}
}

// TestRunnerDistinguishesSameNameSpecs guards against pool
// cross-contamination: two different Specs that (erroneously) share a Name
// must never share pooled machines — each job runs on hardware matching
// its own spec.
func TestRunnerDistinguishesSameNameSpecs(t *testing.T) {
	base := machine.VisionFive()
	modified := machine.VisionFive()
	// A user models hypothetical silicon but forgets to rename it.
	modified.Mem.DRAM.Channels = 4
	modified.Mem.DRAM.BytesPerCycle = 2.0

	probe := func(i int) Workload {
		return NewFunc(fmt.Sprintf("test/ident-%d", i),
			func(ctx context.Context, m *sim.Machine) (Result, error) {
				return Result{Seconds: float64(m.Spec().Mem.DRAM.Channels)}, nil
			})
	}
	// Alternate the two specs so naive name-keyed pooling would hand the
	// second job the first job's machine.
	jobs := []Job{
		{Device: base, Workload: probe(0)},
		{Device: modified, Workload: probe(1)},
		{Device: base, Workload: probe(2)},
		{Device: modified, Workload: probe(3)},
	}
	results, err := New(Options{Parallelism: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 2, 4}
	for i, r := range results {
		if r.Seconds != want[i] {
			t.Errorf("job %d ran on a machine with %v DRAM channels, want %v", i, r.Seconds, want[i])
		}
	}

	// Sanity-check the identity itself: equal for same parameters, distinct
	// for modified ones.
	if base.Identity() != machine.VisionFive().Identity() {
		t.Error("identical presets have distinct identities (pooling disabled)")
	}
	if base.Identity() == modified.Identity() {
		t.Error("modified preset shares the base identity")
	}
}

func TestCross(t *testing.T) {
	devs := []machine.Spec{machine.XeonServer(), machine.MangoPiD1()}
	ws := []Workload{
		Transpose(transpose.Config{N: 64, Variant: transpose.Naive}),
		Transpose(transpose.Config{N: 64, Variant: transpose.Blocking}),
	}
	jobs := Cross(devs, ws)
	if len(jobs) != 4 {
		t.Fatalf("len = %d", len(jobs))
	}
	if jobs[0].Device.Name != "Xeon" || jobs[1].Device.Name != "Xeon" ||
		jobs[2].Device.Name != "MangoPi" || jobs[3].Device.Name != "MangoPi" {
		t.Error("device-major order violated")
	}
	if jobs[0].Workload.Name() != "transpose/Naive" || jobs[1].Workload.Name() != "transpose/Blocking" {
		t.Errorf("workload order: %s, %s", jobs[0].Workload.Name(), jobs[1].Workload.Name())
	}
}

func TestRunOne(t *testing.T) {
	r := New(Options{})
	res, err := r.RunOne(context.Background(), machine.VisionFive(),
		Transpose(transpose.Config{N: 128, Variant: transpose.Blocking, Verify: true}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Cycles <= 0 || res.Bytes != 16*128*128 {
		t.Errorf("RunOne result %+v", res)
	}
	if res.Workload != "transpose/Blocking" || res.Device != "VisionFive" {
		t.Errorf("identification %q on %q", res.Workload, res.Device)
	}
	if res.Mem.L1Hits == 0 || res.Mem.DRAMBytes == 0 {
		t.Errorf("memory summary empty: %+v", res.Mem)
	}
}

// TestRunnerFillsMemSummary checks that a custom workload which does not
// snapshot the memory counters itself still gets them from the runner.
func TestRunnerFillsMemSummary(t *testing.T) {
	w := NewFunc("test/mem-autofill", func(ctx context.Context, m *sim.Machine) (Result, error) {
		a, err := m.NewF64(4096)
		if err != nil {
			return Result{}, err
		}
		res := m.RunSeq(func(c *sim.Core) {
			for i := 0; i < a.Len(); i++ {
				a.Store(c, i, 1)
			}
		})
		return Result{Cycles: res.Cycles}, nil // Mem deliberately left empty
	})
	res, err := New(Options{}).RunOne(context.Background(), machine.MangoPiD1(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.L1Misses == 0 || res.Mem.DRAMBytes == 0 {
		t.Errorf("runner did not fill the memory summary: %+v", res.Mem)
	}
}

func TestResultMetrics(t *testing.T) {
	base := Result{Seconds: 2, Bytes: 100}
	opt := Result{Seconds: 1, Bytes: 100}
	if sp := opt.SpeedupOver(base); sp != 2 {
		t.Errorf("SpeedupOver = %v", sp)
	}
	if u := opt.Utilization(200); u != 0.5 {
		t.Errorf("Utilization = %v", u)
	}
	if u := (Result{Seconds: 1}).Utilization(200); u != 0 {
		t.Errorf("Utilization without Bytes = %v", u)
	}
}
