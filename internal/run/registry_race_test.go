package run

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"riscvmem/internal/sim"
)

// TestRegistryConcurrency hammers the process-wide registries — workload
// Register/Lookup/Names and spec-factory RegisterSpecFactory/Kernels/
// ParseWorkloadSpec/NewWorkload — from many goroutines at once, the access
// pattern of concurrent simd request handlers. Run under -race (CI does);
// the assertions only check the registries stay internally consistent.
func TestRegistryConcurrency(t *testing.T) {
	const (
		goroutines = 8
		iters      = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("race-wl-%d-%d", g, i)
				w := NewFunc(name, func(ctx context.Context, m *sim.Machine) (Result, error) {
					return Result{}, nil
				})
				if err := Register(w); err != nil {
					t.Errorf("Register(%s): %v", name, err)
					return
				}
				if got, err := Lookup(name); err != nil || got.Name() != name {
					t.Errorf("Lookup(%s): %v, %v", name, got, err)
					return
				}
				_ = Names()

				kernel := fmt.Sprintf("racekernel%dx%d", g, i)
				err := RegisterSpecFactory(KernelInfo{
					Kernel: kernel, Summary: "race test", Params: "none",
				}, func(spec WorkloadSpec) (Workload, error) { return w, nil })
				if err != nil {
					t.Errorf("RegisterSpecFactory(%s): %v", kernel, err)
					return
				}
				_ = Kernels()
				if _, err := ParseWorkloadSpec(kernel); err != nil {
					t.Errorf("ParseWorkloadSpec(%s): %v", kernel, err)
					return
				}
				if _, err := NewWorkload(WorkloadSpec{Kernel: kernel}); err != nil {
					t.Errorf("NewWorkload(%s): %v", kernel, err)
					return
				}
				// Mix in the built-in lookups handlers actually perform.
				if _, err := NewWorkload(MustParseWorkloadSpec("stream/TRIAD")); err != nil {
					t.Errorf("NewWorkload(stream/TRIAD): %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
