package run

import (
	"bytes"
	"encoding/json"
	"fmt"

	"riscvmem/internal/memostore"
	"riscvmem/internal/sim"
)

// CacheVersion is the namespace every persisted memo entry lives under: the
// module identity plus the simulation model version. A sim.ModelVersion
// bump changes it, which cleanly orphans every previously persisted result
// (see the versioning contract on sim.ModelVersion); `memo gc -stale`
// reclaims the orphans.
const CacheVersion = "riscvmem/v" + sim.ModelVersion

// ResultCodec converts Results to and from the canonical byte payload the
// disk tier persists: JSON, which round-trips every Result field
// bit-for-bit (Go renders float64 in shortest round-trip form, and the
// simulator never produces NaN or Inf). Decoding is strict — an entry
// whose payload carries fields the current Result does not know is treated
// as corrupt (quarantined, re-simulated) rather than silently half-read.
func ResultCodec() memostore.Codec {
	return memostore.Codec{
		Encode: func(v any) ([]byte, error) {
			res, ok := v.(Result)
			if !ok {
				return nil, fmt.Errorf("run: memo store asked to encode %T, not run.Result", v)
			}
			return json.Marshal(res)
		},
		Decode: func(data []byte) (any, error) {
			var res Result
			dec := json.NewDecoder(bytes.NewReader(data))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&res); err != nil {
				return nil, err
			}
			return res, nil
		},
	}
}

// OpenStore builds the standard tiered result store: a bounded in-memory
// LRU (memEntries entries; <= 0 selects the memostore default) over an
// on-disk content-addressed tier rooted at dir. An empty dir yields a
// memory-only store — what a Runner without explicit Options.Store gets.
// logf (optional) receives the disk tier's operational lines (quarantines,
// failed persists).
func OpenStore(dir string, memEntries int, logf func(format string, args ...any)) (*memostore.Tiered, error) {
	mem := memostore.NewMemory(memEntries)
	if dir == "" {
		return memostore.NewTiered(mem, nil), nil
	}
	disk, err := memostore.OpenDisk(dir, ResultCodec())
	if err != nil {
		return nil, err
	}
	disk.Logf = logf
	return memostore.NewTiered(mem, disk), nil
}
