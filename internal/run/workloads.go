package run

import (
	"context"
	"fmt"
	"strconv"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/sim"
	"riscvmem/internal/units"
)

// The built-in kernels register spec factories so jobs can arrive as data —
// parsed from the CLI grammar or decoded from JSON — and not only as Go
// values. Each factory validates and normalizes its parameters into the
// kernel's Config; the adapters' CacheKey() is the canonical encoding of
// that Config (see the *Spec functions), so the memoization identity is a
// pinned, order-stable string rather than fmt's struct layout.
func init() {
	MustRegisterSpecFactory(KernelInfo{
		Kernel:     "stream",
		Summary:    "STREAM memory-bandwidth benchmark (§4.1): COPY, SCALE, SUM, TRIAD",
		Params:     "test=COPY|SCALE|SUM|TRIAD, elems=<n>, cores=<n>, reps=<n>, scaleby=<n>",
		VariantKey: "test",
	}, func(spec WorkloadSpec) (Workload, error) {
		p := newParams(spec)
		// Unset measurement knobs stay 0 so the kernel's own defaults
		// (stream.Config.Normalized: reps 3, cores 1, scaleby 1) apply —
		// one source of truth whether the config arrives as data or as Go.
		cfg := stream.Config{
			Elems:   p.integer("elems", 65536),
			Cores:   p.integer("cores", 0),
			Reps:    p.integer("reps", 0),
			ScaleBy: p.integer("scaleby", 0),
		}
		testName := p.str("test", stream.Triad.String())
		if err := p.finish(); err != nil {
			return nil, err
		}
		test, err := stream.TestByName(testName)
		if err != nil {
			return nil, err
		}
		cfg.Test = test
		return Stream(cfg), nil
	})

	MustRegisterSpecFactory(KernelInfo{
		Kernel:     "transpose",
		Summary:    "in-place N×N matrix transposition (§4.2), five optimization variants",
		Params:     "variant=Naive|Parallel|Blocking|Manual_blocking|Dynamic|Cache_oblivious, n=<dim>, block=<tile|0=auto>, verify=<bool>",
		VariantKey: "variant",
	}, func(spec WorkloadSpec) (Workload, error) {
		p := newParams(spec)
		cfg := transpose.Config{
			N:      p.integer("n", 512),
			Block:  p.integer("block", 0),
			Verify: p.boolean("verify", false),
		}
		variantName := p.str("variant", transpose.Naive.String())
		if err := p.finish(); err != nil {
			return nil, err
		}
		variant, err := transpose.VariantByName(variantName)
		if err != nil {
			return nil, err
		}
		cfg.Variant = variant
		return Transpose(cfg), nil
	})

	MustRegisterSpecFactory(KernelInfo{
		Kernel:     "gblur",
		Summary:    "Gaussian blur over a W×H×C float32 image (§4.3), five optimization variants",
		Params:     "variant=Naive|Unit-stride|1D_kernels|Memory|Parallel, w=<px>, h=<px>, c=<channels>, f=<odd filter>, verify=<bool>",
		VariantKey: "variant",
	}, func(spec WorkloadSpec) (Workload, error) {
		p := newParams(spec)
		cfg := blur.Config{
			W:      p.integer("w", 636),
			H:      p.integer("h", 507),
			C:      p.integer("c", 3),
			F:      p.integer("f", 19),
			Verify: p.boolean("verify", false),
		}
		variantName := p.str("variant", blur.Naive.String())
		if err := p.finish(); err != nil {
			return nil, err
		}
		variant, err := blur.VariantByName(variantName)
		if err != nil {
			return nil, err
		}
		cfg.Variant = variant
		return Blur(cfg), nil
	})
}

// StreamSpec is the canonical WorkloadSpec encoding of a STREAM config:
// every Config field appears under a fixed key, so the rendered string is a
// complete, order-stable identity for the measurement (the CacheKey of the
// adapter). The config is normalized first (stream.Config.Normalized), so
// unset-vs-explicit defaults share one identity. A reflection test pins
// that no Config field is left out, and the simlint cachekey analyzer
// enforces the same completeness statically.
//
//simlint:cachekey
func StreamSpec(cfg stream.Config) WorkloadSpec {
	cfg = cfg.Normalized()
	return WorkloadSpec{Kernel: "stream", Params: map[string]string{
		"test":    cfg.Test.String(),
		"elems":   strconv.Itoa(cfg.Elems),
		"cores":   strconv.Itoa(cfg.Cores),
		"reps":    strconv.Itoa(cfg.Reps),
		"scaleby": strconv.Itoa(cfg.ScaleBy),
	}}
}

// TransposeSpec is the canonical WorkloadSpec encoding of a transposition
// config (see StreamSpec).
//
//simlint:cachekey
func TransposeSpec(cfg transpose.Config) WorkloadSpec {
	return WorkloadSpec{Kernel: "transpose", Params: map[string]string{
		"variant": cfg.Variant.String(),
		"n":       strconv.Itoa(cfg.N),
		"block":   strconv.Itoa(cfg.Block),
		"verify":  strconv.FormatBool(cfg.Verify),
	}}
}

// BlurSpec is the canonical WorkloadSpec encoding of a Gaussian-blur config
// (see StreamSpec).
//
//simlint:cachekey
func BlurSpec(cfg blur.Config) WorkloadSpec {
	return WorkloadSpec{Kernel: "gblur", Params: map[string]string{
		"variant": cfg.Variant.String(),
		"w":       strconv.Itoa(cfg.W),
		"h":       strconv.Itoa(cfg.H),
		"c":       strconv.Itoa(cfg.C),
		"f":       strconv.Itoa(cfg.F),
		"verify":  strconv.FormatBool(cfg.Verify),
	}}
}

// Stream adapts one STREAM measurement configuration as a Workload. The
// Result's Cycles/Seconds are the fastest repetition's region time,
// Bandwidth is the benchmark's best (ScaleBy-scaled) figure, and Bytes the
// STREAM-counted traffic of one repetition.
func Stream(cfg stream.Config) Workload { return streamWorkload{cfg} }

type streamWorkload struct{ cfg stream.Config }

func (w streamWorkload) Name() string { return "stream/" + w.cfg.Test.String() }

// Spec returns the canonical data encoding of this workload.
func (w streamWorkload) Spec() WorkloadSpec { return StreamSpec(w.cfg) }

// CacheKey is the canonical spec string: order-stable (keys sorted),
// independent of Config's field layout, and pinned by golden tests — the
// memoization identity survives struct refactors that fmt "%+v" keys did
// not.
func (w streamWorkload) CacheKey() string { return w.Spec().String() }

func (w streamWorkload) Run(ctx context.Context, m *sim.Machine) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	meas, err := stream.RunOn(m, w.cfg)
	if err != nil {
		return Result{}, err
	}
	spec := m.Spec()
	return Result{
		Workload:  w.Name(),
		Device:    spec.Name,
		Cycles:    meas.BestCycles,
		Seconds:   units.Seconds(meas.BestCycles, spec.FreqGHz),
		Bytes:     meas.Bytes,
		Bandwidth: meas.Best,
		Mem:       meas.Mem,
	}, nil
}

// Transpose adapts one in-place transposition configuration as a Workload.
// Bytes is the mandatory 16·N² traffic of the §3.3 utilization metric.
func Transpose(cfg transpose.Config) Workload { return transposeWorkload{cfg} }

type transposeWorkload struct{ cfg transpose.Config }

func (w transposeWorkload) Name() string {
	return fmt.Sprintf("transpose/%s", w.cfg.Variant)
}

// Spec returns the canonical data encoding of this workload.
func (w transposeWorkload) Spec() WorkloadSpec { return TransposeSpec(w.cfg) }

// CacheKey is the canonical spec string (see streamWorkload.CacheKey).
func (w transposeWorkload) CacheKey() string { return w.Spec().String() }

func (w transposeWorkload) Run(ctx context.Context, m *sim.Machine) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res, err := transpose.RunOn(m, w.cfg)
	if err != nil {
		return Result{}, err
	}
	bytes := transpose.BytesMoved(res.N)
	return Result{
		Workload:  w.Name(),
		Device:    res.Device,
		Cycles:    res.Cycles,
		Seconds:   res.Seconds,
		Bytes:     bytes,
		Bandwidth: units.Bandwidth(bytes, res.Cycles, m.Spec().FreqGHz),
		Mem:       res.Mem,
	}, nil
}

// Blur adapts one Gaussian-blur configuration as a Workload. Bytes is the
// mandatory separable-blur traffic of the §3.3 utilization metric.
func Blur(cfg blur.Config) Workload { return blurWorkload{cfg} }

type blurWorkload struct{ cfg blur.Config }

func (w blurWorkload) Name() string {
	return fmt.Sprintf("gblur/%s", w.cfg.Variant)
}

// Spec returns the canonical data encoding of this workload.
func (w blurWorkload) Spec() WorkloadSpec { return BlurSpec(w.cfg) }

// CacheKey is the canonical spec string (see streamWorkload.CacheKey).
func (w blurWorkload) CacheKey() string { return w.Spec().String() }

func (w blurWorkload) Run(ctx context.Context, m *sim.Machine) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res, err := blur.RunOn(m, w.cfg)
	if err != nil {
		return Result{}, err
	}
	bytes := blur.BytesMoved(res.W, res.H, res.C)
	return Result{
		Workload:  w.Name(),
		Device:    res.Device,
		Cycles:    res.Cycles,
		Seconds:   res.Seconds,
		Bytes:     bytes,
		Bandwidth: units.Bandwidth(bytes, res.Cycles, m.Spec().FreqGHz),
		Mem:       res.Mem,
	}, nil
}
