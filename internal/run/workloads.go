package run

import (
	"context"
	"fmt"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/sim"
	"riscvmem/internal/units"
)

// Stream adapts one STREAM measurement configuration as a Workload. The
// Result's Cycles/Seconds are the fastest repetition's region time,
// Bandwidth is the benchmark's best (ScaleBy-scaled) figure, and Bytes the
// STREAM-counted traffic of one repetition.
func Stream(cfg stream.Config) Workload { return streamWorkload{cfg} }

type streamWorkload struct{ cfg stream.Config }

func (w streamWorkload) Name() string { return "stream/" + w.cfg.Test.String() }

// CacheKey derives the memoization key from the full config, so every field
// (including ones added later) participates — the Keyed contract.
func (w streamWorkload) CacheKey() string { return fmt.Sprintf("stream/%+v", w.cfg) }

func (w streamWorkload) Run(ctx context.Context, m *sim.Machine) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	meas, err := stream.RunOn(m, w.cfg)
	if err != nil {
		return Result{}, err
	}
	spec := m.Spec()
	return Result{
		Workload:  w.Name(),
		Device:    spec.Name,
		Cycles:    meas.BestCycles,
		Seconds:   units.Seconds(meas.BestCycles, spec.FreqGHz),
		Bytes:     meas.Bytes,
		Bandwidth: meas.Best,
		Mem:       meas.Mem,
	}, nil
}

// Transpose adapts one in-place transposition configuration as a Workload.
// Bytes is the mandatory 16·N² traffic of the §3.3 utilization metric.
func Transpose(cfg transpose.Config) Workload { return transposeWorkload{cfg} }

type transposeWorkload struct{ cfg transpose.Config }

func (w transposeWorkload) Name() string {
	return fmt.Sprintf("transpose/%s", w.cfg.Variant)
}

// CacheKey derives the memoization key from the full config (Keyed).
func (w transposeWorkload) CacheKey() string { return fmt.Sprintf("transpose/%+v", w.cfg) }

func (w transposeWorkload) Run(ctx context.Context, m *sim.Machine) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res, err := transpose.RunOn(m, w.cfg)
	if err != nil {
		return Result{}, err
	}
	bytes := transpose.BytesMoved(res.N)
	return Result{
		Workload:  w.Name(),
		Device:    res.Device,
		Cycles:    res.Cycles,
		Seconds:   res.Seconds,
		Bytes:     bytes,
		Bandwidth: units.Bandwidth(bytes, res.Cycles, m.Spec().FreqGHz),
		Mem:       res.Mem,
	}, nil
}

// Blur adapts one Gaussian-blur configuration as a Workload. Bytes is the
// mandatory separable-blur traffic of the §3.3 utilization metric.
func Blur(cfg blur.Config) Workload { return blurWorkload{cfg} }

type blurWorkload struct{ cfg blur.Config }

func (w blurWorkload) Name() string {
	return fmt.Sprintf("gblur/%s", w.cfg.Variant)
}

// CacheKey derives the memoization key from the full config (Keyed).
func (w blurWorkload) CacheKey() string { return fmt.Sprintf("gblur/%+v", w.cfg) }

func (w blurWorkload) Run(ctx context.Context, m *sim.Machine) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res, err := blur.RunOn(m, w.cfg)
	if err != nil {
		return Result{}, err
	}
	bytes := blur.BytesMoved(res.W, res.H, res.C)
	return Result{
		Workload:  w.Name(),
		Device:    res.Device,
		Cycles:    res.Cycles,
		Seconds:   res.Seconds,
		Bytes:     bytes,
		Bandwidth: units.Bandwidth(bytes, res.Cycles, m.Spec().FreqGHz),
		Mem:       res.Mem,
	}, nil
}
