package run_test

import (
	"strings"
	"testing"

	"riscvmem/internal/run"
)

// FuzzParseWorkloadSpec drives the CLI/wire workload grammar with arbitrary
// input. The parser must never panic, and any spec it accepts must survive
// a String() round trip unchanged — the canonical string is the memoization
// identity, so a lossy render would alias or split cache entries.
func FuzzParseWorkloadSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"stream",
		"stream:test=TRIAD,elems=65536",
		"transpose/Blocking",
		"blur:radius=3,rows=512,cols=512",
		"STREAM:Test=Copy",
		"stream:",
		":k=v",
		"stream:k",
		"stream:k=",
		"stream:k=v,k=w",
		"a/b/c",
		"stream:elems=65536,test=TRIAD,verify=true",
		"x:\x00=\xff",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := run.ParseWorkloadSpec(s)
		if err != nil {
			return
		}
		rendered := spec.String()
		back, err := run.ParseWorkloadSpec(rendered)
		if err != nil {
			t.Fatalf("accepted %q but canonical form %q does not reparse: %v", s, rendered, err)
		}
		if !back.Equal(spec) {
			t.Fatalf("round trip changed the spec: %q -> %+v -> %q -> %+v", s, spec, rendered, back)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("canonical form is not a fixed point: %q then %q", rendered, again)
		}
		// '/' is legal in kernel names (custom workloads like "chase/8MiB");
		// only the parameter-grammar characters are reserved.
		if strings.ContainsAny(spec.Kernel, ":,=") {
			t.Fatalf("accepted kernel name %q containing reserved grammar characters", spec.Kernel)
		}
	})
}
