//go:build faultinject

package run_test

import (
	"context"
	"errors"
	"testing"

	"riscvmem/internal/faultinject"
	"riscvmem/internal/faultinject/chaos"
	"riscvmem/internal/leakcheck"
	"riscvmem/internal/machine"
	"riscvmem/internal/run"
)

// TestChaosPersistFailureNeverFailsRequest pins the fail-soft contract of
// the disk tier's write path: when every persist attempt fails, requests
// still succeed, the failure is counted, the result still serves from the
// memory tier — and only a process restart pays the re-simulation.
func TestChaosPersistFailureNeverFailsRequest(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	defer leakcheck.Check(t)()
	errPersist := errors.New("chaos: injected persist failure")
	faultinject.Set(faultinject.MemoPersist, faultinject.AlwaysFail(errPersist))

	dir := t.TempDir()
	store, err := run.OpenStore(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	r := run.New(run.Options{Parallelism: 1, Store: store})
	w := chaos.NewFlaky("persist-victim", 0) // keyed, intrinsically healthy

	first, err := r.RunOne(context.Background(), machine.MangoPiD1(), w)
	if err != nil {
		t.Fatalf("request failed because the persist failed: %v", err)
	}
	ts := r.TierStats()
	if ts.DiskWriteErrors == 0 {
		t.Error("injected persist failure was not counted in DiskWriteErrors")
	}
	if ts.DiskWrites != 0 {
		t.Errorf("disk writes = %d, want 0 (every persist was injected to fail)", ts.DiskWrites)
	}

	// The memory tier is unaffected: an identical request is a hit, not a
	// re-simulation, and returns the identical result.
	again, err := r.RunOne(context.Background(), machine.MangoPiD1(), w)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Errorf("memory-tier replay diverges:\n got %+v\nwant %+v", again, first)
	}
	if hits, misses := r.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("hits, misses = %d, %d; want 1, 1", hits, misses)
	}

	// Nothing reached disk, so a restarted process re-simulates — and with
	// the fault cleared, its persist succeeds and the store heals.
	faultinject.Clear(faultinject.MemoPersist)
	store2, err := run.OpenStore(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	r2 := run.New(run.Options{Parallelism: 1, Store: store2})
	if _, err := r2.RunOne(context.Background(), machine.MangoPiD1(), w); err != nil {
		t.Fatal(err)
	}
	if _, misses := r2.CacheStats(); misses != 1 {
		t.Errorf("restarted process misses = %d, want 1 (nothing was persisted)", misses)
	}
	if ts2 := r2.TierStats(); ts2.DiskWrites != 1 {
		t.Errorf("healed persist wrote %d entries, want 1", ts2.DiskWrites)
	}
}
