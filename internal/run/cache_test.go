package run

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/sim"
)

// countingKeyed is a Keyed workload that counts real executions, so tests
// can assert how many simulations the cache allowed through.
type countingKeyed struct {
	name  string
	key   string
	runs  *atomic.Int64
	delay time.Duration
	fail  *atomic.Int64 // fail while > 0, decrementing per run
}

func (w countingKeyed) Name() string     { return w.name }
func (w countingKeyed) CacheKey() string { return w.key }

func (w countingKeyed) Run(ctx context.Context, m *sim.Machine) (Result, error) {
	n := w.runs.Add(1)
	if w.delay > 0 {
		time.Sleep(w.delay)
	}
	if w.fail != nil && w.fail.Add(-1) >= 0 {
		return Result{}, errors.New("transient failure")
	}
	return Result{Seconds: 42, Cycles: float64(n)}, nil
}

// keyedBatch is a small mixed batch of built-in Keyed workloads on two
// devices, with each cell duplicated once.
func keyedBatch() []Job {
	var jobs []Job
	for _, spec := range []machine.Spec{machine.MangoPiD1(), machine.VisionFive()} {
		for _, w := range []Workload{
			Stream(stream.Config{Test: stream.Triad, Elems: 1500, Reps: 2}),
			Transpose(transpose.Config{N: 128, Variant: transpose.Blocking}),
			Blur(blur.Config{W: 48, H: 32, C: 3, F: 5, Variant: blur.OneD}),
		} {
			jobs = append(jobs, Job{Device: spec, Workload: w}, Job{Device: spec, Workload: w})
		}
	}
	return jobs
}

// TestCacheRerunSimulatesNothing is the acceptance test for memoization:
// re-running an identical batch through the same Runner performs zero new
// simulations, and the replayed Results are bit-identical to the first
// run's — cycles, seconds, bandwidths and every Mem counter.
func TestCacheRerunSimulatesNothing(t *testing.T) {
	jobs := keyedBatch()
	r := New(Options{Parallelism: 4})
	first, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	_, coldMisses := r.CacheStats()
	if want := uint64(len(jobs) / 2); coldMisses != want {
		t.Fatalf("cold run simulated %d cells, want %d (one per distinct cell)", coldMisses, want)
	}
	again, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := r.CacheStats()
	if misses != coldMisses {
		t.Errorf("re-run simulated %d new cells, want 0", misses-coldMisses)
	}
	if want := uint64(len(jobs) + len(jobs)/2); hits != want {
		t.Errorf("hits = %d, want %d", hits, want)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Errorf("job %d: cached replay diverges:\n got %+v\nwant %+v", i, again[i], first[i])
		}
	}
}

// TestCacheBitIdenticalToUncached pins that memoization only skips work: a
// cached Runner and a cache-disabled Runner produce identical Results.
func TestCacheBitIdenticalToUncached(t *testing.T) {
	jobs := keyedBatch()
	cached, err := New(Options{Parallelism: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(Options{Parallelism: 4, DisableCache: true}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cached {
		if cached[i] != cold[i] {
			t.Errorf("job %d: cached %+v != uncached %+v", i, cached[i], cold[i])
		}
	}
}

// TestCacheKeyedOnDeviceIdentity guards the cache against the same bug the
// pool already defends against: a mutated preset (same Name, same workload)
// must never be served the base preset's cached result.
func TestCacheKeyedOnDeviceIdentity(t *testing.T) {
	w := Transpose(transpose.Config{N: 128, Variant: transpose.Naive})
	base := machine.MangoPiD1()
	jobs := []Job{
		{Device: base, Workload: w},
		{Device: base.WithMaxInflight(1), Workload: w},
		{Device: base.WithL2(128 << 10), Workload: w},
		{Device: base, Workload: w}, // only this one may hit
	}
	r := New(Options{Parallelism: 1})
	results, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := r.CacheStats()
	if misses != 3 || hits != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/3", hits, misses)
	}
	if results[1] == results[0] || results[2] == results[0] {
		t.Error("mutated device produced the base device's result")
	}
	if results[3] != results[0] {
		t.Error("identical cell replay diverged")
	}
}

// TestCacheSingleflight runs many identical keyed jobs concurrently; the
// in-flight deduplication must let exactly one simulate while the rest wait
// and share its result.
func TestCacheSingleflight(t *testing.T) {
	var runs atomic.Int64
	w := countingKeyed{name: "test/singleflight", key: "sf", runs: &runs, delay: 20 * time.Millisecond}
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Device: machine.MangoPiD1(), Workload: w}
	}
	results, err := New(Options{Parallelism: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("%d executions for 16 identical concurrent jobs, want 1", n)
	}
	for i, r := range results {
		if r != results[0] {
			t.Errorf("job %d result %+v != leader %+v", i, r, results[0])
		}
	}
}

// TestCacheDoesNotMemoizeErrors: a failed keyed job must not poison the
// cache — the next identical job retries and can succeed.
func TestCacheDoesNotMemoizeErrors(t *testing.T) {
	var runs, failures atomic.Int64
	failures.Store(1) // fail exactly the first execution
	w := countingKeyed{name: "test/retry", key: "retry", runs: &runs, fail: &failures}
	r := New(Options{Parallelism: 1})
	if _, err := r.RunOne(context.Background(), machine.MangoPiD1(), w); err == nil {
		t.Fatal("first run did not fail")
	}
	res, err := r.RunOne(context.Background(), machine.MangoPiD1(), w)
	if err != nil {
		t.Fatalf("retry still failed: %v", err)
	}
	if res.Seconds != 42 {
		t.Errorf("retry result %+v", res)
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("%d executions, want 2 (error must not be cached)", n)
	}
	// The success IS cached.
	if _, err := r.RunOne(context.Background(), machine.MangoPiD1(), w); err != nil || runs.Load() != 2 {
		t.Errorf("cached success re-simulated (runs=%d, err=%v)", runs.Load(), err)
	}
}

// TestUnkeyedWorkloadsBypassCache: workloads that do not implement Keyed
// always simulate.
func TestUnkeyedWorkloadsBypassCache(t *testing.T) {
	count := 0
	w := NewFunc("test/unkeyed", func(ctx context.Context, m *sim.Machine) (Result, error) {
		count++
		return Result{Seconds: 1}, nil
	})
	r := New(Options{Parallelism: 1})
	for i := 0; i < 3; i++ {
		if _, err := r.RunOne(context.Background(), machine.MangoPiD1(), w); err != nil {
			t.Fatal(err)
		}
	}
	if count != 3 {
		t.Errorf("unkeyed workload ran %d times, want 3", count)
	}
	if hits, misses := r.CacheStats(); hits != 0 || misses != 0 {
		t.Errorf("unkeyed jobs touched the cache: hits=%d misses=%d", hits, misses)
	}
}

// TestPanicConvertedToJobError: a panicking workload must not crash the
// process (the worker goroutine recovers) and must surface as a per-job
// error while the rest of the batch completes.
func TestPanicConvertedToJobError(t *testing.T) {
	jobs := []Job{
		{Device: machine.MangoPiD1(), Workload: Transpose(transpose.Config{N: 64})},
		{Device: machine.MangoPiD1(), Workload: NewFunc("test/panic",
			func(ctx context.Context, m *sim.Machine) (Result, error) { panic("kernel bug") })},
		{Device: machine.MangoPiD1(), Workload: Transpose(transpose.Config{N: 128})},
	}
	results, err := New(Options{Parallelism: 2}).Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("panicking job reported no error")
	}
	if !strings.Contains(err.Error(), "test/panic on MangoPi") ||
		!strings.Contains(err.Error(), "workload panicked: kernel bug") {
		t.Errorf("error %q lacks panic identification", err)
	}
	if results[0].Seconds <= 0 || results[2].Seconds <= 0 {
		t.Error("jobs sharing the batch with a panicking job lost their results")
	}
}

// TestPanickedMachineIsDiscarded: a machine a workload panicked on may hold
// arbitrary partial state and must never return to the pool.
func TestPanickedMachineIsDiscarded(t *testing.T) {
	r := New(Options{Parallelism: 1})
	spec := machine.MangoPiD1()
	var poisoned *sim.Machine
	_, err := r.RunOne(context.Background(), spec, NewFunc("test/poison",
		func(ctx context.Context, m *sim.Machine) (Result, error) {
			poisoned = m
			m.MustNewF64(64) // dirty the machine, then die mid-run
			panic("mid-run corruption")
		}))
	if err == nil {
		t.Fatal("expected a panic-derived error")
	}
	r.mu.Lock()
	pooled := 0
	for _, ms := range r.pool {
		pooled += len(ms)
		for _, m := range ms {
			if m == poisoned {
				t.Error("panicked machine was re-pooled")
			}
		}
	}
	r.mu.Unlock()
	if pooled != 0 {
		t.Errorf("%d machines pooled after a panic, want 0", pooled)
	}
	// The runner still works: the next job constructs a fresh machine.
	res, err := r.RunOne(context.Background(), spec, Transpose(transpose.Config{N: 64}))
	if err != nil || res.Seconds <= 0 {
		t.Errorf("runner unusable after a panic: %+v, %v", res, err)
	}
}

// TestCancellationErrorsCollapsed: cancelling a large batch must report one
// context error with a skipped-job count, not one per remaining job.
func TestCancellationErrorsCollapsed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every job is skipped
	jobs := make([]Job, 1000)
	for i := range jobs {
		jobs[i] = Job{Device: machine.MangoPiD1(), Workload: NewFunc(
			fmt.Sprintf("test/collapse-%d", i),
			func(ctx context.Context, m *sim.Machine) (Result, error) {
				return Result{Seconds: 1}, nil
			})}
	}
	_, err := New(Options{Parallelism: 4}).Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	msg := err.Error()
	if got := strings.Count(msg, "context canceled"); got != 1 {
		t.Errorf("%d copies of the context error in %q, want 1", got, msg)
	}
	if !strings.Contains(msg, "1000 jobs skipped") {
		t.Errorf("error %q lacks the skipped-job count", msg)
	}
	// A real per-job failure must still be reported alongside the collapsed
	// cancellation.
	boom := errors.New("boom")
	jobs[0] = Job{Device: machine.MangoPiD1(), Workload: NewFunc("test/collapse-real",
		func(ctx context.Context, m *sim.Machine) (Result, error) { return Result{}, boom })}
	ctx2, cancel2 := context.WithCancel(context.Background())
	first := true
	jobs[1] = Job{Device: machine.MangoPiD1(), Workload: NewFunc("test/collapse-trigger",
		func(ctx context.Context, m *sim.Machine) (Result, error) {
			if first {
				first = false
				cancel2()
			}
			return Result{Seconds: 1}, nil
		})}
	_, err = New(Options{Parallelism: 1}).Run(ctx2, jobs)
	if !errors.Is(err, boom) || !errors.Is(err, context.Canceled) {
		t.Errorf("joined error %v lost a component", err)
	}
}

// blockingKeyed blocks in Run until release is closed, then surfaces its
// context's error (so a cancelled leader fails with a ctx error while the
// flight is still joined by waiters from other batches).
type blockingKeyed struct {
	runs    *atomic.Int64
	entered chan struct{} // closed... no: signalled once per entry
	release chan struct{}
}

func (w blockingKeyed) Name() string     { return "test/cross-batch" }
func (w blockingKeyed) CacheKey() string { return "cross-batch" }

func (w blockingKeyed) Run(ctx context.Context, m *sim.Machine) (Result, error) {
	w.runs.Add(1)
	select {
	case w.entered <- struct{}{}:
	default:
	}
	<-w.release
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return Result{Seconds: 7}, nil
}

// TestWaiterSurvivesLeaderCancellation: when two batches share a Runner and
// the flight leader's batch is cancelled, a waiter from the *other* batch
// must not inherit the leader's context error — it retries under its own
// live context.
func TestWaiterSurvivesLeaderCancellation(t *testing.T) {
	var runs atomic.Int64
	w := blockingKeyed{runs: &runs, entered: make(chan struct{}, 2), release: make(chan struct{})}
	r := New(Options{Parallelism: 1})
	job := Job{Device: machine.MangoPiD1(), Workload: w}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := r.Run(leaderCtx, []Job{job})
		leaderDone <- err
	}()
	<-w.entered // the leader holds the flight, blocked in Run

	waiterDone := make(chan struct {
		res []Result
		err error
	}, 1)
	go func() {
		res, err := r.Run(context.Background(), []Job{job})
		waiterDone <- struct {
			res []Result
			err error
		}{res, err}
	}()
	// Give the waiter time to join the flight, then cancel only the
	// leader's batch and let it observe the cancellation.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	close(w.release)

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader batch error = %v, want context.Canceled", err)
	}
	got := <-waiterDone
	if got.err != nil {
		t.Fatalf("waiter batch inherited the leader's cancellation: %v", got.err)
	}
	if got.res[0].Seconds != 7 {
		t.Errorf("waiter result = %+v", got.res[0])
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("%d executions, want 2 (leader cancelled, waiter retried)", n)
	}
	// Nothing was ever served from the cache: the join that ended in a
	// retry must not count as a hit.
	if hits, misses := r.CacheStats(); hits != 0 || misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 0/2", hits, misses)
	}
}

// TestWrappedContextErrorsNotCollapsed: a workload that ran and failed with
// an error that merely wraps a context sentinel (its own internal timeout,
// say) is a real per-job failure — it must keep its identified entry, not be
// folded into the "jobs skipped" bucket.
func TestWrappedContextErrorsNotCollapsed(t *testing.T) {
	mk := func(i int) Workload {
		return NewFunc(fmt.Sprintf("test/inner-timeout-%d", i),
			func(ctx context.Context, m *sim.Machine) (Result, error) {
				return Result{}, fmt.Errorf("upstream fetch: %w", context.DeadlineExceeded)
			})
	}
	jobs := []Job{
		{Device: machine.MangoPiD1(), Workload: mk(0)},
		{Device: machine.MangoPiD1(), Workload: mk(1)},
	}
	_, err := New(Options{Parallelism: 1}).Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("failing batch returned nil error")
	}
	msg := err.Error()
	if strings.Contains(msg, "skipped") {
		t.Errorf("ran-and-failed jobs mislabeled as skipped: %q", msg)
	}
	for i := range jobs {
		if want := fmt.Sprintf("test/inner-timeout-%d", i); !strings.Contains(msg, want) {
			t.Errorf("error %q lost the entry for %s", msg, want)
		}
	}
}
