//go:build faultinject

// The runner chaos suite: fault-injected acquisition failures, panicking
// workloads and transient flakes driven through the ordinary Runner paths,
// asserting the robustness invariants — batches survive, poisoned machines
// never re-pool, errors are never served from the cache, nothing leaks.
// Build with -tags faultinject (the CI chaos job runs it under -race).
package run_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"riscvmem/internal/faultinject"
	"riscvmem/internal/faultinject/chaos"
	"riscvmem/internal/leakcheck"
	"riscvmem/internal/machine"
	"riscvmem/internal/run"
)

var errInjected = errors.New("chaos: injected acquire failure")

// TestChaosTransientAcquireFailure: a machine-acquisition failure fails
// only the job that hit it — and is never memoized, so an identical keyed
// job retries and succeeds.
func TestChaosTransientAcquireFailure(t *testing.T) {
	faultinject.Reset() // drop activation counts from earlier tests
	defer faultinject.Reset()
	defer leakcheck.Check(t)()
	faultinject.Set(faultinject.RunnerAcquire, faultinject.FailTimes(1, errInjected))

	r := run.New(run.Options{Parallelism: 1})
	flaky := chaos.NewFlaky("acquire-victim", 0) // keyed, intrinsically healthy

	_, err := r.RunOne(context.Background(), machine.MangoPiD1(), flaky)
	if !errors.Is(err, errInjected) {
		t.Fatalf("first run error = %v, want the injected failure", err)
	}
	if flaky.Runs() != 0 {
		t.Fatalf("workload executed %d times despite the acquire failure", flaky.Runs())
	}

	// Same cache key, second attempt: the failure must not have been cached.
	res, err := r.RunOne(context.Background(), machine.MangoPiD1(), flaky)
	if err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if flaky.Runs() != 1 || res.Seconds <= 0 {
		t.Errorf("retry did not actually execute: runs=%d res=%+v", flaky.Runs(), res)
	}
	if n := faultinject.Fired(faultinject.RunnerAcquire); n != 2 {
		t.Errorf("acquire seam fired %d times, want 2", n)
	}
}

// TestChaosPanicIsolated: a workload panic fails its own job, poisons its
// machine, and leaves the rest of the batch — and the runner — intact.
func TestChaosPanicIsolated(t *testing.T) {
	defer leakcheck.Check(t)()
	r := run.New(run.Options{Parallelism: 1})
	dev := machine.MangoPiD1()
	jobs := []run.Job{
		{Device: dev, Workload: chaos.Panic("boom")},
		{Device: dev, Workload: chaos.Slow("ok-1", 0)},
		{Device: dev, Workload: chaos.Slow("ok-2", 0)},
	}
	results, errs := r.RunAll(context.Background(), jobs)
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "workload panicked") {
		t.Fatalf("panic job error = %v, want a recovered panic", errs[0])
	}
	for i := 1; i < 3; i++ {
		if errs[i] != nil || results[i].Workload == "" {
			t.Errorf("job %d after the panic: err=%v res=%+v", i, errs[i], results[i])
		}
	}
	// The panicked machine was mutated mid-run and must be discarded: only
	// the machine the two healthy serial jobs shared is pooled.
	if n := r.PoolSize(); n != 1 {
		t.Errorf("PoolSize() = %d, want 1 (panicked machine poisoned)", n)
	}
	// The runner still serves fresh work on the same device.
	if _, err := r.RunOne(context.Background(), dev, chaos.Slow("after", 0)); err != nil {
		t.Errorf("run after panic: %v", err)
	}
}

// TestChaosFlakyNeverCached: a keyed workload that fails transiently must
// re-execute on the next identical job — the memo cache may only ever serve
// successes.
func TestChaosFlakyNeverCached(t *testing.T) {
	defer leakcheck.Check(t)()
	r := run.New(run.Options{})
	flaky := chaos.NewFlaky("flaky-once", 1)
	dev := machine.MangoPiD1()

	if _, err := r.RunOne(context.Background(), dev, flaky); err == nil ||
		!strings.Contains(err.Error(), "transient failure") {
		t.Fatalf("first run error = %v, want the transient failure", err)
	}
	res, err := r.RunOne(context.Background(), dev, flaky)
	if err != nil {
		t.Fatalf("second run: %v (the failure was cached)", err)
	}
	if flaky.Runs() != 2 {
		t.Fatalf("workload executed %d times, want 2 (no cache hit for the error)", flaky.Runs())
	}
	// Third run: the success IS cached.
	res3, err := r.RunOne(context.Background(), dev, flaky)
	if err != nil || flaky.Runs() != 2 {
		t.Errorf("third run: err=%v runs=%d, want a cache hit", err, flaky.Runs())
	}
	if res3 != res {
		t.Errorf("cached result differs: %+v != %+v", res3, res)
	}
	hits, misses := r.CacheStats()
	if hits != 1 || misses != 2 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/2", hits, misses)
	}
}
