package run_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"riscvmem/internal/faultinject/chaos"
	"riscvmem/internal/leakcheck"
	"riscvmem/internal/machine"
	"riscvmem/internal/run"
)

// TestAbandonStalledWorkload pins the deadline-honoring execution loop: a
// workload that ignores its context entirely cannot hold the batch hostage
// — the runner abandons the run at the deadline, reports a wrapped context
// error, and never re-pools the machine the stray goroutine still owns.
func TestAbandonStalledWorkload(t *testing.T) {
	assertNoLeak := leakcheck.Check(t)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	w := chaos.Stall("stall-deaf", started, release, false /* ignore ctx */)

	r := run.New(run.Options{Parallelism: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := r.RunOne(ctx, machine.MangoPiD1(), w)
		done <- err
	}()
	<-started // the workload is definitely executing — entry checks passed
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("runner did not abandon a context-deaf workload")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want wrapped Canceled", err)
	}
	if !strings.Contains(err.Error(), "abandoned") {
		t.Errorf("error = %v, want an abandonment marker", err)
	}
	if got := r.Abandoned(); got != 1 {
		t.Errorf("Abandoned() = %d, want 1", got)
	}
	// The stray goroutine still owns the machine: it must never return to
	// the pool, before or after the workload finally unblocks.
	if n := r.PoolSize(); n != 0 {
		t.Errorf("PoolSize() = %d immediately after abandonment, want 0", n)
	}
	close(release)
	assertNoLeak() // polls: the abandoned goroutine drains once released
	if n := r.PoolSize(); n != 0 {
		t.Errorf("PoolSize() = %d after the abandoned run finished, want 0 (poisoned)", n)
	}

	// The runner still works: the next job on the same device constructs a
	// fresh machine.
	res, err := r.RunOne(context.Background(), machine.MangoPiD1(), chaos.Slow("quick", 0))
	if err != nil || res.Workload != "quick" {
		t.Fatalf("post-abandonment run: %v %+v", err, res)
	}
}

// TestAbandonCooperativeWorkloadStillClean: a workload that honors ctx is
// cancelled, not abandoned — the error is the bare skip/cancel path and no
// machine is poisoned beyond the one in flight.
func TestAbandonCooperativeWorkload(t *testing.T) {
	assertNoLeak := leakcheck.Check(t)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	w := chaos.Stall("stall-polite", started, release, true /* honor ctx */)

	r := run.New(run.Options{Parallelism: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.RunOne(ctx, machine.MangoPiD1(), w)
		done <- err
	}()
	<-started
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want Canceled", err)
	}
	assertNoLeak()
}
