package run

import (
	"context"
	"testing"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/units"
)

// crossProduct builds the full kernel×variant×device evaluation grid at
// test scale: 4 STREAM tests + 5 transposition variants + 5 blur variants
// on each of the paper's 4 devices (56 jobs).
func crossProduct() []Job {
	var jobs []Job
	for _, spec := range machine.All() {
		for _, t := range stream.Tests() {
			jobs = append(jobs, Job{Device: spec, Workload: Stream(stream.Config{
				Test: t, Elems: 2000, Cores: spec.Cores, Reps: 2,
			})})
		}
		for _, v := range transpose.Variants() {
			jobs = append(jobs, Job{Device: spec, Workload: Transpose(transpose.Config{
				N: 128, Variant: v, Verify: true,
			})})
		}
		for _, v := range blur.Variants() {
			jobs = append(jobs, Job{Device: spec, Workload: Blur(blur.Config{
				W: 64, H: 48, C: 3, F: 9, Variant: v, Verify: true,
			})})
		}
	}
	return jobs
}

// serialResult runs one job the pre-Runner way — the kernel's own Run
// function on a fresh machine — and maps it to the unified Result exactly
// like the adapters do.
func serialResult(t *testing.T, job Job) Result {
	t.Helper()
	spec := job.Device
	switch w := job.Workload.(type) {
	case streamWorkload:
		meas, err := stream.Run(spec, w.cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Result{
			Workload: w.Name(), Device: spec.Name,
			Cycles:  meas.BestCycles,
			Seconds: units.Seconds(meas.BestCycles, spec.FreqGHz),
			Bytes:   meas.Bytes, Bandwidth: meas.Best, Mem: meas.Mem,
		}
	case transposeWorkload:
		res, err := transpose.Run(spec, w.cfg)
		if err != nil {
			t.Fatal(err)
		}
		bytes := transpose.BytesMoved(res.N)
		return Result{
			Workload: w.Name(), Device: spec.Name,
			Cycles: res.Cycles, Seconds: res.Seconds,
			Bytes:     bytes,
			Bandwidth: units.Bandwidth(bytes, res.Cycles, spec.FreqGHz),
			Mem:       res.Mem,
		}
	case blurWorkload:
		res, err := blur.Run(spec, w.cfg)
		if err != nil {
			t.Fatal(err)
		}
		bytes := blur.BytesMoved(res.W, res.H, res.C)
		return Result{
			Workload: w.Name(), Device: spec.Name,
			Cycles: res.Cycles, Seconds: res.Seconds,
			Bytes:     bytes,
			Bandwidth: units.Bandwidth(bytes, res.Cycles, spec.FreqGHz),
			Mem:       res.Mem,
		}
	}
	t.Fatalf("unknown workload type %T", job.Workload)
	return Result{}
}

// TestBatchOracle is the redesign's oracle: a batched Runner pass over the
// full kernel×variant×device cross-product — parallel workers, pooled
// machines reused via Reset — must yield bit-identical simulated seconds,
// cycles, bandwidths, and memory-system statistics to the serial
// per-function path on fresh machines.
func TestBatchOracle(t *testing.T) {
	jobs := crossProduct()
	// 4 workers against 56 jobs forces heavy machine reuse through the pool.
	r := New(Options{Parallelism: 4})
	batched, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(batched), len(jobs))
	}
	for i, job := range jobs {
		want := serialResult(t, job)
		if batched[i] != want {
			t.Errorf("job %d (%s on %s): batched result diverges from serial path:\n got %+v\nwant %+v",
				i, job.Workload.Name(), job.Device.Name, batched[i], want)
		}
	}
}

// TestBatchDeterminism runs the same batch twice at different parallelism
// and requires identical results — host scheduling must never leak into
// simulated outcomes.
func TestBatchDeterminism(t *testing.T) {
	jobs := crossProduct()
	a, err := New(Options{Parallelism: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Parallelism: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("job %d: parallel %+v != serial %+v", i, a[i], b[i])
		}
	}
}
