package analyzers_test

import (
	"testing"

	"riscvmem/internal/analyzers"
	"riscvmem/internal/analyzers/analysis"
)

// The tree itself must stay clean under its own lint suite: any new
// finding is either a bug to fix or a deliberate exception to record
// with a //simlint:allow directive, not something to land silently.
func TestSuiteRunsCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	for _, tags := range []string{"", "faultinject"} {
		pkgs, err := analysis.Load(analysis.Config{Tags: tags}, "riscvmem/...")
		if err != nil {
			t.Fatalf("load (tags=%q): %v", tags, err)
		}
		diags, err := analysis.Run(pkgs, analyzers.Suite())
		if err != nil {
			t.Fatalf("run (tags=%q): %v", tags, err)
		}
		for _, d := range diags {
			t.Errorf("tags=%q: %s", tags, d)
		}
	}
}
