package determinism_test

import (
	"testing"

	"riscvmem/internal/analyzers/analysis/analysistest"
	"riscvmem/internal/analyzers/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "det", "nodirective")
}
