// Package determinism checks that opted-in packages — the performance
// model and every canonical-encoding surface — stay bit-identically
// deterministic across runs and processes.
//
// The whole reproduction rests on that property: golden cycle counts,
// oracle tests pinning pooled/batched/cached runs bit-identical to fresh
// ones, and the memo store serving yesterday's result as today's all
// assume that the same inputs produce the same bytes. The three ways Go
// code usually loses it silently are wall-clock reads, the process-seeded
// global math/rand source, and map iteration order escaping into output.
//
// A package opts in with a //simlint:deterministic comment (conventionally
// right above its package clause). Inside such packages the analyzer
// flags:
//
//   - time.Now / time.Since / time.Until — wall-clock timing has no place
//     in a model whose own clock is simulated cycles;
//   - global math/rand and math/rand/v2 functions (rand.Intn, rand.Shuffle,
//     ...) — process-seeded; a model that needs randomness must thread an
//     explicitly seeded *rand.Rand;
//   - ranging over a map while appending to a slice that is never sorted
//     in the same function, sending on a channel, or writing output
//     (fmt.Print*/Fprint*, strings.Builder / bytes.Buffer writes) — the
//     iteration order leaks. Collect-then-sort is the allowed pattern:
//     an append absolved by a later sort.* / slices.* call on the same
//     slice is fine, as are order-insensitive folds (sums, counters, map
//     writes).
//
// Intentional exceptions carry //simlint:allow determinism with a reason.
package determinism

import (
	"go/ast"
	"go/types"

	"riscvmem/internal/analyzers/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and map-iteration order " +
		"escaping into outputs, in packages marked //simlint:deterministic",
	Run: run,
}

// Directive is the package-level opt-in marker.
const Directive = "deterministic"

func run(pass *analysis.Pass) error {
	if !analysis.HasPackageDirective(pass.Files, Directive) {
		return nil
	}
	for _, f := range pass.Files {
		// Walk with a stack of enclosing function bodies so the map-range
		// check can look for absolving sorts in the innermost function.
		var bodies []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
					ast.Inspect(n.Body, walk)
					bodies = bodies[:len(bodies)-1]
				}
				return false
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
				ast.Inspect(n.Body, walk)
				bodies = bodies[:len(bodies)-1]
				return false
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				var body *ast.BlockStmt
				if len(bodies) > 0 {
					body = bodies[len(bodies)-1]
				}
				checkMapRange(pass, n, body)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// randConstructors are the math/rand package functions that build a local
// generator instead of consulting the global source — the sanctioned way
// to use randomness deterministically.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkgPath, name := calleePackage(pass, call)
	switch pkgPath {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; a deterministic package must derive timing from simulated state", name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			pass.Reportf(call.Pos(),
				"global %s.%s uses the process-seeded source; thread an explicitly seeded *rand.Rand instead", pathBase(pkgPath), name)
		}
	}
}

// calleePackage resolves a call of the form pkg.Func to its package path
// and function name; ("", "") for anything else (methods, locals,
// builtins).
func calleePackage(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

func pathBase(path string) string {
	if path == "math/rand/v2" {
		return "rand"
	}
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// checkMapRange flags order-sensitive sinks inside a range over a map.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside a map range publishes values in map-iteration order")
		case *ast.CallExpr:
			checkRangeBodyCall(pass, n, enclosing)
		}
		return true
	})
}

func checkRangeBodyCall(pass *analysis.Pass, call *ast.CallExpr, enclosing *ast.BlockStmt) {
	// append(dst, ...) — order-sensitive unless dst is sorted later in the
	// same function (the collect-then-sort idiom).
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			obj := rootObject(pass, call.Args[0])
			if obj != nil && !sortedLater(pass, enclosing, obj) {
				pass.Reportf(call.Pos(),
					"append to %s inside a map range records map-iteration order; sort it afterwards or iterate sorted keys", obj.Name())
			}
			return
		}
	}

	// Direct output in iteration order.
	pkgPath, name := calleePackage(pass, call)
	if pkgPath == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			pass.Reportf(call.Pos(),
				"fmt.%s inside a map range writes output in map-iteration order", name)
		}
		return
	}

	// strings.Builder / bytes.Buffer writes accumulate in iteration order.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if recv := pass.TypesInfo.TypeOf(sel.X); recv != nil && isAccumulator(recv) {
			switch sel.Sel.Name {
			case "WriteString", "WriteByte", "WriteRune", "Write":
				pass.Reportf(call.Pos(),
					"%s inside a map range accumulates output in map-iteration order", sel.Sel.Name)
			}
		}
	}
}

// isAccumulator reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer.
func isAccumulator(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// rootObject unwraps x.f[i].g chains to the root identifier's object.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedLater reports whether the enclosing function contains a
// sort.* / slices.* call mentioning the object — the absolution for a
// collect-then-sort append.
func sortedLater(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, _ := calleePackage(pass, call)
		if pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
