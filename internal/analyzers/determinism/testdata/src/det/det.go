// Package det is the determinism fixture: a package opted in via the
// directive, exercising every flagged pattern and its allowed near-miss.
//
//simlint:deterministic
package det

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// --- wall clock ---

func Clock() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	elapsed := time.Since(t) // want `time\.Since reads the wall clock`
	_ = time.Until(t) // want `time\.Until reads the wall clock`
	return int64(elapsed)
}

// Timer constructions and duration arithmetic are not wall-clock reads.
func AllowedTime() *time.Timer {
	return time.NewTimer(2 * time.Millisecond)
}

// --- global math/rand ---

func GlobalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `global rand\.Shuffle uses the process-seeded source`
	return rand.Intn(10) // want `global rand\.Intn uses the process-seeded source`
}

// A locally seeded generator is the sanctioned pattern.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// --- map iteration escaping into output ---

func LeakOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside a map range records map-iteration order`
	}
	return out
}

// Collect-then-sort is the allowed near-miss: the append is absolved by
// the later sort on the same slice.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func PrintOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside a map range writes output`
	}
}

func BuildOrder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside a map range accumulates output`
	}
	return b.String()
}

func BufferOrder(m map[string]int) []byte {
	var b bytes.Buffer
	for k := range m {
		b.Write([]byte(k)) // want `Write inside a map range accumulates output`
	}
	return b.Bytes()
}

func SendOrder(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside a map range publishes values`
	}
}

// Order-insensitive folds over a map are fine: sums, counters, map
// writes, error construction.
func Fold(m map[string]int) (int, map[string]bool) {
	total := 0
	seen := map[string]bool{}
	for k, v := range m {
		total += v
		seen[k] = true
		if v < 0 {
			_ = fmt.Errorf("negative %s", k)
		}
	}
	return total, seen
}

// Ranging over a slice is never flagged, whatever the body does.
func SliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// An explicit allow directive suppresses a genuine finding (here: the
// caller is documented to treat the result as an unordered set).
func AllowedLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		//simlint:allow determinism -- result is consumed as an unordered set
		out = append(out, k)
	}
	return out
}
