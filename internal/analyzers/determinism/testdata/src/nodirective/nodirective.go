// Package nodirective has NO //simlint:deterministic directive: the
// analyzer must stay silent here even though the code reads the wall
// clock — determinism is an opt-in contract, not a global rule.
package nodirective

import "time"

func Clock() time.Time { return time.Now() }
