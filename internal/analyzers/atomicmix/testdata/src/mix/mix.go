// Package mix is the atomicmix fixture: counters accessed both through
// sync/atomic and plainly (the PR 5 Runner counter hazard), plus the
// patterns that must stay clean.
package mix

import (
	"sync"
	"sync/atomic"
)

// Counters mixes access modes: hits is atomic everywhere, misses is
// atomic in one place and plain in another.
type Counters struct {
	hits   uint64
	misses uint64
	// typed is inherently safe: plain access is unrepresentable.
	typed atomic.Uint64
	mu    sync.Mutex
	other int
}

func (c *Counters) Hit() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *Counters) Miss() {
	atomic.AddUint64(&c.misses, 1)
}

func (c *Counters) Snapshot() (uint64, uint64) {
	h := atomic.LoadUint64(&c.hits)
	m := c.misses // want `field misses is accessed with sync/atomic at .*mix\.go:\d+:\d+ but plainly here`
	return h, m
}

func (c *Counters) Reset() {
	c.misses = 0 // want `field misses is accessed with sync/atomic at .*mix\.go:\d+:\d+ but plainly here`
	atomic.StoreUint64(&c.hits, 0)
}

// Typed atomics and never-atomic fields are not flagged, including under
// a lock.
func (c *Counters) Other() int {
	c.typed.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.other++
	return c.other
}

// A constructor that must write the field before the value escapes
// documents itself with an allow directive.
func NewCounters(seed uint64) *Counters {
	c := &Counters{}
	//simlint:allow atomicmix -- value has not escaped yet; no concurrent access is possible
	c.misses = seed
	return c
}

// Plain is a struct whose identically named fields are never touched
// atomically — same field names must not alias across types.
type Plain struct {
	hits   uint64
	misses uint64
}

func (p *Plain) Bump() {
	p.hits++
	p.misses++
}
