package atomicmix_test

import (
	"testing"

	"riscvmem/internal/analyzers/analysis/analysistest"
	"riscvmem/internal/analyzers/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "mix")
}
