// Package atomicmix flags struct fields that are accessed both through
// sync/atomic operations and by plain reads or writes.
//
// This is the hot-path counter hazard from the Runner's de-locking (PR 5)
// and the one the parallel discrete-event engine rework will multiply:
// once any access to a word is atomic, *every* access must be — a plain
// `f.hits++` racing an `atomic.AddUint64(&f.hits, 1)` is a data race the
// race detector only catches when both paths actually interleave in a
// test run. The analyzer catches the mixed pattern statically, package by
// package.
//
// Within one package it collects every field used as the address operand
// of a sync/atomic call (`atomic.AddUint64(&s.hits, 1)`) and then flags
// every other selector touching the same field outside an atomic call.
// The recommended fix is usually to migrate the field to a typed atomic
// (atomic.Uint64 et al.), which makes plain access unrepresentable —
// typed atomics are invisible to this analyzer precisely because they
// cannot be mixed. Deliberate exceptions (a constructor writing before
// the value escapes) carry //simlint:allow atomicmix with a reason.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"riscvmem/internal/analyzers/analysis"
)

// Analyzer is the mixed-atomic-access check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag struct fields accessed both through sync/atomic and by plain " +
		"reads/writes; migrate such fields to typed atomics",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: fields whose address feeds a sync/atomic call, and the
	// selector expressions that are those operands (excluded in pass 2).
	atomicFields := map[*types.Var]token.Pos{}
	operand := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(pass, sel); fv != nil {
					if _, seen := atomicFields[fv]; !seen {
						atomicFields[fv] = call.Pos()
					}
					operand[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other selector reaching one of those fields is a plain
	// access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || operand[sel] {
				return true
			}
			fv := fieldOf(pass, sel)
			if fv == nil {
				return true
			}
			if atomicPos, ok := atomicFields[fv]; ok {
				pass.Reportf(sel.Sel.Pos(),
					"field %s is accessed with sync/atomic at %s but plainly here; every access must be atomic (prefer a typed atomic like atomic.%s)",
					fv.Name(), pass.Fset.Position(atomicPos), typedAtomicFor(fv.Type()))
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether the call is a sync/atomic package function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldOf resolves a selector to the struct field it reads, or nil.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// typedAtomicFor names the sync/atomic typed wrapper matching a plain
// field type, for the diagnostic's suggestion.
func typedAtomicFor(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Uint64, types.Uint, types.Uintptr:
		return "Uint64"
	case types.Uint32:
		return "Uint32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Int32:
		return "Int32"
	case types.Bool:
		return "Bool"
	default:
		return "Value"
	}
}
