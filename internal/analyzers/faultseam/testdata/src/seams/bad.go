package seams

import "faultinject"

// Discarded seam: the injected error never reaches the caller, so the
// seam guards nothing.
func DiscardedFire() {
	faultinject.Fire(faultinject.PointA) // want `faultinject\.Fire's error is discarded`
}

// Ad-hoc points dodge the deliberate seam registry.
func AdHocPoint() error {
	return faultinject.Fire(faultinject.Point("improvised")) // want `Fire takes a Point constant declared in the faultinject package`
}

func IndirectPoint() error {
	p := faultinject.PointB
	return faultinject.Fire(p) // want `Fire takes a Point constant declared in the faultinject package`
}

// Tag-only API from an untagged file: compiles in a tagged build (and
// under tagged vet/tests) but breaks the zero-cost contract.
func InstallHandler() {
	faultinject.Set(faultinject.PointA, nil) // want `faultinject\.Set exists only under -tags faultinject`
}

func CountFired() int {
	return faultinject.Fired(faultinject.PointB) // want `faultinject\.Fired exists only under -tags faultinject`
}

var _ faultinject.Handler // want `faultinject\.Handler exists only under -tags faultinject`
