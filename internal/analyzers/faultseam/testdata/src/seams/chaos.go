//go:build faultinject

package seams

import "faultinject"

// Chaos-side code in a //go:build faultinject file may use the whole
// API — this file does not exist in the untagged build, so the zero-cost
// contract holds by construction.
func ArmChaos(err error) {
	faultinject.Set(faultinject.PointA, faultinject.FailTimes(2, err))
	_ = faultinject.Fired(faultinject.PointA)
}
