// Package seams is the faultseam fixture: production-side seam usage,
// correct and incorrect, in tagged and untagged files.
package seams

import (
	"fmt"

	"faultinject"
)

// Acquire is the sanctioned seam shape: Fire with a declared Point
// constant, error consulted, from an untagged file.
func Acquire() error {
	if err := faultinject.Fire(faultinject.PointA); err != nil {
		return fmt.Errorf("injected: %w", err)
	}
	return nil
}

// Guarded bookkeeping behind the Enabled constant is always allowed.
func Guarded() {
	if faultinject.Enabled {
		fmt.Println("harness compiled in")
	}
}
