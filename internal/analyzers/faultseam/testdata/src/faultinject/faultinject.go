// Package faultinject models the repo's fault-injection API for the
// faultseam fixtures: same name, same exported surface. In the real
// package everything below Fire/Enabled/Point is build-tag gated; here it
// is all present so the fixture load compiles with and without the tag —
// the analyzer's judgment is about the *referencing* file's build
// constraint, not about how this package was built.
package faultinject

// Point names one injection seam.
type Point string

// PointA and PointB are declared seams.
const (
	PointA Point = "a"
	PointB Point = "b"
)

// Enabled reports whether the harness is compiled in.
const Enabled = false

// Fire consults the point's handler.
func Fire(Point) error { return nil }

// Handler decides one activation of a point. Tag-only in the real API.
type Handler func() error

// Set installs a handler. Tag-only in the real API.
func Set(Point, Handler) {}

// Fired counts activations. Tag-only in the real API.
func Fired(Point) int { return 0 }

// FailTimes builds a transient-fault handler. Tag-only in the real API.
func FailTimes(int, error) Handler { return nil }
