// Package faultseam verifies that fault-injection seams stay zero-cost in
// untagged builds and honest in tagged ones.
//
// The faultinject package is a build-tag pair: every build sees Fire (a
// no-op stub without the tag), Enabled, and the Point constants; the
// handler registry (Set, Clear, Reset, Fired, Handler, FailTimes,
// AlwaysFail) exists only under `-tags faultinject`. The compiler already
// refuses tag-only symbols in untagged builds — but only in the build
// that's actually run, and a `go vet -tags faultinject` or test-tagged
// tree compiles fine while silently committing an ordinary file to the
// chaos-only API. The analyzer pins the discipline structurally:
//
//   - tag-only API referenced from a file without a faultinject build
//     constraint is flagged, whatever tags the analysis itself ran with;
//   - a Fire call whose error result is discarded is flagged — an
//     unconsulted seam injects nothing and silently stops guarding its
//     invariant;
//   - a Fire argument that is not a declared Point constant is flagged —
//     ad-hoc string points dodge the deliberate seam registry in
//     faultinject.go.
//
// The check keys on any imported package *named* faultinject that exports
// Fire and Point, so fixtures can model the API without the repo path.
package faultseam

import (
	"go/ast"
	"go/build/constraint"
	"go/types"
	"strings"

	"riscvmem/internal/analyzers/analysis"
)

// Analyzer is the fault-seam discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "faultseam",
	Doc: "restrict faultinject usage to the always-built API (Fire/Enabled/Point " +
		"constants) outside //go:build faultinject files; require Fire errors to be " +
		"consulted and Fire points to be declared constants",
	Run: run,
}

// alwaysBuilt are the faultinject symbols present in every build.
var alwaysBuilt = map[string]bool{
	"Fire": true, "Enabled": true, "Point": true,
}

func run(pass *analysis.Pass) error {
	// The defining package and its test files police themselves.
	if pass.Pkg != nil && pass.Pkg.Name() == "faultinject" {
		return nil
	}
	for _, f := range pass.Files {
		fi := faultinjectImport(pass, f)
		if fi == nil {
			continue
		}
		tagged := hasFaultinjectTag(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && isFireCall(pass, call, fi) {
					pass.Reportf(call.Pos(),
						"faultinject.Fire's error is discarded; a seam that ignores the injected error guards nothing")
				}
			case *ast.CallExpr:
				if isFireCall(pass, n, fi) {
					checkFireArg(pass, n, fi)
				}
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if obj == nil || obj.Pkg() != fi {
					return true
				}
				if _, isConst := obj.(*types.Const); isConst || alwaysBuilt[obj.Name()] {
					return true
				}
				if !tagged {
					pass.Reportf(n.Pos(),
						"faultinject.%s exists only under -tags faultinject; reference it from a //go:build faultinject file so the untagged build stays zero-cost", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// faultinjectImport returns the imported faultinject package used by the
// file, identified structurally: its name is faultinject and it exports
// Fire and Point.
func faultinjectImport(pass *analysis.Pass, f *ast.File) *types.Package {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		for _, dep := range pass.Pkg.Imports() {
			if dep.Path() != path || dep.Name() != "faultinject" {
				continue
			}
			scope := dep.Scope()
			if scope.Lookup("Fire") != nil && scope.Lookup("Point") != nil {
				return dep
			}
		}
	}
	return nil
}

// hasFaultinjectTag reports whether the file carries a build constraint
// requiring the faultinject tag.
func hasFaultinjectTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			// The file is gated on the faultinject tag iff flipping that
			// one tag flips the constraint (other tags held constant), so
			// a //go:build linux file is not mistaken for a chaos file.
			with := expr.Eval(func(tag string) bool { return true })
			without := expr.Eval(func(tag string) bool { return tag != "faultinject" })
			if with && !without {
				return true
			}
		}
	}
	return false
}

func isFireCall(pass *analysis.Pass, call *ast.CallExpr, fi *types.Package) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() == fi && obj.Name() == "Fire"
}

// checkFireArg requires the fired point to be a declared constant of the
// faultinject package (not an ad-hoc conversion or variable).
func checkFireArg(pass *analysis.Pass, call *ast.CallExpr, fi *types.Package) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	var obj types.Object
	switch a := arg.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[a]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[a.Sel]
	}
	if c, ok := obj.(*types.Const); ok && c.Pkg() == fi {
		return
	}
	pass.Reportf(arg.Pos(),
		"Fire takes a Point constant declared in the faultinject package; ad-hoc points dodge the deliberate seam registry")
}
