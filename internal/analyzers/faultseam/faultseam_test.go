package faultseam_test

import (
	"testing"

	"riscvmem/internal/analyzers/analysis/analysistest"
	"riscvmem/internal/analyzers/faultseam"
)

// The fixture loads with -tags faultinject so seams/chaos.go (the tagged,
// full-API file that must stay clean) is part of the analyzed package —
// exactly the build CI's chaos vet analyzes.
func TestFaultSeam(t *testing.T) {
	analysistest.RunTags(t, "testdata", "faultinject", faultseam.Analyzer, "seams")
}

// The untagged load must reach the same verdicts on the untagged files.
func TestFaultSeamUntagged(t *testing.T) {
	analysistest.Run(t, "testdata", faultseam.Analyzer, "seams")
}
