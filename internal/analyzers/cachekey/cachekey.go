// Package cachekey statically checks the completeness of canonical
// cache-key encodings.
//
// Every built-in kernel's memoization identity is the canonical
// WorkloadSpec encoding of its Config (run.StreamSpec / TransposeSpec /
// BlurSpec): a function that must name *every* Config field, because a
// field missing from the encoding makes two different configurations
// share one cache entry — the memo store would silently serve the wrong
// result, across processes and forever (the disk tier outlives the bug).
// PR 4 guarded this at runtime with a reflection test counting fields;
// this analyzer makes the same contract a compile-time lint.
//
// An encoder opts in with //simlint:cachekey in its doc comment. The
// analyzer then requires every exported field of the function's struct
// parameter to be read (as a selector) somewhere in its body. To keep the
// contract closed, a function that *looks* like a canonical encoder —
// exported, named *Spec, a single named-struct parameter, a single
// *Spec-named result — but lacks the directive is flagged too, so a new
// kernel cannot ship an unchecked encoding by accident.
package cachekey

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"riscvmem/internal/analyzers/analysis"
)

// Analyzer is the cache-key completeness check.
var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc: "require canonical cache-key encoders (//simlint:cachekey) to read every " +
		"exported field of their Config parameter, and encoder-shaped functions to carry the directive",
	Run: run,
}

// Directive marks a function as a canonical encoder.
const Directive = "cachekey"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.FuncHasDirective(fn, Directive) {
				checkEncoder(pass, fn)
			} else if looksLikeEncoder(pass, fn) {
				pass.Reportf(fn.Name.Pos(),
					"%s looks like a canonical cache-key encoder but has no //simlint:cachekey directive; add it so field completeness is checked", fn.Name.Name)
			}
		}
	}
	return nil
}

// checkEncoder verifies that the function reads every exported field of
// its struct parameter.
func checkEncoder(pass *analysis.Pass, fn *ast.FuncDecl) {
	paramName, st := structParam(pass, fn)
	if st == nil {
		pass.Reportf(fn.Name.Pos(),
			"%s carries //simlint:cachekey but has no named-struct parameter to check", fn.Name.Name)
		return
	}
	// The canonical field objects of the struct type: Selections resolve
	// to these same *types.Var instances wherever the field is read.
	fields := map[*types.Var]bool{} // true once referenced
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Exported() {
			fields[f] = false
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if v, tracked := fields[s.Obj().(*types.Var)]; tracked && !v {
			fields[s.Obj().(*types.Var)] = true
		}
		return true
	})
	var missing []string
	for f, seen := range fields {
		if !seen {
			missing = append(missing, f.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(fn.Name.Pos(),
			"canonical encoding %s does not name %s field(s) %s: two configs differing there would share one cache key",
			fn.Name.Name, paramName, strings.Join(missing, ", "))
	}
}

// structParam finds the function's first parameter whose type is a named
// struct (directly or behind one pointer) and returns its type name and
// underlying struct.
func structParam(pass *analysis.Pass, fn *ast.FuncDecl) (string, *types.Struct) {
	if fn.Type.Params == nil {
		return "", nil
	}
	for _, field := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			return named.Obj().Name(), st
		}
	}
	return "", nil
}

// looksLikeEncoder matches the canonical-encoder shape: an exported
// function named *Spec with exactly one parameter (a named struct) and
// one result whose type name also ends in Spec (run.StreamSpec's shape —
// Config in, WorkloadSpec out).
func looksLikeEncoder(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if fn.Recv != nil || !ast.IsExported(name) || !strings.HasSuffix(name, "Spec") || name == "Spec" {
		return false
	}
	if fn.Type.Params == nil || len(fn.Type.Params.List) != 1 || len(fn.Type.Params.List[0].Names) > 1 {
		return false
	}
	if _, st := structParam(pass, fn); st == nil {
		return false
	}
	if fn.Type.Results == nil || len(fn.Type.Results.List) != 1 {
		return false
	}
	rt := pass.TypesInfo.TypeOf(fn.Type.Results.List[0].Type)
	named, ok := rt.(*types.Named)
	return ok && strings.HasSuffix(named.Obj().Name(), "Spec")
}
