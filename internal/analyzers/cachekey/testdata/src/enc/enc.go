// Package enc is the cachekey fixture: canonical encoders in the shape
// of run.StreamSpec, complete and incomplete.
package enc

import "strconv"

// Spec stands in for run.WorkloadSpec.
type Spec struct {
	Kernel string
	Params map[string]string
}

// Config stands in for a kernel Config: three exported fields (all of
// which must appear in a canonical encoding) and one unexported field
// (which must not be required).
type Config struct {
	Elems   int
	Reps    int
	Verify  bool
	scratch []byte
}

// Normalized mimics stream.Config.Normalized.
func (c Config) Normalized() Config {
	if c.Reps == 0 {
		c.Reps = 3
	}
	return c
}

// CompleteSpec names every exported Config field.
//
//simlint:cachekey
func CompleteSpec(cfg Config) Spec {
	cfg = cfg.Normalized()
	return Spec{Kernel: "complete", Params: map[string]string{
		"elems":  strconv.Itoa(cfg.Elems),
		"reps":   strconv.Itoa(cfg.Reps),
		"verify": strconv.FormatBool(cfg.Verify),
	}}
}

// IncompleteSpec dropped the Reps field from the encoding — two configs
// differing only in Reps would share one cache key. This is the
// acceptance fixture: removing a field from a canonical encoding makes
// cachekey fail.
//
//simlint:cachekey
func IncompleteSpec(cfg Config) Spec { // want `canonical encoding IncompleteSpec does not name Config field\(s\) Reps`
	return Spec{Kernel: "incomplete", Params: map[string]string{
		"elems":  strconv.Itoa(cfg.Elems),
		"verify": strconv.FormatBool(cfg.Verify),
	}}
}

// UnmarkedSpec has the canonical-encoder shape (exported, *Spec name,
// single struct param, *Spec result) but no directive: a new kernel must
// not be able to ship an unchecked encoding.
func UnmarkedSpec(cfg Config) Spec { // want `UnmarkedSpec looks like a canonical cache-key encoder but has no //simlint:cachekey directive`
	return Spec{Kernel: "unmarked", Params: map[string]string{
		"elems": strconv.Itoa(cfg.Elems),
	}}
}

// MarkedHelper carries the directive on a differently-shaped function;
// completeness is still enforced through the pointer parameter.
//
//simlint:cachekey
func MarkedHelper(cfg *Config, out map[string]string) { // want `canonical encoding MarkedHelper does not name Config field\(s\) Verify`
	out["elems"] = strconv.Itoa(cfg.Elems)
	out["reps"] = strconv.Itoa(cfg.Reps)
}

// MisplacedDirective has nothing checkable.
//
//simlint:cachekey
func MisplacedDirective() Spec { // want `MisplacedDirective carries //simlint:cachekey but has no named-struct parameter`
	return Spec{Kernel: "none"}
}

// DescribeSpec is the allowed near-miss for the shape heuristic: the
// result is not a *Spec type, so a summary/debug helper reading only
// some fields is not mistaken for an encoder.
func DescribeSpec(cfg Config) string {
	return "elems=" + strconv.Itoa(cfg.Elems)
}
