package cachekey_test

import (
	"testing"

	"riscvmem/internal/analyzers/analysis/analysistest"
	"riscvmem/internal/analyzers/cachekey"
)

func TestCacheKey(t *testing.T) {
	analysistest.Run(t, "testdata", cachekey.Analyzer, "enc")
}
