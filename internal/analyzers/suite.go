// Package analyzers assembles the simlint invariant suite: the custom
// static checks that turn this repo's correctness conventions — model
// determinism, cache-key completeness, atomic access discipline, wrapped-
// error comparison, zero-cost fault seams — into machine-checked
// invariants. cmd/simlint is the multichecker binary; each analyzer
// package documents its invariant and ships analysistest fixtures.
package analyzers

import (
	"riscvmem/internal/analyzers/analysis"
	"riscvmem/internal/analyzers/atomicmix"
	"riscvmem/internal/analyzers/cachekey"
	"riscvmem/internal/analyzers/ctxerr"
	"riscvmem/internal/analyzers/determinism"
	"riscvmem/internal/analyzers/faultseam"
)

// Suite returns the full simlint analyzer suite, in stable order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		cachekey.Analyzer,
		ctxerr.Analyzer,
		determinism.Analyzer,
		faultseam.Analyzer,
	}
}
