// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` expectations — the same fixture
// convention as golang.org/x/tools/go/analysis/analysistest, implemented
// on the stdlib-only framework in internal/analyzers/analysis.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/ and are loaded in
// GOPATH mode (GOPATH=testdata, modules off), so fixture packages may
// import each other by bare path ("faultinject") without touching the
// repo module. A line that should be flagged carries a comment:
//
//	x := now()  // want `regexp matching the message`
//
// Multiple expectations on one line each get their own backquoted or
// double-quoted regexp. Every diagnostic must be wanted and every want
// must be matched, so fixtures pin both the positives and the allowed
// near-misses (lines with no want must stay clean).
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"riscvmem/internal/analyzers/analysis"
)

// Run loads the fixture packages (paths relative to testdata/src) and
// checks the analyzer's diagnostics against their want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	RunTags(t, testdata, "", a, pkgs...)
}

// RunTags is Run with build tags applied to the fixture load, so fixtures
// can include files that only exist under a tag (the faultseam analyzer's
// //go:build faultinject fixtures).
func RunTags(t *testing.T, testdata, tags string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatalf("resolving %s: %v", testdata, err)
	}
	cfg := analysis.Config{
		Dir:  abs,
		Tags: tags,
		Env: []string{
			"GOPATH=" + abs,
			"GO111MODULE=off",
			"GOFLAGS=",
		},
	}
	loaded, err := analysis.Load(cfg, pkgs...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", pkgs, err)
	}
	diags, err := analysis.Run(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, loaded)
	for _, d := range diags {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

type wantMap map[posKey][]*want

func (m wantMap) match(key posKey, msg string) bool {
	for _, w := range m[key] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE extracts the quoted regexps of one want comment:
// `// want "re1" `re2`` → [re1 re2].
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, pkgs []*analysis.Package) wantMap {
	t.Helper()
	wants := wantMap{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					collectWantComment(t, pkg.Fset, c, wants)
				}
			}
		}
	}
	return wants
}

func collectWantComment(t *testing.T, fset *token.FileSet, c *ast.Comment, wants wantMap) {
	t.Helper()
	// Only comments of the exact form "// want <patterns>" are
	// expectations — the word "want" inside ordinary prose is not.
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return
	}
	pos := fset.Position(c.Pos())
	key := posKey{pos.Filename, pos.Line}
	for _, quoted := range wantRE.FindAllString(rest, -1) {
		var pattern string
		if strings.HasPrefix(quoted, "`") {
			pattern = strings.Trim(quoted, "`")
		} else {
			var err error
			pattern, err = strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, quoted, err)
			}
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
		}
		wants[key] = append(wants[key], &want{re: re})
	}
	if len(wants[key]) == 0 {
		t.Fatalf("%s: want comment with no quoted regexp: %s", pos, text)
	}
}
