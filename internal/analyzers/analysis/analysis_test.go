package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestAllowDirectives(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //simlint:allow ctxerr
	//simlint:allow determinism,atomicmix -- reason with trailing -- punctuation
	_ = 2
	// an ordinary comment mentioning simlint:allow is not a directive
	_ = 3
}
`
	fset, f := parseOne(t, src)
	idx := buildAllowIndex(fset, []*ast.File{f})

	diag := func(analyzer string, line int) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: "t.go", Line: line}}
	}
	cases := []struct {
		name string
		d    Diagnostic
		want bool
	}{
		{"same line", diag("ctxerr", 4), true},
		{"wrong analyzer same line", diag("determinism", 4), false},
		{"line below directive", diag("determinism", 6), true},
		{"second name in list", diag("atomicmix", 6), true},
		{"reason text not a name", diag("reason", 6), false},
		{"prose is not a directive", diag("ctxerr", 8), false},
		{"directive line itself", diag("determinism", 5), true},
		{"two lines below", diag("determinism", 7), false},
		{"unrelated line", diag("ctxerr", 2), false},
	}
	for _, c := range cases {
		if got := idx.allowed(c.d); got != c.want {
			t.Errorf("%s: allowed(%s@%d) = %v, want %v", c.name, c.d.Analyzer, c.d.Pos.Line, got, c.want)
		}
	}
}

func TestDirectiveHelpers(t *testing.T) {
	src := `// Package doc.
//simlint:deterministic
package p

// F does things.
//
//simlint:cachekey
func F() {}

// G has no directive; the word simlint:cachekey in prose does not count
// because directives must start the comment.
func G() {}
`
	_, f := parseOne(t, src)
	if !HasPackageDirective([]*ast.File{f}, "deterministic") {
		t.Error("package directive not found")
	}
	if HasPackageDirective([]*ast.File{f}, "nonexistent") {
		t.Error("nonexistent package directive reported")
	}
	var fns []*ast.FuncDecl
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			fns = append(fns, fn)
		}
	}
	if !FuncHasDirective(fns[0], "cachekey") {
		t.Error("F's cachekey directive not found")
	}
	if FuncHasDirective(fns[1], "cachekey") {
		t.Error("G reported as carrying the directive (prose mention)")
	}
}
