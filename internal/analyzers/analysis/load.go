package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Config controls a Load.
type Config struct {
	// Dir is the working directory the go command runs in ("" = cwd).
	Dir string
	// Env entries are appended to the current environment (for fixture
	// loads: GOPATH=<testdata>, GO111MODULE=off).
	Env []string
	// Tags is the build-tag list passed as `-tags` (e.g. "faultinject").
	Tags string
}

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Path      string
	Name      string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Errors collects everything that went wrong loading this package:
	// list errors, parse errors, type errors. A package with errors is
	// still returned (with whatever was salvaged) so the caller can
	// print precise failures.
	Errors []string
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matching the patterns.
//
// It shells out to `go list -e -export -deps -json`, which builds export
// data for every dependency through the ordinary build cache; target
// packages (the non-DepOnly ones) are then parsed from source and
// type-checked against that export data via the compiler importer. This
// is the same architecture as go/packages' LoadAllSyntax for the target
// set, with dependencies resolved at the type level only — exactly what
// single-package analyzers need, with zero dependencies beyond the go
// command itself.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	if cfg.Tags != "" {
		args = append(args, "-tags", cfg.Tags)
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), cfg.Env...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}

	index := map[string]*listPackage{}
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		index[lp.ImportPath] = lp
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// One compiler-export-data importer shared across targets: lookup
	// resolves an import path to the export file `go list -export` built.
	lookup := func(path string) (io.ReadCloser, error) {
		lp, ok := index[path]
		if !ok || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(lp.Export)
	}
	base := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, lp := range targets {
		pkg := &Package{
			Path: lp.ImportPath,
			Name: lp.Name,
			Dir:  lp.Dir,
			Fset: fset,
		}
		out = append(out, pkg)
		if lp.Error != nil {
			pkg.Errors = append(pkg.Errors, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			pkg.Errors = append(pkg.Errors, fmt.Sprintf("%s: cgo packages are not analyzable", lp.ImportPath))
			continue
		}
		for _, name := range lp.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(lp.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				pkg.Errors = append(pkg.Errors, err.Error())
				continue
			}
			pkg.Files = append(pkg.Files, f)
			pkg.GoFiles = append(pkg.GoFiles, path)
		}
		if len(pkg.Files) == 0 {
			continue
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{
			Importer: &mapImporter{base: base, m: lp.ImportMap},
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
			Error: func(err error) {
				pkg.Errors = append(pkg.Errors, err.Error())
			},
		}
		// Check always returns a (possibly incomplete) package; errors
		// were already collected through conf.Error.
		pkg.Pkg, _ = conf.Check(lp.ImportPath, fset, pkg.Files, info)
		pkg.TypesInfo = info
	}
	return out, nil
}

// mapImporter applies one package's ImportMap (vendoring indirection)
// before delegating to the shared export-data importer.
type mapImporter struct {
	base types.Importer
	m    map[string]string
}

func (mi *mapImporter) Import(path string) (*types.Package, error) {
	if real, ok := mi.m[path]; ok {
		path = real
	}
	return mi.base.Import(path)
}
