// Package analysis is a self-contained, stdlib-only miniature of
// golang.org/x/tools/go/analysis — just enough framework to write, drive,
// and fixture-test the simlint analyzers without a module dependency the
// build environment may not have.
//
// The shape mirrors the real thing deliberately: an Analyzer is a named
// check with a Run function over a Pass (one type-checked package), and
// diagnostics carry positions. Packages are loaded through the go command
// itself (`go list -export -deps -json`), so type information comes from
// the same compiler export data a real build uses — see Load.
//
// Two directive families are understood repo-wide:
//
//	//simlint:<name>            opt-in marker (e.g. //simlint:deterministic
//	                            on a package, //simlint:cachekey on a func)
//	//simlint:allow <analyzers> suppress findings of the named (comma-
//	                            separated) analyzers on the same or the
//	                            following line; everything after " -- " is
//	                            a human-readable justification
//
// Suppressions are applied by the driver (Run), not by individual
// analyzers, so every check gets them uniformly.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:allow directives. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description `simlint -list` prints.
	Doc string
	// Run executes the check over one package. Report findings through
	// the Pass; the error return is for operational failures only.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed compilation units (build-tag
	// filtered, no test files), with comments.
	Files []*ast.File
	// Pkg and TypesInfo are the go/types view of the package.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path.
	Path string

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// directivePrefix introduces every simlint comment directive.
const directivePrefix = "//simlint:"

// directives yields the raw "name rest" payloads of every simlint
// directive in the comment group (directive comments are invisible to
// ast.CommentGroup.Text, so this walks the raw list).
func directives(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var out []string
	for _, c := range cg.List {
		if rest, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
			out = append(out, strings.TrimSpace(rest))
		}
	}
	return out
}

// HasPackageDirective reports whether any comment in any of the files
// carries //simlint:<name> — the package-level opt-in used by the
// determinism analyzer. Conventionally the directive sits directly above
// the package clause of the package's main file.
func HasPackageDirective(files []*ast.File, name string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, d := range directives(cg) {
				if d == name || strings.HasPrefix(d, name+" ") {
					return true
				}
			}
		}
	}
	return false
}

// FuncHasDirective reports whether the function's doc comment carries
// //simlint:<name>.
func FuncHasDirective(fn *ast.FuncDecl, name string) bool {
	for _, d := range directives(fn.Doc) {
		if d == name || strings.HasPrefix(d, name+" ") {
			return true
		}
	}
	return false
}

// allowIndex maps file → line → the set of analyzer names allowed there,
// built from //simlint:allow directives.
type allowIndex map[string]map[int]map[string]bool

func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix+"allow")
				if !ok {
					continue
				}
				// "ctxerr" or "ctxerr,determinism -- reason why".
				rest = strings.TrimSpace(rest)
				if i := strings.Index(rest, " -- "); i >= 0 {
					rest = rest[:i]
				}
				names := strings.Split(strings.TrimSpace(rest), ",")
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, n := range names {
					if n = strings.TrimSpace(n); n != "" {
						set[n] = true
					}
				}
			}
		}
	}
	return idx
}

// allowed reports whether a diagnostic is suppressed: an allow directive
// for its analyzer on the same line or the line directly above.
func (idx allowIndex) allowed(d Diagnostic) bool {
	lines := idx[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if set := lines[line]; set != nil && set[d.Analyzer] {
			return true
		}
	}
	return false
}
