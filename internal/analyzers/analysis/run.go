package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Run drives every analyzer over every package, applies //simlint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
// Packages that failed to load or type-check make Run fail: analyzers
// must only ever see complete type information.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var loadErrs []string
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", pkg.Path, e))
		}
	}
	if len(loadErrs) > 0 {
		return nil, fmt.Errorf("packages failed to load:\n%s", strings.Join(loadErrs, "\n"))
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := buildAllowIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				Path:      pkg.Path,
				report: func(d Diagnostic) {
					if !allow.allowed(d) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
