// Package cmp is the ctxerr fixture: identity comparisons against
// context sentinels and Err* sentinels, and the errors.Is forms that are
// the fix.
package cmp

import (
	"context"
	"errors"
	"fmt"
)

// ErrOverloaded is a local sentinel with wrapped variants in the wild.
var ErrOverloaded = errors.New("overloaded")

// errInternal is unexported; still a sentinel? No — the analyzer keys on
// the exported Err* convention, and unexported comparisons stay local to
// the package that knows whether wrapping happens.
var errInternal = errors.New("internal")

func Classify(err error) string {
	if err == context.Canceled { // want `err == context\.Canceled compares error identity .*errors\.Is\(err, context\.Canceled\)`
		return "cancelled"
	}
	if err != context.DeadlineExceeded { // want `err != context\.DeadlineExceeded compares error identity`
		return "other"
	}
	return "deadline"
}

func ClassifySwitch(err error) string {
	switch err {
	case nil:
		return "ok"
	case context.Canceled: // want `switch-case context\.Canceled compares error identity`
		return "cancelled"
	case ErrOverloaded: // want `switch-case ErrOverloaded compares error identity`
		return "overloaded"
	}
	return "other"
}

func Sentinel(err error) bool {
	return err == ErrOverloaded // want `err == ErrOverloaded compares error identity`
}

// The fix — and the allowed pattern — is errors.Is.
func ClassifyIs(err error) string {
	switch {
	case errors.Is(err, context.Canceled):
		return "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	}
	return "other"
}

// Nil comparisons are the ordinary error idiom, never flagged.
func Check(err error) error {
	if err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	return nil
}

// Unexported sentinels and local error variables are not flagged.
func Local(err error) bool {
	target := errInternal
	return err == errInternal || err == target
}

// A justified identity comparison suppresses with a reason (the
// runner.joinBatchErrors pattern: bare sentinels are the semantics).
func BareOnly(err error) bool {
	//simlint:allow ctxerr -- only the bare sentinel means "skipped without executing"
	return err == context.Canceled
}
