// Package ctxerr flags identity comparisons (== / != / switch-case)
// against context.Canceled, context.DeadlineExceeded, and exported Err*
// sentinel values.
//
// This codebase wraps errors aggressively — per-job errors carry the
// workload and device ("stream/TRIAD on MangoPi: context canceled"),
// admission errors carry retry hints, batch errors arrive joined — so a
// context or sentinel error almost never reaches a comparison bare. A
// real PR 6 bug: Service.Batch collapsed cancellation tails with
// `err == context.Canceled`, which silently stopped collapsing the moment
// the runner started wrapping per-job errors. errors.Is is the contract;
// identity comparison is the bug waiting for the next wrap.
//
// The rare spot where identity *is* the semantics — joinBatchErrors
// collapses only bare sentinels precisely to keep wrapped, individually
// meaningful errors un-collapsed — documents itself with
// //simlint:allow ctxerr and a reason.
package ctxerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"riscvmem/internal/analyzers/analysis"
)

// Analyzer is the sentinel-comparison check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxerr",
	Doc: "flag ==/!=/switch-case comparisons against context.Canceled, " +
		"context.DeadlineExceeded and Err* sentinels; use errors.Is",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkComparison(pass, n.Pos(), n.X, n.Y, n.Op.String())
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkComparison(pass *analysis.Pass, pos token.Pos, x, y ast.Expr, op string) {
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		sentinel, other := pair[0], pair[1]
		name, ok := sentinelName(pass, sentinel)
		if !ok {
			continue
		}
		// The other side must itself be an error (not, say, a shadowing
		// comparison of two sentinels' addresses in unrelated code).
		if t := pass.TypesInfo.TypeOf(other); t == nil || !isErrorType(t) {
			continue
		}
		pass.Reportf(pos,
			"err %s %s compares error identity and misses wrapped errors; use errors.Is(err, %s)", op, name, name)
		return
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if t := pass.TypesInfo.TypeOf(sw.Tag); t == nil || !isErrorType(t) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := sentinelName(pass, e); ok {
				pass.Reportf(e.Pos(),
					"switch-case %s compares error identity and misses wrapped errors; use errors.Is(err, %s)", name, name)
			}
		}
	}
}

// sentinelName reports whether the expression denotes a sentinel error —
// a context package sentinel or a package-level exported Err* variable of
// type error — and returns its display name.
func sentinelName(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				obj = pass.TypesInfo.Uses[e.Sel]
			}
		}
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	// Package-level only: locals named errFoo are not sentinels.
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !isErrorType(v.Type()) {
		return "", false
	}
	if v.Pkg().Path() == "context" && (v.Name() == "Canceled" || v.Name() == "DeadlineExceeded") {
		return "context." + v.Name(), true
	}
	if strings.HasPrefix(v.Name(), "Err") && len(v.Name()) > 3 {
		if v.Pkg() == pass.Pkg {
			return v.Name(), true
		}
		return v.Pkg().Name() + "." + v.Name(), true
	}
	return "", false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
