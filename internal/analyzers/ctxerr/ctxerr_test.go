package ctxerr_test

import (
	"testing"

	"riscvmem/internal/analyzers/analysis/analysistest"
	"riscvmem/internal/analyzers/ctxerr"
)

func TestCtxErr(t *testing.T) {
	analysistest.Run(t, "testdata", ctxerr.Analyzer, "cmp")
}
