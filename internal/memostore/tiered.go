package memostore

// Tiered composes the memory LRU over the disk store: Get falls through
// memory to disk (promoting disk hits into memory, so a key pays the disk
// read once per process), Put writes through to both. Volatile keys — whose
// Device encoding is process-local — bypass the disk tier entirely in both
// directions; the Disk methods enforce the same guard themselves, so the
// invariant holds even for direct Disk use.
type Tiered struct {
	mem  *Memory
	disk *Disk
}

// NewTiered builds the two-tier store. mem must be non-nil; a nil disk
// yields a memory-only store (what a Runner without a cache directory
// uses).
func NewTiered(mem *Memory, disk *Disk) *Tiered {
	if mem == nil {
		mem = NewMemory(0)
	}
	return &Tiered{mem: mem, disk: disk}
}

// Memory returns the L1 tier.
func (t *Tiered) Memory() *Memory { return t.mem }

// Disk returns the L2 tier; nil for a memory-only store.
func (t *Tiered) Disk() *Disk { return t.disk }

// Get serves from the first tier that has the key.
func (t *Tiered) Get(key Key) (any, Tier, bool) {
	if v, tier, ok := t.mem.Get(key); ok {
		return v, tier, ok
	}
	if t.disk == nil || key.Volatile {
		return nil, TierNone, false
	}
	v, tier, ok := t.disk.Get(key)
	if ok {
		t.mem.Put(key, v)
	}
	return v, tier, ok
}

// Put stores into memory and, for persistable keys, through to disk.
func (t *Tiered) Put(key Key, v any) {
	t.mem.Put(key, v)
	if t.disk != nil {
		t.disk.Put(key, v)
	}
}

// Stats merges the tiers' counters.
func (t *Tiered) Stats() Stats {
	s := t.mem.Stats()
	if t.disk != nil {
		d := t.disk.Stats()
		s.DiskHits, s.DiskMisses = d.DiskHits, d.DiskMisses
		s.DiskCorrupt = d.DiskCorrupt
		s.DiskWrites, s.DiskWriteErrors = d.DiskWrites, d.DiskWriteErrors
	}
	return s
}
