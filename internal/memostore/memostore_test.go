package memostore

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// testCodec round-trips string values through JSON, like the Runner's
// Result codec but cheap enough for tight loops.
func testCodec() Codec {
	return Codec{
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Decode: func(data []byte) (any, error) {
			var s string
			err := json.Unmarshal(data, &s)
			return s, err
		},
	}
}

func testKey(i int) Key {
	return Key{Version: "riscvmem/vTEST", Device: "devA", Workload: fmt.Sprintf("w%04d", i)}
}

func TestMemoryHitMissAndStats(t *testing.T) {
	m := NewMemory(64)
	k := testKey(1)
	if _, tier, ok := m.Get(k); ok || tier != TierNone {
		t.Fatalf("empty store Get = (%v, %v), want miss", tier, ok)
	}
	m.Put(k, "v1")
	v, tier, ok := m.Get(k)
	if !ok || tier != TierMemory || v != "v1" {
		t.Fatalf("Get = (%v, %v, %v), want (v1, memory, true)", v, tier, ok)
	}
	m.Put(k, "v2") // refresh overwrites in place
	if v, _, _ := m.Get(k); v != "v2" {
		t.Fatalf("refreshed Get = %v, want v2", v)
	}
	s := m.Stats()
	if s.MemoryHits != 2 || s.MemoryMisses != 1 || s.MemoryEvictions != 0 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 0 evictions", s)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// TestMemoryLRUEviction pins the recency contract inside one shard: the
// least recently *used* entry goes, not the least recently inserted.
func TestMemoryLRUEviction(t *testing.T) {
	m := NewMemory(1) // one entry per shard
	// Find three distinct keys that land in the same shard so the test
	// exercises one LRU list deterministically.
	var keys []Key
	want := m.shard(testKey(0))
	for i := 0; len(keys) < 3; i++ {
		if k := testKey(i); m.shard(k) == want {
			keys = append(keys, k)
		}
	}
	a, b, c := keys[0], keys[1], keys[2]
	m.Put(a, "a")
	m.Put(b, "b") // evicts a (capacity 1)
	if _, _, ok := m.Get(a); ok {
		t.Fatal("a survived eviction")
	}
	if v, _, ok := m.Get(b); !ok || v != "b" {
		t.Fatal("b missing after eviction of a")
	}
	m.Put(c, "c") // evicts b
	if _, _, ok := m.Get(b); ok {
		t.Fatal("b survived eviction")
	}
	if got := m.Stats().MemoryEvictions; got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
}

// TestMemoryRecencyOrder pins that Get refreshes recency: with capacity 2
// in a shard, touching the older entry makes the other one the victim.
func TestMemoryRecencyOrder(t *testing.T) {
	m := NewMemory(2 * memShards) // two entries per shard
	var keys []Key
	want := m.shard(testKey(0))
	for i := 0; len(keys) < 3; i++ {
		if k := testKey(i); m.shard(k) == want {
			keys = append(keys, k)
		}
	}
	a, b, c := keys[0], keys[1], keys[2]
	m.Put(a, "a")
	m.Put(b, "b")
	m.Get(a)      // a is now most recent
	m.Put(c, "c") // must evict b
	if _, _, ok := m.Get(a); !ok {
		t.Fatal("recently-used a was evicted")
	}
	if _, _, ok := m.Get(b); ok {
		t.Fatal("least-recently-used b survived")
	}
}

// TestMemoryBounded floods the store and checks the capacity bound holds.
func TestMemoryBounded(t *testing.T) {
	const capacity = 128
	m := NewMemory(capacity)
	for i := 0; i < 10*capacity; i++ {
		m.Put(testKey(i), i)
	}
	if n := m.Len(); n > capacity {
		t.Fatalf("Len = %d exceeds capacity %d", n, capacity)
	}
	s := m.Stats()
	if s.MemoryEvictions == 0 {
		t.Fatal("flood caused no evictions")
	}
}

func TestMemoryConcurrent(t *testing.T) {
	m := NewMemory(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := testKey(i % 300)
				m.Put(k, i)
				m.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if n := m.Len(); n > 256 {
		t.Fatalf("Len = %d exceeds capacity", n)
	}
}

func TestTieredPromotion(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	st := NewTiered(NewMemory(64), disk)
	k := testKey(1)
	st.Put(k, "v")

	// A second tiered store over the same directory simulates a restart:
	// cold memory, warm disk.
	disk2, err := OpenDisk(disk.Dir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	st2 := NewTiered(NewMemory(64), disk2)
	v, tier, ok := st2.Get(k)
	if !ok || tier != TierDisk || v != "v" {
		t.Fatalf("restart Get = (%v, %v, %v), want (v, disk, true)", v, tier, ok)
	}
	// The disk hit was promoted: the next Get is a memory hit.
	if _, tier, ok := st2.Get(k); !ok || tier != TierMemory {
		t.Fatalf("post-promotion Get tier = %v, want memory", tier)
	}
	s := st2.Stats()
	if s.DiskHits != 1 || s.MemoryHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit and 1 memory hit", s)
	}
}

// TestTieredVolatileNeverPersisted pins the Volatile guard: process-local
// device identities stay in memory and never reach disk in either
// direction.
func TestTieredVolatileNeverPersisted(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	st := NewTiered(NewMemory(64), disk)
	k := testKey(1)
	k.Volatile = true
	st.Put(k, "v")
	if v, tier, ok := st.Get(k); !ok || tier != TierMemory || v != "v" {
		t.Fatalf("volatile Get = (%v, %v, %v), want memory hit", v, tier, ok)
	}
	if s := disk.Stats(); s.DiskWrites != 0 {
		t.Fatalf("volatile key was persisted: %+v", s)
	}
	n := 0
	if err := disk.Walk(func(EntryInfo) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("found %d on-disk entries for a volatile-only store", n)
	}
	// Direct disk access is equally guarded.
	if _, _, ok := disk.Get(k); ok {
		t.Fatal("disk served a volatile key")
	}
}

func TestKeyHashOrderIndependence(t *testing.T) {
	// Distinct coordinate splits must not collide: the separator keeps
	// (device="ab", workload="c") apart from (device="a", workload="bc").
	k1 := Key{Version: "v", Device: "ab", Workload: "c"}
	k2 := Key{Version: "v", Device: "a", Workload: "bc"}
	if keyHash(k1) == keyHash(k2) {
		t.Fatal("key hash collides across coordinate boundaries")
	}
	if keyHash(k1) != keyHash(k1) {
		t.Fatal("key hash is not deterministic")
	}
}
