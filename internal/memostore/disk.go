package memostore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sync/atomic"

	"riscvmem/internal/faultinject"
)

// Entry-file format constants. entryMagic names the format; entryFormat is
// its schema version — bump it only when the envelope layout itself changes
// (the *model* version lives in the Key and namespaces the directory tree).
const (
	entryMagic  = "riscvmem-memo"
	entryFormat = 1
	entryExt    = ".memo"
	// quarantineDir collects entries that failed validation, preserved for
	// post-mortem instead of deleted; `memo gc` purges it.
	quarantineDir = "quarantine"
	tmpPrefix     = ".tmp-"
)

// Disk is the on-disk content-addressed tier: one atomically-written,
// checksummed file per key under
//
//	<dir>/<escaped version>/<hh>/<sha256>.memo
//
// where hh is the first hex byte of the key hash (a fan-out level keeping
// directories small) and the sha256 covers (version, device, workload). The
// file is a JSON envelope carrying the key coordinates verbatim, the
// payload, and a checksum over both — so a Get validates that the entry is
// intact AND that it really is the requested key before trusting it.
//
// Every fault is a miss, never an error: unreadable, truncated, mislabeled
// or undecodable entries are quarantined (moved aside, counted) and the
// caller re-simulates. Writes go through a temp file + fsync + rename in
// the entry's own directory, so concurrent readers — in this process or
// another sharing the directory — never observe a partial entry.
//
// Safe for concurrent use.
type Disk struct {
	dir   string
	codec Codec

	// Logf, when set, receives one line per quarantine and per failed
	// persist; nil discards them. Set it before first use.
	Logf func(format string, args ...any)

	hits      atomic.Uint64
	misses    atomic.Uint64
	corrupt   atomic.Uint64
	writes    atomic.Uint64
	writeErrs atomic.Uint64
}

// envelope is the on-disk entry schema.
type envelope struct {
	Magic    string          `json:"magic"`
	Format   int             `json:"format"`
	Version  string          `json:"version"`
	Device   string          `json:"device"`
	Workload string          `json:"workload"`
	Sum      string          `json:"sum"`
	Result   json.RawMessage `json:"result"`
}

// sum is the entry checksum: sha256 over the key coordinates and the
// payload, so a bit flip anywhere in the entry — including a swapped or
// edited key field — fails validation.
func (e *envelope) sum() string {
	h := sha256.New()
	for _, part := range []string{e.Version, e.Device, e.Workload} {
		h.Write([]byte(part))
		h.Write([]byte{0x1f})
	}
	h.Write(e.Result)
	return hex.EncodeToString(h.Sum(nil))
}

// validate checks an envelope's integrity; expect, when non-nil, addition-
// ally pins the key coordinates to the requested key.
func (e *envelope) validate(expect *Key) error {
	if e.Magic != entryMagic || e.Format != entryFormat {
		return fmt.Errorf("not a %s/%d entry (magic %q format %d)", entryMagic, entryFormat, e.Magic, e.Format)
	}
	if expect != nil && (e.Version != expect.Version || e.Device != expect.Device || e.Workload != expect.Workload) {
		return errors.New("entry key does not match requested key")
	}
	if len(e.Result) == 0 {
		return errors.New("entry has no payload")
	}
	if e.Sum != e.sum() {
		return errors.New("entry checksum mismatch")
	}
	return nil
}

// OpenDisk opens (creating if needed) a disk tier rooted at dir.
func OpenDisk(dir string, codec Codec) (*Disk, error) {
	if dir == "" {
		return nil, errors.New("memostore: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memostore: %w", err)
	}
	return &Disk{dir: dir, codec: codec}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// keyHash is the content address: sha256 over the canonical key encoding.
func keyHash(key Key) string {
	h := sha256.New()
	for _, part := range []string{key.Version, key.Device, key.Workload} {
		h.Write([]byte(part))
		h.Write([]byte{0x1f})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entryPath maps a key to its file. The version becomes a directory level
// (path-escaped — versions contain '/'), so orphaning a model version is a
// directory removal and `memo ls` can group by version without reading
// entries.
func (d *Disk) entryPath(key Key) string {
	hash := keyHash(key)
	return filepath.Join(d.dir, url.PathEscape(key.Version), hash[:2], hash+entryExt)
}

func (d *Disk) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// Get loads, validates, and decodes the entry for the key. Volatile keys
// are never on disk. Any validation failure quarantines the entry and
// reports a miss.
func (d *Disk) Get(key Key) (any, Tier, bool) {
	if key.Volatile {
		return nil, TierNone, false
	}
	path := d.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		// Not-exist is the ordinary cold miss; any other read error (a
		// permission change, an I/O fault) is likewise served as a miss —
		// the cache must only ever skip work.
		d.misses.Add(1)
		if !errors.Is(err, fs.ErrNotExist) {
			d.logf("memostore: reading %s: %v", path, err)
		}
		return nil, TierNone, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		d.quarantine(path, fmt.Errorf("unparseable entry: %w", err))
		return nil, TierNone, false
	}
	if err := env.validate(&key); err != nil {
		d.quarantine(path, err)
		return nil, TierNone, false
	}
	v, err := d.codec.Decode(env.Result)
	if err != nil {
		d.quarantine(path, fmt.Errorf("undecodable payload: %w", err))
		return nil, TierNone, false
	}
	d.hits.Add(1)
	return v, TierDisk, true
}

// quarantine moves a failed entry aside (same filename under quarantine/,
// last failure wins) and counts it as both a corruption and a miss. The
// move is best-effort: when it fails — say another process already
// quarantined the same entry — the entry is simply left for the next
// reader.
func (d *Disk) quarantine(path string, reason error) {
	d.corrupt.Add(1)
	d.misses.Add(1)
	d.logf("memostore: quarantining %s: %v", path, reason)
	qdir := filepath.Join(d.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	_ = os.Rename(path, filepath.Join(qdir, filepath.Base(path)))
}

// Put persists the value. Failures are counted and logged, never returned:
// the result being persisted already exists in memory and belongs to a
// request that must not fail because a disk was full. The write is
// atomic — temp file in the entry's directory, fsync, rename — so readers
// never see a partial entry and a crash leaves only a temp file behind.
func (d *Disk) Put(key Key, v any) {
	if key.Volatile {
		return
	}
	if err := d.put(key, v); err != nil {
		d.writeErrs.Add(1)
		d.logf("memostore: persisting entry: %v", err)
		return
	}
	d.writes.Add(1)
}

func (d *Disk) put(key Key, v any) error {
	if err := faultinject.Fire(faultinject.MemoPersist); err != nil {
		return err
	}
	payload, err := d.codec.Encode(v)
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	env := envelope{
		Magic: entryMagic, Format: entryFormat,
		Version: key.Version, Device: key.Device, Workload: key.Workload,
		Result: payload,
	}
	env.Sum = env.sum()
	return d.writeEnvelope(env)
}

// writeEnvelope atomically writes one validated envelope to its path;
// shared by Put and Import.
func (d *Disk) writeEnvelope(env envelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	path := d.entryPath(Key{Version: env.Version, Device: env.Device, Workload: env.Workload})
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	// The temp file lives in the destination directory so the final rename
	// never crosses filesystems (rename atomicity) and gc can sweep strays.
	f, err := os.CreateTemp(filepath.Dir(path), tmpPrefix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Stats snapshots the tier's counters.
func (d *Disk) Stats() Stats {
	return Stats{
		DiskHits:        d.hits.Load(),
		DiskMisses:      d.misses.Load(),
		DiskCorrupt:     d.corrupt.Load(),
		DiskWrites:      d.writes.Load(),
		DiskWriteErrors: d.writeErrs.Load(),
	}
}
