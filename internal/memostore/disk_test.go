package memostore

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// entryFile returns the single entry file a one-Put store holds.
func entryFile(t *testing.T, d *Disk) string {
	t.Helper()
	var path string
	n := 0
	if err := d.Walk(func(info EntryInfo) error { path = info.Path; n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("store holds %d entries, want 1", n)
	}
	return path
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(7)
	d.Put(k, "payload")
	v, tier, ok := d.Get(k)
	if !ok || tier != TierDisk || v != "payload" {
		t.Fatalf("Get = (%v, %v, %v), want (payload, disk, true)", v, tier, ok)
	}
	s := d.Stats()
	if s.DiskWrites != 1 || s.DiskHits != 1 || s.DiskCorrupt != 0 || s.DiskWriteErrors != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Distinct keys never alias.
	if _, _, ok := d.Get(testKey(8)); ok {
		t.Fatal("distinct key served a stored value")
	}
	// A different version namespace is a clean miss — the versioning
	// contract's read half.
	stale := k
	stale.Version = "riscvmem/vOLD"
	if _, _, ok := d.Get(stale); ok {
		t.Fatal("version-mismatched key served a stored value")
	}
}

// corruption classes: each must be quarantined and served as a miss, never
// an error, and the original path must be gone afterwards so the next
// lookup is an ordinary cold miss.
func TestDiskCorruptionQuarantined(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a bit inside the payload, past the envelope prefix, so
			// the JSON still parses and only the checksum catches it.
			i := bytes.Index(raw, []byte(`"result"`))
			if i < 0 {
				t.Fatal("no result field found")
			}
			i += len(`"result":"x`)
			raw[i] ^= 0x01
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong-magic", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw = bytes.Replace(raw, []byte(entryMagic), []byte("not-a-memo-at-a"), 1)
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"mislabeled-key", func(t *testing.T, path string) {
			// A validly-checksummed entry for a *different* key copied to
			// this address: the key cross-check must reject it.
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var env envelope
			if err := unmarshalStrict(raw, &env); err != nil {
				t.Fatal(err)
			}
			env.Device = "devB"
			env.Sum = env.sum()
			out, err := marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := OpenDisk(t.TempDir(), testCodec())
			if err != nil {
				t.Fatal(err)
			}
			k := testKey(1)
			d.Put(k, "good")
			path := entryFile(t, d)
			tc.corrupt(t, path)

			if v, tier, ok := d.Get(k); ok {
				t.Fatalf("corrupt entry served: (%v, %v)", v, tier)
			}
			s := d.Stats()
			if s.DiskCorrupt != 1 {
				t.Fatalf("DiskCorrupt = %d, want 1", s.DiskCorrupt)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt entry still at %s", path)
			}
			qpath := filepath.Join(d.Dir(), quarantineDir, filepath.Base(path))
			if _, err := os.Stat(qpath); err != nil {
				t.Fatalf("quarantined copy missing: %v", err)
			}
			// The next lookup is an ordinary miss, and a fresh Put fully
			// restores the entry.
			if _, _, ok := d.Get(k); ok {
				t.Fatal("quarantined entry still served")
			}
			d.Put(k, "good")
			if v, _, ok := d.Get(k); !ok || v != "good" {
				t.Fatal("re-put after quarantine did not restore the entry")
			}
		})
	}
}

// TestDiskUndecodablePayloadQuarantined covers the codec-level failure: a
// structurally intact entry whose payload the current codec rejects.
func TestDiskUndecodablePayloadQuarantined(t *testing.T) {
	codec := testCodec()
	d, err := OpenDisk(t.TempDir(), codec)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	// Hand-write an entry whose payload is valid JSON but not a string —
	// checksummed correctly, so only Decode fails.
	env := envelope{
		Magic: entryMagic, Format: entryFormat,
		Version: k.Version, Device: k.Device, Workload: k.Workload,
		Result: []byte(`{"not":"a string"}`),
	}
	env.Sum = env.sum()
	if err := d.writeEnvelope(env); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d.Get(k); ok {
		t.Fatal("undecodable payload served")
	}
	if s := d.Stats(); s.DiskCorrupt != 1 {
		t.Fatalf("DiskCorrupt = %d, want 1", s.DiskCorrupt)
	}
}

// TestDiskPersistFailureIsSoft pins the write-path contract without the
// faultinject build tag: an Encode failure (the first step of a persist)
// is counted, and the store keeps serving everything else.
func TestDiskPersistFailureIsSoft(t *testing.T) {
	codec := testCodec()
	codec.Encode = func(any) ([]byte, error) { return nil, errors.New("injected encode failure") }
	d, err := OpenDisk(t.TempDir(), codec)
	if err != nil {
		t.Fatal(err)
	}
	d.Put(testKey(1), "v") // must not panic or error
	s := d.Stats()
	if s.DiskWriteErrors != 1 || s.DiskWrites != 0 {
		t.Fatalf("stats = %+v, want 1 write error and 0 writes", s)
	}
}

// TestDiskCrashLeavesOnlyTempFile simulates the observable half of a crash
// mid-write: a stray temp file in the entry directory. It must be invisible
// to Get and Walk, and GC must remove it.
func TestDiskCrashLeavesOnlyTempFile(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	d.Put(k, "v")
	dir := filepath.Dir(entryFile(t, d))
	stray := filepath.Join(dir, tmpPrefix+"123456")
	if err := os.WriteFile(stray, []byte(`{"partial":`), 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := d.Walk(func(EntryInfo) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Walk saw %d entries, want 1 (temp file leaked in)", n)
	}
	gc, err := d.GC("")
	if err != nil {
		t.Fatal(err)
	}
	if gc.TempFiles != 1 {
		t.Fatalf("GC removed %d temp files, want 1", gc.TempFiles)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stray temp file survived GC")
	}
	if v, _, ok := d.Get(k); !ok || v != "v" {
		t.Fatal("real entry damaged by GC")
	}
}

// TestDiskConcurrentReadersAndWriters hammers one store from many
// goroutines; correctness is "no error, no torn value" (run with -race).
func TestDiskConcurrentReadersAndWriters(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := testKey(i % 10)
				d.Put(k, "stable-value")
				if v, _, ok := d.Get(k); ok && v != "stable-value" {
					t.Errorf("torn read: %v", v)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s := d.Stats(); s.DiskCorrupt != 0 || s.DiskWriteErrors != 0 {
		t.Fatalf("concurrent use corrupted the store: %+v", s)
	}
}

func TestOpenDiskErrors(t *testing.T) {
	if _, err := OpenDisk("", testCodec()); err == nil {
		t.Fatal("empty dir accepted")
	}
	// A file where the directory should be.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(f, testCodec()); err == nil {
		t.Fatal("file path accepted as cache dir")
	}
}

// marshal/unmarshalStrict are tiny wrappers keeping the test body readable.
func marshal(env envelope) ([]byte, error) { return json.Marshal(env) }

func unmarshalStrict(raw []byte, env *envelope) error { return json.Unmarshal(raw, env) }
