// Package memostore is the persistent tiered result cache behind the
// Runner's memoization (ROADMAP item 3): a bounded in-memory LRU (the L1
// tier) over an optional on-disk content-addressed store (the L2 tier), so
// deterministic simulation results survive process restarts and can be
// exported, shipped to CI, and shared across a fleet.
//
// The contract mirrors what makes the memo sound in the first place: a
// cached value is a pure function of its Key, and every coordinate of the
// Key is a canonical, order-stable encoding —
//
//   - Version: the cache namespace, a model-version constant plus the module
//     identity (run.CacheVersion). Any change that legitimately alters
//     golden cycle counts bumps it, which cleanly orphans every stale
//     on-disk entry: old entries are simply never looked up again, and
//     `memo gc` reclaims them.
//   - Device: the device's canonical parameter encoding
//     (machine.Spec.IdentityString).
//   - Workload: the workload's self-declared CacheKey (the canonical
//     WorkloadSpec encoding for the built-in kernels).
//
// Tiers are fail-soft by design. The disk tier treats every fault as a
// miss, never an error: corrupt, truncated, or version-mismatched entries
// are quarantined and re-simulated; a failed persist is counted and logged
// but never fails the request that produced the result. Writes are atomic
// (temp file + fsync + rename in the same directory), so concurrent
// readers — including other processes sharing the cache directory — never
// observe a partial entry, and a crash mid-write leaves only a temp file
// that `memo gc` removes.
package memostore

// Key identifies one memoized result. All three string coordinates must be
// canonical and stable across processes (see the package comment); two keys
// are the same entry exactly when the struct values are equal.
type Key struct {
	// Version namespaces the entry by model version + module identity.
	Version string
	// Device is the canonical device-parameter encoding.
	Device string
	// Workload is the workload's canonical cache key.
	Workload string
	// Volatile marks a key whose Device encoding is only meaningful inside
	// this process (a device built with a custom prefetcher factory compares
	// by code pointer). Volatile entries live in the memory tier only; the
	// disk tier never stores or serves them.
	Volatile bool
}

// Tier says which tier served a Get.
type Tier int

const (
	// TierNone is the zero Tier: the value was not in the store.
	TierNone Tier = iota
	// TierMemory is the in-memory LRU (L1).
	TierMemory
	// TierDisk is the on-disk content-addressed store (L2).
	TierDisk
)

// String names the tier as it appears in metrics labels.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return "none"
	}
}

// Stats are the per-tier cache counters. All fields are cumulative; Sub
// yields the delta between two snapshots (the service reports per-request
// deltas this way). The JSON encoding is the wire form CacheStats carries.
type Stats struct {
	// MemoryHits / MemoryMisses count L1 lookups.
	MemoryHits   uint64 `json:"memory_hits"`
	MemoryMisses uint64 `json:"memory_misses"`
	// MemoryEvictions counts entries the bounded LRU pushed out.
	MemoryEvictions uint64 `json:"memory_evictions"`
	// DiskHits / DiskMisses count L2 lookups (a lookup that found a corrupt
	// entry counts as both a miss and a corruption).
	DiskHits   uint64 `json:"disk_hits"`
	DiskMisses uint64 `json:"disk_misses"`
	// DiskCorrupt counts entries quarantined as unreadable: truncated,
	// checksum-mismatched, mislabeled, or undecodable.
	DiskCorrupt uint64 `json:"disk_corrupt"`
	// DiskWrites counts entries persisted; DiskWriteErrors counts persists
	// that failed (the request that produced the result is unaffected).
	DiskWrites      uint64 `json:"disk_writes"`
	DiskWriteErrors uint64 `json:"disk_write_errors"`
}

// Sub returns the counter deltas s − base (tier stats at two points in
// time).
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		MemoryHits:      s.MemoryHits - base.MemoryHits,
		MemoryMisses:    s.MemoryMisses - base.MemoryMisses,
		MemoryEvictions: s.MemoryEvictions - base.MemoryEvictions,
		DiskHits:        s.DiskHits - base.DiskHits,
		DiskMisses:      s.DiskMisses - base.DiskMisses,
		DiskCorrupt:     s.DiskCorrupt - base.DiskCorrupt,
		DiskWrites:      s.DiskWrites - base.DiskWrites,
		DiskWriteErrors: s.DiskWriteErrors - base.DiskWriteErrors,
	}
}

// Add returns the counter sums s + other — the aggregation the cluster
// coordinator uses to fold per-worker tier deltas into one response.
func (s Stats) Add(other Stats) Stats {
	return Stats{
		MemoryHits:      s.MemoryHits + other.MemoryHits,
		MemoryMisses:    s.MemoryMisses + other.MemoryMisses,
		MemoryEvictions: s.MemoryEvictions + other.MemoryEvictions,
		DiskHits:        s.DiskHits + other.DiskHits,
		DiskMisses:      s.DiskMisses + other.DiskMisses,
		DiskCorrupt:     s.DiskCorrupt + other.DiskCorrupt,
		DiskWrites:      s.DiskWrites + other.DiskWrites,
		DiskWriteErrors: s.DiskWriteErrors + other.DiskWriteErrors,
	}
}

// Store is the tiered cache surface the Runner talks to. Implementations
// are safe for concurrent use, and Get/Put never fail: a value that cannot
// be served is a miss, a value that cannot be stored is dropped (and
// counted) — the cache only ever skips work, it never adds failure modes.
type Store interface {
	// Get returns the stored value for the key and the tier that served it.
	Get(key Key) (v any, tier Tier, ok bool)
	// Put stores the value under the key in every tier that accepts it.
	Put(key Key, v any)
	// Stats snapshots the per-tier counters.
	Stats() Stats
}

// Codec converts between the in-memory value the caller caches and the
// canonical byte payload the disk tier persists. Encode must be
// deterministic enough that Decode(Encode(v)) is semantically identical to
// v; the Runner's codec round-trips run.Result through JSON, which
// preserves every field bit-for-bit (Go renders float64 in shortest
// round-trip form).
type Codec struct {
	Encode func(v any) ([]byte, error)
	Decode func(data []byte) (any, error)
}
