package memostore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"strings"
)

// Snapshot stream format: a header line followed by one entry envelope per
// line. The envelopes are the on-disk entry format verbatim — checksums
// included — so import re-validates every entry end to end and a snapshot
// is portable across machines and processes.
const (
	snapshotMagic  = "riscvmem-memo-snapshot"
	snapshotFormat = 1
	// maxSnapshotLine bounds one snapshot entry; results are a few KB, so
	// 4 MiB is generous headroom.
	maxSnapshotLine = 4 << 20
)

type snapshotHeader struct {
	Magic  string `json:"magic"`
	Format int    `json:"format"`
}

// EntryInfo describes one on-disk entry during Walk. Err is non-nil when
// the entry failed validation (it is still reported, so `memo ls` can show
// damage without mutating the store).
type EntryInfo struct {
	Key  Key
	Path string
	Size int64
	Err  error
}

// Walk visits every entry file under the store root in lexical path order,
// validating each (read-only: a corrupt entry is reported via Err, not
// quarantined). The quarantine directory and in-progress temp files are
// skipped. Returning a non-nil error from fn stops the walk.
func (d *Disk) Walk(fn func(EntryInfo) error) error {
	return filepath.WalkDir(d.dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() {
			if path != d.dir && de.Name() == quarantineDir {
				return filepath.SkipDir
			}
			return nil
		}
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, entryExt) {
			return nil
		}
		info := EntryInfo{Path: path}
		if fi, err := de.Info(); err == nil {
			info.Size = fi.Size()
		}
		env, err := readEntry(path)
		if err != nil {
			info.Err = err
			return fn(info)
		}
		info.Key = Key{Version: env.Version, Device: env.Device, Workload: env.Workload}
		if want := keyHash(info.Key) + entryExt; name != want {
			// The envelope is internally consistent but sits at the wrong
			// address — a hand-copied or renamed file. Get would never find
			// it, so surface it as damage.
			info.Err = fmt.Errorf("entry filename does not match its key hash (want %s)", want)
		}
		return fn(info)
	})
}

// readEntry loads and validates one entry file (checksum included).
func readEntry(path string) (*envelope, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("unparseable entry: %w", err)
	}
	if err := env.validate(nil); err != nil {
		return nil, err
	}
	return &env, nil
}

// ExportStats reports what Export wrote.
type ExportStats struct {
	Entries int // valid entries written to the snapshot
	Skipped int // invalid entries left out
}

// Export streams every valid entry to w as a snapshot (header line plus one
// envelope per line). Invalid entries are skipped and counted, never
// exported — a snapshot is always fully importable.
func (d *Disk) Export(w io.Writer) (ExportStats, error) {
	var stats ExportStats
	enc := json.NewEncoder(w) // Encode appends the newline that delimits lines
	if err := enc.Encode(snapshotHeader{Magic: snapshotMagic, Format: snapshotFormat}); err != nil {
		return stats, err
	}
	err := d.Walk(func(info EntryInfo) error {
		if info.Err != nil {
			stats.Skipped++
			return nil
		}
		env, err := readEntry(info.Path)
		if err != nil {
			// Validated a moment ago but gone or damaged now (concurrent
			// writer, racing gc): skip it, same as any invalid entry.
			stats.Skipped++
			return nil
		}
		if err := enc.Encode(env); err != nil {
			return err
		}
		stats.Entries++
		return nil
	})
	return stats, err
}

// ImportStats reports what Import did.
type ImportStats struct {
	Added    int // entries new to this store
	Replaced int // entries that already existed (overwritten; same content for a same-version key)
	Invalid  int // snapshot lines that failed validation, skipped
}

// Import reads a snapshot stream and installs every valid entry through the
// same atomic write path Put uses. Entries land under the version recorded
// in the snapshot — importing an old snapshot into a newer model simply
// files the stale entries where Get never looks and `memo gc` reclaims
// them. Invalid lines are skipped and counted; only a malformed header or
// an I/O failure aborts.
func (d *Disk) Import(r io.Reader) (ImportStats, error) {
	var stats ImportStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxSnapshotLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return stats, err
		}
		return stats, fmt.Errorf("memostore: empty snapshot")
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Magic != snapshotMagic || hdr.Format != snapshotFormat {
		return stats, fmt.Errorf("memostore: not a %s/%d snapshot", snapshotMagic, snapshotFormat)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(line, &env); err != nil {
			stats.Invalid++
			continue
		}
		if err := env.validate(nil); err != nil {
			stats.Invalid++
			continue
		}
		path := d.entryPath(Key{Version: env.Version, Device: env.Device, Workload: env.Workload})
		_, statErr := os.Stat(path)
		if err := d.writeEnvelope(env); err != nil {
			return stats, err
		}
		if statErr == nil {
			stats.Replaced++
		} else {
			stats.Added++
		}
	}
	return stats, sc.Err()
}

// GCStats reports what GC removed.
type GCStats struct {
	StaleEntries  int // entries removed from orphaned version namespaces
	StaleVersions int // version directories removed wholesale
	TempFiles     int // abandoned in-progress temp files
	Quarantined   int // quarantined entries purged
}

// GC reclaims dead weight from the store directory: quarantined entries,
// temp files a crash left behind, and — when keepVersion is non-empty —
// every entry belonging to a different version namespace (the cache-
// versioning contract's cleanup half: a version bump orphans old entries,
// GC deletes them). An empty keepVersion keeps all versions.
func (d *Disk) GC(keepVersion string) (GCStats, error) {
	var stats GCStats
	tops, err := os.ReadDir(d.dir)
	if err != nil {
		return stats, err
	}
	for _, top := range tops {
		path := filepath.Join(d.dir, top.Name())
		switch {
		case !top.IsDir():
			if strings.HasPrefix(top.Name(), tmpPrefix) {
				if os.Remove(path) == nil {
					stats.TempFiles++
				}
			}
		case top.Name() == quarantineDir:
			n, err := removeTree(path)
			stats.Quarantined += n
			if err != nil {
				return stats, err
			}
		default:
			version, uerr := url.PathUnescape(top.Name())
			stale := keepVersion != "" && (uerr != nil || version != keepVersion)
			n, err := sweepVersionDir(path, stale)
			if stale {
				stats.StaleEntries += n
				stats.StaleVersions++
			} else {
				stats.TempFiles += n
			}
			if err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}

// sweepVersionDir removes either the whole version tree (stale: counting
// its entries) or just its abandoned temp files (live: counting those).
func sweepVersionDir(dir string, stale bool) (int, error) {
	n := 0
	err := filepath.WalkDir(dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		switch {
		case stale && strings.HasSuffix(de.Name(), entryExt):
			n++
		case !stale && strings.HasPrefix(de.Name(), tmpPrefix):
			if os.Remove(path) == nil {
				n++
			}
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	if stale {
		err = os.RemoveAll(dir)
	}
	return n, err
}

// removeTree deletes a directory tree, returning how many files it held.
func removeTree(dir string) (int, error) {
	n := 0
	err := filepath.WalkDir(dir, func(path string, de fs.DirEntry, err error) error {
		if err == nil && !de.IsDir() {
			n++
		}
		return err
	})
	if err != nil && !os.IsNotExist(err) {
		return n, err
	}
	return n, os.RemoveAll(dir)
}
