package memostore

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	src, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		src.Put(testKey(i), fmt.Sprintf("value-%d", i))
	}
	var snap bytes.Buffer
	es, err := src.Export(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if es.Entries != n || es.Skipped != 0 {
		t.Fatalf("export stats = %+v, want %d entries", es, n)
	}

	dst, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	dst.Put(testKey(0), "value-0") // pre-existing: must count as replaced
	is, err := dst.Import(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if is.Added != n-1 || is.Replaced != 1 || is.Invalid != 0 {
		t.Fatalf("import stats = %+v, want %d added / 1 replaced", is, n-1)
	}
	for i := 0; i < n; i++ {
		v, tier, ok := dst.Get(testKey(i))
		if !ok || tier != TierDisk || v != fmt.Sprintf("value-%d", i) {
			t.Fatalf("imported entry %d: (%v, %v, %v)", i, v, tier, ok)
		}
	}
}

// TestImportRejectsDamage pins that import validates end to end: corrupt
// snapshot lines are skipped and counted, valid ones still land.
func TestImportRejectsDamage(t *testing.T) {
	src, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	src.Put(testKey(1), "one")
	src.Put(testKey(2), "two")
	var snap bytes.Buffer
	if _, err := src.Export(&snap); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first entry line (line 2): flip a payload character.
	lines := strings.SplitAfter(snap.String(), "\n")
	lines[1] = strings.Replace(lines[1], `"result":"`, `"result":"X`, 1)
	damaged := strings.Join(lines, "")

	dst, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	is, err := dst.Import(strings.NewReader(damaged))
	if err != nil {
		t.Fatal(err)
	}
	if is.Added != 1 || is.Invalid != 1 {
		t.Fatalf("import stats = %+v, want 1 added / 1 invalid", is)
	}
}

func TestImportRejectsBadHeader(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range []string{"", "not json\n", `{"magic":"something-else","format":1}` + "\n"} {
		if _, err := d.Import(strings.NewReader(snap)); err == nil {
			t.Errorf("snapshot %q accepted", snap)
		}
	}
}

// TestExportSkipsCorruptEntries: a damaged entry must not poison a
// snapshot.
func TestExportSkipsCorruptEntries(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	d.Put(testKey(1), "good")
	d.Put(testKey(2), "doomed")
	// Truncate one entry in place.
	var victim string
	if err := d.Walk(func(info EntryInfo) error {
		if info.Key.Workload == testKey(2).Workload {
			victim = info.Path
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	es, err := d.Export(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if es.Entries != 1 || es.Skipped != 1 {
		t.Fatalf("export stats = %+v, want 1 entry / 1 skipped", es)
	}
}

func TestWalkReportsDamageWithoutMutating(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	d.Put(testKey(1), "v")
	path := entryFile(t, d)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	if err := d.Walk(func(info EntryInfo) error {
		if info.Err != nil {
			sawErr = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawErr {
		t.Fatal("Walk did not report the damaged entry")
	}
	// Walk is read-only: the file must still be in place (not quarantined).
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Walk moved the damaged entry: %v", err)
	}
}

// TestGCRemovesStaleVersions is the versioning contract's cleanup half:
// entries under any version namespace other than the kept one are removed
// wholesale, the kept namespace is untouched.
func TestGCRemovesStaleVersions(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), testCodec())
	if err != nil {
		t.Fatal(err)
	}
	current := testKey(1) // version "riscvmem/vTEST"
	stale := testKey(2)
	stale.Version = "riscvmem/vOLD"
	d.Put(current, "keep")
	d.Put(stale, "drop")
	// One quarantined entry too.
	d.Put(testKey(3), "doomed")
	var doomed string
	d.Walk(func(info EntryInfo) error {
		if info.Key.Workload == testKey(3).Workload {
			doomed = info.Path
		}
		return nil
	})
	raw, _ := os.ReadFile(doomed)
	os.WriteFile(doomed, raw[:5], 0o644)
	d.Get(testKey(3)) // trigger quarantine

	gc, err := d.GC(current.Version)
	if err != nil {
		t.Fatal(err)
	}
	if gc.StaleVersions != 1 || gc.StaleEntries != 1 || gc.Quarantined != 1 {
		t.Fatalf("gc stats = %+v, want 1 stale version / 1 stale entry / 1 quarantined", gc)
	}
	if v, _, ok := d.Get(current); !ok || v != "keep" {
		t.Fatal("GC damaged the kept version")
	}
	if _, _, ok := d.Get(stale); ok {
		t.Fatal("stale-version entry survived GC")
	}
}
