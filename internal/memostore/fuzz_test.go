package memostore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fuzzEnvelope builds a fully valid on-disk entry for key k so the corpus
// contains at least one accepted input; the fuzzer then mutates from there.
func fuzzEnvelope(k Key) []byte {
	env := envelope{
		Magic:    entryMagic,
		Format:   entryFormat,
		Version:  k.Version,
		Device:   k.Device,
		Workload: k.Workload,
		Result:   json.RawMessage(`"payload"`),
	}
	env.Sum = env.sum()
	b, err := json.Marshal(env)
	if err != nil {
		panic(err)
	}
	return b
}

// FuzzDiskEntryDecode feeds arbitrary bytes to the disk tier's entry
// decoder by planting them at a key's content address and reading the key
// back. Whatever the bytes, Get must not panic and must not error out of
// the cache contract: either the entry validates end to end (a disk hit),
// or it is quarantined — moved out of the live tree so the next lookup is
// an ordinary cold miss.
func FuzzDiskEntryDecode(f *testing.F) {
	key := testKey(1)
	valid := fuzzEnvelope(key)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not json"))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic":"riscvmem-memo","format":1}`))
	// Right shape, wrong checksum.
	f.Add([]byte(`{"magic":"riscvmem-memo","format":1,"version":"riscvmem/vTEST","device":"devA","workload":"w0001","sum":"00","result":"payload"}`))
	// Valid envelope for a different key planted at this key's address.
	f.Add(fuzzEnvelope(testKey(2)))
	f.Fuzz(func(t *testing.T, raw []byte) {
		d, err := OpenDisk(t.TempDir(), testCodec())
		if err != nil {
			t.Fatal(err)
		}
		path := d.entryPath(key)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		v, tier, ok := d.Get(key)
		stats := d.Stats()
		if ok {
			if tier != TierDisk {
				t.Fatalf("hit with tier %v, want %v", tier, TierDisk)
			}
			if _, isString := v.(string); !isString {
				t.Fatalf("codec returned %T through a validated entry", v)
			}
			if stats.DiskHits != 1 || stats.DiskCorrupt != 0 {
				t.Fatalf("hit stats = %+v", stats)
			}
			return
		}
		// Every miss on an existing file is a quarantine: the planted entry
		// must be gone so the next lookup is a clean cold miss, and the
		// bytes must be preserved under quarantine/ for post-mortem.
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("rejected entry still present at %s (stat err %v)", path, err)
		}
		if stats.DiskCorrupt != 1 || stats.DiskMisses != 1 {
			t.Fatalf("miss stats = %+v", stats)
		}
		qpath := filepath.Join(d.dir, quarantineDir, filepath.Base(path))
		if _, err := os.Stat(qpath); err != nil {
			t.Fatalf("quarantined bytes missing: %v", err)
		}
		if _, _, ok := d.Get(key); ok {
			t.Fatal("key hit after its entry was quarantined")
		}
	})
}
