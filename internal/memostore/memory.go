package memostore

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// DefaultMemoryEntries is the memory tier's default capacity. Entries are a
// few hundred bytes (a Result plus its key strings), so the default bounds
// the tier to a few tens of MB while still holding every cell of any
// realistic sweep.
const DefaultMemoryEntries = 65536

// memShards is the memory tier's shard count; a power of two. Sharding
// keeps large parallel batches of distinct cells from serializing on one
// mutex, mirroring the Runner's in-flight map.
const memShards = 16

// Memory is the bounded in-memory LRU tier. Safe for concurrent use.
type Memory struct {
	seed   maphash.Seed
	shards [memShards]memShard

	hits   atomic.Uint64
	misses atomic.Uint64
	evicts atomic.Uint64
}

// memShard is one LRU segment: a map into an intrusive doubly-linked list
// ordered most- to least-recently used. Each shard holds cap/memShards
// entries, so eviction is approximate LRU across the whole tier — exact
// within a shard, and a key always lands in the same shard.
type memShard struct {
	mu         sync.Mutex
	m          map[Key]*memEntry
	head, tail *memEntry // head = most recently used
	capacity   int
}

type memEntry struct {
	key        Key
	val        any
	prev, next *memEntry
}

// NewMemory builds a memory tier bounded to at most `entries` values
// (entries <= 0 selects DefaultMemoryEntries).
func NewMemory(entries int) *Memory {
	if entries <= 0 {
		entries = DefaultMemoryEntries
	}
	perShard := (entries + memShards - 1) / memShards
	if perShard < 1 {
		perShard = 1
	}
	m := &Memory{seed: maphash.MakeSeed()}
	for i := range m.shards {
		m.shards[i].m = make(map[Key]*memEntry)
		m.shards[i].capacity = perShard
	}
	return m
}

// shard picks the segment for a key. Both identity coordinates feed the
// hash so neither many-devices×few-workloads nor the converse collapses
// onto one shard.
func (m *Memory) shard(key Key) *memShard {
	h := maphash.String(m.seed, key.Device) ^ maphash.String(m.seed, key.Workload)
	return &m.shards[h&(memShards-1)]
}

// Get returns the cached value and refreshes its recency.
func (m *Memory) Get(key Key) (any, Tier, bool) {
	sh := m.shard(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		m.misses.Add(1)
		return nil, TierNone, false
	}
	sh.moveToFront(e)
	v := e.val
	sh.mu.Unlock()
	m.hits.Add(1)
	return v, TierMemory, true
}

// Put inserts (or refreshes) the value, evicting the shard's least recently
// used entry when the shard is full.
func (m *Memory) Put(key Key, v any) {
	sh := m.shard(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		e.val = v
		sh.moveToFront(e)
		sh.mu.Unlock()
		return
	}
	e := &memEntry{key: key, val: v}
	sh.m[key] = e
	sh.pushFront(e)
	var evicted bool
	if len(sh.m) > sh.capacity {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.m, victim.key)
		evicted = true
	}
	sh.mu.Unlock()
	if evicted {
		m.evicts.Add(1)
	}
}

// Len reports the entries currently held across all shards.
func (m *Memory) Len() int {
	n := 0
	for i := range m.shards {
		m.shards[i].mu.Lock()
		n += len(m.shards[i].m)
		m.shards[i].mu.Unlock()
	}
	return n
}

// Stats snapshots the tier's counters.
func (m *Memory) Stats() Stats {
	return Stats{
		MemoryHits:      m.hits.Load(),
		MemoryMisses:    m.misses.Load(),
		MemoryEvictions: m.evicts.Load(),
	}
}

func (sh *memShard) pushFront(e *memEntry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *memShard) unlink(e *memEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *memShard) moveToFront(e *memEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
