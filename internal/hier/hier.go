// Package hier composes the cache, TLB, prefetch and DRAM models into a full
// per-core memory hierarchy with shared outer levels.
//
// The hierarchy is the timing heart of the simulator. Every kernel load or
// store resolves here into a cycle count, via two entry points split so the
// discrete-event engine (internal/sim) can keep private-state operations
// lock-free and serialize only the operations that touch shared state:
//
//   - AccessL1: the fused private path — TLB lookup (uTLB → L2 TLB → page
//     walk) plus a single L1 tag walk that detects a hit and applies its
//     recency/dirty update, or counts the miss and installs the line, in
//     one pass.
//   - MissRest: everything past a private L1 miss — in-flight prefetch
//     matching, shared L2/L3 lookups, DRAM queueing, write-back traffic and
//     prefetch training/issue. Calls must be globally ordered by time across
//     cores; the sim engine guarantees that.
//
// Access combines both for single-call use; the split legacy entry points
// (Translate, L1Hit, TouchL1, MissPath) remain for probes and tests.
//
// Inclusive caches, write-back + write-allocate everywhere, posted (non-
// blocking) write-backs, and demand fills that lazily install prefetched
// lines match the first-order behaviour of the paper's devices.
package hier

import (
	"fmt"

	"riscvmem/internal/cache"
	"riscvmem/internal/dram"
	"riscvmem/internal/prefetch"
	"riscvmem/internal/tlb"
)

// Level describes one cache level beyond L1.
type Level struct {
	Cache     cache.Config
	HitCycles float64 // access latency when this level serves the request
	Shared    bool    // one instance for the whole machine vs per core
}

// Config assembles a device's memory system.
type Config struct {
	Cores    int
	LineSize int64

	L1          cache.Config
	L1HitCycles float64 // per-access cost of an L1 hit (pipelined throughput)

	L2 *Level // optional
	L3 *Level // optional

	UTLB        tlb.Config
	JTLB        *tlb.Config // optional second-level TLB
	JTLBPenalty float64     // added cycles on uTLB miss / JTLB hit
	WalkLevels  int         // page-table depth (3 for Sv39)
	WalkCycles  float64     // per-level cost of a page walk

	DRAM dram.Config

	// MissOverlap scales the exposed latency of the shared-path portion of a
	// miss; 1.0 models a stalling in-order core, smaller values model the
	// miss-level parallelism of out-of-order cores.
	MissOverlap float64

	// NewPrefetcher builds one data prefetcher per core; nil disables
	// prefetching (unless Prefetch is set). When both are given,
	// NewPrefetcher wins — it is the escape hatch for custom prefetcher
	// implementations.
	NewPrefetcher func() prefetch.Prefetcher

	// Prefetch declaratively configures one stride prefetcher per core.
	// Unlike NewPrefetcher it is plain data: device sweeps can copy and
	// mutate it (distance, ramp), and machine.Spec.Identity compares it by
	// value rather than by factory code pointer.
	Prefetch *prefetch.StrideConfig

	// MaxInflight caps concurrent outstanding fills per core (the MSHR
	// count). It bounds single-core memory-level parallelism: effective
	// streaming bandwidth ≈ MaxInflight × line / latency. 0 defaults to 8.
	MaxInflight int
}

// Validate checks the composition.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("hier: cores must be positive")
	}
	if c.MissOverlap <= 0 || c.MissOverlap > 1 {
		return fmt.Errorf("hier: miss overlap %v outside (0,1]", c.MissOverlap)
	}
	if c.LineSize < 4 {
		// The simulator packs valid/dirty flags into the low bits of
		// line-aligned addresses; real lines are far larger anyway.
		return fmt.Errorf("hier: line size %d below minimum 4", c.LineSize)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if c.L1.LineSize != c.LineSize {
		return fmt.Errorf("hier: L1 line size %d != hierarchy line size %d", c.L1.LineSize, c.LineSize)
	}
	for _, lv := range []*Level{c.L2, c.L3} {
		if lv == nil {
			continue
		}
		if err := lv.Cache.Validate(); err != nil {
			return err
		}
		if lv.Cache.LineSize != c.LineSize {
			return fmt.Errorf("hier: %s line size mismatch", lv.Cache.Name)
		}
	}
	if c.L3 != nil && c.L2 == nil {
		return fmt.Errorf("hier: L3 configured without L2")
	}
	if err := c.UTLB.Validate(); err != nil {
		return err
	}
	if c.JTLB != nil {
		if err := c.JTLB.Validate(); err != nil {
			return err
		}
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.DRAM.LineBytes != c.LineSize {
		return fmt.Errorf("hier: DRAM line bytes %d != line size %d", c.DRAM.LineBytes, c.LineSize)
	}
	return nil
}

// fill is one outstanding (MSHR-tracked) line fill. paddr caches the
// scattered physical line address (a pure function of line) so retirement
// does not recompute it.
type fill struct {
	line  uint64
	paddr uint64
	ready float64
}

// physMemoEntries sizes the per-core direct-mapped VPN→PPN memo; a power of
// two. The memo caches the splitmix64 page scatter (see phys), which is a
// pure function of the VPN — memoization is exact, never invalidated. It is
// deliberately small: page-grain reuse means a handful of hot pages cover a
// kernel's inner loops, and a compact table stays resident in the host L1.
const physMemoEntries = 64

type physEntry struct {
	key uint64 // vpn + 1; 0 means empty
	ppn uint64 // scattered physical page address (offset bits zero)
}

type coreState struct {
	l1     *cache.Cache
	utlb   *tlb.TLB
	jtlb   *tlb.TLB // nil when absent
	walker tlb.Walker
	pref   prefetch.Prefetcher // nil when absent
	// stridePref is pref devirtualized when it is the stock Stride model
	// (every preset): the per-miss Observe call is then direct.
	stridePref *prefetch.Stride
	// inflight is the MSHR file: outstanding prefetch fills in issue order,
	// held in a small power-of-two ring (bounded by MaxInflight) so the
	// common head operations — matching the oldest fill, retiring ready
	// fills — are O(1) with no compaction. Insertion order keeps retirement
	// deterministic.
	inflight []fill
	infHead  int
	infLen   int
	buf      []uint64 // scratch for prefetch candidates
	// physMemo is per-core (not per-hierarchy) so the access hot path stays
	// free of cross-core sharing; each core's goroutine touches only its own
	// table.
	physMemo [physMemoEntries]physEntry
}

// infAt returns the k-th oldest in-flight fill (0 = head).
func (st *coreState) infAt(k int) *fill {
	return &st.inflight[(st.infHead+k)&(len(st.inflight)-1)]
}

// infPush appends a fill at the tail. The ring is sized to MaxInflight, and
// callers never exceed it.
func (st *coreState) infPush(f fill) {
	*st.infAt(st.infLen) = f
	st.infLen++
}

// infRemove deletes the k-th oldest fill, preserving the order of the rest.
func (st *coreState) infRemove(k int) {
	if k == 0 {
		st.infHead = (st.infHead + 1) & (len(st.inflight) - 1)
		st.infLen--
		return
	}
	for j := k; j < st.infLen-1; j++ {
		*st.infAt(j) = *st.infAt(j + 1)
	}
	st.infLen--
}

// physFor is the memoized phys: one table probe replaces the three-multiply
// mixer for every hot page.
func (st *coreState) physFor(addr uint64) uint64 {
	vpn := addr >> 12
	e := &st.physMemo[vpn&(physMemoEntries-1)]
	if e.key != vpn+1 {
		e.key, e.ppn = vpn+1, physPage(vpn)
	}
	return e.ppn | addr&4095
}

// Hierarchy is the runtime state for one machine.
type Hierarchy struct {
	cfg         Config
	lineMask    uint64 // LineSize-1; line rounding is addr &^ lineMask
	maxInflight int    // resolved MSHR count (cfg.MaxInflight, default 8)
	// monoFills: on a single-channel device with no L2/L3, every fill is a
	// same-size DRAM request through one FIFO queue, so completion times
	// are monotonic in issue order — if the oldest in-flight fill is not
	// ready, none are.
	monoFills bool
	dramM     *dram.Model
	l2        []*cache.Cache // len 1 when shared, else len Cores
	l3        []*cache.Cache
	per       []coreState

	// PrefetchFills counts lines actually fetched by prefetchers (after
	// residency filtering); used by the ablation benchmarks.
	PrefetchFills uint64
}

// New builds a hierarchy.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, lineMask: uint64(cfg.LineSize - 1), dramM: dram.MustNew(cfg.DRAM)}
	h.maxInflight = cfg.MaxInflight
	if h.maxInflight <= 0 {
		h.maxInflight = 8
	}
	h.monoFills = cfg.DRAM.Channels == 1 && cfg.L2 == nil
	ringCap := 1
	for ringCap < h.maxInflight {
		ringCap <<= 1
	}
	mkLevel := func(lv *Level) []*cache.Cache {
		if lv == nil {
			return nil
		}
		n := cfg.Cores
		if lv.Shared {
			n = 1
		}
		cs := make([]*cache.Cache, n)
		for i := range cs {
			c := lv.Cache
			c.Seed += uint64(i) // decorrelate random replacement across cores
			cs[i] = cache.MustNew(c)
		}
		return cs
	}
	h.l2 = mkLevel(cfg.L2)
	h.l3 = mkLevel(cfg.L3)
	h.per = make([]coreState, cfg.Cores)
	for i := range h.per {
		l1 := cfg.L1
		l1.Seed += uint64(i)
		st := coreState{
			l1:       cache.MustNew(l1),
			utlb:     tlb.MustNew(cfg.UTLB),
			walker:   tlb.Walker{Levels: cfg.WalkLevels, CyclesPerLevel: cfg.WalkCycles},
			inflight: make([]fill, ringCap),
		}
		if cfg.JTLB != nil {
			st.jtlb = tlb.MustNew(*cfg.JTLB)
		}
		if cfg.NewPrefetcher != nil {
			st.pref = cfg.NewPrefetcher()
			st.stridePref, _ = st.pref.(*prefetch.Stride)
		} else if cfg.Prefetch != nil {
			st.stridePref = prefetch.NewStride(*cfg.Prefetch)
			st.pref = st.stridePref
		}
		h.per[i] = st
	}
	return h, nil
}

// MustNew is New but panics on error; used by validated device presets.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the construction configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// LineSize returns the machine's cache line size.
func (h *Hierarchy) LineSize() int64 { return h.cfg.LineSize }

// DRAM exposes the memory model (for bandwidth statistics).
func (h *Hierarchy) DRAM() *dram.Model { return h.dramM }

// L1Stats returns the L1 statistics of one core.
func (h *Hierarchy) L1Stats(core int) cache.Stats { return h.per[core].l1.Stats }

// TLBStats returns (uTLB stats, walk count) of one core.
func (h *Hierarchy) TLBStats(core int) (tlb.Stats, uint64) {
	return h.per[core].utlb.Stats(), h.per[core].walker.Walks
}

// L2StatsTotal sums the statistics of every L2 instance (one when shared,
// per-core otherwise); the zero Stats when the device has no L2.
func (h *Hierarchy) L2StatsTotal() cache.Stats { return sumStats(h.l2) }

// L3StatsTotal sums the statistics of every L3 instance; the zero Stats
// when the device has no L3.
func (h *Hierarchy) L3StatsTotal() cache.Stats { return sumStats(h.l3) }

func sumStats(cs []*cache.Cache) cache.Stats {
	var total cache.Stats
	for _, c := range cs {
		total.Hits += c.Stats.Hits
		total.Misses += c.Stats.Misses
		total.Writebacks += c.Stats.Writebacks
		total.Installs += c.Stats.Installs
	}
	return total
}

func (h *Hierarchy) l2For(core int) *cache.Cache {
	if h.l2 == nil {
		return nil
	}
	if len(h.l2) == 1 {
		return h.l2[0]
	}
	return h.l2[core]
}

func (h *Hierarchy) l3For(core int) *cache.Cache {
	if h.l3 == nil {
		return nil
	}
	if len(h.l3) == 1 {
		return h.l3[0]
	}
	return h.l3[core]
}

// SharedOnMiss reports whether an L1 miss on this machine touches globally
// shared state (a shared L2/L3 or, always, DRAM). Single-core machines never
// need cross-core ordering.
func (h *Hierarchy) SharedOnMiss() bool { return h.cfg.Cores > 1 }

// phys maps a virtual address to the simulated physical address used for
// cache set indexing and DRAM channel interleave. Pages are scattered by a
// bijective 64-bit mixer (the splitmix64 finalizer), modelling the OS's
// arbitrary physical page allocation behind physically-indexed caches —
// without it, power-of-two row strides (the 8192² matrix!) alias into a
// handful of sets, a pathology real systems don't exhibit. Offsets within a
// page are preserved; TLBs and prefetch training stay virtual.
func (h *Hierarchy) phys(addr uint64) uint64 {
	return physPage(addr>>12) | addr&4095
}

// physPage scatters one virtual page number (the splitmix64 finalizer).
func physPage(vpn uint64) uint64 {
	z := vpn + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z << 12
}

// Translate charges the TLB path for a data access and returns its cycle
// cost. All state touched is private to the core.
func (h *Hierarchy) Translate(core int, addr uint64) float64 {
	return h.translate(&h.per[core], addr)
}

func (h *Hierarchy) translate(st *coreState, addr uint64) float64 {
	if st.utlb.Lookup(addr) {
		return 0
	}
	return h.translateMiss(st, addr)
}

// translateMiss is the uTLB-miss path: second-level TLB, then a page walk.
func (h *Hierarchy) translateMiss(st *coreState, addr uint64) float64 {
	if st.jtlb != nil && st.jtlb.Lookup(addr) {
		st.utlb.Insert(addr)
		return h.cfg.JTLBPenalty
	}
	cost := h.cfg.JTLBPenalty + st.walker.Walk()
	st.utlb.Insert(addr)
	if st.jtlb != nil {
		st.jtlb.Insert(addr)
	}
	return cost
}

// L1Hit reports whether addr is resident in the core's L1 without mutating
// replacement state.
func (h *Hierarchy) L1Hit(core int, addr uint64) bool {
	st := &h.per[core]
	return st.l1.Probe(st.physFor(addr))
}

// TouchL1 performs the L1 hit-path update (recency, dirty bit) for an access
// already known to hit, returning its cycle cost.
func (h *Hierarchy) TouchL1(core int, addr uint64, write bool) float64 {
	st := &h.per[core]
	st.l1.Access(st.physFor(addr), write)
	return h.cfg.L1HitCycles
}

// AccessL1 performs the private, per-core portion of one data access in a
// single pass: the TLB path plus one fused L1 tag walk that either applies
// the hit-path update or counts the demand miss and installs the line
// (reporting the victim in res). It replaces the Translate + L1Hit + TouchL1
// triple walk of the split API with exactly one TLB lookup and one cache
// lookup; timing, statistics and replacement state are identical. On a miss
// the caller must complete the access with MissRest.
func (h *Hierarchy) AccessL1(core int, addr uint64, write bool) (tlbCycles float64, res cache.Result) {
	st := &h.per[core]
	tlbCycles = h.translate(st, addr)
	res = st.l1.Access(st.physFor(addr), write)
	return tlbCycles, res
}

// MissRest completes an L1 miss whose fused lookup (AccessL1) already
// counted the miss and installed the line: it posts the victim's write-back,
// trains the prefetcher, matches in-flight fills and walks the shared
// levels, returning the completion time (before miss-overlap scaling, which
// the caller applies so that it can also model vectorized access streams).
// This is the only part of an access that touches globally shared state;
// multi-core callers must invoke it in non-decreasing global time order.
func (h *Hierarchy) MissRest(core int, now float64, addr uint64, res cache.Result) float64 {
	return h.missRest(&h.per[core], core, now, addr, res)
}

func (h *Hierarchy) missRest(st *coreState, core int, now float64, addr uint64, res cache.Result) float64 {
	line := addr &^ h.lineMask

	// The victim's write-back is posted down the hierarchy.
	if res.EvictedValid && res.EvictedDirty {
		h.postWriteback(core, now, res.Evicted)
	}

	// Train the prefetcher on the demand-miss stream and issue fills.
	// issuePrefetch's common early exits (candidate already in flight /
	// already resident) are open-coded here: the miss path is the
	// simulator's hottest loop and the call frames are measurable.
	if st.pref != nil {
		if st.stridePref != nil {
			st.buf = st.stridePref.Observe(line, st.buf[:0])
		} else {
			st.buf = st.pref.Observe(line, st.buf[:0])
		}
	cands:
		for _, cand := range st.buf {
			pline := cand &^ h.lineMask
			for k := st.infLen - 1; k >= 0; k-- {
				if st.infAt(k).line == pline {
					continue cands
				}
			}
			paddr := st.physFor(pline)
			if st.l1.Probe(paddr) {
				continue
			}
			h.startFill(st, core, now, pline, paddr)
		}
	}

	// A fill already in flight (from a prefetch) satisfies the miss at its
	// ready time. Streams demand lines in the order they were prefetched,
	// so the match is usually the head of the MSHR ring.
	for k := 0; k < st.infLen; k++ {
		f := st.infAt(k)
		if f.line != line {
			continue
		}
		done := f.ready
		st.infRemove(k)
		if now > done {
			done = now
		}
		return done + h.cfg.L1HitCycles
	}

	return h.fill(core, now, st.physFor(line)) + h.cfg.L1HitCycles
}

// MissPath resolves an L1 miss at simulated time now and returns the access
// completion time: the L1 demand access (miss count, line install, victim
// selection) followed by MissRest. Multi-core callers must invoke MissPath
// in non-decreasing global time order.
func (h *Hierarchy) MissPath(core int, now float64, addr uint64, write bool) float64 {
	st := &h.per[core]
	res := st.l1.Access(st.physFor(addr), write)
	return h.missRest(st, core, now, addr, res)
}

// Access resolves one data access end-to-end at simulated time now and
// returns the core's new simulated time: translation, the fused L1 lookup
// (plus issue, the caller's per-element L1-hit cost) on a hit, or the full
// shared path scaled by the device's miss-overlap factor on a miss. It is
// the single-call entry point for callers that do not need to interleave a
// cross-core event ordering between the private and shared portions
// (single-core regions — most of the paper's kernels); the sim engine uses
// AccessL1 + MissRest directly so it can serialize only the shared half.
func (h *Hierarchy) Access(core int, now float64, addr uint64, write bool, issue float64) float64 {
	st := &h.per[core]
	if !st.utlb.Lookup(addr) { // uTLB hits cost nothing; misses take the slow path
		now += h.translateMiss(st, addr)
	}
	res := st.l1.Access(st.physFor(addr), write)
	if res.Hit {
		return now + issue
	}
	done := h.missRest(st, core, now, addr, res)
	return now + (done-now)*h.cfg.MissOverlap
}

// fill walks L2 → L3 → DRAM for the given *physical* line, installing it at
// each level, and returns the time the line arrives at L1.
func (h *Hierarchy) fill(core int, now float64, line uint64) float64 {
	if l2 := h.l2For(core); l2 != nil {
		r := l2.Access(line, false)
		if r.Hit {
			return now + h.cfg.L2.HitCycles
		}
		if r.EvictedValid && r.EvictedDirty {
			h.dramM.Posted(now, r.Evicted, h.cfg.LineSize, true)
		}
		if l3 := h.l3For(core); l3 != nil {
			r3 := l3.Access(line, false)
			if r3.Hit {
				return now + h.cfg.L2.HitCycles + h.cfg.L3.HitCycles
			}
			if r3.EvictedValid && r3.EvictedDirty {
				h.dramM.Posted(now, r3.Evicted, h.cfg.LineSize, true)
			}
			return h.dramM.Request(now, line, h.cfg.LineSize, false) + h.cfg.L2.HitCycles + h.cfg.L3.HitCycles
		}
		return h.dramM.Request(now, line, h.cfg.LineSize, false) + h.cfg.L2.HitCycles
	}
	return h.dramM.Request(now, line, h.cfg.LineSize, false)
}

// startFill claims an MSHR for a prefetch (retiring landed fills if the
// file is full — or dropping the prefetch when none free up) and starts the
// fill. Prefetch fills consume real channel time — on a bandwidth-starved
// device they can crowd out demand traffic, which is exactly the VisionFive
// behaviour in the paper's Fig. 6 discussion.
func (h *Hierarchy) startFill(st *coreState, core int, now float64, line, paddr uint64) {
	if st.infLen >= h.maxInflight {
		// Retire fills that have landed — they install into L1 (in issue
		// order, which is deterministic) and free their MSHR. If all slots
		// are still busy, the prefetch is dropped. Fills complete in issue
		// order on a single-channel device, so ready fills are usually a
		// prefix of the ring: pop the head cheaply, then sweep the rest.
		for st.infLen > 0 && st.infAt(0).ready <= now {
			h.installRetired(st, core, now, st.infAt(0).paddr)
			st.infHead = (st.infHead + 1) & (len(st.inflight) - 1)
			st.infLen--
		}
		if !h.monoFills {
			// Multi-channel (or cached) fills can complete out of issue
			// order: sweep past the unready head too.
			w := 0
			for k := 0; k < st.infLen; k++ {
				f := *st.infAt(k)
				if f.ready <= now {
					h.installRetired(st, core, now, f.paddr)
					continue
				}
				if w != k {
					*st.infAt(w) = f
				}
				w++
			}
			st.infLen = w
		}
		if st.infLen >= h.maxInflight {
			return
		}
	}
	st.infPush(fill{line: line, paddr: paddr, ready: h.fill(core, now, paddr)})
	h.PrefetchFills++
}

// installRetired lands a completed prefetch fill in L1, posting any dirty
// victim's write-back.
func (h *Hierarchy) installRetired(st *coreState, core int, now float64, paddr uint64) {
	if r := st.l1.Install(paddr, false); r.EvictedValid && r.EvictedDirty {
		h.postWriteback(core, now, r.Evicted)
	}
}

// postWriteback sends a dirty L1 victim down to the next level without
// blocking the core.
func (h *Hierarchy) postWriteback(core int, now float64, victim uint64) {
	if l2 := h.l2For(core); l2 != nil {
		r := l2.Install(victim, true)
		if r.EvictedValid && r.EvictedDirty {
			h.dramM.Posted(now, r.Evicted, h.cfg.LineSize, true)
		}
		return
	}
	h.dramM.Posted(now, victim, h.cfg.LineSize, true)
}

// MissOverlap returns the configured exposure factor for miss latency.
func (h *Hierarchy) MissOverlap() float64 { return h.cfg.MissOverlap }

// Reset restores all structural state (caches, TLBs, prefetchers, DRAM
// queues) and statistics to power-on.
func (h *Hierarchy) Reset() {
	h.dramM.Reset()
	for _, cs := range [][]*cache.Cache{h.l2, h.l3} {
		for _, c := range cs {
			c.Reset()
		}
	}
	for i := range h.per {
		st := &h.per[i]
		st.l1.Reset()
		st.utlb.Reset()
		if st.jtlb != nil {
			st.jtlb.Reset()
		}
		st.walker.Walks = 0
		if st.pref != nil {
			st.pref.Reset()
		}
		st.infHead, st.infLen = 0, 0
	}
	h.PrefetchFills = 0
}
