// Package hier composes the cache, TLB, prefetch and DRAM models into a full
// per-core memory hierarchy with shared outer levels.
//
// The hierarchy is the timing heart of the simulator. Every kernel load or
// store resolves here into a cycle count, via three entry points split so the
// discrete-event engine (internal/sim) can keep private-state operations
// lock-free and serialize only the operations that touch shared state:
//
//   - Translate: the private TLB path (uTLB → L2 TLB → page walk).
//   - L1Hit / TouchL1: a non-mutating L1 probe plus the hit-path update.
//   - MissPath: everything past a private L1 miss — in-flight prefetch
//     matching, shared L2/L3 lookups, DRAM queueing, write-back traffic and
//     prefetch training/issue. Calls must be globally ordered by time across
//     cores; the sim engine guarantees that.
//
// Inclusive caches, write-back + write-allocate everywhere, posted (non-
// blocking) write-backs, and demand fills that lazily install prefetched
// lines match the first-order behaviour of the paper's devices.
package hier

import (
	"fmt"

	"riscvmem/internal/cache"
	"riscvmem/internal/dram"
	"riscvmem/internal/prefetch"
	"riscvmem/internal/tlb"
)

// Level describes one cache level beyond L1.
type Level struct {
	Cache     cache.Config
	HitCycles float64 // access latency when this level serves the request
	Shared    bool    // one instance for the whole machine vs per core
}

// Config assembles a device's memory system.
type Config struct {
	Cores    int
	LineSize int64

	L1          cache.Config
	L1HitCycles float64 // per-access cost of an L1 hit (pipelined throughput)

	L2 *Level // optional
	L3 *Level // optional

	UTLB        tlb.Config
	JTLB        *tlb.Config // optional second-level TLB
	JTLBPenalty float64     // added cycles on uTLB miss / JTLB hit
	WalkLevels  int         // page-table depth (3 for Sv39)
	WalkCycles  float64     // per-level cost of a page walk

	DRAM dram.Config

	// MissOverlap scales the exposed latency of the shared-path portion of a
	// miss; 1.0 models a stalling in-order core, smaller values model the
	// miss-level parallelism of out-of-order cores.
	MissOverlap float64

	// NewPrefetcher builds one data prefetcher per core; nil disables
	// prefetching.
	NewPrefetcher func() prefetch.Prefetcher

	// MaxInflight caps concurrent outstanding fills per core (the MSHR
	// count). It bounds single-core memory-level parallelism: effective
	// streaming bandwidth ≈ MaxInflight × line / latency. 0 defaults to 8.
	MaxInflight int
}

// Validate checks the composition.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("hier: cores must be positive")
	}
	if c.MissOverlap <= 0 || c.MissOverlap > 1 {
		return fmt.Errorf("hier: miss overlap %v outside (0,1]", c.MissOverlap)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if c.L1.LineSize != c.LineSize {
		return fmt.Errorf("hier: L1 line size %d != hierarchy line size %d", c.L1.LineSize, c.LineSize)
	}
	for _, lv := range []*Level{c.L2, c.L3} {
		if lv == nil {
			continue
		}
		if err := lv.Cache.Validate(); err != nil {
			return err
		}
		if lv.Cache.LineSize != c.LineSize {
			return fmt.Errorf("hier: %s line size mismatch", lv.Cache.Name)
		}
	}
	if c.L3 != nil && c.L2 == nil {
		return fmt.Errorf("hier: L3 configured without L2")
	}
	if err := c.UTLB.Validate(); err != nil {
		return err
	}
	if c.JTLB != nil {
		if err := c.JTLB.Validate(); err != nil {
			return err
		}
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.DRAM.LineBytes != c.LineSize {
		return fmt.Errorf("hier: DRAM line bytes %d != line size %d", c.DRAM.LineBytes, c.LineSize)
	}
	return nil
}

// fill is one outstanding (MSHR-tracked) line fill.
type fill struct {
	line  uint64
	ready float64
}

type coreState struct {
	l1     *cache.Cache
	utlb   *tlb.TLB
	jtlb   *tlb.TLB // nil when absent
	walker tlb.Walker
	pref   prefetch.Prefetcher // nil when absent
	// inflight holds outstanding prefetch fills in issue order. It is a
	// small slice (bounded by MaxInflight) rather than a map: the MSHR
	// file is scanned on every miss, and insertion order keeps retirement
	// deterministic.
	inflight []fill
	buf      []uint64 // scratch for prefetch candidates
}

// Hierarchy is the runtime state for one machine.
type Hierarchy struct {
	cfg   Config
	dramM *dram.Model
	l2    []*cache.Cache // len 1 when shared, else len Cores
	l3    []*cache.Cache
	per   []coreState

	// PrefetchFills counts lines actually fetched by prefetchers (after
	// residency filtering); used by the ablation benchmarks.
	PrefetchFills uint64
}

// New builds a hierarchy.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, dramM: dram.MustNew(cfg.DRAM)}
	mkLevel := func(lv *Level) []*cache.Cache {
		if lv == nil {
			return nil
		}
		n := cfg.Cores
		if lv.Shared {
			n = 1
		}
		cs := make([]*cache.Cache, n)
		for i := range cs {
			c := lv.Cache
			c.Seed += uint64(i) // decorrelate random replacement across cores
			cs[i] = cache.MustNew(c)
		}
		return cs
	}
	h.l2 = mkLevel(cfg.L2)
	h.l3 = mkLevel(cfg.L3)
	h.per = make([]coreState, cfg.Cores)
	for i := range h.per {
		l1 := cfg.L1
		l1.Seed += uint64(i)
		st := coreState{
			l1:     cache.MustNew(l1),
			utlb:   tlb.MustNew(cfg.UTLB),
			walker: tlb.Walker{Levels: cfg.WalkLevels, CyclesPerLevel: cfg.WalkCycles},
		}
		if cfg.JTLB != nil {
			st.jtlb = tlb.MustNew(*cfg.JTLB)
		}
		if cfg.NewPrefetcher != nil {
			st.pref = cfg.NewPrefetcher()
		}
		h.per[i] = st
	}
	return h, nil
}

// MustNew is New but panics on error; used by validated device presets.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the construction configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// LineSize returns the machine's cache line size.
func (h *Hierarchy) LineSize() int64 { return h.cfg.LineSize }

// DRAM exposes the memory model (for bandwidth statistics).
func (h *Hierarchy) DRAM() *dram.Model { return h.dramM }

// L1Stats returns the L1 statistics of one core.
func (h *Hierarchy) L1Stats(core int) cache.Stats { return h.per[core].l1.Stats }

// TLBStats returns (uTLB stats, walk count) of one core.
func (h *Hierarchy) TLBStats(core int) (tlb.Stats, uint64) {
	return h.per[core].utlb.Stats, h.per[core].walker.Walks
}

func (h *Hierarchy) l2For(core int) *cache.Cache {
	if h.l2 == nil {
		return nil
	}
	if len(h.l2) == 1 {
		return h.l2[0]
	}
	return h.l2[core]
}

func (h *Hierarchy) l3For(core int) *cache.Cache {
	if h.l3 == nil {
		return nil
	}
	if len(h.l3) == 1 {
		return h.l3[0]
	}
	return h.l3[core]
}

// SharedOnMiss reports whether an L1 miss on this machine touches globally
// shared state (a shared L2/L3 or, always, DRAM). Single-core machines never
// need cross-core ordering.
func (h *Hierarchy) SharedOnMiss() bool { return h.cfg.Cores > 1 }

// phys maps a virtual address to the simulated physical address used for
// cache set indexing and DRAM channel interleave. Pages are scattered by a
// bijective 64-bit mixer (the splitmix64 finalizer), modelling the OS's
// arbitrary physical page allocation behind physically-indexed caches —
// without it, power-of-two row strides (the 8192² matrix!) alias into a
// handful of sets, a pathology real systems don't exhibit. Offsets within a
// page are preserved; TLBs and prefetch training stay virtual.
func (h *Hierarchy) phys(addr uint64) uint64 {
	vpn := addr >> 12
	off := addr & 4095
	z := vpn + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z<<12 | off
}

// Translate charges the TLB path for a data access and returns its cycle
// cost. All state touched is private to the core.
func (h *Hierarchy) Translate(core int, addr uint64) float64 {
	st := &h.per[core]
	if st.utlb.Lookup(addr) {
		return 0
	}
	if st.jtlb != nil && st.jtlb.Lookup(addr) {
		st.utlb.Insert(addr)
		return h.cfg.JTLBPenalty
	}
	cost := h.cfg.JTLBPenalty + st.walker.Walk()
	st.utlb.Insert(addr)
	if st.jtlb != nil {
		st.jtlb.Insert(addr)
	}
	return cost
}

// L1Hit reports whether addr is resident in the core's L1 without mutating
// replacement state.
func (h *Hierarchy) L1Hit(core int, addr uint64) bool {
	return h.per[core].l1.Probe(h.phys(addr))
}

// TouchL1 performs the L1 hit-path update (recency, dirty bit) for an access
// already known to hit, returning its cycle cost.
func (h *Hierarchy) TouchL1(core int, addr uint64, write bool) float64 {
	h.per[core].l1.Access(h.phys(addr), write)
	return h.cfg.L1HitCycles
}

// MissPath resolves an L1 miss at simulated time now and returns the access
// completion time (before miss-overlap scaling, which the caller applies so
// that it can also model vectorized access streams). Multi-core callers must
// invoke MissPath in non-decreasing global time order.
func (h *Hierarchy) MissPath(core int, now float64, addr uint64, write bool) float64 {
	st := &h.per[core]
	line := addr / uint64(h.cfg.LineSize) * uint64(h.cfg.LineSize)

	// Count the demand miss in L1 stats and make room for the incoming
	// line; the victim's write-back is posted down the hierarchy.
	res := st.l1.Access(h.phys(addr), write)
	if res.EvictedValid && res.EvictedDirty {
		h.postWriteback(core, now, res.Evicted)
	}

	// Train the prefetcher on the demand-miss stream and issue fills.
	if st.pref != nil {
		st.buf = st.pref.Observe(line, st.buf[:0])
		for _, cand := range st.buf {
			h.issuePrefetch(core, now, cand)
		}
	}

	// A fill already in flight (from a prefetch) satisfies the miss at its
	// ready time.
	for i := range st.inflight {
		if st.inflight[i].line != line {
			continue
		}
		done := st.inflight[i].ready
		st.inflight = append(st.inflight[:i], st.inflight[i+1:]...)
		if now > done {
			done = now
		}
		return done + h.cfg.L1HitCycles
	}

	return h.fill(core, now, h.phys(line)) + h.cfg.L1HitCycles
}

// fill walks L2 → L3 → DRAM for the given *physical* line, installing it at
// each level, and returns the time the line arrives at L1.
func (h *Hierarchy) fill(core int, now float64, line uint64) float64 {
	if l2 := h.l2For(core); l2 != nil {
		r := l2.Access(line, false)
		if r.Hit {
			return now + h.cfg.L2.HitCycles
		}
		if r.EvictedValid && r.EvictedDirty {
			h.dramM.Posted(now, r.Evicted, h.cfg.LineSize, true)
		}
		if l3 := h.l3For(core); l3 != nil {
			r3 := l3.Access(line, false)
			if r3.Hit {
				return now + h.cfg.L2.HitCycles + h.cfg.L3.HitCycles
			}
			if r3.EvictedValid && r3.EvictedDirty {
				h.dramM.Posted(now, r3.Evicted, h.cfg.LineSize, true)
			}
			return h.dramM.Request(now, line, h.cfg.LineSize, false) + h.cfg.L2.HitCycles + h.cfg.L3.HitCycles
		}
		return h.dramM.Request(now, line, h.cfg.LineSize, false) + h.cfg.L2.HitCycles
	}
	return h.dramM.Request(now, line, h.cfg.LineSize, false)
}

// issuePrefetch starts a fill for cand unless it is already resident in the
// core's L1 or in flight. Prefetch fills consume real channel time — on a
// bandwidth-starved device they can crowd out demand traffic, which is
// exactly the VisionFive behaviour in the paper's Fig. 6 discussion.
func (h *Hierarchy) issuePrefetch(core int, now float64, cand uint64) {
	st := &h.per[core]
	line := cand / uint64(h.cfg.LineSize) * uint64(h.cfg.LineSize)
	for i := range st.inflight {
		if st.inflight[i].line == line {
			return
		}
	}
	if st.l1.Probe(h.phys(line)) {
		return
	}
	maxIn := h.cfg.MaxInflight
	if maxIn <= 0 {
		maxIn = 8
	}
	if len(st.inflight) >= maxIn {
		// Retire fills that have landed — they install into L1 (in issue
		// order, which is deterministic) and free their MSHR. If all slots
		// are still busy, the prefetch is dropped.
		kept := st.inflight[:0]
		for _, f := range st.inflight {
			if f.ready <= now {
				if r := st.l1.Install(h.phys(f.line), false); r.EvictedValid && r.EvictedDirty {
					h.postWriteback(core, now, r.Evicted)
				}
				continue
			}
			kept = append(kept, f)
		}
		st.inflight = kept
		if len(st.inflight) >= maxIn {
			return
		}
	}
	st.inflight = append(st.inflight, fill{line: line, ready: h.fill(core, now, h.phys(line))})
	h.PrefetchFills++
}

// postWriteback sends a dirty L1 victim down to the next level without
// blocking the core.
func (h *Hierarchy) postWriteback(core int, now float64, victim uint64) {
	if l2 := h.l2For(core); l2 != nil {
		r := l2.Install(victim, true)
		if r.EvictedValid && r.EvictedDirty {
			h.dramM.Posted(now, r.Evicted, h.cfg.LineSize, true)
		}
		return
	}
	h.dramM.Posted(now, victim, h.cfg.LineSize, true)
}

// MissOverlap returns the configured exposure factor for miss latency.
func (h *Hierarchy) MissOverlap() float64 { return h.cfg.MissOverlap }

// Reset restores all structural state (caches, TLBs, prefetchers, DRAM
// queues) and statistics to power-on.
func (h *Hierarchy) Reset() {
	h.dramM.Reset()
	for _, cs := range [][]*cache.Cache{h.l2, h.l3} {
		for _, c := range cs {
			c.Reset()
		}
	}
	for i := range h.per {
		st := &h.per[i]
		st.l1.Reset()
		st.utlb.Reset()
		if st.jtlb != nil {
			st.jtlb.Reset()
		}
		st.walker.Walks = 0
		if st.pref != nil {
			st.pref.Reset()
		}
		st.inflight = st.inflight[:0]
	}
	h.PrefetchFills = 0
}
