// Package hier composes the cache, TLB, prefetch and DRAM models into a full
// per-core memory hierarchy with shared outer levels.
//
// The hierarchy is the timing heart of the simulator. Every kernel load or
// store resolves here into a cycle count, via two entry points split so the
// discrete-event engine (internal/sim) can keep private-state operations
// lock-free and serialize only the operations that touch shared state:
//
//   - AccessL1: the fused private path — TLB lookup (uTLB → L2 TLB → page
//     walk) plus a single L1 tag walk that detects a hit and applies its
//     recency/dirty update, or counts the miss and installs the line, in
//     one pass.
//   - MissRest: everything past a private L1 miss — in-flight prefetch
//     matching, shared L2/L3 lookups, DRAM queueing, write-back traffic and
//     prefetch training/issue. Calls must be globally ordered by time across
//     cores; the sim engine guarantees that.
//
// Access combines both for single-call use; the split legacy entry points
// (Translate, L1Hit, TouchL1, MissPath) remain for probes and tests.
//
// Inclusive caches, write-back + write-allocate everywhere, posted (non-
// blocking) write-backs, and demand fills that lazily install prefetched
// lines match the first-order behaviour of the paper's devices.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package hier

import (
	"fmt"

	"riscvmem/internal/cache"
	"riscvmem/internal/dram"
	"riscvmem/internal/prefetch"
	"riscvmem/internal/tlb"
)

// Level describes one cache level beyond L1.
type Level struct {
	Cache     cache.Config
	HitCycles float64 // access latency when this level serves the request
	Shared    bool    // one instance for the whole machine vs per core
}

// Config assembles a device's memory system.
type Config struct {
	Cores    int
	LineSize int64

	L1          cache.Config
	L1HitCycles float64 // per-access cost of an L1 hit (pipelined throughput)

	L2 *Level // optional
	L3 *Level // optional

	UTLB        tlb.Config
	JTLB        *tlb.Config // optional second-level TLB
	JTLBPenalty float64     // added cycles on uTLB miss / JTLB hit
	WalkLevels  int         // page-table depth (3 for Sv39)
	WalkCycles  float64     // per-level cost of a page walk

	DRAM dram.Config

	// MissOverlap scales the exposed latency of the shared-path portion of a
	// miss; 1.0 models a stalling in-order core, smaller values model the
	// miss-level parallelism of out-of-order cores.
	MissOverlap float64

	// NewPrefetcher builds one data prefetcher per core; nil disables
	// prefetching (unless Prefetch is set). When both are given,
	// NewPrefetcher wins — it is the escape hatch for custom prefetcher
	// implementations.
	NewPrefetcher func() prefetch.Prefetcher

	// Prefetch declaratively configures one stride prefetcher per core.
	// Unlike NewPrefetcher it is plain data: device sweeps can copy and
	// mutate it (distance, ramp), and machine.Spec.Identity compares it by
	// value rather than by factory code pointer.
	Prefetch *prefetch.StrideConfig

	// MaxInflight caps concurrent outstanding fills per core (the MSHR
	// count). It bounds single-core memory-level parallelism: effective
	// streaming bandwidth ≈ MaxInflight × line / latency. 0 defaults to 8.
	MaxInflight int
}

// Validate checks the composition.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("hier: cores must be positive")
	}
	if c.MissOverlap <= 0 || c.MissOverlap > 1 {
		return fmt.Errorf("hier: miss overlap %v outside (0,1]", c.MissOverlap)
	}
	if c.LineSize < 4 {
		// The simulator packs valid/dirty flags into the low bits of
		// line-aligned addresses; real lines are far larger anyway.
		return fmt.Errorf("hier: line size %d below minimum 4", c.LineSize)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if c.L1.LineSize != c.LineSize {
		return fmt.Errorf("hier: L1 line size %d != hierarchy line size %d", c.L1.LineSize, c.LineSize)
	}
	for _, lv := range []*Level{c.L2, c.L3} {
		if lv == nil {
			continue
		}
		if err := lv.Cache.Validate(); err != nil {
			return err
		}
		if lv.Cache.LineSize != c.LineSize {
			return fmt.Errorf("hier: %s line size mismatch", lv.Cache.Name)
		}
	}
	if c.L3 != nil && c.L2 == nil {
		return fmt.Errorf("hier: L3 configured without L2")
	}
	if err := c.UTLB.Validate(); err != nil {
		return err
	}
	if c.JTLB != nil {
		if err := c.JTLB.Validate(); err != nil {
			return err
		}
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.DRAM.LineBytes != c.LineSize {
		return fmt.Errorf("hier: DRAM line bytes %d != line size %d", c.DRAM.LineBytes, c.LineSize)
	}
	return nil
}

// fill is one outstanding (MSHR-tracked) line fill. paddr caches the
// scattered physical line address (a pure function of line) so retirement
// does not recompute it.
type fill struct {
	line  uint64
	paddr uint64
	ready float64
}

// physMemoEntries sizes the per-core direct-mapped VPN→PPN memo; a power of
// two. The memo caches the splitmix64 page scatter (see phys), which is a
// pure function of the VPN — memoization is exact, never invalidated. It is
// deliberately small: page-grain reuse means a handful of hot pages cover a
// kernel's inner loops, and a compact table stays resident in the host L1.
const physMemoEntries = 64

type physEntry struct {
	key uint64 // vpn + 1; 0 means empty
	ppn uint64 // scattered physical page address (offset bits zero)
}

type coreState struct {
	l1     *cache.Cache
	utlb   *tlb.TLB
	jtlb   *tlb.TLB // nil when absent
	walker tlb.Walker
	pref   prefetch.Prefetcher // nil when absent
	// stridePref is pref devirtualized when it is the stock Stride model
	// (every preset): the per-miss Observe call is then direct.
	stridePref *prefetch.Stride
	// inflight is the MSHR file: outstanding prefetch fills in issue order,
	// held in a small power-of-two ring (bounded by MaxInflight) so the
	// common head operations — matching the oldest fill, retiring ready
	// fills — are O(1) with no compaction. Insertion order keeps retirement
	// deterministic.
	inflight []fill
	infHead  int
	infLen   int
	buf      []uint64 // scratch for prefetch candidates
	// physMemo is per-core (not per-hierarchy) so the access hot path stays
	// free of cross-core sharing; each core's goroutine touches only its own
	// table.
	physMemo [physMemoEntries]physEntry
}

// infAt returns the k-th oldest in-flight fill (0 = head).
func (st *coreState) infAt(k int) *fill {
	return &st.inflight[(st.infHead+k)&(len(st.inflight)-1)]
}

// infPush appends a fill at the tail. The ring is sized to MaxInflight, and
// callers never exceed it.
func (st *coreState) infPush(f fill) {
	*st.infAt(st.infLen) = f
	st.infLen++
}

// infRemove deletes the k-th oldest fill, preserving the order of the rest.
func (st *coreState) infRemove(k int) {
	if k == 0 {
		st.infHead = (st.infHead + 1) & (len(st.inflight) - 1)
		st.infLen--
		return
	}
	for j := k; j < st.infLen-1; j++ {
		*st.infAt(j) = *st.infAt(j + 1)
	}
	st.infLen--
}

// physFor is the memoized phys: one table probe replaces the three-multiply
// mixer for every hot page.
func (st *coreState) physFor(addr uint64) uint64 {
	vpn := addr >> 12
	e := &st.physMemo[vpn&(physMemoEntries-1)]
	if e.key != vpn+1 {
		e.key, e.ppn = vpn+1, physPage(vpn)
	}
	return e.ppn | addr&4095
}

// Hierarchy is the runtime state for one machine.
type Hierarchy struct {
	cfg         Config
	lineMask    uint64 // LineSize-1; line rounding is addr &^ lineMask
	lineShift   uint   // log2(LineSize)
	maxInflight int    // resolved MSHR count (cfg.MaxInflight, default 8)
	// linesPerPage is the line count of one translation-run window for the
	// batched pipeline (AccessLines): the lines that share both a uTLB page
	// and a 4 KiB scattered physical frame. 0 disables batching (lines
	// larger than the page — no preset does this).
	linesPerPage int
	pageMask     uint64 // the window size minus one
	// monoFills: on a single-channel device with no L2/L3, every fill is a
	// same-size DRAM request through one FIFO queue, so completion times
	// are monotonic in issue order — if the oldest in-flight fill is not
	// ready, none are.
	monoFills bool
	dramM     *dram.Model
	l2        []*cache.Cache // len 1 when shared, else len Cores
	l3        []*cache.Cache
	per       []coreState

	// PrefetchFills counts lines actually fetched by prefetchers (after
	// residency filtering); used by the ablation benchmarks.
	PrefetchFills uint64
}

// New builds a hierarchy.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, lineMask: uint64(cfg.LineSize - 1), dramM: dram.MustNew(cfg.DRAM)}
	for s := cfg.LineSize; s > 1; s >>= 1 {
		h.lineShift++
	}
	pageShift := uint(12) // the phys scatter's 4 KiB frames
	if cfg.UTLB.PageShift < pageShift {
		pageShift = cfg.UTLB.PageShift // smaller pages bound the run window
	}
	if page := int64(1) << pageShift; page >= cfg.LineSize {
		h.linesPerPage = int(page / cfg.LineSize)
		h.pageMask = uint64(page - 1)
	}
	h.maxInflight = cfg.MaxInflight
	if h.maxInflight <= 0 {
		h.maxInflight = 8
	}
	h.monoFills = cfg.DRAM.Channels == 1 && cfg.L2 == nil
	ringCap := 1
	for ringCap < h.maxInflight {
		ringCap <<= 1
	}
	mkLevel := func(lv *Level) []*cache.Cache {
		if lv == nil {
			return nil
		}
		n := cfg.Cores
		if lv.Shared {
			n = 1
		}
		cs := make([]*cache.Cache, n)
		for i := range cs {
			c := lv.Cache
			c.Seed += uint64(i) // decorrelate random replacement across cores
			cs[i] = cache.MustNew(c)
		}
		return cs
	}
	h.l2 = mkLevel(cfg.L2)
	h.l3 = mkLevel(cfg.L3)
	h.per = make([]coreState, cfg.Cores)
	for i := range h.per {
		l1 := cfg.L1
		l1.Seed += uint64(i)
		st := coreState{
			l1:       cache.MustNew(l1),
			utlb:     tlb.MustNew(cfg.UTLB),
			walker:   tlb.Walker{Levels: cfg.WalkLevels, CyclesPerLevel: cfg.WalkCycles},
			inflight: make([]fill, ringCap),
		}
		if cfg.JTLB != nil {
			st.jtlb = tlb.MustNew(*cfg.JTLB)
		}
		if cfg.NewPrefetcher != nil {
			st.pref = cfg.NewPrefetcher()
			st.stridePref, _ = st.pref.(*prefetch.Stride)
		} else if cfg.Prefetch != nil {
			st.stridePref = prefetch.NewStride(*cfg.Prefetch)
			st.pref = st.stridePref
		}
		h.per[i] = st
	}
	return h, nil
}

// MustNew is New but panics on error; used by validated device presets.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the construction configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// LineSize returns the machine's cache line size.
func (h *Hierarchy) LineSize() int64 { return h.cfg.LineSize }

// DRAM exposes the memory model (for bandwidth statistics).
func (h *Hierarchy) DRAM() *dram.Model { return h.dramM }

// L1Stats returns the L1 statistics of one core.
func (h *Hierarchy) L1Stats(core int) cache.Stats { return h.per[core].l1.Stats }

// TLBStats returns (uTLB stats, walk count) of one core.
func (h *Hierarchy) TLBStats(core int) (tlb.Stats, uint64) {
	return h.per[core].utlb.Stats(), h.per[core].walker.Walks
}

// L2StatsTotal sums the statistics of every L2 instance (one when shared,
// per-core otherwise); the zero Stats when the device has no L2.
func (h *Hierarchy) L2StatsTotal() cache.Stats { return sumStats(h.l2) }

// L3StatsTotal sums the statistics of every L3 instance; the zero Stats
// when the device has no L3.
func (h *Hierarchy) L3StatsTotal() cache.Stats { return sumStats(h.l3) }

func sumStats(cs []*cache.Cache) cache.Stats {
	var total cache.Stats
	for _, c := range cs {
		total.Hits += c.Stats.Hits
		total.Misses += c.Stats.Misses
		total.Writebacks += c.Stats.Writebacks
		total.Installs += c.Stats.Installs
	}
	return total
}

func (h *Hierarchy) l2For(core int) *cache.Cache {
	if h.l2 == nil {
		return nil
	}
	if len(h.l2) == 1 {
		return h.l2[0]
	}
	return h.l2[core]
}

func (h *Hierarchy) l3For(core int) *cache.Cache {
	if h.l3 == nil {
		return nil
	}
	if len(h.l3) == 1 {
		return h.l3[0]
	}
	return h.l3[core]
}

// SharedOnMiss reports whether an L1 miss on this machine touches globally
// shared state (a shared L2/L3 or, always, DRAM). Single-core machines never
// need cross-core ordering.
func (h *Hierarchy) SharedOnMiss() bool { return h.cfg.Cores > 1 }

// BatchLines reports whether the batched line pipeline (AccessLines) is
// available on this hierarchy: the line size must not exceed the translation
// window (true for every preset). Callers fall back to per-line accesses
// otherwise.
func (h *Hierarchy) BatchLines() bool { return h.linesPerPage > 0 }

// phys maps a virtual address to the simulated physical address used for
// cache set indexing and DRAM channel interleave. Pages are scattered by a
// bijective 64-bit mixer (the splitmix64 finalizer), modelling the OS's
// arbitrary physical page allocation behind physically-indexed caches —
// without it, power-of-two row strides (the 8192² matrix!) alias into a
// handful of sets, a pathology real systems don't exhibit. Offsets within a
// page are preserved; TLBs and prefetch training stay virtual.
func (h *Hierarchy) phys(addr uint64) uint64 {
	return physPage(addr>>12) | addr&4095
}

// physPage scatters one virtual page number (the splitmix64 finalizer).
func physPage(vpn uint64) uint64 {
	z := vpn + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z << 12
}

// Translate charges the TLB path for a data access and returns its cycle
// cost. All state touched is private to the core.
func (h *Hierarchy) Translate(core int, addr uint64) float64 {
	return h.translate(&h.per[core], addr)
}

func (h *Hierarchy) translate(st *coreState, addr uint64) float64 {
	if st.utlb.Lookup(addr) {
		return 0
	}
	return h.translateMiss(st, addr)
}

// translateMiss is the uTLB-miss path: second-level TLB, then a page walk.
func (h *Hierarchy) translateMiss(st *coreState, addr uint64) float64 {
	if st.jtlb != nil && st.jtlb.Lookup(addr) {
		st.utlb.Insert(addr)
		return h.cfg.JTLBPenalty
	}
	cost := h.cfg.JTLBPenalty + st.walker.Walk()
	st.utlb.Insert(addr)
	if st.jtlb != nil {
		st.jtlb.Insert(addr)
	}
	return cost
}

// L1Hit reports whether addr is resident in the core's L1 without mutating
// replacement state.
func (h *Hierarchy) L1Hit(core int, addr uint64) bool {
	st := &h.per[core]
	return st.l1.Probe(st.physFor(addr))
}

// TouchL1 performs the L1 hit-path update (recency, dirty bit) for an access
// already known to hit, returning its cycle cost.
func (h *Hierarchy) TouchL1(core int, addr uint64, write bool) float64 {
	st := &h.per[core]
	st.l1.Access(st.physFor(addr), write)
	return h.cfg.L1HitCycles
}

// AccessL1 performs the private, per-core portion of one data access in a
// single pass: the TLB path plus one fused L1 tag walk that either applies
// the hit-path update or counts the demand miss and installs the line
// (reporting the victim in res). It replaces the Translate + L1Hit + TouchL1
// triple walk of the split API with exactly one TLB lookup and one cache
// lookup; timing, statistics and replacement state are identical. On a miss
// the caller must complete the access with MissRest.
func (h *Hierarchy) AccessL1(core int, addr uint64, write bool) (tlbCycles float64, res cache.Result) {
	st := &h.per[core]
	tlbCycles = h.translate(st, addr)
	res = st.l1.Access(st.physFor(addr), write)
	return tlbCycles, res
}

// MissRest completes an L1 miss whose fused lookup (AccessL1) already
// counted the miss and installed the line: it posts the victim's write-back,
// trains the prefetcher, matches in-flight fills and walks the shared
// levels, returning the completion time (before miss-overlap scaling, which
// the caller applies so that it can also model vectorized access streams).
// This is the only part of an access that touches globally shared state;
// multi-core callers must invoke it in non-decreasing global time order.
func (h *Hierarchy) MissRest(core int, now float64, addr uint64, res cache.Result) float64 {
	return h.missRest(&h.per[core], core, now, addr, res)
}

func (h *Hierarchy) missRest(st *coreState, core int, now float64, addr uint64, res cache.Result) float64 {
	return h.missRestLine(st, core, now, addr&^h.lineMask, res)
}

// missRestLine is missRest for an already line-aligned address.
func (h *Hierarchy) missRestLine(st *coreState, core int, now float64, line uint64, res cache.Result) float64 {
	// The victim's write-back is posted down the hierarchy.
	if res.EvictedValid && res.EvictedDirty {
		h.postWriteback(core, now, res.Evicted)
	}

	// Train the prefetcher on the demand-miss stream and issue fills.
	// issuePrefetch's common early exits (candidate already in flight /
	// already resident) are open-coded here: the miss path is the
	// simulator's hottest loop and the call frames are measurable.
	if st.pref != nil {
		if st.stridePref != nil {
			st.buf = st.stridePref.Observe(line, st.buf[:0])
		} else {
			st.buf = st.pref.Observe(line, st.buf[:0])
		}
	cands:
		for _, cand := range st.buf {
			pline := cand &^ h.lineMask
			for k := st.infLen - 1; k >= 0; k-- {
				if st.infAt(k).line == pline {
					continue cands
				}
			}
			paddr := st.physFor(pline)
			if st.l1.Probe(paddr) {
				continue
			}
			h.startFill(st, core, now, pline, paddr)
		}
	}

	// A fill already in flight (from a prefetch) satisfies the miss at its
	// ready time. Streams demand lines in the order they were prefetched,
	// so the match is usually the head of the MSHR ring.
	for k := 0; k < st.infLen; k++ {
		f := st.infAt(k)
		if f.line != line {
			continue
		}
		done := f.ready
		st.infRemove(k)
		if now > done {
			done = now
		}
		return done + h.cfg.L1HitCycles
	}

	return h.fill(core, now, st.physFor(line)) + h.cfg.L1HitCycles
}

// MissPath resolves an L1 miss at simulated time now and returns the access
// completion time: the L1 demand access (miss count, line install, victim
// selection) followed by MissRest. Multi-core callers must invoke MissPath
// in non-decreasing global time order.
func (h *Hierarchy) MissPath(core int, now float64, addr uint64, write bool) float64 {
	st := &h.per[core]
	res := st.l1.Access(st.physFor(addr), write)
	return h.missRest(st, core, now, addr, res)
}

// Access resolves one data access end-to-end at simulated time now and
// returns the core's new simulated time: translation, the fused L1 lookup
// (plus issue, the caller's per-element L1-hit cost) on a hit, or the full
// shared path scaled by the device's miss-overlap factor on a miss. It is
// the single-call entry point for callers that do not need to interleave a
// cross-core event ordering between the private and shared portions
// (single-core regions — most of the paper's kernels); the sim engine uses
// AccessL1 + MissRest directly so it can serialize only the shared half.
func (h *Hierarchy) Access(core int, now float64, addr uint64, write bool, issue float64) float64 {
	st := &h.per[core]
	if !st.utlb.Lookup(addr) { // uTLB hits cost nothing; misses take the slow path
		now += h.translateMiss(st, addr)
	}
	res := st.l1.Access(st.physFor(addr), write)
	if res.Hit {
		return now + issue
	}
	done := h.missRest(st, core, now, addr, res)
	return now + (done-now)*h.cfg.MissOverlap
}

// Order serializes globally-shared sections (the miss path past L1) across
// the cores of a multi-core region. The sim engine implements it; AccessLines
// brackets every miss with Enter/Leave exactly where the split
// AccessL1+MissRest path would, so batched and per-line multi-core runs see
// identical global event orderings. A nil Order means the caller is the only
// core touching shared state (single-core regions).
type Order interface {
	Enter(core int, now float64)
	Leave(core int, now float64)
}

// lineStreak is the steady state of a consecutive-miss line run inside one
// AccessLines call. While ok, the MSHR ring is known to consist of skip
// frozen stale fills (left over from an earlier pattern — the run's demands
// never match them, no sweeps fire in streak mode, and pops preserve their
// positions) followed by exactly the consecutive lines
// [current demand line, tail] in issue order; pf fast-forwards the stride
// prefetcher. Any deviation (an L1 hit breaking the miss chain, a resident
// or dropped prefetch candidate, a full-ring retirement sweep, a foreign
// stream interfering with matching) clears ok, and the next miss re-enters
// through the generic path plus a ring check.
type lineStreak struct {
	ok   bool
	pf   prefetch.Steady
	prev uint64 // virtual line address of the previous miss
	tail uint64 // virtual line address of the newest in-flight fill
	skip int    // frozen stale fills at the ring head
	// stale holds the skip frozen lines: a prefetch candidate matching one
	// is already in flight and must be skipped exactly like a ring-scan hit.
	stale [16]uint64
}

// AccessLines is the batched line-stream pipeline: it charges nLines
// consecutive line-granular accesses (each covering perLine elements of
// issue cost, each element followed by the post charges) starting at the
// line containing addr, in one call. It is exactly equivalent — simulated
// cycles bit for bit, statistics, replacement and prefetcher state — to
// resolving each line through Access (or AccessL1+MissRest under ord) and
// accumulating the element charges per line, which the oracle tests in
// internal/sim assert against the per-element path on every preset. The
// equivalences it exploits, per run:
//
//   - translation: lines sharing a uTLB page cost one real lookup; the rest
//     fold into the TLB's repeat batcher as one bulk Repeat.
//   - physical addresses: the page scatter preserves offsets, so paddr and
//     the L1 line number advance by one line within a page instead of being
//     re-derived (and re-memoized) per line.
//   - L1 statistics accumulate in a local buffer, applied as one bulk
//     AddStats at the end.
//   - steady miss streaks (lineStreak) apply the stride prefetcher's
//     confirmed-stride transition without re-running stream matching, skip
//     the per-candidate MSHR scans via the ring-contents invariant, pop the
//     demand match from the ring head, and — in single-core regions, where
//     no Enter/Leave bracket guards the shared counters — batch DRAM read
//     statistics per call.
func (h *Hierarchy) AccessLines(core int, now float64, addr uint64, nLines, perLine int, write bool, issue float64, post []float64, ord Order) float64 {
	if h.linesPerPage == 0 {
		panic("hier: AccessLines on a hierarchy without line batching (see BatchLines)")
	}
	st := &h.per[core]
	overlap := h.cfg.MissOverlap
	lineSize := h.lineMask + 1
	addr &^= h.lineMask
	var l1b cache.Stats // bulk L1 stat increments, applied once at the end
	// Deferred DRAM read counters are a single-core-region optimization:
	// DRAM statistics are shared state, and the deferred flush would land
	// outside the Enter/Leave bracket — so ordered regions count per miss,
	// inside their serialized sections, like the generic path.
	var dramLines uint64
	dramDefer := &dramLines
	if ord != nil {
		dramDefer = nil
	}
	var sk lineStreak
	for nLines > 0 {
		// Lines left in this translation window (page).
		k := int((h.pageMask + 1 - addr&h.pageMask) >> h.lineShift)
		if k > nLines {
			k = nLines
		}
		// One real uTLB path for the window; the k-1 same-page lookups the
		// per-line path would make are exactly the repeat batcher's deferred
		// hits, folded in bulk. Only the first line can miss (its insert
		// covers the rest), so the whole window charges tcost once, before
		// its first access — the same position in the cycle chain.
		if st.utlb.Lookup(addr) {
			if k > 1 {
				st.utlb.Repeat(uint64(k - 1))
			}
		} else {
			now += h.translateMiss(st, addr)
			if k > 1 {
				st.utlb.Lookup(addr) // cold re-hit re-arms the batcher
				if k > 2 {
					st.utlb.Repeat(uint64(k - 2))
				}
			}
		}
		paddr := st.physFor(addr)
		ln := paddr >> h.lineShift
		nLines -= k
		for ; k > 0; k-- {
			res := st.l1.AccessLine(ln, write, &l1b)
			if res.Hit {
				now += issue
				for _, p := range post {
					now += p
				}
			} else {
				if ord != nil {
					ord.Enter(core, now)
				}
				var done float64
				if sk.ok && addr == sk.prev+lineSize && int64(addr>>h.lineShift) < sk.pf.Stop() {
					done = h.missSteady(st, core, now, addr, paddr, res, &sk, dramDefer)
					sk.prev = addr
				} else {
					sk.ok = false
					done = h.missRestLine(st, core, now, addr, res)
					h.enterStreak(st, addr, &sk)
				}
				now += (done - now) * overlap
				if ord != nil {
					ord.Leave(core, now)
				}
				for _, p := range post {
					now += p
				}
			}
			for e := 1; e < perLine; e++ {
				now += issue
				for _, p := range post {
					now += p
				}
			}
			addr += lineSize
			paddr += lineSize
			ln++
		}
	}
	st.l1.AddStats(l1b)
	if dramLines > 0 {
		h.dramM.AddLineReads(dramLines)
	}
	return now
}

// enterStreak attempts to put the run into steady streak mode after a miss
// at vline was resolved generically: the stride prefetcher must report a
// confirmed unit-stride stream and the MSHR ring must end in the consecutive
// line run following vline (the invariant missSteady maintains), with at
// most len(stale) foreign fills frozen ahead of it.
func (h *Hierarchy) enterStreak(st *coreState, vline uint64, sk *lineStreak) {
	// The streak's line-unit bookkeeping (SteadyAt/Advance) must agree with
	// the prefetcher's own line granularity; a custom device could configure
	// them apart, in which case only the generic path is exact.
	if st.stridePref == nil || st.infLen == 0 || st.stridePref.LineSize() != h.cfg.LineSize {
		return
	}
	pf, ok := st.stridePref.SteadyAt(int64(vline >> h.lineShift))
	if !ok {
		return
	}
	lineSize := h.lineMask + 1
	j := -1
	for k := 0; k < st.infLen; k++ {
		if st.infAt(k).line == vline+lineSize {
			j = k
			break
		}
	}
	if j < 0 || j > len(sk.stale) {
		return
	}
	for k := j + 1; k < st.infLen; k++ {
		if st.infAt(k).line != vline+uint64(k-j+1)*lineSize {
			return
		}
	}
	*sk = lineStreak{ok: true, pf: pf, prev: vline, skip: j,
		tail: vline + uint64(st.infLen-j)*lineSize}
	for k := 0; k < j; k++ {
		sk.stale[k] = st.infAt(k).line
	}
}

// missSteady resolves one miss of a steady consecutive-miss streak: the
// exact state transition of missRestLine, with the stream matching, window
// materialization and per-candidate MSHR scans strength-reduced away via the
// streak invariants (see lineStreak). Deviations clear sk.ok so the next
// miss falls back to the generic path.
func (h *Hierarchy) missSteady(st *coreState, core int, now float64, vline, paddr uint64, res cache.Result, sk *lineStreak, dramLines *uint64) float64 {
	lineSize := h.lineMask + 1
	if res.EvictedValid && res.EvictedDirty {
		h.postWriteback(core, now, res.Evicted)
	}

	// Prefetch: the confirmed-stride transition, then only the candidates
	// beyond the in-flight tail — the ones at or below it are in the ring
	// (invariant) and the generic scan would skip them statelessly.
	d := sk.pf.Advance(int64(vline >> h.lineShift))
	end := vline + uint64(d)*lineSize
	start := sk.tail
	if start < vline {
		start = vline // empty ring: the window begins after the demand line
	}
	if end > start {
		if st.infLen+int((end-start)>>h.lineShift) > h.maxInflight {
			// A push could trigger the full-ring retirement sweep, which
			// rewrites the ring (and, through retirements, L1) mid-loop:
			// process the new candidates fully generically — live ring scan,
			// not the frozen stale snapshot — and leave streak mode after
			// this line. (Skipping the candidates at or below the tail via
			// the loop bound stays exact: they precede every push, so no
			// sweep can have touched the ring when they are considered.)
			sk.ok = false
		sweep:
			for c := start + lineSize; c <= end; c += lineSize {
				for k := st.infLen - 1; k >= 0; k-- {
					if st.infAt(k).line == c {
						continue sweep
					}
				}
				pa := st.physFor(c)
				if st.l1.Probe(pa) {
					continue
				}
				h.startFill(st, core, now, c, pa)
			}
		} else {
		cands:
			for c := start + lineSize; c <= end; c += lineSize {
				for s := 0; s < sk.skip; s++ {
					if sk.stale[s] == c {
						// Already in flight as a frozen stale fill: the
						// generic ring scan would skip it with no state
						// change. The run gains a gap the demand-side head
						// check will detect when it gets there.
						continue cands
					}
				}
				pa := st.physFor(c)
				if st.l1.Probe(pa) {
					sk.ok = false // gap: the ring run is no longer contiguous
					continue
				}
				var ready float64
				if h.monoFills && dramLines != nil {
					ready = h.dramM.LineRead(now, pa)
					*dramLines++
				} else {
					ready = h.fill(core, now, pa)
				}
				st.infPush(fill{line: c, paddr: pa, ready: ready})
				h.PrefetchFills++
			}
		}
		sk.tail = end
	}

	// Demand: the invariant puts the demanded line right after the frozen
	// stale prefix (at the ring head proper when there is none).
	if st.infLen > sk.skip {
		if f := st.infAt(sk.skip); f.line == vline {
			done := f.ready
			st.infRemove(sk.skip)
			if now > done {
				done = now
			}
			return done + h.cfg.L1HitCycles
		}
	}
	// The head is not the demanded line (resident-candidate gaps or sweeps
	// rewrote the ring): generic match, then a demand fill.
	sk.ok = false
	for k := 0; k < st.infLen; k++ {
		f := st.infAt(k)
		if f.line != vline {
			continue
		}
		done := f.ready
		st.infRemove(k)
		if now > done {
			done = now
		}
		return done + h.cfg.L1HitCycles
	}
	if h.monoFills && dramLines != nil {
		*dramLines++
		return h.dramM.LineRead(now, paddr) + h.cfg.L1HitCycles
	}
	return h.fill(core, now, paddr) + h.cfg.L1HitCycles
}

// fill walks L2 → L3 → DRAM for the given *physical* line, installing it at
// each level, and returns the time the line arrives at L1.
func (h *Hierarchy) fill(core int, now float64, line uint64) float64 {
	if l2 := h.l2For(core); l2 != nil {
		r := l2.Access(line, false)
		if r.Hit {
			return now + h.cfg.L2.HitCycles
		}
		if r.EvictedValid && r.EvictedDirty {
			h.dramM.Posted(now, r.Evicted, h.cfg.LineSize, true)
		}
		if l3 := h.l3For(core); l3 != nil {
			r3 := l3.Access(line, false)
			if r3.Hit {
				return now + h.cfg.L2.HitCycles + h.cfg.L3.HitCycles
			}
			if r3.EvictedValid && r3.EvictedDirty {
				h.dramM.Posted(now, r3.Evicted, h.cfg.LineSize, true)
			}
			return h.dramM.Request(now, line, h.cfg.LineSize, false) + h.cfg.L2.HitCycles + h.cfg.L3.HitCycles
		}
		return h.dramM.Request(now, line, h.cfg.LineSize, false) + h.cfg.L2.HitCycles
	}
	return h.dramM.Request(now, line, h.cfg.LineSize, false)
}

// startFill claims an MSHR for a prefetch (retiring landed fills if the
// file is full — or dropping the prefetch when none free up) and starts the
// fill. Prefetch fills consume real channel time — on a bandwidth-starved
// device they can crowd out demand traffic, which is exactly the VisionFive
// behaviour in the paper's Fig. 6 discussion.
func (h *Hierarchy) startFill(st *coreState, core int, now float64, line, paddr uint64) {
	if st.infLen >= h.maxInflight {
		// Retire fills that have landed — they install into L1 (in issue
		// order, which is deterministic) and free their MSHR. If all slots
		// are still busy, the prefetch is dropped. Fills complete in issue
		// order on a single-channel device, so ready fills are usually a
		// prefix of the ring: pop the head cheaply, then sweep the rest.
		for st.infLen > 0 && st.infAt(0).ready <= now {
			h.installRetired(st, core, now, st.infAt(0).paddr)
			st.infHead = (st.infHead + 1) & (len(st.inflight) - 1)
			st.infLen--
		}
		if !h.monoFills {
			// Multi-channel (or cached) fills can complete out of issue
			// order: sweep past the unready head too.
			w := 0
			for k := 0; k < st.infLen; k++ {
				f := *st.infAt(k)
				if f.ready <= now {
					h.installRetired(st, core, now, f.paddr)
					continue
				}
				if w != k {
					*st.infAt(w) = f
				}
				w++
			}
			st.infLen = w
		}
		if st.infLen >= h.maxInflight {
			return
		}
	}
	st.infPush(fill{line: line, paddr: paddr, ready: h.fill(core, now, paddr)})
	h.PrefetchFills++
}

// installRetired lands a completed prefetch fill in L1, posting any dirty
// victim's write-back.
func (h *Hierarchy) installRetired(st *coreState, core int, now float64, paddr uint64) {
	if r := st.l1.Install(paddr, false); r.EvictedValid && r.EvictedDirty {
		h.postWriteback(core, now, r.Evicted)
	}
}

// postWriteback sends a dirty L1 victim down to the next level without
// blocking the core.
func (h *Hierarchy) postWriteback(core int, now float64, victim uint64) {
	if l2 := h.l2For(core); l2 != nil {
		r := l2.Install(victim, true)
		if r.EvictedValid && r.EvictedDirty {
			h.dramM.Posted(now, r.Evicted, h.cfg.LineSize, true)
		}
		return
	}
	h.dramM.Posted(now, victim, h.cfg.LineSize, true)
}

// MissOverlap returns the configured exposure factor for miss latency.
func (h *Hierarchy) MissOverlap() float64 { return h.cfg.MissOverlap }

// Reset restores all structural state (caches, TLBs, prefetchers, DRAM
// queues) and statistics to power-on.
func (h *Hierarchy) Reset() {
	h.dramM.Reset()
	for _, cs := range [][]*cache.Cache{h.l2, h.l3} {
		for _, c := range cs {
			c.Reset()
		}
	}
	for i := range h.per {
		st := &h.per[i]
		st.l1.Reset()
		st.utlb.Reset()
		if st.jtlb != nil {
			st.jtlb.Reset()
		}
		st.walker.Walks = 0
		if st.pref != nil {
			st.pref.Reset()
		}
		st.infHead, st.infLen = 0, 0
	}
	h.PrefetchFills = 0
}
