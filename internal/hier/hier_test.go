package hier

import (
	"testing"

	"riscvmem/internal/cache"
	"riscvmem/internal/dram"
	"riscvmem/internal/prefetch"
	"riscvmem/internal/tlb"
)

// flat returns a minimal single-core hierarchy: 1 KiB L1, no L2/L3, 1-channel
// DRAM at 1 B/cycle with 100-cycle latency, no prefetcher.
func flat() Config {
	return Config{
		Cores:       1,
		LineSize:    64,
		L1:          cache.Config{Name: "L1", Size: 1 << 10, Ways: 2, LineSize: 64, Policy: cache.LRU},
		L1HitCycles: 1,
		UTLB:        tlb.Config{Name: "utlb", Entries: 4, Ways: 4, PageShift: 12},
		JTLBPenalty: 5,
		WalkLevels:  3, WalkCycles: 50,
		DRAM:        dram.Config{Name: "d", Channels: 1, BytesPerCycle: 1, LatencyCycles: 100, LineBytes: 64},
		MissOverlap: 1.0,
	}
}

// withL2 adds a shared 4 KiB L2 to flat().
func withL2(cores int) Config {
	cfg := flat()
	cfg.Cores = cores
	cfg.L2 = &Level{
		Cache:     cache.Config{Name: "L2", Size: 4 << 10, Ways: 4, LineSize: 64, Policy: cache.LRU},
		HitCycles: 10,
		Shared:    true,
	}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := flat().Validate(); err != nil {
		t.Fatalf("flat config invalid: %v", err)
	}
	bad := flat()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores accepted")
	}
	bad = flat()
	bad.MissOverlap = 0
	if bad.Validate() == nil {
		t.Error("zero overlap accepted")
	}
	bad = flat()
	bad.MissOverlap = 1.5
	if bad.Validate() == nil {
		t.Error("overlap > 1 accepted")
	}
	bad = flat()
	bad.DRAM.LineBytes = 128
	if bad.Validate() == nil {
		t.Error("mismatched DRAM line accepted")
	}
	bad = flat()
	bad.L3 = &Level{Cache: cache.Config{Name: "L3", Size: 4 << 10, Ways: 4, LineSize: 64}, HitCycles: 1}
	if bad.Validate() == nil {
		t.Error("L3 without L2 accepted")
	}
	bad = withL2(1)
	bad.L2.Cache.LineSize = 128
	if bad.Validate() == nil {
		t.Error("mismatched L2 line accepted")
	}
}

func TestTranslateCosts(t *testing.T) {
	cfg := flat()
	cfg.JTLB = &tlb.Config{Name: "jtlb", Entries: 16, Ways: 2, PageShift: 12}
	h := MustNew(cfg)
	// Cold page: uTLB miss, jTLB miss → penalty + 3×50 walk.
	if got := h.Translate(0, 0x1000); got != 5+150 {
		t.Fatalf("cold translate = %v, want 155", got)
	}
	// Warm page: free.
	if got := h.Translate(0, 0x1008); got != 0 {
		t.Fatalf("warm translate = %v, want 0", got)
	}
	// Evict from the 4-entry uTLB but not the 16-entry jTLB: penalty only.
	for p := uint64(2); p < 7; p++ {
		h.Translate(0, p<<12)
	}
	if got := h.Translate(0, 0x1000); got != 5 {
		t.Fatalf("jTLB-hit translate = %v, want 5", got)
	}
	if _, walks := h.TLBStats(0); walks == 0 {
		t.Fatal("no walks recorded")
	}
}

func TestL1HitAndTouch(t *testing.T) {
	h := MustNew(flat())
	if h.L1Hit(0, 0) {
		t.Fatal("cold L1 hit")
	}
	h.MissPath(0, 0, 0, false)
	if !h.L1Hit(0, 0) {
		t.Fatal("line not installed by miss path")
	}
	if got := h.TouchL1(0, 0, false); got != 1 {
		t.Fatalf("TouchL1 = %v, want 1", got)
	}
	if st := h.L1Stats(0); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("L1 stats = %+v", st)
	}
}

func TestMissPathNoL2GoesToDRAM(t *testing.T) {
	h := MustNew(flat())
	done := h.MissPath(0, 0, 0, false)
	// DRAM: 100 latency + 64 transfer, plus 1 cycle L1 fill cost.
	if done != 165 {
		t.Fatalf("miss done = %v, want 165", done)
	}
	if h.DRAM().Stats.Reads != 1 {
		t.Fatalf("DRAM reads = %d, want 1", h.DRAM().Stats.Reads)
	}
}

func TestMissPathL2Hit(t *testing.T) {
	h := MustNew(withL2(1))
	h.MissPath(0, 0, 0, false) // install into L1 and L2
	// Evict line 0 from L1 by filling its set (1 KiB, 2-way, 8 sets:
	// same set every 512 bytes).
	h.MissPath(0, 1000, 512, false)
	h.MissPath(0, 2000, 1024, false)
	if h.L1Hit(0, 0) {
		t.Fatal("line 0 still in L1; conflict eviction expected")
	}
	reads := h.DRAM().Stats.Reads
	done := h.MissPath(0, 3000, 0, false)
	// L2 hit: 10 cycles + 1 L1 fill = 11 beyond `now`.
	if done != 3011 {
		t.Fatalf("L2-hit miss done = %v, want 3011", done)
	}
	if h.DRAM().Stats.Reads != reads {
		t.Fatal("L2 hit went to DRAM")
	}
}

func TestDirtyEvictionPostsWriteback(t *testing.T) {
	h := MustNew(flat())
	h.MissPath(0, 0, 0, true) // dirty line 0 in set 0
	h.MissPath(0, 1000, 512, false)
	h.MissPath(0, 2000, 1024, false) // evicts one of the set-0 lines
	if h.DRAM().Stats.Writes == 0 {
		t.Fatal("dirty eviction produced no DRAM write")
	}
}

func TestPrefetchShortensDemandMiss(t *testing.T) {
	cfg := flat()
	cfg.NewPrefetcher = func() prefetch.Prefetcher {
		return prefetch.NewStride(prefetch.StrideConfig{
			LineSize: 64, TrainThreshold: 2, InitDistance: 4, MaxDistance: 4})
	}
	pf := MustNew(cfg)
	base := MustNew(flat())

	walk := func(h *Hierarchy) float64 {
		now := 0.0
		for i := 0; i < 64; i++ {
			addr := uint64(i) * 64
			now = h.MissPath(0, now+1, addr, false)
		}
		return now
	}
	tPF, tBase := walk(pf), walk(base)
	if tPF >= tBase {
		t.Fatalf("prefetch did not help: %v >= %v", tPF, tBase)
	}
	if pf.PrefetchFills == 0 {
		t.Fatal("no prefetch fills recorded")
	}
}

func TestPrefetchConsumesChannelTime(t *testing.T) {
	cfg := flat()
	cfg.DRAM.BytesPerCycle = 0.1 // starved channel, VisionFive-style
	cfg.NewPrefetcher = func() prefetch.Prefetcher {
		return prefetch.NewStride(prefetch.StrideConfig{
			LineSize: 64, TrainThreshold: 1, InitDistance: 8, MaxDistance: 8})
	}
	pf := MustNew(cfg)
	noPF := cfg
	noPF.NewPrefetcher = nil
	base := MustNew(noPF)

	// A stride-2-line stream: the prefetcher fetches useless intermediate
	// bandwidth... actually it fetches the right lines but far ahead,
	// concentrating queueing. Compare a *short* burst where overshoot
	// fills the queue: 8 demanded lines, prefetcher speculates 8 more.
	walk := func(h *Hierarchy) float64 {
		now := 0.0
		for i := 0; i < 8; i++ {
			now = h.MissPath(0, now, uint64(i)*64, false)
		}
		// One extra access off-stream measures queue pollution.
		return h.MissPath(0, now, 1<<20, false)
	}
	tPF, tBase := walk(pf), walk(base)
	if tPF <= tBase {
		t.Fatalf("starved channel: prefetch overshoot should delay the off-stream access (%v <= %v)", tPF, tBase)
	}
}

func TestSharedOnMiss(t *testing.T) {
	if MustNew(flat()).SharedOnMiss() {
		t.Error("single-core machine claims shared misses")
	}
	if !MustNew(withL2(2)).SharedOnMiss() {
		t.Error("2-core machine does not claim shared misses")
	}
}

func TestSharedVsPrivateL2(t *testing.T) {
	shared := withL2(2)
	h := MustNew(shared)
	// Core 0 fills a line; core 1 must hit the *shared* L2.
	h.MissPath(0, 0, 0, false)
	reads := h.DRAM().Stats.Reads
	h.MissPath(1, 1000, 0, false)
	if h.DRAM().Stats.Reads != reads {
		t.Error("shared L2 did not serve core 1")
	}

	priv := withL2(2)
	priv.L2.Shared = false
	h2 := MustNew(priv)
	h2.MissPath(0, 0, 0, false)
	reads = h2.DRAM().Stats.Reads
	h2.MissPath(1, 1000, 0, false)
	if h2.DRAM().Stats.Reads == reads {
		t.Error("private L2 served the other core")
	}
}

func TestL3Path(t *testing.T) {
	cfg := withL2(1)
	cfg.L3 = &Level{
		Cache:     cache.Config{Name: "L3", Size: 16 << 10, Ways: 4, LineSize: 64, Policy: cache.LRU},
		HitCycles: 20,
		Shared:    true,
	}
	h := MustNew(cfg)
	done := h.MissPath(0, 0, 0, false)
	// DRAM (164) + L2 (10) + L3 (20) + L1 fill (1) = 195.
	if done != 195 {
		t.Fatalf("cold L3-path miss = %v, want 195", done)
	}
}

func TestReset(t *testing.T) {
	h := MustNew(withL2(2))
	h.MissPath(0, 0, 0, true)
	h.Translate(0, 0)
	h.Reset()
	if h.DRAM().Stats.Reads != 0 {
		t.Error("DRAM stats survived reset")
	}
	if h.L1Hit(0, 0) {
		t.Error("L1 content survived reset")
	}
	if st := h.L1Stats(0); st.Accesses() != 0 {
		t.Error("L1 stats survived reset")
	}
	if h.PrefetchFills != 0 {
		t.Error("prefetch fill count survived reset")
	}
}

func TestMissOverlapAccessor(t *testing.T) {
	cfg := flat()
	cfg.MissOverlap = 0.25
	if got := MustNew(cfg).MissOverlap(); got != 0.25 {
		t.Fatalf("MissOverlap() = %v", got)
	}
}

// TestAccessLinesEquivalence pins AccessLines at the hierarchy level against
// the per-line Access loop it batches: identical times and per-line charge
// sequences, with and without a prefetcher, reads and writes, across page
// boundaries. (The sim-level oracle and property tests cover the full
// machinery; this is the component-level contract.)
func TestAccessLinesEquivalence(t *testing.T) {
	withPref := flat()
	withPref.Prefetch = &prefetch.StrideConfig{LineSize: 64, Streams: 4,
		TrainThreshold: 2, InitDistance: 2, MaxDistance: 8}
	for name, cfg := range map[string]Config{"flat": flat(), "pref": withPref, "l2": withL2(1)} {
		for _, write := range []bool{false, true} {
			ref := MustNew(cfg)
			got := MustNew(cfg)
			const perLine, nLines = 8, 400 // > 6 pages
			const issue = 1.0
			addr, refNow := uint64(4096), 0.0
			for i := 0; i < nLines; i++ {
				refNow = ref.Access(0, refNow, addr, write, issue)
				for e := 1; e < perLine; e++ {
					refNow += issue
				}
				addr += 64
			}
			gotNow := got.AccessLines(0, 0, 4096, nLines, perLine, write, issue, nil, nil)
			if gotNow != refNow {
				t.Errorf("%s/write=%v: time diverges: got %v want %v", name, write, gotNow, refNow)
			}
			if g, r := got.L1Stats(0), ref.L1Stats(0); g != r {
				t.Errorf("%s/write=%v: L1 stats diverge: got %+v want %+v", name, write, g, r)
			}
			gt, gw := got.TLBStats(0)
			rt, rw := ref.TLBStats(0)
			if gt != rt || gw != rw {
				t.Errorf("%s/write=%v: TLB stats diverge: got %+v/%d want %+v/%d", name, write, gt, gw, rt, rw)
			}
			if got.DRAM().Stats != ref.DRAM().Stats {
				t.Errorf("%s/write=%v: DRAM stats diverge: got %+v want %+v",
					name, write, got.DRAM().Stats, ref.DRAM().Stats)
			}
			if got.PrefetchFills != ref.PrefetchFills {
				t.Errorf("%s/write=%v: prefetch fills diverge: got %d want %d",
					name, write, got.PrefetchFills, ref.PrefetchFills)
			}
		}
	}
}

// TestBatchLinesGuard covers the ineligible geometry: a line larger than the
// translation window disables the batched pipeline, and AccessLines refuses
// to run rather than mis-batching.
func TestBatchLinesGuard(t *testing.T) {
	cfg := flat()
	cfg.LineSize = 8192 // larger than the 4 KiB window
	cfg.L1.LineSize = 8192
	cfg.L1.Size = 64 << 10
	cfg.DRAM.LineBytes = 8192
	h := MustNew(cfg)
	if h.BatchLines() {
		t.Fatal("BatchLines should be false for lines larger than a page")
	}
	defer func() {
		if recover() == nil {
			t.Error("AccessLines should panic on an ineligible hierarchy")
		}
	}()
	h.AccessLines(0, 0, 0, 1, 1, false, 1, nil, nil)
}
