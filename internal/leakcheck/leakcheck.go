// Package leakcheck provides the goroutine-leak assertion the robustness
// and chaos suites wrap around cancellation, drain and fault-injection
// tests: snapshot the goroutine count up front, and at test end poll until
// the count returns to the baseline or a timeout expires — polling, because
// legitimately finishing goroutines (an abandoned workload draining after
// its release channel closes) need a moment to unwind.
//
// The check is count-based, not stack-based: cheap, dependency-free, and
// precise enough when tests hold the baseline before spawning anything.
// On failure it dumps all goroutine stacks so the leak is identifiable.
package leakcheck

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the checker needs; taking the interface
// keeps the testing package out of non-test import graphs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// Check snapshots the current goroutine count and returns a function that
// asserts the count has returned to (at most) the baseline, polling for up
// to 5 seconds. Use it around the suspect region:
//
//	assert := leakcheck.Check(t)
//	... run, cancel, drain ...
//	assert()
func Check(tb TB) func() {
	tb.Helper()
	base := runtime.NumGoroutine()
	return func() {
		tb.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		tb.Errorf("goroutine leak: %d goroutines, baseline %d\n%s", n, base, buf)
	}
}

// Checked runs the check automatically at test cleanup — for tests whose
// entire body is the suspect region.
func Checked(tb TB) {
	tb.Helper()
	assert := Check(tb)
	tb.Cleanup(assert)
}
