package sim

// Bulk range APIs: line-granular charging of unit-stride access streams.
//
// A kernel inner loop that touches elements one at a time pays the full
// lookup machinery per element. The range APIs charge the same accesses
// line-at-a-time, and feed eligible runs — unit-stride, full cache lines,
// page-bounded windows — to the hierarchy's batched miss pipeline
// (hier.AccessLines), which hoists translation, prefetcher detection and
// MSHR/DRAM bookkeeping out of the per-miss loop; partial head/tail lines
// and ineligible patterns fall back to the per-line loop. Both paths are
// defined to be *exactly* equivalent to the corresponding per-element Touch
// loop — same simulated cycles bit for bit, same cache/TLB/DRAM statistics,
// same replacement and prefetcher state — which the oracle and property
// tests in range_test.go and the kernel packages assert on every device
// preset.

// Span describes one unit-stride element stream inside a TouchSpans batch.
type Span struct {
	Addr   uint64 // simulated byte address of the stream's element 0
	Stride int64  // byte distance between consecutive elements
	Bytes  int    // element width in bytes (sets the SIMD issue rate)
	Write  bool
}

// TouchRange charges n consecutive elemBytes-wide accesses starting at addr,
// equivalent to calling Touch(addr+i*elemBytes, elemBytes, write) for every
// i in [0,n). Elements sharing a cache line are satisfied by the L0 line
// filter after the line's first access, so the full lookup path runs once
// per line touched — and full-line stretches run through the batched miss
// pipeline, once per *call*.
func (c *Core) TouchRange(addr uint64, elemBytes, n int, write bool) {
	if n <= 0 {
		return
	}
	if write {
		c.Stores += uint64(n)
	} else {
		c.Loads += uint64(n)
	}
	c.touchRun(addr, uint64(elemBytes), n, write, c.issueCost(elemBytes), nil)
}

// touchRun charges n unit-stride elemBytes-wide accesses from addr, each
// element followed by the post charges — exactly the per-element loop
// { Touch(addr+i*step); for _, p := range post { Cycles(p) } }. Access
// counters are the caller's. The middle full-line stretch goes through
// hier.AccessLines when the element size divides the line; the partial
// head and tail (and a first middle line the L0 filter would satisfy)
// take the per-line slow path.
func (c *Core) touchRun(addr uint64, step uint64, n int, write bool, issue float64, post []float64) {
	lineSize := c.lineMask + 1
	perLine := 0
	if lineSize%step == 0 {
		perLine = int(lineSize / step)
	}
	if perLine > 0 && c.batch {
		// Elements before the first whole-line span: when the stream enters
		// its first line at an offset of a whole element stride or more, that
		// line holds fewer than perLine elements.
		head := 0
		if off := addr & c.lineMask; off >= step {
			head = int((lineSize - off + step - 1) / step)
			if head > n {
				head = n
			}
		}
		if mid := (n - head) / perLine; mid > 0 {
			if head > 0 {
				c.touchSlow(addr, step, head, write, issue, post, perLine)
				addr += uint64(head) * step
			}
			n -= head
			// The L0 line filter may satisfy the first middle line (the
			// caller touched it just before); the batched pipeline starts
			// after it. Later middle lines can never match — each access
			// leaves the filter on its own, different line.
			line := addr &^ c.lineMask
			want, key := line|1, c.lastKey&^2
			if write {
				want, key = line|3, c.lastKey
			}
			if key == want {
				c.touchSlow(addr, step, perLine, write, issue, post, perLine)
				addr += uint64(perLine) * step
				n -= perLine
				mid--
			}
			if mid > 0 {
				c.now = c.h.AccessLines(c.id, c.now, addr, mid, perLine, write, issue, post, c.ord)
				last := (addr &^ c.lineMask) + uint64(mid-1)*lineSize
				c.lastKey = last | 1
				if write {
					c.lastKey = last | 3
				}
				addr += uint64(mid) * uint64(perLine) * step
				n -= mid * perLine
			}
		}
	}
	c.touchSlow(addr, step, n, write, issue, post, perLine)
}

// touchSlow is the per-line fallback: the L0 filter check and one full
// lookup per line touched, with issue and post charges accumulated element
// by element (repeated addition, not multiplication: bit-identical float
// rounding to the per-element path is part of the API contract).
func (c *Core) touchSlow(addr uint64, step uint64, n int, write bool, issue float64, post []float64, perLine int) {
	lineSize := c.lineMask + 1
	for n > 0 {
		line := addr &^ c.lineMask
		// Elements whose start address lies within this line.
		var span int
		if perLine > 0 && addr == line {
			span = perLine
		} else {
			span = int((line + lineSize - addr + step - 1) / step)
		}
		if span > n {
			span = n
		}
		want := line | 1
		key := c.lastKey &^ 2
		if write {
			want, key = line|3, c.lastKey
		}
		first := 0
		if key != want {
			c.access(addr, line, write, issue)
			first = 1
			for _, p := range post {
				c.now += p
			}
		}
		for k := first; k < span; k++ {
			c.now += issue
			for _, p := range post {
				c.now += p
			}
		}
		addr += uint64(span) * step
		n -= span
	}
}

// TouchSpans charges n interleaved element accesses across several streams:
// for each index i in [0,n), every span's element i is touched in span
// order, then each cost in post is added to the core clock. It is exactly
// equivalent to the per-element loop
//
//	for i := 0; i < n; i++ {
//	    for _, s := range spans { c.Touch(s.Addr+i*s.Stride, s.Bytes, s.Write) }
//	    for _, p := range post  { c.Cycles(p) }
//	}
//
// and exists because kernel loops interleave their arrays (load b[i], load
// c[i], store a[i], …) — per-array bursts would reorder the access stream
// and change the simulated timing. post carries the loop body's non-memory
// charges (Flops/IntOps costs precomputed via FlopCycles and friends).
// Callers may reuse the spans slice across calls, mutating Addr in place.
// A single forward unit-stride span has no interleaving to preserve and
// rides the batched pipeline like TouchRange.
func (c *Core) TouchSpans(n int, spans []Span, post []float64) {
	if n <= 0 {
		return
	}
	if len(spans) == 1 && spans[0].Stride > 0 && spans[0].Stride == int64(spans[0].Bytes) {
		s := spans[0]
		if s.Write {
			c.Stores += uint64(n)
		} else {
			c.Loads += uint64(n)
		}
		c.touchRun(s.Addr, uint64(s.Bytes), n, s.Write, c.issueCost(s.Bytes), post)
		return
	}
	var issueBuf [4]float64
	issues := issueBuf[:0]
	if len(spans) > len(issueBuf) {
		issues = make([]float64, 0, len(spans))
	}
	for s := range spans {
		if spans[s].Write {
			c.Stores += uint64(n)
		} else {
			c.Loads += uint64(n)
		}
		issues = append(issues, c.issueCost(spans[s].Bytes))
	}
	for i := 0; i < n; i++ {
		for s := range spans {
			sp := &spans[s]
			addr := sp.Addr + uint64(int64(i)*sp.Stride)
			line := addr &^ c.lineMask
			if sp.Write {
				if c.lastKey == line|3 {
					c.now += issues[s]
					continue
				}
			} else if c.lastKey&^2 == line|1 {
				c.now += issues[s]
				continue
			}
			c.access(addr, line, sp.Write, issues[s])
		}
		for _, p := range post {
			c.now += p
		}
	}
}
