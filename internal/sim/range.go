package sim

// Bulk range APIs: line-granular charging of unit-stride access streams.
//
// A kernel inner loop that touches elements one at a time pays the full
// lookup machinery per element. The range APIs charge the same accesses
// line-at-a-time: the per-line state (the L0 filter check, the fused
// TLB+L1 lookup on a line change) runs once per line, and the per-element
// issue cost is accumulated directly. They are defined to be *exactly*
// equivalent to the corresponding per-element Touch loop — same simulated
// cycles bit for bit, same cache/TLB/DRAM statistics, same replacement
// state — which the oracle tests in range_test.go and the kernel packages
// assert on every device preset.

// Span describes one unit-stride element stream inside a TouchSpans batch.
type Span struct {
	Addr   uint64 // simulated byte address of the stream's element 0
	Stride int64  // byte distance between consecutive elements
	Bytes  int    // element width in bytes (sets the SIMD issue rate)
	Write  bool
}

// TouchRange charges n consecutive elemBytes-wide accesses starting at addr,
// equivalent to calling Touch(addr+i*elemBytes, elemBytes, write) for every
// i in [0,n). Elements sharing a cache line are satisfied by the L0 line
// filter after the line's first access, so the full lookup path runs once
// per line touched.
func (c *Core) TouchRange(addr uint64, elemBytes, n int, write bool) {
	if n <= 0 {
		return
	}
	if write {
		c.Stores += uint64(n)
	} else {
		c.Loads += uint64(n)
	}
	issue := c.issueCost(elemBytes)
	step := uint64(elemBytes)
	lineSize := c.lineMask + 1
	// perLine is the steady-state element count per line once the stream is
	// aligned; 0 when the element size does not divide the line (then the
	// per-line count is recomputed by division each time).
	perLine := 0
	if lineSize%step == 0 {
		perLine = int(lineSize / step)
	}
	for n > 0 {
		line := addr &^ c.lineMask
		// Elements whose start address lies within this line.
		var span int
		if perLine > 0 && addr == line {
			span = perLine
		} else {
			span = int((line + lineSize - addr + step - 1) / step)
		}
		if span > n {
			span = n
		}
		want := line | 1
		key := c.lastKey &^ 2
		if write {
			want, key = line|3, c.lastKey
		}
		first := 0
		if key != want {
			c.access(addr, line, write, issue)
			first = 1
		}
		// Issue costs accumulate by repeated addition, not span*issue: the
		// per-element path adds them one at a time, and bit-identical float
		// rounding is part of the API contract.
		for k := first; k < span; k++ {
			c.now += issue
		}
		addr += uint64(span) * step
		n -= span
	}
}

// TouchSpans charges n interleaved element accesses across several streams:
// for each index i in [0,n), every span's element i is touched in span
// order, then each cost in post is added to the core clock. It is exactly
// equivalent to the per-element loop
//
//	for i := 0; i < n; i++ {
//	    for _, s := range spans { c.Touch(s.Addr+i*s.Stride, s.Bytes, s.Write) }
//	    for _, p := range post  { c.Cycles(p) }
//	}
//
// and exists because kernel loops interleave their arrays (load b[i], load
// c[i], store a[i], …) — per-array bursts would reorder the access stream
// and change the simulated timing. post carries the loop body's non-memory
// charges (Flops/IntOps costs precomputed via FlopCycles and friends).
// Callers may reuse the spans slice across calls, mutating Addr in place.
func (c *Core) TouchSpans(n int, spans []Span, post []float64) {
	if n <= 0 {
		return
	}
	var issueBuf [4]float64
	issues := issueBuf[:0]
	if len(spans) > len(issueBuf) {
		issues = make([]float64, 0, len(spans))
	}
	for s := range spans {
		if spans[s].Write {
			c.Stores += uint64(n)
		} else {
			c.Loads += uint64(n)
		}
		issues = append(issues, c.issueCost(spans[s].Bytes))
	}
	for i := 0; i < n; i++ {
		for s := range spans {
			sp := &spans[s]
			addr := sp.Addr + uint64(int64(i)*sp.Stride)
			line := addr &^ c.lineMask
			if sp.Write {
				if c.lastKey == line|3 {
					c.now += issues[s]
					continue
				}
			} else if c.lastKey&^2 == line|1 {
				c.now += issues[s]
				continue
			}
			c.access(addr, line, sp.Write, issues[s])
		}
		for _, p := range post {
			c.now += p
		}
	}
}
