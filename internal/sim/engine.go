package sim

import (
	"runtime"
	"sync"
)

// engine serializes shared-state operations (shared caches, DRAM channels,
// dynamic-schedule work stealing) across the goroutines that execute the
// simulated cores, granting access in global simulated-time order with core
// ID as the deterministic tie-breaker. This is a conservative discrete-event
// scheme: a core may only enter a shared section when every other live core
// is known to have advanced at least as far, which the monotonicity of each
// core's clock guarantees.
//
// Wakeups are targeted: at any instant at most one core is eligible (the
// global (time, ID) order is total), so every state change wakes exactly
// that core instead of broadcasting to all waiters — the difference between
// O(n) and O(n²) futex traffic per shared event on a 10-core device.
type engine struct {
	mu sync.Mutex
	// bound[i] is a lower bound on core i's simulated time: exact while the
	// core is blocked at a sync point, stale-but-valid while it runs local
	// (per-core) work.
	bound []float64
	// waiting[i] is true while core i is blocked at a sync point.
	waiting []bool
	// done[i] is true once core i finished its body.
	done []bool
	// wake[i] carries at most one pending wakeup token for core i.
	wake []chan struct{}
}

func newEngine(n int) *engine {
	e := &engine{
		bound:   make([]float64, n),
		waiting: make([]bool, n),
		done:    make([]bool, n),
		wake:    make([]chan struct{}, n),
	}
	for i := range e.wake {
		e.wake[i] = make(chan struct{}, 1)
	}
	return e
}

// isMin reports whether core id, at time t, is the globally earliest live
// core, with ties broken toward the smaller ID. A core that is running local
// work only publishes a lower bound; if that bound could still produce an
// earlier (or equally early, smaller-ID) shared event, id must wait — this
// is what makes grant order a pure function of simulated time, independent
// of host goroutine scheduling. Caller holds e.mu.
func (e *engine) isMin(id int, t float64) bool {
	for j := range e.bound {
		if j == id || e.done[j] {
			continue
		}
		if e.bound[j] < t || (e.bound[j] == t && j < id) {
			return false
		}
	}
	return true
}

// wakeEligibleLocked wakes the single waiter (if any) that now holds the
// global minimum. Caller holds e.mu.
func (e *engine) wakeEligibleLocked() {
	for j := range e.bound {
		if !e.waiting[j] || e.done[j] {
			continue
		}
		if e.isMin(j, e.bound[j]) {
			select {
			case e.wake[j] <- struct{}{}:
			default: // token already pending
			}
			return // the order is total: at most one eligible waiter
		}
	}
}

// enter blocks core id until it holds the global minimum at time t, then
// claims the shared section. Every shared mutation between enter and leave
// is therefore globally ordered by (time, core ID).
func (e *engine) enter(id int, t float64) {
	e.mu.Lock()
	e.bound[id] = t
	e.waiting[id] = true
	// Raising this core's bound may be exactly what an earlier-ID waiter at
	// the same or later time was blocked on.
	e.wakeEligibleLocked()
	// Shared sections are short (a few cache-model operations), so the
	// predecessor usually leaves within microseconds: spin briefly before
	// paying the futex round-trip of a channel park. The grant condition is
	// identical either way, so simulated results do not depend on this.
	for spin := 0; spin < 8 && !e.isMin(id, t); spin++ {
		e.mu.Unlock()
		runtime.Gosched()
		e.mu.Lock()
	}
	for !e.isMin(id, t) {
		e.mu.Unlock()
		<-e.wake[id]
		e.mu.Lock()
	}
	e.waiting[id] = false
	// Drain any stale token so a future wait doesn't wake spuriously early
	// (harmless, but avoids a wasted loop iteration).
	select {
	case <-e.wake[id]:
	default:
	}
	e.mu.Unlock()
}

// leave publishes the core's post-section time and hands the section to the
// next core in simulated-time order.
func (e *engine) leave(id int, t float64) {
	e.mu.Lock()
	e.bound[id] = t
	e.wakeEligibleLocked()
	e.mu.Unlock()
}

// finish marks the core complete so it no longer constrains others.
func (e *engine) finish(id int) {
	e.mu.Lock()
	e.done[id] = true
	e.waiting[id] = false
	e.wakeEligibleLocked()
	e.mu.Unlock()
}
