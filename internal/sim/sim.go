// Package sim executes kernels against a simulated machine.
//
// A Machine owns a device Spec (internal/machine), its memory hierarchy
// (internal/hier), a simulated physical address space, and a monotonically
// advancing global clock. Kernels are ordinary Go functions that read and
// write simulated arrays (F64/F32); each element access is charged to the
// executing Core's clock through the hierarchy's timing path, while the data
// itself lives in ordinary Go slices so results stay functionally correct
// and testable.
//
// Parallel regions run one goroutine per simulated core under a conservative
// discrete-event engine that orders all shared-state events by simulated
// time, making every run bit-for-bit deterministic regardless of host
// scheduling.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package sim

import (
	"fmt"

	"riscvmem/internal/hier"
	"riscvmem/internal/machine"
	"riscvmem/internal/units"
)

const pageSize = 4096

// Machine is a simulated device instance.
type Machine struct {
	spec machine.Spec
	h    *hier.Hierarchy
	// clock is the global epoch: each Run starts its cores here and pushes
	// it to the region's completion time, so DRAM queue state and cache
	// contents stay consistent across successive regions of one kernel.
	clock float64
	next  uint64 // bump allocator cursor
	used  int64  // bytes allocated

	// Hot-path constants hoisted out of the per-access loop.
	lineMask    uint64  // LineSize-1
	l1HitCycles float64 // hierarchy L1 hit cost
	missOverlap float64 // exposed fraction of miss latency

	// identity memoizes spec.Identity() — a pure (and not free: it boxes a
	// ~30-field struct) function of the immutable spec, recomputed on every
	// pool release before this cache existed.
	identity any
}

// New instantiates a machine from a validated spec.
func New(spec machine.Spec) (*Machine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Machine{
		spec: spec, h: spec.NewHierarchy(), next: pageSize,
		lineMask:    uint64(spec.Mem.LineSize - 1),
		l1HitCycles: spec.Mem.L1HitCycles,
		missOverlap: spec.Mem.MissOverlap,
		identity:    spec.Identity(),
	}, nil
}

// MustNew is New but panics on invalid specs (the built-in presets are
// covered by tests).
func MustNew(spec machine.Spec) *Machine {
	m, err := New(spec)
	if err != nil {
		panic(err)
	}
	return m
}

// Spec returns the device description.
func (m *Machine) Spec() machine.Spec { return m.spec }

// Identity returns the memoized machine.Spec.Identity() of the immutable
// spec — the pooling key the batch Runner (internal/run) uses on every
// acquire/release.
func (m *Machine) Identity() any { return m.identity }

// Reset restores the machine to its power-on state: the global clock returns
// to zero, the allocator rewinds, and every structural component of the
// memory hierarchy (caches, TLBs, prefetchers, MSHRs, DRAM queues) and all
// statistics reset. A reset machine is bit-for-bit indistinguishable from a
// freshly constructed one — the property the pooled Runner (internal/run)
// relies on to reuse machines across jobs without re-allocation.
//
// Arrays allocated before the reset are invalidated: their simulated
// addresses will be handed out again. Allocate anew after Reset.
func (m *Machine) Reset() {
	m.clock = 0
	m.next = pageSize
	m.used = 0
	m.h.Reset()
}

// Hier exposes the memory hierarchy (stats inspection, ablations).
func (m *Machine) Hier() *hier.Hierarchy { return m.h }

// Now returns the machine's global clock in cycles.
func (m *Machine) Now() float64 { return m.clock }

// Allocated returns total simulated bytes allocated so far.
func (m *Machine) Allocated() int64 { return m.used }

// alloc reserves n bytes of simulated address space, page-aligned, and
// errors when the device's RAM would be exceeded.
func (m *Machine) alloc(n int64) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("sim: allocation of %d bytes", n)
	}
	if !m.spec.Fits(m.used + n) {
		return 0, fmt.Errorf("sim: %s does not fit in %s RAM of %s",
			units.Bytes(m.used+n), units.Bytes(m.spec.RAMBytes), m.spec.Name)
	}
	base := m.next
	m.next += (uint64(n) + pageSize - 1) / pageSize * pageSize
	m.used += n
	return base, nil
}

// AllocRaw reserves n bytes of simulated address space (page-aligned) for
// callers that keep their own backing store, such as the RISC-V emulator's
// flat memory. It errors when the device's RAM would be exceeded.
func (m *Machine) AllocRaw(n int64) (uint64, error) { return m.alloc(n) }

// Result reports one executed region.
type Result struct {
	Cycles  float64   // wall time of the region in core cycles
	PerCore []float64 // per-core busy time
}

// Seconds converts the region's wall time at the machine's clock rate.
func (r Result) Seconds(spec machine.Spec) float64 {
	return units.Seconds(r.Cycles, spec.FreqGHz)
}

// Run executes body once per simulated core (cores index 0..n-1) and returns
// the region wall time: the maximum core completion time minus the region
// start. n must not exceed the device's core count.
func (m *Machine) Run(n int, body func(c *Core)) Result {
	if n < 1 || n > m.spec.Cores {
		panic(fmt.Sprintf("sim: %d cores requested on %d-core %s", n, m.spec.Cores, m.spec.Name))
	}
	start := m.clock
	cores := make([]*Core, n)
	var e *engine
	if n > 1 {
		e = newEngine(n)
	}
	var ord hier.Order
	if e != nil {
		ord = engineOrder{e: e}
	}
	for i := range cores {
		cores[i] = &Core{
			id: i, m: m, h: m.h, e: e, ord: ord, now: start,
			lineMask:    m.lineMask,
			issueScalar: m.l1HitCycles,
			autoVec:     m.spec.AutoVecBytes > 0,
			batch:       m.h.BatchLines(),
		}
	}
	if n == 1 {
		body(cores[0])
	} else {
		done := make(chan int, n)
		for i := range cores {
			go func(c *Core) {
				body(c)
				c.e.finish(c.id)
				done <- c.id
			}(cores[i])
		}
		for range cores {
			<-done
		}
	}
	res := Result{PerCore: make([]float64, n)}
	end := start
	for i, c := range cores {
		res.PerCore[i] = c.now - start
		if c.now > end {
			end = c.now
		}
	}
	res.Cycles = end - start
	m.clock = end
	return res
}

// RunSeq executes body on core 0 alone.
func (m *Machine) RunSeq(body func(c *Core)) Result {
	return m.Run(1, body)
}
