package sim

import "sync"

// Schedule selects how ParallelFor distributes iterations, mirroring
// OpenMP's schedule(static) and schedule(dynamic) clauses — the distinction
// behind the paper's "Dynamic" transposition variant.
type Schedule int

const (
	// Static splits the iteration space into one contiguous range per core.
	Static Schedule = iota
	// Dynamic hands out chunks of the given size on demand; cores that
	// finish early (short rows of the triangular matrix) grab more work.
	Dynamic
)

// dynGrabCycles is the simulated cost of one dynamic-schedule work grab
// (atomic increment plus contention); charged per chunk.
const dynGrabCycles = 40

// dispenser is the shared chunk counter for dynamic scheduling. Grabs are
// serialized through the engine, so assignment order follows simulated time
// deterministically.
type dispenser struct {
	mu    sync.Mutex
	next  int
	limit int
}

func (d *dispenser) grab(chunk int) (lo, hi int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.next >= d.limit {
		return 0, 0, false
	}
	lo = d.next
	hi = lo + chunk
	if hi > d.limit {
		hi = d.limit
	}
	d.next = hi
	return lo, hi, true
}

// ParallelFor runs body for every i in [0,n) across `cores` simulated cores
// under the given schedule. chunk applies to Dynamic (values < 1 become 1).
// It returns the region result (wall time = slowest core).
func (m *Machine) ParallelFor(cores, n int, sched Schedule, chunk int, body func(c *Core, i int)) Result {
	return m.ParallelRange(cores, n, sched, chunk, func(c *Core, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(c, i)
		}
	})
}

// ParallelRange is ParallelFor at range granularity: body receives each
// contiguous index range [lo,hi) its core is scheduled (the whole static
// share, or one dynamic chunk per grab). Scheduling, grab costs and event
// ordering are identical to ParallelFor; the range form exists so bodies
// can charge their memory traffic through the bulk range APIs
// (Core.TouchRange / TouchSpans) instead of element by element.
func (m *Machine) ParallelRange(cores, n int, sched Schedule, chunk int, body func(c *Core, lo, hi int)) Result {
	if cores > m.spec.Cores {
		cores = m.spec.Cores
	}
	if cores < 1 {
		cores = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	switch sched {
	case Dynamic:
		d := &dispenser{limit: n}
		return m.Run(cores, func(c *Core) {
			for {
				// The grab is a shared event: order it like any other.
				if c.e != nil {
					c.e.enter(c.id, c.now)
				}
				lo, hi, ok := d.grab(chunk)
				c.now += dynGrabCycles
				if c.e != nil {
					c.e.leave(c.id, c.now)
				}
				if !ok {
					return
				}
				body(c, lo, hi)
			}
		})
	default: // Static
		return m.Run(cores, func(c *Core) {
			body(c, c.id*n/cores, (c.id+1)*n/cores)
		})
	}
}
