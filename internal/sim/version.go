package sim

// ModelVersion versions the simulator's *behavior*: the mapping from
// (device parameters, workload configuration) to golden cycle counts and
// memory-system statistics. It namespaces every entry of the persistent
// memo store (internal/memostore, via run.CacheVersion), which is what
// makes on-disk results trustworthy across restarts and deploys.
//
// The contract: any change that legitimately alters golden cycle counts —
// a timing-model fix, a new cost term, a changed replacement-policy detail —
// MUST bump this constant. The bump cleanly orphans every previously
// persisted result (old entries live under the old version namespace, are
// never looked up again, and `memo gc` reclaims them); forgetting the bump
// would let a restarted daemon serve results from the old model as if the
// change had never happened.
//
// Pure refactors, API changes, and performance work that the oracle tests
// pin as bit-identical do NOT bump it — that is the point: the fast paths
// of PRs 1/5 would have invalidated nothing.
const ModelVersion = "1"
