package sim

import (
	"math"
	"testing"
	"testing/quick"

	"riscvmem/internal/machine"
)

func TestAllocRespectsRAM(t *testing.T) {
	m := MustNew(machine.MangoPiD1()) // 1 GiB
	if _, err := m.NewF64(16384 * 16384); err == nil {
		t.Fatal("2 GiB allocation accepted on 1 GiB device")
	}
	a, err := m.NewF64(1024)
	if err != nil {
		t.Fatalf("small allocation failed: %v", err)
	}
	if a.Len() != 1024 {
		t.Fatalf("Len = %d", a.Len())
	}
	if m.Allocated() != 1024*8 {
		t.Fatalf("Allocated = %d", m.Allocated())
	}
}

func TestArraysAreDisjointAndAligned(t *testing.T) {
	m := MustNew(machine.VisionFive())
	a := m.MustNewF64(100)
	b := m.MustNewF32(100)
	if a.Addr(0)%4096 != 0 || b.Addr(0)%4096 != 0 {
		t.Fatal("arrays not page aligned")
	}
	if b.Addr(0) < a.Addr(a.Len()-1)+8 {
		t.Fatal("arrays overlap")
	}
}

func TestFunctionalLoadStore(t *testing.T) {
	m := MustNew(machine.MangoPiD1())
	a := m.MustNewF64(16)
	m.RunSeq(func(c *Core) {
		for i := 0; i < 16; i++ {
			a.Store(c, i, float64(i)*1.5)
		}
		for i := 0; i < 16; i++ {
			if got := a.Load(c, i); got != float64(i)*1.5 {
				t.Errorf("a[%d] = %v", i, got)
			}
		}
		if c.Loads != 16 || c.Stores != 16 {
			t.Errorf("loads/stores = %d/%d", c.Loads, c.Stores)
		}
	})
}

func TestF32Functional(t *testing.T) {
	m := MustNew(machine.MangoPiD1())
	a := m.MustNewF32(8)
	m.RunSeq(func(c *Core) {
		a.Store(c, 3, 2.25)
		if got := a.Load(c, 3); got != 2.25 {
			t.Errorf("a[3] = %v", got)
		}
	})
}

func TestTimeAdvancesAndClockIsMonotonic(t *testing.T) {
	m := MustNew(machine.MangoPiD1())
	a := m.MustNewF64(1 << 12)
	r1 := m.RunSeq(func(c *Core) {
		for i := 0; i < a.Len(); i++ {
			a.Store(c, i, 1)
		}
	})
	if r1.Cycles <= 0 {
		t.Fatal("region took no time")
	}
	before := m.Now()
	r2 := m.RunSeq(func(c *Core) { a.Load(c, 0) })
	if m.Now() < before || r2.Cycles < 0 {
		t.Fatal("clock went backwards")
	}
}

func TestCacheReuseIsCheaper(t *testing.T) {
	m := MustNew(machine.MangoPiD1())
	a := m.MustNewF64(512) // 4 KiB fits L1
	cold := m.RunSeq(func(c *Core) {
		for i := 0; i < a.Len(); i++ {
			a.Load(c, i)
		}
	})
	warm := m.RunSeq(func(c *Core) {
		for i := 0; i < a.Len(); i++ {
			a.Load(c, i)
		}
	})
	if warm.Cycles >= cold.Cycles {
		t.Fatalf("warm pass (%v) not faster than cold (%v)", warm.Cycles, cold.Cycles)
	}
}

func TestStridedSlowerThanSequential(t *testing.T) {
	// The asymmetry behind the whole transposition study: column order
	// (large stride) must cost more than row order on every device.
	for _, spec := range machine.All() {
		const n = 1 << 15 // 256 KiB, beyond every L1
		seqM := MustNew(spec)
		sa := seqM.MustNewF64(n)
		seq := seqM.RunSeq(func(c *Core) {
			for i := 0; i < n; i++ {
				sa.Load(c, i)
			}
		})
		strM := MustNew(spec)
		sb := strM.MustNewF64(n)
		const stride = 1024 // 8 KiB stride: new line and page constantly
		str := strM.RunSeq(func(c *Core) {
			for s := 0; s < stride; s++ {
				for i := s; i < n; i += stride {
					sb.Load(c, i)
				}
			}
		})
		if str.Cycles <= seq.Cycles {
			t.Errorf("%s: strided (%v) not slower than sequential (%v)",
				spec.Name, str.Cycles, seq.Cycles)
		}
	}
}

func TestRunPanicsOnTooManyCores(t *testing.T) {
	m := MustNew(machine.MangoPiD1())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 2 cores on a 1-core device")
		}
	}()
	m.Run(2, func(c *Core) {})
}

func streamCycles(spec machine.Spec, cores, n int) float64 {
	m := MustNew(spec)
	a := m.MustNewF64(n)
	b := m.MustNewF64(n)
	r := m.ParallelFor(cores, n, Static, 0, func(c *Core, i int) {
		a.Store(c, i, b.Load(c, i))
	})
	return r.Cycles
}

func TestParallelDeterminism(t *testing.T) {
	spec := machine.XeonServer()
	const n = 1 << 14
	first := streamCycles(spec, 4, n)
	for trial := 0; trial < 3; trial++ {
		if got := streamCycles(spec, 4, n); got != first {
			t.Fatalf("trial %d: %v cycles, first run %v — nondeterministic", trial, got, first)
		}
	}
}

func TestParallelSpeedsUpStreaming(t *testing.T) {
	spec := machine.XeonServer()
	const n = 1 << 16
	t1 := streamCycles(spec, 1, n)
	t4 := streamCycles(spec, 4, n)
	if t4 >= t1 {
		t.Fatalf("4 cores (%v) not faster than 1 (%v)", t4, t1)
	}
	if t1/t4 > 4.2 {
		t.Fatalf("superlinear speedup %v", t1/t4)
	}
}

func TestParallelBoundedByChannels(t *testing.T) {
	// VisionFive: 2 cores on 2 starved channels; speedup must be < cores+ε
	// and wall time still positive.
	spec := machine.VisionFive()
	const n = 1 << 14
	t1 := streamCycles(spec, 1, n)
	t2 := streamCycles(spec, 2, n)
	if t2 <= 0 || t1 <= 0 {
		t.Fatal("degenerate times")
	}
	if sp := t1 / t2; sp > 2.05 {
		t.Fatalf("speedup %v exceeds core count", sp)
	}
}

func TestStaticCoversAllIndicesOnce(t *testing.T) {
	m := MustNew(machine.XeonServer())
	const n = 1000
	var mu [n]int32
	m.ParallelFor(4, n, Static, 0, func(c *Core, i int) { mu[i]++ })
	for i, v := range mu {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestDynamicCoversAllIndicesOnce(t *testing.T) {
	f := func(chunkRaw uint8, nRaw uint16) bool {
		chunk := int(chunkRaw)%17 + 1
		n := int(nRaw)%500 + 1
		m := MustNew(machine.RaspberryPi4())
		counts := make([]int32, n)
		m.ParallelFor(4, n, Dynamic, chunk, func(c *Core, i int) { counts[i]++ })
		for _, v := range counts {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDynamicBeatsStaticOnImbalance(t *testing.T) {
	// Triangular workload (like transposition rows): static assigns core 0
	// the longest rows; dynamic rebalances.
	imbalanced := func(sched Schedule) float64 {
		m := MustNew(machine.XeonServer())
		const n = 256
		a := m.MustNewF64(n * n)
		r := m.ParallelFor(4, n, sched, 1, func(c *Core, i int) {
			for j := 0; j < (n-i)*n/n; j++ { // row i costs n-i touches
				a.Load(c, (i*n+j)%a.Len())
			}
		})
		return r.Cycles
	}
	st, dy := imbalanced(Static), imbalanced(Dynamic)
	if dy >= st {
		t.Fatalf("dynamic (%v) not faster than static (%v) on triangular load", dy, st)
	}
}

func TestVectorizationHelpsOnlyAutoVecDevices(t *testing.T) {
	run := func(spec machine.Spec, vec bool) float64 {
		m := MustNew(spec)
		a := m.MustNewF64(1 << 12)
		r := m.RunSeq(func(c *Core) {
			c.Vec = vec
			for i := 0; i < a.Len(); i++ {
				a.Store(c, i, 2*a.Load(c, i))
				c.Flops(1)
			}
		})
		return r.Cycles
	}
	xeon := machine.XeonServer()
	if vecT, scalT := run(xeon, true), run(xeon, false); vecT >= scalT {
		t.Errorf("Xeon: vectorized (%v) not faster than scalar (%v)", vecT, scalT)
	}
	d1 := machine.MangoPiD1()
	if vecT, scalT := run(d1, true), run(d1, false); math.Abs(vecT-scalT) > 1e-9 {
		t.Errorf("MangoPi: Vec changed time (%v vs %v) despite scalar-only toolchain", vecT, scalT)
	}
}

func TestSecondsConversion(t *testing.T) {
	spec := machine.MangoPiD1() // 1 GHz: 1e9 cycles = 1 s
	r := Result{Cycles: 2e9}
	if got := r.Seconds(spec); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("Seconds = %v, want 2", got)
	}
}

func TestIntOpsAndCycles(t *testing.T) {
	m := MustNew(machine.VisionFive()) // issue width 2
	r := m.RunSeq(func(c *Core) {
		c.IntOps(10) // 5 cycles
		c.Cycles(3)
	})
	if r.Cycles != 8 {
		t.Fatalf("cycles = %v, want 8", r.Cycles)
	}
}
