package sim

// F64 is a simulated array of float64: data lives in an ordinary Go slice
// for functional correctness while every element access is charged to the
// accessing core's clock at the array's simulated address.
type F64 struct {
	Data []float64
	base uint64
	m    *Machine
}

// NewF64 allocates an n-element float64 array, returning an error when the
// device's RAM cannot hold it.
func (m *Machine) NewF64(n int) (*F64, error) {
	base, err := m.alloc(int64(n) * 8)
	if err != nil {
		return nil, err
	}
	return &F64{Data: make([]float64, n), base: base, m: m}, nil
}

// MustNewF64 is NewF64 but panics on allocation failure.
func (m *Machine) MustNewF64(n int) *F64 {
	a, err := m.NewF64(n)
	if err != nil {
		panic(err)
	}
	return a
}

// Len returns the element count.
func (a *F64) Len() int { return len(a.Data) }

// Addr returns the simulated byte address of element i.
func (a *F64) Addr(i int) uint64 { return a.base + uint64(i)*8 }

// Load reads element i on core c.
func (a *F64) Load(c *Core, i int) float64 {
	c.touch(a.Addr(i), 8, false)
	return a.Data[i]
}

// Store writes element i on core c.
func (a *F64) Store(c *Core, i int, v float64) {
	c.touch(a.Addr(i), 8, true)
	a.Data[i] = v
}

// LoadRange charges reads of elements [lo,hi) as one unit-stride burst
// (line-granular, see Core.TouchRange) and returns the backing slice. The
// slice aliases the array — callers must not hold it across a Store.
func (a *F64) LoadRange(c *Core, lo, hi int) []float64 {
	c.TouchRange(a.Addr(lo), 8, hi-lo, false)
	return a.Data[lo:hi:hi]
}

// StoreRange charges writes of elements [lo,lo+len(vals)) as one unit-stride
// burst and copies vals into the array.
func (a *F64) StoreRange(c *Core, lo int, vals []float64) {
	c.TouchRange(a.Addr(lo), 8, len(vals), true)
	copy(a.Data[lo:], vals)
}

// F32 is the float32 analogue of F64 (the blur kernels convert pixel
// intensities to float, matching §4.3).
type F32 struct {
	Data []float32
	base uint64
	m    *Machine
}

// NewF32 allocates an n-element float32 array.
func (m *Machine) NewF32(n int) (*F32, error) {
	base, err := m.alloc(int64(n) * 4)
	if err != nil {
		return nil, err
	}
	return &F32{Data: make([]float32, n), base: base, m: m}, nil
}

// MustNewF32 is NewF32 but panics on allocation failure.
func (m *Machine) MustNewF32(n int) *F32 {
	a, err := m.NewF32(n)
	if err != nil {
		panic(err)
	}
	return a
}

// Len returns the element count.
func (a *F32) Len() int { return len(a.Data) }

// Addr returns the simulated byte address of element i.
func (a *F32) Addr(i int) uint64 { return a.base + uint64(i)*4 }

// Load reads element i on core c.
func (a *F32) Load(c *Core, i int) float32 {
	c.touch(a.Addr(i), 4, false)
	return a.Data[i]
}

// Store writes element i on core c.
func (a *F32) Store(c *Core, i int, v float32) {
	c.touch(a.Addr(i), 4, true)
	a.Data[i] = v
}

// LoadRange charges reads of elements [lo,hi) as one unit-stride burst and
// returns the backing slice (aliasing the array's data).
func (a *F32) LoadRange(c *Core, lo, hi int) []float32 {
	c.TouchRange(a.Addr(lo), 4, hi-lo, false)
	return a.Data[lo:hi:hi]
}

// StoreRange charges writes of elements [lo,lo+len(vals)) as one unit-stride
// burst and copies vals into the array.
func (a *F32) StoreRange(c *Core, lo int, vals []float32) {
	c.TouchRange(a.Addr(lo), 4, len(vals), true)
	copy(a.Data[lo:], vals)
}
