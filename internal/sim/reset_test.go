package sim

import (
	"testing"

	"riscvmem/internal/machine"
)

// resetProbe is a small but hierarchy-exercising workload: strided and
// sequential traffic over two arrays on every core, enough to dirty caches,
// TLBs, prefetch state, MSHRs and DRAM queues. It returns the region result
// and the machine's statistics.
func resetProbe(t *testing.T, m *Machine) (Result, Summary) {
	t.Helper()
	const n = 1 << 14
	a, err := m.NewF64(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.NewF64(n)
	if err != nil {
		t.Fatal(err)
	}
	cores := m.Spec().Cores
	res := m.ParallelRange(cores, n, Static, 0, func(c *Core, lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Store(c, i, b.Load(c, i)+1)
		}
		// A strided sweep to defeat the L0 line filter and train prefetch.
		for i := lo; i < hi; i += 17 {
			b.Store(c, i, a.Load(c, i))
		}
	})
	return res, m.Stats()
}

// TestResetEquivalence pins the Runner's pooling contract on all four
// presets: a machine that ran a workload and was Reset must reproduce a
// fresh machine's run bit for bit — same region cycles, same per-core
// times, same memory-system counters, same allocator state.
func TestResetEquivalence(t *testing.T) {
	for _, spec := range machine.All() {
		fresh, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, wantStats := resetProbe(t, fresh)

		reused, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		resetProbe(t, reused) // dirty every structure
		reused.Reset()
		if reused.Now() != 0 || reused.Allocated() != 0 {
			t.Errorf("%s: Reset left clock=%v allocated=%d", spec.Name, reused.Now(), reused.Allocated())
		}
		if stats := reused.Stats(); stats != (Summary{}) {
			t.Errorf("%s: Reset left statistics %+v", spec.Name, stats)
		}

		gotRes, gotStats := resetProbe(t, reused)
		if gotRes.Cycles != wantRes.Cycles {
			t.Errorf("%s: reset run %v cycles, fresh run %v", spec.Name, gotRes.Cycles, wantRes.Cycles)
		}
		for i := range wantRes.PerCore {
			if gotRes.PerCore[i] != wantRes.PerCore[i] {
				t.Errorf("%s core %d: reset %v, fresh %v", spec.Name, i, gotRes.PerCore[i], wantRes.PerCore[i])
			}
		}
		if gotStats != wantStats {
			t.Errorf("%s: reset stats diverge:\n got %+v\nwant %+v", spec.Name, gotStats, wantStats)
		}
	}
}

// TestResetRewindsAllocator checks that Reset frees simulated RAM: a
// working set that fills most of the device must be allocatable again after
// each Reset, and addresses repeat exactly.
func TestResetRewindsAllocator(t *testing.T) {
	m, err := New(machine.MangoPiD1())
	if err != nil {
		t.Fatal(err)
	}
	elems := int(m.Spec().RAMBytes / 2 / 8)
	first, err := m.NewF64(elems)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewF64(elems); err == nil {
		t.Fatal("second half-RAM array unexpectedly fit")
	}
	m.Reset()
	second, err := m.NewF64(elems)
	if err != nil {
		t.Fatalf("allocation after Reset failed: %v", err)
	}
	if second.Addr(0) != first.Addr(0) {
		t.Errorf("post-Reset base %#x, fresh base %#x", second.Addr(0), first.Addr(0))
	}
}
