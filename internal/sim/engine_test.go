package sim

import (
	"math/rand"
	"sync"
	"testing"
)

// TestEngineOrdersSharedEvents drives N simulated cores with random local
// advances and checks that the engine grants shared sections in strictly
// non-decreasing (time, coreID) order, producing the identical grant log on
// every run regardless of host scheduling.
func TestEngineOrdersSharedEvents(t *testing.T) {
	type grant struct {
		t  float64
		id int
	}
	run := func(seed int64, cores int) []grant {
		e := newEngine(cores)
		var log []grant
		var wg sync.WaitGroup
		for id := 0; id < cores; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(id)))
				now := 0.0
				for i := 0; i < 200; i++ {
					now += float64(rng.Intn(50)) // local work
					e.enter(id, now)
					log = append(log, grant{now, id}) // inside the section
					now += 1 + float64(rng.Intn(20))  // shared work
					e.leave(id, now)
				}
				e.finish(id)
			}(id)
		}
		wg.Wait()
		return log
	}
	for _, cores := range []int{2, 4, 10} {
		a := run(42, cores)
		for i := 1; i < len(a); i++ {
			if a[i].t < a[i-1].t || (a[i].t == a[i-1].t && a[i].id < a[i-1].id) {
				t.Fatalf("cores=%d: grant %d (t=%v id=%d) before %d (t=%v id=%d)",
					cores, i-1, a[i-1].t, a[i-1].id, i, a[i].t, a[i].id)
			}
		}
		b := run(42, cores)
		if len(a) != len(b) {
			t.Fatalf("cores=%d: log lengths differ", cores)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cores=%d: grant %d differs across runs: %+v vs %+v", cores, i, a[i], b[i])
			}
		}
	}
}

// TestEngineNoDeadlockOnTies exercises the exact-tie path: all cores enter
// at identical times repeatedly.
func TestEngineNoDeadlockOnTies(t *testing.T) {
	const cores = 8
	e := newEngine(cores)
	var wg sync.WaitGroup
	for id := 0; id < cores; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tm := float64(i) // every core at the same time each round
				e.enter(id, tm)
				e.leave(id, tm) // zero-width section, same time
			}
			e.finish(id)
		}(id)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	<-done
}

// TestEngineEarlyFinisherReleasesOthers: a core that finishes with a low
// bound must stop constraining the survivors.
func TestEngineEarlyFinisher(t *testing.T) {
	e := newEngine(2)
	res := make(chan struct{})
	go func() {
		e.enter(1, 1e9) // far in the future; blocked on core 0's bound 0
		e.leave(1, 1e9+1)
		e.finish(1)
		close(res)
	}()
	e.finish(0) // core 0 never syncs; finishing must unblock core 1
	<-res
}
