package sim

import (
	"testing"

	"riscvmem/internal/machine"
)

// runPattern executes body on a fresh machine of each preset and returns
// the per-device (final core time, loads, stores, memory summary).
type patternResult struct {
	now    float64
	loads  uint64
	stores uint64
	mem    Summary
}

func runPattern(t *testing.T, spec machine.Spec, elems int, body func(c *Core, a *F64)) patternResult {
	t.Helper()
	m, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.NewF64(elems)
	if err != nil {
		t.Fatal(err)
	}
	var r patternResult
	m.RunSeq(func(c *Core) {
		body(c, a)
		r.now = c.NowCycles()
		r.loads, r.stores = c.Loads, c.Stores
	})
	r.mem = m.Stats()
	return r
}

// TestTouchRangeOracle asserts that TouchRange is bit-identical — simulated
// cycles, access counters and all memory-system statistics — to the
// per-element Touch loop it replaces, on every device preset, across
// alignments, element widths and read/write.
func TestTouchRangeOracle(t *testing.T) {
	const elems = 6000
	cases := []struct {
		name      string
		start     int64 // byte offset into the array
		elemBytes int
		n         int
		write     bool
	}{
		{"read8", 0, 8, 4500, false},
		{"write8", 0, 8, 4500, true},
		{"read4-unaligned", 12, 4, 7000, false},
		{"write2-odd", 3, 2, 5000, true},
		{"read8-short", 8, 8, 3, false},
	}
	for _, spec := range machine.All() {
		for _, tc := range cases {
			ref := runPattern(t, spec, elems, func(c *Core, a *F64) {
				addr := a.Addr(0) + uint64(tc.start)
				for i := 0; i < tc.n; i++ {
					c.Touch(addr+uint64(i*tc.elemBytes), tc.elemBytes, tc.write)
				}
			})
			got := runPattern(t, spec, elems, func(c *Core, a *F64) {
				c.TouchRange(a.Addr(0)+uint64(tc.start), tc.elemBytes, tc.n, tc.write)
			})
			if got != ref {
				t.Errorf("%s/%s: TouchRange diverges from element path:\n got %+v\nwant %+v",
					spec.Name, tc.name, got, ref)
			}
		}
	}
}

// TestTouchSpansOracle asserts that TouchSpans reproduces the interleaved
// per-element loop exactly, including the post charges, on every preset.
func TestTouchSpansOracle(t *testing.T) {
	const elems = 9000
	for _, spec := range machine.All() {
		spans := func(a *F64) []Span {
			return []Span{
				{Addr: a.Addr(0), Stride: 8, Bytes: 8},
				{Addr: a.Addr(3000), Stride: 16, Bytes: 4},
				{Addr: a.Addr(0), Stride: 8, Bytes: 8, Write: true},
			}
		}
		const n = 1500
		ref := runPattern(t, spec, elems, func(c *Core, a *F64) {
			sp := spans(a)
			f, g := c.Flop32Cycles(2), c.IntCycles(3)
			for i := 0; i < n; i++ {
				for _, s := range sp {
					c.Touch(s.Addr+uint64(int64(i)*s.Stride), s.Bytes, s.Write)
				}
				c.Cycles(f)
				c.Cycles(g)
			}
		})
		got := runPattern(t, spec, elems, func(c *Core, a *F64) {
			c.TouchSpans(n, spans(a), []float64{c.Flop32Cycles(2), c.IntCycles(3)})
		})
		if got != ref {
			t.Errorf("%s: TouchSpans diverges from element path:\n got %+v\nwant %+v",
				spec.Name, got, ref)
		}
	}
}

// TestLoadStoreRange checks the F64/F32 range helpers move the right data
// and charge the same accesses as their scalar loops.
func TestLoadStoreRange(t *testing.T) {
	m := MustNew(machine.MangoPiD1())
	a := m.MustNewF64(64)
	b := m.MustNewF32(64)
	for i := 0; i < 64; i++ {
		a.Data[i] = float64(i)
	}
	m.RunSeq(func(c *Core) {
		vals := a.LoadRange(c, 8, 24)
		if len(vals) != 16 || vals[0] != 8 || vals[15] != 23 {
			t.Errorf("LoadRange data wrong: %v", vals)
		}
		a.StoreRange(c, 0, []float64{100, 101})
		if a.Data[0] != 100 || a.Data[1] != 101 {
			t.Errorf("StoreRange data wrong: %v", a.Data[:2])
		}
		b.StoreRange(c, 4, []float32{1, 2, 3})
		got := b.LoadRange(c, 4, 7)
		if got[0] != 1 || got[2] != 3 {
			t.Errorf("F32 range data wrong: %v", got)
		}
		if c.Loads == 0 || c.Stores == 0 {
			t.Errorf("range APIs did not charge accesses: loads=%d stores=%d", c.Loads, c.Stores)
		}
	})
}

// TestFusedPathDeterminism runs an identical mixed single/multi-core
// workload twice on every preset and requires exact agreement — the fused
// lookup, memo layers and MSHR ring must not introduce any host-dependent
// state.
func TestFusedPathDeterminism(t *testing.T) {
	run := func(spec machine.Spec) (float64, Summary) {
		m := MustNew(spec)
		a := m.MustNewF64(1 << 14)
		m.ParallelFor(spec.Cores, 1<<14, Static, 0, func(c *Core, i int) {
			a.Store(c, i, a.Load(c, (i*7)&(1<<14-1))+1)
		})
		res := m.RunSeq(func(c *Core) {
			c.TouchRange(a.Addr(0), 8, 1<<14, false)
		})
		return res.Cycles, m.Stats()
	}
	for _, spec := range machine.All() {
		c1, s1 := run(spec)
		c2, s2 := run(spec)
		if c1 != c2 || s1 != s2 {
			t.Errorf("%s: nondeterministic: run1=(%v,%+v) run2=(%v,%+v)", spec.Name, c1, s1, c2, s2)
		}
	}
}
