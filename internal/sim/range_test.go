package sim

import (
	"math/rand"
	"testing"

	"riscvmem/internal/machine"
)

// runPattern executes body on a fresh machine of each preset and returns
// the per-device (final core time, loads, stores, memory summary).
type patternResult struct {
	now    float64
	loads  uint64
	stores uint64
	mem    Summary
}

func runPattern(t *testing.T, spec machine.Spec, elems int, body func(c *Core, a *F64)) patternResult {
	t.Helper()
	m, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.NewF64(elems)
	if err != nil {
		t.Fatal(err)
	}
	var r patternResult
	m.RunSeq(func(c *Core) {
		body(c, a)
		r.now = c.NowCycles()
		r.loads, r.stores = c.Loads, c.Stores
	})
	r.mem = m.Stats()
	return r
}

// TestTouchRangeOracle asserts that TouchRange is bit-identical — simulated
// cycles, access counters and all memory-system statistics — to the
// per-element Touch loop it replaces, on every device preset, across
// alignments, element widths and read/write.
func TestTouchRangeOracle(t *testing.T) {
	const elems = 6000
	cases := []struct {
		name      string
		start     int64 // byte offset into the array
		elemBytes int
		n         int
		write     bool
	}{
		{"read8", 0, 8, 4500, false},
		{"write8", 0, 8, 4500, true},
		{"read4-unaligned", 12, 4, 7000, false},
		{"write2-odd", 3, 2, 5000, true},
		{"read8-short", 8, 8, 3, false},
	}
	for _, spec := range machine.All() {
		for _, tc := range cases {
			ref := runPattern(t, spec, elems, func(c *Core, a *F64) {
				addr := a.Addr(0) + uint64(tc.start)
				for i := 0; i < tc.n; i++ {
					c.Touch(addr+uint64(i*tc.elemBytes), tc.elemBytes, tc.write)
				}
			})
			got := runPattern(t, spec, elems, func(c *Core, a *F64) {
				c.TouchRange(a.Addr(0)+uint64(tc.start), tc.elemBytes, tc.n, tc.write)
			})
			if got != ref {
				t.Errorf("%s/%s: TouchRange diverges from element path:\n got %+v\nwant %+v",
					spec.Name, tc.name, got, ref)
			}
		}
	}
}

// TestTouchSpansOracle asserts that TouchSpans reproduces the interleaved
// per-element loop exactly, including the post charges, on every preset.
func TestTouchSpansOracle(t *testing.T) {
	const elems = 9000
	for _, spec := range machine.All() {
		spans := func(a *F64) []Span {
			return []Span{
				{Addr: a.Addr(0), Stride: 8, Bytes: 8},
				{Addr: a.Addr(3000), Stride: 16, Bytes: 4},
				{Addr: a.Addr(0), Stride: 8, Bytes: 8, Write: true},
			}
		}
		const n = 1500
		ref := runPattern(t, spec, elems, func(c *Core, a *F64) {
			sp := spans(a)
			f, g := c.Flop32Cycles(2), c.IntCycles(3)
			for i := 0; i < n; i++ {
				for _, s := range sp {
					c.Touch(s.Addr+uint64(int64(i)*s.Stride), s.Bytes, s.Write)
				}
				c.Cycles(f)
				c.Cycles(g)
			}
		})
		got := runPattern(t, spec, elems, func(c *Core, a *F64) {
			c.TouchSpans(n, spans(a), []float64{c.Flop32Cycles(2), c.IntCycles(3)})
		})
		if got != ref {
			t.Errorf("%s: TouchSpans diverges from element path:\n got %+v\nwant %+v",
				spec.Name, got, ref)
		}
	}
}

// TestLoadStoreRange checks the F64/F32 range helpers move the right data
// and charge the same accesses as their scalar loops.
func TestLoadStoreRange(t *testing.T) {
	m := MustNew(machine.MangoPiD1())
	a := m.MustNewF64(64)
	b := m.MustNewF32(64)
	for i := 0; i < 64; i++ {
		a.Data[i] = float64(i)
	}
	m.RunSeq(func(c *Core) {
		vals := a.LoadRange(c, 8, 24)
		if len(vals) != 16 || vals[0] != 8 || vals[15] != 23 {
			t.Errorf("LoadRange data wrong: %v", vals)
		}
		a.StoreRange(c, 0, []float64{100, 101})
		if a.Data[0] != 100 || a.Data[1] != 101 {
			t.Errorf("StoreRange data wrong: %v", a.Data[:2])
		}
		b.StoreRange(c, 4, []float32{1, 2, 3})
		got := b.LoadRange(c, 4, 7)
		if got[0] != 1 || got[2] != 3 {
			t.Errorf("F32 range data wrong: %v", got)
		}
		if c.Loads == 0 || c.Stores == 0 {
			t.Errorf("range APIs did not charge accesses: loads=%d stores=%d", c.Loads, c.Stores)
		}
	})
}

// rangeOp is one randomly drawn operation of a property-test program: a
// TouchRange, a TouchSpans batch, or a single Touch (which perturbs the L0
// filter, the prefetcher's training and the MSHR ring between bursts — the
// states the batched miss pipeline's streak mode has to re-establish).
type rangeOp struct {
	kind  int // 0 = TouchRange, 1 = TouchSpans, 2 = Touch
	off   int64
	bytes int
	n     int
	write bool
	spans []Span // offsets in Addr, rebased onto the array per run
	post  []float64
}

// randRangeProgram draws a fixed-seed program whose operations stay inside
// an elems-element F64 array.
func randRangeProgram(rng *rand.Rand, elems int) []rangeOp {
	widths := []int{1, 2, 3, 4, 8, 16}
	limit := int64(elems) * 8
	ops := make([]rangeOp, 0, 48)
	for len(ops) < 48 {
		op := rangeOp{kind: rng.Intn(3), write: rng.Intn(2) == 0}
		op.bytes = widths[rng.Intn(len(widths))]
		switch op.kind {
		case 0: // TouchRange: random offset incl. unaligned, page-crossing runs
			op.off = rng.Int63n(limit / 2)
			maxN := (limit - op.off) / int64(op.bytes)
			if maxN < 1 {
				continue
			}
			op.n = 1 + rng.Intn(int(min(maxN, 9000)))
		case 1: // TouchSpans: 1–3 spans, strides forward/backward/strided
			op.n = 1 + rng.Intn(2000)
			nspans := 1 + rng.Intn(3)
			for s := 0; s < nspans; s++ {
				b := widths[rng.Intn(len(widths))]
				stride := int64(b) * []int64{1, 1, 1, -1, 2, 8}[rng.Intn(6)]
				span := Span{Stride: stride, Bytes: b, Write: rng.Intn(2) == 0}
				extent := stride * int64(op.n-1)
				lo, hi := int64(0), extent+int64(b)
				if stride < 0 {
					lo, hi = extent, int64(b)
				}
				if hi-lo >= limit {
					op.n = 1
					extent, lo, hi = 0, 0, int64(b)
				}
				span.Addr = uint64(rng.Int63n(limit-(hi-lo)) - lo)
				op.spans = append(op.spans, span)
			}
			if rng.Intn(2) == 0 {
				op.post = []float64{0.25, 1.5}
			}
		case 2: // lone Touch
			op.off = rng.Int63n(limit - 16)
			op.n = 1
		}
		ops = append(ops, op)
	}
	return ops
}

// TestRangePropertyOracle draws fixed-seed random programs — random element
// widths, offsets, lengths, strides, page-crossing runs, reads and writes,
// with lone Touches perturbing filter/prefetcher/MSHR state in between — and
// asserts that executing them through the range APIs (and so through the
// batched miss pipeline where eligible) is bit-identical to the per-element
// Touch loop on every device preset: same cycles, same access counters, same
// full memory-system summary including DRAM queue cycles.
func TestRangePropertyOracle(t *testing.T) {
	const elems = 1 << 15
	for _, spec := range machine.All() {
		rng := rand.New(rand.NewSource(0x5eed5eed))
		for prog := 0; prog < 4; prog++ {
			ops := randRangeProgram(rng, elems)
			ref := runPattern(t, spec, elems, func(c *Core, a *F64) {
				base := a.Addr(0)
				for _, op := range ops {
					switch op.kind {
					case 0, 2:
						for i := 0; i < op.n; i++ {
							c.Touch(base+uint64(op.off)+uint64(i*op.bytes), op.bytes, op.write)
						}
					case 1:
						for i := 0; i < op.n; i++ {
							for _, s := range op.spans {
								c.Touch(base+s.Addr+uint64(int64(i)*s.Stride), s.Bytes, s.Write)
							}
							for _, p := range op.post {
								c.Cycles(p)
							}
						}
					}
				}
			})
			got := runPattern(t, spec, elems, func(c *Core, a *F64) {
				base := a.Addr(0)
				for _, op := range ops {
					switch op.kind {
					case 0:
						c.TouchRange(base+uint64(op.off), op.bytes, op.n, op.write)
					case 2:
						c.Touch(base+uint64(op.off), op.bytes, op.write)
					case 1:
						spans := make([]Span, len(op.spans))
						copy(spans, op.spans)
						for s := range spans {
							spans[s].Addr += base
						}
						c.TouchSpans(op.n, spans, op.post)
					}
				}
			})
			if got != ref {
				t.Errorf("%s/prog%d: range APIs diverge from element path:\n got %+v\nwant %+v",
					spec.Name, prog, got, ref)
			}
		}
	}
}

// TestParallelRangeOracle asserts the batched pipeline under the discrete-
// event engine: a multi-core ParallelRange whose bodies stream TouchRange
// bursts (read phase, then write phase) must be bit-identical to the same
// schedule charged element by element, on every preset at its full core
// count.
func TestParallelRangeOracle(t *testing.T) {
	const elems = 1 << 14
	run := func(spec machine.Spec, ranged bool) (float64, Summary) {
		m := MustNew(spec)
		a := m.MustNewF64(elems)
		body := func(c *Core, lo, hi int, write bool) {
			if ranged {
				c.TouchRange(a.Addr(lo), 8, hi-lo, write)
				return
			}
			for i := lo; i < hi; i++ {
				c.Touch(a.Addr(i), 8, write)
			}
		}
		res := m.ParallelRange(spec.Cores, elems, Static, 0, func(c *Core, lo, hi int) {
			body(c, lo, hi, false)
		})
		res2 := m.ParallelRange(spec.Cores, elems, Dynamic, 64, func(c *Core, lo, hi int) {
			body(c, lo, hi, true)
		})
		return res.Cycles + res2.Cycles, m.Stats()
	}
	for _, spec := range machine.All() {
		refC, refS := run(spec, false)
		gotC, gotS := run(spec, true)
		if gotC != refC || gotS != refS {
			t.Errorf("%s: parallel TouchRange diverges: got (%v,%+v) want (%v,%+v)",
				spec.Name, gotC, gotS, refC, refS)
		}
	}
}

// TestFusedPathDeterminism runs an identical mixed single/multi-core
// workload twice on every preset and requires exact agreement — the fused
// lookup, memo layers and MSHR ring must not introduce any host-dependent
// state.
func TestFusedPathDeterminism(t *testing.T) {
	run := func(spec machine.Spec) (float64, Summary) {
		m := MustNew(spec)
		a := m.MustNewF64(1 << 14)
		m.ParallelFor(spec.Cores, 1<<14, Static, 0, func(c *Core, i int) {
			a.Store(c, i, a.Load(c, (i*7)&(1<<14-1))+1)
		})
		res := m.RunSeq(func(c *Core) {
			c.TouchRange(a.Addr(0), 8, 1<<14, false)
		})
		return res.Cycles, m.Stats()
	}
	for _, spec := range machine.All() {
		c1, s1 := run(spec)
		c2, s2 := run(spec)
		if c1 != c2 || s1 != s2 {
			t.Errorf("%s: nondeterministic: run1=(%v,%+v) run2=(%v,%+v)", spec.Name, c1, s1, c2, s2)
		}
	}
}
