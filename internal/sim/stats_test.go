package sim

import (
	"testing"

	"riscvmem/internal/machine"
)

func TestSummaryAggregatesAcrossCores(t *testing.T) {
	m := MustNew(machine.VisionFive())
	a := m.MustNewF64(1 << 14) // 128 KiB: misses guaranteed
	m.ParallelFor(2, a.Len(), Static, 0, func(c *Core, i int) {
		a.Store(c, i, 1)
	})
	s := m.Stats()
	if s.L1Misses == 0 {
		t.Error("no L1 misses recorded")
	}
	if s.DRAMBytes == 0 {
		t.Error("no DRAM traffic recorded")
	}
	if s.TLBWalks == 0 {
		t.Error("no TLB walks on a cold 128 KiB walk")
	}
	if s.PrefetchFills == 0 {
		t.Error("prefetcher idle on a unit-stride stream")
	}
	if r := s.L1MissRate(); r <= 0 || r > 1 {
		t.Errorf("miss rate %v out of range", r)
	}
}

func TestSummaryZeroSafe(t *testing.T) {
	var s Summary
	if s.L1MissRate() != 0 {
		t.Error("zero-activity miss rate should be 0")
	}
}

func TestStreamTrafficAtLeastCounted(t *testing.T) {
	// Write-allocate means real DRAM traffic ≥ the logical kernel traffic.
	m := MustNew(machine.MangoPiD1())
	n := 1 << 14
	a := m.MustNewF64(n)
	b := m.MustNewF64(n)
	m.RunSeq(func(c *Core) {
		for i := 0; i < n; i++ {
			a.Store(c, i, b.Load(c, i))
		}
	})
	s := m.Stats()
	logical := uint64(16 * n) // STREAM-counted copy bytes
	if s.DRAMBytes < logical {
		t.Errorf("DRAM bytes %d below logical traffic %d", s.DRAMBytes, logical)
	}
}
