package sim

import "riscvmem/internal/hier"

// engineOrder adapts the discrete-event engine to hier.Order so the batched
// line pipeline (hier.AccessLines) serializes its shared sections through
// the same global (time, core ID) ordering as the split AccessL1+MissRest
// path.
type engineOrder struct{ e *engine }

func (o engineOrder) Enter(core int, now float64) { o.e.enter(core, now) }
func (o engineOrder) Leave(core int, now float64) { o.e.leave(core, now) }

// Core is one simulated hardware thread inside a Run region. All methods
// must be called only from the goroutine executing that core's body.
type Core struct {
	id  int
	m   *Machine
	h   *hier.Hierarchy // == m.h, cached to skip a chase per access
	e   *engine         // nil in single-core regions
	ord hier.Order      // e wrapped for hier.AccessLines; nil when e is nil
	now float64

	// batch gates the bulk range APIs into hier.AccessLines (line size not
	// exceeding the translation window; true on every preset).
	batch bool

	// Hot-path constants copied from the machine at region start.
	lineMask    uint64
	issueScalar float64 // L1 hit cost without vectorization
	autoVec     bool    // device auto-vectorizes (spec.AutoVecBytes > 0)

	// Vec marks the current loop as compiler-vectorized on devices whose
	// toolchain auto-vectorizes (machine.Spec.AutoVecBytes > 0): element
	// accesses and Flops are then costed at SIMD throughput. Kernels set it
	// around the loops the paper says GCC vectorized; it is a no-op on the
	// RISC-V presets, whose toolchain emitted scalar code.
	Vec bool

	// L0 line filter: the line touched by the previous access short-cuts
	// the full TLB+L1 path, modelling the line-fill/store buffer that makes
	// consecutive same-line accesses effectively free of lookup work.
	// lastKey packs the line address with bit0 = valid and bit1 = dirty
	// (line addresses are line-aligned, so the low bits are free), making
	// the filter a single masked compare.
	lastKey uint64

	// Stats
	Loads  uint64
	Stores uint64
}

// ID returns the core index within its region (0-based).
func (c *Core) ID() int { return c.id }

// NowCycles returns the core's current simulated time.
func (c *Core) NowCycles() float64 { return c.now }

// lanes returns the SIMD element multiplier for elemBytes-wide elements
// under the current vectorization state.
func (c *Core) lanes(elemBytes int) float64 {
	if !c.Vec || c.m.spec.AutoVecBytes == 0 {
		return 1
	}
	l := float64(c.m.spec.AutoVecBytes / elemBytes)
	if l < 1 {
		return 1
	}
	return l
}

// issueCost returns the per-element L1-hit issue cost, skipping the float
// division on the scalar path (x/1.0 == x, so the value is unchanged).
func (c *Core) issueCost(elemBytes int) float64 {
	if c.Vec && c.autoVec {
		return c.issueScalar / c.lanes(elemBytes)
	}
	return c.issueScalar
}

// touch charges one element access of elemBytes at addr.
func (c *Core) touch(addr uint64, elemBytes int, write bool) {
	line := addr &^ c.lineMask
	// Same-line fast path. A write to a line last seen clean still needs
	// the full path to set the dirty bit (lastKey compares dirty too).
	if write {
		c.Stores++
		if c.lastKey == line|3 {
			c.now += c.issueCost(elemBytes)
			return
		}
	} else {
		c.Loads++
		if c.lastKey&^2 == line|1 {
			c.now += c.issueCost(elemBytes)
			return
		}
	}
	c.access(addr, line, write, c.issueCost(elemBytes))
}

// access is the full per-line path shared by Touch and the range APIs: the
// fused TLB + L1 lookup and, on a miss, the shared path. Single-core
// regions resolve in one hierarchy call; multi-core regions split the
// access so only the shared half is serialized by the engine.
func (c *Core) access(addr, line uint64, write bool, issue float64) {
	h := c.h
	if c.e == nil {
		c.now = h.Access(c.id, c.now, addr, write, issue)
	} else {
		tlbCycles, res := h.AccessL1(c.id, addr, write)
		c.now += tlbCycles
		if res.Hit {
			c.now += issue
		} else {
			// Miss: order globally, then walk the shared path. The exposed
			// latency is scaled by the device's miss-overlap factor (out-
			// of-order cores hide part of it behind independent work).
			c.e.enter(c.id, c.now)
			done := h.MissRest(c.id, c.now, addr, res)
			c.now += (done - c.now) * c.m.missOverlap
			c.e.leave(c.id, c.now)
		}
	}
	key := line | 1
	if write {
		key |= 2
	}
	c.lastKey = key
}

// Touch charges one raw memory access of elemBytes at the simulated address
// addr. It is the building block for substrates (like the RISC-V emulator)
// that manage their own data layout instead of using F64/F32 arrays.
func (c *Core) Touch(addr uint64, elemBytes int, write bool) {
	c.touch(addr, elemBytes, write)
}

// Flops charges n floating-point operations at the device's scalar rate, or
// SIMD rate inside a vectorized region (8-byte lanes assumed for Flops; use
// Flops32 for single precision).
func (c *Core) Flops(n float64) { c.now += c.FlopCycles(n) }

// Flops32 charges n single-precision operations.
func (c *Core) Flops32(n float64) { c.now += c.Flop32Cycles(n) }

// IntOps charges n abstract integer/address/branch operations at the
// device's issue width (loop overhead, index arithmetic).
func (c *Core) IntOps(n float64) { c.now += c.IntCycles(n) }

// FlopCycles returns the cycle cost Flops(n) would charge under the current
// vectorization state, for precomputing TouchSpans post-charges.
func (c *Core) FlopCycles(n float64) float64 {
	return n / (c.m.spec.FlopsPerCycle * c.lanes(8))
}

// Flop32Cycles is FlopCycles for single precision.
func (c *Core) Flop32Cycles(n float64) float64 {
	return n / (c.m.spec.FlopsPerCycle * c.lanes(4))
}

// IntCycles returns the cycle cost IntOps(n) would charge.
func (c *Core) IntCycles(n float64) float64 {
	return n / float64(c.m.spec.IssueWidth)
}

// Cycles charges a raw cycle count (fixed-function costs).
func (c *Core) Cycles(n float64) { c.now += n }
