package sim

// Core is one simulated hardware thread inside a Run region. All methods
// must be called only from the goroutine executing that core's body.
type Core struct {
	id  int
	m   *Machine
	e   *engine // nil in single-core regions
	now float64

	// Vec marks the current loop as compiler-vectorized on devices whose
	// toolchain auto-vectorizes (machine.Spec.AutoVecBytes > 0): element
	// accesses and Flops are then costed at SIMD throughput. Kernels set it
	// around the loops the paper says GCC vectorized; it is a no-op on the
	// RISC-V presets, whose toolchain emitted scalar code.
	Vec bool

	// L0 line filter: the line touched by the previous access short-cuts
	// the full TLB+L1 path, modelling the line-fill/store buffer that makes
	// consecutive same-line accesses effectively free of lookup work.
	lastLine  uint64
	lastValid bool
	lastDirty bool

	// Stats
	Loads  uint64
	Stores uint64
}

// ID returns the core index within its region (0-based).
func (c *Core) ID() int { return c.id }

// NowCycles returns the core's current simulated time.
func (c *Core) NowCycles() float64 { return c.now }

// lanes returns the SIMD element multiplier for elemBytes-wide elements
// under the current vectorization state.
func (c *Core) lanes(elemBytes int) float64 {
	if !c.Vec || c.m.spec.AutoVecBytes == 0 {
		return 1
	}
	l := float64(c.m.spec.AutoVecBytes / elemBytes)
	if l < 1 {
		return 1
	}
	return l
}

// touch charges one element access of elemBytes at addr.
func (c *Core) touch(addr uint64, elemBytes int, write bool) {
	if write {
		c.Stores++
	} else {
		c.Loads++
	}
	h := c.m.h
	line := addr &^ uint64(h.LineSize()-1)
	issue := h.Config().L1HitCycles / c.lanes(elemBytes)

	// Same-line fast path. A write to a line last seen clean still needs
	// the full path to set the dirty bit.
	if c.lastValid && line == c.lastLine && (!write || c.lastDirty) {
		c.now += issue
		return
	}

	c.now += h.Translate(c.id, addr)
	if h.L1Hit(c.id, addr) {
		h.TouchL1(c.id, addr, write)
		c.now += issue
		c.lastLine, c.lastValid, c.lastDirty = line, true, write
		return
	}

	// Miss: order globally, then walk the shared path. The exposed latency
	// is scaled by the device's miss-overlap factor (out-of-order cores
	// hide part of it behind independent work).
	if c.e != nil {
		c.e.enter(c.id, c.now)
	}
	done := h.MissPath(c.id, c.now, addr, write)
	c.now += (done - c.now) * h.MissOverlap()
	if c.e != nil {
		c.e.leave(c.id, c.now)
	}
	c.lastLine, c.lastValid, c.lastDirty = line, true, write
}

// Touch charges one raw memory access of elemBytes at the simulated address
// addr. It is the building block for substrates (like the RISC-V emulator)
// that manage their own data layout instead of using F64/F32 arrays.
func (c *Core) Touch(addr uint64, elemBytes int, write bool) {
	c.touch(addr, elemBytes, write)
}

// Flops charges n floating-point operations at the device's scalar rate, or
// SIMD rate inside a vectorized region (8-byte lanes assumed for Flops; use
// Flops32 for single precision).
func (c *Core) Flops(n float64) {
	c.now += n / (c.m.spec.FlopsPerCycle * c.lanes(8))
}

// Flops32 charges n single-precision operations.
func (c *Core) Flops32(n float64) {
	c.now += n / (c.m.spec.FlopsPerCycle * c.lanes(4))
}

// IntOps charges n abstract integer/address/branch operations at the
// device's issue width (loop overhead, index arithmetic).
func (c *Core) IntOps(n float64) {
	c.now += n / float64(c.m.spec.IssueWidth)
}

// Cycles charges a raw cycle count (fixed-function costs).
func (c *Core) Cycles(n float64) { c.now += n }
