package sim

// Summary aggregates the machine's memory-system counters across all cores
// — the numbers behind the paper's qualitative explanations (miss rates,
// TLB walk counts, DRAM traffic, prefetch activity).
type Summary struct {
	L1Hits        uint64
	L1Misses      uint64
	TLBWalks      uint64
	DRAMReads     uint64
	DRAMWrites    uint64
	DRAMBytes     uint64
	QueueCycles   float64
	PrefetchFills uint64
}

// L1MissRate returns misses / (hits+misses), or 0 with no accesses.
func (s Summary) L1MissRate() float64 {
	if t := s.L1Hits + s.L1Misses; t > 0 {
		return float64(s.L1Misses) / float64(t)
	}
	return 0
}

// Stats snapshots the machine's aggregate memory-system counters.
//
// Note that the per-core L0 line filter satisfies repeated same-line
// accesses before they reach the L1 model, so L1Hits counts line-level
// activity, not raw element accesses.
func (m *Machine) Stats() Summary {
	var s Summary
	for core := 0; core < m.spec.Cores; core++ {
		l1 := m.h.L1Stats(core)
		s.L1Hits += l1.Hits
		s.L1Misses += l1.Misses
		_, walks := m.h.TLBStats(core)
		s.TLBWalks += walks
	}
	d := m.h.DRAM().Stats
	s.DRAMReads = d.Reads
	s.DRAMWrites = d.Writes
	s.DRAMBytes = d.Bytes()
	s.QueueCycles = d.QueueCycles
	s.PrefetchFills = m.h.PrefetchFills
	return s
}
