package sim

// Summary aggregates the machine's memory-system counters across all cores
// and cache levels — the numbers behind the paper's qualitative explanations
// (miss rates, TLB walk counts, DRAM traffic, prefetch activity). It is a
// plain comparable struct so oracle tests can assert bit-identical runs
// with a single equality check.
type Summary struct {
	L1Hits     uint64
	L1Misses   uint64
	L2Hits     uint64 // zero when the device has no L2
	L2Misses   uint64
	L3Hits     uint64 // zero when the device has no L3
	L3Misses   uint64
	UTLBHits   uint64
	UTLBMisses uint64
	TLBWalks   uint64
	DRAMReads  uint64
	DRAMWrites uint64
	DRAMBytes  uint64
	// QueueCycles is total time DRAM requests spent waiting behind earlier
	// requests on their channel.
	QueueCycles   float64
	PrefetchFills uint64
}

// L1MissRate returns misses / (hits+misses), or 0 with no accesses.
func (s Summary) L1MissRate() float64 { return missRate(s.L1Hits, s.L1Misses) }

// L2MissRate returns the L2 miss ratio, or 0 when the device has no L2 (or
// the level saw no traffic).
func (s Summary) L2MissRate() float64 { return missRate(s.L2Hits, s.L2Misses) }

// L3MissRate returns the L3 miss ratio, or 0 when the device has no L3.
func (s Summary) L3MissRate() float64 { return missRate(s.L3Hits, s.L3Misses) }

// UTLBMissRate returns the first-level TLB miss ratio.
func (s Summary) UTLBMissRate() float64 { return missRate(s.UTLBHits, s.UTLBMisses) }

func missRate(hits, misses uint64) float64 {
	if t := hits + misses; t > 0 {
		return float64(misses) / float64(t)
	}
	return 0
}

// Stats snapshots the machine's aggregate memory-system counters.
//
// Note that the per-core L0 line filter satisfies repeated same-line
// accesses before they reach the L1 model, so L1Hits counts line-level
// activity, not raw element accesses. L2/L3 counters include fills
// triggered by prefetches, which walk the same shared path as demand
// misses.
func (m *Machine) Stats() Summary {
	var s Summary
	for core := 0; core < m.spec.Cores; core++ {
		l1 := m.h.L1Stats(core)
		s.L1Hits += l1.Hits
		s.L1Misses += l1.Misses
		ut, walks := m.h.TLBStats(core)
		s.UTLBHits += ut.Hits
		s.UTLBMisses += ut.Misses
		s.TLBWalks += walks
	}
	l2 := m.h.L2StatsTotal()
	s.L2Hits, s.L2Misses = l2.Hits, l2.Misses
	l3 := m.h.L3StatsTotal()
	s.L3Hits, s.L3Misses = l3.Hits, l3.Misses
	d := m.h.DRAM().Stats
	s.DRAMReads = d.Reads
	s.DRAMWrites = d.Writes
	s.DRAMBytes = d.Bytes()
	s.QueueCycles = d.QueueCycles
	s.PrefetchFills = m.h.PrefetchFills
	return s
}
