// Package profiling wires the standard pprof profiles into the command-line
// tools (-cpuprofile/-memprofile on cmd/stream and cmd/sweep), so the next
// performance investigation starts from a profile of a real workload instead
// of guesswork. scripts/profile.sh packages the common invocations.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpu (when non-empty) and arranges a heap
// snapshot into mem (when non-empty) at stop time. The returned stop must
// run before process exit; it is never nil. Either path may be empty.
func Start(cpu, mem string) (stop func(), err error) {
	var cpuF *os.File
	if cpu != "" {
		if cpuF, err = os.Create(cpu); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // get up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
