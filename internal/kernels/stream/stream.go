// Package stream implements the STREAM memory-bandwidth benchmark (§4.1 of
// the paper; McCalpin 1995) against the simulator.
//
// The four tests move different byte counts per iteration:
//
//	COPY   a[i] = b[i]            16 B/iter, 0 FLOP
//	SCALE  a[i] = d·b[i]          16 B/iter, 1 FLOP
//	SUM    a[i] = b[i] + c[i]     24 B/iter, 1 FLOP
//	TRIAD  a[i] = b[i] + d·c[i]   24 B/iter, 2 FLOP
//
// Bandwidth is counted the STREAM way — bytes the *kernel* logically moves,
// not the (larger) write-allocate traffic the hierarchy generates. Following
// the paper's method, a measurement targets one memory level by sizing the
// arrays to fit that level but not the faster ones, runs multi-threaded for
// shared resources or sequential-×-cores for private ones, repeats, and
// keeps the maximum.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package stream

import (
	"fmt"
	"strings"

	"riscvmem/internal/machine"
	"riscvmem/internal/sim"
	"riscvmem/internal/units"
)

// Test is one of the four STREAM kernels.
type Test int

// The four STREAM tests.
const (
	Copy Test = iota
	Scale
	Sum
	Triad
)

// Tests lists all four in the order STREAM reports them.
func Tests() []Test { return []Test{Copy, Scale, Sum, Triad} }

// TestByName resolves a STREAM test from its name, case-insensitively; the
// error for an unknown name lists the valid ones.
func TestByName(name string) (Test, error) {
	for _, t := range Tests() {
		if strings.EqualFold(name, t.String()) {
			return t, nil
		}
	}
	valid := make([]string, 0, len(Tests()))
	for _, t := range Tests() {
		valid = append(valid, t.String())
	}
	return 0, fmt.Errorf("stream: unknown test %q (valid: %s)", name, strings.Join(valid, ", "))
}

// String returns the STREAM name of the test.
func (t Test) String() string {
	switch t {
	case Copy:
		return "COPY"
	case Scale:
		return "SCALE"
	case Sum:
		return "SUM"
	case Triad:
		return "TRIAD"
	}
	return fmt.Sprintf("Test(%d)", int(t))
}

// BytesPerIter returns the bytes STREAM counts for one iteration.
func (t Test) BytesPerIter() int64 {
	if t == Sum || t == Triad {
		return 24
	}
	return 16
}

// FlopsPerIter returns the floating-point operations per iteration.
func (t Test) FlopsPerIter() int {
	switch t {
	case Copy:
		return 0
	case Triad:
		return 2
	default:
		return 1
	}
}

// Config describes one measurement.
type Config struct {
	Test Test
	// Elems is the per-array element count (three arrays are allocated so
	// SUM/TRIAD have their inputs).
	Elems int
	// Cores is the number of threads; 1 runs sequentially.
	Cores int
	// Reps is the number of timed repetitions; the best is kept. 0 → 3.
	Reps int
	// ScaleBy multiplies the reported bandwidth (the paper multiplies
	// sequential per-core results by the core count for private levels).
	// 0 → 1.
	ScaleBy int
}

// Normalized returns the config with the documented defaults applied
// (Reps 0→3, Cores 0→1, ScaleBy 0→1) — the exact clamping RunOn performs
// before measuring. The canonical spec encoding (run.StreamSpec) keys the
// memo cache on the normalized form, so a config with an unset field and
// one with the default set explicitly share a single cache identity.
func (c Config) Normalized() Config {
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.ScaleBy <= 0 {
		c.ScaleBy = 1
	}
	return c
}

// Measurement is the outcome of one Run.
type Measurement struct {
	Config
	Device string
	// Best is the maximum bandwidth over the repetitions, scaled by ScaleBy.
	Best units.BytesPerSec
	// BestCycles is the region wall time (core cycles) of the fastest
	// repetition — the one Best was derived from.
	BestCycles float64
	// Bytes is the STREAM-counted logical traffic of one repetition.
	Bytes int64
	// PerRep records each repetition's (unscaled) bandwidth.
	PerRep []units.BytesPerSec
	// Mem summarizes the machine's memory-system activity (all passes).
	Mem sim.Summary
}

// elementwise switches Run to the scalar element-by-element path; the
// oracle test flips it to assert the range-API path is bit-identical.
var elementwise = false

// elementwiseBody is one scalar STREAM iteration — the reference semantics
// the TouchSpans-based path must reproduce exactly.
func elementwiseBody(c *sim.Core, t Test, a, b, cArr *sim.F64, d float64, i int) {
	switch t {
	case Copy:
		a.Store(c, i, b.Load(c, i))
	case Scale:
		a.Store(c, i, d*b.Load(c, i))
		c.Flops(1)
	case Sum:
		a.Store(c, i, b.Load(c, i)+cArr.Load(c, i))
		c.Flops(1)
	case Triad:
		a.Store(c, i, b.Load(c, i)+d*cArr.Load(c, i))
		c.Flops(2)
	}
	c.IntOps(1)
}

// Run executes one STREAM measurement on a fresh machine.
func Run(spec machine.Spec, cfg Config) (Measurement, error) {
	m, err := sim.New(spec)
	if err != nil {
		return Measurement{}, err
	}
	return RunOn(m, cfg)
}

// RunOn executes one STREAM measurement on the given machine, which must be
// in its power-on state (freshly constructed or Reset) — the pooled-runner
// entry point that skips per-run Machine construction.
func RunOn(m *sim.Machine, cfg Config) (Measurement, error) {
	if cfg.Elems <= 0 {
		return Measurement{}, fmt.Errorf("stream: non-positive array size %d", cfg.Elems)
	}
	cfg = cfg.Normalized()
	spec := m.Spec()
	n := cfg.Elems
	a, err := m.NewF64(n)
	if err != nil {
		return Measurement{}, err
	}
	b, err := m.NewF64(n)
	if err != nil {
		return Measurement{}, err
	}
	cArr, err := m.NewF64(n)
	if err != nil {
		return Measurement{}, err
	}
	for i := 0; i < n; i++ { // host-side init: untimed, like STREAM's setup
		b.Data[i] = float64(i%97) * 0.5
		cArr.Data[i] = float64(i%89) * 0.25
	}
	const d = 3.0

	// Timing runs through the bulk range API: per chunk, TouchSpans charges
	// the interleaved element accesses (load b[i], [load c[i],] store a[i],
	// flops, intops — the exact order of the scalar loop) line-granularly,
	// and the arithmetic itself runs as a plain Go loop. elementwiseBody is
	// the scalar oracle the range path is tested against.
	body := func(c *sim.Core, lo, hi int) {
		// STREAM loops auto-vectorize on toolchains that support it; the
		// flag is a no-op on the scalar RISC-V presets.
		c.Vec = true
		cnt := hi - lo
		if cnt <= 0 {
			return
		}
		spans := make([]sim.Span, 0, 3)
		switch cfg.Test {
		case Sum, Triad:
			spans = append(spans,
				sim.Span{Addr: b.Addr(lo), Stride: 8, Bytes: 8},
				sim.Span{Addr: cArr.Addr(lo), Stride: 8, Bytes: 8},
				sim.Span{Addr: a.Addr(lo), Stride: 8, Bytes: 8, Write: true})
		default:
			spans = append(spans,
				sim.Span{Addr: b.Addr(lo), Stride: 8, Bytes: 8},
				sim.Span{Addr: a.Addr(lo), Stride: 8, Bytes: 8, Write: true})
		}
		post := make([]float64, 0, 2)
		if f := cfg.Test.FlopsPerIter(); f > 0 {
			post = append(post, c.FlopCycles(float64(f)))
		}
		post = append(post, c.IntCycles(1))
		c.TouchSpans(cnt, spans, post)
		switch cfg.Test {
		case Copy:
			copy(a.Data[lo:hi], b.Data[lo:hi])
		case Scale:
			for i := lo; i < hi; i++ {
				a.Data[i] = d * b.Data[i]
			}
		case Sum:
			for i := lo; i < hi; i++ {
				a.Data[i] = b.Data[i] + cArr.Data[i]
			}
		case Triad:
			for i := lo; i < hi; i++ {
				a.Data[i] = b.Data[i] + d*cArr.Data[i]
			}
		}
	}
	if elementwise {
		body = func(c *sim.Core, lo, hi int) {
			c.Vec = true
			for i := lo; i < hi; i++ {
				elementwiseBody(c, cfg.Test, a, b, cArr, d, i)
			}
		}
	}

	meas := Measurement{Config: cfg, Device: spec.Name}
	bytes := cfg.Test.BytesPerIter() * int64(n)
	meas.Bytes = bytes
	m.ParallelRange(cfg.Cores, n, sim.Static, 0, body) // warm-up pass (untimed)
	for r := 0; r < cfg.Reps; r++ {
		res := m.ParallelRange(cfg.Cores, n, sim.Static, 0, body)
		bw := units.Bandwidth(bytes, res.Cycles, spec.FreqGHz)
		meas.PerRep = append(meas.PerRep, bw)
		if scaled := units.BytesPerSec(float64(bw) * float64(cfg.ScaleBy)); scaled > meas.Best {
			meas.Best = scaled
			meas.BestCycles = res.Cycles
		}
	}

	// Functional spot-check: the simulator must have really computed the
	// kernel (guards against timing-only regressions).
	probe := n / 2
	var want float64
	switch cfg.Test {
	case Copy:
		want = b.Data[probe]
	case Scale:
		want = d * b.Data[probe]
	case Sum:
		want = b.Data[probe] + cArr.Data[probe]
	case Triad:
		want = b.Data[probe] + d*cArr.Data[probe]
	}
	if a.Data[probe] != want {
		return Measurement{}, fmt.Errorf("stream: %v result corrupt: a[%d]=%v want %v",
			cfg.Test, probe, a.Data[probe], want)
	}
	meas.Mem = m.Stats()
	return meas, nil
}

// Level targets one memory level of a device, sized per the paper's method.
type Level struct {
	Name string
	// Elems is the per-array element count.
	Elems int
	// Cores used for the measurement and the sequential-result multiplier.
	Cores   int
	ScaleBy int
}

// Levels derives the measurable memory levels of a device. scale divides
// the DRAM working set (the cache-level sizes are fixed by the hardware
// geometry and never scaled).
func Levels(spec machine.Spec, scale int) []Level {
	if scale < 1 {
		scale = 1
	}
	var out []Level
	// L1 is per-core: run sequentially, multiply by core count. Three
	// arrays must fit: use 1/8 of capacity each.
	l1 := spec.Mem.L1.Size / 8 / 8
	out = append(out, Level{Name: "L1", Elems: int(l1), Cores: 1, ScaleBy: spec.Cores})

	lastCap := spec.Mem.L1.Size
	if spec.Mem.L2 != nil {
		elems := spec.Mem.L2.Cache.Size / 4 / 8
		lv := Level{Name: "L2", Elems: int(elems)}
		if spec.Mem.L2.Shared {
			lv.Cores, lv.ScaleBy = spec.Cores, 1
		} else {
			lv.Cores, lv.ScaleBy = 1, spec.Cores
		}
		out = append(out, lv)
		lastCap = spec.Mem.L2.Cache.Size
		if !spec.Mem.L2.Shared {
			lastCap *= int64(spec.Cores)
		}
	}
	if spec.Mem.L3 != nil {
		elems := spec.Mem.L3.Cache.Size / 6 / 8
		out = append(out, Level{Name: "L3", Elems: int(elems), Cores: spec.Cores, ScaleBy: 1})
		lastCap = spec.Mem.L3.Cache.Size
	}
	// DRAM: arrays well beyond the last cache level, shared across cores.
	dramBytes := 4 * lastCap
	if dramBytes < int64(units.MiB) {
		dramBytes = int64(units.MiB)
	}
	dramBytes /= int64(scale)
	if min := 8 * lastCap / 3; dramBytes < min {
		dramBytes = min // keep ≥ 2.67× LLC per array even at high scale
	}
	out = append(out, Level{Name: "DRAM", Elems: int(dramBytes / 8), Cores: spec.Cores, ScaleBy: 1})
	return out
}
