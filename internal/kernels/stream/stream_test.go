package stream

import (
	"testing"

	"riscvmem/internal/machine"
)

func TestTestMetadata(t *testing.T) {
	if len(Tests()) != 4 {
		t.Fatal("STREAM has four tests")
	}
	cases := []struct {
		tst   Test
		name  string
		bytes int64
		flops int
	}{
		{Copy, "COPY", 16, 0},
		{Scale, "SCALE", 16, 1},
		{Sum, "SUM", 24, 1},
		{Triad, "TRIAD", 24, 2},
	}
	for _, c := range cases {
		if c.tst.String() != c.name {
			t.Errorf("%v name = %q", c.tst, c.tst.String())
		}
		if c.tst.BytesPerIter() != c.bytes {
			t.Errorf("%v bytes = %d, want %d", c.tst, c.tst.BytesPerIter(), c.bytes)
		}
		if c.tst.FlopsPerIter() != c.flops {
			t.Errorf("%v flops = %d, want %d", c.tst, c.tst.FlopsPerIter(), c.flops)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(machine.MangoPiD1(), Config{Test: Copy, Elems: 0}); err == nil {
		t.Fatal("zero-size run accepted")
	}
}

func TestRunComputesAndMeasures(t *testing.T) {
	for _, tst := range Tests() {
		meas, err := Run(machine.MangoPiD1(), Config{Test: tst, Elems: 2048, Reps: 2})
		if err != nil {
			t.Fatalf("%v: %v", tst, err)
		}
		if meas.Best <= 0 {
			t.Errorf("%v: non-positive bandwidth", tst)
		}
		if len(meas.PerRep) != 2 {
			t.Errorf("%v: %d reps recorded", tst, len(meas.PerRep))
		}
	}
}

func TestScaleByMultipliesBandwidth(t *testing.T) {
	base, err := Run(machine.MangoPiD1(), Config{Test: Copy, Elems: 512, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	x4, err := Run(machine.MangoPiD1(), Config{Test: Copy, Elems: 512, Reps: 1, ScaleBy: 4})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(x4.Best) / float64(base.Best)
	if ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("ScaleBy=4 ratio %v", ratio)
	}
}

func TestL1FasterThanDRAM(t *testing.T) {
	// The level asymmetry behind Fig. 1: small (cache-resident) arrays must
	// show much higher bandwidth than DRAM-sized ones on every device.
	for _, spec := range machine.All() {
		small, err := Run(spec, Config{Test: Copy, Elems: 256, Reps: 2})
		if err != nil {
			t.Fatalf("%s small: %v", spec.Name, err)
		}
		big, err := Run(spec, Config{Test: Copy, Elems: 1 << 16, Cores: 1, Reps: 1})
		if err != nil {
			t.Fatalf("%s big: %v", spec.Name, err)
		}
		if float64(small.Best) < 1.5*float64(big.Best) {
			t.Errorf("%s: L1-sized %.2f GB/s not clearly above DRAM-sized %.2f GB/s",
				spec.Name, small.Best.GBps(), big.Best.GBps())
		}
	}
}

func TestDRAMBandwidthOrderingAcrossDevices(t *testing.T) {
	// Fig. 1's headline: Xeon ≫ Pi4 ≫ the RISC-V boards at DRAM, and the
	// VisionFive is the slowest of all.
	bw := map[string]float64{}
	for _, spec := range machine.All() {
		lv := Levels(spec, 8)
		dram := lv[len(lv)-1]
		meas, err := Run(spec, Config{Test: Triad, Elems: dram.Elems, Cores: dram.Cores, Reps: 1, ScaleBy: dram.ScaleBy})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		bw[spec.Name] = meas.Best.GBps()
	}
	if !(bw["Xeon"] > bw["RaspberryPi4"] && bw["RaspberryPi4"] > bw["MangoPi"] && bw["MangoPi"] > bw["VisionFive"]) {
		t.Fatalf("DRAM TRIAD ordering wrong: %v", bw)
	}
}

func TestLevelsStructure(t *testing.T) {
	for _, spec := range machine.All() {
		lv := Levels(spec, 1)
		if lv[0].Name != "L1" || lv[len(lv)-1].Name != "DRAM" {
			t.Errorf("%s: levels %v", spec.Name, lv)
		}
		// Monotonically growing arrays.
		for i := 1; i < len(lv); i++ {
			if lv[i].Elems <= lv[i-1].Elems {
				t.Errorf("%s: level %s (%d elems) not larger than %s (%d)",
					spec.Name, lv[i].Name, lv[i].Elems, lv[i-1].Name, lv[i-1].Elems)
			}
		}
		// L1 is private: sequential × cores.
		if lv[0].Cores != 1 || lv[0].ScaleBy != spec.Cores {
			t.Errorf("%s: L1 level = %+v", spec.Name, lv[0])
		}
	}
	// Device-specific shapes.
	if n := len(Levels(machine.MangoPiD1(), 1)); n != 2 { // L1 + DRAM only
		t.Errorf("MangoPi levels = %d, want 2 (no L2!)", n)
	}
	if n := len(Levels(machine.XeonServer(), 1)); n != 4 { // L1+L2+L3+DRAM
		t.Errorf("Xeon levels = %d, want 4", n)
	}
	// Xeon's private L2 runs sequentially ×10.
	xl := Levels(machine.XeonServer(), 1)
	if xl[1].Cores != 1 || xl[1].ScaleBy != 10 {
		t.Errorf("Xeon L2 level = %+v, want sequential ×10", xl[1])
	}
	// VisionFive's shared L2 runs with both cores.
	vl := Levels(machine.VisionFive(), 1)
	if vl[1].Cores != 2 || vl[1].ScaleBy != 1 {
		t.Errorf("VisionFive L2 level = %+v, want parallel ×1", vl[1])
	}
	// Scale shrinks only DRAM.
	a, b := Levels(machine.MangoPiD1(), 1), Levels(machine.MangoPiD1(), 4)
	if a[0].Elems != b[0].Elems {
		t.Error("scale changed a cache level")
	}
	if b[1].Elems >= a[1].Elems {
		t.Error("scale did not shrink the DRAM level")
	}
}

func TestDeterministicBandwidth(t *testing.T) {
	run := func() float64 {
		m, err := Run(machine.VisionFive(), Config{Test: Triad, Elems: 4096, Cores: 2, Reps: 2})
		if err != nil {
			t.Fatal(err)
		}
		return float64(m.Best)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic STREAM: %v vs %v", a, b)
	}
}
