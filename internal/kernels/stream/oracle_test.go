package stream

import (
	"testing"

	"riscvmem/internal/machine"
)

// TestRangeOracle asserts the TouchSpans-based STREAM path — including the
// batched miss pipeline (hier.AccessLines) behind the range APIs — is
// bit-identical, in bandwidths per repetition and every memory-system
// statistic, to the scalar element-by-element loop, for all four tests on
// all four device presets (multi-threaded where the device is).
func TestRangeOracle(t *testing.T) {
	for _, spec := range machine.All() {
		for _, tst := range Tests() {
			cfg := Config{Test: tst, Elems: 3000, Cores: spec.Cores, Reps: 2}
			zip, err := Run(spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			elementwise = true
			ref, err := Run(spec, cfg)
			elementwise = false
			if err != nil {
				t.Fatal(err)
			}
			if zip.Best != ref.Best || zip.Mem != ref.Mem {
				t.Errorf("%s/%v: range path diverges: best %v vs %v, mem %+v vs %+v",
					spec.Name, tst, zip.Best, ref.Best, zip.Mem, ref.Mem)
			}
			for i := range ref.PerRep {
				if zip.PerRep[i] != ref.PerRep[i] {
					t.Errorf("%s/%v rep %d: %v != %v", spec.Name, tst, i, zip.PerRep[i], ref.PerRep[i])
				}
			}
		}
	}
}
