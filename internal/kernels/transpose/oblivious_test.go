package transpose

import (
	"testing"

	"riscvmem/internal/machine"
)

func TestCacheObliviousCorrect(t *testing.T) {
	for _, spec := range machine.All() {
		// Both power-of-two and the grid-divisible-but-odd shape.
		for _, n := range []int{64, 256} {
			if _, err := Run(spec, Config{N: n, Variant: CacheOblivious, Verify: true}); err != nil {
				t.Errorf("%s n=%d: %v", spec.Name, n, err)
			}
		}
	}
}

func TestCacheObliviousBeatsNaive(t *testing.T) {
	const n = 1024
	for _, spec := range []machine.Spec{machine.MangoPiD1(), machine.XeonServer()} {
		naive, err := Run(spec, Config{N: n, Variant: Naive})
		if err != nil {
			t.Fatal(err)
		}
		obl, err := Run(spec, Config{N: n, Variant: CacheOblivious})
		if err != nil {
			t.Fatal(err)
		}
		if obl.Seconds >= naive.Seconds {
			t.Errorf("%s: oblivious (%v) not faster than naive (%v)",
				spec.Name, obl.Seconds, naive.Seconds)
		}
	}
}

func TestCacheObliviousCompetitiveWithBlocking(t *testing.T) {
	// The cache-oblivious claim: within ~2.5× of the hand-tuned blocked
	// version without any tuning knob.
	const n = 1024
	blk, err := Run(machine.VisionFive(), Config{N: n, Variant: Blocking})
	if err != nil {
		t.Fatal(err)
	}
	obl, err := Run(machine.VisionFive(), Config{N: n, Variant: CacheOblivious})
	if err != nil {
		t.Fatal(err)
	}
	if obl.Seconds > 2.5*blk.Seconds {
		t.Errorf("oblivious %vs vs blocked %vs — more than 2.5× off", obl.Seconds, blk.Seconds)
	}
}

func TestCacheObliviousName(t *testing.T) {
	if CacheOblivious.String() != "Cache_oblivious" {
		t.Errorf("name = %q", CacheOblivious.String())
	}
	for _, v := range Variants() {
		if v == CacheOblivious {
			t.Error("extension variant leaked into the paper's figure list")
		}
	}
}
