// Package transpose implements the paper's in-place dense matrix
// transposition study (§4.2): five implementations that incrementally apply
// the classic memory optimizations, from the naive double loop to cache
// blocking with per-thread staging buffers and dynamic scheduling.
//
// All variants operate on the same simulated N×N float64 matrix and are
// verified against the mathematical transpose, so each optimization is
// measured on a functionally identical computation.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package transpose

import (
	"fmt"
	"strings"

	"riscvmem/internal/machine"
	"riscvmem/internal/sim"
)

// Variant names one of the paper's five implementations.
type Variant int

// The five implementations of Fig. 2, in presentation order.
const (
	Naive Variant = iota
	Parallel
	Blocking
	ManualBlocking
	Dynamic
)

// Variants lists the paper's five implementations in figure order
// (CacheOblivious is an extension and not part of Fig. 2).
func Variants() []Variant {
	return []Variant{Naive, Parallel, Blocking, ManualBlocking, Dynamic}
}

// VariantByName resolves a variant from its figure label,
// case-insensitively (including Cache_oblivious); the error for an unknown
// name lists the valid ones.
func VariantByName(name string) (Variant, error) {
	all := append(Variants(), CacheOblivious)
	for _, v := range all {
		if strings.EqualFold(name, v.String()) {
			return v, nil
		}
	}
	valid := make([]string, 0, len(all))
	for _, v := range all {
		valid = append(valid, v.String())
	}
	return 0, fmt.Errorf("transpose: unknown variant %q (valid: %s)", name, strings.Join(valid, ", "))
}

// String returns the paper's label for the variant.
func (v Variant) String() string {
	switch v {
	case Naive:
		return "Naive"
	case Parallel:
		return "Parallel"
	case Blocking:
		return "Blocking"
	case ManualBlocking:
		return "Manual_blocking"
	case Dynamic:
		return "Dynamic"
	case CacheOblivious:
		return "Cache_oblivious"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Config describes one run.
type Config struct {
	N       int     // matrix dimension
	Variant Variant //
	// Block is the tile edge for the blocked variants; 0 picks a size whose
	// two staging tiles fit in half the device's L1.
	Block int
	// Verify checks the result against the mathematical transpose.
	Verify bool
}

// Result is one measured run.
type Result struct {
	Config
	Device  string
	Cycles  float64
	Seconds float64
	// Mem summarizes the machine's memory-system activity during the run
	// (miss rates, TLB walks, DRAM traffic) — the counters behind the
	// paper's explanations of *why* each optimization helps.
	Mem sim.Summary
}

// BytesMoved returns the minimum DRAM↔CPU traffic of an in-place N×N
// float64 transposition: every element is read once and written once
// (16·N² bytes) — the numerator of the §3.3 utilization metric.
func BytesMoved(n int) int64 { return 16 * int64(n) * int64(n) }

// defaultBlock picks the largest power-of-two tile with two tiles fitting
// in half of L1 (the staging buffer plus the mirror block).
func defaultBlock(spec machine.Spec) int {
	b := 1
	for ; ; b *= 2 {
		next := b * 2
		if int64(next*next*8*2) > spec.Mem.L1.Size/2 {
			return b
		}
	}
}

// Run executes one transposition variant on a fresh simulated machine.
func Run(spec machine.Spec, cfg Config) (Result, error) {
	m, err := sim.New(spec)
	if err != nil {
		return Result{}, err
	}
	return RunOn(m, cfg)
}

// RunOn executes one transposition variant on the given machine, which must
// be in its power-on state (freshly constructed or Reset) — the
// pooled-runner entry point that skips per-run Machine construction.
func RunOn(m *sim.Machine, cfg Config) (Result, error) {
	spec := m.Spec()
	if cfg.N <= 0 {
		return Result{}, fmt.Errorf("transpose: non-positive size %d", cfg.N)
	}
	if cfg.Block <= 0 {
		cfg.Block = defaultBlock(spec)
	}
	if cfg.Block > cfg.N {
		cfg.Block = cfg.N
	}
	if cfg.N%cfg.Block != 0 {
		return Result{}, fmt.Errorf("transpose: size %d not a multiple of block %d", cfg.N, cfg.Block)
	}
	n := cfg.N
	mat, err := m.NewF64(n * n)
	if err != nil {
		return Result{}, err
	}
	// Host-side init (untimed): a value that encodes its coordinates so
	// verification is exact.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			mat.Data[i*n+j] = float64(i)*1e-3 + float64(j)
		}
	}

	cores := spec.Cores
	var res sim.Result
	switch cfg.Variant {
	case Naive:
		res = m.RunSeq(func(c *sim.Core) {
			for i := 0; i < n; i++ {
				swapRange(c, mat, i*n+i+1, (i+1)*n+i, 1, n, n-i-1)
			}
		})
	case Parallel:
		res = m.ParallelFor(cores, n, sim.Static, 0, func(c *sim.Core, i int) {
			swapRange(c, mat, i*n+i+1, (i+1)*n+i, 1, n, n-i-1)
		})
	case Blocking:
		res = m.ParallelFor(cores, n/cfg.Block, sim.Static, 0, func(c *sim.Core, bi int) {
			transposeBlockRow(c, mat, n, cfg.Block, bi)
		})
	case ManualBlocking:
		res = runManual(m, mat, n, cfg.Block, cores, sim.Static)
	case Dynamic:
		res = runManual(m, mat, n, cfg.Block, cores, sim.Dynamic)
	case CacheOblivious:
		res = runOblivious(m, mat, n, cores)
	default:
		return Result{}, fmt.Errorf("transpose: unknown variant %d", int(cfg.Variant))
	}

	out := Result{Config: cfg, Device: spec.Name, Cycles: res.Cycles,
		Seconds: res.Seconds(spec), Mem: m.Stats()}
	if cfg.Verify {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := float64(j)*1e-3 + float64(i)
				if got := mat.Data[i*n+j]; got != want {
					return out, fmt.Errorf("transpose: %v wrong at (%d,%d): got %v want %v",
						cfg.Variant, i, j, got, want)
				}
			}
		}
	}
	return out, nil
}

// elementwise switches the kernels to the scalar element-by-element path;
// the oracle test flips it to assert the range-API path is bit-identical.
var elementwise = false

// swap exchanges two elements through the simulated memory system — the
// reference semantics of one swapRange iteration.
func swap(c *sim.Core, mat *sim.F64, p, q int) {
	vp := mat.Load(c, p)
	vq := mat.Load(c, q)
	mat.Store(c, p, vq)
	mat.Store(c, q, vp)
	c.IntOps(3) // index arithmetic + loop branch
}

// swapRange exchanges count element pairs (p0+k·pStride, q0+k·qStride)
// exactly like the scalar swap loop: the four interleaved accesses per pair
// are charged through TouchSpans (line-granular lookups) and the data moves
// in a plain Go loop.
func swapRange(c *sim.Core, mat *sim.F64, p0, q0, pStride, qStride, count int) {
	if count <= 0 {
		return
	}
	if elementwise {
		for k := 0; k < count; k++ {
			swap(c, mat, p0+k*pStride, q0+k*qStride)
		}
		return
	}
	ps, qs := int64(pStride)*8, int64(qStride)*8
	spans := [4]sim.Span{
		{Addr: mat.Addr(p0), Stride: ps, Bytes: 8},
		{Addr: mat.Addr(q0), Stride: qs, Bytes: 8},
		{Addr: mat.Addr(p0), Stride: ps, Bytes: 8, Write: true},
		{Addr: mat.Addr(q0), Stride: qs, Bytes: 8, Write: true},
	}
	post := [1]float64{c.IntCycles(3)}
	c.TouchSpans(count, spans[:], post[:])
	for k := 0; k < count; k++ {
		p, q := p0+k*pStride, q0+k*qStride
		mat.Data[p], mat.Data[q] = mat.Data[q], mat.Data[p]
	}
}

// transposeBlockRow handles block row bi of the Blocking variant (Listing
// 2): in-place swaps walked tile by tile, diagonal tiles as triangles.
func transposeBlockRow(c *sim.Core, mat *sim.F64, n, blk, bi int) {
	iBlk := bi * blk
	for jBlk := iBlk; jBlk < n; jBlk += blk {
		if iBlk == jBlk {
			for i := iBlk; i < iBlk+blk; i++ {
				swapRange(c, mat, i*n+i+1, (i+1)*n+i, 1, n, jBlk+blk-i-1)
			}
			continue
		}
		for i := iBlk; i < iBlk+blk; i++ {
			swapRange(c, mat, i*n+jBlk, jBlk*n+i, 1, n, blk)
		}
	}
}

// runManual implements Listing 3 (ManualBlocking) and the Dynamic variant:
// each thread stages tiles through a private buffer so main-memory access
// stays sequential, transposes them in cache, and writes them back.
func runManual(m *sim.Machine, mat *sim.F64, n, blk, cores int, sched sim.Schedule) sim.Result {
	nBlocks := n / blk
	// One staging buffer pair per potential thread, allocated up front
	// (simulated, but thread-local and cache-resident by design).
	bufA := make([]*sim.F64, cores)
	bufB := make([]*sim.F64, cores)
	for t := 0; t < cores; t++ {
		bufA[t] = m.MustNewF64(blk * blk)
		bufB[t] = m.MustNewF64(blk * blk)
	}
	return m.ParallelFor(cores, nBlocks, sched, 1, func(c *sim.Core, bi int) {
		a, b := bufA[c.ID()], bufB[c.ID()]
		iBlk := bi * blk
		// Diagonal tile: load, transpose in cache, store back.
		loadBlock(c, mat, a, n, blk, iBlk, iBlk)
		transposeInCache(c, a, blk)
		storeBlock(c, mat, a, n, blk, iBlk, iBlk)
		// Off-diagonal tiles: load the pair, transpose both in cache, store
		// each to the other's position.
		for jBlk := iBlk + blk; jBlk < n; jBlk += blk {
			loadBlock(c, mat, a, n, blk, iBlk, jBlk)
			loadBlock(c, mat, b, n, blk, jBlk, iBlk)
			transposeInCache(c, a, blk)
			transposeInCache(c, b, blk)
			storeBlock(c, mat, b, n, blk, iBlk, jBlk)
			storeBlock(c, mat, a, n, blk, jBlk, iBlk)
		}
	})
}

// copyRow moves count elements from src[s0:] to dst[d0:] with the load and
// store interleaved per element, exactly like the scalar staging loop.
func copyRow(c *sim.Core, dst, src *sim.F64, d0, s0, count int) {
	if elementwise {
		for j := 0; j < count; j++ {
			dst.Store(c, d0+j, src.Load(c, s0+j))
		}
		return
	}
	spans := [2]sim.Span{
		{Addr: src.Addr(s0), Stride: 8, Bytes: 8},
		{Addr: dst.Addr(d0), Stride: 8, Bytes: 8, Write: true},
	}
	c.TouchSpans(count, spans[:], nil)
	copy(dst.Data[d0:d0+count], src.Data[s0:s0+count])
}

// loadBlock copies tile (iBlk,jBlk) into buf row-sequentially.
func loadBlock(c *sim.Core, mat, buf *sim.F64, n, blk, iBlk, jBlk int) {
	for i := 0; i < blk; i++ {
		copyRow(c, buf, mat, i*blk, (iBlk+i)*n+jBlk, blk)
		c.IntOps(float64(blk))
	}
}

// storeBlock writes buf back over tile (iBlk,jBlk) row-sequentially.
func storeBlock(c *sim.Core, mat, buf *sim.F64, n, blk, iBlk, jBlk int) {
	for i := 0; i < blk; i++ {
		copyRow(c, mat, buf, (iBlk+i)*n+jBlk, i*blk, blk)
		c.IntOps(float64(blk))
	}
}

// transposeInCache transposes the L1-resident tile in place.
func transposeInCache(c *sim.Core, buf *sim.F64, blk int) {
	for i := 0; i < blk; i++ {
		swapRange(c, buf, i*blk+i+1, (i+1)*blk+i, 1, blk, blk-i-1)
	}
}
