package transpose

import "riscvmem/internal/sim"

// CacheOblivious is an extension beyond the paper's five variants: the
// recursive divide-and-conquer transposition of Chatterjee & Sen (HPCA
// 2000), the paper's own reference [24]. It needs no tuned block size —
// recursion reaches every cache level's working set automatically — and the
// ablation benchmark compares it against the tuned Blocking variant on
// every device.
const CacheOblivious Variant = 5

// obliviousBase is the recursion cutoff; a 16×16 tile pair (4 KiB) fits the
// L1 of every device in the study.
const obliviousBase = 16

// runOblivious transposes in place by recursive quadrant decomposition,
// parallelizing the top-level off-diagonal strips across cores.
func runOblivious(m *sim.Machine, mat *sim.F64, n, cores int) sim.Result {
	if cores <= 1 {
		return m.RunSeq(func(c *sim.Core) {
			transposeDiag(c, mat, n, 0, n)
		})
	}
	// Parallel decomposition: a grid of balanced bands (boundary i·n/grid
	// covers every row exactly regardless of divisibility); each cell
	// recurses obliviously. Dynamic scheduling rebalances the triangular
	// strip lengths.
	grid := 1
	for grid < 4*cores && grid < n/obliviousBase {
		grid *= 2
	}
	bound := func(i int) int { return i * n / grid }
	return m.ParallelFor(cores, grid, sim.Dynamic, 1, func(c *sim.Core, bi int) {
		r0, r1 := bound(bi), bound(bi+1)
		transposeDiag(c, mat, n, r0, r1)
		for cj := bi + 1; cj < grid; cj++ {
			swapRect(c, mat, n, r0, r1, bound(cj), bound(cj+1))
		}
	})
}

// transposeDiag transposes the square diagonal region [lo,hi)×[lo,hi).
func transposeDiag(c *sim.Core, mat *sim.F64, n, lo, hi int) {
	size := hi - lo
	if size <= obliviousBase {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				swap(c, mat, i*n+j, j*n+i)
			}
		}
		return
	}
	mid := lo + size/2
	transposeDiag(c, mat, n, lo, mid)
	transposeDiag(c, mat, n, mid, hi)
	swapRect(c, mat, n, lo, mid, mid, hi)
}

// swapRect exchanges rectangle [r0,r1)×[c0,c1) with its transposed mirror
// [c0,c1)×[r0,r1), splitting the longer dimension until the pair fits cache.
func swapRect(c *sim.Core, mat *sim.F64, n, r0, r1, c0, c1 int) {
	rows, cols := r1-r0, c1-c0
	if rows <= obliviousBase && cols <= obliviousBase {
		for i := r0; i < r1; i++ {
			for j := c0; j < c1; j++ {
				swap(c, mat, i*n+j, j*n+i)
			}
		}
		return
	}
	if rows >= cols {
		mid := r0 + rows/2
		swapRect(c, mat, n, r0, mid, c0, c1)
		swapRect(c, mat, n, mid, r1, c0, c1)
		return
	}
	mid := c0 + cols/2
	swapRect(c, mat, n, r0, r1, c0, mid)
	swapRect(c, mat, n, r0, r1, mid, c1)
}
