package transpose

import (
	"testing"

	"riscvmem/internal/machine"
)

// The paper's §4.2 narrative, verified through the machine counters rather
// than just end-to-end time: blocking works because it restores page and
// line locality that the naive column walk destroys.

func TestNaiveThrashesTLBBlockedDoesNot(t *testing.T) {
	const n = 1024 // rows 8 KiB apart: every naive column step is a new page
	naive, err := Run(machine.MangoPiD1(), Config{N: n, Variant: Naive})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := Run(machine.MangoPiD1(), Config{N: n, Variant: ManualBlocking})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Mem.TLBWalks < 4*blocked.Mem.TLBWalks {
		t.Errorf("TLB walks: naive %d vs blocked %d — expected ≥4× reduction",
			naive.Mem.TLBWalks, blocked.Mem.TLBWalks)
	}
}

func TestBlockedReducesL1Misses(t *testing.T) {
	// Blocking fetches each line a bounded number of times; the naive
	// column walk at n=1024 (column lines ≫ L1 capacity) refetches lines
	// per element. Absolute misses, not the rate, is the relevant counter:
	// the L0 line filter absorbs same-line hits before they reach L1 stats.
	// Only the small-cache boards show the effect at this size; the Xeon's
	// 1.25 MiB private L2 absorbs a 1024-line column and its blocking win
	// at n=1024 comes from TLB walks instead (covered above).
	const n = 1024
	for _, spec := range []machine.Spec{machine.VisionFive(), machine.MangoPiD1()} {
		naive, err := Run(spec, Config{N: n, Variant: Naive})
		if err != nil {
			t.Fatal(err)
		}
		blocked, err := Run(spec, Config{N: n, Variant: ManualBlocking})
		if err != nil {
			t.Fatal(err)
		}
		if naive.Mem.L1Misses < 3*blocked.Mem.L1Misses/2 {
			t.Errorf("%s: L1 misses naive %d vs blocked %d — expected ≥1.5× reduction",
				spec.Name, naive.Mem.L1Misses, blocked.Mem.L1Misses)
		}
	}
}

func TestDRAMTrafficNearMinimumWhenBlocked(t *testing.T) {
	// Manual blocking stages tiles once: DRAM traffic should approach the
	// 16·N² analytic minimum (within write-allocate overhead, ~2×).
	const n = 1024
	res, err := Run(machine.RaspberryPi4(), Config{N: n, Variant: ManualBlocking})
	if err != nil {
		t.Fatal(err)
	}
	min := uint64(BytesMoved(n))
	if res.Mem.DRAMBytes < min/2 {
		t.Errorf("DRAM bytes %d below the possible minimum %d — accounting bug", res.Mem.DRAMBytes, min)
	}
	if res.Mem.DRAMBytes > 3*min {
		t.Errorf("DRAM bytes %d vs minimum %d — blocking is re-fetching tiles", res.Mem.DRAMBytes, min)
	}
}
