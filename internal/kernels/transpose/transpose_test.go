package transpose

import (
	"testing"
	"testing/quick"

	"riscvmem/internal/machine"
)

func TestVariantMetadata(t *testing.T) {
	if len(Variants()) != 5 {
		t.Fatal("the paper presents five implementations")
	}
	names := []string{"Naive", "Parallel", "Blocking", "Manual_blocking", "Dynamic"}
	for i, v := range Variants() {
		if v.String() != names[i] {
			t.Errorf("variant %d = %q, want %q", i, v.String(), names[i])
		}
	}
}

func TestBytesMoved(t *testing.T) {
	if got := BytesMoved(8192); got != 16*8192*8192 {
		t.Fatalf("BytesMoved = %d", got)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	if _, err := Run(machine.MangoPiD1(), Config{N: 0, Variant: Naive}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := Run(machine.MangoPiD1(), Config{N: 100, Variant: Blocking, Block: 32}); err == nil {
		t.Error("non-divisible block accepted")
	}
	if _, err := Run(machine.MangoPiD1(), Config{N: 64, Variant: Variant(99)}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestAllVariantsCorrectOnAllDevices(t *testing.T) {
	for _, spec := range machine.All() {
		for _, v := range Variants() {
			res, err := Run(spec, Config{N: 64, Variant: v, Verify: true})
			if err != nil {
				t.Errorf("%s/%v: %v", spec.Name, v, err)
				continue
			}
			if res.Cycles <= 0 {
				t.Errorf("%s/%v: no time elapsed", spec.Name, v)
			}
		}
	}
}

func TestOversizeMatrixRejectedByRAM(t *testing.T) {
	// The Fig. 2 capacity story: 16384² does not fit the Mango Pi.
	if _, err := Run(machine.MangoPiD1(), Config{N: 16384, Variant: Naive}); err == nil {
		t.Fatal("16384² accepted on the 1 GiB Mango Pi")
	}
}

func TestBlockingBeatsNaive(t *testing.T) {
	// The central §4.2 claim: cache blocking helps on *every* device,
	// including both RISC-V boards. The matrix must be large enough that a
	// full column's cache lines (n × 64 B) overflow L1 — below that the
	// naive version caches fine and there is nothing to win.
	const n = 1024
	for _, spec := range machine.All() {
		naive, err := Run(spec, Config{N: n, Variant: Naive})
		if err != nil {
			t.Fatal(err)
		}
		blocked, err := Run(spec, Config{N: n, Variant: Blocking})
		if err != nil {
			t.Fatal(err)
		}
		if blocked.Seconds >= naive.Seconds {
			t.Errorf("%s: Blocking (%v) not faster than Naive (%v)",
				spec.Name, blocked.Seconds, naive.Seconds)
		}
	}
}

func TestParallelGainsNothingOnSingleCore(t *testing.T) {
	// Fig. 2: "the lack of acceleration of parallel implementations on
	// Mango Pi is due to the single-core CPU."
	const n = 128
	naive, err := Run(machine.MangoPiD1(), Config{N: n, Variant: Naive})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(machine.MangoPiD1(), Config{N: n, Variant: Parallel})
	if err != nil {
		t.Fatal(err)
	}
	ratio := naive.Seconds / par.Seconds
	if ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("single-core parallel speedup %v, want ≈1", ratio)
	}
}

func TestParallelHelpsOnXeon(t *testing.T) {
	const n = 256
	naive, err := Run(machine.XeonServer(), Config{N: n, Variant: Naive})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(machine.XeonServer(), Config{N: n, Variant: Parallel})
	if err != nil {
		t.Fatal(err)
	}
	if sp := naive.Seconds / par.Seconds; sp < 2 {
		t.Fatalf("10-core Xeon parallel speedup only %v", sp)
	}
}

func TestDynamicAtLeastAsGoodAsManualOnXeon(t *testing.T) {
	// Dynamic scheduling fixes the triangular imbalance of static block
	// rows (§4.2 "Dynamic Scheduling").
	const n = 512
	man, err := Run(machine.XeonServer(), Config{N: n, Variant: ManualBlocking})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(machine.XeonServer(), Config{N: n, Variant: Dynamic})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Seconds > man.Seconds*1.02 {
		t.Fatalf("Dynamic (%v) worse than Manual_blocking (%v)", dyn.Seconds, man.Seconds)
	}
}

func TestDefaultBlockFitsL1(t *testing.T) {
	for _, spec := range machine.All() {
		b := defaultBlock(spec)
		if b < 8 {
			t.Errorf("%s: block %d suspiciously small", spec.Name, b)
		}
		if int64(2*b*b*8) > spec.Mem.L1.Size/2 {
			t.Errorf("%s: two %d² tiles exceed half of L1", spec.Name, b)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		r, err := Run(machine.VisionFive(), Config{N: 128, Variant: Dynamic})
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic transpose: %v vs %v", a, b)
	}
}

// Property: every variant is an involution-correct transpose for random
// block-aligned sizes.
func TestPropertyCorrectForRandomSizes(t *testing.T) {
	f := func(raw uint8) bool {
		n := (int(raw)%4 + 1) * 32 // 32..128, multiple of the test block
		for _, v := range Variants() {
			if _, err := Run(machine.VisionFive(), Config{N: n, Variant: v, Block: 16, Verify: true}); err != nil {
				t.Logf("n=%d variant=%v: %v", n, v, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}
