// Package blur implements the paper's Gaussian Blur study (§4.3): five
// implementations of a discrete convolution over a multi-channel float32
// image, from the naive 2D-kernel loop nest to the separable, memory-ordered,
// parallel version.
//
// The variants track the paper's Listings 4–5 and Fig. 4–5:
//
//	Naive       2D kernel, channel loop outside the filter loops
//	Unit-stride 2D kernel, channel loop innermost (unit-stride reads)
//	1D_kernels  two separable 1D passes (O(F) instead of O(F²))
//	Memory      1D passes restructured so each kernel tap streams a whole
//	            row (the loop order GCC vectorizes on x86/ARM)
//	Parallel    Memory + OpenMP-style row parallelism
//
// Every variant computes the same interior convolution and is verified
// against a plain Go reference implementation.
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package blur

import (
	"fmt"
	"math"
	"strings"

	"riscvmem/internal/machine"
	"riscvmem/internal/sim"
)

// Variant names one of the paper's five implementations.
type Variant int

// The five implementations of Fig. 6, in presentation order.
const (
	Naive Variant = iota
	UnitStride
	OneD
	Memory
	Parallel
)

// Variants lists all five in figure order.
func Variants() []Variant { return []Variant{Naive, UnitStride, OneD, Memory, Parallel} }

// VariantByName resolves a variant from its figure label,
// case-insensitively; the error for an unknown name lists the valid ones.
func VariantByName(name string) (Variant, error) {
	for _, v := range Variants() {
		if strings.EqualFold(name, v.String()) {
			return v, nil
		}
	}
	valid := make([]string, 0, len(Variants()))
	for _, v := range Variants() {
		valid = append(valid, v.String())
	}
	return 0, fmt.Errorf("blur: unknown variant %q (valid: %s)", name, strings.Join(valid, ", "))
}

// String returns the paper's label.
func (v Variant) String() string {
	switch v {
	case Naive:
		return "Naive"
	case UnitStride:
		return "Unit-stride"
	case OneD:
		return "1D_kernels"
	case Memory:
		return "Memory"
	case Parallel:
		return "Parallel"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Kernel1D returns the normalized 1D Gaussian filter of odd size f with the
// conventional σ = f/6 (±3σ support).
func Kernel1D(f int) []float32 {
	sigma := float64(f) / 6.0
	k := make([]float32, f)
	mid := f / 2
	var sum float64
	for i := range k {
		x := float64(i - mid)
		v := math.Exp(-x * x / (2 * sigma * sigma))
		k[i] = float32(v)
		sum += v
	}
	for i := range k {
		k[i] = float32(float64(k[i]) / sum)
	}
	return k
}

// Kernel2D returns the separable product kernel k1ᵀ·k1 (Eq. 1).
func Kernel2D(k1 []float32) []float32 {
	f := len(k1)
	k2 := make([]float32, f*f)
	for i := 0; i < f; i++ {
		for j := 0; j < f; j++ {
			k2[i*f+j] = k1[i] * k1[j]
		}
	}
	return k2
}

// Config describes one run.
type Config struct {
	W, H, C int // image width, height, channels (paper: 2544×2027×3)
	F       int // odd filter size (paper: 19)
	Variant Variant
	// Verify compares the interior against a host-side reference (within a
	// tolerance covering the separable variants' reassociated sums).
	Verify bool
}

// Result is one measured run.
type Result struct {
	Config
	Device  string
	Cycles  float64
	Seconds float64
	// Mem summarizes the machine's memory-system activity during the run.
	Mem sim.Summary
}

// BytesMoved returns the minimum DRAM↔CPU traffic of a separable blur over
// a W×H×C float32 image — read src, write tmp, read tmp, write dst — the
// numerator the §3.3 utilization metric uses for Fig. 7.
func BytesMoved(w, h, c int) int64 { return 16 * int64(w) * int64(h) * int64(c) }

// Run executes one blur variant on a fresh simulated machine.
func Run(spec machine.Spec, cfg Config) (Result, error) {
	m, err := sim.New(spec)
	if err != nil {
		return Result{}, err
	}
	return RunOn(m, cfg)
}

// RunOn executes one blur variant on the given machine, which must be in its
// power-on state (freshly constructed or Reset) — the pooled-runner entry
// point that skips per-run Machine construction.
func RunOn(m *sim.Machine, cfg Config) (Result, error) {
	spec := m.Spec()
	if cfg.W <= 0 || cfg.H <= 0 || cfg.C <= 0 {
		return Result{}, fmt.Errorf("blur: bad image %dx%dx%d", cfg.W, cfg.H, cfg.C)
	}
	if cfg.F <= 0 || cfg.F%2 == 0 || cfg.F >= cfg.W || cfg.F >= cfg.H {
		return Result{}, fmt.Errorf("blur: bad filter size %d for %dx%d", cfg.F, cfg.W, cfg.H)
	}
	w, h, ch, f := cfg.W, cfg.H, cfg.C, cfg.F
	wc := w * ch
	src, err := m.NewF32(h * wc)
	if err != nil {
		return Result{}, err
	}
	dst, err := m.NewF32(h * wc)
	if err != nil {
		return Result{}, err
	}
	// Deterministic pseudo-image, intensities in [0,1).
	state := uint32(0x9e3779b9)
	for i := range src.Data {
		state = state*1664525 + 1013904223
		src.Data[i] = float32(state>>8) / float32(1<<24)
	}
	k1 := Kernel1D(f)
	k2 := Kernel2D(k1)

	var res sim.Result
	switch cfg.Variant {
	case Naive:
		res = m.RunSeq(func(c *sim.Core) { naive(c, src, dst, k2, w, h, ch, f) })
	case UnitStride:
		res = m.RunSeq(func(c *sim.Core) { unitStride(c, src, dst, k2, w, h, ch, f) })
	case OneD:
		tmp, terr := m.NewF32(h * wc)
		if terr != nil {
			return Result{}, terr
		}
		res = m.RunSeq(func(c *sim.Core) { oneD(c, src, tmp, dst, k1, w, h, ch, f) })
	case Memory, Parallel:
		tmp, terr := m.NewF32(h * wc)
		if terr != nil {
			return Result{}, terr
		}
		cores := 1
		if cfg.Variant == Parallel {
			cores = spec.Cores
		}
		res = memoryOrdered(m, src, tmp, dst, k1, w, h, ch, f, cores)
	default:
		return Result{}, fmt.Errorf("blur: unknown variant %d", int(cfg.Variant))
	}

	out := Result{Config: cfg, Device: spec.Name, Cycles: res.Cycles,
		Seconds: res.Seconds(spec), Mem: m.Stats()}
	if cfg.Verify {
		if err := verify(src.Data, dst.Data, k2, w, h, ch, f); err != nil {
			return out, fmt.Errorf("blur: %v: %w", cfg.Variant, err)
		}
	}
	return out, nil
}

// elementwise switches the kernels to the scalar element-by-element path;
// the oracle test flips it to assert the range-API path is bit-identical.
var elementwise = false

// naive is Listing 4: for each output pixel and channel, walk the 2D kernel.
// With interleaved channels the inner reads stride by C elements. The
// kernel-row walk (f strided reads plus their flop/intop charges) goes
// through TouchSpans; the convolution arithmetic runs as plain Go.
func naive(c *sim.Core, src, dst *sim.F32, k2 []float32, w, h, ch, f int) {
	mid := f / 2
	wc := w * ch
	span := [1]sim.Span{{Stride: int64(ch) * 4, Bytes: 4}}
	post := [2]float64{c.Flop32Cycles(2), c.IntCycles(2)}
	for i := 0; i <= h-f; i++ {
		for j := 0; j <= w-f; j++ {
			for cc := 0; cc < ch; cc++ {
				var sum float32
				for iF := 0; iF < f; iF++ {
					posI := (i + iF) * wc
					if elementwise {
						for jF := 0; jF < f; jF++ {
							posJ := (j+jF)*ch + cc
							sum += src.Load(c, posI+posJ) * k2[iF*f+jF]
							c.Flops32(2)
							c.IntOps(2)
						}
						continue
					}
					base := posI + j*ch + cc
					span[0].Addr = src.Addr(base)
					c.TouchSpans(f, span[:], post[:])
					for jF := 0; jF < f; jF++ {
						sum += src.Data[base+jF*ch] * k2[iF*f+jF]
					}
				}
				dst.Store(c, (i+mid)*wc+(j+mid)*ch+cc, sum)
			}
		}
	}
}

// unitStride moves the channel loop inside the kernel walk (Fig. 4, right):
// the innermost reads sweep consecutive floats — a natural TouchSpans burst.
func unitStride(c *sim.Core, src, dst *sim.F32, k2 []float32, w, h, ch, f int) {
	mid := f / 2
	wc := w * ch
	sums := make([]float32, ch)
	span := [1]sim.Span{{Stride: 4, Bytes: 4}}
	post := [2]float64{c.Flop32Cycles(2), c.IntCycles(1)}
	for i := 0; i <= h-f; i++ {
		for j := 0; j <= w-f; j++ {
			clear(sums)
			for iF := 0; iF < f; iF++ {
				posI := (i + iF) * wc
				for jF := 0; jF < f; jF++ {
					base := posI + (j+jF)*ch
					kv := k2[iF*f+jF]
					if elementwise {
						for cc := 0; cc < ch; cc++ {
							sums[cc] += src.Load(c, base+cc) * kv
							c.Flops32(2)
							c.IntOps(1)
						}
						continue
					}
					span[0].Addr = src.Addr(base)
					c.TouchSpans(ch, span[:], post[:])
					for cc := 0; cc < ch; cc++ {
						sums[cc] += src.Data[base+cc] * kv
					}
				}
			}
			for cc := 0; cc < ch; cc++ {
				dst.Store(c, (i+mid)*wc+(j+mid)*ch+cc, sums[cc])
			}
		}
	}
}

// oneD applies two separable 1D kernels (Fig. 5, bottom): a vertical pass
// into tmp, then a horizontal pass into dst. Per-pixel kernel walks keep the
// access pattern of Listing 4's structure (the "excessive memory access" the
// Memory variant then fixes).
func oneD(c *sim.Core, src, tmp, dst *sim.F32, k1 []float32, w, h, ch, f int) {
	mid := f / 2
	wc := w * ch
	span := [1]sim.Span{}
	post := [2]float64{c.Flop32Cycles(2), c.IntCycles(2)}
	// Vertical: tmp[i+mid][j] = Σ src[i+iF][j]·k1[iF], every column. The
	// kernel walk strides a full row between taps.
	for i := 0; i <= h-f; i++ {
		for j := 0; j < wc; j++ {
			var sum float32
			if elementwise {
				for iF := 0; iF < f; iF++ {
					sum += src.Load(c, (i+iF)*wc+j) * k1[iF]
					c.Flops32(2)
					c.IntOps(2)
				}
			} else {
				base := i*wc + j
				span[0] = sim.Span{Addr: src.Addr(base), Stride: int64(wc) * 4, Bytes: 4}
				c.TouchSpans(f, span[:], post[:])
				for iF := 0; iF < f; iF++ {
					sum += src.Data[base+iF*wc] * k1[iF]
				}
			}
			tmp.Store(c, (i+mid)*wc+j, sum)
		}
	}
	// Horizontal: dst[i][j+mid] = Σ tmp[i][j+jF]·k1[jF].
	for i := mid; i < h-f+1+mid; i++ {
		for j := 0; j <= w-f; j++ {
			for cc := 0; cc < ch; cc++ {
				var sum float32
				if elementwise {
					for jF := 0; jF < f; jF++ {
						sum += tmp.Load(c, i*wc+(j+jF)*ch+cc) * k1[jF]
						c.Flops32(2)
						c.IntOps(2)
					}
				} else {
					base := i*wc + j*ch + cc
					span[0] = sim.Span{Addr: tmp.Addr(base), Stride: int64(ch) * 4, Bytes: 4}
					c.TouchSpans(f, span[:], post[:])
					for jF := 0; jF < f; jF++ {
						sum += tmp.Data[base+jF*ch] * k1[jF]
					}
				}
				dst.Store(c, i*wc+(j+mid)*ch+cc, sum)
			}
		}
	}
}

// memoryOrdered is Listing 5 extended to both passes: each kernel tap
// streams an entire row, so every inner loop is long and unit-stride — the
// shape compilers vectorize (c.Vec is set; a no-op on the scalar RISC-V
// presets). cores > 1 parallelizes over rows (the Parallel variant).
func memoryOrdered(m *sim.Machine, src, tmp, dst *sim.F32, k1 []float32, w, h, ch, f, cores int) sim.Result {
	mid := f / 2
	wc := w * ch
	rowsV := h - f + 1
	// Vertical accumulation pass. Each tap streams whole rows: the three
	// interleaved streams (read-accumulate tmp, read src, write tmp) are
	// one TouchSpans batch per row.
	r1 := m.ParallelFor(cores, rowsV, sim.Static, 0, func(c *sim.Core, i int) {
		c.Vec = true
		out := (i + mid) * wc
		for iF := 0; iF < f; iF++ {
			posI := (i + iF) * wc
			kv := k1[iF]
			if elementwise {
				for j := 0; j < wc; j++ {
					acc := tmp.Load(c, out+j)
					if iF == 0 {
						acc = 0
					}
					tmp.Store(c, out+j, acc+src.Load(c, posI+j)*kv)
					c.Flops32(2)
					c.IntOps(1)
				}
				continue
			}
			spans := [3]sim.Span{
				{Addr: tmp.Addr(out), Stride: 4, Bytes: 4},
				{Addr: src.Addr(posI), Stride: 4, Bytes: 4},
				{Addr: tmp.Addr(out), Stride: 4, Bytes: 4, Write: true},
			}
			post := [2]float64{c.Flop32Cycles(2), c.IntCycles(1)}
			c.TouchSpans(wc, spans[:], post[:])
			if iF == 0 {
				for j := 0; j < wc; j++ {
					tmp.Data[out+j] = src.Data[posI+j] * kv
				}
			} else {
				for j := 0; j < wc; j++ {
					tmp.Data[out+j] += src.Data[posI+j] * kv
				}
			}
		}
	})
	// Horizontal accumulation pass over the rows the vertical pass filled.
	r2 := m.ParallelFor(cores, rowsV, sim.Static, 0, func(c *sim.Core, ri int) {
		c.Vec = true
		i := ri + mid
		row := i * wc
		span := (w - f + 1) * ch
		for jF := 0; jF < f; jF++ {
			kv := k1[jF]
			off := jF * ch
			if elementwise {
				for j := 0; j < span; j++ {
					acc := dst.Load(c, row+mid*ch+j)
					if jF == 0 {
						acc = 0
					}
					dst.Store(c, row+mid*ch+j, acc+tmp.Load(c, row+off+j)*kv)
					c.Flops32(2)
					c.IntOps(1)
				}
				continue
			}
			spans := [3]sim.Span{
				{Addr: dst.Addr(row + mid*ch), Stride: 4, Bytes: 4},
				{Addr: tmp.Addr(row + off), Stride: 4, Bytes: 4},
				{Addr: dst.Addr(row + mid*ch), Stride: 4, Bytes: 4, Write: true},
			}
			post := [2]float64{c.Flop32Cycles(2), c.IntCycles(1)}
			c.TouchSpans(span, spans[:], post[:])
			if jF == 0 {
				for j := 0; j < span; j++ {
					dst.Data[row+mid*ch+j] = tmp.Data[row+off+j] * kv
				}
			} else {
				for j := 0; j < span; j++ {
					dst.Data[row+mid*ch+j] += tmp.Data[row+off+j] * kv
				}
			}
		}
	})
	return sim.Result{Cycles: r1.Cycles + r2.Cycles}
}

// Reference computes the interior convolution in plain Go (no simulation).
func Reference(src []float32, k2 []float32, w, h, ch, f int) []float32 {
	mid := f / 2
	wc := w * ch
	out := make([]float32, h*wc)
	for i := 0; i <= h-f; i++ {
		for j := 0; j <= w-f; j++ {
			for cc := 0; cc < ch; cc++ {
				var sum float32
				for iF := 0; iF < f; iF++ {
					for jF := 0; jF < f; jF++ {
						sum += src[(i+iF)*wc+(j+jF)*ch+cc] * k2[iF*f+jF]
					}
				}
				out[(i+mid)*wc+(j+mid)*ch+cc] = sum
			}
		}
	}
	return out
}

// verify checks dst's interior against the reference within a tolerance
// that covers the separable variants' different summation order.
func verify(src, dst, k2 []float32, w, h, ch, f int) error {
	want := Reference(src, k2, w, h, ch, f)
	mid := f / 2
	wc := w * ch
	for i := mid; i <= h-f+mid; i++ {
		for j := mid; j <= w-f+mid; j++ {
			for cc := 0; cc < ch; cc++ {
				g, e := dst[i*wc+j*ch+cc], want[i*wc+j*ch+cc]
				if diff := math.Abs(float64(g - e)); diff > 1e-4 {
					return fmt.Errorf("pixel (%d,%d,%d): got %v want %v", i, j, cc, g, e)
				}
			}
		}
	}
	return nil
}
