package blur

import (
	"math"
	"testing"

	"riscvmem/internal/machine"
)

func TestVariantMetadata(t *testing.T) {
	if len(Variants()) != 5 {
		t.Fatal("the paper presents five implementations")
	}
	names := []string{"Naive", "Unit-stride", "1D_kernels", "Memory", "Parallel"}
	for i, v := range Variants() {
		if v.String() != names[i] {
			t.Errorf("variant %d = %q, want %q", i, v.String(), names[i])
		}
	}
}

func TestKernel1DNormalizedSymmetric(t *testing.T) {
	for _, f := range []int{3, 5, 19} {
		k := Kernel1D(f)
		if len(k) != f {
			t.Fatalf("F=%d: len %d", f, len(k))
		}
		var sum float64
		for i := range k {
			sum += float64(k[i])
			if k[i] != k[f-1-i] {
				t.Errorf("F=%d: asymmetric at %d", f, i)
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("F=%d: sum %v", f, sum)
		}
		// Peak at the center.
		if k[f/2] <= k[0] {
			t.Errorf("F=%d: center %v not above edge %v", f, k[f/2], k[0])
		}
	}
}

func TestKernel2DIsOuterProduct(t *testing.T) {
	k1 := Kernel1D(5)
	k2 := Kernel2D(k1)
	var sum float64
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if k2[i*5+j] != k1[i]*k1[j] {
				t.Fatalf("k2[%d,%d] != k1[i]*k1[j]", i, j)
			}
			sum += float64(k2[i*5+j])
		}
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("2D kernel sum %v", sum)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	d1 := machine.MangoPiD1()
	bad := []Config{
		{W: 0, H: 10, C: 3, F: 3},
		{W: 10, H: 10, C: 3, F: 4},  // even filter
		{W: 10, H: 10, C: 3, F: 11}, // filter ≥ image
		{W: 10, H: 10, C: 3, F: -1},
	}
	for _, cfg := range bad {
		cfg.Variant = Naive
		if _, err := Run(d1, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := Run(d1, Config{W: 16, H: 16, C: 1, F: 3, Variant: Variant(42)}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestAllVariantsMatchReference(t *testing.T) {
	// Small color image, every variant, two very different devices.
	for _, spec := range []machine.Spec{machine.MangoPiD1(), machine.XeonServer()} {
		for _, v := range Variants() {
			res, err := Run(spec, Config{W: 24, H: 20, C: 3, F: 5, Variant: v, Verify: true})
			if err != nil {
				t.Errorf("%s/%v: %v", spec.Name, v, err)
				continue
			}
			if res.Cycles <= 0 {
				t.Errorf("%s/%v: no time elapsed", spec.Name, v)
			}
		}
	}
}

func TestSingleChannelWorks(t *testing.T) {
	for _, v := range Variants() {
		if _, err := Run(machine.VisionFive(), Config{W: 20, H: 18, C: 1, F: 3, Variant: v, Verify: true}); err != nil {
			t.Errorf("%v on 1-channel: %v", v, err)
		}
	}
}

func TestOneDFasterThanNaive(t *testing.T) {
	// O(F) beats O(F²) everywhere once F is non-trivial.
	cfg := Config{W: 64, H: 48, C: 3, F: 9}
	for _, spec := range machine.All() {
		n := cfg
		n.Variant = Naive
		rn, err := Run(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		o := cfg
		o.Variant = OneD
		ro, err := Run(spec, o)
		if err != nil {
			t.Fatal(err)
		}
		if ro.Seconds >= rn.Seconds {
			t.Errorf("%s: 1D_kernels (%v) not faster than Naive (%v)", spec.Name, ro.Seconds, rn.Seconds)
		}
	}
}

func TestMemoryBeatsOneD(t *testing.T) {
	// Needs paper-like proportions to show: F = 19 exceeds the D1's
	// 10-entry uTLB when the per-pixel vertical walk cycles through F rows
	// spanning F pages (rows ≥ one page wide), which the row-streaming
	// Memory order avoids.
	cfg := Config{W: 384, H: 44, C: 3, F: 19}
	for _, spec := range []machine.Spec{machine.XeonServer(), machine.MangoPiD1()} {
		o := cfg
		o.Variant = OneD
		ro, err := Run(spec, o)
		if err != nil {
			t.Fatal(err)
		}
		mo := cfg
		mo.Variant = Memory
		rm, err := Run(spec, mo)
		if err != nil {
			t.Fatal(err)
		}
		if rm.Seconds >= ro.Seconds {
			t.Errorf("%s: Memory (%v) not faster than 1D_kernels (%v)", spec.Name, rm.Seconds, ro.Seconds)
		}
	}
}

func TestXeonMemoryGetsVectorizationBoost(t *testing.T) {
	// §4.3: "the compiler has been able to vectorize the code with the loop
	// order used in the Memory implementation" — a ~19× total speedup on
	// the Xeon. Require the Xeon's Memory-over-Naive speedup to dwarf the
	// Mango Pi's (scalar toolchain) on the same image.
	cfg := Config{W: 64, H: 48, C: 3, F: 9}
	speedup := func(spec machine.Spec) float64 {
		n := cfg
		n.Variant = Naive
		rn, err := Run(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		m := cfg
		m.Variant = Memory
		rm, err := Run(spec, m)
		if err != nil {
			t.Fatal(err)
		}
		return rn.Seconds / rm.Seconds
	}
	xe, d1 := speedup(machine.XeonServer()), speedup(machine.MangoPiD1())
	if xe <= d1*1.5 {
		t.Fatalf("Xeon Memory speedup %.1f× not clearly above MangoPi's %.1f×", xe, d1)
	}
}

func TestParallelHelpsOnMultiCore(t *testing.T) {
	cfg := Config{W: 96, H: 64, C: 3, F: 9}
	m := cfg
	m.Variant = Memory
	rm, err := Run(machine.XeonServer(), m)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg
	p.Variant = Parallel
	rp, err := Run(machine.XeonServer(), p)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Seconds >= rm.Seconds {
		t.Fatalf("Parallel (%v) not faster than Memory (%v) on 10 cores", rp.Seconds, rm.Seconds)
	}
}

func TestBytesMoved(t *testing.T) {
	if got := BytesMoved(2544, 2027, 3); got != 16*2544*2027*3 {
		t.Fatalf("BytesMoved = %d", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		r, err := Run(machine.RaspberryPi4(), Config{W: 32, H: 24, C: 3, F: 5, Variant: Parallel})
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic blur: %v vs %v", a, b)
	}
}

func TestReferenceLinearity(t *testing.T) {
	// Blur is linear: Reference(2·src) = 2·Reference(src).
	const w, h, ch, f = 12, 10, 1, 3
	src := make([]float32, w*h*ch)
	state := uint32(7)
	for i := range src {
		state = state*1664525 + 1013904223
		src[i] = float32(state>>8) / float32(1<<24)
	}
	double := make([]float32, len(src))
	for i := range src {
		double[i] = 2 * src[i]
	}
	k2 := Kernel2D(Kernel1D(f))
	a, b := Reference(src, k2, w, h, ch, f), Reference(double, k2, w, h, ch, f)
	for i := range a {
		if math.Abs(float64(b[i]-2*a[i])) > 1e-5 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, b[i], 2*a[i])
		}
	}
}
