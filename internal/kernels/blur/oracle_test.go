package blur

import (
	"testing"

	"riscvmem/internal/machine"
)

// TestRangeOracle asserts the TouchSpans-based blur kernels — whose
// single-span unit-stride bursts resolve through the batched miss pipeline
// (hier.AccessLines) — are bit-identical, in simulated cycles and every
// memory-system statistic, to the scalar element-by-element loops, for all
// five variants on every device preset.
func TestRangeOracle(t *testing.T) {
	for _, spec := range machine.All() {
		for _, v := range Variants() {
			cfg := Config{W: 40, H: 32, C: 3, F: 9, Variant: v, Verify: true}
			rng, err := Run(spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			elementwise = true
			ref, err := Run(spec, cfg)
			elementwise = false
			if err != nil {
				t.Fatal(err)
			}
			if rng.Cycles != ref.Cycles || rng.Mem != ref.Mem {
				t.Errorf("%s/%v: range path diverges: cycles %v vs %v, mem %+v vs %+v",
					spec.Name, v, rng.Cycles, ref.Cycles, rng.Mem, ref.Mem)
			}
		}
	}
}
