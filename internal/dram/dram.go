// Package dram models main memory as a set of independently queued channels.
//
// The model is deliberately first-order: each channel serves line-sized
// transfers at a fixed service rate (bytes per core cycle) after a fixed
// access latency, and requests queue FIFO per channel. Lines interleave
// across channels by address. This is enough to reproduce the paper's three
// DRAM-side observations: STREAM bandwidth differences between devices
// (Fig. 1), parallel speedup saturating at the channel count (§4.3 "speedup
// is limited by the number of available memory channels"), and prefetch
// traffic crowding out demand traffic on the bandwidth-starved VisionFive
// (Fig. 6, "Unit-stride" discussion).
// Deterministic by contract: bit-identical outputs across runs and
// processes (see DESIGN.md §11); machine-checked by simlint.
//simlint:deterministic
package dram

import (
	"fmt"

	"riscvmem/internal/units"
)

// Config describes a device's DRAM subsystem.
type Config struct {
	Name string
	// Channels is the number of independent channels; lines interleave
	// across them by line address.
	Channels int
	// BytesPerCycle is the per-channel service rate in bytes per core cycle.
	// (Aggregate peak bandwidth = Channels × BytesPerCycle × core frequency.)
	BytesPerCycle float64
	// LatencyCycles is the fixed access latency added to every request in
	// front of the transfer itself.
	LatencyCycles float64
	// LineBytes is the transfer granule (cache line size).
	LineBytes int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 0 {
		return fmt.Errorf("dram %s: channels must be positive", c.Name)
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("dram %s: bytes/cycle must be positive", c.Name)
	}
	if c.LatencyCycles < 0 {
		return fmt.Errorf("dram %s: negative latency", c.Name)
	}
	if c.LineBytes <= 0 || !units.IsPow2(c.LineBytes) {
		return fmt.Errorf("dram %s: line bytes %d must be a positive power of two", c.Name, c.LineBytes)
	}
	return nil
}

// PeakBandwidth returns the aggregate peak in bytes/second at freqGHz.
func (c Config) PeakBandwidth(freqGHz float64) units.BytesPerSec {
	return units.BytesPerSec(float64(c.Channels) * c.BytesPerCycle * freqGHz * 1e9)
}

// Stats aggregates traffic counters.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	// QueueCycles is total time requests spent waiting behind earlier
	// requests on their channel.
	QueueCycles float64
}

// Bytes returns total bytes moved in either direction.
func (s Stats) Bytes() uint64 { return s.BytesRead + s.BytesWritten }

// Model is the runtime state: one next-free timestamp per channel.
type Model struct {
	cfg      Config
	nextFree []float64
	busy     []float64 // accumulated busy cycles per channel
	lineMask uint64
	shift    uint
	// chanMask is Channels-1 when the channel count is a power of two
	// (interleave by mask instead of modulo), else -1.
	chanMask int64
	// lineXfer caches LineBytes/BytesPerCycle — the transfer time of the
	// line-sized requests that make up all real traffic.
	lineXfer float64
	Stats    Stats
}

// New builds a DRAM model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	chanMask := int64(-1)
	if units.IsPow2(int64(cfg.Channels)) {
		chanMask = int64(cfg.Channels - 1)
	}
	return &Model{
		cfg:      cfg,
		nextFree: make([]float64, cfg.Channels),
		busy:     make([]float64, cfg.Channels),
		shift:    units.Log2(cfg.LineBytes),
		chanMask: chanMask,
		lineXfer: float64(cfg.LineBytes) / cfg.BytesPerCycle,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the construction configuration.
func (m *Model) Config() Config { return m.cfg }

func (m *Model) channel(addr uint64) int {
	if m.chanMask >= 0 {
		return int((addr >> m.shift) & uint64(m.chanMask))
	}
	return int((addr >> m.shift) % uint64(m.cfg.Channels))
}

// serve is the timing core shared by Request and LineRead: channel pick,
// FIFO queueing (QueueCycles accumulates per request, in order — the float
// sums are part of the bit-exactness contract), occupancy and latency.
func (m *Model) serve(now float64, addr uint64, xfer float64) (done float64) {
	ch := m.channel(addr)
	start := now
	if m.nextFree[ch] > start {
		m.Stats.QueueCycles += m.nextFree[ch] - start
		start = m.nextFree[ch]
	}
	m.nextFree[ch] = start + xfer
	m.busy[ch] += xfer
	return start + m.cfg.LatencyCycles + xfer
}

// Request serves a blocking line transfer issued at time `now` (core cycles)
// and returns its completion time. Callers must issue requests in
// non-decreasing global time order (the simulator's event ordering
// guarantees this), so per-channel FIFO queueing is exact.
func (m *Model) Request(now float64, addr uint64, bytes int64, write bool) (done float64) {
	xfer := m.lineXfer
	if bytes != m.cfg.LineBytes {
		xfer = float64(bytes) / m.cfg.BytesPerCycle
	}
	done = m.serve(now, addr, xfer)
	if write {
		m.Stats.Writes++
		m.Stats.BytesWritten += uint64(bytes)
	} else {
		m.Stats.Reads++
		m.Stats.BytesRead += uint64(bytes)
	}
	return done
}

// LineRead is Request for a line-sized read with caller-batched traffic
// counters: timing is identical (same serve core), but Reads/BytesRead are
// left for the caller to fold in as one AddLineReads at the end of a line
// run (hier.AccessLines).
func (m *Model) LineRead(now float64, addr uint64) (done float64) {
	return m.serve(now, addr, m.lineXfer)
}

// AddLineReads folds n caller-batched LineRead transfers into the traffic
// statistics.
func (m *Model) AddLineReads(n uint64) {
	m.Stats.Reads += n
	m.Stats.BytesRead += n * uint64(m.cfg.LineBytes)
}

// Posted serves a non-blocking transfer (write-back or prefetch fill): it
// occupies channel time but the caller does not wait on the result beyond
// the returned completion time (prefetchers record it as the line's ready
// time; write-backs ignore it).
func (m *Model) Posted(now float64, addr uint64, bytes int64, write bool) (done float64) {
	return m.Request(now, addr, bytes, write)
}

// BusyCycles returns the accumulated busy time of channel ch.
func (m *Model) BusyCycles(ch int) float64 { return m.busy[ch] }

// Reset clears queue state and statistics.
func (m *Model) Reset() {
	for i := range m.nextFree {
		m.nextFree[i] = 0
		m.busy[i] = 0
	}
	m.Stats = Stats{}
}
