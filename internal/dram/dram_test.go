package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func cfg(channels int, bpc float64) Config {
	return Config{Name: "test", Channels: channels, BytesPerCycle: bpc, LatencyCycles: 100, LineBytes: 64}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "ch0", Channels: 0, BytesPerCycle: 1, LineBytes: 64},
		{Name: "bpc0", Channels: 1, BytesPerCycle: 0, LineBytes: 64},
		{Name: "neglat", Channels: 1, BytesPerCycle: 1, LatencyCycles: -1, LineBytes: 64},
		{Name: "line0", Channels: 1, BytesPerCycle: 1, LineBytes: 0},
		{Name: "npot", Channels: 1, BytesPerCycle: 1, LineBytes: 96},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q unexpectedly valid", c.Name)
		}
	}
	if err := cfg(2, 1.6).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPeakBandwidth(t *testing.T) {
	c := cfg(2, 1.6) // 2 ch × 1.6 B/cy × 1 GHz = 3.2 GB/s
	got := c.PeakBandwidth(1.0).GBps()
	if math.Abs(got-3.2) > 1e-9 {
		t.Fatalf("peak = %v GB/s, want 3.2", got)
	}
}

func TestSingleRequestLatency(t *testing.T) {
	m := MustNew(cfg(1, 1.0))
	done := m.Request(0, 0, 64, false)
	// latency 100 + 64 bytes at 1 B/cycle = 164.
	if done != 164 {
		t.Fatalf("done = %v, want 164", done)
	}
	if m.Stats.Reads != 1 || m.Stats.BytesRead != 64 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestQueueingOnSameChannel(t *testing.T) {
	m := MustNew(cfg(1, 1.0))
	m.Request(0, 0, 64, false)          // occupies channel until t=64
	done := m.Request(0, 64, 64, false) // same channel, queued behind
	if done != 64+100+64 {
		t.Fatalf("queued request done = %v, want 228", done)
	}
	if m.Stats.QueueCycles != 64 {
		t.Fatalf("QueueCycles = %v, want 64", m.Stats.QueueCycles)
	}
}

func TestChannelInterleavingAvoidsQueueing(t *testing.T) {
	m := MustNew(cfg(2, 1.0))
	// Lines 0 and 1 hit different channels: both complete at 164.
	d0 := m.Request(0, 0, 64, false)
	d1 := m.Request(0, 64, 64, false)
	if d0 != 164 || d1 != 164 {
		t.Fatalf("done = %v,%v; want 164,164", d0, d1)
	}
	if m.Stats.QueueCycles != 0 {
		t.Fatalf("unexpected queueing: %v", m.Stats.QueueCycles)
	}
}

func TestLateRequestDoesNotQueue(t *testing.T) {
	m := MustNew(cfg(1, 1.0))
	m.Request(0, 0, 64, false)
	done := m.Request(1000, 64, 64, false)
	if done != 1164 {
		t.Fatalf("done = %v, want 1164", done)
	}
	if m.Stats.QueueCycles != 0 {
		t.Fatalf("unexpected queueing: %v", m.Stats.QueueCycles)
	}
}

func TestWriteAccounting(t *testing.T) {
	m := MustNew(cfg(1, 1.0))
	m.Posted(0, 0, 64, true)
	if m.Stats.Writes != 1 || m.Stats.BytesWritten != 64 {
		t.Fatalf("stats = %+v", m.Stats)
	}
	if m.Stats.Bytes() != 64 {
		t.Fatalf("Bytes() = %d, want 64", m.Stats.Bytes())
	}
}

func TestBusyCyclesAndReset(t *testing.T) {
	m := MustNew(cfg(1, 2.0))
	m.Request(0, 0, 64, false) // 32 cycles of transfer
	if got := m.BusyCycles(0); got != 32 {
		t.Fatalf("BusyCycles = %v, want 32", got)
	}
	m.Reset()
	if m.BusyCycles(0) != 0 || m.Stats != (Stats{}) {
		t.Fatal("Reset incomplete")
	}
	if done := m.Request(0, 0, 64, false); done != 132 {
		t.Fatalf("post-reset request done = %v, want 132", done)
	}
}

// Property: a saturating stream on one channel achieves exactly the
// configured service rate; N cores' aggregate throughput never exceeds
// channels × rate.
func TestPropertyServiceRateIsCeiling(t *testing.T) {
	f := func(nReq uint8, chans uint8) bool {
		n := int(nReq)%200 + 50
		c := int(chans)%4 + 1
		m := MustNew(cfg(c, 1.6))
		var last float64
		for i := 0; i < n; i++ {
			done := m.Request(0, uint64(i)*64, 64, false)
			if done > last {
				last = done
			}
		}
		// All requests issued at t=0: total bytes / makespan must be at most
		// the aggregate service rate (latency only helps the bound).
		rate := float64(n*64) / last
		return rate <= float64(c)*1.6+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: request completion times on one channel are monotonically
// non-decreasing when issue times are non-decreasing (FIFO invariant).
func TestPropertyFIFOMonotonic(t *testing.T) {
	f := func(gaps []uint8) bool {
		m := MustNew(cfg(1, 1.0))
		now, prev := 0.0, 0.0
		for _, g := range gaps {
			now += float64(g)
			done := m.Request(now, 0, 64, false)
			if done < prev {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestLineReadEquivalence pins LineRead + one AddLineReads against Request:
// identical completion times, queueing and final statistics.
func TestLineReadEquivalence(t *testing.T) {
	cfg := Config{Name: "t", Channels: 2, BytesPerCycle: 0.5, LatencyCycles: 140, LineBytes: 64}
	ref := MustNew(cfg)
	got := MustNew(cfg)
	now := 0.0
	var lines uint64
	for i := 0; i < 200; i++ {
		addr := uint64(i%7) * 64
		d1 := ref.Request(now, addr, 64, false)
		d2 := got.LineRead(now, addr)
		if d1 != d2 {
			t.Fatalf("request %d diverges: got %v want %v", i, d2, d1)
		}
		lines++
		now += 3.5
	}
	got.AddLineReads(lines)
	if got.Stats != ref.Stats {
		t.Errorf("stats diverge: got %+v want %+v", got.Stats, ref.Stats)
	}
}
