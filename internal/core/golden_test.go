package core

import (
	"math"
	"testing"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
)

// TestGoldenCycleCounts pins exact simulated cycle counts for one fixed
// workload per kernel on every device. The simulator is deterministic by
// construction, so these values are stable across hosts and Go versions;
// the test exists to make *model* changes deliberate — if you change a
// latency, policy, or code path on purpose, regenerate the table and say so
// in the commit.
func TestGoldenCycleCounts(t *testing.T) {
	golden := []struct {
		device   string
		trCycles float64 // transpose Blocking, N=256
		blCycles float64 // blur 1D_kernels, 48×40×3, F=9
	}{
		{"Xeon", 85479.8202, 159827.8480},
		{"RaspberryPi4", 295038.1883, 196642.3053},
		{"VisionFive", 2302536.0000, 383920.0000},
		{"MangoPi", 6303370.0000, 488818.0000},
	}
	for _, g := range golden {
		spec, err := machine.ByName(g.device)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := transpose.Run(spec, transpose.Config{N: 256, Variant: transpose.Blocking})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tr.Cycles-g.trCycles) > 0.01 {
			t.Errorf("%s transpose: %.4f cycles, golden %.4f", g.device, tr.Cycles, g.trCycles)
		}
		bl, err := blur.Run(spec, blur.Config{W: 48, H: 40, C: 3, F: 9, Variant: blur.OneD})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bl.Cycles-g.blCycles) > 0.01 {
			t.Errorf("%s blur: %.4f cycles, golden %.4f", g.device, bl.Cycles, g.blCycles)
		}
	}
}
