package core

import (
	"testing"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
)

// fastOpts keeps suite tests quick: the two RISC-V boards (small caches →
// small DRAM-level working sets) at a high scale.
func fastOpts() Options {
	return Options{
		Scale:   32,
		Devices: []machine.Spec{machine.VisionFive(), machine.MangoPiD1()},
		Reps:    1,
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 8 || len(o.Devices) != 4 || o.Reps != 2 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestMatrixSizes(t *testing.T) {
	s := NewSuite(Options{Scale: 8})
	sz := s.matrixSizes()
	if sz[0] != 1024 || sz[1] != 2048 {
		t.Fatalf("scale-8 sizes = %v", sz)
	}
	s = NewSuite(Options{Scale: 1000}) // degenerate: clamped to 64
	sz = s.matrixSizes()
	if sz[0] != 64 || sz[1] != 64 {
		t.Fatalf("clamped sizes = %v", sz)
	}
}

func TestDRAMBandwidthCachedAndPositive(t *testing.T) {
	s := NewSuite(fastOpts())
	spec := machine.MangoPiD1()
	a, err := s.DRAMBandwidth(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 {
		t.Fatal("non-positive bandwidth")
	}
	b, err := s.DRAMBandwidth(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache returned a different value")
	}
}

func TestFig1Shape(t *testing.T) {
	s := NewSuite(fastOpts())
	cells, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// VisionFive: 3 levels × 4 tests; MangoPi: 2 levels × 4 tests.
	if len(cells) != 3*4+2*4 {
		t.Fatalf("cells = %d", len(cells))
	}
	// Per device: L1 COPY must beat DRAM COPY.
	byKey := map[string]float64{}
	for _, c := range cells {
		if c.Test.String() == "COPY" {
			byKey[c.Device+"/"+c.Level] = c.BW.GBps()
		}
	}
	for _, dev := range []string{"VisionFive", "MangoPi"} {
		if byKey[dev+"/L1"] <= byKey[dev+"/DRAM"] {
			t.Errorf("%s: L1 %.2f not above DRAM %.2f", dev, byKey[dev+"/L1"], byKey[dev+"/DRAM"])
		}
	}
	// MangoPi must have no L2 row.
	for _, c := range cells {
		if c.Device == "MangoPi" && c.Level == "L2" {
			t.Error("MangoPi reported an L2 level")
		}
	}
}

func TestFig2ShapeAndCapacitySkip(t *testing.T) {
	s := NewSuite(fastOpts())
	rows, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	// 2 devices × 2 sizes × 5 variants.
	if len(rows) != 2*2*5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Device == "MangoPi" && r.PaperN == PaperMatrixLarge {
			if !r.Skipped {
				t.Errorf("MangoPi 16384² row not skipped: %+v", r)
			}
			continue
		}
		if r.Skipped {
			t.Errorf("unexpected skip: %+v", r)
		}
		if r.Variant == transpose.Naive && r.Speedup != 1 {
			t.Errorf("naive speedup = %v", r.Speedup)
		}
		if r.Seconds <= 0 {
			t.Errorf("row without time: %+v", r)
		}
	}
	// Blocking must beat naive on both devices at the larger (surviving)
	// size for VisionFive.
	best := map[string]float64{}
	naive := map[string]float64{}
	for _, r := range rows {
		if r.Skipped || r.PaperN != PaperMatrixSmall {
			continue
		}
		if r.Variant == transpose.Naive {
			naive[r.Device] = r.Seconds
		}
		if r.Variant == transpose.ManualBlocking {
			best[r.Device] = r.Seconds
		}
	}
	for dev, nv := range naive {
		if best[dev] >= nv {
			t.Errorf("%s: Manual_blocking (%v) not faster than Naive (%v)", dev, best[dev], nv)
		}
	}
}

func TestFig3Utilizations(t *testing.T) {
	s := NewSuite(fastOpts())
	rows, err := s.Fig3(nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, r := range rows {
		if r.Skipped {
			continue
		}
		seen++
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("utilization out of range: %+v", r)
		}
	}
	if seen == 0 {
		t.Fatal("no utilization rows")
	}
}

func TestFig6And7(t *testing.T) {
	s := NewSuite(fastOpts())
	f6, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6) != 2*5 {
		t.Fatalf("fig6 rows = %d", len(f6))
	}
	for _, r := range f6 {
		if r.Seconds <= 0 {
			t.Errorf("no time: %+v", r)
		}
	}
	// 1D_kernels must beat Naive on both devices (O(F) vs O(F²)).
	sec := map[string]map[blur.Variant]float64{}
	for _, r := range f6 {
		if sec[r.Device] == nil {
			sec[r.Device] = map[blur.Variant]float64{}
		}
		sec[r.Device][r.Variant] = r.Seconds
	}
	for dev, m := range sec {
		if m[blur.OneD] >= m[blur.Naive] {
			t.Errorf("%s: 1D_kernels not faster than Naive", dev)
		}
	}

	f7, err := s.Fig7(f6)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7) != 2*3 {
		t.Fatalf("fig7 rows = %d", len(f7))
	}
	for _, r := range f7 {
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("utilization out of range: %+v", r)
		}
		if r.Variant == blur.OneD && (r.ImprovementOver1D < 0.999 || r.ImprovementOver1D > 1.001) {
			t.Errorf("1D improvement over itself = %v", r.ImprovementOver1D)
		}
	}
}

func TestFig3ReusesFig2Rows(t *testing.T) {
	s := NewSuite(fastOpts())
	f2, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Fig3(f2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Fig3(f2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatal("row counts differ")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

// TestSuiteRepeatedCellsHitCache pins the suite's memoization rebase:
// re-running a figure on the same Suite, and deriving Fig3 from a fresh
// Fig2 pass, perform zero new simulations — the runner's result cache
// serves every repeated cell.
func TestSuiteRepeatedCellsHitCache(t *testing.T) {
	s := NewSuite(Options{Scale: 64, Devices: []machine.Spec{machine.MangoPiD1(), machine.VisionFive()}})
	first, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	_, coldMisses := s.CacheStats()
	if coldMisses == 0 {
		t.Fatal("cold Fig2 simulated nothing")
	}
	again, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := s.CacheStats(); misses != coldMisses {
		t.Errorf("Fig2 re-run simulated %d new cells, want 0", misses-coldMisses)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Errorf("row %d: cached Fig2 replay diverged: %+v != %+v", i, again[i], first[i])
		}
	}
	// Fig3(nil) re-derives Fig2 internally: transposition cells replay from
	// the cache; only the STREAM cells DRAMBandwidth needs simulate anew.
	if _, err := s.Fig3(nil); err != nil {
		t.Fatal(err)
	}
	_, withStream := s.CacheStats()
	streamCells := uint64(2 * 4) // 2 devices × 4 STREAM tests at the DRAM level
	if withStream != coldMisses+streamCells {
		t.Errorf("Fig3(nil) simulated %d new cells, want %d", withStream-coldMisses, streamCells)
	}
	// A second full derivation is entirely free: the Fig2 cells and the
	// STREAM cells all replay from the cache (DRAMBandwidth additionally
	// short-circuits through its own per-device map).
	if _, err := s.Fig3(nil); err != nil {
		t.Fatal(err)
	}
	if _, final := s.CacheStats(); final != coldMisses+streamCells {
		t.Errorf("repeated Fig3(nil) simulated %d new cells, want 0", final-coldMisses-streamCells)
	}
}
