// Package core orchestrates the paper's experiments: it wires the kernels,
// device presets and metrics together to regenerate every table and figure
// of the evaluation section (Fig. 1, 2, 3, 6, 7 — Figs. 4 and 5 are
// explanatory diagrams).
//
// All experiments take a Scale: the paper's full workloads (8192²/16384²
// doubles, a 2544×2027×3 image) are expensive under functional simulation,
// so scaled runs shrink the working sets while keeping them far beyond every
// cache capacity — the regime every figure depends on. Scale 1 reproduces
// the paper's exact sizes.
package core

import (
	"context"
	"fmt"

	"riscvmem/internal/kernels/blur"
	"riscvmem/internal/kernels/stream"
	"riscvmem/internal/kernels/transpose"
	"riscvmem/internal/machine"
	"riscvmem/internal/metrics"
	"riscvmem/internal/run"
	"riscvmem/internal/units"
)

// Paper-scale workload constants (§4).
const (
	PaperMatrixSmall = 8192
	PaperMatrixLarge = 16384
	PaperImageW      = 2544
	PaperImageH      = 2027
	PaperImageC      = 3
	PaperFilter      = 19
)

// Options configures a Suite.
type Options struct {
	// Scale divides workload sizes; 1 = paper scale. 0 defaults to 8.
	Scale int
	// Devices defaults to the paper's four machines.
	Devices []machine.Spec
	// Verify checks functional correctness of every kernel run.
	Verify bool
	// Reps for STREAM repetitions (default 2).
	Reps int
}

func (o Options) withDefaults() Options {
	if o.Scale < 1 {
		o.Scale = 8
	}
	if len(o.Devices) == 0 {
		o.Devices = machine.All()
	}
	if o.Reps < 1 {
		o.Reps = 2
	}
	return o
}

// Suite runs experiments, caching the STREAM DRAM bandwidth each device
// achieves (the denominator of every utilization metric). All measurements
// execute as batches on a pooled run.Runner: machines are reset and reused
// across jobs, and the figure cross-products run on host goroutines — with
// results bit-identical to serial fresh-machine runs (the runner package's
// oracle tests pin this equivalence).
//
// The runner also memoizes Results (every built-in workload is run.Keyed),
// so the suite's repeated cells simulate exactly once: DRAMBandwidth reuses
// the Fig1 DRAM-level STREAM cells, a Fig3(nil) that re-derives Fig2 replays
// it from the cache, and re-running any figure on the same Suite performs
// zero new simulations (see CacheStats).
type Suite struct {
	opt    Options
	runner *run.Runner
	dramBW map[string]units.BytesPerSec
}

// NewSuite builds a Suite.
func NewSuite(opt Options) *Suite {
	return &Suite{
		opt:    opt.withDefaults(),
		runner: run.New(run.Options{}),
		dramBW: map[string]units.BytesPerSec{},
	}
}

// Options returns the effective (defaulted) options.
func (s *Suite) Options() Options { return s.opt }

// CacheStats reports the suite runner's memoization counters: hits is the
// number of cells served from the result cache, misses the number of
// simulations actually executed.
func (s *Suite) CacheStats() (hits, misses uint64) { return s.runner.CacheStats() }

// DRAMBandwidth returns the device's best achieved STREAM bandwidth at the
// DRAM level (maximum over the four tests), measuring it on first use.
func (s *Suite) DRAMBandwidth(spec machine.Spec) (units.BytesPerSec, error) {
	if bw, ok := s.dramBW[spec.Name]; ok {
		return bw, nil
	}
	levels := stream.Levels(spec, s.opt.Scale)
	dram := levels[len(levels)-1]
	workloads := make([]run.Workload, 0, len(stream.Tests()))
	for _, t := range stream.Tests() {
		workloads = append(workloads, run.Stream(stream.Config{
			Test: t, Elems: dram.Elems, Cores: dram.Cores,
			Reps: s.opt.Reps, ScaleBy: dram.ScaleBy,
		}))
	}
	results, err := s.runner.Run(context.Background(), run.Cross([]machine.Spec{spec}, workloads))
	if err != nil {
		return 0, fmt.Errorf("stream DRAM sweep: %w", err)
	}
	var best units.BytesPerSec
	for _, r := range results {
		if r.Bandwidth > best {
			best = r.Bandwidth
		}
	}
	s.dramBW[spec.Name] = best
	return best, nil
}

// Fig1Cell is one bar of Fig. 1: achieved STREAM bandwidth for a device,
// memory level and test.
type Fig1Cell struct {
	Device string
	Level  string
	Test   stream.Test
	BW     units.BytesPerSec
}

// Fig1 measures STREAM at every memory level of every device, batching the
// whole device × level × test cross-product through the pooled runner.
func (s *Suite) Fig1() ([]Fig1Cell, error) {
	var jobs []run.Job
	var cells []Fig1Cell
	for _, spec := range s.opt.Devices {
		for _, lv := range stream.Levels(spec, s.opt.Scale) {
			for _, t := range stream.Tests() {
				jobs = append(jobs, run.Job{Device: spec, Workload: run.Stream(stream.Config{
					Test: t, Elems: lv.Elems, Cores: lv.Cores,
					Reps: s.opt.Reps, ScaleBy: lv.ScaleBy,
				})})
				cells = append(cells, Fig1Cell{Device: spec.Name, Level: lv.Name, Test: t})
			}
		}
	}
	results, err := s.runner.Run(context.Background(), jobs)
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	for i, r := range results {
		cells[i].BW = r.Bandwidth
		if cells[i].Level == "DRAM" && r.Bandwidth > s.dramBW[cells[i].Device] {
			s.dramBW[cells[i].Device] = r.Bandwidth // reuse for utilization metrics
		}
	}
	return cells, nil
}

// Fig2Row is one bar of Fig. 2: a transposition variant's time on a device,
// annotated with its speedup over the naive version.
type Fig2Row struct {
	Device  string
	N       int // simulated matrix dimension (paper size / scale)
	PaperN  int // the paper-scale dimension this row stands for
	Variant transpose.Variant
	Seconds float64
	Speedup float64
	// Skipped mirrors the paper's capacity story: true when the paper-scale
	// matrix does not fit the device's RAM (16384² on the Mango Pi).
	Skipped bool
}

// matrixSizes returns the two simulated sizes (paper sizes / scale), kept
// block-aligned.
func (s *Suite) matrixSizes() [2]int {
	clamp := func(n int) int {
		n &^= 63 // multiple of 64 for any block size
		if n < 64 {
			n = 64
		}
		return n
	}
	return [2]int{clamp(PaperMatrixSmall / s.opt.Scale), clamp(PaperMatrixLarge / s.opt.Scale)}
}

// Fig2 runs the five transposition variants on both matrix sizes, batching
// every fitting device × size × variant combination through the runner.
func (s *Suite) Fig2() ([]Fig2Row, error) {
	var jobs []run.Job
	var rows []Fig2Row
	measured := make([]int, 0, 8) // measured[result index] = row index
	sizes := s.matrixSizes()
	for _, spec := range s.opt.Devices {
		for si, n := range sizes {
			paperN := [2]int{PaperMatrixSmall, PaperMatrixLarge}[si]
			fits := spec.Fits(8 * int64(paperN) * int64(paperN))
			for _, v := range transpose.Variants() {
				row := Fig2Row{Device: spec.Name, N: n, PaperN: paperN, Variant: v, Skipped: !fits}
				if fits {
					measured = append(measured, len(rows))
					jobs = append(jobs, run.Job{Device: spec, Workload: run.Transpose(
						transpose.Config{N: n, Variant: v, Verify: s.opt.Verify})})
				}
				rows = append(rows, row)
			}
		}
	}
	results, err := s.runner.Run(context.Background(), jobs)
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	type key struct {
		dev string
		n   int
	}
	naive := map[key]float64{}
	for ri, res := range results {
		row := &rows[measured[ri]]
		row.Seconds = res.Seconds
		k := key{row.Device, row.N}
		if row.Variant == transpose.Naive {
			naive[k] = res.Seconds
		}
		row.Speedup = metrics.Speedup(naive[k], res.Seconds)
	}
	return rows, nil
}

// Fig3Row is one bar of Fig. 3: memory-bandwidth utilization of the naive
// and the best optimized transposition on a device.
type Fig3Row struct {
	Device      string
	N           int
	PaperN      int
	Variant     transpose.Variant
	Utilization float64
	Skipped     bool
}

// Fig3 computes the §3.3 utilization metric for the naive and the best
// optimized implementation, per device and size. It can reuse rows from a
// prior Fig2 call; pass nil to measure afresh.
func (s *Suite) Fig3(fig2 []Fig2Row) ([]Fig3Row, error) {
	if fig2 == nil {
		var err error
		fig2, err = s.Fig2()
		if err != nil {
			return nil, err
		}
	}
	type key struct {
		dev string
		n   int
	}
	naive := map[key]Fig2Row{}
	best := map[key]Fig2Row{}
	for _, r := range fig2 {
		if r.Skipped {
			continue
		}
		k := key{r.Device, r.N}
		if r.Variant == transpose.Naive {
			naive[k] = r
		} else if b, ok := best[k]; !ok || r.Seconds < b.Seconds {
			best[k] = r
		}
	}
	var out []Fig3Row
	for _, spec := range s.opt.Devices {
		bw, err := s.DRAMBandwidth(spec)
		if err != nil {
			return nil, err
		}
		for si, n := range s.matrixSizes() {
			paperN := [2]int{PaperMatrixSmall, PaperMatrixLarge}[si]
			k := key{spec.Name, n}
			nv, ok := naive[k]
			if !ok {
				out = append(out, Fig3Row{Device: spec.Name, N: n, PaperN: paperN, Skipped: true})
				continue
			}
			bytes := transpose.BytesMoved(n)
			bv := best[k]
			out = append(out,
				Fig3Row{Device: spec.Name, N: n, PaperN: paperN, Variant: nv.Variant,
					Utilization: metrics.Utilization(bytes, nv.Seconds, bw)},
				Fig3Row{Device: spec.Name, N: n, PaperN: paperN, Variant: bv.Variant,
					Utilization: metrics.Utilization(bytes, bv.Seconds, bw)},
			)
		}
	}
	return out, nil
}

// imageSize returns the simulated blur image dimensions.
func (s *Suite) imageSize() (w, h int) {
	return PaperImageW / s.opt.Scale, PaperImageH / s.opt.Scale
}

// Fig6Row is one bar of Fig. 6: a blur variant's time and speedup.
type Fig6Row struct {
	Device  string
	W, H    int
	Variant blur.Variant
	Seconds float64
	Speedup float64
}

// Fig6 runs the five Gaussian-blur variants on every device, batched as one
// device × variant cross-product.
func (s *Suite) Fig6() ([]Fig6Row, error) {
	w, h := s.imageSize()
	workloads := make([]run.Workload, 0, len(blur.Variants()))
	for _, v := range blur.Variants() {
		workloads = append(workloads, run.Blur(blur.Config{
			W: w, H: h, C: PaperImageC, F: PaperFilter, Variant: v, Verify: s.opt.Verify,
		}))
	}
	results, err := s.runner.Run(context.Background(), run.Cross(s.opt.Devices, workloads))
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	out := make([]Fig6Row, 0, len(results))
	naive := map[string]float64{}
	i := 0
	for _, spec := range s.opt.Devices {
		for _, v := range blur.Variants() {
			res := results[i]
			i++
			if v == blur.Naive {
				naive[spec.Name] = res.Seconds
			}
			out = append(out, Fig6Row{
				Device: spec.Name, W: w, H: h, Variant: v,
				Seconds: res.Seconds, Speedup: metrics.Speedup(naive[spec.Name], res.Seconds),
			})
		}
	}
	return out, nil
}

// Fig7Row is one bar of Fig. 7: bandwidth utilization of an optimized blur
// variant, annotated with its improvement over 1D_kernels.
type Fig7Row struct {
	Device      string
	Variant     blur.Variant
	Utilization float64
	// ImprovementOver1D is this variant's utilization divided by the
	// 1D_kernels utilization (the labels in the paper's Fig. 7).
	ImprovementOver1D float64
}

// Fig7 computes the utilization metric for the three optimized blur
// implementations (1D_kernels, Memory, Parallel), reusing Fig6 rows when
// given (pass nil to measure afresh).
func (s *Suite) Fig7(fig6 []Fig6Row) ([]Fig7Row, error) {
	if fig6 == nil {
		var err error
		fig6, err = s.Fig6()
		if err != nil {
			return nil, err
		}
	}
	w, h := s.imageSize()
	bytes := blur.BytesMoved(w, h, PaperImageC)
	secs := map[string]map[blur.Variant]float64{}
	for _, r := range fig6 {
		if secs[r.Device] == nil {
			secs[r.Device] = map[blur.Variant]float64{}
		}
		secs[r.Device][r.Variant] = r.Seconds
	}
	var out []Fig7Row
	for _, spec := range s.opt.Devices {
		bw, err := s.DRAMBandwidth(spec)
		if err != nil {
			return nil, err
		}
		base := metrics.Utilization(bytes, secs[spec.Name][blur.OneD], bw)
		for _, v := range []blur.Variant{blur.OneD, blur.Memory, blur.Parallel} {
			u := metrics.Utilization(bytes, secs[spec.Name][v], bw)
			imp := 0.0
			if base > 0 {
				imp = u / base
			}
			out = append(out, Fig7Row{Device: spec.Name, Variant: v, Utilization: u, ImprovementOver1D: imp})
		}
	}
	return out, nil
}
