package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// maxBodyBytes bounds request bodies; a batch request is a few KB even at
// the job limit, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// NewHandler fronts a Service with HTTP — the simd wire protocol:
//
//	GET    /healthz        liveness: {"status":"ok"}, or 503 {"status":"draining"}
//	GET    /metrics        Prometheus text exposition (see WriteMetrics)
//	GET    /v1/devices     device presets
//	GET    /v1/workloads   kernels, params, registered workloads, sweep axes
//	POST   /v1/batch       BatchRequest → Response (synchronous)
//	POST   /v1/sweep       SweepRequest → Response (synchronous)
//	POST   /v1/jobs        JobRequest → 202 JobStatus (async; poll the ID)
//	GET    /v1/jobs        stored jobs, newest first (rows elided)
//	GET    /v1/jobs/{id}   JobStatus: state plus rows accumulated so far;
//	                       ?after=N elides the first N rows (incremental
//	                       polling — pass the previous snapshot's next_after)
//	DELETE /v1/jobs/{id}   request cancellation; returns the snapshot
//
// Request and response bodies are JSON. Errors are {"error": "..."}:
// 400 for malformed or unresolvable requests (ValidationError), 429 with a
// Retry-After header when the admission queue or the client's rate limit
// is exhausted, 503 while draining, 504 when the request's own deadline
// expired, 500 for server-side execution failures and anything
// unclassified. Per-client rate limiting keys on the X-Client-ID header,
// falling back to the remote host.
//
// The handler is stateless; all shared state (machine pool, memo cache,
// admission slots, job store) lives in the Service, so multiple handlers
// (or transports) can front one Service.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WriteMetrics(w); err != nil {
			s.logf("service: writing /metrics response: %v", err)
		}
	})
	mux.HandleFunc("GET /v1/devices", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.Devices())
	})
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.Workloads())
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !s.readJSON(w, r, &req) {
			return
		}
		resp, err := s.Batch(clientCtx(r), req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if !s.readJSON(w, r, &req) {
			return
		}
		resp, err := s.Sweep(clientCtx(r), req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if !s.readJSON(w, r, &req) {
			return
		}
		js, err := s.SubmitJob(clientCtx(r), req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+js.ID)
		s.writeJSON(w, http.StatusAccepted, js)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		after := 0
		if raw := r.URL.Query().Get("after"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				s.writeJSON(w, http.StatusBadRequest,
					map[string]string{"error": fmt.Sprintf("bad after cursor %q: want a non-negative row count", raw)})
				return
			}
			after = n
		}
		js, ok := s.JobAfter(r.PathValue("id"), after)
		if !ok {
			s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
			return
		}
		s.writeJSON(w, http.StatusOK, js)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		js, ok := s.CancelJob(r.PathValue("id"))
		if !ok {
			s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
			return
		}
		s.writeJSON(w, http.StatusOK, js)
	})
	return mux
}

// clientCtx tags the request context with the caller's identity for rate
// limiting: the X-Client-ID header when present, else the remote host.
func clientCtx(r *http.Request) context.Context {
	id := r.Header.Get("X-Client-ID")
	if id == "" {
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			id = host
		} else {
			id = r.RemoteAddr
		}
	}
	return WithClientID(r.Context(), id)
}

// readJSON decodes the request body, rejecting trailing garbage and
// unknown fields so typos ("workload" for "workloads") fail loudly.
func (s *Service) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	if dec.More() {
		s.writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": "bad request body: trailing data after JSON value"})
		return false
	}
	return true
}

// writeError maps service errors onto the status taxonomy.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	WriteError(w, err, s.opt.Logf)
}

// writeJSON writes a JSON response through the shared encoder.
func (s *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	WriteJSON(w, status, v, s.opt.Logf)
}

// WriteError maps service errors onto the status taxonomy. Only explicitly
// classified client mistakes earn a 4xx; anything unrecognized is a 500 —
// an unexpected server-side failure must not be blamed on the request.
// Exported so other transports over the same error taxonomy (the cluster
// coordinator's handler) report identically to the standalone daemon.
func WriteError(w http.ResponseWriter, err error, logf func(format string, args ...any)) {
	status := http.StatusInternalServerError
	var (
		valErr  *ValidationError
		overErr *OverloadError
	)
	switch {
	case errors.As(err, &valErr):
		status = http.StatusBadRequest
	case errors.As(err, &overErr):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After",
			strconv.Itoa(int((overErr.RetryAfter+time.Second-1)/time.Second)))
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrRateLimited):
		// Unwrapped sentinels (in-process callers constructing their own).
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	WriteJSON(w, status, map[string]string{"error": err.Error()}, logf)
}

// WriteJSON writes a JSON response. Encode failures past the status line
// cannot reach the client anymore, but they must not vanish: they are the
// only trace of a torn response (marshalling bug, dead connection); they
// go to logf (nil discards).
func WriteJSON(w http.ResponseWriter, status int, v any, logf func(format string, args ...any)) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil && logf != nil {
		logf("service: writing %d response: %v", status, err)
	}
}
