package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxBodyBytes bounds request bodies; a batch request is a few KB even at
// the job limit, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// NewHandler fronts a Service with HTTP — the simd wire protocol:
//
//	GET  /healthz       liveness: {"status":"ok"}
//	GET  /v1/devices    device presets
//	GET  /v1/workloads  kernels, params, registered workloads, sweep axes
//	POST /v1/batch      BatchRequest → Response
//	POST /v1/sweep      SweepRequest → Response
//
// Request and response bodies are JSON. Errors are {"error": "..."} with
// 400 for malformed or unresolvable requests, 429 when the service's
// admission limit is reached, 504 when the request's own deadline expired,
// and 500 when a validated sweep failed during execution (batch execution
// failures are per-row partial results, not errors). The handler is
// stateless; all shared
// state (machine pool, memo cache, admission slots) lives in the Service,
// so multiple handlers (or transports) can front one Service.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/devices", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Devices())
	})
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Workloads())
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := s.Batch(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := s.Sweep(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// readJSON decodes the request body, rejecting trailing garbage and
// unknown fields so typos ("workload" for "workloads") fail loudly.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	if dec.More() {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": "bad request body: trailing data after JSON value"})
		return false
	}
	return true
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var exec *ExecutionError
	switch {
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.As(err, &exec):
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is gone; nothing left to report to
}
