package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the service's Prometheus exposition: WriteMetrics renders
// the operational counters — per-tier cache traffic, pool and admission
// state, job-store occupancy, request latency — in the text format every
// Prometheus-compatible scraper reads. It is hand-rolled (a dozen gauge/
// counter lines and one fixed-bucket histogram) so the module stays
// dependency-free; cmd/simd mounts it at GET /metrics.

// latencyBuckets are the request-duration histogram's upper bounds in
// seconds. Coarse decades: simulations span ~milliseconds (warm cache hits)
// to tens of seconds (cold 4096-job batches), so finer resolution would
// only add scrape noise.
var latencyBuckets = [...]float64{0.001, 0.01, 0.1, 1, 10}

// latencyHist is a fixed-bucket cumulative histogram fed by observeLatency.
// Lock-free: one atomic add per observation on the fast path.
type latencyHist struct {
	counts [len(latencyBuckets) + 1]atomic.Uint64 // +1 for the +Inf bucket
	sumNS  atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
}

// kernelLatencyBuckets are the per-kernel job-duration bounds. Finer at
// the low end than the request buckets: a memoized cell completes in
// microseconds, and the 100µs/1ms buckets are what make warm-vs-cold
// visible per kernel.
var kernelLatencyBuckets = [...]float64{0.0001, 0.001, 0.01, 0.1, 1, 10}

// maxKernelSeries bounds the label cardinality a scrape can accumulate;
// kernels past the cap (runaway custom registrations) fold into "other".
const maxKernelSeries = 64

// kernelHist is a family of fixed-bucket histograms keyed by kernel label,
// fed once per completed job via observeProgress. Same lock-free scheme as
// latencyHist: the fast path is one sync.Map load plus two atomic adds.
type kernelHist struct {
	m sync.Map     // kernel label -> *kernelSeries
	n atomic.Int64 // distinct labels stored, for the cardinality cap
}

type kernelSeries struct {
	counts [len(kernelLatencyBuckets) + 1]atomic.Uint64 // +1 for +Inf
	sumNS  atomic.Int64
}

func (k *kernelHist) observe(label string, d time.Duration) {
	h := k.series(label)
	sec := d.Seconds()
	i := 0
	for i < len(kernelLatencyBuckets) && sec > kernelLatencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
}

func (k *kernelHist) series(label string) *kernelSeries {
	if v, ok := k.m.Load(label); ok {
		return v.(*kernelSeries)
	}
	if k.n.Load() >= maxKernelSeries {
		label = "other"
		if v, ok := k.m.Load(label); ok {
			return v.(*kernelSeries)
		}
	}
	v, loaded := k.m.LoadOrStore(label, &kernelSeries{})
	if !loaded {
		k.n.Add(1) // approximate under races; the cap is a hygiene bound
	}
	return v.(*kernelSeries)
}

// write renders the family, labels in sorted order for stable scrapes.
func (k *kernelHist) write(b *strings.Builder) {
	var labels []string
	k.m.Range(func(key, _ any) bool {
		labels = append(labels, key.(string))
		return true
	})
	if len(labels) == 0 {
		return
	}
	sort.Strings(labels)
	fmt.Fprintf(b, "# HELP simd_kernel_duration_seconds Per-job execution time by kernel (cache hits included).\n")
	fmt.Fprintf(b, "# TYPE simd_kernel_duration_seconds histogram\n")
	for _, label := range labels {
		v, _ := k.m.Load(label)
		h := v.(*kernelSeries)
		cum := uint64(0)
		for i, le := range kernelLatencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "simd_kernel_duration_seconds_bucket{kernel=%q,le=%q} %d\n",
				label, trimFloat(le), cum)
		}
		cum += h.counts[len(kernelLatencyBuckets)].Load()
		fmt.Fprintf(b, "simd_kernel_duration_seconds_bucket{kernel=%q,le=\"+Inf\"} %d\n", label, cum)
		fmt.Fprintf(b, "simd_kernel_duration_seconds_sum{kernel=%q} %g\n",
			label, time.Duration(h.sumNS.Load()).Seconds())
		fmt.Fprintf(b, "simd_kernel_duration_seconds_count{kernel=%q} %d\n", label, cum)
	}
}

// kernelLabel maps a workload name onto its histogram label: the kernel
// family before the first '/' ("stream/TRIAD" → "stream"), or the whole
// name for unstructured custom registrations.
func kernelLabel(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// WriteMetrics renders the service's operational metrics in Prometheus
// text exposition format (version 0.0.4). Everything is a point-in-time
// snapshot of counters the service already maintains — rendering performs
// no simulation work and takes no long-held locks.
func (s *Service) WriteMetrics(w io.Writer) error {
	var b strings.Builder

	hits, misses := s.runner.CacheStats()
	counter(&b, "simd_cache_hits_total",
		"Keyed jobs served from the memo store without simulating.", hits)
	counter(&b, "simd_cache_misses_total",
		"Keyed jobs that required a new simulation.", misses)

	ts := s.runner.TierStats()
	metric(&b, "simd_cache_tier_hits_total", "counter",
		"Memo store lookups served per tier.",
		sample{labels: `tier="memory"`, value: float64(ts.MemoryHits)},
		sample{labels: `tier="disk"`, value: float64(ts.DiskHits)})
	metric(&b, "simd_cache_tier_misses_total", "counter",
		"Memo store lookups that missed per tier.",
		sample{labels: `tier="memory"`, value: float64(ts.MemoryMisses)},
		sample{labels: `tier="disk"`, value: float64(ts.DiskMisses)})
	counter(&b, "simd_cache_memory_evictions_total",
		"Entries evicted from the bounded in-memory cache tier.", ts.MemoryEvictions)
	counter(&b, "simd_cache_disk_corrupt_total",
		"Persisted entries quarantined as unreadable and re-simulated.", ts.DiskCorrupt)
	counter(&b, "simd_cache_disk_writes_total",
		"Results persisted to the disk cache tier.", ts.DiskWrites)
	counter(&b, "simd_cache_disk_write_errors_total",
		"Failed persists (the request still succeeded from memory).", ts.DiskWriteErrors)
	counter(&b, "simd_runs_abandoned_total",
		"Simulations that kept running after their requester gave up.", s.runner.Abandoned())

	gauge(&b, "simd_pool_machines",
		"Idle simulated machines pooled for reuse.", float64(s.runner.PoolSize()))
	gauge(&b, "simd_inflight_requests",
		"Requests currently holding an execution slot.", float64(len(s.sem)))
	gauge(&b, "simd_queue_depth",
		"Requests waiting for an execution slot.", float64(s.queued.Load()))
	stored, active := s.jobCounts()
	gauge(&b, "simd_jobs_stored",
		"Async jobs held in the job store (all states).", float64(stored))
	gauge(&b, "simd_jobs_active",
		"Async jobs queued or running.", float64(active))

	s.latency.write(&b)
	s.kernels.write(&b)

	_, err := io.WriteString(w, b.String())
	return err
}

// write renders the histogram in Prometheus cumulative-bucket form.
func (h *latencyHist) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP simd_request_duration_seconds Execution time of admitted requests (queue wait excluded).\n")
	fmt.Fprintf(b, "# TYPE simd_request_duration_seconds histogram\n")
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "simd_request_duration_seconds_bucket{le=%q} %d\n", trimFloat(le), cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(b, "simd_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(b, "simd_request_duration_seconds_sum %g\n",
		time.Duration(h.sumNS.Load()).Seconds())
	fmt.Fprintf(b, "simd_request_duration_seconds_count %d\n", cum)
}

// sample is one labelled series of a multi-series metric.
type sample struct {
	labels string // rendered label pairs, no braces; empty for none
	value  float64
}

// metric appends one metric family: HELP, TYPE, then each sample.
func metric(b *strings.Builder, name, typ, help string, samples ...sample) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, smp := range samples {
		if smp.labels == "" {
			fmt.Fprintf(b, "%s %s\n", name, trimFloat(smp.value))
		} else {
			fmt.Fprintf(b, "%s{%s} %s\n", name, smp.labels, trimFloat(smp.value))
		}
	}
}

func counter(b *strings.Builder, name, help string, v uint64) {
	metric(b, name, "counter", help, sample{value: float64(v)})
}

func gauge(b *strings.Builder, name, help string, v float64) {
	metric(b, name, "gauge", help, sample{value: v})
}

// trimFloat renders a float the way Prometheus expects: integral values
// without a decimal point, everything else in shortest form.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jobCounts snapshots the job store: total stored jobs and how many are
// still queued or running.
func (s *Service) jobCounts() (stored, active int) {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	for _, j := range s.jobs.jobs {
		if !j.state.terminal() {
			active++
		}
	}
	return len(s.jobs.jobs), active
}
