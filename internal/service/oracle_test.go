package service

import (
	"context"
	"testing"

	"riscvmem/internal/machine"
	"riscvmem/internal/run"
)

// oracleSpecs is the full kernel cross-product the oracle pins: every
// built-in kernel in every variant, at test-sized configurations.
func oracleSpecs() []run.WorkloadSpec {
	specStrs := []string{
		"stream:test=COPY,elems=4096,reps=1",
		"stream:test=SCALE,elems=4096,reps=1",
		"stream:test=SUM,elems=4096,reps=1",
		"stream:test=TRIAD,elems=4096,reps=1",
		"transpose:variant=Naive,n=128",
		"transpose:variant=Parallel,n=128",
		"transpose:variant=Blocking,n=128",
		"transpose:variant=Manual_blocking,n=128",
		"transpose:variant=Dynamic,n=128",
		"gblur:variant=Naive,w=64,h=48,c=3,f=5",
		"gblur:variant=Unit-stride,w=64,h=48,c=3,f=5",
		"gblur:variant=1D_kernels,w=64,h=48,c=3,f=5",
		"gblur:variant=Memory,w=64,h=48,c=3,f=5",
		"gblur:variant=Parallel,w=64,h=48,c=3,f=5",
	}
	specs := make([]run.WorkloadSpec, len(specStrs))
	for i, s := range specStrs {
		specs[i] = run.MustParseWorkloadSpec(s)
	}
	return specs
}

// TestServiceOracle pins Service-path results bit-identical to direct
// Runner-path results over the full kernel × device cross-product, and
// asserts a repeated (warm) request is served entirely from the memo cache
// — zero new simulations.
func TestServiceOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-product oracle")
	}
	specs := oracleSpecs()
	devices := machine.All()
	deviceNames := make([]string, len(devices))
	for i, d := range devices {
		deviceNames[i] = d.Name
	}

	// Direct Runner path: fresh runner, same cross-product shape
	// (devices outermost), caching disabled so every job simulates.
	workloads := make([]run.Workload, len(specs))
	for i, spec := range specs {
		w, err := run.NewWorkload(spec)
		if err != nil {
			t.Fatalf("NewWorkload(%s): %v", spec, err)
		}
		workloads[i] = w
	}
	direct, err := run.New(run.Options{DisableCache: true}).
		Run(context.Background(), run.Cross(devices, workloads))
	if err != nil {
		t.Fatal(err)
	}

	// Service path.
	svc := New(Options{})
	resp, err := svc.Batch(context.Background(), BatchRequest{
		Devices: deviceNames, Workloads: specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Errors) > 0 {
		t.Fatalf("service batch reported errors: %v", resp.Errors)
	}
	if len(resp.Results) != len(direct) {
		t.Fatalf("service returned %d rows, direct %d", len(resp.Results), len(direct))
	}
	for i, row := range resp.Results {
		if row.Error != "" {
			t.Fatalf("row %d: error %q", i, row.Error)
		}
		if row.Result != direct[i] {
			t.Errorf("row %d (%s on %s): service %+v != direct %+v",
				i, row.Result.Workload, row.Result.Device, row.Result, direct[i])
		}
	}
	if resp.Cache.RequestMisses != uint64(len(direct)) {
		t.Errorf("cold request: %d new simulations, want %d", resp.Cache.RequestMisses, len(direct))
	}

	// Warm repeat: same request, zero new simulations, identical rows.
	warm, err := svc.Batch(context.Background(), BatchRequest{
		Devices: deviceNames, Workloads: specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.RequestMisses != 0 {
		t.Errorf("warm request caused %d new simulations, want 0", warm.Cache.RequestMisses)
	}
	if warm.Cache.RequestHits != uint64(len(direct)) {
		t.Errorf("warm request: %d cache hits, want %d", warm.Cache.RequestHits, len(direct))
	}
	for i := range warm.Results {
		if warm.Results[i].Result != direct[i] {
			t.Errorf("warm row %d: %+v != direct %+v", i, warm.Results[i].Result, direct[i])
		}
	}
}

// TestServiceSweepOracle pins the Sweep path bit-identical to a direct
// sweep.Run — and its base cell bit-identical to the direct preset run.
func TestServiceSweepOracle(t *testing.T) {
	svc := New(Options{})
	req := SweepRequest{
		Device:    "MangoPi",
		Axes:      []string{"l2=base,128KiB", "maxinflight=base,2"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("transpose:variant=Naive,n=128")},
	}
	resp, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("sweep returned %d rows, want 4", len(resp.Results))
	}

	// Direct preset run for the base cell.
	w, err := run.NewWorkload(req.Workloads[0])
	if err != nil {
		t.Fatal(err)
	}
	directBase, err := run.New(run.Options{DisableCache: true}).
		RunOne(context.Background(), machine.MangoPiD1(), w)
	if err != nil {
		t.Fatal(err)
	}
	foundBase := false
	for _, row := range resp.Results {
		isBase := true
		for _, lab := range row.Cell {
			if lab != "l2=base" && lab != "maxinflight=base" {
				isBase = false
			}
		}
		if !isBase {
			continue
		}
		foundBase = true
		if row.Result != directBase {
			t.Errorf("base cell %+v != direct %+v", row.Result, directBase)
		}
		if row.Speedup != 1 {
			t.Errorf("base cell speedup = %v, want 1", row.Speedup)
		}
	}
	if !foundBase {
		t.Error("no all-base cell in sweep response")
	}
}
