// Package service is the transport-agnostic request surface over the
// Workload/Runner and Sweep layers: JSON-serializable requests in, JSON-
// serializable responses out, with nothing about Go closures or internal
// types on the wire.
//
// A Service wraps one memoized, pooled run.Runner shared by every request —
// so identical cells across requests simulate exactly once — and adds the
// two things a long-running daemon needs that a library call does not:
// per-request timeouts and a bounded in-flight admission limit (requests
// beyond the bound fail fast with ErrOverloaded instead of queueing without
// limit). cmd/simd fronts a Service with HTTP (see NewHandler); other
// transports (RPC, queues, tests) call Batch/Sweep directly with the same
// request values.
//
// Results served through a Service are bit-identical to direct Runner calls
// with the same configuration — the facade adds admission and encoding, not
// execution semantics. The package's oracle test pins this over the full
// kernel × device cross-product.
package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"riscvmem/internal/machine"
	"riscvmem/internal/run"
	"riscvmem/internal/sweep"
)

// ErrOverloaded is returned when a request arrives while MaxInFlight
// requests are already executing. Transports should map it to their
// "try again later" signal (HTTP 429).
var ErrOverloaded = errors.New("service: too many requests in flight")

// ExecutionError marks a failure that occurred while running an already
// validated request — the sweep path aborts wholesale on any job error
// (the cells' base-relative deltas would be meaningless) — so transports
// can report it as a server-side failure (HTTP 500) rather than a bad
// request. Batch requests never produce one: their job failures are
// per-row partial results.
type ExecutionError struct{ Err error }

func (e *ExecutionError) Error() string { return e.Err.Error() }
func (e *ExecutionError) Unwrap() error { return e.Err }

// Options configures a Service.
type Options struct {
	// Runner executes every request's jobs; nil builds a fresh memoized
	// runner. Passing one lets a Service share its cache with in-process
	// callers (e.g. a suite warming the cache the daemon then serves from).
	Runner *run.Runner
	// Parallelism is forwarded to the Runner built when Runner is nil;
	// 0 defaults to the host CPU count.
	Parallelism int
	// MaxInFlight bounds concurrently executing requests; further requests
	// fail immediately with ErrOverloaded. 0 → 4.
	MaxInFlight int
	// MaxJobs bounds the device × workload (or cell × workload) size of a
	// single request. 0 → 4096.
	MaxJobs int
	// DefaultTimeout applies to requests that carry no timeout of their
	// own; 0 means no default timeout.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts (and the default); 0 means
	// no cap.
	MaxTimeout time.Duration
}

// Service is the shared execution facade. Safe for concurrent use.
type Service struct {
	runner *run.Runner
	opt    Options
	sem    chan struct{}
}

// New builds a Service.
func New(opt Options) *Service {
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = 4
	}
	if opt.MaxJobs <= 0 {
		opt.MaxJobs = 4096
	}
	r := opt.Runner
	if r == nil {
		r = run.New(run.Options{Parallelism: opt.Parallelism})
	}
	return &Service{runner: r, opt: opt, sem: make(chan struct{}, opt.MaxInFlight)}
}

// Runner exposes the service's underlying runner (for sharing its memo
// cache with in-process callers).
func (s *Service) Runner() *run.Runner { return s.runner }

// RequestOptions are the per-request knobs every request type carries.
type RequestOptions struct {
	// TimeoutMS bounds the request's execution in milliseconds; 0 falls
	// back to the service default. Values above the service cap are
	// clamped, not rejected.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchRequest asks for a device × workload cross-product, devices
// outermost — the paper's evaluation shape as data. An empty Devices list
// means all presets.
type BatchRequest struct {
	Devices   []string           `json:"devices,omitempty"`
	Workloads []run.WorkloadSpec `json:"workloads"`
	Options   RequestOptions     `json:"options,omitempty"`
}

// SweepRequest asks for a device-parameter ablation: axes in the sweep
// grammar ("l2=off,base,1MiB") mutate the base device, and every cell runs
// every workload.
type SweepRequest struct {
	Device    string             `json:"device"`
	Axes      []string           `json:"axes,omitempty"`
	Workloads []run.WorkloadSpec `json:"workloads"`
	Options   RequestOptions     `json:"options,omitempty"`
}

// CacheStats reports the shared memo cache around one request. Hits/Misses
// are service-lifetime totals; RequestHits/RequestMisses are the deltas
// observed across this request — RequestMisses is the number of new
// simulations the request caused (0 for a fully warm request). Deltas are
// exact for serial use and approximate when requests overlap (concurrent
// requests' work is indistinguishable in the shared counters).
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	RequestHits   uint64 `json:"request_hits"`
	RequestMisses uint64 `json:"request_misses"`
}

// ResultRow is one job outcome: the unified run.Result plus, for sweep
// requests, the cell's axis labels and base-relative deltas. Error is set
// (and the measurement zero) when the job failed.
type ResultRow struct {
	run.Result
	// Cell holds one "axis=value" label per sweep axis, in axis order;
	// empty for batch rows.
	Cell []string `json:"cell,omitempty"`
	// Speedup and BandwidthVsBase compare a sweep cell against the
	// unmutated base cell running the same workload.
	Speedup         float64 `json:"speedup,omitempty"`
	BandwidthVsBase float64 `json:"bandwidth_vs_base,omitempty"`
	Error           string  `json:"error,omitempty"`
}

// Response is the outcome of one Batch or Sweep request. Results are in
// request order (devices outermost for batches, cells outermost for
// sweeps). Errors collects the failing rows' messages; a response with a
// non-empty Results and non-empty Errors is a partial success.
type Response struct {
	Results []ResultRow `json:"results"`
	Cache   CacheStats  `json:"cache"`
	Errors  []string    `json:"errors,omitempty"`
}

// DeviceInfo is one device preset as the listing endpoints report it.
type DeviceInfo struct {
	Name              string  `json:"name"`
	CPU               string  `json:"cpu"`
	ISA               string  `json:"isa"`
	Cores             int     `json:"cores"`
	FreqGHz           float64 `json:"freq_ghz"`
	RAMBytes          int64   `json:"ram_bytes"`
	PeakDRAMBandwidth string  `json:"peak_dram_bandwidth"`
}

// WorkloadsInfo is the discovery document: spec-buildable kernels with
// their parameter docs, plus registered custom workload names, the spec
// grammar, and the sweep axis names.
type WorkloadsInfo struct {
	Kernels    []run.KernelInfo `json:"kernels"`
	Registered []string         `json:"registered,omitempty"`
	Grammar    string           `json:"grammar"`
	SweepAxes  []string         `json:"sweep_axes"`
}

// Devices lists the device presets.
func (s *Service) Devices() []DeviceInfo {
	all := machine.All()
	out := make([]DeviceInfo, len(all))
	for i, d := range all {
		out[i] = DeviceInfo{
			Name: d.Name, CPU: d.CPU, ISA: d.ISA,
			Cores: d.Cores, FreqGHz: d.FreqGHz, RAMBytes: d.RAMBytes,
			PeakDRAMBandwidth: d.PeakDRAMBandwidth().String(),
		}
	}
	return out
}

// Workloads describes everything a request can name.
func (s *Service) Workloads() WorkloadsInfo {
	return WorkloadsInfo{
		Kernels:    run.Kernels(),
		Registered: run.Names(),
		Grammar:    run.SpecGrammar,
		SweepAxes:  sweep.AxisNames(),
	}
}

// admit reserves an execution slot or fails fast.
func (s *Service) admit() (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
		return nil, ErrOverloaded
	}
}

// timeoutCtx applies the request's effective timeout: the request value
// when given, else the service default, clamped by the service cap. With
// neither a request value nor a default, the request is unbounded — the
// cap limits configured timeouts, it does not invent one.
func (s *Service) timeoutCtx(ctx context.Context, opt RequestOptions) (context.Context, context.CancelFunc) {
	d := s.opt.DefaultTimeout
	if opt.TimeoutMS > 0 {
		d = time.Duration(opt.TimeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return ctx, func() {}
	}
	if s.opt.MaxTimeout > 0 && d > s.opt.MaxTimeout {
		d = s.opt.MaxTimeout
	}
	return context.WithTimeout(ctx, d)
}

// resolveWorkloads materializes every spec of a request.
func resolveWorkloads(specs []run.WorkloadSpec) ([]run.Workload, error) {
	if len(specs) == 0 {
		return nil, errors.New("service: request names no workloads")
	}
	out := make([]run.Workload, len(specs))
	for i, spec := range specs {
		w, err := run.NewWorkload(spec)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// Batch executes a device × workload cross-product. Request-shaped
// problems — unknown devices or kernels, malformed specs, no workloads, an
// oversized cross-product, admission overload — fail the call; per-job
// simulation failures land in the Response rows instead, so one bad cell
// does not void the rest of the request.
func (s *Service) Batch(ctx context.Context, req BatchRequest) (*Response, error) {
	devices, err := resolveDevices(req.Devices)
	if err != nil {
		return nil, err
	}
	workloads, err := resolveWorkloads(req.Workloads)
	if err != nil {
		return nil, err
	}
	if n := len(devices) * len(workloads); n > s.opt.MaxJobs {
		return nil, fmt.Errorf("service: request is %d jobs, limit %d", n, s.opt.MaxJobs)
	}
	release, err := s.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	ctx, cancel := s.timeoutCtx(ctx, req.Options)
	defer cancel()

	jobs := run.Cross(devices, workloads)
	hits0, misses0 := s.runner.CacheStats()
	results, errs := s.runner.RunAll(ctx, jobs)
	resp := &Response{Results: make([]ResultRow, len(jobs))}
	// Jobs skipped wholesale by a dead context (bare sentinel errors, the
	// runner's skip signature) collapse into one Errors entry with a count
	// — a timed-out 4096-job batch must not emit 4096 identical strings.
	// Each skipped row still carries its own error field.
	skipped, ctxErr := 0, error(nil)
	for i := range jobs {
		row := ResultRow{Result: results[i]}
		if errs[i] != nil {
			row.Error = errs[i].Error()
			// Identify the failed cell even without a Result.
			row.Result.Workload = jobs[i].Workload.Name()
			row.Result.Device = jobs[i].Device.Name
			if errs[i] == context.Canceled || errs[i] == context.DeadlineExceeded {
				skipped++
				ctxErr = errs[i]
			} else {
				resp.Errors = append(resp.Errors, fmt.Sprintf("%s on %s: %v",
					jobs[i].Workload.Name(), jobs[i].Device.Name, errs[i]))
			}
		}
		resp.Results[i] = row
	}
	switch {
	case skipped == 1:
		resp.Errors = append(resp.Errors, fmt.Sprintf("1 job skipped: %v", ctxErr))
	case skipped > 1:
		resp.Errors = append(resp.Errors, fmt.Sprintf("%d jobs skipped: %v", skipped, ctxErr))
	}
	resp.Cache = s.cacheDelta(hits0, misses0)
	return resp, nil
}

// Sweep executes a device-parameter ablation. The axis grammar and
// semantics are exactly cmd/sweep's; every cell row carries its axis
// labels and base-relative deltas.
func (s *Service) Sweep(ctx context.Context, req SweepRequest) (*Response, error) {
	if req.Device == "" {
		return nil, errors.New("service: sweep request names no device")
	}
	base, err := machine.ByName(req.Device)
	if err != nil {
		return nil, err
	}
	axes, err := sweep.ParseAxes(req.Axes)
	if err != nil {
		return nil, err
	}
	workloads, err := resolveWorkloads(req.Workloads)
	if err != nil {
		return nil, err
	}
	// Bound the cross-product from the axis point counts BEFORE expanding:
	// Expand materializes every cell as a deep-cloned Spec, so an oversized
	// request must be rejected before that allocation, not after.
	cellCount := 1
	for _, ax := range axes {
		if len(ax.Points) == 0 {
			continue // Expand reports the precise error
		}
		cellCount *= len(ax.Points)
		if cellCount > s.opt.MaxJobs {
			return nil, fmt.Errorf("service: sweep is at least %d cells, limit %d jobs", cellCount, s.opt.MaxJobs)
		}
	}
	if n := cellCount * len(workloads); n > s.opt.MaxJobs {
		return nil, fmt.Errorf("service: sweep is %d jobs, limit %d", n, s.opt.MaxJobs)
	}
	if _, err := sweep.Expand(base, axes); err != nil {
		return nil, err
	}
	release, err := s.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	ctx, cancel := s.timeoutCtx(ctx, req.Options)
	defer cancel()

	hits0, misses0 := s.runner.CacheStats()
	res, err := sweep.Run(ctx, sweep.Config{
		Base: base, Axes: axes, Workloads: workloads, Runner: s.runner,
	})
	if err != nil {
		// The request validated (device, axes and workloads all resolved;
		// the expansion above succeeded), so this is an execution failure.
		return nil, &ExecutionError{Err: err}
	}
	resp := &Response{Results: make([]ResultRow, len(res.PerCell))}
	for i, cr := range res.PerCell {
		resp.Results[i] = ResultRow{
			Result:          cr.Result,
			Cell:            cr.Cell.Labels,
			Speedup:         cr.Speedup,
			BandwidthVsBase: cr.BandwidthVsBase,
		}
	}
	resp.Cache = s.cacheDelta(hits0, misses0)
	return resp, nil
}

// cacheDelta snapshots the shared cache counters against a request-entry
// baseline.
func (s *Service) cacheDelta(hits0, misses0 uint64) CacheStats {
	hits, misses := s.runner.CacheStats()
	return CacheStats{
		Hits: hits, Misses: misses,
		RequestHits: hits - hits0, RequestMisses: misses - misses0,
	}
}

// resolveDevices maps preset names to specs; empty means all presets.
func resolveDevices(names []string) ([]machine.Spec, error) {
	if len(names) == 0 {
		return machine.All(), nil
	}
	out := make([]machine.Spec, len(names))
	for i, name := range names {
		spec, err := machine.ByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = spec
	}
	return out, nil
}
