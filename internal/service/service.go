// Package service is the transport-agnostic request surface over the
// Workload/Runner and Sweep layers: JSON-serializable requests in, JSON-
// serializable responses out, with nothing about Go closures or internal
// types on the wire.
//
// A Service wraps one memoized, pooled run.Runner shared by every request —
// so identical cells across requests simulate exactly once — and adds what
// a long-running daemon needs that a library call does not: per-request
// timeouts, admission control (a bounded in-flight limit fronted by a
// bounded wait queue — requests wait for a slot up to their own deadline,
// and only a full queue fails fast with ErrOverloaded), per-client token-
// bucket rate limits, an async job lifecycle (SubmitJob/Job/CancelJob, see
// jobs.go) and graceful drain (StartDrain/Drain, see drain.go). cmd/simd
// fronts a Service with HTTP (see NewHandler); other transports (RPC,
// queues, tests) call Batch/Sweep directly with the same request values.
//
// The admit → queue → run → drain state machine and the full failure
// taxonomy are documented in DESIGN.md §9.
//
// Results served through a Service are bit-identical to direct Runner calls
// with the same configuration — the facade adds admission and encoding, not
// execution semantics. The package's oracle test pins this over the full
// kernel × device cross-product.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"riscvmem/internal/faultinject"
	"riscvmem/internal/machine"
	"riscvmem/internal/memostore"
	"riscvmem/internal/run"
	"riscvmem/internal/sweep"
)

// ErrOverloaded is returned when a request arrives while MaxInFlight
// requests are executing AND the wait queue is full. Transports should map
// it to their "try again later" signal (HTTP 429); the wrapping
// OverloadError carries a Retry-After hint.
var ErrOverloaded = errors.New("service: too many requests in flight")

// ErrRateLimited is returned when a client exceeds its per-client request
// rate (HTTP 429, with a Retry-After from the bucket's refill time).
var ErrRateLimited = errors.New("service: client rate limit exceeded")

// ErrDraining is returned when the service has stopped admitting new work
// because it is shutting down (HTTP 503). Already-queued and running work
// still completes inside the drain budget.
var ErrDraining = errors.New("service: draining, not admitting new work")

// OverloadError wraps ErrOverloaded or ErrRateLimited with a hint for when
// retrying is likely to succeed. errors.Is still matches the wrapped
// sentinel.
type OverloadError struct {
	// RetryAfter estimates when capacity frees: for a full queue it is
	// derived from the observed request latency and the backlog depth, for
	// a rate limit from the bucket's refill time.
	RetryAfter time.Duration
	reason     error
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.reason, e.RetryAfter.Round(time.Millisecond))
}
func (e *OverloadError) Unwrap() error { return e.reason }

// ValidationError marks a request the caller could fix: unknown devices or
// kernels, malformed specs, missing workloads, an oversized cross-product.
// Transports report it as the client's fault (HTTP 400); anything not
// explicitly classified is a server-side failure (HTTP 500).
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return e.Err.Error() }
func (e *ValidationError) Unwrap() error { return e.Err }

// invalidf builds a ValidationError from a format string.
func invalidf(format string, args ...any) error {
	return &ValidationError{Err: fmt.Errorf(format, args...)}
}

// invalid wraps an error as a ValidationError (nil stays nil).
func invalid(err error) error {
	if err == nil {
		return nil
	}
	return &ValidationError{Err: err}
}

// ExecutionError marks a failure that occurred while running an already
// validated request — the sweep path aborts wholesale on any job error
// (the cells' base-relative deltas would be meaningless) — so transports
// can report it as a server-side failure (HTTP 500) rather than a bad
// request. Batch requests never produce one: their job failures are
// per-row partial results.
type ExecutionError struct{ Err error }

func (e *ExecutionError) Error() string { return e.Err.Error() }
func (e *ExecutionError) Unwrap() error { return e.Err }

// Options configures a Service.
type Options struct {
	// Runner executes every request's jobs; nil builds a fresh memoized
	// runner. Passing one lets a Service share its cache with in-process
	// callers (e.g. a suite warming the cache the daemon then serves from).
	Runner *run.Runner
	// Parallelism is forwarded to the Runner built when Runner is nil;
	// 0 defaults to the host CPU count.
	Parallelism int
	// Store is the tiered memo store forwarded to the Runner built when
	// Runner is nil — run.OpenStore builds one with a persistent disk tier
	// so a restarted daemon serves previously computed results without
	// re-simulating. Nil gets the runner's default bounded in-memory store.
	// Ignored when Runner is set (the runner already owns its store).
	Store memostore.Store
	// MaxInFlight bounds concurrently executing requests. 0 → 4.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; a waiting
	// request is admitted when a slot frees or fails when its own deadline
	// expires first. Only when the queue itself is full does admission fail
	// fast with ErrOverloaded. 0 → 2×MaxInFlight; -1 disables queueing
	// (PR-4-style fail-fast admission).
	MaxQueue int
	// MaxJobs bounds the device × workload (or cell × workload) size of a
	// single request. 0 → 4096.
	MaxJobs int
	// DefaultTimeout applies to requests that carry no timeout of their
	// own; 0 means no default timeout. The timeout covers queue wait plus
	// execution.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts (and the default); 0 means
	// no cap.
	MaxTimeout time.Duration
	// ClientRate enables per-client token-bucket rate limiting: sustained
	// requests per second allowed per client ID (see WithClientID; HTTP
	// uses the X-Client-ID header, falling back to the remote host).
	// 0 disables rate limiting.
	ClientRate float64
	// ClientBurst is the bucket size — requests a client may issue
	// back-to-back before the sustained rate applies. 0 → max(1, ⌈rate⌉).
	ClientBurst int
	// JobTTL is how long a finished async job (and its rows) stays
	// retrievable before garbage collection. 0 → 5 minutes.
	JobTTL time.Duration
	// MaxStoredJobs bounds the job store. When full, submission evicts the
	// oldest finished job, or fails with ErrOverloaded if every stored job
	// is still live. 0 → 256.
	MaxStoredJobs int
	// Logf, when set, receives operational log lines (drain progress,
	// abandoned jobs, response-encoding failures). Nil discards them;
	// cmd/simd passes log.Printf.
	Logf func(format string, args ...any)
}

// Service is the shared execution facade. Safe for concurrent use.
type Service struct {
	runner *run.Runner
	opt    Options
	sem    chan struct{}

	queued    atomic.Int64 // requests waiting for a slot (≤ MaxQueue)
	latencyNS atomic.Int64 // EWMA of observed execution latency, for Retry-After
	latency   latencyHist  // coarse request-duration histogram, for /metrics
	kernels   kernelHist   // per-kernel job-duration histograms, for /metrics
	draining  atomic.Bool
	limiter   *limiter
	jobs      *jobStore
}

// New builds a Service.
func New(opt Options) *Service {
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = 4
	}
	switch {
	case opt.MaxQueue == 0:
		opt.MaxQueue = 2 * opt.MaxInFlight
	case opt.MaxQueue < 0:
		opt.MaxQueue = 0 // fail-fast admission
	}
	if opt.MaxJobs <= 0 {
		opt.MaxJobs = 4096
	}
	if opt.JobTTL <= 0 {
		opt.JobTTL = 5 * time.Minute
	}
	if opt.MaxStoredJobs <= 0 {
		opt.MaxStoredJobs = 256
	}
	r := opt.Runner
	if r == nil {
		r = run.New(run.Options{Parallelism: opt.Parallelism, Store: opt.Store})
	}
	s := &Service{runner: r, opt: opt, sem: make(chan struct{}, opt.MaxInFlight)}
	if opt.ClientRate > 0 {
		s.limiter = newLimiter(opt.ClientRate, opt.ClientBurst)
	}
	s.jobs = newJobStore(opt.JobTTL, opt.MaxStoredJobs)
	return s
}

// logf forwards to Options.Logf when configured.
func (s *Service) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Runner exposes the service's underlying runner (for sharing its memo
// cache with in-process callers).
func (s *Service) Runner() *run.Runner { return s.runner }

// RequestOptions are the per-request knobs every request type carries.
type RequestOptions struct {
	// TimeoutMS bounds the request's execution in milliseconds; 0 falls
	// back to the service default. Values above the service cap are
	// clamped, not rejected.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchRequest asks for a device × workload cross-product, devices
// outermost — the paper's evaluation shape as data. An empty Devices list
// means all presets.
type BatchRequest struct {
	Devices   []string           `json:"devices,omitempty"`
	Workloads []run.WorkloadSpec `json:"workloads"`
	Options   RequestOptions     `json:"options,omitempty"`
}

// SweepRequest asks for a device-parameter ablation: axes in the sweep
// grammar ("l2=off,base,1MiB") mutate the base device, and every cell runs
// every workload.
type SweepRequest struct {
	Device    string             `json:"device"`
	Axes      []string           `json:"axes,omitempty"`
	Workloads []run.WorkloadSpec `json:"workloads"`
	Options   RequestOptions     `json:"options,omitempty"`
}

// CacheStats reports the shared memo cache around one request. Hits/Misses
// are service-lifetime totals; RequestHits/RequestMisses are the deltas
// observed across this request — RequestMisses is the number of new
// simulations the request caused (0 for a fully warm request). Tiers breaks
// the lifetime totals down by store tier (memory LRU vs persistent disk);
// RequestTiers is the same breakdown as a per-request delta — a restarted
// daemon serving a warm batch shows request_misses 0 and the work in
// RequestTiers.DiskHits. Deltas are exact for serial use and approximate
// when requests overlap (concurrent requests' work is indistinguishable in
// the shared counters).
type CacheStats struct {
	Hits          uint64          `json:"hits"`
	Misses        uint64          `json:"misses"`
	RequestHits   uint64          `json:"request_hits"`
	RequestMisses uint64          `json:"request_misses"`
	Tiers         memostore.Stats `json:"tiers"`
	RequestTiers  memostore.Stats `json:"request_tiers"`
}

// ResultRow is one job outcome: the unified run.Result plus, for sweep
// requests, the cell's axis labels and base-relative deltas. Error is set
// (and the measurement zero) when the job failed.
type ResultRow struct {
	run.Result
	// Cell holds one "axis=value" label per sweep axis, in axis order;
	// empty for batch rows.
	Cell []string `json:"cell,omitempty"`
	// Speedup and BandwidthVsBase compare a sweep cell against the
	// unmutated base cell running the same workload.
	Speedup         float64 `json:"speedup,omitempty"`
	BandwidthVsBase float64 `json:"bandwidth_vs_base,omitempty"`
	Error           string  `json:"error,omitempty"`
}

// Response is the outcome of one Batch or Sweep request. Results are in
// request order (devices outermost for batches, cells outermost for
// sweeps). Errors collects the failing rows' messages; a response with a
// non-empty Results and non-empty Errors is a partial success.
type Response struct {
	Results []ResultRow `json:"results"`
	Cache   CacheStats  `json:"cache"`
	Errors  []string    `json:"errors,omitempty"`
}

// DeviceInfo is one device preset as the listing endpoints report it.
type DeviceInfo struct {
	Name              string  `json:"name"`
	CPU               string  `json:"cpu"`
	ISA               string  `json:"isa"`
	Cores             int     `json:"cores"`
	FreqGHz           float64 `json:"freq_ghz"`
	RAMBytes          int64   `json:"ram_bytes"`
	PeakDRAMBandwidth string  `json:"peak_dram_bandwidth"`
}

// WorkloadsInfo is the discovery document: spec-buildable kernels with
// their parameter docs, plus registered custom workload names, the spec
// grammar, and the sweep axis names.
type WorkloadsInfo struct {
	Kernels    []run.KernelInfo `json:"kernels"`
	Registered []string         `json:"registered,omitempty"`
	Grammar    string           `json:"grammar"`
	SweepAxes  []string         `json:"sweep_axes"`
}

// Devices lists the device presets.
func (s *Service) Devices() []DeviceInfo { return ListDevices() }

// Workloads describes everything a request can name.
func (s *Service) Workloads() WorkloadsInfo { return ListWorkloads() }

// ListDevices lists the device presets. Package-level because the listing
// is process-wide, not per-Service — the cluster coordinator serves it
// without owning a Service.
func ListDevices() []DeviceInfo {
	all := machine.All()
	out := make([]DeviceInfo, len(all))
	for i, d := range all {
		out[i] = DeviceInfo{
			Name: d.Name, CPU: d.CPU, ISA: d.ISA,
			Cores: d.Cores, FreqGHz: d.FreqGHz, RAMBytes: d.RAMBytes,
			PeakDRAMBandwidth: d.PeakDRAMBandwidth().String(),
		}
	}
	return out
}

// ListWorkloads describes everything a request can name (see ListDevices
// for why it is package-level).
func ListWorkloads() WorkloadsInfo {
	return WorkloadsInfo{
		Kernels:    run.Kernels(),
		Registered: run.Names(),
		Grammar:    run.SpecGrammar,
		SweepAxes:  sweep.AxisNames(),
	}
}

// admit reserves an execution slot. The fast path is one channel send —
// free when the service is not saturated. Under saturation the request
// joins a bounded wait queue and blocks until a slot frees or ctx ends
// (the caller applies the request deadline to ctx first, so a request
// waits at most its own deadline). Only a full queue fails fast, with an
// OverloadError carrying the Retry-After hint.
//
// The returned release frees the slot and feeds the observed execution
// latency into the EWMA behind retryAfter. It must be called exactly once.
func (s *Service) admit(ctx context.Context) (release func(), err error) {
	if err := faultinject.Fire(faultinject.ServiceAdmit); err != nil {
		return nil, err
	}
	select {
	case s.sem <- struct{}{}:
		return s.releaseFunc(), nil
	default:
	}
	// Saturated: join the queue, bounded optimistically (Add then check) so
	// the common contended case stays a single atomic.
	if n := s.queued.Add(1); n > int64(s.opt.MaxQueue) {
		s.queued.Add(-1)
		return nil, &OverloadError{RetryAfter: s.retryAfter(), reason: ErrOverloaded}
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return s.releaseFunc(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// releaseFunc builds the slot-release closure for one admitted request.
func (s *Service) releaseFunc() func() {
	start := time.Now()
	return func() {
		s.observeLatency(time.Since(start))
		<-s.sem
	}
}

// observeLatency folds one request's execution time into the EWMA the
// Retry-After hint is derived from. The racy load/store pair is deliberate:
// the value is a hint, and a lost update under concurrent completions is
// harmless.
func (s *Service) observeLatency(d time.Duration) {
	s.latency.observe(d)
	old := s.latencyNS.Load()
	if old == 0 {
		s.latencyNS.Store(int64(d))
		return
	}
	s.latencyNS.Store((3*old + int64(d)) / 4)
}

// retryAfter estimates when admission is likely to succeed: the observed
// per-request latency scaled by how many "waves" of the backlog must drain
// before a queue slot frees, clamped to [1s, 5m]. With no latency history
// yet it falls back to one second.
func (s *Service) retryAfter() time.Duration {
	lat := time.Duration(s.latencyNS.Load())
	if lat <= 0 {
		return time.Second
	}
	waves := (int(s.queued.Load()) + s.opt.MaxInFlight) / s.opt.MaxInFlight
	d := lat * time.Duration(waves)
	if d < time.Second {
		return time.Second
	}
	if d > 5*time.Minute {
		return 5 * time.Minute
	}
	return d
}

// checkAdmittable is the pre-validation gate every entry point passes:
// drain state first (a draining service admits nothing new), then the
// caller's rate limit.
func (s *Service) checkAdmittable(ctx context.Context) error {
	if s.draining.Load() {
		return ErrDraining
	}
	if s.limiter != nil {
		if wait, ok := s.limiter.take(ClientID(ctx)); !ok {
			return &OverloadError{RetryAfter: wait, reason: ErrRateLimited}
		}
	}
	return nil
}

// timeoutCtx applies the request's effective timeout: the request value
// when given, else the service default, clamped by the service cap. With
// neither a request value nor a default, the request is unbounded — the
// cap limits configured timeouts, it does not invent one.
func (s *Service) timeoutCtx(ctx context.Context, opt RequestOptions) (context.Context, context.CancelFunc) {
	d := s.opt.DefaultTimeout
	if opt.TimeoutMS > 0 {
		d = time.Duration(opt.TimeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return ctx, func() {}
	}
	if s.opt.MaxTimeout > 0 && d > s.opt.MaxTimeout {
		d = s.opt.MaxTimeout
	}
	return context.WithTimeout(ctx, d)
}

// resolveWorkloads materializes every spec of a request.
func resolveWorkloads(specs []run.WorkloadSpec) ([]run.Workload, error) {
	if len(specs) == 0 {
		return nil, errors.New("service: request names no workloads")
	}
	out := make([]run.Workload, len(specs))
	for i, spec := range specs {
		w, err := run.NewWorkload(spec)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// Batch executes a device × workload cross-product. Request-shaped
// problems — unknown devices or kernels, malformed specs, no workloads, an
// oversized cross-product (all ValidationError), admission overload — fail
// the call; per-job simulation failures land in the Response rows instead,
// so one bad cell does not void the rest of the request.
func (s *Service) Batch(ctx context.Context, req BatchRequest) (*Response, error) {
	if err := s.checkAdmittable(ctx); err != nil {
		return nil, err
	}
	jobs, err := s.prepareBatch(req)
	if err != nil {
		return nil, err
	}
	// The timeout is applied before admission: a request waits in the
	// queue at most up to its own deadline.
	ctx, cancel := s.timeoutCtx(ctx, req.Options)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return s.runBatch(ctx, jobs, nil), nil
}

// prepareBatch validates a BatchRequest into its job list; every failure is
// a ValidationError.
func (s *Service) prepareBatch(req BatchRequest) ([]run.Job, error) {
	devices, err := resolveDevices(req.Devices)
	if err != nil {
		return nil, invalid(err)
	}
	workloads, err := resolveWorkloads(req.Workloads)
	if err != nil {
		return nil, invalid(err)
	}
	if n := len(devices) * len(workloads); n > s.opt.MaxJobs {
		return nil, invalidf("service: request is %d jobs, limit %d", n, s.opt.MaxJobs)
	}
	return run.Cross(devices, workloads), nil
}

// observeProgress wraps a request's progress hook with the per-kernel
// latency observation, so every job completion — batch, sweep, async,
// cluster assignment — feeds the kernel histograms exactly once.
func (s *Service) observeProgress(onProgress func(run.Progress)) func(run.Progress) {
	return func(p run.Progress) {
		if p.Job.Workload != nil {
			s.kernels.observe(kernelLabel(p.Job.Workload.Name()), p.Elapsed)
		}
		if onProgress != nil {
			onProgress(p)
		}
	}
}

// runBatch executes a prepared job list inside an already-admitted slot and
// assembles the Response. onProgress (optional) observes each completion —
// the async job path streams rows through it.
func (s *Service) runBatch(ctx context.Context, jobs []run.Job, onProgress func(run.Progress)) *Response {
	hits0, misses0 := s.runner.CacheStats()
	tiers0 := s.runner.TierStats()
	results, errs := s.runner.RunAllWithProgress(ctx, jobs, s.observeProgress(onProgress))
	resp := &Response{Results: make([]ResultRow, len(jobs))}
	// Jobs cut off by a dead context — skipped outright or abandoned
	// mid-run — collapse into one Errors entry with a count: a timed-out
	// 4096-job batch must not emit 4096 identical strings. errors.Is, not
	// ==, so the runner's wrapped abandonment errors (and workloads
	// wrapping their own context error) collapse too; each row still
	// carries its individual error field.
	skipped, ctxErr := 0, error(nil)
	for i := range jobs {
		row := ResultRow{Result: results[i]}
		if errs[i] != nil {
			row.Error = errs[i].Error()
			// Identify the failed cell even without a Result.
			row.Result.Workload = jobs[i].Workload.Name()
			row.Result.Device = jobs[i].Device.Name
			if errors.Is(errs[i], context.Canceled) || errors.Is(errs[i], context.DeadlineExceeded) {
				skipped++
				if ctxErr == nil {
					ctxErr = context.Canceled
					if errors.Is(errs[i], context.DeadlineExceeded) {
						ctxErr = context.DeadlineExceeded
					}
				}
			} else {
				resp.Errors = append(resp.Errors, fmt.Sprintf("%s on %s: %v",
					jobs[i].Workload.Name(), jobs[i].Device.Name, errs[i]))
			}
		}
		resp.Results[i] = row
	}
	switch {
	case skipped == 1:
		resp.Errors = append(resp.Errors, fmt.Sprintf("1 job skipped: %v", ctxErr))
	case skipped > 1:
		resp.Errors = append(resp.Errors, fmt.Sprintf("%d jobs skipped: %v", skipped, ctxErr))
	}
	resp.Cache = s.cacheDelta(hits0, misses0, tiers0)
	return resp
}

// Sweep executes a device-parameter ablation. The axis grammar and
// semantics are exactly cmd/sweep's; every cell row carries its axis
// labels and base-relative deltas.
func (s *Service) Sweep(ctx context.Context, req SweepRequest) (*Response, error) {
	if err := s.checkAdmittable(ctx); err != nil {
		return nil, err
	}
	ps, err := s.prepareSweep(req)
	if err != nil {
		return nil, err
	}
	ctx, cancel := s.timeoutCtx(ctx, req.Options)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return s.runSweep(ctx, ps, nil)
}

// preparedSweep is a validated sweep, ready to execute.
type preparedSweep struct {
	base      machine.Spec
	axes      []sweep.Axis
	workloads []run.Workload
	jobCount  int
}

// prepareSweep validates a SweepRequest; every failure is a
// ValidationError.
func (s *Service) prepareSweep(req SweepRequest) (*preparedSweep, error) {
	if req.Device == "" {
		return nil, invalidf("service: sweep request names no device")
	}
	base, err := machine.ByName(req.Device)
	if err != nil {
		return nil, invalid(err)
	}
	axes, err := sweep.ParseAxes(req.Axes)
	if err != nil {
		return nil, invalid(err)
	}
	workloads, err := resolveWorkloads(req.Workloads)
	if err != nil {
		return nil, invalid(err)
	}
	// Bound the cross-product from the axis point counts BEFORE expanding:
	// Expand materializes every cell as a deep-cloned Spec, so an oversized
	// request must be rejected before that allocation, not after.
	cellCount := 1
	for _, ax := range axes {
		if len(ax.Points) == 0 {
			continue // Expand reports the precise error
		}
		cellCount *= len(ax.Points)
		if cellCount > s.opt.MaxJobs {
			return nil, invalidf("service: sweep is at least %d cells, limit %d jobs", cellCount, s.opt.MaxJobs)
		}
	}
	if n := cellCount * len(workloads); n > s.opt.MaxJobs {
		return nil, invalidf("service: sweep is %d jobs, limit %d", n, s.opt.MaxJobs)
	}
	if _, err := sweep.Expand(base, axes); err != nil {
		return nil, invalid(err)
	}
	return &preparedSweep{base: base, axes: axes, workloads: workloads,
		jobCount: cellCount * len(workloads)}, nil
}

// runSweep executes a prepared sweep inside an already-admitted slot.
// onProgress (optional) observes per-cell completions with raw results;
// the base-relative deltas arrive with the final Response.
func (s *Service) runSweep(ctx context.Context, ps *preparedSweep, onProgress func(run.Progress)) (*Response, error) {
	hits0, misses0 := s.runner.CacheStats()
	tiers0 := s.runner.TierStats()
	res, err := sweep.Run(ctx, sweep.Config{
		Base: ps.base, Axes: ps.axes, Workloads: ps.workloads,
		Runner: s.runner, OnProgress: s.observeProgress(onProgress),
	})
	if err != nil {
		// The request validated (device, axes and workloads all resolved;
		// the expansion in prepareSweep succeeded), so this is an
		// execution failure.
		return nil, &ExecutionError{Err: err}
	}
	resp := &Response{Results: make([]ResultRow, len(res.PerCell))}
	for i, cr := range res.PerCell {
		resp.Results[i] = ResultRow{
			Result:          cr.Result,
			Cell:            cr.Cell.Labels,
			Speedup:         cr.Speedup,
			BandwidthVsBase: cr.BandwidthVsBase,
		}
	}
	resp.Cache = s.cacheDelta(hits0, misses0, tiers0)
	return resp, nil
}

// ExecuteJobs runs an explicit, already-validated job list through the
// service's admission and execution machinery. It is the cluster worker
// agent's entry point: the coordinator validated the request and chose the
// cells; the worker executes its share with full facade semantics — drain
// refusal, slot admission, the shared runner's pooling/memoization/
// singleflight, per-request cache deltas. onProgress observes each
// completion (serially, in completion order). No request timeout is
// applied here: the caller owns the deadline via ctx — in the cluster, the
// coordinator holds the client's deadline and revokes the assignment.
//
// Request-shaped failures (draining, overload, empty or oversized job
// list) fail the call; per-job failures land in the Response rows, exactly
// as in Batch.
func (s *Service) ExecuteJobs(ctx context.Context, jobs []run.Job, onProgress func(run.Progress)) (*Response, error) {
	if err := s.checkAdmittable(ctx); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, invalidf("service: empty job list")
	}
	if len(jobs) > s.opt.MaxJobs {
		return nil, invalidf("service: request is %d jobs, limit %d", len(jobs), s.opt.MaxJobs)
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return s.runBatch(ctx, jobs, onProgress), nil
}

// cacheDelta snapshots the shared cache counters against a request-entry
// baseline.
func (s *Service) cacheDelta(hits0, misses0 uint64, tiers0 memostore.Stats) CacheStats {
	hits, misses := s.runner.CacheStats()
	tiers := s.runner.TierStats()
	return CacheStats{
		Hits: hits, Misses: misses,
		RequestHits: hits - hits0, RequestMisses: misses - misses0,
		Tiers: tiers, RequestTiers: tiers.Sub(tiers0),
	}
}

// resolveDevices maps preset names to specs; empty means all presets.
func resolveDevices(names []string) ([]machine.Spec, error) {
	if len(names) == 0 {
		return machine.All(), nil
	}
	out := make([]machine.Spec, len(names))
	for i, name := range names {
		spec, err := machine.ByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = spec
	}
	return out, nil
}
