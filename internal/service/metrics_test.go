package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"testing"
	"time"

	"riscvmem/internal/run"
)

// persistentService builds a Service whose runner memoizes into a tiered
// store with a disk tier rooted at dir — the cmd/simd -cache-dir shape.
func persistentService(t *testing.T, dir string) *Service {
	t.Helper()
	store, err := run.OpenStore(dir, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return New(Options{Parallelism: 2, Store: store})
}

// metricValue extracts one sample's value from Prometheus text exposition.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %q not found in exposition:\n%s", series, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %q value %q: %v", series, m[1], err)
	}
	return v
}

// TestServiceRestartWarm is the service-level restart oracle: a second
// Service over the same cache directory — a restarted daemon — serves a
// previously computed batch with zero new simulations, reports the work in
// the disk tier of its per-request stats, and returns bit-identical rows.
func TestServiceRestartWarm(t *testing.T) {
	dir := t.TempDir()
	req := BatchRequest{Workloads: []run.WorkloadSpec{
		run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1"),
		run.MustParseWorkloadSpec("transpose:n=64,variant=Blocking"),
	}}

	cold, err := persistentService(t, dir).Batch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.RequestMisses == 0 {
		t.Fatal("cold request reports zero misses; test is vacuous")
	}
	if got, want := cold.Cache.RequestTiers.DiskWrites, cold.Cache.RequestMisses; got != want {
		t.Errorf("cold request persisted %d entries, want %d (one per simulation)", got, want)
	}

	warmSvc := persistentService(t, dir)
	warm, err := warmSvc.Batch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.RequestMisses != 0 {
		t.Errorf("restarted service simulated %d cells, want 0", warm.Cache.RequestMisses)
	}
	if got, want := warm.Cache.RequestTiers.DiskHits, uint64(len(warm.Results)); got != want {
		t.Errorf("restarted service disk hits = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(warm.Results, cold.Results) {
		t.Errorf("restart-warm rows diverge from cold:\n got %+v\nwant %+v", warm.Results, cold.Results)
	}

	// The same story must be visible to a scraper.
	ts := httptest.NewServer(NewHandler(warmSvc))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	if got := metricValue(t, body, `simd_cache_tier_hits_total{tier="disk"}`); got != float64(len(warm.Results)) {
		t.Errorf("scraped disk hits = %v, want %d", got, len(warm.Results))
	}
	if got := metricValue(t, body, "simd_cache_misses_total"); got != 0 {
		t.Errorf("scraped misses = %v, want 0 on the restarted service", got)
	}
}

// TestMetricsEndpoint exercises every family the exposition promises and
// the gauges' live values.
func TestMetricsEndpoint(t *testing.T) {
	svc := New(Options{Parallelism: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	req := BatchRequest{Workloads: []run.WorkloadSpec{
		run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1"),
	}}
	if _, err := svc.Batch(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	if got := metricValue(t, body, "simd_cache_misses_total"); got == 0 {
		t.Error("misses counter is zero after a cold batch")
	}
	if got := metricValue(t, body, `simd_cache_tier_misses_total{tier="memory"}`); got == 0 {
		t.Error("memory tier misses is zero after a cold batch")
	}
	// A memory-only service never touches a disk tier.
	if got := metricValue(t, body, `simd_cache_tier_hits_total{tier="disk"}`); got != 0 {
		t.Errorf("disk hits = %v on a memory-only store", got)
	}
	if got := metricValue(t, body, "simd_pool_machines"); got == 0 {
		t.Error("pool gauge is zero after a batch returned its machines")
	}
	if got := metricValue(t, body, "simd_inflight_requests"); got != 0 {
		t.Errorf("inflight = %v with no request running", got)
	}
	if got := metricValue(t, body, "simd_request_duration_seconds_count"); got != 1 {
		t.Errorf("histogram count = %v, want 1", got)
	}
	if got := metricValue(t, body, `simd_request_duration_seconds_bucket{le="+Inf"}`); got != 1 {
		t.Errorf("+Inf bucket = %v, want 1", got)
	}
	for _, series := range []string{
		"simd_cache_hits_total",
		"simd_cache_memory_evictions_total",
		"simd_cache_disk_corrupt_total",
		"simd_cache_disk_writes_total",
		"simd_cache_disk_write_errors_total",
		"simd_runs_abandoned_total",
		"simd_queue_depth",
		"simd_jobs_stored",
		"simd_jobs_active",
		"simd_request_duration_seconds_sum",
	} {
		metricValue(t, body, series) // fails the test if absent
	}
}

// TestLatencyHistBuckets pins bucket assignment at and around the decade
// boundaries (a bound is inclusive: observe(bound) lands in its bucket).
func TestLatencyHistBuckets(t *testing.T) {
	var h latencyHist
	h.observe(500 * time.Microsecond) // ≤ 1ms
	h.observe(time.Millisecond)       // ≤ 1ms (inclusive)
	h.observe(2 * time.Millisecond)   // ≤ 10ms
	h.observe(time.Second)            // ≤ 1s
	h.observe(time.Minute)            // +Inf
	want := []uint64{2, 1, 0, 1, 0, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	wantSum := 500*time.Microsecond + 3*time.Millisecond + time.Second + time.Minute
	if got := time.Duration(h.sumNS.Load()); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}
