package service

import (
	"context"
	"testing"

	"riscvmem/internal/run"
)

// BenchmarkServiceBatch measures warm request throughput through the full
// Service layer: one op is an 8-job STREAM COPY batch (the same shape as
// BenchmarkRunnerBatchCached one layer down) — admission, device/spec
// resolution, cross-product, cache-served execution, response assembly.
// The Service-over-Runner overhead is the difference between the two.
// scripts/bench.sh records the median as service_request_ns_per_op.
func BenchmarkServiceBatch(b *testing.B) {
	specs := make([]run.WorkloadSpec, 8)
	for i := range specs {
		specs[i] = run.MustParseWorkloadSpec("stream:test=COPY,elems=4096,reps=1")
	}
	svc := New(Options{Parallelism: 1})
	req := BatchRequest{Devices: []string{"MangoPi"}, Workloads: specs}
	ctx := context.Background()
	if _, err := svc.Batch(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Batch(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Errors) > 0 {
			b.Fatal(resp.Errors)
		}
	}
	b.StopTimer()
	if _, misses := svc.Runner().CacheStats(); misses != 1 {
		b.Fatalf("warm benchmark simulated %d times, want 1", misses)
	}
}
