package service

import (
	"context"
	"fmt"
	"testing"

	"riscvmem/internal/run"
)

// BenchmarkServiceBatch measures warm request throughput through the full
// Service layer: one op is an 8-job STREAM COPY batch (the same shape as
// BenchmarkRunnerBatchCached one layer down) — admission, device/spec
// resolution, cross-product, cache-served execution, response assembly.
// The Service-over-Runner overhead is the difference between the two.
// scripts/bench.sh records the median as service_request_ns_per_op.
func BenchmarkServiceBatch(b *testing.B) {
	specs := make([]run.WorkloadSpec, 8)
	for i := range specs {
		specs[i] = run.MustParseWorkloadSpec("stream:test=COPY,elems=4096,reps=1")
	}
	svc := New(Options{Parallelism: 1})
	req := BatchRequest{Devices: []string{"MangoPi"}, Workloads: specs}
	ctx := context.Background()
	if _, err := svc.Batch(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Batch(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Errors) > 0 {
			b.Fatal(resp.Errors)
		}
	}
	b.StopTimer()
	if _, misses := svc.Runner().CacheStats(); misses != 1 {
		b.Fatalf("warm benchmark simulated %d times, want 1", misses)
	}
}

// BenchmarkServiceRestartWarm measures what a restarted daemon pays to
// serve a previously computed batch from the persistent disk tier: one op
// builds a fresh Service (empty memory tier) over a warm cache directory
// and executes an 8-cell batch — every cell is a disk-tier hit (entry read,
// checksum verification, decode, promotion), zero new simulations.
// scripts/bench.sh records the median as service_restart_warm_ns_per_op.
func BenchmarkServiceRestartWarm(b *testing.B) {
	specs := make([]run.WorkloadSpec, 8)
	for i := range specs {
		specs[i] = run.MustParseWorkloadSpec(
			fmt.Sprintf("stream:test=COPY,elems=%d,reps=1", 1024+64*i))
	}
	req := BatchRequest{Devices: []string{"MangoPi"}, Workloads: specs}
	ctx := context.Background()
	dir := b.TempDir()
	openSvc := func() *Service {
		store, err := run.OpenStore(dir, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		return New(Options{Parallelism: 1, Store: store})
	}
	if _, err := openSvc().Batch(ctx, req); err != nil { // warm the disk tier
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := openSvc()
		resp, err := svc.Batch(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Cache.RequestMisses != 0 {
			b.Fatalf("restart-warm op simulated %d cells", resp.Cache.RequestMisses)
		}
	}
}
