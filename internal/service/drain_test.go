package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"riscvmem/internal/leakcheck"
	"riscvmem/internal/run"
)

// logBuffer is a concurrency-safe Logf sink for asserting on operational
// log lines.
type logBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (b *logBuffer) logf(format string, args ...any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lines = append(b.lines, fmt.Sprintf(format, args...))
}

func (b *logBuffer) contains(substr string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

// TestDrainRejectsNewWork: once draining, every entry point refuses with
// ErrDraining and the HTTP surface reports 503 — health endpoint included,
// so load balancers stop routing.
func TestDrainRejectsNewWork(t *testing.T) {
	svc := New(Options{})
	if !svc.StartDrain() {
		t.Fatal("StartDrain did not flip the state")
	}
	if svc.StartDrain() {
		t.Error("second StartDrain claimed to flip the state again")
	}
	if !svc.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}

	ctx := context.Background()
	req := BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1")},
	}
	if _, err := svc.Batch(ctx, req); !errors.Is(err, ErrDraining) {
		t.Errorf("Batch error = %v, want ErrDraining", err)
	}
	if _, err := svc.Sweep(ctx, SweepRequest{Device: "MangoPi",
		Workloads: req.Workloads}); !errors.Is(err, ErrDraining) {
		t.Errorf("Sweep error = %v, want ErrDraining", err)
	}
	if _, err := svc.SubmitJob(ctx, JobRequest{Batch: &req}); !errors.Is(err, ErrDraining) {
		t.Errorf("SubmitJob error = %v, want ErrDraining", err)
	}

	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"devices":["MangoPi"],"workloads":["stream:test=COPY,elems=1024,reps=1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining POST /v1/batch = %d, want 503", resp.StatusCode)
	}
	// Polling existing jobs stays available while draining.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining GET /v1/jobs = %d, want 200", resp.StatusCode)
	}
	// An idle service drains instantly.
	rep := svc.Drain(context.Background())
	if !rep.Clean || len(rep.Abandoned) != 0 {
		t.Errorf("idle drain report: %+v", rep)
	}
}

// TestDrainWaitsForAdmittedWork: a drain lets running synchronous requests
// AND queued async jobs finish — draining closes the front door, not the
// pipeline — and reports clean once everything lands.
func TestDrainWaitsForAdmittedWork(t *testing.T) {
	assertNoLeak := leakcheck.Check(t)
	name, started, release := armSlow()
	svc := New(Options{MaxInFlight: 1})

	// A slow synchronous request holds the only slot...
	syncDone := make(chan error, 1)
	go func() {
		_, err := svc.Batch(context.Background(), BatchRequest{
			Devices:   []string{"MangoPi"},
			Workloads: []run.WorkloadSpec{{Kernel: name}},
		})
		syncDone <- err
	}()
	<-started
	// ...and an async job waits in the admission queue behind it.
	js, err := svc.SubmitJob(context.Background(), JobRequest{
		Batch: fastBatch("stream:test=COPY,elems=1024,reps=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "async job to queue", func() bool { return svc.queued.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drained := make(chan DrainReport, 1)
	go func() { drained <- svc.Drain(ctx) }()

	// The drain must wait: work is still admitted.
	select {
	case rep := <-drained:
		t.Fatalf("drain returned with work in flight: %+v", rep)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	rep := <-drained
	if !rep.Clean || len(rep.Abandoned) != 0 || rep.InFlight != 0 {
		t.Fatalf("drain report: %+v, want clean", rep)
	}
	if err := <-syncDone; err != nil {
		t.Errorf("in-flight request during drain: %v", err)
	}
	// The queued job ran to completion during the drain.
	final, ok := svc.Job(js.ID)
	if !ok || final.State != JobDone {
		t.Errorf("queued job after drain: ok=%v %+v", ok, final)
	}
	assertNoLeak()
}

// TestDrainAbandonsAtBudget: when the drain budget expires, remaining jobs
// are cancelled, reported in the DrainReport, and logged — shutdown is
// bounded even with work stuck in the pipeline.
func TestDrainAbandonsAtBudget(t *testing.T) {
	assertNoLeak := leakcheck.Check(t)
	name, started, release := armSlow()
	var logs logBuffer
	svc := New(Options{Logf: logs.logf})

	js, err := svc.SubmitJob(context.Background(), JobRequest{Batch: &BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{{Kernel: name}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is running and will not finish on its own

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rep := svc.Drain(ctx)
	if rep.Clean {
		t.Fatal("drain reported clean despite a stuck job")
	}
	if len(rep.Abandoned) != 1 || rep.Abandoned[0].ID != js.ID {
		t.Fatalf("abandoned = %+v, want job %s", rep.Abandoned, js.ID)
	}
	if !logs.contains("abandoning job " + js.ID) {
		t.Errorf("abandonment not logged: %v", logs.lines)
	}

	// The cancellation propagates: the cooperative workload unwinds and the
	// job lands cancelled.
	final := pollJob(t, svc, js.ID)
	if final.State != JobCancelled {
		t.Errorf("abandoned job state = %s, want cancelled", final.State)
	}
	close(release)
	assertNoLeak()
}
