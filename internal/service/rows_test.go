package service

import "testing"

// TestRowErrorTaxonomyRoundTrip pins the constructor/classifier pair: every
// message a constructor can produce classifies back to its own kind, and
// anything else is a workload error. Coordinator and chaos suite both
// branch on this — a drifted spelling would silently reclassify rows.
func TestRowErrorTaxonomyRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		msg  string
		want RowErrorKind
	}{
		{"empty is no error", "", ""},
		{"quarantined, default budget", QuarantinedRowError(3), RowErrorQuarantined},
		{"quarantined, custom budget", QuarantinedRowError(7), RowErrorQuarantined},
		{"quarantined with cause suffix", QuarantinedRowError(3) + ": cell failed on worker w1: panic: boom", RowErrorQuarantined},
		{"deadline", DeadlineRowError(), RowErrorDeadline},
		{"plain workload error", "run: stream: reps must be positive", RowErrorWorkload},
		{"workload error mentioning quarantine mid-string", "job failed: cell quarantined after midnight", RowErrorWorkload},
		{"workload error mentioning deadline mid-string", "job failed: request deadline expired before the cell completed", RowErrorWorkload},
	}
	for _, tc := range cases {
		if got := ClassifyRowError(tc.msg); got != tc.want {
			t.Errorf("%s: ClassifyRowError(%q) = %q, want %q", tc.name, tc.msg, got, tc.want)
		}
	}
}

// TestQuarantinedRowErrorSpellsLosses pins the message text clients see.
func TestQuarantinedRowErrorSpellsLosses(t *testing.T) {
	if got, want := QuarantinedRowError(3), "cell quarantined after 3 worker losses"; got != want {
		t.Errorf("QuarantinedRowError(3) = %q, want %q", got, want)
	}
}
