package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"riscvmem/internal/leakcheck"
	"riscvmem/internal/run"
)

// fastBatch is a small request that completes in milliseconds.
func fastBatch(workloads ...string) *BatchRequest {
	specs := make([]run.WorkloadSpec, len(workloads))
	for i, w := range workloads {
		specs[i] = run.MustParseWorkloadSpec(w)
	}
	return &BatchRequest{Devices: []string{"MangoPi"}, Workloads: specs}
}

// pollJob polls until the job reaches a terminal state and returns the
// final snapshot.
func pollJob(t *testing.T, svc *Service, id string) JobStatus {
	t.Helper()
	var js JobStatus
	waitFor(t, "job "+id+" to finish", func() bool {
		var ok bool
		js, ok = svc.Job(id)
		if !ok {
			t.Fatalf("job %s vanished mid-poll", id)
		}
		return js.State.terminal()
	})
	return js
}

// TestJobLifecycle pins the happy path: submit → queued snapshot with an ID
// → poll to done → full response, timestamps, rows and counts in place.
func TestJobLifecycle(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := New(Options{})
	js, err := svc.SubmitJob(context.Background(), JobRequest{
		Batch: fastBatch("stream:test=COPY,elems=1024,reps=1", "transpose:variant=Naive,n=64"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if js.ID == "" || js.State.terminal() || js.Kind != "batch" || js.Total != 2 {
		t.Fatalf("submit snapshot: %+v", js)
	}

	final := pollJob(t, svc, js.ID)
	if final.State != JobDone {
		t.Fatalf("final state = %s (%s), want done", final.State, final.Error)
	}
	if final.Done != 2 || len(final.Rows) != 2 {
		t.Errorf("done=%d rows=%d, want 2/2", final.Done, len(final.Rows))
	}
	if final.Response == nil || len(final.Response.Results) != 2 {
		t.Fatalf("final response missing: %+v", final.Response)
	}
	// Response rows are request-ordered regardless of completion order.
	if final.Response.Results[0].Workload != "stream/COPY" ||
		final.Response.Results[1].Workload != "transpose/Naive" {
		t.Errorf("response order: %q, %q", final.Response.Results[0].Workload,
			final.Response.Results[1].Workload)
	}
	if final.Started == nil || final.Finished == nil || final.Finished.Before(*final.Started) {
		t.Errorf("timestamps: started=%v finished=%v", final.Started, final.Finished)
	}

	// The listing includes the job, rows elided.
	list := svc.Jobs()
	if len(list) != 1 || list[0].ID != js.ID || len(list[0].Rows) != 0 {
		t.Errorf("Jobs() = %+v, want one row-elided entry", list)
	}
}

// TestJobRowsStreamInCompletionOrder pins the streaming contract: Rows
// accumulate as jobs complete — observable mid-run — in the Runner's
// serialized OnProgress order, not request order.
func TestJobRowsStreamInCompletionOrder(t *testing.T) {
	name, started, release := armSlow()
	svc := New(Options{Parallelism: 2})
	// Request order: [slow, fast]. The fast job completes first, so it must
	// be the first accumulated row while the slow one is still running.
	js, err := svc.SubmitJob(context.Background(), JobRequest{Batch: &BatchRequest{
		Devices: []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{
			{Kernel: name},
			run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1"),
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // slow job is executing

	var mid JobStatus
	waitFor(t, "first row to stream", func() bool {
		mid, _ = svc.Job(js.ID)
		return len(mid.Rows) >= 1
	})
	if mid.State != JobRunning || mid.Done != 1 {
		t.Errorf("mid-run snapshot: state=%s done=%d, want running/1", mid.State, mid.Done)
	}
	if mid.Rows[0].Workload != "stream/COPY" {
		t.Errorf("first streamed row = %q, want the fast job (completion order)", mid.Rows[0].Workload)
	}

	close(release)
	final := pollJob(t, svc, js.ID)
	if final.State != JobDone || len(final.Rows) != 2 {
		t.Fatalf("final: state=%s rows=%d (%s)", final.State, len(final.Rows), final.Error)
	}
	if final.Rows[1].Workload != name {
		t.Errorf("second streamed row = %q, want the slow job", final.Rows[1].Workload)
	}
	// Request-ordered response vs completion-ordered rows.
	if final.Response.Results[0].Workload != name {
		t.Errorf("response row 0 = %q, want request order", final.Response.Results[0].Workload)
	}
}

// TestCancelQueuedJob: cancelling a job still waiting for an admission slot
// removes it from the queue without it ever running.
func TestCancelQueuedJob(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := New(Options{MaxInFlight: 1})
	release, err := svc.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	js, err := svc.SubmitJob(context.Background(), JobRequest{
		Batch: fastBatch("stream:test=COPY,elems=1024,reps=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to join the queue", func() bool { return svc.queued.Load() == 1 })

	if _, ok := svc.CancelJob(js.ID); !ok {
		t.Fatal("CancelJob: unknown job")
	}
	final := pollJob(t, svc, js.ID)
	if final.State != JobCancelled {
		t.Errorf("cancelled-while-queued state = %s, want cancelled", final.State)
	}
	if final.Started != nil || len(final.Rows) != 0 {
		t.Errorf("queued job ran anyway: %+v", final)
	}
	release()

	// Unknown IDs are reported, not invented.
	if _, ok := svc.CancelJob("no-such-job"); ok {
		t.Error("CancelJob invented a job")
	}
}

// TestCancelRunningJob: cancelling a running job cancels its context; a
// cooperative workload returns promptly and the job lands cancelled with
// its partial state intact.
func TestCancelRunningJob(t *testing.T) {
	name, started, release := armSlow()
	defer close(release)
	svc := New(Options{})
	js, err := svc.SubmitJob(context.Background(), JobRequest{Batch: &BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{{Kernel: name}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // running

	if _, ok := svc.CancelJob(js.ID); !ok {
		t.Fatal("CancelJob: unknown job")
	}
	final := pollJob(t, svc, js.ID)
	if final.State != JobCancelled {
		t.Errorf("cancelled-while-running state = %s, want cancelled", final.State)
	}
	// Cancelling a terminal job is a no-op that still returns the snapshot.
	again, ok := svc.CancelJob(js.ID)
	if !ok || again.State != JobCancelled {
		t.Errorf("re-cancel: %v %+v", ok, again)
	}
}

// TestSubmitValidatesSynchronously: a malformed job fails the submit call
// itself with a ValidationError — never a later poll.
func TestSubmitValidatesSynchronously(t *testing.T) {
	svc := New(Options{})
	ctx := context.Background()
	var valErr *ValidationError
	cases := []JobRequest{
		{}, // neither batch nor sweep
		{Batch: fastBatch("stream:test=COPY,elems=1024,reps=1"),
			Sweep: &SweepRequest{Device: "MangoPi"}}, // both
		{Batch: &BatchRequest{Devices: []string{"Atari"},
			Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream/TRIAD")}}},
		{Sweep: &SweepRequest{Device: "MangoPi", Axes: []string{"warp=9"},
			Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream/TRIAD")}}},
	}
	for i, req := range cases {
		if _, err := svc.SubmitJob(ctx, req); !errors.As(err, &valErr) {
			t.Errorf("case %d: err = %v, want ValidationError", i, err)
		}
	}
	if n := len(svc.Jobs()); n != 0 {
		t.Errorf("%d jobs stored from invalid submissions, want 0", n)
	}
}

// TestJobTimeoutFails: an async job cut off by its own timeout lands
// failed — not done — even though the batch path absorbs the context error
// into rows.
func TestJobTimeoutFails(t *testing.T) {
	name, _, _ := armSlow()
	svc := New(Options{})
	js, err := svc.SubmitJob(context.Background(), JobRequest{Batch: &BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{{Kernel: name}},
		Options:   RequestOptions{TimeoutMS: 30},
	}})
	if err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, svc, js.ID)
	if final.State != JobFailed {
		t.Fatalf("timed-out job state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Errorf("job error = %q, want a deadline error", final.Error)
	}
	// The partial (all-rows-errored) response survives for post-mortems.
	if final.Response == nil || len(final.Response.Results) != 1 {
		t.Errorf("failed job lost its partial response: %+v", final.Response)
	}
}

// TestSweepJob: the async path carries sweeps too — rows stream raw, the
// final response has the cells' base-relative deltas.
func TestSweepJob(t *testing.T) {
	svc := New(Options{})
	js, err := svc.SubmitJob(context.Background(), JobRequest{Sweep: &SweepRequest{
		Device:    "MangoPi",
		Axes:      []string{"l2=base,128KiB"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("transpose:variant=Naive,n=64")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if js.Kind != "sweep" || js.Total != 2 {
		t.Fatalf("submit snapshot: %+v", js)
	}
	final := pollJob(t, svc, js.ID)
	if final.State != JobDone || len(final.Rows) != 2 {
		t.Fatalf("final: %+v", final)
	}
	for _, row := range final.Response.Results {
		if len(row.Cell) != 1 || row.Speedup <= 0 {
			t.Errorf("sweep response row missing cell/deltas: %+v", row)
		}
	}
}

// TestJobTTL: finished jobs are garbage-collected after their TTL; polling
// itself triggers the lazy GC.
func TestJobTTL(t *testing.T) {
	svc := New(Options{JobTTL: 20 * time.Millisecond})
	js, err := svc.SubmitJob(context.Background(), JobRequest{
		Batch: fastBatch("stream:test=COPY,elems=1024,reps=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	pollJob(t, svc, js.ID)
	waitFor(t, "job to be garbage-collected", func() bool {
		_, ok := svc.Job(js.ID)
		return !ok
	})
	if n := len(svc.Jobs()); n != 0 {
		t.Errorf("Jobs() = %d after TTL, want 0", n)
	}
}

// TestJobStoreEviction: a full store evicts its oldest finished job for a
// new submission, but refuses when every stored job is still live.
func TestJobStoreEviction(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := New(Options{MaxStoredJobs: 2, JobTTL: time.Hour})
	ctx := context.Background()
	first, err := svc.SubmitJob(ctx, JobRequest{Batch: fastBatch("stream:test=COPY,elems=1024,reps=1")})
	if err != nil {
		t.Fatal(err)
	}
	pollJob(t, svc, first.ID)
	second, err := svc.SubmitJob(ctx, JobRequest{Batch: fastBatch("stream:test=COPY,elems=1024,reps=1")})
	if err != nil {
		t.Fatal(err)
	}
	pollJob(t, svc, second.ID)

	// Store full (2/2 finished): the third submission evicts the oldest.
	third, err := svc.SubmitJob(ctx, JobRequest{Batch: fastBatch("stream:test=COPY,elems=1024,reps=1")})
	if err != nil {
		t.Fatalf("submission into a full-but-finished store: %v", err)
	}
	pollJob(t, svc, third.ID)
	if _, ok := svc.Job(first.ID); ok {
		t.Error("oldest finished job survived eviction")
	}
	if _, ok := svc.Job(second.ID); !ok {
		t.Error("newer finished job evicted instead of the oldest")
	}

	// All-live store: submission fails with an overload, evicting nothing.
	live := New(Options{MaxStoredJobs: 1, MaxInFlight: 1})
	release, err := live.admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := live.SubmitJob(ctx, JobRequest{Batch: fastBatch("stream:test=COPY,elems=1024,reps=1")})
	if err != nil {
		t.Fatal(err)
	}
	_, err = live.SubmitJob(ctx, JobRequest{Batch: fastBatch("stream:test=COPY,elems=1024,reps=1")})
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("all-live store submission error = %v, want ErrOverloaded", err)
	}
	release()
	pollJob(t, live, blocked.ID)
}
