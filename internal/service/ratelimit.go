package service

import (
	"context"
	"sync"
	"time"
)

// clientIDKey carries the caller's client identity through the context.
type clientIDKey struct{}

// WithClientID tags ctx with the caller's client identity for per-client
// rate limiting. Transports set it from their own notion of a caller — the
// HTTP handler uses the X-Client-ID header, falling back to the remote
// host. An untagged context falls under the shared "anonymous" bucket.
func WithClientID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, clientIDKey{}, id)
}

// ClientID extracts the client identity set by WithClientID.
func ClientID(ctx context.Context) string {
	if id, ok := ctx.Value(clientIDKey{}).(string); ok && id != "" {
		return id
	}
	return "anonymous"
}

// limiter is a per-client token-bucket rate limiter. Each client ID owns a
// bucket of burst tokens refilled at rate tokens/second; a request takes
// one token or is refused with the time until one refills.
type limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// limiterGCThreshold is the bucket-count high-water mark that triggers a
// sweep of full (idle) buckets — a full bucket carries no history worth
// keeping, so dropping it is invisible to its client.
const limiterGCThreshold = 1024

func newLimiter(rate float64, burst int) *limiter {
	b := float64(burst)
	if burst <= 0 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &limiter{rate: rate, burst: b, buckets: map[string]*bucket{}}
}

// take spends one token from id's bucket. When the bucket is empty it
// reports false and how long until a token refills.
func (l *limiter) take(id string) (retryAfter time.Duration, ok bool) {
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	bk := l.buckets[id]
	if bk == nil {
		if len(l.buckets) >= limiterGCThreshold {
			l.gcLocked()
		}
		bk = &bucket{tokens: l.burst, last: now}
		l.buckets[id] = bk
	} else {
		bk.tokens += now.Sub(bk.last).Seconds() * l.rate
		if bk.tokens > l.burst {
			bk.tokens = l.burst
		}
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return 0, true
	}
	wait := time.Duration((1 - bk.tokens) / l.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After granularity is whole seconds
	}
	return wait, false
}

// gcLocked drops buckets that have refilled completely — idle clients whose
// next request would start from a full bucket anyway.
func (l *limiter) gcLocked() {
	now := time.Now()
	for id, bk := range l.buckets {
		if bk.tokens+now.Sub(bk.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, id)
		}
	}
}
