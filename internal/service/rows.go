package service

import (
	"fmt"
	"strings"
)

// Row-level error taxonomy.
//
// A failed response row carries its error as a string (ResultRow.Error), so
// the distinction between failure classes has to live in the message text
// itself — these constructors are the single source of those messages, and
// ClassifyRowError is the inverse. Three classes exist:
//
//   - workload errors: the cell executed and its workload failed. Produced
//     by the runner; the row is a final answer.
//   - quarantined cells: the cluster control plane gave up on a cell after
//     it exhausted its failure budget (every attempt ended in a worker loss
//     or a contained cell failure). The row is a final answer too — retrying
//     harder would just crash more workers.
//   - deadline cells: the request's deadline expired before the cell
//     completed. The work may still be cached by a worker; the same request
//     with a longer deadline can succeed.
//
// Clients (and the chaos suite) branch on ClassifyRowError rather than
// substring-matching ad hoc.

// RowErrorKind names one class of row-level failure.
type RowErrorKind string

const (
	// RowErrorWorkload is an ordinary per-job execution failure.
	RowErrorWorkload RowErrorKind = "workload"
	// RowErrorQuarantined marks a cell the cluster quarantined after its
	// failure budget was exhausted.
	RowErrorQuarantined RowErrorKind = "quarantined"
	// RowErrorDeadline marks a cell cut off by the request deadline.
	RowErrorDeadline RowErrorKind = "deadline"
)

// quarantinedPrefix/deadlineMessage are the canonical spellings; the
// constructors build on them and ClassifyRowError matches them.
const (
	quarantinedPrefix = "cell quarantined after "
	deadlineMessage   = "request deadline expired before the cell completed"
)

// QuarantinedRowError renders the error for a cell quarantined after
// losses failed attempts (worker losses or contained cell failures).
func QuarantinedRowError(losses int) string {
	return fmt.Sprintf("%s%d worker losses", quarantinedPrefix, losses)
}

// DeadlineRowError renders the error for a cell whose request deadline
// expired before a row arrived.
func DeadlineRowError() string { return deadlineMessage }

// ClassifyRowError reports which class a row's error string belongs to.
// Empty strings (successful rows) return "".
func ClassifyRowError(msg string) RowErrorKind {
	switch {
	case msg == "":
		return ""
	case strings.HasPrefix(msg, quarantinedPrefix):
		return RowErrorQuarantined
	case strings.HasPrefix(msg, deadlineMessage):
		return RowErrorDeadline
	default:
		return RowErrorWorkload
	}
}
