package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"riscvmem/internal/leakcheck"
	"riscvmem/internal/run"
)

// waitFor polls cond for up to 2 seconds — the test-side synchronization
// for states (queue depth, job state) the service transitions through
// asynchronously.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueuedAdmission pins the wait-queue mechanics directly on admit: a
// request arriving at saturation queues instead of failing, is admitted
// when the slot frees, and only a full queue fails fast with a Retry-After
// hint.
func TestQueuedAdmission(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := New(Options{MaxInFlight: 1, MaxQueue: 1})
	ctx := context.Background()

	release1, err := svc.admit(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Second admission: queues.
	admitted := make(chan func(), 1)
	go func() {
		rel, err := svc.admit(ctx)
		if err != nil {
			t.Errorf("queued admit: %v", err)
		}
		admitted <- rel
	}()
	waitFor(t, "request to queue", func() bool { return svc.queued.Load() == 1 })

	// Third admission: queue full → fail fast, with a hint.
	_, err = svc.admit(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full admit error = %v, want ErrOverloaded", err)
	}
	var over *OverloadError
	if !errors.As(err, &over) || over.RetryAfter <= 0 {
		t.Errorf("queue-full error = %#v, want an OverloadError with RetryAfter > 0", err)
	}

	// Releasing the slot admits the queued request.
	release1()
	select {
	case rel := <-admitted:
		rel()
	case <-time.After(2 * time.Second):
		t.Fatal("queued request was not admitted after release")
	}
	if n := svc.queued.Load(); n != 0 {
		t.Errorf("queued = %d after drain, want 0", n)
	}
}

// TestQueueWaitHonorsDeadline: a queued request waits at most its own
// deadline, leaves the queue on expiry, and reports the context error.
func TestQueueWaitHonorsDeadline(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := New(Options{MaxInFlight: 1, MaxQueue: 4})
	release, err := svc.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := svc.admit(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired queue wait error = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("queue wait took %v past a 30ms deadline", waited)
	}
	if n := svc.queued.Load(); n != 0 {
		t.Errorf("queued = %d after deadline expiry, want 0", n)
	}
}

// TestQueuedBatchCompletes drives the queue end-to-end through Batch: a
// request arriving at saturation completes normally once the slot frees —
// the PR-4 behavior (immediate 429) is now opt-in via MaxQueue -1.
func TestQueuedBatchCompletes(t *testing.T) {
	name, started, release := armSlow()
	svc := New(Options{MaxInFlight: 1, MaxQueue: 2})
	ctx := context.Background()

	first := make(chan error, 1)
	go func() {
		_, err := svc.Batch(ctx, BatchRequest{
			Devices:   []string{"MangoPi"},
			Workloads: []run.WorkloadSpec{{Kernel: name}},
		})
		first <- err
	}()
	<-started // the slow request holds the only slot

	second := make(chan error, 1)
	go func() {
		_, err := svc.Batch(ctx, BatchRequest{
			Devices:   []string{"MangoPi"},
			Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1")},
		})
		second <- err
	}()
	waitFor(t, "second request to queue", func() bool { return svc.queued.Load() == 1 })

	close(release)
	if err := <-first; err != nil {
		t.Errorf("first request: %v", err)
	}
	if err := <-second; err != nil {
		t.Errorf("queued request: %v", err)
	}
}

// TestRetryAfterHint pins the hint derivation: 1s with no latency history,
// scaled by observed latency and backlog waves once there is, clamped to
// [1s, 5m].
func TestRetryAfterHint(t *testing.T) {
	svc := New(Options{MaxInFlight: 2})
	if got := svc.retryAfter(); got != time.Second {
		t.Errorf("no-history hint = %v, want 1s", got)
	}
	svc.observeLatency(10 * time.Second)
	// Empty queue: one wave of in-flight work must drain.
	if got := svc.retryAfter(); got != 10*time.Second {
		t.Errorf("one-wave hint = %v, want 10s", got)
	}
	svc.queued.Store(4) // 4 queued + 2 in flight = 3 waves of 2
	if got := svc.retryAfter(); got != 30*time.Second {
		t.Errorf("backlog hint = %v, want 30s", got)
	}
	svc.queued.Store(0)
	svc.observeLatency(time.Hour) // EWMA jumps, then clamps
	if got := svc.retryAfter(); got != 5*time.Minute {
		t.Errorf("clamped hint = %v, want 5m", got)
	}
	svc.latencyNS.Store(int64(time.Microsecond))
	if got := svc.retryAfter(); got != time.Second {
		t.Errorf("floor hint = %v, want 1s", got)
	}
}

// TestClientRateLimit pins per-client token buckets: a client exhausting
// its burst is refused with ErrRateLimited and a whole-second Retry-After,
// while other clients' buckets are untouched.
func TestClientRateLimit(t *testing.T) {
	svc := New(Options{ClientRate: 0.01, ClientBurst: 2})
	req := BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1")},
	}
	alice := WithClientID(context.Background(), "alice")
	for i := 0; i < 2; i++ {
		if _, err := svc.Batch(alice, req); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	_, err := svc.Batch(alice, req)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst-exhausted error = %v, want ErrRateLimited", err)
	}
	var over *OverloadError
	if !errors.As(err, &over) || over.RetryAfter < time.Second {
		t.Errorf("rate-limit error = %#v, want RetryAfter ≥ 1s", err)
	}
	// A different client is unaffected; so is the anonymous bucket.
	if _, err := svc.Batch(WithClientID(context.Background(), "bob"), req); err != nil {
		t.Errorf("other client refused: %v", err)
	}
	if _, err := svc.Batch(context.Background(), req); err != nil {
		t.Errorf("anonymous client refused: %v", err)
	}
}

// TestLimiterRefill pins the bucket arithmetic without wall-clock sleeps at
// the limiter level: tokens refill at rate, cap at burst, and the refusal
// wait matches the deficit.
func TestLimiterRefill(t *testing.T) {
	l := newLimiter(10, 1) // 10 tokens/s, burst 1
	if _, ok := l.take("c"); !ok {
		t.Fatal("first take refused")
	}
	wait, ok := l.take("c")
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if wait < time.Second {
		t.Errorf("wait = %v, want ≥ 1s (whole-second floor)", wait)
	}
	// Backdate the bucket: 100ms at 10/s refills the single token.
	l.mu.Lock()
	l.buckets["c"].last = time.Now().Add(-150 * time.Millisecond)
	l.mu.Unlock()
	if _, ok := l.take("c"); !ok {
		t.Error("refilled bucket refused a token")
	}
	// Refill caps at burst: a long-idle bucket grants exactly burst takes.
	l.mu.Lock()
	l.buckets["c"].last = time.Now().Add(-time.Hour)
	l.mu.Unlock()
	if _, ok := l.take("c"); !ok {
		t.Error("idle bucket refused its burst")
	}
	if _, ok := l.take("c"); ok {
		t.Error("burst-1 bucket granted two back-to-back tokens")
	}
}
