package service

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"riscvmem/internal/run"
	"riscvmem/internal/sim"
)

// The slow workload blocks until released or its context ends — the knob
// the admission and timeout tests turn. Each test re-arms its own pair of
// channels (the registry is process-wide, so the workload itself registers
// once and reads the current pair).
var (
	slowOnce    sync.Once
	slowMu      sync.Mutex
	slowStarted chan struct{}
	slowRelease chan struct{}
)

// armSlow registers the slow workload (once) and installs fresh channels
// for this test, returning them with the workload's registry name.
func armSlow() (name string, started, release chan struct{}) {
	slowOnce.Do(func() {
		err := run.Register(run.NewFunc("svc-test-slow",
			func(ctx context.Context, m *sim.Machine) (run.Result, error) {
				slowMu.Lock()
				st, rel := slowStarted, slowRelease
				slowMu.Unlock()
				st <- struct{}{}
				select {
				case <-rel:
					return run.Result{Seconds: 1}, nil
				case <-ctx.Done():
					return run.Result{}, ctx.Err()
				}
			}))
		if err != nil {
			panic(err)
		}
	})
	slowMu.Lock()
	defer slowMu.Unlock()
	slowStarted = make(chan struct{}, 64)
	slowRelease = make(chan struct{})
	return "svc-test-slow", slowStarted, slowRelease
}

func TestBatchValidation(t *testing.T) {
	svc := New(Options{})
	ctx := context.Background()

	if _, err := svc.Batch(ctx, BatchRequest{}); err == nil {
		t.Error("no workloads: expected error")
	}
	_, err := svc.Batch(ctx, BatchRequest{
		Devices:   []string{"Atari2600"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream/TRIAD")},
	})
	if err == nil || !strings.Contains(err.Error(), "MangoPi") {
		t.Errorf("unknown device error = %v, want the valid device list", err)
	}
	_, err = svc.Batch(ctx, BatchRequest{
		Workloads: []run.WorkloadSpec{{Kernel: "nope"}},
	})
	if err == nil || !strings.Contains(err.Error(), "kernels:") {
		t.Errorf("unknown kernel error = %v, want the kernel list", err)
	}

	small := New(Options{MaxJobs: 2})
	_, err = small.Batch(ctx, BatchRequest{ // 4 devices × 1 workload = 4 > 2
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream/TRIAD")},
	})
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized request error = %v, want the job limit", err)
	}
}

func TestSweepValidation(t *testing.T) {
	svc := New(Options{})
	ctx := context.Background()
	wl := []run.WorkloadSpec{run.MustParseWorkloadSpec("transpose:variant=Naive,n=64")}

	if _, err := svc.Sweep(ctx, SweepRequest{Workloads: wl}); err == nil {
		t.Error("no device: expected error")
	}
	_, err := svc.Sweep(ctx, SweepRequest{Device: "MangoPi", Axes: []string{"warp=9"}, Workloads: wl})
	if err == nil || !strings.Contains(err.Error(), "axes:") {
		t.Errorf("unknown axis error = %v, want the axis list", err)
	}
	if _, err := svc.Sweep(ctx, SweepRequest{Device: "MangoPi"}); err == nil {
		t.Error("no workloads: expected error")
	}

	// An oversized cross-product is bounded from the axis point counts —
	// before expansion allocates a Spec per cell.
	small := New(Options{MaxJobs: 4})
	_, err = small.Sweep(ctx, SweepRequest{
		Device:    "MangoPi",
		Axes:      []string{"maxinflight=1,2,4", "dramlat=50,100,200"}, // 9 cells
		Workloads: wl,
	})
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized sweep error = %v, want the job limit", err)
	}
}

// TestAdmissionLimit pins the fail-fast admission mode (MaxQueue -1): with
// MaxInFlight 1 and no queue, a second concurrent request fails fast with
// ErrOverloaded, and the slot frees once the first request completes.
func TestAdmissionLimit(t *testing.T) {
	name, started, release := armSlow()
	svc := New(Options{MaxInFlight: 1, MaxQueue: -1})
	ctx := context.Background()
	req := BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{{Kernel: name}},
	}

	done := make(chan error, 1)
	go func() {
		_, err := svc.Batch(ctx, req)
		done <- err
	}()
	<-started // the first request holds the only slot

	if _, err := svc.Batch(ctx, req); !errors.Is(err, ErrOverloaded) {
		t.Errorf("second request error = %v, want ErrOverloaded", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
	// Slot released: an ordinary request is admitted again.
	if _, err := svc.Batch(ctx, BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1")},
	}); err != nil {
		t.Errorf("post-release request: %v", err)
	}
}

// TestRequestTimeout pins the per-request timeout: jobs cut off by the
// request deadline land as row errors, not a transport hang.
func TestRequestTimeout(t *testing.T) {
	name, _, _ := armSlow()
	svc := New(Options{})
	resp, err := svc.Batch(context.Background(), BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{{Kernel: name}},
		Options:   RequestOptions{TimeoutMS: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Errors) == 0 || resp.Results[0].Error == "" {
		t.Fatalf("timed-out job not reported: %+v", resp)
	}
	if !strings.Contains(resp.Results[0].Error, "deadline") {
		t.Errorf("row error = %q, want a deadline error", resp.Results[0].Error)
	}
	// The failed row still identifies its job.
	if resp.Results[0].Workload != name || resp.Results[0].Device != "MangoPi" {
		t.Errorf("failed row unidentified: %+v", resp.Results[0])
	}
}

// registerFailing registers (once) a workload that always errors.
var failOnce sync.Once

func registerFailing() {
	failOnce.Do(func() {
		err := run.Register(run.NewFunc("svc-test-fail",
			func(ctx context.Context, m *sim.Machine) (run.Result, error) {
				return run.Result{}, errors.New("synthetic failure")
			}))
		if err != nil {
			panic(err)
		}
	})
}

// TestSweepExecutionError pins the error classification: a sweep that
// validated but failed while running returns an ExecutionError.
func TestSweepExecutionError(t *testing.T) {
	registerFailing()
	svc := New(Options{})
	_, err := svc.Sweep(context.Background(), SweepRequest{
		Device:    "MangoPi",
		Workloads: []run.WorkloadSpec{{Kernel: "svc-test-fail"}},
	})
	var exec *ExecutionError
	if !errors.As(err, &exec) {
		t.Fatalf("sweep error = %v, want ExecutionError", err)
	}
}

// TestNoTimeoutIsUnbounded pins that MaxTimeout caps configured timeouts
// but does not invent one: with no default and no request timeout, the
// request context carries no deadline.
func TestNoTimeoutIsUnbounded(t *testing.T) {
	svc := New(Options{MaxTimeout: time.Millisecond})
	ctx, cancel := svc.timeoutCtx(context.Background(), RequestOptions{})
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("no configured timeout, but the context has a deadline")
	}
	ctx2, cancel2 := svc.timeoutCtx(context.Background(), RequestOptions{TimeoutMS: 60_000})
	defer cancel2()
	if dl, ok := ctx2.Deadline(); !ok || time.Until(dl) > time.Second {
		t.Errorf("request timeout not capped: deadline %v ok=%v", dl, ok)
	}
}

// TestTimeoutClamp pins MaxTimeout clamping request-supplied values.
func TestTimeoutClamp(t *testing.T) {
	name, _, _ := armSlow()
	svc := New(Options{MaxTimeout: 20 * time.Millisecond})
	start := time.Now()
	resp, err := svc.Batch(context.Background(), BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{{Kernel: name}},
		Options:   RequestOptions{TimeoutMS: 60_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request ran %v despite 20ms cap", elapsed)
	}
	if len(resp.Errors) == 0 {
		t.Error("clamped request should have timed out")
	}
}

// TestSkippedJobsCollapse pins that a batch whose jobs were skipped
// wholesale by a dead context reports one counted Errors entry, not one
// line per job (rows keep their individual error fields).
func TestSkippedJobsCollapse(t *testing.T) {
	svc := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before any job runs
	specs := make([]run.WorkloadSpec, 16)
	for i := range specs {
		specs[i] = run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1")
	}
	resp, err := svc.Batch(ctx, BatchRequest{Devices: []string{"MangoPi"}, Workloads: specs})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Errors) != 1 || !strings.Contains(resp.Errors[0], "16 jobs skipped") {
		t.Errorf("Errors = %v, want one collapsed entry", resp.Errors)
	}
	for i, row := range resp.Results {
		if row.Error == "" {
			t.Errorf("row %d lost its error", i)
		}
	}
}

// TestPartialFailure: one failing workload does not void the batch.
func TestPartialFailure(t *testing.T) {
	svc := New(Options{})
	resp, err := svc.Batch(context.Background(), BatchRequest{
		Devices: []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1"),
			run.MustParseWorkloadSpec("transpose:variant=Naive,n=0"), // invalid at run time
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" || resp.Results[0].Seconds <= 0 {
		t.Errorf("good row broken: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Errorf("bad row not reported: %+v", resp.Results[1])
	}
	if len(resp.Errors) != 1 {
		t.Errorf("Errors = %v, want exactly one", resp.Errors)
	}
}

// TestRequestJSONRoundTrip pins the wire types: requests and responses
// survive marshal/unmarshal unchanged.
func TestRequestJSONRoundTrip(t *testing.T) {
	breq := BatchRequest{
		Devices: []string{"MangoPi", "Xeon"},
		Workloads: []run.WorkloadSpec{
			run.MustParseWorkloadSpec("stream:test=TRIAD,elems=4096"),
			run.MustParseWorkloadSpec("transpose/Blocking"),
		},
		Options: RequestOptions{TimeoutMS: 1500},
	}
	data, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	var breq2 BatchRequest
	if err := json.Unmarshal(data, &breq2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(breq, breq2) {
		t.Errorf("BatchRequest round trip: %+v != %+v", breq2, breq)
	}

	sreq := SweepRequest{
		Device:    "MangoPi",
		Axes:      []string{"l2=off,base", "maxinflight=1,2"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("gblur/Memory")},
	}
	data, err = json.Marshal(sreq)
	if err != nil {
		t.Fatal(err)
	}
	var sreq2 SweepRequest
	if err := json.Unmarshal(data, &sreq2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sreq, sreq2) {
		t.Errorf("SweepRequest round trip: %+v != %+v", sreq2, sreq)
	}

	// A real response round-trips too (covers Result/Summary marshaling).
	svc := New(Options{})
	resp, err := svc.Batch(context.Background(), BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1")},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var resp2 Response
	if err := json.Unmarshal(data, &resp2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*resp, resp2) {
		t.Errorf("Response round trip:\n got %+v\nwant %+v", resp2, *resp)
	}
}

// TestListings covers Devices and Workloads discovery payloads.
func TestListings(t *testing.T) {
	svc := New(Options{})
	devs := svc.Devices()
	if len(devs) != 4 {
		t.Fatalf("Devices() = %d entries, want 4", len(devs))
	}
	names := map[string]bool{}
	for _, d := range devs {
		names[d.Name] = true
		if d.CPU == "" || d.FreqGHz <= 0 || d.RAMBytes <= 0 || d.PeakDRAMBandwidth == "" {
			t.Errorf("device %q underdescribed: %+v", d.Name, d)
		}
	}
	for _, want := range []string{"Xeon", "RaspberryPi4", "VisionFive", "MangoPi"} {
		if !names[want] {
			t.Errorf("device %q missing", want)
		}
	}

	info := svc.Workloads()
	if len(info.Kernels) < 3 || info.Grammar == "" || len(info.SweepAxes) == 0 {
		t.Errorf("Workloads() underdescribed: %+v", info)
	}
}
