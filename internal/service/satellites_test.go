package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"riscvmem/internal/leakcheck"
)

// TestKernelHistogramOnMetrics pins the per-kernel latency histogram on the
// scrape surface: one batch touching two kernel families yields one
// observation per family under simd_kernel_duration_seconds, with the full
// bucket/sum/count series triplet per label.
func TestKernelHistogramOnMetrics(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := New(Options{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	if _, err := svc.Batch(context.Background(),
		*fastBatch("stream:test=COPY,elems=1024,reps=1", "transpose:variant=Naive,n=64")); err != nil {
		t.Fatal(err)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, kernel := range []string{"stream", "transpose"} {
		if got := metricValue(t, body, fmt.Sprintf("simd_kernel_duration_seconds_count{kernel=%q}", kernel)); got != 1 {
			t.Errorf("%s count = %g, want 1", kernel, got)
		}
		if got := metricValue(t, body, fmt.Sprintf("simd_kernel_duration_seconds_bucket{kernel=%q,le=\"+Inf\"}", kernel)); got != 1 {
			t.Errorf("%s +Inf bucket = %g, want 1", kernel, got)
		}
		// The sum must exist and be a sane duration; its exact value is
		// host timing.
		if got := metricValue(t, body, fmt.Sprintf("simd_kernel_duration_seconds_sum{kernel=%q}", kernel)); got < 0 {
			t.Errorf("%s sum = %g, want ≥ 0", kernel, got)
		}
	}
}

// TestKernelHistogramCardinalityCap exercises the label-cardinality bound:
// past maxKernelSeries distinct kernels, further labels fold into "other"
// instead of growing the scrape without limit. No observation is dropped.
func TestKernelHistogramCardinalityCap(t *testing.T) {
	const extra = 5
	var k kernelHist
	for i := 0; i < maxKernelSeries+extra; i++ {
		k.observe(fmt.Sprintf("kernel%03d", i), 0)
	}

	distinct := 0
	k.m.Range(func(_, _ any) bool { distinct++; return true })
	if distinct != maxKernelSeries+1 { // the cap's worth of labels plus "other"
		t.Errorf("distinct series = %d, want %d", distinct, maxKernelSeries+1)
	}
	v, ok := k.m.Load("other")
	if !ok {
		t.Fatal(`no "other" series after exceeding the cardinality cap`)
	}
	other := uint64(0)
	for i := range v.(*kernelSeries).counts {
		other += v.(*kernelSeries).counts[i].Load()
	}
	if other != extra {
		t.Errorf(`"other" holds %d observations, want %d`, other, extra)
	}
}

// TestJobAfterCursor pins the incremental row fetch: JobAfter elides the
// first N rows and NextAfter is the high-water mark a client passes back,
// so polling a long job re-downloads nothing. Covers the library surface
// and the GET /v1/jobs/{id}?after=N wire form, including cursor validation.
func TestJobAfterCursor(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := New(Options{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	js, err := svc.SubmitJob(context.Background(), JobRequest{
		Batch: fastBatch(
			"stream:test=COPY,elems=1024,reps=1",
			"stream:test=SCALE,elems=1024,reps=1",
			"transpose:variant=Naive,n=64"),
	})
	if err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, svc, js.ID)
	if final.State != JobDone || len(final.Rows) != 3 {
		t.Fatalf("final: state=%s rows=%d, want done/3", final.State, len(final.Rows))
	}

	full, ok := svc.JobAfter(js.ID, 0)
	if !ok || len(full.Rows) != 3 || full.NextAfter != 3 {
		t.Fatalf("JobAfter(0): rows=%d next_after=%d, want 3/3", len(full.Rows), full.NextAfter)
	}
	tail, ok := svc.JobAfter(js.ID, 2)
	if !ok || len(tail.Rows) != 1 || tail.NextAfter != 3 {
		t.Fatalf("JobAfter(2): rows=%d next_after=%d, want 1/3", len(tail.Rows), tail.NextAfter)
	}
	if tail.Rows[0].Workload != full.Rows[2].Workload {
		t.Errorf("JobAfter(2) row = %q, want the third row %q", tail.Rows[0].Workload, full.Rows[2].Workload)
	}
	if caught, ok := svc.JobAfter(js.ID, 3); !ok || len(caught.Rows) != 0 || caught.NextAfter != 3 {
		t.Errorf("JobAfter(3) at the high-water mark: rows=%d, want 0 (caught up, not an error)", len(caught.Rows))
	}

	// Wire form: ?after=2 yields the tail with the same high-water mark.
	res, err := http.Get(ts.URL + "/v1/jobs/" + js.ID + "?after=2")
	if err != nil {
		t.Fatal(err)
	}
	var wire JobStatus
	if err := json.NewDecoder(res.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || len(wire.Rows) != 1 || wire.NextAfter != 3 {
		t.Fatalf("GET ?after=2: status=%d rows=%d next_after=%d, want 200/1/3",
			res.StatusCode, len(wire.Rows), wire.NextAfter)
	}

	for _, bad := range []string{"bogus", "-1", "1.5"} {
		res, err := http.Get(ts.URL + "/v1/jobs/" + js.ID + "?after=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("GET ?after=%s: status=%d, want 400", bad, res.StatusCode)
		}
	}
}
