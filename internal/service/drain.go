package service

import (
	"context"
	"time"
)

// DrainReport is the outcome of one Drain call.
type DrainReport struct {
	// Clean reports that every admitted request and async job finished
	// inside the budget.
	Clean bool `json:"clean"`
	// Waited is how long the drain took.
	Waited time.Duration `json:"waited_ns"`
	// Abandoned lists the async jobs cancelled at budget expiry (their
	// snapshots as of abandonment, rows elided).
	Abandoned []JobStatus `json:"abandoned,omitempty"`
	// InFlight counts execution slots still occupied at budget expiry —
	// synchronous requests or abandoned jobs whose workloads have not yet
	// observed cancellation.
	InFlight int `json:"in_flight"`
}

// StartDrain flips the service into draining mode: Batch, Sweep and
// SubmitJob fail with ErrDraining from here on (transports map it to 503,
// and the HTTP health endpoint reports "draining"), while queued and
// running work — including queued async jobs still waiting for a slot —
// proceeds normally. Idempotent; reports whether this call flipped the
// state.
func (s *Service) StartDrain() bool { return s.draining.CompareAndSwap(false, true) }

// Draining reports whether StartDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain flips the service into draining mode (if StartDrain has not run
// already) and waits for all admitted work to finish: execution slots
// empty, admission queue empty, no live async jobs. When ctx expires
// first, every remaining async job is cancelled — its workload abandoned
// at the runner if it ignores cancellation — and reported in the
// DrainReport; synchronous requests past admission cannot be revoked, so
// they are only counted.
//
// The drained state is permanent: a Service does not resume admission.
func (s *Service) Drain(ctx context.Context) DrainReport {
	s.StartDrain()
	start := time.Now()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.idle() {
			return DrainReport{Clean: true, Waited: time.Since(start)}
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			rep := DrainReport{Waited: time.Since(start), InFlight: len(s.sem)}
			for _, js := range s.Jobs() {
				if !js.State.terminal() {
					if snap, ok := s.CancelJob(js.ID); ok {
						rep.Abandoned = append(rep.Abandoned, snap)
						s.logf("service: drain budget expired, abandoning job %s (%s, %d/%d done)",
							snap.ID, snap.Kind, snap.Done, snap.Total)
					}
				}
			}
			if rep.InFlight > 0 {
				s.logf("service: drain budget expired with %d request(s) still executing", rep.InFlight)
			}
			return rep
		}
	}
}

// idle reports that nothing is executing, queued, or live in the job
// store. len on the slot channel is a point-in-time read — exact once
// admission is closed (draining) and all entry points have returned.
func (s *Service) idle() bool {
	return len(s.sem) == 0 && s.queued.Load() == 0 && s.activeJobs() == 0
}
