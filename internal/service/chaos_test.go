//go:build faultinject

// The service chaos suite: injected admission and machine-acquisition
// faults, context-deaf workloads and a full drain-under-fire drill, driven
// through the public Service surface. Asserts the end-to-end robustness
// invariants — errors never cached, deadlines honored against stalls,
// poisoned machines never re-pooled, drain bounded, no goroutine leaks.
// Build with -tags faultinject (the CI chaos job runs it under -race).
package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"riscvmem/internal/faultinject"
	"riscvmem/internal/faultinject/chaos"
	"riscvmem/internal/leakcheck"
	"riscvmem/internal/run"
)

// registerDeafStall registers a uniquely named context-deaf stall workload
// and returns its registry name with the arming channels. Unique names per
// test because the registry is append-only and process-wide.
func registerDeafStall(t *testing.T, name string) (started chan struct{}, release chan struct{}) {
	t.Helper()
	started = make(chan struct{}, 64)
	release = make(chan struct{})
	if err := run.Register(chaos.Stall(name, started, release, false)); err != nil {
		t.Fatal(err)
	}
	return started, release
}

// TestChaosAdmitFault: a fault injected at the admission seam surfaces as
// the request's error with its classification intact — proving the seam
// sits on the real request path.
func TestChaosAdmitFault(t *testing.T) {
	faultinject.Reset() // drop activation counts from earlier tests
	defer faultinject.Reset()
	faultinject.Set(faultinject.ServiceAdmit,
		faultinject.AlwaysFail(&OverloadError{RetryAfter: 2 * time.Second, reason: ErrOverloaded}))

	svc := New(Options{})
	_, err := svc.Batch(context.Background(), BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1")},
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("injected admit fault surfaced as %v, want ErrOverloaded", err)
	}
	var over *OverloadError
	if !errors.As(err, &over) || over.RetryAfter != 2*time.Second {
		t.Errorf("fault lost its classification: %#v", err)
	}
	if n := faultinject.Fired(faultinject.ServiceAdmit); n != 1 {
		t.Errorf("admit seam fired %d times, want 1", n)
	}
}

// TestChaosTransientAcquire: a transient machine-acquisition failure fails
// one row of one request — and the identical follow-up request succeeds,
// because the shared memo cache never stores errors.
func TestChaosTransientAcquire(t *testing.T) {
	defer faultinject.Reset()
	defer leakcheck.Check(t)()
	errInjected := errors.New("chaos: injected acquire failure")
	faultinject.Set(faultinject.RunnerAcquire, faultinject.FailTimes(1, errInjected))

	svc := New(Options{})
	req := BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1")},
	}
	resp, err := svc.Batch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error == "" || !strings.Contains(resp.Results[0].Error, "injected") {
		t.Fatalf("faulted row = %+v, want the injected failure", resp.Results[0])
	}

	resp, err = svc.Batch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" || resp.Results[0].Seconds <= 0 {
		t.Fatalf("retry row = %+v, want a clean re-simulation (error must not be cached)", resp.Results[0])
	}
	if resp.Cache.RequestMisses != 1 {
		t.Errorf("retry caused %d simulations, want 1 (fresh, not cached)", resp.Cache.RequestMisses)
	}
}

// TestChaosDeadlineAgainstStall: an async job containing a context-deaf
// workload still honors its deadline — the healthy row lands first in
// OnProgress order, the stalled run is abandoned, its machine poisoned, and
// the job reads failed.
func TestChaosDeadlineAgainstStall(t *testing.T) {
	assertNoLeak := leakcheck.Check(t)
	started, release := registerDeafStall(t, "svc-chaos-stall-deadline")
	svc := New(Options{Parallelism: 2})

	js, err := svc.SubmitJob(context.Background(), JobRequest{Batch: &BatchRequest{
		Devices: []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{
			{Kernel: "svc-chaos-stall-deadline"},
			run.MustParseWorkloadSpec("stream:test=COPY,elems=1024,reps=1"),
		},
		Options: RequestOptions{TimeoutMS: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	final := pollJob(t, svc, js.ID)
	if final.State != JobFailed || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("job against a stall: state=%s err=%q, want failed/deadline", final.State, final.Error)
	}
	// Partial rows are consistent with OnProgress order: the healthy job
	// completed first; the stalled one carries the abandonment error.
	if len(final.Rows) != 2 || final.Done != 2 {
		t.Fatalf("rows=%d done=%d, want 2/2", len(final.Rows), final.Done)
	}
	if final.Rows[0].Error != "" || final.Rows[0].Workload != "stream/COPY" {
		t.Errorf("first streamed row = %+v, want the healthy completion", final.Rows[0])
	}
	if !strings.Contains(final.Rows[1].Error, "abandoned") {
		t.Errorf("stalled row = %+v, want an abandonment error", final.Rows[1])
	}
	if got := svc.Runner().Abandoned(); got != 1 {
		t.Errorf("Abandoned() = %d, want 1", got)
	}
	// The healthy job's machine is pooled; the abandoned one is poisoned.
	if n := svc.Runner().PoolSize(); n != 1 {
		t.Errorf("PoolSize() = %d, want 1", n)
	}
	close(release)
	assertNoLeak()
}

// TestChaosDrainUnderFire is the full drill: a running context-deaf job and
// a queued job at drain time, a budget that expires, and the service must
// come out bounded — both jobs cancelled and reported, the stalled machine
// poisoned, the abandonment logged, and no goroutine left behind.
func TestChaosDrainUnderFire(t *testing.T) {
	assertNoLeak := leakcheck.Check(t)
	started, release := registerDeafStall(t, "svc-chaos-stall-drain")
	var logs logBuffer
	svc := New(Options{MaxInFlight: 1, Logf: logs.logf})

	stalled, err := svc.SubmitJob(context.Background(), JobRequest{Batch: &BatchRequest{
		Devices:   []string{"MangoPi"},
		Workloads: []run.WorkloadSpec{{Kernel: "svc-chaos-stall-drain"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // running, holding the only slot
	queued, err := svc.SubmitJob(context.Background(), JobRequest{
		Batch: fastBatch("stream:test=COPY,elems=1024,reps=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second job to queue", func() bool { return svc.queued.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	rep := svc.Drain(ctx)
	if rep.Clean || len(rep.Abandoned) != 2 {
		t.Fatalf("drain report: %+v, want 2 abandoned jobs", rep)
	}
	if !logs.contains("abandoning job " + stalled.ID) {
		t.Errorf("stalled job's abandonment not logged: %v", logs.lines)
	}

	// Cancellation propagates asynchronously; both jobs land cancelled.
	for _, id := range []string{stalled.ID, queued.ID} {
		if final := pollJob(t, svc, id); final.State != JobCancelled {
			t.Errorf("job %s state = %s, want cancelled", id, final.State)
		}
	}
	if got := svc.Runner().Abandoned(); got != 1 {
		t.Errorf("Abandoned() = %d, want 1 (the context-deaf run)", got)
	}
	// The stalled machine is poisoned and the queued job never ran: the
	// pool must be empty.
	if n := svc.Runner().PoolSize(); n != 0 {
		t.Errorf("PoolSize() = %d, want 0", n)
	}
	close(release)
	assertNoLeak()
}
