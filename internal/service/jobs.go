package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"riscvmem/internal/run"
)

// JobState is one point of the async job lifecycle:
//
//	queued ──► running ──► done
//	   │          ├──────► failed     (execution error or deadline)
//	   └──────────┴──────► cancelled  (DELETE, or drain abandonment)
//
// A queued job is waiting for an admission slot; it obeys the same bounded
// queue as synchronous requests.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (st JobState) terminal() bool {
	return st == JobDone || st == JobFailed || st == JobCancelled
}

// JobRequest submits work asynchronously: exactly one of Batch or Sweep.
// The embedded request is validated synchronously at submission — a
// malformed job fails the submit call, never a later poll.
type JobRequest struct {
	Batch *BatchRequest `json:"batch,omitempty"`
	Sweep *SweepRequest `json:"sweep,omitempty"`
}

// JobStatus is the externally visible snapshot of one async job.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Kind is "batch" or "sweep".
	Kind string `json:"kind"`
	// Done/Total count completed jobs of the request's cross-product.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Rows accumulates per-job outcomes in completion order as the
	// Runner's serialized progress hook reports them — the streaming-read
	// surface while the job runs. (Sweep rows here are raw results; the
	// base-relative deltas require the full grid and arrive in Response.)
	Rows []ResultRow `json:"rows,omitempty"`
	// NextAfter is the rows high-water mark: the count accumulated when
	// this snapshot was taken. Pass it as GET /v1/jobs/{id}?after=N (or
	// JobAfter) to receive only rows that arrived since — the incremental
	// polling surface for long requests.
	NextAfter int `json:"next_after"`
	// Error is set for failed (and drain-abandoned cancelled) jobs.
	Error string `json:"error,omitempty"`
	// Response is the complete, request-ordered response of a done job
	// (also set for failed/cancelled batch jobs, whose partial responses
	// carry per-row errors).
	Response *Response  `json:"response,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// job is the store's internal record. All fields past the immutable header
// are guarded by the store mutex.
type job struct {
	id   string
	kind string
	opts RequestOptions

	// Exactly one of these is set, by kind.
	batchJobs []run.Job
	sweepPrep *preparedSweep

	state           JobState
	rows            []ResultRow
	done, total     int
	resp            *Response
	errMsg          string
	cancel          context.CancelFunc
	cancelRequested bool
	created         time.Time
	started         time.Time
	finished        time.Time
}

// jobStore owns every async job: creation, state transitions, row
// accumulation, snapshots, and TTL-based garbage collection of finished
// jobs (run lazily on every store operation — no background goroutine to
// leak or drain).
type jobStore struct {
	mu   sync.Mutex
	jobs map[string]*job
	ttl  time.Duration
	max  int
}

func newJobStore(ttl time.Duration, max int) *jobStore {
	return &jobStore{jobs: map[string]*job{}, ttl: ttl, max: max}
}

// newJobID returns a 16-hex-digit random job ID.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: job ID entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// gcLocked drops finished jobs past their TTL. Caller holds mu.
func (st *jobStore) gcLocked(now time.Time) {
	for id, j := range st.jobs {
		if j.state.terminal() && now.Sub(j.finished) > st.ttl {
			delete(st.jobs, id)
		}
	}
}

// create registers a new queued job, evicting the oldest finished job when
// the store is full; it fails when every stored job is still live.
func (st *jobStore) create(j *job) error {
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.gcLocked(now)
	if len(st.jobs) >= st.max {
		oldest := ""
		var oldestAt time.Time
		for id, e := range st.jobs {
			if e.state.terminal() && (oldest == "" || e.finished.Before(oldestAt)) {
				oldest, oldestAt = id, e.finished
			}
		}
		if oldest == "" {
			return &OverloadError{RetryAfter: time.Second,
				reason: fmt.Errorf("%w: %d jobs stored, all live", ErrOverloaded, len(st.jobs))}
		}
		delete(st.jobs, oldest)
	}
	j.state = JobQueued
	j.created = now
	st.jobs[j.id] = j
	return nil
}

// snapshotLocked copies the job into its external form. Caller holds mu.
func (st *jobStore) snapshotLocked(j *job, withRows bool) JobStatus {
	s := JobStatus{
		ID: j.id, State: j.state, Kind: j.kind,
		Done: j.done, Total: j.total,
		Error: j.errMsg, Response: j.resp, Created: j.created,
	}
	s.NextAfter = len(j.rows)
	if withRows {
		s.Rows = j.rows // append-only: shared backing array is safe to read
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// SubmitJob validates the request synchronously, registers a queued job and
// starts its executor. The returned snapshot carries the job ID to poll;
// the job then competes for the same bounded admission queue as synchronous
// requests, under its own timeout (queue wait included).
func (s *Service) SubmitJob(ctx context.Context, req JobRequest) (JobStatus, error) {
	if err := s.checkAdmittable(ctx); err != nil {
		return JobStatus{}, err
	}
	j := &job{id: newJobID()}
	switch {
	case req.Batch != nil && req.Sweep == nil:
		jobs, err := s.prepareBatch(*req.Batch)
		if err != nil {
			return JobStatus{}, err
		}
		j.kind, j.batchJobs, j.total, j.opts = "batch", jobs, len(jobs), req.Batch.Options
	case req.Sweep != nil && req.Batch == nil:
		ps, err := s.prepareSweep(*req.Sweep)
		if err != nil {
			return JobStatus{}, err
		}
		j.kind, j.sweepPrep, j.total, j.opts = "sweep", ps, ps.jobCount, req.Sweep.Options
	default:
		return JobStatus{}, invalidf("service: job request must set exactly one of batch or sweep")
	}
	if err := s.jobs.create(j); err != nil {
		return JobStatus{}, err
	}
	go s.executeJob(j)
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	return s.jobs.snapshotLocked(j, true), nil
}

// executeJob runs one async job through the ordinary admission and
// execution paths. The job's context descends from Background — it lives
// past the submitting connection — bounded by the request timeout and the
// job's own cancel.
func (s *Service) executeJob(j *job) {
	ctx, cancelTimeout := s.timeoutCtx(context.Background(), j.opts)
	defer cancelTimeout()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	s.jobs.mu.Lock()
	j.cancel = cancel
	if j.cancelRequested { // DELETE raced submission
		cancel()
	}
	s.jobs.mu.Unlock()

	release, err := s.admit(ctx) // queued: waits like any request
	if err != nil {
		s.finishJob(j, nil, err)
		return
	}
	defer release()

	s.jobs.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	s.jobs.mu.Unlock()

	onProgress := func(p run.Progress) {
		row := ResultRow{Result: p.Result}
		if p.Err != nil {
			row.Error = p.Err.Error()
			row.Result.Workload = p.Job.Workload.Name()
			row.Result.Device = p.Job.Device.Name
		}
		s.jobs.mu.Lock()
		j.rows = append(j.rows, row)
		j.done = p.Done
		s.jobs.mu.Unlock()
	}

	var resp *Response
	if j.kind == "batch" {
		resp = s.runBatch(ctx, j.batchJobs, onProgress)
	} else {
		resp, err = s.runSweep(ctx, j.sweepPrep, onProgress)
	}
	// A batch absorbs context death into per-row errors; surface it as the
	// job's own outcome so a timed-out job reads failed, not done.
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	s.finishJob(j, resp, err)
}

// finishJob moves the job to its terminal state: cancelled when its
// cancellation was requested (or drain abandoned it), failed on any error,
// done otherwise. A partial response survives in every case.
func (s *Service) finishJob(j *job, resp *Response, err error) {
	s.jobs.mu.Lock()
	switch {
	case j.cancelRequested:
		j.state = JobCancelled
	case err != nil:
		j.state = JobFailed
	default:
		j.state = JobDone
	}
	if err != nil {
		j.errMsg = err.Error()
	}
	j.resp = resp
	j.finished = time.Now()
	s.jobs.mu.Unlock()
}

// Job returns the job's current snapshot, rows included.
func (s *Service) Job(id string) (JobStatus, bool) { return s.JobAfter(id, 0) }

// JobAfter is Job with an incremental row cursor: the snapshot elides the
// first `after` rows — a client that remembers the previous snapshot's
// NextAfter polls down only the rows that arrived since, instead of
// re-downloading a 4096-row batch on every poll. after past the current
// high-water mark yields no rows (not an error: the client is simply
// caught up).
func (s *Service) JobAfter(id string, after int) (JobStatus, bool) {
	now := time.Now()
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	s.jobs.gcLocked(now)
	j, ok := s.jobs.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	snap := s.jobs.snapshotLocked(j, true)
	if after > 0 {
		if after >= len(snap.Rows) {
			snap.Rows = nil
		} else {
			snap.Rows = snap.Rows[after:]
		}
	}
	return snap, true
}

// Jobs lists every stored job (rows elided), newest first.
func (s *Service) Jobs() []JobStatus {
	now := time.Now()
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	s.jobs.gcLocked(now)
	out := make([]JobStatus, 0, len(s.jobs.jobs))
	for _, j := range s.jobs.jobs {
		out = append(out, s.jobs.snapshotLocked(j, false))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Created.After(out[b].Created) })
	return out
}

// CancelJob requests cancellation: a queued job leaves the admission queue,
// a running job's context is cancelled (its workload is abandoned at the
// runner if it ignores cancellation). Already-terminal jobs are unchanged.
// The returned snapshot reflects the state at return — cancellation of a
// running job completes asynchronously.
func (s *Service) CancelJob(id string) (JobStatus, bool) {
	s.jobs.mu.Lock()
	j, ok := s.jobs.jobs[id]
	if !ok {
		s.jobs.mu.Unlock()
		return JobStatus{}, false
	}
	var cancel context.CancelFunc
	if !j.state.terminal() {
		j.cancelRequested = true
		cancel = j.cancel // may be nil if the executor hasn't installed it yet
	}
	snap := s.jobs.snapshotLocked(j, true)
	s.jobs.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return snap, true
}

// activeJobs counts non-terminal jobs; drain waits on it reaching zero.
func (s *Service) activeJobs() (n int) {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	for _, j := range s.jobs.jobs {
		if !j.state.terminal() {
			n++
		}
	}
	return n
}
