package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPEndpoints drives the full wire protocol through a live listener:
// health, listings, batch (both workload JSON forms), sweep, and the error
// statuses.
func TestHTTPEndpoints(t *testing.T) {
	svc := New(Options{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	post := func(path, body string) (int, []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Health.
	code, body := get("/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	// Listings.
	code, body = get("/v1/devices")
	if code != http.StatusOK {
		t.Fatalf("devices: %d %s", code, body)
	}
	var devs []DeviceInfo
	if err := json.Unmarshal(body, &devs); err != nil || len(devs) != 4 {
		t.Fatalf("devices payload: %v %s", err, body)
	}
	code, body = get("/v1/workloads")
	if code != http.StatusOK {
		t.Fatalf("workloads: %d %s", code, body)
	}
	var winfo WorkloadsInfo
	if err := json.Unmarshal(body, &winfo); err != nil || len(winfo.Kernels) < 3 {
		t.Fatalf("workloads payload: %v %s", err, body)
	}

	// Batch, string and object workload forms mixed.
	code, body = post("/v1/batch", `{
		"devices": ["MangoPi"],
		"workloads": [
			"stream:test=TRIAD,elems=1024,reps=1",
			{"kernel": "transpose", "params": {"variant": "Naive", "n": "64"}}
		]
	}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("batch payload: %v %s", err, body)
	}
	if len(resp.Results) != 2 || resp.Results[0].Seconds <= 0 || resp.Results[1].Seconds <= 0 {
		t.Fatalf("batch results: %+v", resp.Results)
	}
	if resp.Results[0].Workload != "stream/TRIAD" || resp.Results[1].Workload != "transpose/Naive" {
		t.Errorf("batch row identities: %q, %q", resp.Results[0].Workload, resp.Results[1].Workload)
	}

	// Sweep.
	code, body = post("/v1/sweep", `{
		"device": "MangoPi",
		"axes": ["l2=base,128KiB"],
		"workloads": ["transpose:variant=Naive,n=64"]
	}`)
	if code != http.StatusOK {
		t.Fatalf("sweep: %d %s", code, body)
	}
	var sresp Response
	if err := json.Unmarshal(body, &sresp); err != nil {
		t.Fatalf("sweep payload: %v %s", err, body)
	}
	if len(sresp.Results) != 2 {
		t.Fatalf("sweep rows: %+v", sresp.Results)
	}
	for _, row := range sresp.Results {
		if len(row.Cell) != 1 || row.Speedup <= 0 {
			t.Errorf("sweep row missing cell/deltas: %+v", row)
		}
	}

	// Errors: malformed JSON, unknown field, unknown device/kernel → 400
	// with an "error" body.
	for _, tc := range []struct{ path, body string }{
		{"/v1/batch", `{`},
		{"/v1/batch", `{"wrkloads": []}`},
		{"/v1/batch", `{"devices": ["Atari"], "workloads": ["stream/TRIAD"]}`},
		{"/v1/batch", `{"workloads": ["warp:speed=9"]}`},
		{"/v1/sweep", `{"device": "MangoPi", "axes": ["warp=9"], "workloads": ["stream/TRIAD"]}`},
	} {
		code, body = post(tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d, want 400 (%s)", tc.path, tc.body, code, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("POST %s error body: %s", tc.path, body)
		}
	}

	// Method guard: GET on a POST route is a 405.
	if resp, err := http.Get(ts.URL + "/v1/batch"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/batch: %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestHTTPSweepExecutionFailure maps a validated sweep that fails during
// execution to 500 — not 400, which would mislead the client into
// "fixing" a correct request. (Batch handles the same failure class as a
// 200 partial-success row.)
func TestHTTPSweepExecutionFailure(t *testing.T) {
	registerFailing()
	svc := New(Options{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"device":"MangoPi","axes":["maxinflight=base,2"],"workloads":["svc-test-fail"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("sweep execution failure: %d %s, want 500", resp.StatusCode, body)
	}
}

// TestHTTPOverload maps ErrOverloaded to 429 with a Retry-After hint.
func TestHTTPOverload(t *testing.T) {
	svc := New(Options{MaxInFlight: 1, MaxQueue: -1}) // no queue: saturation 429s
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	release, err := svc.admit(context.Background()) // occupy the only slot directly
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"devices":["MangoPi"],"workloads":["stream:test=COPY,elems=1024,reps=1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("overloaded POST: %d %s, want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}
}

// TestHTTPJobs drives the async job API over the wire: submit → 202 with a
// Location to poll → done with rows → list → cancel semantics and 404s.
func TestHTTPJobs(t *testing.T) {
	svc := New(Options{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{
		"batch": {"devices": ["MangoPi"], "workloads": ["stream:test=COPY,elems=1024,reps=1"]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s, want 202", resp.StatusCode, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil || js.ID == "" {
		t.Fatalf("submit payload: %v %s", err, body)
	}
	loc := resp.Header.Get("Location")
	if loc != "/v1/jobs/"+js.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, js.ID)
	}

	// Poll the Location to completion.
	deadline := time.Now().Add(5 * time.Second)
	for !js.State.terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", js.State)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err = client.Get(ts.URL + loc)
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %s", resp.StatusCode, body)
		}
		js = JobStatus{}
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
	}
	if js.State != JobDone || len(js.Rows) != 1 || js.Response == nil {
		t.Fatalf("final job: %+v", js)
	}

	// Listing includes it (rows elided on the wire too).
	resp, err = client.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var list []JobStatus
	if err := json.Unmarshal(body, &list); err != nil || len(list) != 1 || len(list[0].Rows) != 0 {
		t.Fatalf("list: %v %s", err, body)
	}

	// DELETE on a finished job returns its snapshot unchanged; unknown IDs
	// are 404 on both GET and DELETE.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+loc, nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("DELETE finished job: %d, want 200", resp.StatusCode)
	}
	for _, method := range []string{http.MethodGet, http.MethodDelete} {
		req, _ := http.NewRequest(method, ts.URL+"/v1/jobs/deadbeef00000000", nil)
		resp, err = client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s unknown job: %d, want 404", method, resp.StatusCode)
		}
	}

	// A submit that fails validation is a synchronous 400 — no job stored.
	resp, err = client.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"batch": {"devices": ["Atari"], "workloads": ["stream/TRIAD"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid submit: %d, want 400", resp.StatusCode)
	}
}

// TestHTTPErrorClassification pins writeError's status taxonomy directly:
// only explicitly classified client mistakes earn a 4xx; an unexpected
// server-side failure is a 500, never blamed on the request as a 400.
func TestHTTPErrorClassification(t *testing.T) {
	svc := New(Options{})
	cases := []struct {
		err        error
		status     int
		retryAfter bool
	}{
		{&ValidationError{Err: errors.New("bad spec")}, http.StatusBadRequest, false},
		{&OverloadError{RetryAfter: 3 * time.Second, reason: ErrOverloaded}, http.StatusTooManyRequests, true},
		{&OverloadError{RetryAfter: time.Second, reason: ErrRateLimited}, http.StatusTooManyRequests, true},
		{ErrDraining, http.StatusServiceUnavailable, false},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{&ExecutionError{Err: errors.New("sim blew up")}, http.StatusInternalServerError, false},
		{errors.New("unclassified surprise"), http.StatusInternalServerError, false},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		svc.writeError(rec, tc.err)
		if rec.Code != tc.status {
			t.Errorf("writeError(%v) = %d, want %d", tc.err, rec.Code, tc.status)
		}
		if got := rec.Header().Get("Retry-After") != ""; got != tc.retryAfter {
			t.Errorf("writeError(%v) Retry-After present=%v, want %v", tc.err, got, tc.retryAfter)
		}
		if rec.Header().Get("X-Content-Type-Options") != "nosniff" {
			t.Errorf("writeError(%v) missing nosniff header", tc.err)
		}
	}
}
