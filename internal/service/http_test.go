package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPEndpoints drives the full wire protocol through a live listener:
// health, listings, batch (both workload JSON forms), sweep, and the error
// statuses.
func TestHTTPEndpoints(t *testing.T) {
	svc := New(Options{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	post := func(path, body string) (int, []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Health.
	code, body := get("/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	// Listings.
	code, body = get("/v1/devices")
	if code != http.StatusOK {
		t.Fatalf("devices: %d %s", code, body)
	}
	var devs []DeviceInfo
	if err := json.Unmarshal(body, &devs); err != nil || len(devs) != 4 {
		t.Fatalf("devices payload: %v %s", err, body)
	}
	code, body = get("/v1/workloads")
	if code != http.StatusOK {
		t.Fatalf("workloads: %d %s", code, body)
	}
	var winfo WorkloadsInfo
	if err := json.Unmarshal(body, &winfo); err != nil || len(winfo.Kernels) < 3 {
		t.Fatalf("workloads payload: %v %s", err, body)
	}

	// Batch, string and object workload forms mixed.
	code, body = post("/v1/batch", `{
		"devices": ["MangoPi"],
		"workloads": [
			"stream:test=TRIAD,elems=1024,reps=1",
			{"kernel": "transpose", "params": {"variant": "Naive", "n": "64"}}
		]
	}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("batch payload: %v %s", err, body)
	}
	if len(resp.Results) != 2 || resp.Results[0].Seconds <= 0 || resp.Results[1].Seconds <= 0 {
		t.Fatalf("batch results: %+v", resp.Results)
	}
	if resp.Results[0].Workload != "stream/TRIAD" || resp.Results[1].Workload != "transpose/Naive" {
		t.Errorf("batch row identities: %q, %q", resp.Results[0].Workload, resp.Results[1].Workload)
	}

	// Sweep.
	code, body = post("/v1/sweep", `{
		"device": "MangoPi",
		"axes": ["l2=base,128KiB"],
		"workloads": ["transpose:variant=Naive,n=64"]
	}`)
	if code != http.StatusOK {
		t.Fatalf("sweep: %d %s", code, body)
	}
	var sresp Response
	if err := json.Unmarshal(body, &sresp); err != nil {
		t.Fatalf("sweep payload: %v %s", err, body)
	}
	if len(sresp.Results) != 2 {
		t.Fatalf("sweep rows: %+v", sresp.Results)
	}
	for _, row := range sresp.Results {
		if len(row.Cell) != 1 || row.Speedup <= 0 {
			t.Errorf("sweep row missing cell/deltas: %+v", row)
		}
	}

	// Errors: malformed JSON, unknown field, unknown device/kernel → 400
	// with an "error" body.
	for _, tc := range []struct{ path, body string }{
		{"/v1/batch", `{`},
		{"/v1/batch", `{"wrkloads": []}`},
		{"/v1/batch", `{"devices": ["Atari"], "workloads": ["stream/TRIAD"]}`},
		{"/v1/batch", `{"workloads": ["warp:speed=9"]}`},
		{"/v1/sweep", `{"device": "MangoPi", "axes": ["warp=9"], "workloads": ["stream/TRIAD"]}`},
	} {
		code, body = post(tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d, want 400 (%s)", tc.path, tc.body, code, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("POST %s error body: %s", tc.path, body)
		}
	}

	// Method guard: GET on a POST route is a 405.
	if resp, err := http.Get(ts.URL + "/v1/batch"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/batch: %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestHTTPSweepExecutionFailure maps a validated sweep that fails during
// execution to 500 — not 400, which would mislead the client into
// "fixing" a correct request. (Batch handles the same failure class as a
// 200 partial-success row.)
func TestHTTPSweepExecutionFailure(t *testing.T) {
	registerFailing()
	svc := New(Options{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"device":"MangoPi","axes":["maxinflight=base,2"],"workloads":["svc-test-fail"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("sweep execution failure: %d %s, want 500", resp.StatusCode, body)
	}
}

// TestHTTPOverload maps ErrOverloaded to 429.
func TestHTTPOverload(t *testing.T) {
	svc := New(Options{MaxInFlight: 1})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	release, err := svc.admit() // occupy the only slot directly
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"devices":["MangoPi"],"workloads":["stream:test=COPY,elems=1024,reps=1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("overloaded POST: %d %s, want 429", resp.StatusCode, body)
	}
}
