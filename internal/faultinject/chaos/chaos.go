// Package chaos provides the misbehaving workloads of the fault taxonomy —
// panic, stall, slow, transient failure — as ordinary run.Workload values.
// They need no injection seam: a Workload is already caller-supplied code,
// so the chaos suite just submits these through the same Runner/Service
// paths real workloads take and asserts the invariants hold (the batch
// survives a panic, a stall is abandoned at the deadline, a transient
// failure is never cached, nothing leaks).
//
// The package is ordinary (untagged) code: constructing a chaos workload
// costs nothing unless it is actually run, and keeping it buildable
// everywhere means the untagged robustness tests can use it too.
package chaos

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"riscvmem/internal/run"
	"riscvmem/internal/sim"
)

// Panic returns a workload that panics mid-"simulation" — the stand-in for
// a workload bug that fires deep inside the simulator, leaving the machine
// in an arbitrary partial state.
func Panic(name string) run.Workload {
	return run.NewFunc(name, func(ctx context.Context, m *sim.Machine) (run.Result, error) {
		// Touch the machine first so the panic happens after state mutation,
		// like a real mid-run bug would.
		m.RunSeq(func(c *sim.Core) { c.Touch(0x1000, 8, false) })
		panic("chaos: injected workload panic")
	})
}

// Stall returns a workload that blocks until release is closed. With
// honorCtx it also returns on context cancellation (a slow-but-correct
// workload); without, it ignores its context entirely — the worst case the
// runner's deadline abandonment exists for. started receives one value when
// the workload begins executing (send is non-blocking; buffer accordingly).
func Stall(name string, started chan<- struct{}, release <-chan struct{}, honorCtx bool) run.Workload {
	return run.NewFunc(name, func(ctx context.Context, m *sim.Machine) (run.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		if honorCtx {
			select {
			case <-release:
				return run.Result{Seconds: 1}, nil
			case <-ctx.Done():
				return run.Result{}, ctx.Err()
			}
		}
		<-release // deaf to ctx: the runner must abandon, not wait
		return run.Result{Seconds: 1}, nil
	})
}

// Slow returns a workload that takes d of host wall time (honoring ctx)
// before succeeding — sustained load for queue, timeout and drain tests
// without a manual release channel.
func Slow(name string, d time.Duration) run.Workload {
	return run.NewFunc(name, func(ctx context.Context, m *sim.Machine) (run.Result, error) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return run.Result{Seconds: d.Seconds()}, nil
		case <-ctx.Done():
			return run.Result{}, ctx.Err()
		}
	})
}

// Flaky is a Keyed workload that fails its first failures executions with a
// transient error and succeeds afterwards — the probe for the
// errors-are-never-cached invariant: run twice with the same key, the
// second attempt must re-execute and succeed.
type Flaky struct {
	name     string
	failures int32
	runs     atomic.Int32
}

// NewFlaky builds a Flaky workload.
func NewFlaky(name string, failures int) *Flaky {
	return &Flaky{name: name, failures: int32(failures)}
}

func (f *Flaky) Name() string { return f.name }

// CacheKey is deliberately stable across the failing and succeeding runs:
// if the runner cached the failure, the retry would be served the error.
func (f *Flaky) CacheKey() string { return "chaos/flaky/" + f.name }

// Runs reports how many times the workload actually executed.
func (f *Flaky) Runs() int { return int(f.runs.Load()) }

func (f *Flaky) Run(ctx context.Context, m *sim.Machine) (run.Result, error) {
	n := f.runs.Add(1)
	if n <= f.failures {
		return run.Result{}, fmt.Errorf("chaos: transient failure %d/%d", n, f.failures)
	}
	region := m.RunSeq(func(c *sim.Core) { c.Touch(0x1000, 8, false) })
	return run.Result{Seconds: region.Seconds(m.Spec()), Cycles: region.Cycles}, nil
}
