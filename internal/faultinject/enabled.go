//go:build faultinject

package faultinject

import "sync"

// Enabled reports whether the harness is compiled in.
const Enabled = true

// Handler decides one activation of a point: return nil to let the call
// proceed, non-nil to inject that failure.
type Handler func() error

var (
	mu       sync.Mutex
	handlers = map[Point]Handler{}
	fired    = map[Point]int{}
)

// Fire consults the point's handler. Activations are counted whether or
// not a handler is installed, so tests can assert a seam was actually
// reached.
func Fire(p Point) error {
	mu.Lock()
	fired[p]++
	h := handlers[p]
	mu.Unlock()
	if h == nil {
		return nil
	}
	return h()
}

// Set installs the point's handler, replacing any previous one.
func Set(p Point, h Handler) {
	mu.Lock()
	defer mu.Unlock()
	if h == nil {
		delete(handlers, p)
	} else {
		handlers[p] = h
	}
}

// Clear removes the point's handler.
func Clear(p Point) { Set(p, nil) }

// Reset removes every handler and zeroes the activation counters; chaos
// tests defer it so faults never leak across tests.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	handlers = map[Point]Handler{}
	fired = map[Point]int{}
}

// Fired reports how many times the point has been reached since the last
// Reset.
func Fired(p Point) int {
	mu.Lock()
	defer mu.Unlock()
	return fired[p]
}

// FailTimes builds a handler that injects err on the first n activations
// and then lets every later call proceed — the shape of a transient fault.
func FailTimes(n int, err error) Handler {
	var (
		hmu  sync.Mutex
		left = n
	)
	return func() error {
		hmu.Lock()
		defer hmu.Unlock()
		if left > 0 {
			left--
			return err
		}
		return nil
	}
}

// AlwaysFail builds a handler that injects err on every activation.
func AlwaysFail(err error) Handler { return func() error { return err } }
