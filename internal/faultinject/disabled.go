//go:build !faultinject

package faultinject

// Enabled reports whether the harness is compiled in. The constant false
// lets callers guard optional bookkeeping with `if faultinject.Enabled`
// and have the block elided entirely.
const Enabled = false

// Fire is the disabled stub: always nil, trivially inlined, so the seams
// cost nothing in ordinary builds.
func Fire(Point) error { return nil }
