// Package faultinject is the fault-injection harness behind the chaos test
// suite: named injection points at the Runner/Service seams where a handler
// can force a failure that is hard to provoke organically — a machine
// construction that errors, an admission path that overflows — so the tests
// can assert the system's invariants (no goroutine leaks, poisoned machines
// never re-pooled, errors never cached, deadlines honored) under every
// fault class, deterministically.
//
// The package has two builds:
//
//   - Default (no build tag): Fire is a no-op stub returning nil and
//     Enabled is the constant false. The calls at the seams compile to
//     nothing — the hooks are free in production binaries; the happy path
//     pays zero cost for being injectable.
//   - `-tags faultinject`: Fire consults a process-wide handler registry
//     (Set/Clear/Reset) and counts activations (Fired). The chaos suites in
//     internal/run and internal/service build only under this tag and run
//     in CI with -race.
//
// Handlers inject failures at seams; the misbehaving *workloads* of the
// fault taxonomy (panic, stall, slow, transient failure) need no seam —
// they are ordinary Workload implementations, provided by the chaos
// subpackage.
package faultinject

// Point names one injection seam. The set is small and deliberate: a seam
// earns its place by guarding an invariant the chaos suite asserts.
type Point string

const (
	// RunnerAcquire fires in run.Runner before a machine is acquired for a
	// job; a handler error is reported as that job's acquire failure.
	// Guards: acquire failures are per-job errors (the batch survives) and
	// are never cached.
	RunnerAcquire Point = "runner.acquire"
	// ServiceAdmit fires in service.Service at request admission, before
	// the slot/queue logic; a handler error fails admission with that
	// error. Guards: transports map injected admission failures like real
	// ones (429/503), and a failed admission leaks nothing.
	ServiceAdmit Point = "service.admit"
	// MemoPersist fires in memostore.Disk at the entry write path, before
	// anything touches the filesystem; a handler error makes that persist
	// fail. Guards: a failed persist is counted (DiskWriteErrors) and
	// logged but never fails the request that produced the result, and the
	// result is still served from the memory tier afterwards.
	MemoPersist Point = "memostore.persist"
	// ClusterDispatch fires in cluster.Coordinator when a worker's poll is
	// about to be answered with an assignment; a handler error makes the
	// poll return empty and the cells stay queued for a later poll.
	// Guards: a delayed dispatch never loses or duplicates cells — the
	// sweep still completes, every row exactly once.
	ClusterDispatch Point = "cluster.dispatch"
	// ClusterHeartbeat fires in cluster.Coordinator when a worker
	// heartbeat arrives, before the lease is refreshed; a handler error
	// drops the beat (a control-channel blackhole). Guards: a worker whose
	// heartbeats vanish is marked lost within its lease, its unfinished
	// cells are requeued onto survivors exactly once, and its late row
	// returns are revoked rather than double-counted.
	ClusterHeartbeat Point = "cluster.heartbeat"
	// ClusterRequeue fires in cluster.Coordinator as cells from a lost or
	// draining worker are rehashed onto the surviving ring; a handler
	// error diverts the cells to the unassigned pool instead of a direct
	// queue placement. Guards: requeue is never lossy — pooled cells are
	// still delivered by the next poll.
	ClusterRequeue Point = "cluster.requeue"
	// ClusterSend fires in cluster.FlakyTransport before a protocol request
	// is delivered to the coordinator; a handler error drops the request on
	// the floor — it never reaches the coordinator, the caller sees a
	// transport failure. Guards: a lossy request channel delays work but
	// never loses or duplicates rows (the worker's retry discipline plus
	// the coordinator's per-index dedup), and a total poll blackhole still
	// yields a deadline-bounded degraded response.
	ClusterSend Point = "cluster.send"
	// ClusterRecv fires in cluster.FlakyTransport after the coordinator
	// produced a response; a handler error drops the response on the way
	// back — the coordinator's side effects happened, the caller sees a
	// transport failure. Guards: a lost ack makes the worker retransmit an
	// already-delivered RowReturn, and the coordinator must keep row
	// delivery exactly-once under that duplication.
	ClusterRecv Point = "cluster.recv"
)
