package tlb

import (
	"testing"
	"testing/quick"
)

const page = 4096

func full(entries int) *TLB {
	return MustNew(Config{Name: "utlb", Entries: entries, Ways: entries, PageShift: 12})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero", Entries: 0, Ways: 1, PageShift: 12},
		{Name: "ways>entries", Entries: 4, Ways: 8, PageShift: 12},
		{Name: "indivisible", Entries: 10, Ways: 4, PageShift: 12},
		{Name: "npot-sets", Entries: 12, Ways: 4, PageShift: 12},
		{Name: "nopage", Entries: 8, Ways: 8, PageShift: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q unexpectedly valid", cfg.Name)
		}
	}
	// The paper's actual TLB shapes must validate.
	good := []Config{
		{Name: "d1-dutlb", Entries: 10, Ways: 10, PageShift: 12},  // fully assoc, 10 entries
		{Name: "d1-jtlb", Entries: 128, Ways: 2, PageShift: 12},   // 2-way, 128 entries
		{Name: "u74-dtlb", Entries: 40, Ways: 40, PageShift: 12},  // fully assoc, 40 entries
		{Name: "u74-l2tlb", Entries: 512, Ways: 1, PageShift: 12}, // direct mapped
		{Name: "xeon-dtlb", Entries: 64, Ways: 4, PageShift: 12},  // set assoc
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %q: %v", cfg.Name, err)
		}
	}
}

func TestLookupMissThenInsertHit(t *testing.T) {
	tl := full(4)
	if tl.Lookup(0x1000) {
		t.Fatal("cold lookup hit")
	}
	tl.Insert(0x1000)
	if !tl.Lookup(0x1234) { // same page
		t.Fatal("same-page lookup missed after insert")
	}
	if tl.Lookup(0x2000) {
		t.Fatal("different page hit")
	}
	if tl.Stats().Hits != 1 || tl.Stats().Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", tl.Stats())
	}
}

func TestLRUEvictionFullyAssociative(t *testing.T) {
	tl := full(2)
	tl.Insert(0 * page)
	tl.Insert(1 * page)
	tl.Lookup(0 * page) // page 0 most recent
	tl.Insert(2 * page) // evicts page 1
	if !tl.Lookup(0 * page) {
		t.Fatal("page 0 evicted despite recency")
	}
	if tl.Lookup(1 * page) {
		t.Fatal("page 1 survived eviction")
	}
	if !tl.Lookup(2 * page) {
		t.Fatal("page 2 not inserted")
	}
}

func TestInsertRefreshesExisting(t *testing.T) {
	tl := full(2)
	tl.Insert(0 * page)
	tl.Insert(1 * page)
	tl.Insert(0 * page) // refresh, no new entry
	tl.Insert(2 * page) // evicts page 1 (LRU), not page 0
	if !tl.Lookup(0 * page) {
		t.Fatal("refreshed page evicted")
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	tl := MustNew(Config{Name: "dm", Entries: 4, Ways: 1, PageShift: 12})
	tl.Insert(0 * page) // set 0
	tl.Insert(4 * page) // set 0 again: evicts page 0
	if tl.Lookup(0 * page) {
		t.Fatal("direct-mapped conflict did not evict")
	}
	if !tl.Lookup(4 * page) {
		t.Fatal("conflicting page not resident")
	}
}

func TestReset(t *testing.T) {
	tl := full(4)
	tl.Insert(0)
	tl.Lookup(0)
	tl.Reset()
	if tl.Stats() != (Stats{}) {
		t.Fatalf("stats not cleared: %+v", tl.Stats())
	}
	if tl.Lookup(0) {
		t.Fatal("entry survived reset")
	}
}

func TestWalker(t *testing.T) {
	w := Walker{Levels: 3, CyclesPerLevel: 50}
	if got := w.Walk(); got != 150 {
		t.Fatalf("Walk() = %v, want 150", got)
	}
	w.Walk()
	if w.Walks != 2 {
		t.Fatalf("Walks = %d, want 2", w.Walks)
	}
}

// Property: a working set of at most Entries pages, touched round-robin,
// never misses once inserted (fully associative LRU has no conflict misses).
func TestPropertyFullyAssociativeNoConflicts(t *testing.T) {
	f := func(n uint8) bool {
		entries := int(n%16) + 1
		tl := full(entries)
		for p := 0; p < entries; p++ {
			tl.Insert(uint64(p) * page)
		}
		for round := 0; round < 4; round++ {
			for p := 0; p < entries; p++ {
				if !tl.Lookup(uint64(p) * page) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: large-stride page walks (the naive transposition column access)
// on a small TLB miss almost always, while unit-stride walks mostly hit —
// the asymmetry the paper's blocking optimization exploits.
func TestStrideAsymmetry(t *testing.T) {
	tl := full(10) // the D1's D-uTLB size
	walkMisses := 0
	const rowBytes = 8192 * 8 // one 8192-double row = 16 pages apart
	for i := 0; i < 1000; i++ {
		addr := uint64(i) * rowBytes
		if !tl.Lookup(addr) {
			walkMisses++
			tl.Insert(addr)
		}
	}
	tl.Reset()
	seqMisses := 0
	for i := 0; i < 1000; i++ {
		addr := uint64(i) * 8 // unit-stride doubles
		if !tl.Lookup(addr) {
			seqMisses++
			tl.Insert(addr)
		}
	}
	if walkMisses < 900 {
		t.Errorf("column walk missed only %d/1000", walkMisses)
	}
	if seqMisses > 10 {
		t.Errorf("sequential walk missed %d/1000", seqMisses)
	}
}

// TestRepeatEquivalence pins the bulk Repeat entry point to n individual
// Lookups of the same page: identical statistics, recency and subsequent
// replacement behaviour.
func TestRepeatEquivalence(t *testing.T) {
	cfg := Config{Name: "t", Entries: 8, Ways: 2, PageShift: 12}
	drive := func(bulk bool) (Stats, []bool) {
		tl := MustNew(cfg)
		for p := 0; p < 6; p++ { // warm a few pages
			tl.Insert(uint64(p) << 12)
		}
		if bulk {
			if !tl.Lookup(3 << 12) {
				t.Fatal("expected hit")
			}
			tl.Repeat(63)
		} else {
			for i := 0; i < 64; i++ {
				if !tl.Lookup(3 << 12) {
					t.Fatal("expected hit")
				}
			}
		}
		// Evict through the set and observe which pages survive: recency
		// stamps (the folded clock) decide, so divergence would show here.
		for p := 16; p < 20; p++ {
			tl.Insert(uint64(p) << 12)
		}
		var present []bool
		for p := 0; p < 20; p++ {
			present = append(present, tl.Lookup(uint64(p)<<12))
		}
		return tl.Stats(), present
	}
	sRef, pRef := drive(false)
	sGot, pGot := drive(true)
	if sGot != sRef {
		t.Errorf("Repeat stats diverge: got %+v want %+v", sGot, sRef)
	}
	for i := range pRef {
		if pGot[i] != pRef[i] {
			t.Errorf("page %d residency diverges: got %v want %v", i, pGot[i], pRef[i])
		}
	}
}
