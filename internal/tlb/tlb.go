// Package tlb models translation lookaside buffers and the cost of Sv39
// page-table walks.
//
// TLB behaviour matters for the paper's transposition experiment: the naive
// column-major walk of an 8192×8192 double matrix strides 64 KiB between
// consecutive accesses, touching a new 4 KiB page every time — the D1's
// 10-entry D-uTLB and 128-entry jTLB (and the U74's 40-entry DTLB / 512-entry
// L2 TLB, §3.1) thrash long before the caches do. Blocking restores page
// locality, which is part of why it wins on every device.
package tlb

import (
	"fmt"

	"riscvmem/internal/units"
)

// Config describes one TLB level.
type Config struct {
	Name    string
	Entries int
	// Ways is the associativity; Ways == Entries models a fully associative
	// TLB (the D1's uTLB), Ways == 1 a direct-mapped one (the U74's L2 TLB).
	Ways      int
	PageShift uint // log2(page size); 12 for the 4 KiB pages used throughout
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.Ways > c.Entries {
		return fmt.Errorf("tlb %s: bad entries/ways %d/%d", c.Name, c.Entries, c.Ways)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb %s: entries %d not divisible by ways %d", c.Name, c.Entries, c.Ways)
	}
	if sets := int64(c.Entries / c.Ways); !units.IsPow2(sets) {
		return fmt.Errorf("tlb %s: set count %d not a power of two", c.Name, sets)
	}
	if c.PageShift == 0 {
		return fmt.Errorf("tlb %s: zero page shift", c.Name)
	}
	return nil
}

// Stats counts lookups.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns total lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

type entry struct {
	vpn   uint64
	used  uint64
	valid bool
}

// TLB is one translation cache level, LRU-replaced within each set.
type TLB struct {
	cfg     Config
	sets    [][]entry
	setMask uint64
	clock   uint64
	Stats   Stats
}

// New builds a TLB from cfg.
func New(cfg Config) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Entries / cfg.Ways
	t := &TLB{cfg: cfg, sets: make([][]entry, nsets), setMask: uint64(nsets - 1)}
	for i := range t.sets {
		t.sets[i] = make([]entry, cfg.Ways)
	}
	return t, nil
}

// MustNew is New but panics on error; for validated presets.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the construction configuration.
func (t *TLB) Config() Config { return t.cfg }

// Lookup reports whether the page containing vaddr is cached, updating
// recency and statistics. It does not insert on miss; composition across
// levels is explicit via Insert.
func (t *TLB) Lookup(vaddr uint64) bool {
	vpn := vaddr >> t.cfg.PageShift
	set := t.sets[vpn&t.setMask]
	t.clock++
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].used = t.clock
			t.Stats.Hits++
			return true
		}
	}
	t.Stats.Misses++
	return false
}

// Insert caches the translation for the page containing vaddr, evicting the
// LRU entry of its set if needed.
func (t *TLB) Insert(vaddr uint64) {
	vpn := vaddr >> t.cfg.PageShift
	set := t.sets[vpn&t.setMask]
	t.clock++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].used = t.clock // refresh
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = entry{vpn: vpn, used: t.clock, valid: true}
}

// Reset clears entries and statistics.
func (t *TLB) Reset() {
	for i := range t.sets {
		for j := range t.sets[i] {
			t.sets[i][j] = entry{}
		}
	}
	t.clock = 0
	t.Stats = Stats{}
}

// Walker charges the cost of resolving a translation miss. Sv39 uses a
// three-level table; we charge a fixed per-level cost calibrated to the
// device (page-table entries mostly hit in L2/DRAM; modelling the walk as a
// latency constant keeps the simulator first-order while preserving the
// "column walks thrash the TLB" effect the paper's blocking results rely on).
type Walker struct {
	Levels         int     // 3 for Sv39
	CyclesPerLevel float64 // per-level memory cost
	Walks          uint64  // statistic
}

// Walk returns the cycle cost of one full table walk.
func (w *Walker) Walk() float64 {
	w.Walks++
	return float64(w.Levels) * w.CyclesPerLevel
}
